// Command wbsn-sim runs one benchmark application on one architecture
// variant and prints the execution metrics, optionally dumping the mapping
// (code placement and data layout, paper Fig. 4). With -sweep it instead
// compares the application across all three architectures at their solved
// operating points, fanning the per-architecture solves out across the
// parallel sweep engine. With -scenario the input signal (kind, rates,
// per-channel divisors, seed, pathological share) and the default
// application and duration come from a declarative scenario file instead of
// the ECG flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/signal"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", apps.MF3L, "application: 3l-mf, 3l-mmd, rp-class")
	archName := flag.String("arch", "mc", "architecture: sc, mc, mc-nosync")
	clock := flag.Float64("clock-mhz", 1.0, "platform clock in MHz")
	voltage := flag.Float64("voltage", 0.5, "supply voltage in V")
	duration := flag.Float64("duration", 5, "simulated seconds")
	patho := flag.Float64("pathological", 0.2, "pathological-event share (rp-class)")
	seed := flag.Int64("seed", 1, "synthetic record seed")
	scenarioPath := flag.String("scenario", "", "scenario file providing the signal configuration (and default app/duration)")
	dumpMapping := flag.Bool("dump-mapping", false, "print code/data placement and exit")
	traceN := flag.Int("trace", 0, "record platform events and print the last N")
	exact := flag.Bool("exact", false, "disable idle fast-forward; simulate every cycle (bit-identical results, slower)")
	sweepArchs := flag.Bool("sweep", false, "solve and measure the app on sc, mc-nosync and mc (ignores -arch/-clock-mhz/-voltage; incompatible with -trace/-dump-mapping)")
	probe := flag.Float64("probe", 2.5, "simulated seconds per operating-point probe (-sweep)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel sweep workers (-sweep; results are identical for any value)")
	flag.Parse()

	// Explicitly-set flags override the scenario file's values.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	base := signal.Config{Kind: signal.KindECG, Seed: *seed, PathologicalFrac: *patho}
	scenarioName := ""
	if *scenarioPath != "" {
		scn, err := scenario.Load(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		base = scn.Signal
		scenarioName = scn.Name
		if set["seed"] {
			base.Seed = *seed
		}
		if set["pathological"] {
			base.PathologicalFrac = *patho
		}
		if !set["app"] {
			*app = scn.Apps[0]
		}
		if !set["duration"] {
			*duration = scn.DurationS
		}
		if !set["probe"] {
			*probe = scn.ProbeS
		}
	}

	if *sweepArchs {
		if *dumpMapping || *traceN > 0 {
			fatal(fmt.Errorf("-sweep compares solved operating points and is incompatible with -dump-mapping and -trace; run those against one -arch"))
		}
		runSweep(*app, exp.Options{
			Duration: *duration, ProbeDuration: *probe,
			PathoFrac: base.PathologicalFrac, Seed: base.Seed,
			Source: base, Scenario: scenarioName, Exact: *exact,
		}, *jobs)
		return
	}

	arch := map[string]power.Arch{"sc": power.SC, "mc": power.MC, "mc-nosync": power.MCNoSync}[*archName]
	v, err := apps.Build(*app, arch)
	if err != nil {
		fatal(err)
	}
	if *dumpMapping {
		fmt.Printf("application %s on %s: %d cores\n\ncode placement (IM word addresses):\n", *app, arch, v.Cores)
		names := make([]string, 0, len(v.Res.CodePlacement))
		for n := range v.Res.CodePlacement {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			base := v.Res.CodePlacement[n]
			fmt.Printf("  %-18s bank %d @ %#06x\n", n, base/4096, base)
		}
		fmt.Println("\ndata placement (DM word addresses):")
		names = names[:0]
		for n := range v.Res.DataPlacement {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s @ %#06x\n", n, v.Res.DataPlacement[n])
		}
		return
	}

	sig, err := signal.Synthesize(base, *duration+2)
	if err != nil {
		fatal(err)
	}
	p, err := v.NewPlatform(sig, *clock*1e6, *voltage)
	if err != nil {
		fatal(err)
	}
	p.SetExact(*exact)
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		p.SetTracer(rec)
	}
	if err := p.RunSeconds(*duration); err != nil {
		fatal(err)
	}
	c := p.Counters()
	label := *app
	if scenarioName != "" {
		label = scenarioName + ":" + label
	}
	fmt.Printf("%s on %s at %.2f MHz / %.2f V for %.1fs simulated (%s @ %g Hz)\n",
		label, arch, *clock, *voltage, *duration, sig.Kind(), sig.BaseRateHz())
	fmt.Printf("  cycles %d, instructions %d, ADC samples %d, overruns %d\n", c.Cycles, c.Instrs, c.ADCSamples, p.Overruns())
	fmt.Printf("  IM broadcast %.2f%%, DM broadcast %.2f%%, run-time overhead %.2f%%\n",
		c.IMBroadcastPct(), c.DMBroadcastPct(), c.RuntimeOverheadPct())
	fmt.Printf("  code overhead %.2f%%, active IM banks %d, active DM banks %d\n",
		v.Res.Image.CodeOverheadPct(), p.ActiveIMBanks(), p.ActiveDMBanks())
	if !*exact && c.Cycles > 0 {
		fmt.Printf("  fast-forward: %d leaps skipped %d of %d cycles (%.2f%%)\n",
			p.FFLeaps(), p.FFSkippedCycles(), c.Cycles, 100*float64(p.FFSkippedCycles())/float64(c.Cycles))
	}
	rep, err := p.PowerReport(power.DefaultParams())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  avg power %.1f uW (dynamic %.1f, leakage %.1f)\n", rep.TotalUW, rep.TotalDynamicUW, rep.TotalLeakUW)
	for comp := power.Component(0); comp < power.NumComponents; comp++ {
		fmt.Printf("    %-14s %6.1f uW\n", comp, rep.ComponentUW(comp))
	}
	if errs := p.ErrCodes(); len(errs) > 0 {
		fmt.Printf("  application errors: %d (first %#x)\n", len(errs), errs[0].Value)
	}
	if viol := p.Violations(); len(viol) > 0 {
		fmt.Printf("  sync violations: %v\n", viol)
	}
	if rec != nil {
		fmt.Printf("\nevent trace:\n%s", rec.Summary())
		if err := rec.WriteTimeline(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// runSweep solves and measures one application on every architecture variant
// (exp.Fig6Archs: SC first, so the "vs SC" column normalizes against ms[0])
// through the parallel sweep engine and prints the comparison.
func runSweep(app string, opts exp.Options, jobs int) {
	s := exp.NewSweep(jobs, power.DefaultParams())
	s.Progress = exp.ProgressPrinter(os.Stderr)
	points := make([]exp.Point, 0, len(exp.Fig6Archs))
	for _, arch := range exp.Fig6Archs {
		points = append(points, exp.Point{App: app, Arch: arch, Opts: opts})
	}
	ms, err := s.Run(context.Background(), points)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s for %.1fs simulated, operating points solved per architecture\n\n", app, opts.Duration)
	fmt.Printf("%-10s %8s %8s %9s %10s %10s %8s\n",
		"arch", "MHz", "V", "cores", "power uW", "dyn uW", "vs SC")
	scUW := ms[0].Report.TotalUW
	for i, m := range ms {
		fmt.Printf("%-10s %8.2f %8.2f %9d %10.1f %10.1f %7.1f%%\n",
			points[i].Arch, m.Op.FreqHz/1e6, m.Op.VoltageV, m.Cores,
			m.Report.TotalUW, m.Report.TotalDynamicUW, 100*m.Report.TotalUW/scUW)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
