// Command wbsn-sim runs one benchmark application on one architecture
// variant and prints the execution metrics, optionally dumping the mapping
// (code placement and data layout, paper Fig. 4). With -sweep it instead
// compares the application across all three architectures at their solved
// operating points, fanning the per-architecture solves out across the
// parallel sweep engine. With -scenario the input signal (kind, rates,
// per-channel divisors, seed, pathological share) and the default
// application and duration come from a declarative scenario file instead of
// the ECG flags. With -checkpoint the platform state is dumped at the end of
// the run and a later invocation with the same configuration resumes it,
// continuing the simulation exactly where it stopped (in -sweep mode the
// flag instead persists the session's solved operating points).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/signal"
	"repro/internal/trace"
)

// Distinct exit statuses for CI smoke tests: a run that ended with the sync
// unit's timeout IRQ fired, or wedged in a detected deadlock, must be
// distinguishable both from success and from generic failures (exit 1).
const (
	exitSyncTimeout = 3 // the sync unit's per-core timeout fired during the run
	exitDeadlock    = 4 // the run ended with gated cores and no wake source
)

// checkpointMeta assembles the identity a single-run checkpoint must match
// to be resumed: the snapshot alone cannot prove it belongs to this program
// image and input record, so the full configuration is recorded beside it
// and compared field by field on resume.
func checkpointMeta(app string, arch power.Arch, clockHz, voltageV float64, exact bool, sig *signal.Source) map[string]string {
	meta := map[string]string{
		"app":       app,
		"arch":      arch.String(),
		"clock_hz":  fmt.Sprintf("%v", clockHz),
		"voltage_v": fmt.Sprintf("%v", voltageV),
		"exact":     fmt.Sprintf("%v", exact),
		"signal":    fmt.Sprintf("%+v", sig.Cfg),
	}
	for ch := 0; ch < signal.MaxChannels; ch++ {
		// Trace lengths pin the synthesized duration: a record of a
		// different length wraps differently, so resuming under it would
		// silently diverge from an uninterrupted run.
		meta[fmt.Sprintf("trace_len%d", ch)] = fmt.Sprintf("%d", len(sig.Traces[ch]))
	}
	return meta
}

// resumeCheckpoint loads path (if present) and restores it onto p after
// validating that every metadata field matches the current invocation.
func resumeCheckpoint(path string, meta map[string]string, p *platform.Platform) (resumed bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	file, err := platform.ReadSnapshotFile(f)
	if err != nil {
		return false, err
	}
	for k, want := range meta {
		if got := file.Meta[k]; got != want {
			return false, fmt.Errorf("checkpoint %s was taken under %s=%s, this invocation has %s=%s; rerun with matching flags or remove the file",
				path, k, got, k, want)
		}
	}
	if err := p.Restore(file.Snap); err != nil {
		return false, err
	}
	return true, nil
}

// writeCheckpoint dumps the platform state atomically.
func writeCheckpoint(path string, meta map[string]string, p *platform.Platform) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := platform.WriteSnapshotFile(tmp, &platform.SnapshotFile{Meta: meta, Snap: p.Snapshot()}); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func main() {
	app := flag.String("app", apps.MF3L, "application: 3l-mf, 3l-mmd, rp-class")
	archName := flag.String("arch", "mc", "architecture preset: sc, mc, mc-nosync (or any registered descriptor name)")
	syncSpec := flag.String("sync", "", "sync-architecture descriptor overriding -arch: a registered name (e.g. from a scenario \"sync\" stanza) or a structural spec like 'multi,groups=0x0F+0x18,timeout=50000000'")
	clock := flag.Float64("clock-mhz", 1.0, "platform clock in MHz")
	voltage := flag.Float64("voltage", 0.5, "supply voltage in V")
	duration := flag.Float64("duration", 5, "simulated seconds")
	patho := flag.Float64("pathological", 0.2, "pathological-event share (rp-class)")
	seed := flag.Int64("seed", 1, "synthetic record seed")
	scenarioPath := flag.String("scenario", "", "scenario file providing the signal configuration (and default app/duration)")
	dumpMapping := flag.Bool("dump-mapping", false, "print code/data placement and exit")
	traceN := flag.Int("trace", 0, "record platform events and print the last N")
	exact := flag.Bool("exact", false, "disable idle fast-forward; simulate every cycle (bit-identical results, slower)")
	sweepArchs := flag.Bool("sweep", false, "solve and measure the app on sc, mc-nosync and mc (ignores -arch/-clock-mhz/-voltage; incompatible with -trace/-dump-mapping)")
	probe := flag.Float64("probe", 2.5, "simulated seconds per operating-point probe (-sweep)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel sweep workers (-sweep; results are identical for any value)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: resume the simulation from it when present (same flags required) and rewrite it after -duration more seconds; with -sweep, persists solved operating points instead")
	record := flag.Float64("record", 0, "synthesized record length in seconds (0 = -duration+2); generators are not prefix-stable across lengths, so checkpointed runs and any run they should be compared against must pin the same -record")
	timelineOut := flag.String("timeline-out", "", "write the run's event timeline as Chrome trace-event JSON (loads in Perfetto / chrome://tracing); observation only — results are bit-identical and all fast paths stay engaged")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics registry (counters + histograms) as stable JSON to this file")
	timelineCap := flag.Int("timeline-cap", obs.DefaultTimelineCap, "timeline ring capacity in events; the oldest events drop beyond it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *jobs < 1 {
		fatal(fmt.Errorf("-jobs must be positive, got %d (it bounds the -sweep worker pool; 1 = serial)", *jobs))
	}
	if *timelineCap < 1 {
		fatal(fmt.Errorf("-timeline-cap must be positive, got %d (the timeline is a ring of that many events; omit -timeline-out to disable it)", *timelineCap))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	// Explicitly-set flags override the scenario file's values.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	base := signal.Config{Kind: signal.KindECG, Seed: *seed, PathologicalFrac: *patho}
	scenarioName := ""
	if *scenarioPath != "" {
		scn, err := scenario.Load(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		base = scn.Signal
		scenarioName = scn.Name
		if set["seed"] {
			base.Seed = *seed
		}
		if set["pathological"] {
			base.PathologicalFrac = *patho
		}
		if !set["app"] {
			*app = scn.Apps[0]
		}
		if !set["duration"] {
			*duration = scn.DurationS
		}
		if !set["probe"] {
			*probe = scn.ProbeS
		}
	}

	// The metrics registry always exists — it is the uniform stderr stats
	// surface replacing the old ad-hoc stdout stats lines — while the
	// timeline ring is only allocated when it will be exported. Attaching
	// the sink never changes simulated results (see docs/OBSERVABILITY.md).
	reg := obs.NewRegistry()
	var sink *obs.Sink
	if *timelineOut != "" || *metricsOut != "" {
		var tl *obs.Timeline
		if *timelineOut != "" {
			tl = obs.NewTimeline(*timelineCap)
		}
		sink = obs.NewSink(tl, reg)
	}

	if *sweepArchs {
		if *dumpMapping || *traceN > 0 {
			fatal(fmt.Errorf("-sweep compares solved operating points and is incompatible with -dump-mapping and -trace; run those against one -arch"))
		}
		runSweep(*app, exp.Options{
			Duration: *duration, ProbeDuration: *probe,
			PathoFrac: base.PathologicalFrac, Seed: base.Seed,
			Source: base, Scenario: scenarioName, Exact: *exact,
			Obs: sink,
		}, *jobs, *checkpoint, reg)
		writeObsOutputs(sink, reg, *timelineOut, *metricsOut)
		return
	}

	// -sync takes precedence over -arch; both resolve through the registry,
	// so scenario-registered custom descriptors work in either flag.
	spec := *archName
	if *syncSpec != "" {
		spec = *syncSpec
	}
	arch, err := power.ParseArchSpec(spec)
	if err != nil {
		fatal(err)
	}
	v, err := apps.Build(*app, arch)
	if err != nil {
		fatal(err)
	}
	if *dumpMapping {
		fmt.Printf("application %s on %s: %d cores\n\ncode placement (IM word addresses):\n", *app, arch, v.Cores)
		names := make([]string, 0, len(v.Res.CodePlacement))
		for n := range v.Res.CodePlacement {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			base := v.Res.CodePlacement[n]
			fmt.Printf("  %-18s bank %d @ %#06x\n", n, base/4096, base)
		}
		fmt.Println("\ndata placement (DM word addresses):")
		names = names[:0]
		for n := range v.Res.DataPlacement {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-18s @ %#06x\n", n, v.Res.DataPlacement[n])
		}
		return
	}

	recordS := *record
	if recordS == 0 {
		recordS = *duration + 2
	}
	sig, err := signal.Synthesize(base, recordS)
	if err != nil {
		fatal(err)
	}
	p, err := v.NewPlatform(sig, *clock*1e6, *voltage)
	if err != nil {
		fatal(err)
	}
	p.SetExact(*exact)
	var meta map[string]string
	startCycle := uint64(0)
	if *checkpoint != "" {
		meta = checkpointMeta(*app, arch, *clock*1e6, *voltage, *exact, sig)
		resumed, err := resumeCheckpoint(*checkpoint, meta, p)
		if err != nil {
			fatal(err)
		}
		if resumed {
			startCycle = p.Cycle()
			fmt.Fprintf(os.Stderr, "checkpoint: resumed %s at cycle %d (%.2fs simulated)\n",
				*checkpoint, p.Cycle(), float64(p.Cycle())/(*clock*1e6))
		}
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		p.SetTracer(rec)
	}
	if sink != nil {
		p.SetObserver(sink)
	}
	if err := p.RunSeconds(*duration); err != nil {
		fatal(err)
	}
	if *checkpoint != "" {
		if err := writeCheckpoint(*checkpoint, meta, p); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint: wrote %s at cycle %d\n", *checkpoint, p.Cycle())
	}
	c := p.Counters()
	label := *app
	if scenarioName != "" {
		label = scenarioName + ":" + label
	}
	// Simulated time is derived from the cycle count, so a resumed run
	// reports its cumulative duration (identical output to one
	// uninterrupted run of the total length).
	fmt.Printf("%s on %s at %.2f MHz / %.2f V for %.1fs simulated (%s @ %g Hz)\n",
		label, arch, *clock, *voltage, float64(p.Cycle())/(*clock*1e6), sig.Kind(), sig.BaseRateHz())
	fmt.Printf("  cycles %d, instructions %d, ADC samples %d, overruns %d\n", c.Cycles, c.Instrs, c.ADCSamples, p.Overruns())
	fmt.Printf("  IM broadcast %.2f%%, DM broadcast %.2f%%, run-time overhead %.2f%%\n",
		c.IMBroadcastPct(), c.DMBroadcastPct(), c.RuntimeOverheadPct())
	fmt.Printf("  code overhead %.2f%%, active IM banks %d, active DM banks %d\n",
		v.Res.Image.CodeOverheadPct(), p.ActiveIMBanks(), p.ActiveDMBanks())
	// Engine diagnostics (idle/spin/block fast-path work) now flow through
	// the metrics registry and print uniformly on stderr below — stdout
	// carries only simulated results, so runs can be byte-compared without
	// stripping stats lines. Spin/block odometers reset on a checkpoint
	// restore (unlike the idle counters, which the snapshot carries) and
	// therefore describe this invocation's segment, published alongside
	// its cycle count.
	p.PublishMetrics(reg)
	reg.Add("sim.segment_cycles", p.Cycle()-startCycle)
	rep, err := p.PowerReport(power.DefaultParams())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  avg power %.1f uW (dynamic %.1f, leakage %.1f)\n", rep.TotalUW, rep.TotalDynamicUW, rep.TotalLeakUW)
	for comp := power.Component(0); comp < power.NumComponents; comp++ {
		fmt.Printf("    %-14s %6.1f uW\n", comp, rep.ComponentUW(comp))
	}
	if errs := p.ErrCodes(); len(errs) > 0 {
		fmt.Printf("  application errors: %d (first %#x)\n", len(errs), errs[0].Value)
	}
	if viol := p.Violations(); len(viol) > 0 {
		fmt.Printf("  sync violations: %v\n", viol)
	}
	if c.SyncTimeouts > 0 {
		fmt.Printf("  sync timeouts: %d\n", c.SyncTimeouts)
	}
	if rec != nil {
		fmt.Printf("\nevent trace:\n%s", rec.Summary())
		if err := rec.WriteTimeline(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if err := reg.WriteText(os.Stderr, "stats "); err != nil {
		fatal(err)
	}
	writeObsOutputs(sink, reg, *timelineOut, *metricsOut)
	// The full report has printed; now degrade the exit status if the run
	// ended badly. Deadlock wins over timeout: a descriptor whose timeout
	// fired but recovered kept making progress, a wedged platform did not.
	if diag := p.DeadlockDiagnosis(); diag != "" {
		fmt.Fprintf(os.Stderr, "wbsn-sim: %s\n", diag)
		os.Exit(exitDeadlock)
	}
	if c.SyncTimeouts > 0 {
		fmt.Fprintf(os.Stderr, "wbsn-sim: %d sync timeout(s) fired and recovered via IRQ; raise the descriptor's timeout_cycles or fix the rendezvous\n",
			c.SyncTimeouts)
		os.Exit(exitSyncTimeout)
	}
}

// runSweep solves and measures one application on every architecture variant
// (exp.Fig6Archs: SC first, so the "vs SC" column normalizes against ms[0])
// through the parallel sweep engine and prints the comparison. A checkpoint
// file, when given, persists the session's solved operating points across
// invocations (the platform-snapshot form of -checkpoint needs a single
// fixed configuration, which a sweep by definition does not have).
func runSweep(app string, opts exp.Options, jobs int, checkpoint string, reg *obs.Registry) {
	s := exp.NewSweep(jobs, power.DefaultParams())
	s.Progress = exp.ProgressPrinter(os.Stderr)
	if checkpoint != "" {
		if _, err := os.Stat(checkpoint); err == nil {
			if err := s.Session.LoadCheckpoint(checkpoint); err != nil {
				fatal(err)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fatal(err)
		}
	}
	points := make([]exp.Point, 0, len(exp.Fig6Archs))
	for _, arch := range exp.Fig6Archs {
		points = append(points, exp.Point{App: app, Arch: arch, Opts: opts})
	}
	ms, err := s.Run(context.Background(), points)
	if checkpoint != "" {
		if serr := s.Session.SaveCheckpoint(checkpoint); serr != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", serr)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s for %.1fs simulated, operating points solved per architecture\n\n", app, opts.Duration)
	fmt.Printf("%-10s %8s %8s %9s %10s %10s %8s\n",
		"arch", "MHz", "V", "cores", "power uW", "dyn uW", "vs SC")
	scUW := ms[0].Report.TotalUW
	for i, m := range ms {
		fmt.Printf("%-10s %8.2f %8.2f %9d %10.1f %10.1f %7.1f%%\n",
			points[i].Arch, m.Op.FreqHz/1e6, m.Op.VoltageV, m.Cores,
			m.Report.TotalUW, m.Report.TotalDynamicUW, 100*m.Report.TotalUW/scUW)
	}
	s.Session.PublishMetrics(reg)
	if err := reg.WriteText(os.Stderr, "stats "); err != nil {
		fatal(err)
	}
}

// writeObsOutputs writes the -timeline-out and -metrics-out files (each
// only when requested). The timeline export is the Chrome trace-event
// JSON form loadable in Perfetto; the metrics export is the registry's
// stable JSON document consumed by tools/benchjson.
func writeObsOutputs(sink *obs.Sink, reg *obs.Registry, timelinePath, metricsPath string) {
	if timelinePath != "" {
		f, err := os.Create(timelinePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, sink.Events()); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// writeHeapProfile snapshots the heap after a final GC, so the profile shows
// retained memory rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
