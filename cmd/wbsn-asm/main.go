// Command wbsn-asm assembles a WB16 source file and prints the encoded
// instruction listing with disassembly.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	codeBase := flag.Int("code-base", 0, "base IM word address")
	dataBase := flag.Int("data-base", 16, "base DM word address")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wbsn-asm [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code, data, syms, err := asm.AssembleSnippet(string(src), *codeBase, *dataBase)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("; %d instructions, %d data words, %d symbols\n", len(code), len(data), len(syms))
	for i, w := range code {
		fmt.Printf("%06x: %06x  %s\n", *codeBase+i, w, isa.Decode(w))
	}
	if len(data) > 0 {
		fmt.Println("; data")
		for i, w := range data {
			fmt.Printf("%06x: %04x\n", *dataBase+i, w)
		}
	}
}
