// Command wbsn-serve runs the operating-point solving service: the
// long-running form of wbsn-sim/wbsn-bench, exposing solve, measure and
// sweep as HTTP/JSON endpoints over one shared session. Identical
// concurrent requests coalesce onto one simulation, results persist in a
// content-addressed store (-store) across restarts — including the
// probe-boundary warm snapshots that let measurements resume where the
// solve's verification probe ended — and every response body is
// byte-identical to what a cold single-threaded run of the same request
// would print. See docs/SERVE.md for the API and the determinism contract.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
	scenarioDir := flag.String("scenario-dir", "scenarios", "directory scanned for *.json scenario files servable by name (empty: none)")
	storeDir := flag.String("store", "", "content-addressed result store directory; solved points, probe demands and warm snapshots persist here across restarts (empty: in-memory only)")
	templateCap := flag.Int("template-cap", 64, "max pristine platform templates kept in memory (LRU; 0 = unbounded)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel workers per sweep request (results are identical for any value)")
	timelineCap := flag.Int("timeline-cap", 0, "event-timeline ring capacity shared by all simulations (0 = no timeline; observation only)")
	flag.Parse()
	if *jobs < 1 {
		fatal(fmt.Errorf("-jobs must be positive, got %d (it bounds each sweep request's worker pool)", *jobs))
	}
	if *templateCap < 0 {
		fatal(fmt.Errorf("-template-cap must be >= 0, got %d (0 keeps the template cache unbounded)", *templateCap))
	}
	if *timelineCap < 0 {
		fatal(fmt.Errorf("-timeline-cap must be >= 0, got %d (0 disables the timeline)", *timelineCap))
	}

	// The default scenario directory is a convenience, not a requirement:
	// when it does not exist (serving from outside the repo), run without
	// scenarios. An explicitly-set -scenario-dir must exist.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["scenario-dir"] {
		if _, err := os.Stat(*scenarioDir); err != nil {
			*scenarioDir = ""
		}
	}

	engine, err := serve.NewEngine(serve.Config{
		ScenarioDir: *scenarioDir,
		StoreDir:    *storeDir,
		TemplateCap: *templateCap,
		Jobs:        *jobs,
		TimelineCap: *timelineCap,
	})
	if err != nil {
		fatal(err)
	}

	if st := engine.Store(); st != nil {
		solves, demands, warms, err := st.Len()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "store: %s (%d solved points, %d probe demands, %d warm snapshots)\n",
			st.Dir(), solves, demands, warms)
	}
	fmt.Fprintf(os.Stderr, "scenarios: %v\n", engine.Scenarios())

	// Listen before announcing, so "serving on ..." (with the resolved port)
	// is a reliable readiness signal for scripts.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serving on http://%s\n", ln.Addr())
	if err := http.Serve(ln, engine.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
