// Command wbsn-bench regenerates the paper's evaluation artifacts — Table I,
// Figure 6 and Figure 7 — and, with -scenario, solves and measures the
// operating-point grid of declarative scenario files (EMG, PPG, multi-rate
// mixes) through the same parallel sweep engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"strings"

	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/scenario"
)

// runScenario solves and measures one scenario file's (app x arch) grid and
// prints its operating-point table. Results are collected by grid index, so
// the output is byte-identical for any -jobs value. applyFlags layers the
// explicitly-set command-line flags over the scenario's options.
func runScenario(ctx context.Context, sweep *exp.Sweep, path string, applyFlags func(*exp.Options)) error {
	scn, err := scenario.Load(path)
	if err != nil {
		return err
	}
	opts := scn.Options()
	applyFlags(&opts)
	points := scn.Points(opts)
	ms, err := sweep.Run(ctx, points)
	if err != nil {
		return err
	}
	fmt.Printf("== scenario %s: %s @ %g Hz, %.1fs simulated ==\n",
		scn.Name, scn.Signal.Kind, scn.Signal.SampleRateHz, opts.Duration)
	if scn.Description != "" {
		fmt.Printf("   %s\n", scn.Description)
	}
	fmt.Print(exp.FormatPoints(points, ms))
	fmt.Println()
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "table1, fig6, fig7 or all")
	scenarios := flag.String("scenario", "", "comma-separated scenario files; when set, only the scenario grids run")
	duration := flag.Float64("duration", 10, "simulated seconds per measured run (paper: 60)")
	probe := flag.Float64("probe", 2.5, "simulated seconds per operating-point probe")
	patho := flag.Float64("pathological", 0.2, "RP-CLASS pathological-beat share for table1/fig6")
	seed := flag.Int64("seed", 1, "synthetic ECG seed")
	exact := flag.Bool("exact", false, "disable idle fast-forward; simulate every cycle (bit-identical results, slower)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel sweep workers (results are identical for any value; 1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress per-point progress on stderr")
	flag.Parse()

	opts := exp.Options{Duration: *duration, ProbeDuration: *probe, PathoFrac: *patho, Seed: *seed, Exact: *exact}
	params := power.DefaultParams()
	ctx := context.Background()

	// One engine across all experiments: the memoized signal cache is
	// shared, so records reused between Table I, Figure 6, Figure 7 and
	// the scenario grids are synthesized once.
	sweep := exp.NewSweep(*jobs, params)
	if !*quiet {
		sweep.Progress = exp.ProgressPrinter(os.Stderr)
	}

	if *scenarios != "" {
		// Explicitly-set flags override the scenario files' values (the
		// same precedence wbsn-sim applies).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		applyFlags := func(o *exp.Options) {
			o.Exact = *exact
			if set["duration"] {
				o.Duration = *duration
			}
			if set["probe"] {
				o.ProbeDuration = *probe
			}
			if set["pathological"] {
				o.PathoFrac = *patho
			}
			if set["seed"] {
				o.Seed = *seed
			}
		}
		for _, path := range strings.Split(*scenarios, ",") {
			if err := runScenario(ctx, sweep, strings.TrimSpace(path), applyFlags); err != nil {
				fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("table1", func() error {
		rows, err := sweep.TableI(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Table I: single-core (SC) vs multi-core (MC) executions ==")
		fmt.Print(exp.FormatTableI(rows))
		fmt.Println()
		return nil
	})
	run("fig6", func() error {
		bars, err := sweep.Figure6(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 6: power decomposition (SC, MC no-sync, MC proposed) ==")
		fmt.Print(exp.FormatFigure6(bars))
		fmt.Println()
		return nil
	})
	run("fig7", func() error {
		pts, err := sweep.Figure7(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 7: RP-CLASS power vs pathological-beat share ==")
		fmt.Print(exp.FormatFigure7(pts))
		fmt.Println()
		return nil
	})
}
