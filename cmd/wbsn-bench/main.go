// Command wbsn-bench regenerates the paper's evaluation artifacts — Table I,
// Figure 6 and Figure 7 — and, with -scenario, solves and measures the
// operating-point grid of declarative scenario files (EMG, PPG, multi-rate
// mixes) through the same parallel sweep engine. All experiments share one
// checkpointable Session: -checkpoint persists solved operating points and
// probe demands across invocations (re-runs skip the operating-point search
// and print byte-identical results), and -format json emits the
// operating-point tables as one JSON object per grid point for tracking
// bench trajectories across commits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"strings"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/scenario"
)

// bench bundles the run-wide state: the shared sweep engine (and through it
// the session), the output mode, and the JSON rows accumulated across
// experiments.
type bench struct {
	sweep      *exp.Sweep
	format     string
	checkpoint string
	jsonRows   []exp.PointJSON

	// Observability surfaces: the registry is the uniform stderr stats
	// sink (and -metrics-out document); the sink additionally feeds the
	// -timeline-out event timeline when requested. Observation only —
	// solved points and measurements are bit-identical either way.
	reg         *obs.Registry
	sink        *obs.Sink
	timelineOut string
	metricsOut  string
}

// fail saves whatever the session solved so far (a failing grid must not
// forfeit its finished points on the next attempt), reports the error and
// exits.
func (b *bench) fail(prefix string, err error) {
	b.saveCheckpoint()
	fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
	os.Exit(1)
}

func (b *bench) saveCheckpoint() {
	if b.checkpoint == "" {
		return
	}
	if err := b.sweep.Session.SaveCheckpoint(b.checkpoint); err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		return
	}
	solved, demands := b.sweep.Session.CheckpointSize()
	fmt.Fprintf(os.Stderr, "checkpoint: wrote %s (%d solved points, %d probe demands)\n",
		b.checkpoint, solved, demands)
}

// finish publishes the session's reuse and fast-forward work into the
// metrics registry, prints the registry as the uniform "stats" block on
// stderr (progress channel, so diff-based comparisons of stdout stay
// clean) unless -quiet, and writes the requested observability exports.
func (b *bench) finish(quiet bool) {
	b.sweep.Session.PublishMetrics(b.reg)
	if !quiet {
		if err := b.reg.WriteText(os.Stderr, "stats "); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	b.writeObsOutputs()
}

// writeObsOutputs writes the -timeline-out (Chrome trace-event JSON,
// Perfetto-loadable) and -metrics-out (stable registry JSON consumed by
// tools/benchjson) files when requested. Session stats must already be
// published (finish).
func (b *bench) writeObsOutputs() {
	if b.timelineOut != "" {
		f, err := os.Create(b.timelineOut)
		if err != nil {
			b.fail("timeline-out", err)
		}
		if err := obs.WriteChromeTrace(f, b.sink.Events()); err != nil {
			f.Close()
			b.fail("timeline-out", err)
		}
		if err := f.Close(); err != nil {
			b.fail("timeline-out", err)
		}
	}
	if b.metricsOut != "" {
		f, err := os.Create(b.metricsOut)
		if err != nil {
			b.fail("metrics-out", err)
		}
		if err := b.reg.WriteJSON(f); err != nil {
			f.Close()
			b.fail("metrics-out", err)
		}
		if err := f.Close(); err != nil {
			b.fail("metrics-out", err)
		}
	}
}

func (b *bench) loadCheckpoint() {
	if b.checkpoint == "" {
		return
	}
	if _, err := os.Stat(b.checkpoint); errors.Is(err, os.ErrNotExist) {
		return
	}
	if err := b.sweep.Session.LoadCheckpoint(b.checkpoint); err != nil {
		// Exit without the usual partial-progress save: nothing was loaded,
		// so saving would overwrite the (corrupt or foreign-versioned, but
		// possibly recoverable) file with an empty session.
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		os.Exit(1)
	}
	solved, demands := b.sweep.Session.CheckpointSize()
	fmt.Fprintf(os.Stderr, "checkpoint: loaded %s (%d solved points, %d probe demands)\n",
		b.checkpoint, solved, demands)
}

// emit routes one solved grid to the selected output: a rendered table now,
// or JSON rows flushed at the end of the run.
func (b *bench) emit(rows []exp.PointJSON, table func()) {
	if b.format == "json" {
		b.jsonRows = append(b.jsonRows, rows...)
		return
	}
	table()
}

func (b *bench) flushJSON() {
	if b.format != "json" {
		return
	}
	out, err := exp.MarshalPoints(b.jsonRows)
	if err != nil {
		b.fail("json", err)
	}
	os.Stdout.Write(out)
}

// runScenario solves and measures one scenario file's (app x arch) grid and
// prints its operating-point table. Results are collected by grid index, so
// the output is byte-identical for any -jobs value. applyFlags layers the
// explicitly-set command-line flags over the scenario's options.
func (b *bench) runScenario(ctx context.Context, path string, applyFlags func(*exp.Options)) error {
	scn, err := scenario.Load(path)
	if err != nil {
		return err
	}
	opts := scn.Options()
	applyFlags(&opts)
	points := scn.Points(opts)
	ms, err := b.sweep.Run(ctx, points)
	if err != nil {
		return err
	}
	b.emit(exp.JSONPoints("scenario", points, ms), func() {
		fmt.Printf("== scenario %s: %s @ %g Hz, %.1fs simulated ==\n",
			scn.Name, scn.Signal.Kind, scn.Signal.SampleRateHz, opts.Duration)
		if scn.Description != "" {
			fmt.Printf("   %s\n", scn.Description)
		}
		fmt.Print(exp.FormatPoints(points, ms))
		fmt.Println()
	})
	return nil
}

func main() {
	experiment := flag.String("experiment", "all", "table1, fig6, fig7 or all")
	scenarios := flag.String("scenario", "", "comma-separated scenario files; when set, only the scenario grids run")
	syncSpecs := flag.String("sync", "", "semicolon-separated sync-architecture descriptors (preset names or structural specs like 'multi,groups=0x0F+0x18,timeout=50000000'); when set, only that (app x descriptor) grid runs")
	appNames := flag.String("app", "", "comma-separated applications for the -sync grid (default: all)")
	duration := flag.Float64("duration", 10, "simulated seconds per measured run (paper: 60)")
	probe := flag.Float64("probe", 2.5, "simulated seconds per operating-point probe")
	patho := flag.Float64("pathological", 0.2, "RP-CLASS pathological-beat share for table1/fig6")
	seed := flag.Int64("seed", 1, "synthetic ECG seed")
	exact := flag.Bool("exact", false, "disable idle fast-forward; simulate every cycle (bit-identical results, slower)")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel sweep workers (results are identical for any value; 1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress per-point progress on stderr")
	format := flag.String("format", "table", "output format: table (rendered) or json (one object per grid point)")
	checkpoint := flag.String("checkpoint", "", "session checkpoint file: loaded when present, rewritten after the run; re-runs reuse solved operating points (bit-identical results)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	timelineOut := flag.String("timeline-out", "", "write the simulated-event timeline as Chrome trace-event JSON (load in Perfetto); observation only, results are bit-identical")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry (counters and cycle histograms) as stable JSON")
	timelineCap := flag.Int("timeline-cap", obs.DefaultTimelineCap, "timeline ring capacity in events; oldest events are dropped beyond it")
	flag.Parse()
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (want table or json)\n", *format)
		os.Exit(1)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "-jobs must be positive, got %d (it bounds the sweep worker pool; 1 = serial)\n", *jobs)
		os.Exit(1)
	}
	if *timelineCap < 1 {
		fmt.Fprintf(os.Stderr, "-timeline-cap must be positive, got %d (the timeline is a ring of that many events; omit -timeline-out to disable it)\n", *timelineCap)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	// The registry always exists (it backs the uniform stderr stats block);
	// the timeline sink is built only when an export was requested, so the
	// default path keeps the engines' disabled-observer fast path.
	reg := obs.NewRegistry()
	var sink *obs.Sink
	if *timelineOut != "" || *metricsOut != "" {
		var tl *obs.Timeline
		if *timelineOut != "" {
			tl = obs.NewTimeline(*timelineCap)
		}
		sink = obs.NewSink(tl, reg)
	}

	opts := exp.Options{Duration: *duration, ProbeDuration: *probe, PathoFrac: *patho, Seed: *seed, Exact: *exact, Obs: sink}
	params := power.DefaultParams()
	ctx := context.Background()

	// One engine across all experiments: the session's memoized signal
	// cache, built images, probe runs and solved points are shared, so work
	// reused between Table I, Figure 6, Figure 7 and the scenario grids
	// happens once.
	b := &bench{sweep: exp.NewSweep(*jobs, params), format: *format, checkpoint: *checkpoint,
		reg: reg, sink: sink, timelineOut: *timelineOut, metricsOut: *metricsOut}
	if !*quiet {
		b.sweep.Progress = exp.ProgressPrinter(os.Stderr)
	}
	b.loadCheckpoint()

	if *syncSpecs != "" && *scenarios != "" {
		fmt.Fprintln(os.Stderr, "-sync and -scenario both select the whole grid; pick one (scenario files can declare descriptors in their \"sync\" stanza instead)")
		os.Exit(1)
	}
	if *syncSpecs != "" {
		// Sync-architecture sweep: one grid of the chosen applications
		// against an explicit descriptor list. Descriptors are separated by
		// semicolons because structural specs contain commas.
		var archs []power.Arch
		for _, spec := range strings.Split(*syncSpecs, ";") {
			arch, err := power.ParseArchSpec(strings.TrimSpace(spec))
			if err != nil {
				b.fail("sync", err)
			}
			archs = append(archs, arch)
		}
		names := apps.Names
		if *appNames != "" {
			names = nil
			for _, n := range strings.Split(*appNames, ",") {
				names = append(names, strings.TrimSpace(n))
			}
		}
		points := exp.Grid(names, archs, opts)
		ms, err := b.sweep.Run(ctx, points)
		if err != nil {
			b.fail("sync", err)
		}
		b.emit(exp.JSONPoints("sync", points, ms), func() {
			fmt.Println("== sync-architecture sweep: solved operating points per descriptor ==")
			fmt.Print(exp.FormatPoints(points, ms))
			fmt.Println()
		})
		b.flushJSON()
		b.saveCheckpoint()
		b.finish(*quiet)
		return
	}

	if *scenarios != "" {
		// Explicitly-set flags override the scenario files' values (the
		// same precedence wbsn-sim applies).
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		applyFlags := func(o *exp.Options) {
			o.Exact = *exact
			o.Obs = sink
			if set["duration"] {
				o.Duration = *duration
			}
			if set["probe"] {
				o.ProbeDuration = *probe
			}
			if set["pathological"] {
				o.PathoFrac = *patho
			}
			if set["seed"] {
				o.Seed = *seed
			}
		}
		for _, path := range strings.Split(*scenarios, ",") {
			if err := b.runScenario(ctx, strings.TrimSpace(path), applyFlags); err != nil {
				b.fail("scenario", err)
			}
		}
		b.flushJSON()
		b.saveCheckpoint()
		b.finish(*quiet)
		return
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			b.fail(name, err)
		}
	}
	run("table1", func() error {
		points := exp.TableIGrid(apps.Names, opts)
		ms, err := b.sweep.Run(ctx, points)
		if err != nil {
			return err
		}
		b.emit(exp.JSONPoints("table1", points, ms), func() {
			fmt.Println("== Table I: single-core (SC) vs multi-core (MC) executions ==")
			fmt.Print(exp.FormatTableI(exp.TableIRows(apps.Names, ms)))
			fmt.Println()
		})
		return nil
	})
	run("fig6", func() error {
		points := exp.Fig6Grid(opts)
		ms, err := b.sweep.Run(ctx, points)
		if err != nil {
			return err
		}
		b.emit(exp.JSONPoints("fig6", points, ms), func() {
			fmt.Println("== Figure 6: power decomposition (SC, MC no-sync, MC proposed) ==")
			fmt.Print(exp.FormatFigure6(exp.Fig6BarsOf(points, ms)))
			fmt.Println()
		})
		return nil
	})
	run("fig7", func() error {
		points := exp.Fig7Grid(opts)
		ms, err := b.sweep.Run(ctx, points)
		if err != nil {
			return err
		}
		b.emit(exp.JSONPoints("fig7", points, ms), func() {
			fmt.Println("== Figure 7: RP-CLASS power vs pathological-beat share ==")
			fmt.Print(exp.FormatFigure7(exp.Fig7PointsOf(ms)))
			fmt.Println()
		})
		return nil
	})
	b.flushJSON()
	b.saveCheckpoint()
	b.finish(*quiet)
}

// writeHeapProfile snapshots the heap after a final GC, so the profile shows
// retained memory rather than garbage awaiting collection.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
