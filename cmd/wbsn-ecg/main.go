// Command wbsn-ecg dumps a synthetic multi-lead ECG record as CSV, with the
// ground-truth beat annotations as comments.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ecg"
)

func main() {
	duration := flag.Float64("duration", 10, "record length in seconds")
	patho := flag.Float64("pathological", 0, "pathological-beat share 0..1")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := ecg.DefaultConfig()
	cfg.Seed = *seed
	cfg.PathologicalFrac = *patho
	sig, err := ecg.Synthesize(cfg, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("# synthetic ECG: %.0f Hz, %d samples, %d beats (%d pathological)\n",
		cfg.SampleRateHz, sig.Samples(), len(sig.Beats), sig.PathologicalCount())
	for _, b := range sig.Beats {
		label := "N"
		if b.Pathological {
			label = "V"
		}
		fmt.Printf("# beat %s at sample %d (onset %d, offset %d)\n", label, b.RPeak, b.Onset, b.Offset)
	}
	fmt.Println("sample,lead0,lead1,lead2")
	for i := 0; i < sig.Samples(); i++ {
		fmt.Printf("%d,%d,%d,%d\n", i, sig.Leads[0][i], sig.Leads[1][i], sig.Leads[2][i])
	}
}
