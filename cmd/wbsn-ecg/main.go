// Command wbsn-ecg dumps a synthetic multi-lead ECG record as CSV, with the
// ground-truth beat annotations as comments. It is the ECG-only alias of
// cmd/wbsn-signal, kept for compatibility; new signal kinds (EMG, PPG) and
// multi-rate dumps live there.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/signal"
)

func main() {
	duration := flag.Float64("duration", 10, "record length in seconds")
	patho := flag.Float64("pathological", 0, "pathological-beat share 0..1")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := signal.Config{Kind: signal.KindECG, Seed: *seed, PathologicalFrac: *patho}
	src, err := signal.Synthesize(cfg, *duration)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := signal.WriteCSV(w, src); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
