// Command wbsn-signal dumps any registered synthetic signal kind (ECG, EMG,
// PPG) as CSV for inspection, with the ground-truth event annotations as
// comments. It supersedes cmd/wbsn-ecg, which remains as an ECG-only alias.
// The signal can be configured by flags or taken from a scenario file; with
// multi-rate divisors the decimated channels leave blank cells on the base
// indices they skip, making the per-channel sampling grids visible.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/scenario"
	"repro/internal/signal"
)

func main() {
	kind := flag.String("kind", "ecg", fmt.Sprintf("signal kind: %s", strings.Join(signal.Kinds(), ", ")))
	duration := flag.Float64("duration", 10, "record length in seconds")
	rate := flag.Float64("rate", 0, "base sample rate in Hz (0 = kind default)")
	rateDiv := flag.String("rate-div", "", "per-channel rate divisors, e.g. 1,2,4")
	eventRate := flag.Float64("event-rate", 0, "events (beats/bursts/pulses) per second (0 = kind default)")
	patho := flag.Float64("pathological", 0, "pathological-event share 0..1")
	amplitude := flag.Float64("amplitude", 0, "principal wave amplitude in LSB (0 = kind default)")
	noise := flag.Float64("noise", 0, "noise amplitude in LSB (0 = kind default)")
	seed := flag.Int64("seed", 1, "generator seed")
	scenarioPath := flag.String("scenario", "", "take the signal configuration from a scenario file instead of the flags")
	flag.Parse()

	// Explicitly-set flags override the scenario file's values, the
	// precedence wbsn-sim and wbsn-bench apply.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	cfg := signal.Config{
		Kind:             signal.Kind(*kind),
		SampleRateHz:     *rate,
		Seed:             *seed,
		PathologicalFrac: *patho,
		EventRateHz:      *eventRate,
		Amplitude:        *amplitude,
		NoiseAmp:         *noise,
	}
	if *scenarioPath != "" {
		scn, err := scenario.Load(*scenarioPath)
		if err != nil {
			fatal(err)
		}
		base := scn.Signal
		if set["kind"] {
			base.Kind = cfg.Kind
		}
		if set["rate"] {
			base.SampleRateHz = cfg.SampleRateHz
		}
		if set["seed"] {
			base.Seed = cfg.Seed
		}
		if set["pathological"] {
			base.PathologicalFrac = cfg.PathologicalFrac
		}
		if set["event-rate"] {
			base.EventRateHz = cfg.EventRateHz
		}
		if set["amplitude"] {
			base.Amplitude = cfg.Amplitude
		}
		if set["noise"] {
			base.NoiseAmp = cfg.NoiseAmp
		}
		cfg = base
	}
	if *rateDiv != "" {
		divs := strings.Split(*rateDiv, ",")
		if len(divs) > signal.MaxChannels {
			fatal(fmt.Errorf("-rate-div has %d entries, the ADC has %d channels", len(divs), signal.MaxChannels))
		}
		cfg.RateDiv = [signal.MaxChannels]int{}
		for ch, d := range divs {
			v, err := strconv.Atoi(strings.TrimSpace(d))
			if err != nil {
				fatal(fmt.Errorf("-rate-div entry %q: %w", d, err))
			}
			cfg.RateDiv[ch] = v
		}
	}

	src, err := signal.Synthesize(cfg, *duration)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := signal.WriteCSV(w, src); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
