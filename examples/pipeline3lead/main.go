// Pipeline3lead runs the 3L-MMD benchmark — three lock-step filter cores
// feeding a combiner and a delineator through producer-consumer
// synchronization (paper Fig. 5-b) — and prints the detected fiducials
// against the synthetic ground truth.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/power"
	"repro/internal/signal"
)

func main() {
	sig, err := ecg.Synthesize(ecg.DefaultConfig(), 8)
	if err != nil {
		log.Fatal(err)
	}
	v, err := apps.Build(apps.MMD3L, power.MC)
	if err != nil {
		log.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), 1.2e6, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.RunSeconds(6); err != nil {
		log.Fatal(err)
	}
	rescnt, _ := v.ReadWord(p, "mmd_rescnt")
	res, err := v.ReadRing(p, "mmd_res", 3*apps.ResultSlots, int(rescnt)*3)
	if err != nil {
		log.Fatal(err)
	}
	delay := dsp.DefaultMFParams().TotalDelay()
	fmt.Printf("5-core 3L-MMD pipeline, %d QRS complexes delineated in 6 s:\n", rescnt)
	for i := 0; i+2 < len(res); i += 3 {
		peak := int(uint16(res[i+1]))
		truth := "?"
		for _, b := range sig.Beats {
			if d := b.RPeak + delay - peak; d >= -10 && d <= 10 {
				truth = fmt.Sprintf("ground truth R at %d", b.RPeak)
				break
			}
		}
		fmt.Printf("  QRS onset %5d  peak %5d  offset %5d   (%s)\n",
			uint16(res[i]), peak, uint16(res[i+2]), truth)
	}
	c := p.Counters()
	fmt.Printf("\nIM broadcast %.1f%%, sync wake-ups %d, overruns %d\n",
		c.IMBroadcastPct(), c.SyncWakes, p.Overruns())
}
