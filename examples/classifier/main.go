// Classifier runs the RP-CLASS benchmark — event-driven heartbeat
// classification where the four-core delineation chain sleeps until the
// classifier flags a pathological beat (paper Fig. 5-c) — and shows how the
// chain's activity follows the arrhythmia burden.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/ecg"
	"repro/internal/power"
	"repro/internal/signal"
)

func main() {
	for _, share := range []float64{0, 0.25, 1.0} {
		cfg := ecg.DefaultConfig()
		cfg.PathologicalFrac = share
		sig, err := ecg.Synthesize(cfg, 8)
		if err != nil {
			log.Fatal(err)
		}
		v, err := apps.Build(apps.RPClass, power.MC)
		if err != nil {
			log.Fatal(err)
		}
		p, err := v.NewPlatform(signal.FromECG(sig), 1.2e6, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.RunSeconds(6); err != nil {
			log.Fatal(err)
		}
		bcnt, _ := v.ReadWord(p, "rp_bcnt")
		dcnt, _ := v.ReadWord(p, "rp_delcnt")
		var chainBusy uint64
		for c := 2; c <= 5; c++ {
			chainBusy += p.CoreBusy(c)
		}
		rep, err := p.PowerReport(power.DefaultParams())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pathological share %3.0f%%: %2d beats classified, %2d delineations, chain busy %7d cycles, %5.1f uW\n",
			share*100, bcnt, dcnt, chainBusy, rep.TotalUW)
	}
	fmt.Println("\nthe delineation chain's activity (and power) follows the arrhythmia burden;")
	fmt.Println("with no ectopic beats the four chain cores stay clock-gated throughout.")
}
