// Quickstart: a two-core producer-consumer program written directly in WB16
// assembly, synchronized with the paper's SINC/SDEC/SNOP/SLEEP instructions,
// linked with bank directives and run on the simulated platform.
package main

import (
	"fmt"
	"log"

	"repro/internal/link"
	"repro/internal/platform"
	"repro/internal/power"
)

const producer = `
.code producer
p_entry:
    li   r2, 0       ; items produced
    li   r3, 10      ; item count
    la   r4, buf
ploop:
    sinc #PT         ; register: starting to compute (paper Fig. 3-a)
    mul  r5, r2, r2  ; the "computation": square the index
    add  r6, r4, r2
    sw   r5, 0(r6)   ; publish the item...
    addi r2, r2, 1
    la   r6, widx
    sw   r2, 0(r6)   ; ...and the write index
    sdec #PT         ; data ready: wakes registered consumers at zero
    blt  r2, r3, ploop
    halt
`

const consumer = `
.code consumer
c_entry:
    li   r2, 0       ; items consumed
    li   r7, 0       ; checksum
    li   r3, 10
cloop:
    snop #PT         ; register interest without touching the counter
    la   r6, widx
    lw   r5, 0(r6)
    bne  r5, r2, have
    sleep            ; clock-gate until the producer's SDEC releases us
    j    cloop
have:
    la   r6, buf
    add  r6, r6, r2
    lw   r5, 0(r6)
    add  r7, r7, r5
    addi r2, r2, 1
    blt  r2, r3, cloop
    la   r6, result
    sw   r7, 0(r6)
    halt
`

const data = `
.equ PT, 0          ; synchronization point id
.data shared
widx:   .word 0
buf:    .space 16
result: .word 0
`

func main() {
	res, err := link.Build(link.Spec{
		Sources:       map[string]string{"producer": producer, "consumer": consumer, "data": data},
		CodeBanks:     map[string]int{"producer": 0, "consumer": 1},
		EntryLabels:   []string{"p_entry", "c_entry"},
		NumSyncPoints: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := platform.New(platform.Config{Arch: power.MC, ClockHz: 1e6, VoltageV: 0.5}, res.Image)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		log.Fatal(err)
	}
	sum, _ := p.PeekData(0, uint16(res.Symbols["result"]))
	c := p.Counters()
	fmt.Printf("consumer checksum: %d (expect %d = sum of squares 0..9)\n", sum, 285)
	fmt.Printf("cycles: %d, sync ops: %d, wake-ups: %d, consumer gated cycles saved: %d\n",
		c.Cycles, c.SyncOps, c.SyncWakes, c.CoreGated)
	fmt.Printf("all cores halted: %v, violations: %d\n", p.AllHalted(), len(p.Violations()))
}
