// Lockstep demonstrates the paper's core mechanism: three cores running the
// identical filter phase fetch merged (broadcast) instructions while
// aligned, diverge at data-dependent branches, and are realigned by the
// SINC/SDEC+SLEEP recovery idiom. Removing the idiom (the no-sync variant)
// visibly degrades broadcasting and forces a higher clock.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/ecg"
	"repro/internal/power"
	"repro/internal/signal"
)

func main() {
	sig, err := ecg.Synthesize(ecg.DefaultConfig(), 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, arch := range []power.Arch{power.MC, power.MCNoSync} {
		v, err := apps.Build(apps.MF3L, arch)
		if err != nil {
			log.Fatal(err)
		}
		p, err := v.NewPlatform(signal.FromECG(sig), 1.6e6, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.RunSeconds(4); err != nil {
			log.Fatal(err)
		}
		c := p.Counters()
		fmt.Printf("%-10s IM broadcast %5.1f%%  fetch conflicts %8d  stalls %8d  sync ops %6d  overruns %d\n",
			arch, c.IMBroadcastPct(), c.IMConflict, c.CoreStall, c.SyncOps, p.Overruns())
	}
	fmt.Println("\nwith lock-step recovery the three replicated cores re-merge after every")
	fmt.Println("divergent window scan; without it, a single branch mismatch leaves them")
	fmt.Println("serializing on their shared instruction bank until the next sample.")
}
