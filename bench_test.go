// Package repro_test hosts the benchmark harness regenerating every table
// and figure of the paper's evaluation, plus ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration simulates the configuration and reports the
// paper's headline quantities as custom metrics (uW, percent, MHz). Short
// simulated durations keep the suite tractable; cmd/wbsn-bench exposes the
// paper's full 60 s runs.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/signal"
)

func benchOpts() exp.Options {
	return exp.Options{Duration: 2.5, ProbeDuration: 1.5, PathoFrac: 0.2, Seed: 1}
}

func benchSignal(b *testing.B, app string, opts exp.Options) *signal.Source {
	b.Helper()
	base := signal.Config{Kind: signal.KindECG, Seed: opts.Seed, PathologicalFrac: opts.PathoFrac}
	sig, err := signal.Synthesize(apps.SourceConfig(app, base), opts.Duration+2)
	if err != nil {
		b.Fatal(err)
	}
	return sig
}

// benchTableIApp measures one Table I column pair and reports the headline
// metrics.
func benchTableIApp(b *testing.B, app string) {
	opts := benchOpts()
	params := power.DefaultParams()
	sig := benchSignal(b, app, opts)
	for i := 0; i < b.N; i++ {
		scOp, err := exp.SolveOperatingPoint(app, power.SC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		mcOp, err := exp.SolveOperatingPoint(app, power.MC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		sc, err := exp.Measure(app, power.SC, scOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		mc, err := exp.Measure(app, power.MC, mcOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc.Report.TotalUW, "SC-uW")
		b.ReportMetric(mc.Report.TotalUW, "MC-uW")
		b.ReportMetric(100*(1-mc.Report.TotalUW/sc.Report.TotalUW), "saving-%")
		b.ReportMetric(sc.Op.FreqHz/1e6, "SC-MHz")
		b.ReportMetric(mc.Op.FreqHz/1e6, "MC-MHz")
		b.ReportMetric(mc.Counters.IMBroadcastPct(), "IM-bcast-%")
		b.ReportMetric(mc.Counters.RuntimeOverheadPct(), "rt-ovh-%")
	}
}

// BenchmarkTableI_3LMF regenerates Table I's 3L-MF columns.
func BenchmarkTableI_3LMF(b *testing.B) { benchTableIApp(b, apps.MF3L) }

// BenchmarkTableI_3LMMD regenerates Table I's 3L-MMD columns.
func BenchmarkTableI_3LMMD(b *testing.B) { benchTableIApp(b, apps.MMD3L) }

// BenchmarkTableI_RPCLASS regenerates Table I's RP-CLASS columns.
func BenchmarkTableI_RPCLASS(b *testing.B) { benchTableIApp(b, apps.RPClass) }

// benchFig6App measures one benchmark's three Figure 6 bars.
func benchFig6App(b *testing.B, app string) {
	opts := benchOpts()
	params := power.DefaultParams()
	sig := benchSignal(b, app, opts)
	for i := 0; i < b.N; i++ {
		scOp, err := exp.SolveOperatingPoint(app, power.SC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		mcOp, err := exp.SolveOperatingPoint(app, power.MC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		nsOp, err := exp.SolveOperatingPoint(app, power.MCNoSync, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		sc, err := exp.Measure(app, power.SC, scOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		ns, err := exp.Measure(app, power.MCNoSync, nsOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		mc, err := exp.Measure(app, power.MC, mcOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sc.Report.TotalUW, "SC-uW")
		b.ReportMetric(ns.Report.TotalUW, "MCnosync-uW")
		b.ReportMetric(mc.Report.TotalUW, "MC-uW")
		b.ReportMetric(100*mc.Report.TotalUW/sc.Report.TotalUW, "MC-vs-SC-%")
		b.ReportMetric(100*ns.Report.TotalUW/sc.Report.TotalUW, "nosync-vs-SC-%")
	}
}

// BenchmarkFigure6_3LMF regenerates Figure 6's 3L-MF group.
func BenchmarkFigure6_3LMF(b *testing.B) { benchFig6App(b, apps.MF3L) }

// BenchmarkFigure6_3LMMD regenerates Figure 6's 3L-MMD group.
func BenchmarkFigure6_3LMMD(b *testing.B) { benchFig6App(b, apps.MMD3L) }

// BenchmarkFigure6_RPCLASS regenerates Figure 6's RP-CLASS group.
func BenchmarkFigure6_RPCLASS(b *testing.B) { benchFig6App(b, apps.RPClass) }

// BenchmarkFigure7 regenerates the Figure 7 sweep endpoints and midpoint:
// the pathological-share positions that define the curve's shape.
func BenchmarkFigure7(b *testing.B) {
	params := power.DefaultParams()
	for i := 0; i < b.N; i++ {
		for _, share := range []float64{0, 0.20, 1.00} {
			opts := benchOpts()
			opts.PathoFrac = share
			base := signal.Config{Kind: signal.KindECG, Seed: opts.Seed, PathologicalFrac: share}
			sig, err := signal.Synthesize(apps.SourceConfig(apps.RPClass, base), opts.Duration+2)
			if err != nil {
				b.Fatal(err)
			}
			scOp, err := exp.SolveOperatingPoint(apps.RPClass, power.SC, sig, opts)
			if err != nil {
				b.Fatal(err)
			}
			mcOp, err := exp.SolveOperatingPoint(apps.RPClass, power.MC, sig, opts)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := exp.Measure(apps.RPClass, power.SC, scOp, sig, opts, params)
			if err != nil {
				b.Fatal(err)
			}
			mc, err := exp.Measure(apps.RPClass, power.MC, mcOp, sig, opts, params)
			if err != nil {
				b.Fatal(err)
			}
			red := 100 * (1 - mc.Report.TotalUW/sc.Report.TotalUW)
			switch share {
			case 0:
				b.ReportMetric(red, "reduction-0%%-patho")
			case 0.20:
				b.ReportMetric(red, "reduction-20%%-patho")
			case 1.00:
				b.ReportMetric(red, "reduction-100%%-patho")
			}
		}
	}
}

// BenchmarkAblationSyncISE quantifies the proposed ISE against active
// waiting at each variant's own feasible operating point: the gap is the
// combined value of clock gating and lock-step recovery.
func BenchmarkAblationSyncISE(b *testing.B) {
	opts := benchOpts()
	params := power.DefaultParams()
	sig := benchSignal(b, apps.MF3L, opts)
	for i := 0; i < b.N; i++ {
		mcOp, err := exp.SolveOperatingPoint(apps.MF3L, power.MC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		nsOp, err := exp.SolveOperatingPoint(apps.MF3L, power.MCNoSync, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		mc, err := exp.Measure(apps.MF3L, power.MC, mcOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		ns, err := exp.Measure(apps.MF3L, power.MCNoSync, nsOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ns.Report.TotalUW/mc.Report.TotalUW, "nosync-vs-sync-x")
		b.ReportMetric(nsOp.FreqHz/mcOp.FreqHz, "freq-penalty-x")
	}
}

// BenchmarkAblationVFS isolates the voltage-frequency-scaling contribution:
// the multi-core measured at its own frequency but the single-core voltage.
func BenchmarkAblationVFS(b *testing.B) {
	opts := benchOpts()
	params := power.DefaultParams()
	sig := benchSignal(b, apps.MF3L, opts)
	for i := 0; i < b.N; i++ {
		mcOp, err := exp.SolveOperatingPoint(apps.MF3L, power.MC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		mc, err := exp.Measure(apps.MF3L, power.MC, mcOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		noVFS := mcOp
		noVFS.VoltageV = 0.6 // the single-core operating voltage
		mcHighV, err := exp.Measure(apps.MF3L, power.MC, noVFS, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mc.Report.TotalUW, "MC-0.5V-uW")
		b.ReportMetric(mcHighV.Report.TotalUW, "MC-0.6V-uW")
		b.ReportMetric(100*(1-mc.Report.TotalUW/mcHighV.Report.TotalUW), "VFS-gain-%")
	}
}

// BenchmarkAblationBroadcast reports the instruction-memory energy saved by
// lock-step broadcasting: merged fetches never reach a bank.
func BenchmarkAblationBroadcast(b *testing.B) {
	opts := benchOpts()
	params := power.DefaultParams()
	sig := benchSignal(b, apps.MF3L, opts)
	for i := 0; i < b.N; i++ {
		mcOp, err := exp.SolveOperatingPoint(apps.MF3L, power.MC, sig, opts)
		if err != nil {
			b.Fatal(err)
		}
		mc, err := exp.Measure(apps.MF3L, power.MC, mcOp, sig, opts, params)
		if err != nil {
			b.Fatal(err)
		}
		saved := float64(mc.Counters.IMReqs-mc.Counters.IMAccesses) * params.IMReadPJ *
			params.DynScale(mcOp.VoltageV) / mc.Report.DurationS * 1e-6
		b.ReportMetric(saved, "IM-saved-uW")
		b.ReportMetric(mc.Counters.IMBroadcastPct(), "IM-bcast-%")
	}
}

// BenchmarkSweepParallel measures the full Table I grid through the sweep
// engine at one worker versus all cores: the wall-clock ratio is the
// parallel speedup (the grid's six points are independent, so it should
// approach min(cores, 6) on idle machines). Each iteration builds a fresh
// engine so the signal cache is cold, matching a real CLI invocation;
// results are byte-identical across worker counts (see
// internal/exp/sweep_test.go).
func BenchmarkSweepParallel(b *testing.B) {
	opts := benchOpts()
	jobsList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		jobsList = append(jobsList, n)
	}
	for _, jobs := range jobsList {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := exp.NewSweep(jobs, power.DefaultParams())
				rows, err := s.TableI(context.Background(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(apps.Names) {
					b.Fatalf("got %d rows", len(rows))
				}
			}
		})
	}
}

// BenchmarkIdleFastForward pits the exact cycle-by-cycle engine against the
// idle fast-forward engine on an idle-dominated run (multi-core RP-CLASS at
// a generous probe-class 16 MHz clock: the 250 Hz workload leaves ~97% of
// cycles fully gated, the regime exp's operating-point probes run in),
// tracking the speedup the event-driven leap delivers in the perf
// trajectory. Both modes produce bit-identical results (see
// internal/platform's golden-equivalence tests); only wall-clock differs.
func BenchmarkIdleFastForward(b *testing.B) {
	opts := benchOpts()
	sig := benchSignal(b, apps.RPClass, opts)
	v, err := apps.Build(apps.RPClass, power.MC)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, exact bool) float64 {
		b.Helper()
		total := uint64(0)
		for i := 0; i < b.N; i++ {
			p, err := v.NewPlatform(sig, 16e6, 1.0)
			if err != nil {
				b.Fatal(err)
			}
			p.SetExact(exact)
			if err := p.RunSeconds(1); err != nil {
				b.Fatal(err)
			}
			total += p.Cycle()
		}
		rate := float64(total) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "cycles/s")
		return rate
	}
	var exactRate, fastRate float64
	b.Run("exact", func(b *testing.B) { exactRate = run(b, true) })
	b.Run("fast-forward", func(b *testing.B) { fastRate = run(b, false) })
	if exactRate > 0 && fastRate > 0 {
		b.Logf("fast-forward speedup: %.1fx", fastRate/exactRate)
	}
}

// BenchmarkSpinFastForward pits the exact cycle-by-cycle engine against the
// spin-loop fast-forward on the busy-wait baseline (3L-MMD on MC-nosync at a
// probe-class 16 MHz clock). Between samples the combiner and delineator
// cores poll shared counters, which defeats quiescence detection and used to
// force the no-sync column through cycle-by-cycle simulation; the spin
// engine proves those polls periodic and leaps them, collapsing the column
// toward the MC column's wall-clock. Both modes produce bit-identical
// results (internal/platform/spinff_test.go and the scenario golden suite);
// only wall-clock differs.
func BenchmarkSpinFastForward(b *testing.B) {
	opts := benchOpts()
	sig := benchSignal(b, apps.MMD3L, opts)
	v, err := apps.Build(apps.MMD3L, power.MCNoSync)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, exact bool) float64 {
		b.Helper()
		total := uint64(0)
		for i := 0; i < b.N; i++ {
			p, err := v.NewPlatform(sig, 16e6, 1.0)
			if err != nil {
				b.Fatal(err)
			}
			p.SetExact(exact)
			if err := p.RunSeconds(1); err != nil {
				b.Fatal(err)
			}
			total += p.Cycle()
			if !exact && p.SpinSkippedCycles() == 0 {
				b.Fatal("spin fast-forward never engaged on the busy-wait baseline")
			}
		}
		rate := float64(total) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "cycles/s")
		return rate
	}
	var exactRate, fastRate float64
	b.Run("exact", func(b *testing.B) { exactRate = run(b, true) })
	b.Run("fast-forward", func(b *testing.B) { fastRate = run(b, false) })
	if exactRate > 0 && fastRate > 0 {
		b.Logf("spin fast-forward speedup: %.1fx", fastRate/exactRate)
	}
}

// blockKernelImage builds a fast-forward-resistant single-core compute
// kernel: a long unrolled ALU body with a store per iteration (side effects
// defeat the spin detector; the backward jump is far longer than any spin
// signature) and no sleep or ADC dependence (nothing for the idle engine).
// Every cycle is compute-bound, so the basic-block engine carries
// essentially the whole run.
func blockKernelImage() *platform.Image {
	enc := func(op isa.Opcode, rd, rs1, rs2 uint8, imm int32) isa.Word {
		return isa.MustEncode(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
	}
	w := []isa.Word{
		enc(isa.OpADDI, 4, 0, 0, 256), // data pointer
		enc(isa.OpADDI, 1, 0, 0, 1),
	}
	loop := int32(len(w))
	for i := 0; i < 10; i++ {
		w = append(w,
			enc(isa.OpADD, 2, 1, 1, 0),
			enc(isa.OpXOR, 3, 2, 1, 0),
			enc(isa.OpADDI, 1, 1, 0, 1),
			enc(isa.OpSRLI, 2, 3, 0, 1),
		)
	}
	w = append(w, enc(isa.OpSW, 0, 4, 3, 0))
	w = append(w, enc(isa.OpJAL, 0, 0, 0, loop-int32(len(w))-1))
	return &platform.Image{
		Code:    []platform.CodeSeg{{Base: 0, Words: w}},
		Entries: []int{0},
		Shared:  []platform.DataSeg{{Base: 256, Words: make([]uint16, 4)}},
	}
}

// BenchmarkBlockEngine pits the exact cycle-by-cycle engine against the
// predecoded basic-block engine on a compute-bound single-core kernel — the
// regime neither fast-forward engine can touch, where Step's per-cycle
// classify/fetch/arbitrate/execute dispatch used to be the simulator's floor.
// Both modes produce bit-identical results (internal/platform's block-engine
// differential and golden suites); only wall-clock differs. The data point
// recorded in BENCH_engine.json tracks this speedup across commits.
func BenchmarkBlockEngine(b *testing.B) {
	const cycles = 2_000_000
	run := func(b *testing.B, exact bool) float64 {
		b.Helper()
		total := uint64(0)
		for i := 0; i < b.N; i++ {
			p, err := platform.New(platform.Config{
				Arch: power.SC, ClockHz: 1e6, VoltageV: 0.6, Exact: exact,
			}, blockKernelImage())
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(cycles); err != nil {
				b.Fatal(err)
			}
			total += p.Cycle()
			if !exact && p.BlockCycles() == 0 {
				b.Fatal("block engine never engaged on the compute-bound kernel")
			}
		}
		rate := float64(total) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "cycles/s")
		return rate
	}
	var exactRate, blockRate float64
	b.Run("exact", func(b *testing.B) { exactRate = run(b, true) })
	b.Run("block", func(b *testing.B) { blockRate = run(b, false) })
	if exactRate > 0 && blockRate > 0 {
		b.Logf("block engine speedup: %.1fx", blockRate/exactRate)
	}
}

// blockKernelMCImage is the four-core lock-step variant of the compute
// kernel: the same unrolled ALU body on every core with the per-iteration
// store routed through the private data window, so the ATU spreads the four
// cores across distinct DM banks and every cycle stays conflict-free — the
// regime the multi-core stride engine is built for.
func blockKernelMCImage() *platform.Image {
	enc := func(op isa.Opcode, rd, rs1, rs2 uint8, imm int32) isa.Word {
		return isa.MustEncode(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
	}
	w := []isa.Word{
		enc(isa.OpLUI, 4, 0, 0, 19), // r4 = 1216: private data pointer
		enc(isa.OpADDI, 1, 0, 0, 1),
	}
	loop := int32(len(w))
	for i := 0; i < 10; i++ {
		w = append(w,
			enc(isa.OpADD, 2, 1, 1, 0),
			enc(isa.OpXOR, 3, 2, 1, 0),
			enc(isa.OpADDI, 1, 1, 0, 1),
			enc(isa.OpSRLI, 2, 3, 0, 1),
		)
	}
	w = append(w, enc(isa.OpSW, 0, 4, 3, 0))
	w = append(w, enc(isa.OpJAL, 0, 0, 0, loop-int32(len(w))-1))
	return &platform.Image{
		Code:        []platform.CodeSeg{{Base: 0, Words: w}},
		Entries:     []int{0, 0, 0, 0},
		SharedLimit: 1024,
		Shared:      []platform.DataSeg{{Base: 256, Words: make([]uint16, 4)}},
	}
}

// BenchmarkMultiCoreBlockEngine pits the exact cycle-by-cycle engine against
// the multi-core lock-step stride engine on a compute-bound four-core kernel
// — the multi-core analogue of BenchmarkBlockEngine, where Step additionally
// pays per-cycle crossbar arbitration and synchronizer commits for every
// core. Both modes produce bit-identical results (the block-engine
// differential suites and the randomized cross-engine fuzzer in
// internal/platform); only wall-clock differs. The data point recorded in
// BENCH_engine.json tracks this speedup across commits.
func BenchmarkMultiCoreBlockEngine(b *testing.B) {
	const cycles = 2_000_000
	run := func(b *testing.B, exact bool) float64 {
		b.Helper()
		total := uint64(0)
		for i := 0; i < b.N; i++ {
			p, err := platform.New(platform.Config{
				Arch: power.MC, ClockHz: 1e6, VoltageV: 0.5, Exact: exact,
			}, blockKernelMCImage())
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Run(cycles); err != nil {
				b.Fatal(err)
			}
			total += p.Cycle()
			if !exact && p.BlockMCCycles() == 0 {
				b.Fatal("multi-core stride engine never engaged on the lock-step kernel")
			}
		}
		rate := float64(total) / b.Elapsed().Seconds()
		b.ReportMetric(rate, "cycles/s")
		return rate
	}
	var exactRate, strideRate float64
	b.Run("exact", func(b *testing.B) { exactRate = run(b, true) })
	b.Run("mcstride", func(b *testing.B) { strideRate = run(b, false) })
	if exactRate > 0 && strideRate > 0 {
		b.Logf("multi-core stride speedup: %.1fx", strideRate/exactRate)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: platform
// cycles per wall second for the 8-core-class configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sig := benchSignal(b, apps.MF3L, benchOpts())
	v, err := apps.Build(apps.MF3L, power.MC)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		p, err := v.NewPlatform(sig, 2e6, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RunSeconds(1); err != nil {
			b.Fatal(err)
		}
		total += p.Cycle()
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "cycles/s")
}
