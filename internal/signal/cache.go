package signal

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes Synthesize by (kind, normalized config, duration). The
// experiment sweep engine shares one cache across its worker pool so each
// distinct record is synthesized exactly once per grid instead of once per
// (app, arch, scenario) point; synthesis is deterministic, so a cached
// record is bit-identical to a fresh one. Callers must treat returned
// sources as immutable — they are shared.
type Cache struct {
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
	requests atomic.Int64
	synths   atomic.Int64
}

type cacheKey struct {
	cfg  Config
	durS float64
}

// cacheEntry is a single-flight slot: concurrent requests for the same key
// block on one synthesis instead of duplicating it.
type cacheEntry struct {
	once sync.Once
	src  *Source
	err  error
}

// NewCache returns an empty signal cache safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// Synthesize returns the memoized record for (cfg, duration), synthesizing
// it on first request. Keys are normalized first, so a zero-field config
// and its explicit-default spelling share one record.
func (c *Cache) Synthesize(cfg Config, duration float64) (*Source, error) {
	norm, err := Normalize(cfg)
	if err != nil {
		return nil, err
	}
	c.requests.Add(1)
	key := cacheKey{cfg: norm, durS: duration}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.synths.Add(1)
		e.src, e.err = Synthesize(norm, duration)
	})
	return e.src, e.err
}

// Synths returns how many records were actually synthesized (cache misses);
// the gap to the request count is work the memoization saved.
func (c *Cache) Synths() int { return int(c.synths.Load()) }

// Stats returns the cumulative request and synthesis counts; requests minus
// synths is the number of hits the memoization served. Both surface through
// the obs registry (the CLIs' "stats" stderr block and the serving layer's
// /v1/metrics endpoint).
func (c *Cache) Stats() (requests, synths uint64) {
	return uint64(c.requests.Load()), uint64(c.synths.Load())
}
