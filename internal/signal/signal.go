// Package signal generalizes the bio-signal front-end of the reproduction:
// where the paper evaluates its synchronization architecture on 3-lead ECG
// at a fixed 250 Hz, the ADC/trace plumbing underneath is workload-agnostic.
// This package defines a generic multi-channel Source abstraction with a
// registry of deterministic synthesizers — the existing ECG generator
// (internal/ecg) plus EMG (burst-activation envelope over band-limited
// noise) and PPG (pulse waveform with dicrotic notch, baseline wander and
// motion artifacts) — and per-channel sampling rates expressed as integer
// divisors of a base acquisition rate, matching the platform ADC's
// independent per-channel sampling grids.
//
// Every generator is a pure function of (Config, duration): records are
// bit-reproducible across runs and across the parallel sweep engine's
// memoizing Cache.
//
// The package surface, in dependency order of a typical caller: Normalize
// validates and canonicalizes a Config (the canonical form is the cache
// key, so equivalent configurations share one synthesis); Synthesize — or
// Cache.Synthesize for memoized, single-flight synthesis — produces a
// Source, the per-channel traces plus their sampling rates; FromECG wraps a
// raw internal/ecg record for callers predating the registry; WriteCSV
// dumps any Source for inspection (cmd/wbsn-signal). Registering a new
// generator kind is described in README.md ("Adding a signal kind"); the
// scenario file schema that selects kinds and rates from disk is documented
// in docs/FORMATS.md.
package signal

import (
	"fmt"
	"math"
	"sort"
)

// MaxChannels is the channel count of the platform's ADC front-end; it must
// equal periph.NumADCChannels (asserted by the platform tests — signal sits
// below periph in the dependency order and cannot import it).
const MaxChannels = 3

// Kind identifies a registered signal family.
type Kind string

// Registered signal kinds.
const (
	KindECG Kind = "ecg"
	KindEMG Kind = "emg"
	KindPPG Kind = "ppg"
)

// Config parameterizes a synthesized record. It is comparable (usable as a
// cache key); zero fields are filled with per-kind defaults by Normalize.
type Config struct {
	// Kind selects the registered synthesizer ("" means KindECG).
	Kind Kind
	// SampleRateHz is the base acquisition rate: the rate of every channel
	// whose RateDiv is 1.
	SampleRateHz float64
	// RateDiv is the per-channel rate divisor: channel ch samples at
	// SampleRateHz/RateDiv[ch] on its own index-derived grid. 0 means 1.
	RateDiv [MaxChannels]int
	// Seed selects the record; synthesis is deterministic in it.
	Seed int64
	// PathologicalFrac is the share of pathological events: ectopic beats
	// (ECG), anomalous high-amplitude bursts (EMG) or motion-corrupted
	// pulses (PPG). In [0, 1].
	PathologicalFrac float64
	// EventRateHz is the mean rate of the signal's repeating events:
	// heartbeats (ECG), activation bursts (EMG), pulses (PPG).
	EventRateHz float64
	// Amplitude is the principal wave amplitude in ADC LSB. By the
	// package-wide convention, 0 selects the kind default (configs must
	// stay comparable cache keys, so there is no omitted/explicit-zero
	// distinction); use a small non-zero value for a near-silent record.
	Amplitude float64
	// NoiseAmp is the additive measurement-noise amplitude in ADC LSB;
	// 0 selects the kind default, small non-zero values approach
	// noiselessness.
	NoiseAmp float64
}

// kindDefaults returns the per-kind zero-field defaults, installed by
// Register so a new kind needs exactly one registration call.
func kindDefaults(k Kind) (Config, error) {
	e, ok := synthesizers[k]
	if !ok {
		return Config{}, fmt.Errorf("signal: unknown kind %q (registered: %v)", k, Kinds())
	}
	return e.defaults, nil
}

// DefaultConfig returns the default configuration of a kind. Unknown kinds
// yield the zero Config (Normalize and Synthesize report the error).
func DefaultConfig(k Kind) Config {
	cfg, _ := kindDefaults(k)
	return cfg
}

// Normalize fills zero fields with the kind's defaults, maps RateDiv 0 to 1,
// and validates the result. Cache keys are normalized configurations, so an
// explicit default and a zero field memoize onto the same record.
func Normalize(cfg Config) (Config, error) {
	if cfg.Kind == "" {
		cfg.Kind = KindECG
	}
	def, err := kindDefaults(cfg.Kind)
	if err != nil {
		return Config{}, err
	}
	if cfg.SampleRateHz == 0 {
		cfg.SampleRateHz = def.SampleRateHz
	}
	if cfg.EventRateHz == 0 {
		cfg.EventRateHz = def.EventRateHz
	}
	if cfg.Amplitude == 0 {
		cfg.Amplitude = def.Amplitude
	}
	if cfg.NoiseAmp == 0 {
		cfg.NoiseAmp = def.NoiseAmp
	}
	for ch := range cfg.RateDiv {
		if cfg.RateDiv[ch] == 0 {
			cfg.RateDiv[ch] = 1
		}
		if cfg.RateDiv[ch] < 1 {
			return Config{}, fmt.Errorf("signal: channel %d rate divisor %d, want >= 1", ch, cfg.RateDiv[ch])
		}
	}
	if cfg.SampleRateHz <= 0 || cfg.EventRateHz <= 0 {
		return Config{}, fmt.Errorf("signal: non-positive rate in config %+v", cfg)
	}
	if cfg.PathologicalFrac < 0 || cfg.PathologicalFrac > 1 {
		return Config{}, fmt.Errorf("signal: pathological fraction %v out of [0,1]", cfg.PathologicalFrac)
	}
	return cfg, nil
}

// Source is a synthesized multi-channel record with ground truth: the
// simulated analog world the platform ADC samples.
type Source struct {
	// Cfg is the normalized configuration the record was synthesized from.
	Cfg Config
	// Traces holds the per-channel sample traces, each at its own rate.
	Traces [MaxChannels][]int16
	// Rates holds the per-channel sampling rates; 0 disables a channel.
	Rates [MaxChannels]float64
	// Events is the number of annotated pathological events in the record.
	Events int
	// Annotations optionally labels the record's events at base-rate sample
	// indices (R peaks, burst onsets, pulse feet).
	Annotations []Annotation
}

// Annotation is one ground-truth event of a record.
type Annotation struct {
	// At is the event's base-rate sample index (R peak, burst onset,
	// pulse foot).
	At int
	// Onset and Offset bound the event's support at base-rate indices
	// (QRS onset/offset, burst extent, pulse span).
	Onset, Offset int
	// Pathological marks ectopic beats, anomalous bursts and
	// motion-corrupted pulses.
	Pathological bool
}

// Kind returns the record's signal kind.
func (s *Source) Kind() Kind { return s.Cfg.Kind }

// BaseRateHz returns the fastest per-channel sampling rate: the rate the
// per-sample real-time deadline is derived from.
func (s *Source) BaseRateHz() float64 {
	max := 0.0
	for _, r := range s.Rates {
		if r > max {
			max = r
		}
	}
	return max
}

// Samples returns channel ch's trace length.
func (s *Source) Samples(ch int) int {
	if ch < 0 || ch >= MaxChannels {
		return 0
	}
	return len(s.Traces[ch])
}

// DurationS returns the record duration in seconds (longest channel).
func (s *Source) DurationS() float64 {
	max := 0.0
	for ch, tr := range s.Traces {
		if s.Rates[ch] <= 0 || len(tr) == 0 {
			continue
		}
		if d := float64(len(tr)) / s.Rates[ch]; d > max {
			max = d
		}
	}
	return max
}

// PathologicalCount returns the number of annotated pathological events.
func (s *Source) PathologicalCount() int { return s.Events }

// Synthesizer generates a record at the base rate on every channel;
// Synthesize applies the per-channel rate divisors afterwards.
type Synthesizer func(cfg Config, duration float64) (*Source, error)

type kindEntry struct {
	synth    Synthesizer
	defaults Config
}

var synthesizers = map[Kind]kindEntry{}

// Register installs a synthesizer for a kind together with the defaults
// Normalize substitutes for zero config fields; defaults.Kind is forced to
// k. One Register call fully opens the kind to Normalize, Synthesize,
// scenario files and the CLIs. Registering an already-bound kind panics:
// generators must be globally unambiguous for memoization to be sound.
func Register(k Kind, s Synthesizer, defaults Config) {
	if _, dup := synthesizers[k]; dup {
		panic(fmt.Sprintf("signal: kind %q registered twice", k))
	}
	defaults.Kind = k
	synthesizers[k] = kindEntry{synth: s, defaults: defaults}
}

// Kinds lists the registered kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(synthesizers))
	for k := range synthesizers {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// Synthesize generates duration seconds of signal: it normalizes the
// configuration, dispatches to the kind's registered synthesizer and
// decimates each channel to its configured rate.
func Synthesize(cfg Config, duration float64) (*Source, error) {
	cfg, err := Normalize(cfg)
	if err != nil {
		return nil, err
	}
	entry, ok := synthesizers[cfg.Kind]
	if !ok {
		return nil, fmt.Errorf("signal: kind %q has no registered synthesizer (registered: %v)", cfg.Kind, Kinds())
	}
	if n := int(duration * cfg.SampleRateHz); n <= 0 {
		return nil, fmt.Errorf("signal: non-positive duration %v at %v Hz", duration, cfg.SampleRateHz)
	}
	src, err := entry.synth(cfg, duration)
	if err != nil {
		return nil, err
	}
	src.Cfg = cfg
	for ch := range src.Traces {
		if len(src.Traces[ch]) == 0 {
			src.Rates[ch] = 0
			continue
		}
		src.Rates[ch] = cfg.SampleRateHz
		if div := cfg.RateDiv[ch]; div > 1 {
			src.Traces[ch] = decimate(src.Traces[ch], div)
			src.Rates[ch] = cfg.SampleRateHz / float64(div)
		}
	}
	return src, nil
}

// decimate keeps every div-th sample, ending phases on the strobe: the
// ADC publishes a channel's sample m at instant (m+1) periods after reset,
// so the divided channel's sample m must be the base sample captured at
// base instant (m+1)*div — base index (m+1)*div-1. An index-0 phase would
// hand the converter data div-1 base samples staler than the fast
// channel's at every shared instant.
func decimate(in []int16, div int) []int16 {
	out := make([]int16, 0, len(in)/div)
	for i := div - 1; i < len(in); i += div {
		out = append(out, in[i])
	}
	return out
}

// clamp16 quantizes an accumulated float sample to the ADC's 16-bit range.
func clamp16(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(math.Round(v))
}
