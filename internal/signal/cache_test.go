package signal

import (
	"sync"
	"testing"
)

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig(KindEMG)
	const workers = 8
	srcs := make([]*Source, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Synthesize(cfg, 2)
			if err != nil {
				t.Error(err)
				return
			}
			srcs[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if srcs[i] != srcs[0] {
			t.Fatalf("worker %d got a distinct record instance", i)
		}
	}
	if n := c.Synths(); n != 1 {
		t.Errorf("synthesized %d times for one key, want 1", n)
	}
}

func TestCacheDistinguishesKeys(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig(KindPPG)
	a, err := c.Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Different duration: distinct record.
	b, err := c.Synthesize(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different durations shared one record")
	}
	// Different kind at the same duration: distinct record.
	d, err := c.Synthesize(DefaultConfig(KindEMG), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different kinds shared one record")
	}
	if n := c.Synths(); n != 3 {
		t.Errorf("synthesized %d times for three keys, want 3", n)
	}
}

// TestCacheNormalizesKeys pins that a zero-field config and its explicit
// default spelling memoize onto one record: the experiment driver passes
// partially-filled configs while scenarios pass normalized ones.
func TestCacheNormalizesKeys(t *testing.T) {
	c := NewCache()
	a, err := c.Synthesize(Config{Kind: KindECG}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Synthesize(DefaultConfig(KindECG), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-field and explicit-default configs did not share one record")
	}
	if n := c.Synths(); n != 1 {
		t.Errorf("synthesized %d times, want 1", n)
	}
}

func TestCacheMatchesDirectSynthesis(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig(KindEMG)
	cached, err := c.Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < MaxChannels; ch++ {
		if len(cached.Traces[ch]) != len(direct.Traces[ch]) {
			t.Fatalf("channel %d length differs", ch)
		}
		for i := range cached.Traces[ch] {
			if cached.Traces[ch][i] != direct.Traces[ch][i] {
				t.Fatalf("channel %d sample %d differs: cached %d, direct %d",
					ch, i, cached.Traces[ch][i], direct.Traces[ch][i])
			}
		}
	}
}

func TestCacheRejectsInvalidConfig(t *testing.T) {
	if _, err := NewCache().Synthesize(Config{Kind: "bogus"}, 2); err == nil {
		t.Error("invalid config accepted")
	}
}
