package signal

import (
	"math"
	"math/rand"
)

func init() {
	Register(KindPPG, synthesizePPG,
		Config{SampleRateHz: 125, EventRateHz: 1.25, Amplitude: 1100, NoiseAmp: 18})
}

// ppgGain and ppgDelayS model three optical sites (or wavelengths) with
// decreasing perfusion signal and increasing pulse-transit delay.
var (
	ppgGain   = [MaxChannels]float64{1.00, 0.85, 0.70}
	ppgDelayS = [MaxChannels]float64{0, 0.012, 0.024}
)

// ppgWave is one Gaussian component of the pulse waveform, relative to the
// pulse foot: the systolic upstroke peak and the reflected diastolic wave
// whose separation forms the dicrotic notch.
type ppgWave struct {
	amp, center, sigma float64
}

var ppgWaves = []ppgWave{
	{amp: 1.00, center: 0.13, sigma: 0.055}, // systolic peak
	{amp: 0.34, center: 0.40, sigma: 0.075}, // diastolic (reflected) wave
}

// synthesizePPG generates photoplethysmogram-like pulses at EventRateHz
// with mild rate jitter, respiration-coupled baseline wander, and — for a
// PathologicalFrac share of pulses — motion artifacts: large slow
// excursions swamping the pulse, the dominant failure mode of wearable PPG.
// Motion-corrupted pulses are the record's counted pathological events.
func synthesizePPG(cfg Config, duration float64) (*Source, error) {
	n := int(duration * cfg.SampleRateHz)
	rng := rand.New(rand.NewSource(cfg.Seed))
	src := &Source{}

	// Pulse schedule.
	meanPP := 1 / cfg.EventRateHz
	var feet []float64
	var artifact []float64 // artifact amplitude per pulse, 0 = clean
	t := 0.3 * meanPP
	for t < duration {
		feet = append(feet, t)
		a := 0.0
		if rng.Float64() < cfg.PathologicalFrac {
			// Signed slow excursion, 1.5x..2.5x the pulse amplitude.
			a = (1.5 + rng.Float64()) * cfg.Amplitude
			if rng.Float64() < 0.5 {
				a = -a
			}
			src.Events++
		}
		artifact = append(artifact, a)
		src.Annotations = append(src.Annotations, Annotation{
			At:           int(t * cfg.SampleRateHz),
			Onset:        int(t * cfg.SampleRateHz),
			Offset:       int((t + 0.65) * cfg.SampleRateHz), // past the diastolic wave's support
			Pathological: a != 0,
		})
		t += meanPP * (1 + 0.03*rng.NormFloat64())
	}

	// Accumulate per channel in float, then quantize with per-channel
	// noise. Channels see the same pulses through site gain and transit
	// delay; motion shakes every site alike (it moves the whole limb).
	for ch := 0; ch < MaxChannels; ch++ {
		acc := make([]float64, n)
		for pi, ft := range feet {
			foot := ft + ppgDelayS[ch]
			for _, w := range ppgWaves {
				amp := w.amp * cfg.Amplitude * ppgGain[ch]
				lo := int((foot + w.center - 4*w.sigma) * cfg.SampleRateHz)
				hi := int((foot + w.center + 4*w.sigma) * cfg.SampleRateHz)
				if lo < 0 {
					lo = 0
				}
				if hi >= n {
					hi = n - 1
				}
				for i := lo; i <= hi; i++ {
					ts := float64(i)/cfg.SampleRateHz - (foot + w.center)
					acc[i] += amp * math.Exp(-ts*ts/(2*w.sigma*w.sigma))
				}
			}
			if a := artifact[pi]; a != 0 {
				const sigma = 0.25 // seconds: motion is slow vs the pulse
				center := ft + 0.2
				lo := int((center - 3*sigma) * cfg.SampleRateHz)
				hi := int((center + 3*sigma) * cfg.SampleRateHz)
				if lo < 0 {
					lo = 0
				}
				if hi >= n {
					hi = n - 1
				}
				for i := lo; i <= hi; i++ {
					ts := float64(i)/cfg.SampleRateHz - center
					acc[i] += a * math.Exp(-ts*ts/(2*sigma*sigma))
				}
			}
		}
		chRng := rand.New(rand.NewSource(cfg.Seed ^ int64(ch+1)*0x6A09E667))
		tr := make([]int16, n)
		for i := 0; i < n; i++ {
			ts := float64(i) / cfg.SampleRateHz
			// Perfusion baseline with respiration-coupled wander.
			base := cfg.Amplitude * ppgGain[ch] * (0.25 + 0.06*math.Sin(2*math.Pi*0.24*ts))
			tr[i] = clamp16(acc[i] + base + cfg.NoiseAmp*chRng.NormFloat64())
		}
		src.Traces[ch] = tr
	}
	return src, nil
}
