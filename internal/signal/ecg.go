package signal

import "repro/internal/ecg"

// The ECG defaults match ecg.DefaultConfig: 250 Hz, 72 bpm (1.2 * 60 ==
// 72.0 exactly in float64), R peak 1200 LSB, noise 30 LSB — keeping the
// generic path bit-identical to the legacy generator.
func init() {
	Register(KindECG, synthesizeECG,
		Config{SampleRateHz: 250, EventRateHz: 1.2, Amplitude: 1200, NoiseAmp: 30})
}

// synthesizeECG adapts the existing multi-lead ECG generator to the generic
// Source interface. The mapping is exact for the defaults: DefaultConfig's
// 250 Hz / 1.2 beats-per-second / 1200 LSB / 30 LSB reconstructs
// ecg.DefaultConfig bit-for-bit (1.2 * 60 == 72.0 in float64), so records
// produced through this package are identical to the pre-subsystem ones.
func synthesizeECG(cfg Config, duration float64) (*Source, error) {
	ec := ecg.Config{
		SampleRateHz:     cfg.SampleRateHz,
		HeartRateBPM:     cfg.EventRateHz * 60,
		RRJitter:         0.04,
		PathologicalFrac: cfg.PathologicalFrac,
		BaselineAmp:      90,
		NoiseAmp:         cfg.NoiseAmp,
		RAmplitude:       cfg.Amplitude,
		Seed:             cfg.Seed,
	}
	sig, err := ecg.Synthesize(ec, duration)
	if err != nil {
		return nil, err
	}
	src := &Source{Events: sig.PathologicalCount()}
	for ch := 0; ch < MaxChannels && ch < ecg.NumLeads; ch++ {
		src.Traces[ch] = sig.Leads[ch]
	}
	for _, b := range sig.Beats {
		src.Annotations = append(src.Annotations,
			Annotation{At: b.RPeak, Onset: b.Onset, Offset: b.Offset, Pathological: b.Pathological})
	}
	return src, nil
}

// FromECG wraps an already-synthesized ECG record as a generic single-rate
// Source, for callers (tests, examples) that drive the generator directly.
func FromECG(sig *ecg.Signal) *Source {
	src := &Source{
		Cfg: Config{
			Kind:             KindECG,
			SampleRateHz:     sig.Cfg.SampleRateHz,
			RateDiv:          [MaxChannels]int{1, 1, 1},
			Seed:             sig.Cfg.Seed,
			PathologicalFrac: sig.Cfg.PathologicalFrac,
			EventRateHz:      sig.Cfg.HeartRateBPM / 60,
			Amplitude:        sig.Cfg.RAmplitude,
			NoiseAmp:         sig.Cfg.NoiseAmp,
		},
		Events: sig.PathologicalCount(),
	}
	for ch := 0; ch < MaxChannels && ch < ecg.NumLeads; ch++ {
		src.Traces[ch] = sig.Leads[ch]
		src.Rates[ch] = sig.Cfg.SampleRateHz
	}
	for _, b := range sig.Beats {
		src.Annotations = append(src.Annotations,
			Annotation{At: b.RPeak, Onset: b.Onset, Offset: b.Offset, Pathological: b.Pathological})
	}
	return src
}
