package signal

import (
	"fmt"
	"io"
)

// WriteCSV dumps a record as CSV for inspection (cmd/wbsn-signal and the
// legacy cmd/wbsn-ecg alias). Rows are indexed on the base-rate grid; a
// decimated channel contributes a value only on the base indices it
// actually samples, leaving its cell empty in between — the blank cells
// make the per-channel sampling grids visible in the dump. Ground-truth
// annotations precede the data as comments.
func WriteCSV(w io.Writer, src *Source) error {
	cfg := src.Cfg
	if _, err := fmt.Fprintf(w, "# synthetic %s: base %.0f Hz, %d pathological events (seed %d)\n",
		cfg.Kind, cfg.SampleRateHz, src.Events, cfg.Seed); err != nil {
		return err
	}
	rows := 0
	for ch := 0; ch < MaxChannels; ch++ {
		div := cfg.RateDiv[ch]
		if div < 1 {
			div = 1
		}
		if src.Rates[ch] > 0 {
			fmt.Fprintf(w, "# channel %d: %g Hz (divisor %d), %d samples\n",
				ch, src.Rates[ch], div, len(src.Traces[ch]))
			if n := len(src.Traces[ch]) * div; n > rows {
				rows = n
			}
		} else {
			fmt.Fprintf(w, "# channel %d: disabled\n", ch)
		}
	}
	for _, a := range src.Annotations {
		label := "N"
		if a.Pathological {
			label = "V"
		}
		fmt.Fprintf(w, "# event %s at base sample %d (onset %d, offset %d)\n", label, a.At, a.Onset, a.Offset)
	}
	fmt.Fprintln(w, "sample,ch0,ch1,ch2")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(w, "%d", i)
		for ch := 0; ch < MaxChannels; ch++ {
			div := cfg.RateDiv[ch]
			if div < 1 {
				div = 1
			}
			// Decimated sample m sits at base index (m+1)*div-1, its
			// strobe instant (see signal.decimate).
			if src.Rates[ch] > 0 && (i+1)%div == 0 && (i+1)/div-1 < len(src.Traces[ch]) {
				fmt.Fprintf(w, ",%d", src.Traces[ch][(i+1)/div-1])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
