package signal

import (
	"strings"
	"testing"

	"repro/internal/ecg"
)

func TestKindsRegistered(t *testing.T) {
	got := strings.Join(Kinds(), ",")
	if got != "ecg,emg,ppg" {
		t.Fatalf("registered kinds = %q, want ecg,emg,ppg", got)
	}
}

// TestECGMatchesLegacyGenerator pins the subsumption contract: the generic
// subsystem's default ECG record is bit-identical to the pre-subsystem
// ecg.Synthesize output, so every experiment keyed on the default
// configuration reproduces the same operating points and power numbers.
func TestECGMatchesLegacyGenerator(t *testing.T) {
	cfg := DefaultConfig(KindECG)
	cfg.Seed = 7
	cfg.PathologicalFrac = 0.2
	src, err := Synthesize(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	legacyCfg := ecg.DefaultConfig()
	legacyCfg.Seed = 7
	legacyCfg.PathologicalFrac = 0.2
	legacy, err := ecg.Synthesize(legacyCfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < ecg.NumLeads; ch++ {
		if len(src.Traces[ch]) != len(legacy.Leads[ch]) {
			t.Fatalf("channel %d length %d, legacy lead %d", ch, len(src.Traces[ch]), len(legacy.Leads[ch]))
		}
		for i := range src.Traces[ch] {
			if src.Traces[ch][i] != legacy.Leads[ch][i] {
				t.Fatalf("channel %d sample %d = %d, legacy %d", ch, i, src.Traces[ch][i], legacy.Leads[ch][i])
			}
		}
		if src.Rates[ch] != 250 {
			t.Errorf("channel %d rate = %v, want 250", ch, src.Rates[ch])
		}
	}
	if src.Events != legacy.PathologicalCount() {
		t.Errorf("events = %d, legacy pathological count %d", src.Events, legacy.PathologicalCount())
	}
	if len(src.Annotations) != len(legacy.Beats) {
		t.Errorf("annotations = %d, legacy beats %d", len(src.Annotations), len(legacy.Beats))
	}
}

// TestZeroConfigNormalizes pins that a zero config is the default ECG: the
// experiment driver's zero-value Options path depends on it.
func TestZeroConfigNormalizes(t *testing.T) {
	cfg, err := Normalize(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig(KindECG)
	want.RateDiv = [MaxChannels]int{1, 1, 1}
	if cfg != want {
		t.Errorf("normalized zero config = %+v, want %+v", cfg, want)
	}
}

func TestSynthesisDeterministic(t *testing.T) {
	for _, kind := range []Kind{KindECG, KindEMG, KindPPG} {
		cfg := DefaultConfig(kind)
		cfg.Seed = 3
		cfg.PathologicalFrac = 0.3
		a, err := Synthesize(cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Synthesize(cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for ch := range a.Traces {
			for i := range a.Traces[ch] {
				if a.Traces[ch][i] != b.Traces[ch][i] {
					t.Fatalf("%s channel %d sample %d differs across identical syntheses", kind, ch, i)
				}
			}
		}
		cfg2 := cfg
		cfg2.Seed = 4
		c, err := Synthesize(cfg2, 4)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		same := true
		for i, v := range a.Traces[0] {
			if c.Traces[0][i] != v {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced an identical record", kind)
		}
	}
}

// TestEMGBurstEnvelope checks the activation structure: bursts concentrate
// the signal energy, anomalous bursts are counted, and a clean record has
// zero events.
func TestEMGBurstEnvelope(t *testing.T) {
	cfg := DefaultConfig(KindEMG)
	cfg.Seed = 5
	clean, err := Synthesize(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Events != 0 {
		t.Errorf("clean EMG reports %d pathological events", clean.Events)
	}
	if len(clean.Annotations) < 5 {
		t.Errorf("20 s at %.1f bursts/s annotated only %d bursts", cfg.EventRateHz, len(clean.Annotations))
	}
	// Peak must be well above the inter-burst noise floor.
	var peak, sum float64
	for _, v := range clean.Traces[0] {
		a := float64(v)
		if a < 0 {
			a = -a
		}
		if a > peak {
			peak = a
		}
		sum += a
	}
	mean := sum / float64(len(clean.Traces[0]))
	if peak < 6*mean {
		t.Errorf("EMG peak %.0f vs mean |x| %.1f: no burst structure", peak, mean)
	}

	cfg.PathologicalFrac = 0.5
	patho, err := Synthesize(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if patho.Events == 0 {
		t.Error("50% anomalous EMG reports zero events")
	}
}

// TestPPGPulseStructure checks the pulse waveform and motion-artifact
// counting.
func TestPPGPulseStructure(t *testing.T) {
	cfg := DefaultConfig(KindPPG)
	cfg.Seed = 5
	clean, err := Synthesize(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Events != 0 {
		t.Errorf("clean PPG reports %d pathological events", clean.Events)
	}
	// ~1.25 pulses/s over 20 s.
	if n := len(clean.Annotations); n < 20 || n > 30 {
		t.Errorf("20 s at 1.25 pulses/s annotated %d pulses, want 20..30", n)
	}
	// Systolic peaks should approach baseline + amplitude on channel 0.
	var peak int16
	for _, v := range clean.Traces[0] {
		if v > peak {
			peak = v
		}
	}
	if float64(peak) < 0.9*cfg.Amplitude {
		t.Errorf("PPG peak %d vs amplitude %.0f: pulses missing", peak, cfg.Amplitude)
	}

	cfg.PathologicalFrac = 0.6
	motion, err := Synthesize(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if motion.Events == 0 {
		t.Error("60% motion-corrupted PPG reports zero events")
	}
}

// TestDecimation pins the multi-rate contract: a divided channel is the
// strided view of its base-rate trace, at the divided rate.
func TestDecimation(t *testing.T) {
	base := DefaultConfig(KindPPG)
	base.Seed = 2
	full, err := Synthesize(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	div := base
	div.RateDiv = [MaxChannels]int{1, 2, 4}
	mixed, err := Synthesize(div, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantRates := [MaxChannels]float64{125, 62.5, 31.25}
	if mixed.Rates != wantRates {
		t.Errorf("rates = %v, want %v", mixed.Rates, wantRates)
	}
	for ch, d := range []int{1, 2, 4} {
		wantLen := len(full.Traces[ch]) / d
		if len(mixed.Traces[ch]) != wantLen {
			t.Errorf("channel %d: %d samples, want %d", ch, len(mixed.Traces[ch]), wantLen)
		}
		// Sample m is the base sample at the divided strobe instant
		// (m+1)*d, i.e. base index (m+1)*d-1 (matching the ADC's
		// instant convention, so shared instants publish equally fresh
		// data on every channel).
		for i, v := range mixed.Traces[ch] {
			if want := full.Traces[ch][(i+1)*d-1]; v != want {
				t.Fatalf("channel %d sample %d = %d, want base sample %d = %d", ch, i, v, (i+1)*d-1, want)
			}
		}
	}
	if mixed.BaseRateHz() != 125 {
		t.Errorf("base rate = %v, want 125", mixed.BaseRateHz())
	}
	if d := mixed.DurationS(); d < 3.9 || d > 4.1 {
		t.Errorf("duration = %v, want ~4", d)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Synthesize(Config{Kind: "eeg"}, 2); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Synthesize(Config{Kind: KindECG, PathologicalFrac: 1.5}, 2); err == nil {
		t.Error("out-of-range pathological fraction accepted")
	}
	if _, err := Synthesize(Config{Kind: KindECG, RateDiv: [MaxChannels]int{1, -2, 1}}, 2); err == nil {
		t.Error("negative rate divisor accepted")
	}
	if _, err := Synthesize(DefaultConfig(KindEMG), 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestFromECGRoundTrip(t *testing.T) {
	cfg := ecg.DefaultConfig()
	cfg.Seed = 9
	sig, err := ecg.Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := FromECG(sig)
	if src.Kind() != KindECG || src.BaseRateHz() != 250 {
		t.Errorf("wrapped record: kind %s rate %v", src.Kind(), src.BaseRateHz())
	}
	for ch := 0; ch < ecg.NumLeads; ch++ {
		if len(src.Traces[ch]) != len(sig.Leads[ch]) {
			t.Fatalf("channel %d length mismatch", ch)
		}
	}
	if src.Cfg.EventRateHz*60 != cfg.HeartRateBPM {
		t.Errorf("event rate %v does not round-trip %v bpm", src.Cfg.EventRateHz, cfg.HeartRateBPM)
	}
}
