package signal

import (
	"math"
	"math/rand"
)

func init() {
	Register(KindEMG, synthesizeEMG,
		Config{SampleRateHz: 400, EventRateHz: 0.6, Amplitude: 900, NoiseAmp: 12})
}

// emgGain models three electrode sites over the same muscle at decreasing
// pickup.
var emgGain = [MaxChannels]float64{1.00, 0.82, 0.66}

// synthesizeEMG generates surface-EMG-like activity: band-limited noise
// under a burst-activation envelope. Bursts arrive at EventRateHz on
// average with jittered gaps; a PathologicalFrac share of them are
// anomalous — markedly stronger and longer (spasm-like co-contraction) —
// and are the record's counted pathological events. The interference
// pattern itself is independent white noise per channel shaped by a
// first-difference high-pass and a two-stage leaky-integrator low-pass,
// the standard cheap surrogate for the 20-150 Hz surface-EMG band.
func synthesizeEMG(cfg Config, duration float64) (*Source, error) {
	n := int(duration * cfg.SampleRateHz)
	rng := rand.New(rand.NewSource(cfg.Seed))
	src := &Source{}

	// Burst schedule and envelope, shared by every channel: activation is
	// a property of the muscle, not of the electrode.
	env := make([]float64, n)
	meanGap := 1 / cfg.EventRateHz
	t := 0.4 * meanGap
	for t < duration {
		anomalous := rng.Float64() < cfg.PathologicalFrac
		burst := 0.28 + 0.22*rng.Float64() // seconds of activation
		amp := 0.55 + 0.35*rng.Float64()   // relative contraction strength
		if anomalous {
			amp *= 2.1
			burst *= 1.6
			src.Events++
		}
		src.Annotations = append(src.Annotations, Annotation{
			At:           int(t * cfg.SampleRateHz),
			Onset:        int(t * cfg.SampleRateHz),
			Offset:       int((t + burst) * cfg.SampleRateHz),
			Pathological: anomalous,
		})
		// Raised-cosine ramps avoid spectral splatter at the burst edges.
		lo := int(t * cfg.SampleRateHz)
		hi := int((t + burst) * cfg.SampleRateHz)
		ramp := int(0.05 * cfg.SampleRateHz)
		if ramp < 1 {
			ramp = 1
		}
		for i := lo; i <= hi && i < n; i++ {
			if i < 0 {
				continue
			}
			w := 1.0
			if d := i - lo; d < ramp {
				w = 0.5 * (1 - math.Cos(math.Pi*float64(d)/float64(ramp)))
			}
			if d := hi - i; d < ramp {
				w2 := 0.5 * (1 - math.Cos(math.Pi*float64(d)/float64(ramp)))
				if w2 < w {
					w = w2
				}
			}
			if v := amp * w; v > env[i] {
				env[i] = v
			}
		}
		gap := meanGap * (1 + 0.35*rng.NormFloat64())
		if gap < 0.3*meanGap {
			gap = 0.3 * meanGap
		}
		t += burst + gap
	}

	// Per-channel interference pattern: independent noise generators keep
	// channels decorrelated (and channel content independent of how many
	// channels a caller consumes).
	for ch := 0; ch < MaxChannels; ch++ {
		chRng := rand.New(rand.NewSource(cfg.Seed ^ int64(ch+1)*0x9E3779B9))
		tr := make([]int16, n)
		var prev, s1, s2 float64
		for i := 0; i < n; i++ {
			x := chRng.NormFloat64()
			hp := x - prev // first-difference high-pass
			prev = x
			s1 += 0.45 * (hp - s1) // two-stage leaky low-pass
			s2 += 0.45 * (s1 - s2)
			v := cfg.Amplitude*emgGain[ch]*env[i]*s2 + cfg.NoiseAmp*chRng.NormFloat64()
			tr[i] = clamp16(v)
		}
		src.Traces[ch] = tr
	}
	return src, nil
}
