package exp

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/power"
)

func writeEnvelope(t *testing.T, path string, env checkpointEnvelope) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	s := NewSession(power.DefaultParams())
	env := checkpointEnvelope{
		Magic:   checkpointMagic,
		Version: CheckpointVersion,
		Solved:  map[string]OperatingPoint{"k": {FreqHz: 1.5e6, VoltageV: 0.65}},
		Demands: map[string]float64{"d": 987654.3210000001},
	}
	writeEnvelope(t, path, env)
	if err := s.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	solved, demands := s.CheckpointSize()
	if solved != 1 || demands != 1 {
		t.Fatalf("loaded %d/%d entries, want 1/1", solved, demands)
	}
}

func TestLoadCheckpointWrongMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	writeEnvelope(t, path, checkpointEnvelope{Magic: "wbsn-platform-snapshot", Version: CheckpointVersion})
	err := NewSession(power.DefaultParams()).LoadCheckpoint(path)
	if !errors.Is(err, ErrCheckpointMagic) {
		t.Fatalf("foreign file: got %v, want ErrCheckpointMagic", err)
	}
	// The message should steer toward the most common cause: pointing the
	// session flag at a platform snapshot.
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("magic error lacks the snapshot hint: %v", err)
	}
	if errors.Is(err, ErrCheckpointVersion) || errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("magic error aliases another class: %v", err)
	}
}

func TestLoadCheckpointVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	writeEnvelope(t, path, checkpointEnvelope{Magic: checkpointMagic, Version: CheckpointVersion + 1})
	err := NewSession(power.DefaultParams()).LoadCheckpoint(path)
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("future version: got %v, want ErrCheckpointVersion", err)
	}
	// Both versions must appear, so the user can tell which side is stale.
	for _, want := range []string{"version", "delete the file"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("version error lacks %q: %v", want, err)
		}
	}
}

func TestLoadCheckpointTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	s := NewSession(power.DefaultParams())
	writeEnvelope(t, path, checkpointEnvelope{Magic: checkpointMagic, Version: CheckpointVersion,
		Solved: map[string]OperatingPoint{"k": {FreqHz: 1e6, VoltageV: 0.5}}})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	err = s.LoadCheckpoint(path)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated gob: got %v, want ErrCheckpointCorrupt", err)
	}
	if !strings.Contains(err.Error(), "delete the file") {
		t.Fatalf("corrupt error lacks the recovery hint: %v", err)
	}
	// A failed load must not contaminate the session.
	if solved, demands := s.CheckpointSize(); solved != 0 || demands != 0 {
		t.Fatalf("failed load left %d/%d entries in the session", solved, demands)
	}
}

func TestLoadCheckpointArbitraryBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := os.WriteFile(path, []byte("#!/bin/sh\necho not a checkpoint\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := NewSession(power.DefaultParams()).LoadCheckpoint(path)
	// Non-gob data fails in the decoder, before magic is ever seen.
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("arbitrary bytes: got %v, want ErrCheckpointCorrupt", err)
	}
}
