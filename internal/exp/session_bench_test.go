package exp

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/signal"
)

// BenchmarkSolveCheckpoint quantifies the session redesign on the
// escalation-heavy MC-nosync column: without lock-step recovery, solving the
// busy-wait variant walks several candidate frequencies, each candidate a
// full probe-window simulation that the idle fast-forward engine cannot help
// (spinning cores are never quiescent). Three modes of the same column, all
// producing bit-identical results (pinned by TestSessionSolveMatchesScratch
// and the scenario golden matrix):
//
//   - from-scratch: the reference — every candidate rebuilds the
//     application and simulates its full window, every measurement restarts
//     from reset.
//   - session: one fresh Session per iteration — candidates fork a pristine
//     template, failing candidates abort at their first real-time
//     violation, builds and probes are shared.
//   - checkpointed: the Session additionally starts from the previous
//     invocation's checkpoint, the wbsn-bench -checkpoint workflow for
//     tracking bench trajectories across PRs — the solve loop is answered
//     from the checkpoint and only the measurements simulate. This is the
//     mode the >= 2x solve-loop amortization claim is about.
func BenchmarkSolveCheckpoint(b *testing.B) {
	opts := Options{Duration: 2, ProbeDuration: 1.5, PathoFrac: 0.2, Seed: 1}
	params := power.DefaultParams()
	ctx := context.Background()

	sigs := map[string]*signal.Source{}
	for _, app := range apps.Names {
		sig, err := opts.Record(app)
		if err != nil {
			b.Fatal(err)
		}
		sigs[app] = sig
	}
	column := func(b *testing.B, s *Session) {
		b.Helper()
		for _, app := range apps.Names {
			var op OperatingPoint
			var err error
			if s == nil {
				op, err = SolveOperatingPointFromScratch(ctx, app, power.MCNoSync, sigs[app], opts)
			} else {
				op, err = s.SolveOperatingPoint(ctx, app, power.MCNoSync, sigs[app], opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			if s == nil {
				_, err = Measure(app, power.MCNoSync, op, sigs[app], opts, params)
			} else {
				_, err = s.Measure(ctx, app, power.MCNoSync, op, sigs[app], opts)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			column(b, nil)
		}
	})
	b.Run("session", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			column(b, NewSession(params))
		}
	})
	b.Run("checkpointed", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.ckpt")
		warm := NewSession(params)
		column(b, warm)
		if err := warm.SaveCheckpoint(path); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := NewSession(params)
			if err := s.LoadCheckpoint(path); err != nil {
				b.Fatal(err)
			}
			column(b, s)
		}
	})
}
