package exp

import (
	"errors"
	"testing"

	"repro/internal/platform"
	"repro/internal/power"
)

// faultyStore fails every operation: the session must treat that as cache
// misses plus an error count, never as a fatal condition.
type faultyStore struct{}

var errSick = errors.New("disk on fire")

func (faultyStore) GetSolve(string) (OperatingPoint, bool, error) {
	return OperatingPoint{}, false, errSick
}
func (faultyStore) PutSolve(string, OperatingPoint) error   { return errSick }
func (faultyStore) GetDemand(string) (float64, bool, error) { return 0, false, errSick }
func (faultyStore) PutDemand(string, float64) error         { return errSick }
func (faultyStore) GetWarm(string) (*platform.Snapshot, bool, error) {
	return nil, false, errSick
}
func (faultyStore) PutWarm(string, *platform.Snapshot) error { return errSick }

func TestStoreFailuresAreMissesNotFatal(t *testing.T) {
	s := NewSession(power.DefaultParams())
	s.SetStore(faultyStore{})

	if _, ok := s.storeGetSolve("k"); ok {
		t.Fatal("failed GetSolve reported a hit")
	}
	s.storePutSolve("k", OperatingPoint{FreqHz: 1e6, VoltageV: 0.5})
	if _, ok := s.storeGetDemand("k"); ok {
		t.Fatal("failed GetDemand reported a hit")
	}
	s.storePutDemand("k", 1.0)
	if snap := s.storeGetWarm("k"); snap != nil {
		t.Fatal("failed GetWarm returned a snapshot")
	}
	s.storePutWarm("k", nil)

	st := s.Stats()
	if st.StoreErrs != 6 {
		t.Fatalf("StoreErrs = %d, want 6 (every operation failed)", st.StoreErrs)
	}
	if st.StoreHits != 0 || st.StorePuts != 0 {
		t.Fatalf("sick store produced hits=%d puts=%d, want 0/0", st.StoreHits, st.StorePuts)
	}
}

func TestNoStoreIsSilent(t *testing.T) {
	s := NewSession(power.DefaultParams())
	if _, ok := s.storeGetSolve("k"); ok {
		t.Fatal("storeless session reported a hit")
	}
	s.storePutSolve("k", OperatingPoint{})
	if st := s.Stats(); st.StoreErrs != 0 || st.StoreHits != 0 || st.StorePuts != 0 {
		t.Fatalf("storeless session counted store traffic: %+v", st)
	}
}
