package exp

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
)

// splitPipeline is the bundled non-preset descriptor exercised end-to-end:
// two overlapping sync groups over 3L-MMD's five cores (filter+lock-step on
// group 0, the C2D hand-off on group 1) with a generous recovery timeout.
var splitPipeline = power.Arch{
	Multi:         true,
	Groups:        [power.MaxSyncGroups]uint8{0x0F, 0x18},
	TimeoutCycles: 50_000_000,
}

// TestSplitPipelineDescriptorSolvesLikeMC is the golden test for custom
// descriptors: solved through the same sweep engine wbsn-bench's -sync flag
// drives, the split-pipeline descriptor must land on the paper's MC
// operating point (its groups partition the same rendezvous, so the demand
// is identical), measure within a hair of MC's power, and never trip its
// timeout at the solved point.
func TestSplitPipelineDescriptorSolvesLikeMC(t *testing.T) {
	opts := tinyOpts()
	points := []Point{
		{App: apps.MMD3L, Arch: power.MC, Opts: opts},
		{App: apps.MMD3L, Arch: splitPipeline, Opts: opts},
	}
	ms, err := NewSweep(2, power.DefaultParams()).Run(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	mc, split := ms[0], ms[1]
	// Golden operating point: 1.0 MHz / 0.5 V, the paper's MC cell.
	if split.Op.FreqHz != power.MinClockHz || split.Op.VoltageV != 0.5 {
		t.Errorf("split-pipeline point = %.2f MHz / %.2f V, want 1.0 / 0.5",
			split.Op.FreqHz/1e6, split.Op.VoltageV)
	}
	if split.Op != mc.Op {
		t.Errorf("split-pipeline solved %+v, MC solved %+v; the descriptors must land on the same point", split.Op, mc.Op)
	}
	if split.Cores != 5 {
		t.Errorf("split-pipeline ran on %d cores, want 5", split.Cores)
	}
	// The group split only re-tags rendezvous immediates; the workload is
	// unchanged, so measured power must track MC to well under a percent.
	if rel := split.Report.TotalUW/mc.Report.TotalUW - 1; rel < -0.01 || rel > 0.01 {
		t.Errorf("split-pipeline power %.2f uW vs MC %.2f uW (%.2f%% apart), want <1%%",
			split.Report.TotalUW, mc.Report.TotalUW, 100*rel)
	}
	// A healthy solved point never exhausts the 50M-cycle recovery timeout.
	if split.Counters.SyncTimeouts != 0 {
		t.Errorf("SyncTimeouts = %d at the solved point, want 0", split.Counters.SyncTimeouts)
	}
	if split.Counters.SyncGroupOps[1] == 0 {
		t.Error("group 1 saw no sync operations; the descriptor's split was not exercised")
	}
}
