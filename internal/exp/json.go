package exp

import (
	"encoding/json"
	"fmt"
)

// PointJSON is the machine-readable form of one solved and measured grid
// point: the operating point plus the headline metrics of the paper's
// tables. wbsn-bench -format json emits one object per grid point, in grid
// order (deterministic for any worker count), so bench trajectories can be
// diffed and tracked across commits.
type PointJSON struct {
	Experiment string  `json:"experiment"`
	Scenario   string  `json:"scenario,omitempty"`
	App        string  `json:"app"`
	Arch       string  `json:"arch"`
	PathoPct   float64 `json:"patho_pct"`

	FreqMHz  float64 `json:"freq_mhz"`
	VoltageV float64 `json:"voltage_v"`
	Cores    int     `json:"cores"`

	PowerUW   float64 `json:"power_uw"`
	DynamicUW float64 `json:"dynamic_uw"`
	LeakageUW float64 `json:"leakage_uw"`

	IMBroadcastPct     float64 `json:"im_broadcast_pct"`
	DMBroadcastPct     float64 `json:"dm_broadcast_pct"`
	RuntimeOverheadPct float64 `json:"runtime_overhead_pct"`
	CodeOverheadPct    float64 `json:"code_overhead_pct"`

	ActiveIMBanks int    `json:"active_im_banks"`
	ActiveDMBanks int    `json:"active_dm_banks"`
	Cycles        uint64 `json:"cycles"`
	Instrs        uint64 `json:"instructions"`
	ADCSamples    uint64 `json:"adc_samples"`
}

// JSONPoints converts a solved grid into its machine-readable rows, in grid
// order. experiment labels which table the rows came from (table1, fig6,
// fig7, scenario).
func JSONPoints(experiment string, points []Point, ms []*Measurement) []PointJSON {
	out := make([]PointJSON, 0, len(ms))
	for i, m := range ms {
		pt := points[i]
		out = append(out, PointJSON{
			Experiment: experiment,
			Scenario:   pt.Opts.Scenario,
			App:        pt.App,
			Arch:       pt.Arch.String(),
			PathoPct:   pt.Opts.PathoFrac * 100,

			FreqMHz:  m.Op.FreqHz / 1e6,
			VoltageV: m.Op.VoltageV,
			Cores:    m.Cores,

			PowerUW:   m.Report.TotalUW,
			DynamicUW: m.Report.TotalDynamicUW,
			LeakageUW: m.Report.TotalLeakUW,

			IMBroadcastPct:     m.Counters.IMBroadcastPct(),
			DMBroadcastPct:     m.Counters.DMBroadcastPct(),
			RuntimeOverheadPct: m.Counters.RuntimeOverheadPct(),
			CodeOverheadPct:    m.CodeOverheadPct,

			ActiveIMBanks: m.ActiveIMBanks,
			ActiveDMBanks: m.ActiveDMBanks,
			Cycles:        m.Counters.Cycles,
			Instrs:        m.Counters.Instrs,
			ADCSamples:    m.Counters.ADCSamples,
		})
	}
	return out
}

// MarshalPoints renders the rows as an indented JSON array with a trailing
// newline, ready for stdout.
func MarshalPoints(rows []PointJSON) ([]byte, error) {
	b, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("exp: encoding points: %w", err)
	}
	return append(b, '\n'), nil
}
