package exp

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
)

// gridPoints is the reduced grid used by the parallelism tests: one
// benchmark on both Table I architectures.
func gridPoints(opts Options) []Point {
	return []Point{
		{App: apps.MF3L, Arch: power.SC, Opts: opts},
		{App: apps.MF3L, Arch: power.MC, Opts: opts},
	}
}

func TestSweepSerialParallelIdentical(t *testing.T) {
	opts := tinyOpts()
	params := power.DefaultParams()
	serial, err := NewSweep(1, params).Run(context.Background(), gridPoints(opts))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSweep(4, params).Run(context.Background(), gridPoints(opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d: serial and parallel measurements differ:\nserial:   %+v\nparallel: %+v",
				i, serial[i], parallel[i])
		}
	}
}

func TestSweepTableIDeterministic(t *testing.T) {
	opts := tinyOpts()
	params := power.DefaultParams()
	serial, err := NewSweep(1, params).TableI(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSweep(8, params).TableI(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Byte identity of the rendered report is the acceptance bar: any
	// ordering or value divergence shows up here.
	if s, p := FormatTableI(serial), FormatTableI(parallel); s != p {
		t.Errorf("jobs=1 and jobs=8 Table I reports differ:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

func TestSweepSharesSignalSynthesis(t *testing.T) {
	opts := tinyOpts()
	s := NewSweep(4, power.DefaultParams())
	if _, err := s.TableI(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	// The full Table I grid (3 apps x 2 archs = 6 points, each needing a
	// measured and a probe record) collapses onto 4 distinct records:
	// 3L-MF and 3L-MMD share the default configuration, so the cache
	// holds {default, rp-class} x {measure seed, probe seed}.
	if n := s.Cache.Synths(); n != 4 {
		t.Errorf("synthesized %d records for the Table I grid, want 4", n)
	}
}

func TestSweepCancelsOnError(t *testing.T) {
	opts := tinyOpts()
	// An unknown application fails in apps.Build during the solve; the
	// valid points behind it must not mask the failure.
	points := []Point{
		{App: "no-such-app", Arch: power.SC, Opts: opts},
		{App: apps.MF3L, Arch: power.SC, Opts: opts},
		{App: apps.MF3L, Arch: power.MC, Opts: opts},
	}
	ms, err := NewSweep(2, power.DefaultParams()).Run(context.Background(), points)
	if err == nil {
		t.Fatal("sweep with an invalid point returned no error")
	}
	if !strings.Contains(err.Error(), "no-such-app") {
		t.Errorf("error %q does not name the failing point", err)
	}
	if ms != nil {
		t.Errorf("failed sweep returned measurements: %v", ms)
	}
}

func TestSweepRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewSweep(2, power.DefaultParams()).Run(ctx, gridPoints(tinyOpts()))
	if err == nil {
		t.Fatal("sweep under a cancelled context returned no error")
	}
}

func TestSweepProgressSerialized(t *testing.T) {
	opts := tinyOpts()
	s := NewSweep(4, power.DefaultParams())
	var (
		mu    sync.Mutex
		dones []int
		total int
	)
	s.Progress = func(done, tot int, p Point) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, done)
		total = tot
	}
	points := gridPoints(opts)
	if _, err := s.Run(context.Background(), points); err != nil {
		t.Fatal(err)
	}
	if total != len(points) || len(dones) != len(points) {
		t.Fatalf("progress saw total=%d over %d calls, want %d", total, len(dones), len(points))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("progress done sequence %v is not monotonically 1..n", dones)
			break
		}
	}
}
