package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/power"
)

// TableIRow is one benchmark's column pair of the paper's Table I.
type TableIRow struct {
	App       string
	SC, MC    *Measurement
	SavingPct float64
}

// TableI reproduces the paper's Table I: per benchmark, the single-core and
// multi-core executions at their solved operating points. It runs the grid
// through the parallel sweep engine on all cores; results are deterministic
// regardless of the worker count (see Sweep).
func TableI(opts Options, params *power.Params) ([]TableIRow, error) {
	return NewSweep(0, params).TableI(context.Background(), opts)
}

// FormatTableI renders the rows in the paper's layout.
func FormatTableI(rows []TableIRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %-8s %-8s ", r.App+" SC", "MC")
	}
	sb.WriteString("\n")
	line := func(label string, f func(TableIRow) (string, string)) {
		fmt.Fprintf(&sb, "%-22s", label)
		for _, r := range rows {
			a, b := f(r)
			fmt.Fprintf(&sb, "| %-8s %-8s ", a, b)
		}
		sb.WriteString("\n")
	}
	line("Active Cores", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%d", r.SC.Cores), fmt.Sprintf("%d", r.MC.Cores)
	})
	line("Active IM banks", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%d", r.SC.ActiveIMBanks), fmt.Sprintf("%d", r.MC.ActiveIMBanks)
	})
	line("Active DM banks", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%d", r.SC.ActiveDMBanks), fmt.Sprintf("%d", r.MC.ActiveDMBanks)
	})
	line("IM Broadcast (%)", func(r TableIRow) (string, string) {
		return "-", fmt.Sprintf("%.2f", r.MC.Counters.IMBroadcastPct())
	})
	line("DM Broadcast (%)", func(r TableIRow) (string, string) {
		return "-", fmt.Sprintf("%.2f", r.MC.Counters.DMBroadcastPct())
	})
	line("Min. Clock (MHz)", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%.1f", r.SC.Op.FreqHz/1e6), fmt.Sprintf("%.1f", r.MC.Op.FreqHz/1e6)
	})
	line("Min. Voltage (V)", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%.1f", r.SC.Op.VoltageV), fmt.Sprintf("%.1f", r.MC.Op.VoltageV)
	})
	line("Code Overhead (%)", func(r TableIRow) (string, string) {
		return "-", fmt.Sprintf("%.2f", r.MC.CodeOverheadPct)
	})
	line("Run-time Overhead (%)", func(r TableIRow) (string, string) {
		return "-", fmt.Sprintf("%.2f", r.MC.Counters.RuntimeOverheadPct())
	})
	line("Avg. Power (uW)", func(r TableIRow) (string, string) {
		return fmt.Sprintf("%.1f", r.SC.Report.TotalUW), fmt.Sprintf("%.1f", r.MC.Report.TotalUW)
	})
	fmt.Fprintf(&sb, "%-22s", "Saving")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %-17s ", fmt.Sprintf("%.1f %%", r.SavingPct))
	}
	sb.WriteString("\n")
	return sb.String()
}
