package exp

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
)

// TestSessionSurfacesFastForwardStats pins the fast-forward statistics
// reporting: a default (fast-forwarding) session accumulates both idle and
// spin-loop leap work across its probe, verification and measurement runs —
// the MC-nosync column exercises both engines: the shared demand probe runs
// on MC (gated cores, idle leaps) and the verifications on the busy-wait
// variant itself (polling cores, spin leaps) — while an Options.Exact
// session reports zeros, because exact mode forces the cycle-accurate path
// everywhere.
func TestSessionSurfacesFastForwardStats(t *testing.T) {
	ctx := context.Background()
	run := func(t *testing.T, exact bool) SessionStats {
		t.Helper()
		opts := Options{Duration: 0.5, ProbeDuration: 0.4, PathoFrac: 0.2, Seed: 1, Exact: exact}
		sig, err := opts.Record(apps.MMD3L)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(nil)
		op, err := sess.SolveOperatingPoint(ctx, apps.MMD3L, power.MCNoSync, sig, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Measure(ctx, apps.MMD3L, power.MCNoSync, op, sig, opts); err != nil {
			t.Fatal(err)
		}
		return sess.Stats()
	}

	st := run(t, false)
	if st.FFLeaps == 0 || st.FFSkippedCycles == 0 {
		t.Errorf("idle fast-forward work not surfaced: %d leaps / %d cycles", st.FFLeaps, st.FFSkippedCycles)
	}
	if st.SpinLeaps == 0 || st.SpinSkippedCycles == 0 {
		t.Errorf("spin fast-forward work not surfaced: %d leaps / %d cycles", st.SpinLeaps, st.SpinSkippedCycles)
	}

	st = run(t, true)
	if st.FFLeaps != 0 || st.FFSkippedCycles != 0 || st.SpinLeaps != 0 || st.SpinSkippedCycles != 0 {
		t.Errorf("exact session reports fast-forward work: %+v", st)
	}
}
