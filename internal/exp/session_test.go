package exp

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
)

// sessionArchs is the full architecture column of the evaluation.
var sessionArchs = []power.Arch{power.SC, power.MCNoSync, power.MC}

// TestSessionSolveMatchesScratch pins the core equivalence contract on the
// paper's default ECG configuration: the fork-per-candidate, early-aborting,
// probe-sharing session solve returns bit-identical operating points to the
// from-scratch reference for every benchmark on every architecture.
func TestSessionSolveMatchesScratch(t *testing.T) {
	opts := tinyOpts()
	opts.ProbeDuration = 1.0
	ctx := context.Background()
	s := NewSession(nil)
	for _, app := range apps.Names {
		for _, arch := range sessionArchs {
			sig, err := opts.Record(app)
			if err != nil {
				t.Fatal(err)
			}
			want, wantErr := SolveOperatingPointFromScratch(ctx, app, arch, sig, opts)
			got, gotErr := s.SolveOperatingPoint(ctx, app, arch, sig, opts)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%v: scratch err %v, session err %v", app, arch, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Errorf("%s/%v: errors differ:\nscratch: %v\nsession: %v", app, arch, wantErr, gotErr)
				}
				continue
			}
			if want != got {
				t.Errorf("%s/%v: scratch %.4f MHz/%.2f V, session %.4f MHz/%.2f V",
					app, arch, want.FreqHz/1e6, want.VoltageV, got.FreqHz/1e6, got.VoltageV)
			}
		}
	}
	st := s.Stats()
	// MC-nosync seeds its demand from MC's probe: three of the nine solves
	// must have reused a cached demand estimate.
	if st.DemandHits < 3 {
		t.Errorf("session reran shared probes: %d demand hits, want >= 3 (stats %+v)", st.DemandHits, st)
	}
	if st.Forks == 0 || st.ProbeRuns == 0 {
		t.Errorf("session did not exercise the fork path: %+v", st)
	}
}

// TestSessionMeasureWarmIsBitIdentical pins the amortized-warm-up contract:
// a measurement continuing the solve's probe-boundary snapshot equals the
// from-scratch measurement in every field — counters, banks, report.
func TestSessionMeasureWarmIsBitIdentical(t *testing.T) {
	opts := tinyOpts()
	ctx := context.Background()
	for _, arch := range []power.Arch{power.SC, power.MC} {
		s := NewSession(nil)
		sig, err := opts.Record(apps.MF3L)
		if err != nil {
			t.Fatal(err)
		}
		op, err := s.SolveOperatingPoint(ctx, apps.MF3L, arch, sig, opts)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.Measure(ctx, apps.MF3L, arch, op, sig, opts)
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats().WarmMeasures != 1 {
			t.Errorf("%v: measurement did not continue the probe snapshot: %+v", arch, s.Stats())
		}
		scratch, err := Measure(apps.MF3L, arch, op, sig, opts, power.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, scratch) {
			t.Errorf("%v: warm and scratch measurements diverge:\nwarm:    %+v\nscratch: %+v", arch, warm, scratch)
		}
	}
}

// TestSessionMeasureColdFallsBack: a measurement at an operating point the
// session never verified (or shorter than the probe window) must fall back
// to a full run and still match the from-scratch reference.
func TestSessionMeasureColdFallsBack(t *testing.T) {
	opts := tinyOpts()
	ctx := context.Background()
	s := NewSession(nil)
	sig, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	op := OperatingPoint{FreqHz: 2.6e6, VoltageV: 0.6} // never solved by s
	cold, err := s.Measure(ctx, apps.MF3L, power.MC, op, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().WarmMeasures != 0 {
		t.Errorf("cold measure claimed a warm snapshot: %+v", s.Stats())
	}
	scratch, err := Measure(apps.MF3L, power.MC, op, sig, opts, power.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, scratch) {
		t.Error("cold session measurement diverges from the from-scratch reference")
	}
}

// TestSessionCancellationIsNotCached: a sweep's first-error cancellation
// makes sibling in-flight solves fail with ctx.Err(); that outcome belongs
// to the canceled context, not to the grid cell, and a later solve on the
// same session must simulate afresh and succeed.
func TestSessionCancellationIsNotCached(t *testing.T) {
	opts := tinyOpts()
	s := NewSession(nil)
	sig, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveOperatingPoint(canceled, apps.MF3L, power.MC, sig, opts); err == nil {
		t.Fatal("solve under a canceled context must fail")
	}
	op, err := s.SolveOperatingPoint(context.Background(), apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatalf("session cached the cancellation: %v", err)
	}
	want, err := SolveOperatingPointFromScratch(context.Background(), apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if op != want {
		t.Errorf("post-cancellation solve = %+v, want %+v", op, want)
	}
}

// TestSessionCheckpointRoundTrip pins the cross-invocation contract: a
// session loaded from a checkpoint answers the same solves bit-identically
// without running a single probe or verification simulation, and rejects
// foreign or future-versioned files.
func TestSessionCheckpointRoundTrip(t *testing.T) {
	opts := tinyOpts()
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "session.ckpt")

	s1 := NewSession(nil)
	sig, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s1.SolveOperatingPoint(ctx, apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if solved, demands := s1.CheckpointSize(); solved != 1 || demands != 1 {
		t.Errorf("checkpoint holds %d solves / %d demands, want 1/1", solved, demands)
	}

	s2 := NewSession(nil)
	if err := s2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got, err := s2.SolveOperatingPoint(ctx, apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("checkpointed solve = %+v, want %+v", got, want)
	}
	st := s2.Stats()
	if st.ProbeRuns != 0 || st.SolveHits != 1 {
		t.Errorf("checkpointed solve simulated anyway: %+v", st)
	}

	// A different record (different seed) must miss the checkpoint and
	// solve normally.
	o2 := opts
	o2.Seed = 7
	sig2, err := o2.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.SolveOperatingPoint(ctx, apps.MF3L, power.MC, sig2, o2); err != nil {
		t.Fatal(err)
	}
	if s2.Stats().ProbeRuns == 0 {
		t.Error("differently-seeded solve was served from the checkpoint")
	}

	if err := s2.LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("loading a missing checkpoint must fail")
	}
}
