package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/signal"
)

// TestRecordUnregisteredKind: a source configuration naming a kind no
// synthesizer was registered for must fail loudly, for both the measured
// record and the worst-case probe record.
func TestRecordUnregisteredKind(t *testing.T) {
	opts := tinyOpts()
	opts.Source = signal.Config{Kind: "eeg"}
	if _, err := opts.Record(apps.MF3L); err == nil || !strings.Contains(err.Error(), `"eeg"`) {
		t.Errorf("Record with unregistered kind: err = %v, want unknown-kind error naming it", err)
	}
	if _, err := opts.probeRecord(apps.MF3L); err == nil || !strings.Contains(err.Error(), `"eeg"`) {
		t.Errorf("probeRecord with unregistered kind: err = %v, want unknown-kind error naming it", err)
	}
	// The session surfaces the same error instead of caching garbage.
	if _, err := NewSession(nil).SolveOperatingPoint(context.Background(), apps.MF3L, power.MC, nil, opts); err == nil {
		t.Error("session solve with unregistered kind must fail")
	}
}

// TestRecordZeroDurationSynth: a non-positive synthesis window (the measured
// and probe records synthesize duration+2 seconds, so durations <= -2 drive
// the sample count to zero) must error instead of yielding an empty record
// the ADC would reject later with a less actionable message.
func TestRecordZeroDurationSynth(t *testing.T) {
	opts := tinyOpts()
	opts.Duration = -2
	opts.ProbeDuration = -2
	if _, err := opts.Record(apps.MF3L); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("Record with zero synthesis window: err = %v, want non-positive-duration error", err)
	}
	if _, err := opts.probeRecord(apps.MF3L); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Errorf("probeRecord with zero synthesis window: err = %v, want non-positive-duration error", err)
	}
}

// TestRecordCacheIdentity: with a cache installed, repeated Record calls for
// the same options return the very same memoized source, and the cached
// record is bit-identical to an uncached synthesis. probeRecord must key
// separately from Record (different seed and pathological share) yet share
// its entries across calls.
func TestRecordCacheIdentity(t *testing.T) {
	opts := tinyOpts()
	opts.Cache = signal.NewCache()

	first, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	again, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("cache hit returned a different Source pointer")
	}
	if opts.Cache.Synths() != 1 {
		t.Errorf("two Record calls synthesized %d records, want 1", opts.Cache.Synths())
	}

	uncached := opts
	uncached.Cache = nil
	cold, err := uncached.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	if cold == first {
		t.Error("uncached synthesis returned the cached pointer")
	}
	for ch := range cold.Traces {
		if len(cold.Traces[ch]) != len(first.Traces[ch]) {
			t.Fatalf("channel %d: cached %d samples, uncached %d", ch, len(first.Traces[ch]), len(cold.Traces[ch]))
		}
		for i := range cold.Traces[ch] {
			if cold.Traces[ch][i] != first.Traces[ch][i] {
				t.Fatalf("channel %d sample %d: cache miss and hit diverge", ch, i)
			}
		}
	}

	probe1, err := opts.probeRecord(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	probe2, err := opts.probeRecord(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	if probe1 != probe2 {
		t.Error("probe record cache hit returned a different Source pointer")
	}
	if probe1 == first {
		t.Error("probe record must not collide with the measured record's cache entry")
	}
	if probe1.Cfg.Seed != opts.Seed+101 {
		t.Errorf("probe record seed = %d, want the offset %d", probe1.Cfg.Seed, opts.Seed+101)
	}
	// The worst-case pathological share survives only for apps whose
	// behaviour depends on it (apps.SourceConfig zeroes it for the ECG
	// conditioning benchmarks so they share one cached record).
	rpProbe, err := opts.probeRecord(apps.RPClass)
	if err != nil {
		t.Fatal(err)
	}
	if rpProbe.Cfg.PathologicalFrac != 1.0 {
		t.Errorf("RP-CLASS probe record pathological share = %v, want the worst-case 1.0", rpProbe.Cfg.PathologicalFrac)
	}
}
