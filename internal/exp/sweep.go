package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/apps"
	"repro/internal/power"
	"repro/internal/signal"
)

// Point is one cell of an experiment grid: an application on an
// architecture, with the options the point is solved and measured under
// (Opts carries per-point parameters, notably PathoFrac for the Figure 7
// sweep).
type Point struct {
	App  string
	Arch power.Arch
	Opts Options
}

// String labels the point in progress and error output. RP-CLASS carries
// its pathological-event share (Figure 7's grid holds otherwise
// identically-named points at seven shares) and scenario-derived points
// their scenario name.
func (p Point) String() string {
	label := fmt.Sprintf("%s/%v", p.App, p.Arch)
	if p.Opts.Scenario != "" {
		label = p.Opts.Scenario + ":" + label
	}
	if p.App == apps.RPClass {
		return fmt.Sprintf("%s (patho %g%%)", label, p.Opts.PathoFrac*100)
	}
	return label
}

// Sweep fans an experiment grid out across a bounded worker pool. Every
// (app, arch) point of the paper's evaluation is an independent solve —
// operating-point search followed by a measured run on a private platform —
// so the grid is embarrassingly parallel; only the synthesized input records
// are shared, through the memoized Cache.
//
// Results are deterministic: they are collected by point index, never by
// completion order, and every per-point computation is a pure function of
// the point, so a sweep at Jobs=N is byte-identical to a serial one.
type Sweep struct {
	// Jobs bounds the worker pool; values < 1 mean runtime.NumCPU().
	Jobs int
	// Params calibrates the power reports.
	Params *power.Params
	// Session is the solve/measure engine every point runs through. The
	// whole worker pool shares it, so built images, probe runs, solved
	// points and probe-boundary snapshots are amortized across the grid —
	// and, via Session checkpoints, across process invocations. NewSweep
	// installs one; sharing a session across sweeps is allowed and safe
	// (wbsn-bench shares one across its three experiments).
	Session *Session
	// Cache memoizes signal synthesis across points; NewSweep aliases it to
	// the session's cache so records and solves key identically.
	Cache *signal.Cache
	// Progress, when non-nil, is invoked after each completed point with
	// the number of points done so far and the grid size. Calls are
	// serialized; the callback must not block for long.
	Progress func(done, total int, p Point)
}

// NewSweep returns a sweep engine running up to jobs points concurrently
// (jobs < 1 selects runtime.NumCPU()).
func NewSweep(jobs int, params *power.Params) *Sweep {
	s := NewSession(params)
	return &Sweep{Jobs: jobs, Params: params, Session: s, Cache: s.Cache()}
}

// ProgressPrinter returns a Progress callback logging each completed point
// to w, shared by the CLIs.
func ProgressPrinter(w io.Writer) func(done, total int, p Point) {
	return func(done, total int, p Point) {
		fmt.Fprintf(w, "  [%d/%d] %s solved and measured\n", done, total, p)
	}
}

// Run solves and measures every point of the grid, returning measurements
// in point order. The first point failure cancels the remaining work; the
// lowest-indexed point that recorded a real (non-cancellation) failure is
// the one reported, so cancellation noise on later points never masks the
// cause.
//
// A Sweep parallelizes within one Run; concurrent Run calls on the same
// Sweep are not supported (the lazy Cache initialization and Progress
// serialization are per call). Sequential reuse — as wbsn-bench does across
// its three experiments — shares the cache and is the intended pattern.
func (s *Sweep) Run(ctx context.Context, points []Point) ([]*Measurement, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if s.Session == nil {
		s.Session = NewSession(s.Params)
	}
	// Params is the documented calibration knob; a caller assigning it
	// after NewSweep must still see it applied to the reports.
	s.Session.SetParams(s.Params)
	if s.Cache == nil {
		s.Cache = s.Session.Cache()
	}
	jobs := s.Jobs
	if jobs < 1 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(points) {
		jobs = len(points)
	}
	if jobs < 1 {
		jobs = 1
	}
	results := make([]*Measurement, len(points))
	errs := make([]error, len(points))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	work := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if errs[i] = ctx.Err(); errs[i] != nil {
					continue
				}
				results[i], errs[i] = s.point(ctx, points[i])
				if errs[i] != nil {
					cancel()
					continue
				}
				if s.Progress != nil {
					mu.Lock()
					done++
					s.Progress(done, len(points), points[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	// A cancellation-induced error on a late point must not mask the
	// real failure that triggered it; prefer the lowest-index
	// non-cancellation, non-deadline error, then fall back to any error
	// (parent-context cancellation or expiry).
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("sweep %s: %w", points[i], err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep %s: %w", points[i], err)
		}
	}
	return results, nil
}

// point solves one grid cell through the shared session: synthesize (or
// fetch) its record, find the operating point, measure at it — the
// measurement continuing the solve's verified probe run. A cache the caller
// installed on the point's own options wins over the sweep-wide one.
func (s *Sweep) point(ctx context.Context, pt Point) (*Measurement, error) {
	opts := pt.Opts
	if opts.Cache == nil {
		opts.Cache = s.Cache
	}
	sig, err := opts.Record(pt.App)
	if err != nil {
		return nil, err
	}
	op, err := s.Session.SolveOperatingPoint(ctx, pt.App, pt.Arch, sig, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Session.Measure(ctx, pt.App, pt.Arch, op, sig, opts)
}

// TableI reproduces the paper's Table I through the sweep engine: per
// benchmark, the single-core and multi-core executions at their solved
// operating points.
func (s *Sweep) TableI(ctx context.Context, opts Options) ([]TableIRow, error) {
	return s.Table(ctx, apps.Names, opts)
}

// Table runs the Table I pairing — single-core vs multi-core at solved
// operating points — for an arbitrary application list, the per-scenario
// axis of the evaluation (scenario files select which benchmarks a signal
// kind exercises).
func (s *Sweep) Table(ctx context.Context, appNames []string, opts Options) ([]TableIRow, error) {
	ms, err := s.Run(ctx, TableIGrid(appNames, opts))
	if err != nil {
		return nil, err
	}
	return TableIRows(appNames, ms), nil
}

// TableIGrid builds Table I's point list: per application, the single-core
// and multi-core executions. Shared by the sweep engine and wbsn-bench (the
// JSON output path solves the same grid).
func TableIGrid(appNames []string, opts Options) []Point {
	return Grid(appNames, power.PaperArchs(), opts)
}

// TableIRows pairs a solved TableIGrid's measurements into the table's rows.
func TableIRows(appNames []string, ms []*Measurement) []TableIRow {
	var rows []TableIRow
	for i, app := range appNames {
		sc, mc := ms[2*i], ms[2*i+1]
		rows = append(rows, TableIRow{
			App: app, SC: sc, MC: mc,
			SavingPct: 100 * (1 - mc.Report.TotalUW/sc.Report.TotalUW),
		})
	}
	return rows
}

// Fig6Archs are Figure 6's bars per benchmark, in the paper's order (also
// the order wbsn-sim's -sweep comparison uses). The no-sync variant is
// solved at its own, higher operating point: without lock-step recovery,
// diverged replicated cores serialize on their shared instruction bank and
// miss real time at the proposed system's clock.
var Fig6Archs = power.PresetArchs()

// Figure6 reproduces the paper's Figure 6 through the sweep engine: per
// benchmark, the per-component power of (1) the single-core baseline,
// (2) the multi-core system without the proposed synchronization (active
// waiting) and (3) the multi-core system with it.
func (s *Sweep) Figure6(ctx context.Context, opts Options) ([]Fig6Bar, error) {
	points := Fig6Grid(opts)
	ms, err := s.Run(ctx, points)
	if err != nil {
		return nil, err
	}
	return Fig6BarsOf(points, ms), nil
}

// Fig6Grid builds Figure 6's point list: every benchmark on SC, MC-nosync
// and MC.
func Fig6Grid(opts Options) []Point {
	return Grid(apps.Names, Fig6Archs, opts)
}

// Fig6BarsOf turns a solved Fig6Grid into the figure's bars.
func Fig6BarsOf(points []Point, ms []*Measurement) []Fig6Bar {
	var bars []Fig6Bar
	for i, pt := range points {
		bars = append(bars, Fig6Bar{App: pt.App, Arch: pt.Arch, M: ms[i]})
	}
	return bars
}

// Figure7 reproduces the paper's Figure 7 through the sweep engine:
// RP-CLASS power on both systems, and the reduction, as the share of
// pathological heartbeats grows (uniformly distributed, §V-C).
func (s *Sweep) Figure7(ctx context.Context, opts Options) ([]Fig7Point, error) {
	ms, err := s.Run(ctx, Fig7Grid(opts))
	if err != nil {
		return nil, err
	}
	return Fig7PointsOf(ms), nil
}

// Fig7Grid builds Figure 7's point list: RP-CLASS on SC and MC at each
// pathological-beat share of the paper's x-axis.
func Fig7Grid(opts Options) []Point {
	var points []Point
	for _, share := range Fig7Shares {
		o := opts
		o.PathoFrac = share
		points = append(points,
			Point{App: apps.RPClass, Arch: power.SC, Opts: o},
			Point{App: apps.RPClass, Arch: power.MC, Opts: o})
	}
	return points
}

// Fig7PointsOf pairs a solved Fig7Grid's measurements into the figure's
// x-positions.
func Fig7PointsOf(ms []*Measurement) []Fig7Point {
	var pts []Fig7Point
	for i, share := range Fig7Shares {
		sc, mc := ms[2*i], ms[2*i+1]
		pts = append(pts, Fig7Point{
			PathoPct:     share * 100,
			SCUW:         sc.Report.TotalUW,
			MCUW:         mc.Report.TotalUW,
			ReductionPct: 100 * (1 - mc.Report.TotalUW/sc.Report.TotalUW),
		})
	}
	return pts
}
