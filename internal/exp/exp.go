// Package exp reproduces the paper's evaluation (§IV-V): it solves each
// configuration's operating point (minimum real-time clock frequency, then
// minimum supply voltage from the VFS table), measures calibrated average
// power over extended simulated time, and regenerates Table I, Figure 6 and
// Figure 7.
//
// # Session lifecycle
//
// Every solve and measurement runs through a Session, the checkpointable
// engine that amortizes the grid's shared work. One cell's life cycle:
//
//  1. Record: Options.Record synthesizes (or recalls from the shared
//     signal.Cache) the cell's input record.
//  2. Demand: one probe run at a generous clock estimates the busy-cycle
//     demand; MC and MC-nosync share the probe (active waiting makes the
//     no-sync variant's own counters useless for dimensioning).
//  3. Solve: candidate frequencies fork one pristine platform template,
//     escalating on real-time violations; failing candidates abort at
//     their first violation. The passing verification is snapshotted at
//     the probe boundary.
//  4. Measure: continues the probe-boundary snapshot to Options.Duration
//     (bit-identical to a from-scratch run) and computes the power report.
//  5. Checkpoint: SaveCheckpoint persists solved points and demand
//     estimates; a later invocation's LoadCheckpoint skips the
//     simulations that produced them.
//
// Results are bit-identical to solving each cell from scratch
// (SolveOperatingPointFromScratch is retained as the reference, and the
// session-vs-scratch golden matrix in internal/scenario enforces
// equality). Sweep fans a grid of cells over a worker pool sharing one
// Session; results are deterministic for any worker count.
//
// Options.Exact threads the simulator's escape hatch through every run the
// session performs: the platform's idle and spin-loop fast-forward engines
// are disabled, SessionStats' fast-forward counters stay zero, and —
// because the engines are bit-identical by contract — every solved point,
// measurement and error is unchanged. Cache keys include the flag, so
// exact and fast results never mix even within one session.
package exp

import (
	"context"
	"fmt"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/signal"
)

// Options parameterizes an experiment run. Durations trade fidelity for
// wall-clock time; the paper simulates 60 s per configuration.
type Options struct {
	// Duration is the simulated time of the measured run, seconds.
	Duration float64
	// ProbeDuration is the simulated time used to estimate and verify the
	// minimum frequency, seconds.
	ProbeDuration float64
	// PathoFrac is the pathological-event share for RP-CLASS (Table I: 0.2).
	PathoFrac float64
	// Seed selects the synthetic record.
	Seed int64
	// Source is the base signal configuration (kind, rates, per-channel
	// divisors, amplitudes) the per-app records derive from; the zero value
	// selects the paper's default 250 Hz ECG. Seed and PathoFrac above are
	// the sweep axes and override the corresponding Source fields.
	Source signal.Config
	// Scenario labels the options with the scenario they came from; it only
	// affects progress and error reporting.
	Scenario string
	// Exact disables the simulator's idle fast-forward engine, forcing
	// cycle-by-cycle simulation. Results are bit-identical either way
	// (enforced by the platform's golden-equivalence tests); exact mode
	// exists as a cross-check and costs roughly the idle fraction of the
	// run in extra wall-clock time.
	Exact bool
	// Cache, when non-nil, memoizes signal synthesis. The sweep engine
	// injects a shared cache so each distinct record is synthesized once
	// per grid instead of once per point; synthesis is deterministic, so
	// results are unchanged.
	Cache *signal.Cache
	// Obs, when non-nil, attaches the observability sink to every platform
	// the session runs on this point's behalf and emits probe/verify/
	// measure phase spans. Observation only: solved points, counters and
	// measurements are bit-identical with or without it, and all fast-path
	// engines stay engaged (unlike the tracer). A sweep's worker pool may
	// share one sink; it is internally synchronized.
	Obs *obs.Sink
}

// DefaultOptions returns a configuration balancing fidelity and runtime
// (the cmd tool exposes the paper's full 60 s).
func DefaultOptions() Options {
	return Options{Duration: 10, ProbeDuration: 2.5, PathoFrac: 0.2, Seed: 1}
}

// synthesize builds the record directly or through the shared cache.
func (o Options) synthesize(cfg signal.Config, duration float64) (*signal.Source, error) {
	if o.Cache != nil {
		return o.Cache.Synthesize(cfg, duration)
	}
	return signal.Synthesize(cfg, duration)
}

// base resolves the options' signal configuration: the Source base (default
// ECG when unset) with the Seed and PathoFrac sweep axes applied.
func (o Options) base() signal.Config {
	cfg := o.Source
	if cfg.Kind == "" {
		cfg.Kind = signal.KindECG
	}
	cfg.Seed = o.Seed
	cfg.PathologicalFrac = o.PathoFrac
	return cfg
}

// Record returns app's synthesized input record under these options (the
// record Measure runs against).
func (o Options) Record(app string) (*signal.Source, error) {
	cfg := apps.SourceConfig(app, o.base())
	// Synthesize enough signal to cover probe and measurement without
	// trace wrap-around mattering (the ADC loops the trace anyway).
	dur := o.Duration
	if dur < o.ProbeDuration {
		dur = o.ProbeDuration
	}
	return o.synthesize(cfg, dur+2)
}

// probeRecord returns the record used for operating-point solving. RP-CLASS
// is dimensioned for its worst case — pathological events can always occur
// at run time — so the probe record carries a generous pathological share
// even when the measured record carries fewer (this also keeps the Figure 7
// sweep at a single, share-independent operating point per architecture,
// mirroring the paper's fixed 3.3/1.0 MHz rows).
func (o Options) probeRecord(app string) (*signal.Source, error) {
	// Worst case by construction: every event triggers the delineation
	// chain during dimensioning.
	base := o.base()
	base.Seed = o.Seed + 101
	base.PathologicalFrac = 1.0
	cfg := apps.SourceConfig(app, base)
	return o.synthesize(cfg, o.ProbeDuration+2)
}

// probeClockHz is the generous clock for the busy-cycle estimation run.
const probeClockHz = 8e6

// freqMargin is the safety factor applied to the estimated demand.
const freqMargin = 1.08

// OperatingPoint is one solved configuration.
type OperatingPoint struct {
	FreqHz   float64
	VoltageV float64
}

// SolveOperatingPoint finds the minimum clock meeting real time for the
// given application/architecture (paper §V-A: "the system clock frequency is
// reduced to the minimum in order to exploit the benefits of VFS"), then the
// minimum voltage sustaining it. Useful work per second is frequency
// independent (idle cores are clock-gated), so the demand is estimated from
// the busiest core at a generous clock and verified at the candidate,
// escalating on real-time violations.
//
// The search runs on a throwaway Session: candidate frequencies fork one
// pristine platform instead of rebuilding the application per candidate, and
// failing candidates abort at their first real-time violation. Callers
// solving more than one point should hold their own Session — it
// additionally shares probe runs and built images across solves, and its
// probe-boundary snapshots make the following Measure calls continue the
// verified run (see Session).
func SolveOperatingPoint(app string, arch power.Arch, sig *signal.Source, opts Options) (OperatingPoint, error) {
	return NewSession(nil).SolveOperatingPoint(context.Background(), app, arch, sig, opts)
}

// SolveOperatingPointFromScratch is the reference implementation of the
// operating-point search: every run on a freshly built platform, every
// verification over its full probe window, nothing shared or snapshotted.
// It is retained (and kept in lock-step with Session.SolveOperatingPoint)
// as the bit-equivalence baseline for the session golden tests and the
// checkpoint benchmark; production callers go through Session. Every
// simulated run is preceded by a cancellation check, so a caller aborting
// on another point's failure waits for at most one in-flight probe or
// verification run, not the whole escalation loop.
func SolveOperatingPointFromScratch(ctx context.Context, app string, arch power.Arch, sig *signal.Source, opts Options) (OperatingPoint, error) {
	probeSig, err := opts.probeRecord(app)
	if err != nil {
		return OperatingPoint{}, err
	}
	// Active waiting keeps cores busy at any frequency, so a busy-wait
	// variant's demand cannot be estimated from its own busy counters; the
	// sync-unit twin's demand seeds the search and the verification loop
	// escalates past the divergence-serialization penalty the missing
	// lock-step recovery causes.
	demandArch := arch
	demandArch.BusyWait = false
	v, err := apps.Build(app, demandArch)
	if err != nil {
		return OperatingPoint{}, err
	}
	p, err := v.NewPlatform(probeSig, probeClockHz, 1.0)
	if err != nil {
		return OperatingPoint{}, err
	}
	p.SetExact(opts.Exact)
	if opts.Obs != nil {
		p.SetObserver(opts.Obs)
	}
	if err := ctx.Err(); err != nil {
		return OperatingPoint{}, err
	}
	if err := p.RunSeconds(opts.ProbeDuration); err != nil {
		return OperatingPoint{}, fmt.Errorf("exp: %s/%v probe: %w", app, arch, err)
	}
	if err := checkRealTime(p); err != nil {
		return OperatingPoint{}, fmt.Errorf("exp: %s/%v probe at %.0f Hz: %w", app, arch, probeClockHz, err)
	}
	var busiest uint64
	for c := 0; c < v.Cores; c++ {
		if b := p.CoreBusy(c); b > busiest {
			busiest = b
		}
	}
	demand := float64(busiest) / opts.ProbeDuration
	if !arch.IsMulti() {
		// Sequential workloads carry the per-sample deadline on one
		// core: the worst busy window within a sample period binds.
		if peak := float64(p.MaxSampleBusy()) * sig.BaseRateHz(); peak > demand {
			demand = peak
		}
	}
	demand *= freqMargin

	vfs := power.DefaultVFS()
	var lastFailedFreq float64
	for try := 0; try < 12; try++ {
		freq := power.ClampFreq(demand)
		if freq == lastFailedFreq {
			// The escalated demand is still below the platform's clock
			// floor, so the clamp pins the candidate at the frequency
			// that just failed verification. The simulator is
			// deterministic — an identical configuration fails
			// identically — so skip the redundant re-verification and
			// keep escalating until the clamp moves (the try budget is
			// consumed exactly as a failed verification would, keeping
			// the demand schedule, and hence every solved operating
			// point, unchanged).
			demand *= 1.2
			continue
		}
		op, err := power.MinVoltage(vfs, arch, freq)
		if err != nil {
			return OperatingPoint{}, err
		}
		// Verify the candidate meets real time.
		vv, err := apps.Build(app, arch)
		if err != nil {
			return OperatingPoint{}, err
		}
		pp, err := vv.NewPlatform(sig, freq, op.VoltageV)
		if err != nil {
			return OperatingPoint{}, err
		}
		pp.SetExact(opts.Exact)
		if opts.Obs != nil {
			pp.SetObserver(opts.Obs)
		}
		if err := ctx.Err(); err != nil {
			return OperatingPoint{}, err
		}
		if err := pp.RunSeconds(opts.ProbeDuration); err != nil {
			return OperatingPoint{}, err
		}
		if err := checkRealTime(pp); err != nil {
			lastFailedFreq = freq
			demand *= 1.2
			continue
		}
		if arch.BusyWait {
			// Divergence-induced deadline misses are bursty: a point
			// that verifies over the probe window can still slip over
			// longer runs. Extra headroom is strictly safe for a
			// busy-wait variant (idle cycles are spent spinning).
			freq *= 1.1
			op, err = power.MinVoltage(vfs, arch, freq)
			if err != nil {
				return OperatingPoint{}, err
			}
		}
		return OperatingPoint{FreqHz: freq, VoltageV: op.VoltageV}, nil
	}
	if power.ClampFreq(demand) == lastFailedFreq {
		return OperatingPoint{}, fmt.Errorf(
			"exp: %s/%v: misses real time at the clamped %.2f MHz clock floor and the escalated demand (%.2f MHz) cannot raise it",
			app, arch, lastFailedFreq/1e6, demand/1e6)
	}
	return OperatingPoint{}, fmt.Errorf("exp: %s/%v: no real-time frequency found (demand %.2f MHz)", app, arch, demand/1e6)
}

func checkRealTime(p *platform.Platform) error {
	if n := p.Overruns(); n > 0 {
		return fmt.Errorf("%d ADC overruns", n)
	}
	if errs := p.ErrCodes(); len(errs) > 0 {
		return fmt.Errorf("%d application errors (first: %#x)", len(errs), errs[0].Value)
	}
	if v := p.Violations(); len(v) > 0 {
		return fmt.Errorf("sync violations: %s", v[0])
	}
	return nil
}

// Measurement is one measured configuration.
type Measurement struct {
	App  string
	Arch power.Arch
	Op   OperatingPoint

	Cores         int
	ActiveIMBanks int
	ActiveDMBanks int

	Counters power.Counters
	Report   *power.Report

	CodeOverheadPct float64
}

// Measure runs app/arch at the given operating point for opts.Duration and
// computes the power report, building everything from scratch. Callers
// measuring points they just solved should use Session.Measure, which
// continues the solve's verified probe run (bit-identical, less simulation).
func Measure(app string, arch power.Arch, op OperatingPoint, sig *signal.Source, opts Options, params *power.Params) (*Measurement, error) {
	v, err := apps.Build(app, arch)
	if err != nil {
		return nil, err
	}
	p, err := v.NewPlatform(sig, op.FreqHz, op.VoltageV)
	if err != nil {
		return nil, err
	}
	p.SetExact(opts.Exact)
	if opts.Obs != nil {
		p.SetObserver(opts.Obs)
	}
	if err := p.RunSeconds(opts.Duration); err != nil {
		return nil, fmt.Errorf("exp: %s/%v measure: %w", app, arch, err)
	}
	return finishMeasurement(v, p, app, arch, op, params)
}

// finishMeasurement applies the real-time acceptance checks and assembles
// the Measurement; shared by the from-scratch Measure and Session.Measure.
func finishMeasurement(v *apps.Variant, p *platform.Platform, app string, arch power.Arch, op OperatingPoint, params *power.Params) (*Measurement, error) {
	if err := checkRealTime(p); err != nil {
		return nil, fmt.Errorf("exp: %s/%v at %.2f MHz: %w", app, arch, op.FreqHz/1e6, err)
	}
	rep, err := p.PowerReport(params)
	if err != nil {
		return nil, err
	}
	return &Measurement{
		App: app, Arch: arch, Op: op,
		Cores:           v.Cores,
		ActiveIMBanks:   p.ActiveIMBanks(),
		ActiveDMBanks:   p.ActiveDMBanks(),
		Counters:        *p.Counters(),
		Report:          rep,
		CodeOverheadPct: v.Res.Image.CodeOverheadPct(),
	}, nil
}
