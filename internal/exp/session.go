package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/serve/lru"
	"repro/internal/signal"
)

// Session is the checkpointable experiment engine: every operating-point
// solve and power measurement runs through one, and everything expensive a
// grid of them shares is memoized on it — built application images, pristine
// platform templates (forked per candidate frequency instead of
// re-assembling, re-linking and re-loading the program), probe demand
// estimates (MC and MC-nosync dimension against the same proposed-system
// probe, so one simulation serves both), solved operating points, and the
// probe-boundary platform snapshots that let a measurement continue the
// verified probe run instead of re-simulating its warm-up window.
//
// Results are bit-identical to solving and measuring each point from
// scratch: forking a pristine template equals building a fresh platform,
// continuing a snapshot equals never having stopped (both pinned by
// internal/platform's golden tests), and the remaining reuse is pure
// memoization of deterministic computations. The session-vs-scratch golden
// matrix in session_test.go enforces this across every benchmark,
// architecture and bundled scenario.
//
// A Session is safe for concurrent use; the parallel sweep engine threads
// one through its whole worker pool. Solved points and demand estimates can
// be persisted across process invocations with SaveCheckpoint/LoadCheckpoint.
type Session struct {
	params *power.Params
	cache  *signal.Cache

	mu        sync.Mutex
	variants  map[variantKey]*variantEntry
	templates *lru.Cache[templateKey, *templateEntry]
	demands   map[string]*demandEntry
	solved    map[string]*solveEntry
	warm      map[warmKey]*platform.Snapshot
	store     PointStore

	stats SessionStats
}

// SessionStats counts the work a session performed and the work its caches
// saved, for progress reporting and the reuse assertions in tests.
type SessionStats struct {
	// Builds is the number of application images actually assembled/linked.
	Builds uint64
	// Forks is the number of platforms rehydrated from a template.
	Forks uint64
	// ProbeRuns is the number of demand-estimation simulations executed.
	ProbeRuns uint64
	// DemandHits is the number of demand estimates served from cache.
	DemandHits uint64
	// SolveHits is the number of solves served from the solved-point cache.
	SolveHits uint64
	// EarlyAborts is the number of candidate verifications cut short by a
	// real-time violation before their full probe window.
	EarlyAborts uint64
	// WarmMeasures is the number of measurements that continued a verified
	// probe-boundary snapshot instead of re-simulating its window.
	WarmMeasures uint64

	// Fast-forward work across every simulation the session ran (probes,
	// candidate verifications, measurements): idle-quiescence leaps and
	// spin-loop leaps, with the cycles each accounted in bulk instead of
	// stepping. Wall-clock diagnostics — Options.Exact zeroes them by
	// forcing the cycle-accurate path — whose totals depend on run
	// chunking, never on results (which are bit-identical either way).
	FFLeaps           uint64
	FFSkippedCycles   uint64
	SpinLeaps         uint64
	SpinSkippedCycles uint64

	// Basic-block engine work: fast-path engagements and the cycles they
	// executed with bulk accounting instead of Step's per-cycle dispatch,
	// split into single-core block runs and multi-core lock-step strides.
	// The same wall-clock-diagnostic caveats apply, with one difference:
	// block cycles were fully simulated, not skipped.
	BlockRuns      uint64
	BlockCycles    uint64
	BlockMCStrides uint64
	BlockMCCycles  uint64

	// Backing-store traffic (zero without a SetStore): results served from
	// the persistent store instead of simulated, results written through,
	// and non-fatal store failures (a failed read recomputes, a failed
	// write loses only amortization — determinism keeps both safe).
	StoreHits uint64
	StorePuts uint64
	StoreErrs uint64
}

// Publish writes the session's work counters into reg under the
// "session." namespace — the registry form of the old ad-hoc "session:"
// stderr lines, printed uniformly by the CLIs via Registry.WriteText. The
// counters are cumulative, so publication binds absolute values (Set) and
// is idempotent: end-of-run CLIs publish once, the serving layer's metrics
// endpoint republishes on every scrape.
func (st SessionStats) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Set("session.builds", st.Builds)
	reg.Set("session.forks", st.Forks)
	reg.Set("session.probe_runs", st.ProbeRuns)
	reg.Set("session.demand_hits", st.DemandHits)
	reg.Set("session.solve_hits", st.SolveHits)
	reg.Set("session.early_aborts", st.EarlyAborts)
	reg.Set("session.warm_measures", st.WarmMeasures)
	reg.Set("session.ff_leaps", st.FFLeaps)
	reg.Set("session.ff_skipped_cycles", st.FFSkippedCycles)
	reg.Set("session.spin_leaps", st.SpinLeaps)
	reg.Set("session.spin_skipped_cycles", st.SpinSkippedCycles)
	reg.Set("session.block_runs", st.BlockRuns)
	reg.Set("session.block_cycles", st.BlockCycles)
	reg.Set("session.block_mc_strides", st.BlockMCStrides)
	reg.Set("session.block_mc_cycles", st.BlockMCCycles)
	reg.Set("session.store_hits", st.StoreHits)
	reg.Set("session.store_puts", st.StorePuts)
	reg.Set("session.store_errs", st.StoreErrs)
}

// NewSession returns an empty session calibrated by params (nil selects
// power.DefaultParams()). The template cache starts unbounded, matching the
// one-shot CLI shape; long-running owners bound it with SetTemplateCap.
func NewSession(params *power.Params) *Session {
	if params == nil {
		params = power.DefaultParams()
	}
	return &Session{
		params:    params,
		cache:     signal.NewCache(),
		variants:  map[variantKey]*variantEntry{},
		templates: lru.New[templateKey, *templateEntry](0, nil),
		demands:   map[string]*demandEntry{},
		solved:    map[string]*solveEntry{},
		warm:      map[warmKey]*platform.Snapshot{},
	}
}

// Cache returns the session's signal cache, shared so callers (the sweep
// engine, the CLIs) key their own synthesis through the same memoization.
func (s *Session) Cache() *signal.Cache { return s.cache }

// SetTemplateCap bounds the pristine-platform template cache to at most n
// entries, evicting least-recently-used templates (n <= 0 restores the
// unbounded default). Templates are megabytes each and purely memoized — an
// evicted one is rebuilt on next use with bit-identical results — so the cap
// trades wall-clock amortization for a flat memory ceiling, which is what a
// long-running server wants under workload diversity. Existing entries are
// dropped; in-flight users of their platforms are unaffected (entries are
// reference-held, the cache only forgets them).
func (s *Session) SetTemplateCap(n int) {
	s.mu.Lock()
	s.templates = lru.New[templateKey, *templateEntry](n, nil)
	s.mu.Unlock()
}

// TemplateCacheStats returns the template cache's cumulative hit, miss and
// eviction counts (reset by SetTemplateCap).
func (s *Session) TemplateCacheStats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.templates.Stats()
}

// PublishMetrics publishes everything the session can report into reg: the
// work counters (SessionStats.Publish) plus the signal-cache and
// template-cache hit/miss/eviction counters. Idempotent (absolute values),
// so both the end-of-run CLIs and the serving layer's per-scrape metrics
// endpoint call it freely.
func (s *Session) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.Stats().Publish(reg)
	req, syn := s.cache.Stats()
	reg.Set("signal.cache.requests", req)
	reg.Set("signal.cache.synths", syn)
	reg.Set("signal.cache.hits", req-syn)
	th, tm, te := s.TemplateCacheStats()
	reg.Set("session.template.hits", th)
	reg.Set("session.template.misses", tm)
	reg.Set("session.template.evictions", te)
}

// SetParams replaces the power calibration used by subsequent measurements
// (solved operating points are frequency/voltage searches and do not depend
// on it). The sweep engine calls this so a caller-assigned Sweep.Params
// keeps calibrating reports, as it did before sessions existed.
func (s *Session) SetParams(params *power.Params) {
	if params == nil {
		return
	}
	s.mu.Lock()
	s.params = params
	s.mu.Unlock()
}

// measureParams returns the current calibration.
func (s *Session) measureParams() *power.Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// Stats returns a copy of the session's work counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Session) count(f func(*SessionStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// ffMark is a platform's fast-forward odometer reading, taken before a
// session-driven run so recordFF can accumulate just that run's work
// (restored platforms carry their snapshot's idle-leap counters).
type ffMark struct {
	leaps, skipped, spinLeaps, spinSkipped uint64
	blockRuns, blockCycles                 uint64
	mcStrides, mcCycles                    uint64
}

func markFF(p *platform.Platform) ffMark {
	return ffMark{
		p.FFLeaps(), p.FFSkippedCycles(), p.SpinLeaps(), p.SpinSkippedCycles(),
		p.BlockRuns(), p.BlockCycles(),
		p.BlockMCStrides(), p.BlockMCCycles(),
	}
}

// recordFF accumulates the fast-forward and block-engine work p performed
// since m into the session statistics.
func (s *Session) recordFF(p *platform.Platform, m ffMark) {
	s.count(func(st *SessionStats) {
		st.FFLeaps += p.FFLeaps() - m.leaps
		st.FFSkippedCycles += p.FFSkippedCycles() - m.skipped
		st.SpinLeaps += p.SpinLeaps() - m.spinLeaps
		st.SpinSkippedCycles += p.SpinSkippedCycles() - m.spinSkipped
		st.BlockRuns += p.BlockRuns() - m.blockRuns
		st.BlockCycles += p.BlockCycles() - m.blockCycles
		st.BlockMCStrides += p.BlockMCStrides() - m.mcStrides
		st.BlockMCCycles += p.BlockMCCycles() - m.mcCycles
	})
}

// sourceKey identifies a synthesized record: generators are deterministic
// pure functions of the normalized configuration, so the configuration plus
// the per-channel trace lengths (records of different durations wrap
// differently) pin the record bit-for-bit.
type sourceKey struct {
	Cfg              signal.Config
	Len0, Len1, Len2 int
}

func keyOf(src *signal.Source) sourceKey {
	return sourceKey{
		Cfg:  src.Cfg,
		Len0: len(src.Traces[0]),
		Len1: len(src.Traces[1]),
		Len2: len(src.Traces[2]),
	}
}

type variantKey struct {
	App  string
	Arch power.Arch
}

type variantEntry struct {
	once sync.Once
	v    *apps.Variant
	err  error
}

type templateKey struct {
	VK  variantKey
	Src sourceKey
}

type templateEntry struct {
	once sync.Once
	p    *platform.Platform
	err  error
}

type demandEntry struct {
	once   sync.Once
	done   atomic.Bool // set after once ran; lets SaveCheckpoint read safely
	demand float64
	err    error
}

type solveEntry struct {
	once sync.Once
	done atomic.Bool
	op   OperatingPoint
	err  error
}

type warmKey struct {
	VK            variantKey
	Sig           sourceKey
	FreqHz        float64
	VoltageV      float64
	ProbeDuration float64
	Exact         bool
}

// warmKeyString serializes the warm-snapshot identity for the backing
// store, in the same style as the solve and demand key strings: everything
// the probe-boundary platform state depends on.
func warmKeyString(k warmKey) string {
	return fmt.Sprintf("warm|%s|%s|sig=%+v|freq=%v|volt=%v|dur=%v|exact=%v",
		k.VK.App, k.VK.Arch.Key(), k.Sig, k.FreqHz, k.VoltageV, k.ProbeDuration, k.Exact)
}

// variant returns the built (assembled, linked) application image for
// (app, arch), building it at most once per session.
func (s *Session) variant(app string, arch power.Arch) (*apps.Variant, error) {
	k := variantKey{App: app, Arch: arch}
	s.mu.Lock()
	e, ok := s.variants[k]
	if !ok {
		e = &variantEntry{}
		s.variants[k] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		s.count(func(st *SessionStats) { st.Builds++ })
		e.v, e.err = apps.Build(app, arch)
	})
	return e.v, e.err
}

// template returns the session's pristine (never-run) platform for
// (app, arch, record): the fork source for every candidate operating point.
// Templates are built at the probe clock; forks override clock, voltage and
// exactness. A template is never simulated, so concurrent forks — which only
// read it — are safe.
func (s *Session) template(app string, arch power.Arch, src *signal.Source) (*platform.Platform, error) {
	v, err := s.variant(app, arch)
	if err != nil {
		return nil, err
	}
	k := templateKey{VK: variantKey{App: app, Arch: arch}, Src: keyOf(src)}
	s.mu.Lock()
	e, ok := s.templates.Get(k)
	if !ok {
		e = &templateEntry{}
		s.templates.Put(k, e)
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.p, e.err = v.NewPlatform(src, probeClockHz, 1.0)
	})
	return e.p, e.err
}

// fork rehydrates a template at an operating point.
func (s *Session) fork(tmpl *platform.Platform, clockHz, voltageV float64, exact bool) (*platform.Platform, error) {
	cfg := tmpl.Config()
	cfg.ClockHz = clockHz
	cfg.VoltageV = voltageV
	cfg.Exact = exact
	p, err := tmpl.Fork(cfg)
	if err != nil {
		return nil, err
	}
	s.count(func(st *SessionStats) { st.Forks++ })
	return p, nil
}

// withCache returns opts with the session's signal cache installed unless
// the caller brought their own.
func (s *Session) withCache(opts Options) Options {
	if opts.Cache == nil {
		opts.Cache = s.cache
	}
	return opts
}

// demandKeyString serializes the demand-cache identity (stable across
// processes, so checkpoints can persist the map). The measured record's base
// rate is part of it: the SC per-sample deadline peak is derived from it, so
// two solves probing the same record but measuring differently-rated ones
// must not share an estimate.
func demandKeyString(app string, demandArch power.Arch, probe sourceKey, baseRateHz float64, opts Options) string {
	return fmt.Sprintf("demand|%s|%s|%+v|rate=%v|probe=%v|exact=%v", app, demandArch.Key(), probe, baseRateHz, opts.ProbeDuration, opts.Exact)
}

// transient reports whether err is a context-cancellation outcome: a fact
// about this call's context, not about the grid cell, so it must never be
// memoized (a sweep's first-error cancellation would otherwise poison its
// sibling cells for the session's lifetime).
func transient(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// probeError marks a failure of the demand-estimation run itself. The probe
// is shared between MC and MC-nosync, but the from-scratch reference labels
// its errors with the *requested* architecture, so the session caches the
// bare failure and each solve formats its own label (keeping error text in
// lock-step with the reference for every requester).
type probeError struct {
	realTime bool // failed checkRealTime (vs. a simulation fault)
	err      error
}

func (e *probeError) Error() string { return e.err.Error() }
func (e *probeError) Unwrap() error { return e.err }

// solveKeyString serializes the solved-point identity: everything the
// escalation loop's outcome depends on.
func solveKeyString(app string, arch power.Arch, sig, probe sourceKey, opts Options) string {
	return fmt.Sprintf("solve|%s|%s|sig=%+v|probe=%+v|dur=%v|exact=%v", app, arch.Key(), sig, probe, opts.ProbeDuration, opts.Exact)
}

// SolveOperatingPoint finds the minimum real-time clock and sustaining
// voltage for app on arch fed with sig, exactly as the package-level
// SolveOperatingPoint does, but amortized through the session: the demand
// probe simulates once per (app, demand architecture, record), every
// candidate frequency runs on a Fork of one pristine template, failed
// candidates abort at the first real-time violation instead of completing
// their probe window (violations only accumulate, so the verdict — and
// hence the solved point — is unchanged), and the verified probe run is
// snapshotted at its boundary so a following Measure continues it.
func (s *Session) SolveOperatingPoint(ctx context.Context, app string, arch power.Arch, sig *signal.Source, opts Options) (OperatingPoint, error) {
	opts = s.withCache(opts)
	probeSig, err := opts.probeRecord(app)
	if err != nil {
		return OperatingPoint{}, err
	}
	key := solveKeyString(app, arch, keyOf(sig), keyOf(probeSig), opts)
	s.mu.Lock()
	e, ok := s.solved[key]
	if !ok {
		e = &solveEntry{}
		s.solved[key] = e
	}
	s.mu.Unlock()
	ran := false
	e.once.Do(func() {
		ran = true
		// The backing store is consulted inside the single-flight slot, so
		// concurrent identical solves share one store read too, and a hit
		// is indistinguishable from having solved it in this process
		// (results are deterministic, keys pin the full identity).
		if op, ok := s.storeGetSolve(key); ok {
			e.op = op
			e.done.Store(true)
			return
		}
		e.op, e.err = s.solve(ctx, app, arch, sig, probeSig, opts)
		e.done.Store(true)
		if e.err == nil {
			s.storePutSolve(key, e.op)
		}
	})
	if !ran {
		s.count(func(st *SessionStats) { st.SolveHits++ })
	}
	if transient(e.err) {
		// Forget the entry: the cancellation belongs to the context that
		// hit it, not to the cell; a later solve must simulate afresh.
		s.mu.Lock()
		if s.solved[key] == e {
			delete(s.solved, key)
		}
		s.mu.Unlock()
	}
	return e.op, e.err
}

// demand estimates (or recalls) the frequency demand of app probed on
// demandArch, margin applied — the seed of the escalation loop. baseRateHz
// is the measured record's base sampling rate, which the SC per-sample
// deadline peak is derived from (matching the from-scratch reference, which
// uses the caller's record, not the probe record).
func (s *Session) demand(ctx context.Context, app string, demandArch power.Arch, probeSig *signal.Source, baseRateHz float64, opts Options) (float64, error) {
	key := demandKeyString(app, demandArch, keyOf(probeSig), baseRateHz, opts)
	s.mu.Lock()
	e, ok := s.demands[key]
	if !ok {
		e = &demandEntry{}
		s.demands[key] = e
	}
	s.mu.Unlock()
	ran := false
	e.once.Do(func() {
		ran = true
		if d, ok := s.storeGetDemand(key); ok {
			e.demand = d
			e.done.Store(true)
			return
		}
		e.demand, e.err = s.runProbe(ctx, app, demandArch, probeSig, baseRateHz, opts)
		e.done.Store(true)
		if e.err == nil {
			s.storePutDemand(key, e.demand)
		}
	})
	if !ran {
		s.count(func(st *SessionStats) { st.DemandHits++ })
	}
	if transient(e.err) {
		s.mu.Lock()
		if s.demands[key] == e {
			delete(s.demands, key)
		}
		s.mu.Unlock()
	}
	return e.demand, e.err
}

// runProbe executes the busy-cycle estimation run at the generous probe
// clock, mirroring the from-scratch path bit for bit (the template fork
// equals a fresh platform). Probe failures come back as *probeError so the
// requesting solve can label them with its own architecture.
func (s *Session) runProbe(ctx context.Context, app string, demandArch power.Arch, probeSig *signal.Source, baseRateHz float64, opts Options) (float64, error) {
	v, err := s.variant(app, demandArch)
	if err != nil {
		return 0, err
	}
	tmpl, err := s.template(app, demandArch, probeSig)
	if err != nil {
		return 0, err
	}
	p, err := s.fork(tmpl, probeClockHz, 1.0, opts.Exact)
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.count(func(st *SessionStats) { st.ProbeRuns++ })
	if opts.Obs != nil {
		p.SetObserver(opts.Obs)
	}
	m := markFF(p)
	err = p.RunSeconds(opts.ProbeDuration)
	s.recordFF(p, m)
	if opts.Obs != nil && err == nil {
		opts.Obs.Phase(fmt.Sprintf("probe %s/%v", app, demandArch), 0, p.Cycle(), 0)
	}
	if err != nil {
		return 0, &probeError{err: err}
	}
	if err := checkRealTime(p); err != nil {
		return 0, &probeError{realTime: true, err: err}
	}
	var busiest uint64
	for c := 0; c < v.Cores; c++ {
		if b := p.CoreBusy(c); b > busiest {
			busiest = b
		}
	}
	demand := float64(busiest) / opts.ProbeDuration
	if !demandArch.IsMulti() {
		// Sequential workloads carry the per-sample deadline on one core:
		// the worst busy window within a sample period binds.
		if peak := float64(p.MaxSampleBusy()) * baseRateHz; peak > demand {
			demand = peak
		}
	}
	return demand * freqMargin, nil
}

// solve runs the escalation loop on session state. The demand schedule, the
// candidate sequence and every verification verdict match the from-scratch
// reference exactly; only the work to reach them is amortized.
func (s *Session) solve(ctx context.Context, app string, arch power.Arch, sig, probeSig *signal.Source, opts Options) (OperatingPoint, error) {
	// Active waiting keeps cores busy at any frequency, so a busy-wait
	// variant's demand cannot be estimated from its own busy counters; the
	// sync-unit twin's demand seeds the search (see the from-scratch
	// reference), which also means each busy-wait descriptor shares one
	// probe run with its sync-unit counterpart (MC-nosync with MC).
	demandArch := arch
	demandArch.BusyWait = false
	demand, err := s.demand(ctx, app, demandArch, probeSig, sig.BaseRateHz(), opts)
	if err != nil {
		var pe *probeError
		if errors.As(err, &pe) {
			// Label the shared probe's failure with the architecture this
			// solve was asked for, exactly as the reference does.
			if pe.realTime {
				return OperatingPoint{}, fmt.Errorf("exp: %s/%v probe at %.0f Hz: %w", app, arch, probeClockHz, pe.err)
			}
			return OperatingPoint{}, fmt.Errorf("exp: %s/%v probe: %w", app, arch, pe.err)
		}
		return OperatingPoint{}, err
	}

	tmpl, err := s.template(app, arch, sig)
	if err != nil {
		return OperatingPoint{}, err
	}
	vfs := power.DefaultVFS()
	var lastFailedFreq float64
	for try := 0; try < 12; try++ {
		freq := power.ClampFreq(demand)
		if freq == lastFailedFreq {
			// The escalated demand is still below the platform's clock
			// floor: the clamp pins the candidate at the frequency that
			// just failed, and the simulator is deterministic, so skip the
			// redundant re-verification and keep escalating until the
			// clamp moves (consuming the try budget exactly as a failed
			// verification would, keeping the demand schedule unchanged).
			demand *= 1.2
			continue
		}
		op, err := power.MinVoltage(vfs, arch, freq)
		if err != nil {
			return OperatingPoint{}, err
		}
		pp, err := s.fork(tmpl, freq, op.VoltageV, opts.Exact)
		if err != nil {
			return OperatingPoint{}, err
		}
		if err := ctx.Err(); err != nil {
			return OperatingPoint{}, err
		}
		if opts.Obs != nil {
			pp.SetObserver(opts.Obs)
		}
		pass, err := s.verify(pp, opts.ProbeDuration)
		if err != nil {
			return OperatingPoint{}, err
		}
		if opts.Obs != nil {
			opts.Obs.Phase(fmt.Sprintf("verify %s/%v @%.2fMHz", app, arch, freq/1e6), 0, pp.Cycle(), int64(try))
		}
		if !pass {
			lastFailedFreq = freq
			demand *= 1.2
			continue
		}
		// The passing run ends exactly at the probe boundary of the
		// verified configuration: snapshot it so Measure at this operating
		// point continues instead of re-simulating the window. A busy-wait
		// variant's returned point is bumped below the verified frequency,
		// so its snapshot could never be looked up — don't retain it.
		if !arch.BusyWait {
			wk := warmKey{
				VK:            variantKey{App: app, Arch: arch},
				Sig:           keyOf(sig),
				FreqHz:        freq,
				VoltageV:      op.VoltageV,
				ProbeDuration: opts.ProbeDuration,
				Exact:         opts.Exact,
			}
			snap := pp.Snapshot()
			s.mu.Lock()
			s.warm[wk] = snap
			s.mu.Unlock()
			// Write the verified platform state through to the backing
			// store: a future process's Measure at this point warm-starts
			// instead of re-simulating the probe window (bit-identical, as
			// continuation equals never having stopped).
			s.storePutWarm(warmKeyString(wk), snap)
		}
		if arch.BusyWait {
			// Divergence-induced deadline misses are bursty: a point that
			// verifies over the probe window can still slip over longer
			// runs. Extra headroom is strictly safe for a busy-wait
			// variant (idle cycles are spent spinning).
			freq *= 1.1
			op, err = power.MinVoltage(vfs, arch, freq)
			if err != nil {
				return OperatingPoint{}, err
			}
		}
		return OperatingPoint{FreqHz: freq, VoltageV: op.VoltageV}, nil
	}
	if power.ClampFreq(demand) == lastFailedFreq {
		return OperatingPoint{}, fmt.Errorf(
			"exp: %s/%v: misses real time at the clamped %.2f MHz clock floor and the escalated demand (%.2f MHz) cannot raise it",
			app, arch, lastFailedFreq/1e6, demand/1e6)
	}
	return OperatingPoint{}, fmt.Errorf("exp: %s/%v: no real-time frequency found (demand %.2f MHz)", app, arch, demand/1e6)
}

// verifyChunks slices each verification window: real-time violations only
// accumulate, so checking between chunks lets a failing candidate abort at
// the first violation with the verdict — and therefore the solved operating
// point — unchanged. More chunks abort failing candidates earlier at the
// cost of more checks; the checks are O(1).
const verifyChunks = 64

// verify runs the candidate platform over the probe window, returning
// whether it met real time. Simulation faults (not real-time violations)
// surface as errors, exactly as in the from-scratch reference.
func (s *Session) verify(pp *platform.Platform, seconds float64) (bool, error) {
	total := pp.CyclesFor(seconds)
	chunk := total/verifyChunks + 1
	m := markFF(pp)
	defer func() { s.recordFF(pp, m) }()
	for pp.Cycle() < total {
		n := chunk
		if rem := total - pp.Cycle(); rem < n {
			n = rem
		}
		if err := pp.Run(n); err != nil {
			return false, err
		}
		if checkRealTime(pp) != nil {
			if pp.Cycle() < total {
				s.count(func(st *SessionStats) { st.EarlyAborts++ })
			}
			return false, nil
		}
		if pp.AllHalted() {
			// The reference's single RunSeconds stops at full halt;
			// re-entering Run would step (and sample) past it.
			break
		}
	}
	return true, nil
}

// Measure runs app/arch at the given operating point for opts.Duration and
// computes the power report, exactly as the package-level Measure does. When
// the session holds the probe-boundary snapshot of this exact configuration
// (the solve's verified candidate), the measurement continues it — the
// warm-up window is simulated once per configuration, and the result is
// bit-identical to a from-scratch run (continuation equivalence is pinned by
// internal/platform's golden tests).
func (s *Session) Measure(ctx context.Context, app string, arch power.Arch, op OperatingPoint, sig *signal.Source, opts Options) (*Measurement, error) {
	v, err := s.variant(app, arch)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wk := warmKey{
		VK:            variantKey{App: app, Arch: arch},
		Sig:           keyOf(sig),
		FreqHz:        op.FreqHz,
		VoltageV:      op.VoltageV,
		ProbeDuration: opts.ProbeDuration,
		Exact:         opts.Exact,
	}
	s.mu.Lock()
	snap := s.warm[wk]
	s.mu.Unlock()
	if snap == nil {
		// The probe-boundary snapshot may have been produced by an earlier
		// process: the backing store persists warm state across restarts,
		// so a recalled solve still warm-starts its measurement.
		snap = s.storeGetWarm(warmKeyString(wk))
	}

	var p *platform.Platform
	if snap != nil && opts.Duration >= opts.ProbeDuration {
		pp, err := v.NewPlatform(sig, op.FreqHz, op.VoltageV)
		if err != nil {
			return nil, err
		}
		pp.SetExact(opts.Exact)
		if err := pp.Restore(snap); err != nil {
			return nil, err
		}
		if opts.Obs != nil {
			pp.SetObserver(opts.Obs)
		}
		warmStart := pp.Cycle()
		total := pp.CyclesFor(opts.Duration)
		if pp.Cycle() <= total {
			// A snapshot of a fully halted run is already final: the
			// reference's RunSeconds would have stopped at the halt, so
			// continuing would step (and sample) past it.
			if !pp.AllHalted() {
				m := markFF(pp)
				err := pp.Run(total - pp.Cycle())
				s.recordFF(pp, m)
				if err != nil {
					return nil, fmt.Errorf("exp: %s/%v measure: %w", app, arch, err)
				}
			}
			s.count(func(st *SessionStats) { st.WarmMeasures++ })
			if opts.Obs != nil {
				opts.Obs.Phase(fmt.Sprintf("measure %s/%v (warm)", app, arch), warmStart, pp.Cycle()-warmStart, 0)
			}
			p = pp
			// A grid measures each solved point once; drop the snapshot
			// (megabytes per configuration) now that it served its purpose.
			// A repeat measurement falls back to the cold path, which is
			// bit-identical.
			s.mu.Lock()
			if s.warm[wk] == snap {
				delete(s.warm, wk)
			}
			s.mu.Unlock()
		}
	}
	if p == nil {
		tmpl, err := s.template(app, arch, sig)
		if err != nil {
			return nil, err
		}
		p, err = s.fork(tmpl, op.FreqHz, op.VoltageV, opts.Exact)
		if err != nil {
			return nil, err
		}
		if opts.Obs != nil {
			p.SetObserver(opts.Obs)
		}
		m := markFF(p)
		err = p.RunSeconds(opts.Duration)
		s.recordFF(p, m)
		if err != nil {
			return nil, fmt.Errorf("exp: %s/%v measure: %w", app, arch, err)
		}
		if opts.Obs != nil {
			opts.Obs.Phase(fmt.Sprintf("measure %s/%v", app, arch), 0, p.Cycle(), 0)
		}
	}
	return finishMeasurement(v, p, app, arch, op, s.measureParams())
}
