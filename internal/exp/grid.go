package exp

import (
	"fmt"
	"strings"

	"repro/internal/power"
)

// Grid builds the (app x arch) experiment grid for one set of options: the
// scenario axis of the evaluation. Scenario files pick the applications and
// architectures a signal configuration exercises; each cell is solved and
// measured independently by Sweep.Run.
func Grid(appNames []string, archs []power.Arch, opts Options) []Point {
	points := make([]Point, 0, len(appNames)*len(archs))
	for _, app := range appNames {
		for _, arch := range archs {
			points = append(points, Point{App: app, Arch: arch, Opts: opts})
		}
	}
	return points
}

// FormatPoints renders a solved grid as an operating-point table: per cell,
// the minimum real-time clock, the minimum sustaining voltage, and the
// calibrated average power at that point. Rows follow the grid order, so
// the output is byte-identical for any sweep worker count.
func FormatPoints(points []Point, ms []*Measurement) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %8s %6s %6s %10s %10s %9s\n",
		"app", "arch", "MHz", "V", "cores", "power uW", "dyn uW", "overhead")
	for i, m := range ms {
		overhead := "-"
		if points[i].Arch.HasSyncUnit() {
			overhead = fmt.Sprintf("%.2f%%", m.Counters.RuntimeOverheadPct())
		}
		fmt.Fprintf(&sb, "%-10s %-10s %8.2f %6.2f %6d %10.1f %10.1f %9s\n",
			points[i].App, points[i].Arch, m.Op.FreqHz/1e6, m.Op.VoltageV,
			m.Cores, m.Report.TotalUW, m.Report.TotalDynamicUW, overhead)
	}
	return sb.String()
}
