package exp

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/power"
)

func tinyOpts() Options {
	return Options{Duration: 1.5, ProbeDuration: 1.2, PathoFrac: 0.2, Seed: 1}
}

func TestSolveOperatingPointMatchesPaperVoltages(t *testing.T) {
	opts := tinyOpts()
	for _, app := range apps.Names {
		sig, err := opts.Record(app)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := SolveOperatingPoint(app, power.SC, sig, opts)
		if err != nil {
			t.Fatalf("%s SC: %v", app, err)
		}
		mc, err := SolveOperatingPoint(app, power.MC, sig, opts)
		if err != nil {
			t.Fatalf("%s MC: %v", app, err)
		}
		// Paper Table I: every MC execution runs at 1.0 MHz / 0.5 V;
		// every SC execution at 0.6 V with a higher clock.
		if mc.FreqHz != power.MinClockHz || mc.VoltageV != 0.5 {
			t.Errorf("%s MC point = %.2f MHz / %.2f V, want 1.0 / 0.5", app, mc.FreqHz/1e6, mc.VoltageV)
		}
		if sc.VoltageV != 0.6 {
			t.Errorf("%s SC voltage = %.2f V, want 0.6", app, sc.VoltageV)
		}
		if sc.FreqHz <= mc.FreqHz {
			t.Errorf("%s SC clock %.2f MHz must exceed MC's %.2f", app, sc.FreqHz/1e6, mc.FreqHz/1e6)
		}
	}
}

func TestMeasureProducesSavings(t *testing.T) {
	opts := tinyOpts()
	params := power.DefaultParams()
	sig, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	scOp, err := SolveOperatingPoint(apps.MF3L, power.SC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	mcOp, err := SolveOperatingPoint(apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Measure(apps.MF3L, power.SC, scOp, sig, opts, params)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Measure(apps.MF3L, power.MC, mcOp, sig, opts, params)
	if err != nil {
		t.Fatal(err)
	}
	saving := 100 * (1 - mc.Report.TotalUW/sc.Report.TotalUW)
	// Paper: 40.7% for 3L-MF; require the band.
	if saving < 25 || saving > 55 {
		t.Errorf("3L-MF saving = %.1f%%, want 25..55", saving)
	}
	if mc.ActiveDMBanks != 16 || sc.ActiveDMBanks >= 16 {
		t.Errorf("bank counts: SC %d, MC %d", sc.ActiveDMBanks, mc.ActiveDMBanks)
	}
}

func TestNoSyncNeedsHigherOperatingPoint(t *testing.T) {
	opts := tinyOpts()
	// Divergence-induced deadline misses accumulate over time; give the
	// verification window enough samples to expose them.
	opts.ProbeDuration = 2.5
	sig, err := opts.Record(apps.MF3L)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := SolveOperatingPoint(apps.MF3L, power.MC, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := SolveOperatingPoint(apps.MF3L, power.MCNoSync, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Without lock-step recovery, diverged cores serialize on the shared
	// instruction bank: the 1.0 MHz point no longer meets real time.
	if ns.FreqHz <= mc.FreqHz {
		t.Errorf("no-sync point %.2f MHz should exceed the proposed system's %.2f MHz",
			ns.FreqHz/1e6, mc.FreqHz/1e6)
	}
}
