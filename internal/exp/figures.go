package exp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/power"
)

// Fig6Bar is one bar of Figure 6: the power decomposition of a benchmark on
// one architecture variant.
type Fig6Bar struct {
	App  string
	Arch power.Arch
	M    *Measurement
}

// Figure6 reproduces the paper's Figure 6: per benchmark, the per-component
// power of (1) the single-core baseline, (2) the multi-core system without
// the proposed synchronization (active waiting) and (3) the multi-core
// system with it. It runs the grid through the parallel sweep engine on all
// cores; results are deterministic regardless of the worker count.
func Figure6(opts Options, params *power.Params) ([]Fig6Bar, error) {
	return NewSweep(0, params).Figure6(context.Background(), opts)
}

// FormatFigure6 renders the decomposition as text, normalized to each
// benchmark's single-core total (the paper's y-axis is % of SC).
func FormatFigure6(bars []Fig6Bar) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %8s |", "app", "arch", "total uW")
	for comp := power.Component(0); comp < power.NumComponents; comp++ {
		fmt.Fprintf(&sb, " %12s", comp)
	}
	fmt.Fprintf(&sb, " %8s\n", "% of SC")
	scTotal := map[string]float64{}
	for _, b := range bars {
		if b.Arch == power.SC {
			scTotal[b.App] = b.M.Report.TotalUW
		}
	}
	for _, b := range bars {
		fmt.Fprintf(&sb, "%-10s %-10s %8.1f |", b.App, b.Arch, b.M.Report.TotalUW)
		for comp := power.Component(0); comp < power.NumComponents; comp++ {
			fmt.Fprintf(&sb, " %12.1f", b.M.Report.ComponentUW(comp))
		}
		fmt.Fprintf(&sb, " %8.1f\n", 100*b.M.Report.TotalUW/scTotal[b.App])
	}
	return sb.String()
}

// Fig7Point is one x-position of Figure 7: RP-CLASS at a pathological-beat
// share.
type Fig7Point struct {
	PathoPct     float64
	SCUW, MCUW   float64
	ReductionPct float64
}

// Fig7Shares are the paper's x-axis values.
var Fig7Shares = []float64{0, 0.10, 0.20, 0.25, 0.33, 0.50, 1.00}

// Figure7 reproduces the paper's Figure 7: RP-CLASS power on both systems,
// and the reduction, as the share of pathological heartbeats grows
// (uniformly distributed, §V-C). It runs the share sweep through the
// parallel sweep engine on all cores; results are deterministic regardless
// of the worker count.
func Figure7(opts Options, params *power.Params) ([]Fig7Point, error) {
	return NewSweep(0, params).Figure7(context.Background(), opts)
}

// FormatFigure7 renders the sweep as text.
func FormatFigure7(pts []Fig7Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %12s\n", "patho share", "SC (uW)", "MC (uW)", "reduction")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%13.0f%% %10.1f %10.1f %11.1f%%\n", p.PathoPct, p.SCUW, p.MCUW, p.ReductionPct)
	}
	return sb.String()
}
