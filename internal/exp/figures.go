package exp

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/power"
)

// Fig6Bar is one bar of Figure 6: the power decomposition of a benchmark on
// one architecture variant.
type Fig6Bar struct {
	App  string
	Arch power.Arch
	M    *Measurement
}

// Figure6 reproduces the paper's Figure 6: per benchmark, the per-component
// power of (1) the single-core baseline, (2) the multi-core system without
// the proposed synchronization (active waiting) and (3) the multi-core
// system with it. The no-sync variant runs at the proposed system's
// operating point.
func Figure6(opts Options, params *power.Params) ([]Fig6Bar, error) {
	var bars []Fig6Bar
	for _, app := range apps.Names {
		sig, err := opts.signal(app)
		if err != nil {
			return nil, err
		}
		scOp, err := SolveOperatingPoint(app, power.SC, sig, opts)
		if err != nil {
			return nil, err
		}
		mcOp, err := SolveOperatingPoint(app, power.MC, sig, opts)
		if err != nil {
			return nil, err
		}
		// The no-sync variant needs its own, higher operating point:
		// without lock-step recovery, diverged replicated cores
		// serialize on their shared instruction bank and miss real time
		// at the proposed system's clock.
		nsOp, err := SolveOperatingPoint(app, power.MCNoSync, sig, opts)
		if err != nil {
			return nil, err
		}
		for _, cfg := range []struct {
			arch power.Arch
			op   OperatingPoint
		}{
			{power.SC, scOp},
			{power.MCNoSync, nsOp},
			{power.MC, mcOp},
		} {
			m, err := Measure(app, cfg.arch, cfg.op, sig, opts, params)
			if err != nil {
				return nil, err
			}
			bars = append(bars, Fig6Bar{App: app, Arch: cfg.arch, M: m})
		}
	}
	return bars, nil
}

// FormatFigure6 renders the decomposition as text, normalized to each
// benchmark's single-core total (the paper's y-axis is % of SC).
func FormatFigure6(bars []Fig6Bar) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %8s |", "app", "arch", "total uW")
	for comp := power.Component(0); comp < power.NumComponents; comp++ {
		fmt.Fprintf(&sb, " %12s", comp)
	}
	fmt.Fprintf(&sb, " %8s\n", "% of SC")
	scTotal := map[string]float64{}
	for _, b := range bars {
		if b.Arch == power.SC {
			scTotal[b.App] = b.M.Report.TotalUW
		}
	}
	for _, b := range bars {
		fmt.Fprintf(&sb, "%-10s %-10s %8.1f |", b.App, b.Arch, b.M.Report.TotalUW)
		for comp := power.Component(0); comp < power.NumComponents; comp++ {
			fmt.Fprintf(&sb, " %12.1f", b.M.Report.ComponentUW(comp))
		}
		fmt.Fprintf(&sb, " %8.1f\n", 100*b.M.Report.TotalUW/scTotal[b.App])
	}
	return sb.String()
}

// Fig7Point is one x-position of Figure 7: RP-CLASS at a pathological-beat
// share.
type Fig7Point struct {
	PathoPct     float64
	SCUW, MCUW   float64
	ReductionPct float64
}

// Fig7Shares are the paper's x-axis values.
var Fig7Shares = []float64{0, 0.10, 0.20, 0.25, 0.33, 0.50, 1.00}

// Figure7 reproduces the paper's Figure 7: RP-CLASS power on both systems,
// and the reduction, as the share of pathological heartbeats grows
// (uniformly distributed, §V-C).
func Figure7(opts Options, params *power.Params) ([]Fig7Point, error) {
	var pts []Fig7Point
	for _, share := range Fig7Shares {
		o := opts
		o.PathoFrac = share
		sig, err := o.signal(apps.RPClass)
		if err != nil {
			return nil, err
		}
		scOp, err := SolveOperatingPoint(apps.RPClass, power.SC, sig, o)
		if err != nil {
			return nil, fmt.Errorf("fig7 share %.2f SC: %w", share, err)
		}
		mcOp, err := SolveOperatingPoint(apps.RPClass, power.MC, sig, o)
		if err != nil {
			return nil, fmt.Errorf("fig7 share %.2f MC: %w", share, err)
		}
		sc, err := Measure(apps.RPClass, power.SC, scOp, sig, o, params)
		if err != nil {
			return nil, err
		}
		mc, err := Measure(apps.RPClass, power.MC, mcOp, sig, o, params)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig7Point{
			PathoPct:     share * 100,
			SCUW:         sc.Report.TotalUW,
			MCUW:         mc.Report.TotalUW,
			ReductionPct: 100 * (1 - mc.Report.TotalUW/sc.Report.TotalUW),
		})
	}
	return pts, nil
}

// FormatFigure7 renders the sweep as text.
func FormatFigure7(pts []Fig7Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %10s %12s\n", "patho share", "SC (uW)", "MC (uW)", "reduction")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%13.0f%% %10.1f %10.1f %11.1f%%\n", p.PathoPct, p.SCUW, p.MCUW, p.ReductionPct)
	}
	return sb.String()
}
