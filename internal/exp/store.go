package exp

import "repro/internal/platform"

// PointStore is the persistence interface extracted from the session's
// checkpoint layer: a durable, concurrency-safe backing for the three result
// classes a session memoizes — solved operating points, probe demand
// estimates, and the probe-boundary warm snapshots that let a measurement
// continue its solve's verified run. The single-file SaveCheckpoint /
// LoadCheckpoint pair persists the first two in bulk at end of run; a
// PointStore persists all three incrementally, as they are produced, so a
// long-running server (internal/serve/store is the content-addressed
// implementation) survives process death without losing work.
//
// Keys are the session's canonical identity strings (the same strings the
// checkpoint file uses), pinning everything the result depends on.
// Implementations must be safe for concurrent use; Get methods return
// ok=false for absent entries and reserve the error for I/O or corruption.
//
// Store failures are deliberately non-fatal to the session: a failed Get is
// a miss (the result is recomputed — determinism makes that safe), a failed
// Put loses only amortization. Both are counted in SessionStats.StoreErrs so
// operators can see a sick store.
type PointStore interface {
	GetSolve(key string) (OperatingPoint, bool, error)
	PutSolve(key string, op OperatingPoint) error
	GetDemand(key string) (demand float64, ok bool, err error)
	PutDemand(key string, demand float64) error
	GetWarm(key string) (*platform.Snapshot, bool, error)
	PutWarm(key string, snap *platform.Snapshot) error
}

// SetStore installs the backing store consulted on memory misses and
// written through on every computed result. Install it before the session
// starts solving; results computed earlier are not retroactively persisted.
func (s *Session) SetStore(st PointStore) {
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

func (s *Session) pointStore() PointStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// storeGetSolve consults the backing store for a solved point. Errors count
// as misses (and into StoreErrs): determinism makes recomputing safe.
func (s *Session) storeGetSolve(key string) (OperatingPoint, bool) {
	st := s.pointStore()
	if st == nil {
		return OperatingPoint{}, false
	}
	op, ok, err := st.GetSolve(key)
	if err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return OperatingPoint{}, false
	}
	if ok {
		s.count(func(x *SessionStats) { x.StoreHits++ })
	}
	return op, ok
}

func (s *Session) storePutSolve(key string, op OperatingPoint) {
	st := s.pointStore()
	if st == nil {
		return
	}
	if err := st.PutSolve(key, op); err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return
	}
	s.count(func(x *SessionStats) { x.StorePuts++ })
}

func (s *Session) storeGetDemand(key string) (float64, bool) {
	st := s.pointStore()
	if st == nil {
		return 0, false
	}
	d, ok, err := st.GetDemand(key)
	if err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return 0, false
	}
	if ok {
		s.count(func(x *SessionStats) { x.StoreHits++ })
	}
	return d, ok
}

func (s *Session) storePutDemand(key string, demand float64) {
	st := s.pointStore()
	if st == nil {
		return
	}
	if err := st.PutDemand(key, demand); err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return
	}
	s.count(func(x *SessionStats) { x.StorePuts++ })
}

func (s *Session) storeGetWarm(key string) *platform.Snapshot {
	st := s.pointStore()
	if st == nil {
		return nil
	}
	snap, ok, err := st.GetWarm(key)
	if err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return nil
	}
	if !ok {
		return nil
	}
	s.count(func(x *SessionStats) { x.StoreHits++ })
	return snap
}

func (s *Session) storePutWarm(key string, snap *platform.Snapshot) {
	st := s.pointStore()
	if st == nil {
		return
	}
	if err := st.PutWarm(key, snap); err != nil {
		s.count(func(x *SessionStats) { x.StoreErrs++ })
		return
	}
	s.count(func(x *SessionStats) { x.StorePuts++ })
}
