package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Encode encodes every segment of the unit against the program-wide symbol
// table. Segment bases must have been assigned by the linker beforehand.
func (u *Unit) Encode(sym SymbolTable) ([]CodeImage, []DataImage, error) {
	var code []CodeImage
	var data []DataImage
	for _, seg := range u.Segments {
		switch seg.Kind {
		case SegCode:
			img, err := encodeCode(u.Name, seg, sym)
			if err != nil {
				return nil, nil, err
			}
			code = append(code, img)
		case SegData:
			img, err := encodeData(u.Name, seg, sym)
			if err != nil {
				return nil, nil, err
			}
			data = append(data, img)
		}
	}
	return code, data, nil
}

func encodeCode(unit string, seg *Segment, sym SymbolTable) (CodeImage, error) {
	img := CodeImage{Seg: seg, Words: make([]isa.Word, 0, seg.size)}
	pc := seg.Base
	emit := func(line int, ins isa.Instr) error {
		w, err := isa.Encode(ins)
		if err != nil {
			return errf(unit, line, "%v", err)
		}
		if ins.Op.IsSyncExtension() {
			img.SyncInstrs++
		}
		img.Words = append(img.Words, w)
		pc++
		return nil
	}

	for _, it := range seg.Items {
		switch it.Kind {
		case ItemLabel:
			continue
		case ItemInstr:
			if err := encodeInstr(unit, it, pc, sym, emit); err != nil {
				return img, err
			}
		default:
			return img, errf(unit, it.Line, "data item in code segment %q", seg.Name)
		}
	}
	if len(img.Words) != seg.size {
		return img, fmt.Errorf("asm: %s: segment %q encoded %d words, layout said %d",
			unit, seg.Name, len(img.Words), seg.size)
	}
	return img, nil
}

func encodeInstr(unit string, it Item, pc int, sym SymbolTable, emit func(int, isa.Instr) error) error {
	ev := func() (int, error) {
		v, err := it.Ex.Eval(sym)
		if err != nil {
			return 0, errf(unit, it.Line, "%v", err)
		}
		return v, nil
	}
	branchOff := func(target, at int) int { return target - (at + 1) }

	if it.Pseudo != PseudoNone {
		switch it.Pseudo {
		case PseudoLI, PseudoLA:
			v, err := ev()
			if err != nil {
				return err
			}
			v &= 0xFFFF
			if it.size == 1 {
				// Constant fit the signed 10-bit immediate at parse time.
				sv := int32(int16(uint16(v)))
				return emit(it.Line, isa.Instr{Op: isa.OpADDI, Rd: it.Regs[0], Rs1: 0, Imm: sv})
			}
			hi := int32(v >> 6 & 0x3FF)
			lo := int32(v & 0x3F)
			if err := emit(it.Line, isa.Instr{Op: isa.OpLUI, Rd: it.Regs[0], Imm: hi}); err != nil {
				return err
			}
			return emit(it.Line, isa.Instr{Op: isa.OpORI, Rd: it.Regs[0], Rs1: it.Regs[0], Imm: lo})
		case PseudoMOV:
			return emit(it.Line, isa.Instr{Op: isa.OpADD, Rd: it.Regs[0], Rs1: it.Regs[1], Rs2: 0})
		case PseudoNOT:
			return emit(it.Line, isa.Instr{Op: isa.OpXORI, Rd: it.Regs[0], Rs1: it.Regs[1], Imm: -1})
		case PseudoNEG:
			return emit(it.Line, isa.Instr{Op: isa.OpSUB, Rd: it.Regs[0], Rs1: 0, Rs2: it.Regs[1]})
		case PseudoJ, PseudoCALL:
			v, err := ev()
			if err != nil {
				return err
			}
			rd := uint8(0)
			if it.Pseudo == PseudoCALL {
				rd = 15
			}
			return emit(it.Line, isa.Instr{Op: isa.OpJAL, Rd: rd, Imm: int32(branchOff(v, pc))})
		case PseudoRET:
			return emit(it.Line, isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: 15, Imm: 0})
		case PseudoBGT, PseudoBLE, PseudoBGTU, PseudoBLEU:
			v, err := ev()
			if err != nil {
				return err
			}
			op := map[Pseudo]isa.Opcode{
				PseudoBGT: isa.OpBLT, PseudoBLE: isa.OpBGE,
				PseudoBGTU: isa.OpBLTU, PseudoBLEU: isa.OpBGEU,
			}[it.Pseudo]
			// Operands swapped: bgt a,b == blt b,a.
			return emit(it.Line, isa.Instr{Op: op, Rs1: it.Regs[1], Rs2: it.Regs[0], Imm: int32(branchOff(v, pc))})
		case PseudoBEQZ, PseudoBNEZ:
			v, err := ev()
			if err != nil {
				return err
			}
			op := isa.OpBEQ
			if it.Pseudo == PseudoBNEZ {
				op = isa.OpBNE
			}
			return emit(it.Line, isa.Instr{Op: op, Rs1: it.Regs[0], Rs2: 0, Imm: int32(branchOff(v, pc))})
		}
		return errf(unit, it.Line, "unhandled pseudo %d", it.Pseudo)
	}

	ins := isa.Instr{Op: it.Op}
	switch it.Op.Fmt() {
	case isa.FmtR:
		ins.Rd, ins.Rs1, ins.Rs2 = it.Regs[0], it.Regs[1], it.Regs[2]
	case isa.FmtI:
		ins.Rd, ins.Rs1 = it.Regs[0], it.Regs[1]
		v, err := ev()
		if err != nil {
			return err
		}
		ins.Imm = int32(v)
	case isa.FmtB:
		ins.Rs1, ins.Rs2 = it.Regs[0], it.Regs[1]
		if it.Op == isa.OpSW {
			// Source order was (value, base): value is rs2 in the encoding.
			ins.Rs1, ins.Rs2 = it.Regs[1], it.Regs[0]
		}
		v, err := ev()
		if err != nil {
			return err
		}
		if it.Op.IsBranch() {
			v = branchOff(v, pc)
		}
		ins.Imm = int32(v)
	case isa.FmtJ:
		ins.Rd = it.Regs[0]
		v, err := ev()
		if err != nil {
			return err
		}
		ins.Imm = int32(branchOff(v, pc))
	case isa.FmtS:
		v, err := ev()
		if err != nil {
			return err
		}
		ins.Imm = int32(v)
	}
	return emit(it.Line, ins)
}

func encodeData(unit string, seg *Segment, sym SymbolTable) (DataImage, error) {
	img := DataImage{Seg: seg, Words: make([]uint16, 0, seg.size)}
	for _, it := range seg.Items {
		switch it.Kind {
		case ItemLabel:
		case ItemWord:
			for _, e := range it.Words {
				v, err := e.Eval(sym)
				if err != nil {
					return img, errf(unit, it.Line, "%v", err)
				}
				if v < -32768 || v > 65535 {
					return img, errf(unit, it.Line, ".word value %d out of 16-bit range", v)
				}
				img.Words = append(img.Words, uint16(v))
			}
		case ItemSpace:
			img.Words = append(img.Words, make([]uint16, it.Space)...)
		default:
			return img, errf(unit, it.Line, "instruction in data segment %q", seg.Name)
		}
	}
	if len(img.Words) != seg.size {
		return img, fmt.Errorf("asm: %s: data segment %q encoded %d words, layout said %d",
			unit, seg.Name, len(img.Words), seg.size)
	}
	return img, nil
}

// AssembleSnippet assembles a single-unit source whose code segments are
// placed consecutively starting at codeBase and data segments consecutively
// at dataBase. It is a convenience for tests and small programs; real
// programs go through internal/link for bank-aware placement.
func AssembleSnippet(src string, codeBase, dataBase int) ([]isa.Word, []uint16, MapSymbols, error) {
	u, err := Parse("snippet", src)
	if err != nil {
		return nil, nil, nil, err
	}
	cb, db := codeBase, dataBase
	for _, seg := range u.Segments {
		if seg.Kind == SegCode {
			seg.Base = cb
			cb += seg.Size()
		} else {
			seg.Base = db
			db += seg.Size()
		}
	}
	sym := MapSymbols{}
	if err := u.Symbols(sym); err != nil {
		return nil, nil, nil, err
	}
	if err := u.ResolveEqus(sym); err != nil {
		return nil, nil, nil, err
	}
	code, data, err := u.Encode(sym)
	if err != nil {
		return nil, nil, nil, err
	}
	var words []isa.Word
	for _, c := range code {
		words = append(words, c.Words...)
	}
	var dwords []uint16
	for _, d := range data {
		dwords = append(dwords, d.Words...)
	}
	return words, dwords, sym, nil
}
