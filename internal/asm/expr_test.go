package asm

import (
	"testing"
	"testing/quick"
)

func evalConst(t *testing.T, s string) int {
	t.Helper()
	e, err := ParseExpr(s)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", s, err)
	}
	v, err := e.Eval(MapSymbols{"x": 10, "y": 3, "base": 0x100})
	if err != nil {
		t.Fatalf("Eval(%q): %v", s, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"10-3-2", 5},
		{"-5", -5},
		{"~0", -1},
		{"0x10", 16},
		{"1<<4", 16},
		{"256>>2", 64},
		{"0xFF & 0x0F", 15},
		{"1|2|4", 7},
		{"5^1", 4},
		{"7/2", 3},
		{"7%3", 1},
		{"x+y", 13},
		{"base + x*2", 0x114},
		{"'A'", 65},
		{"-x", -10},
		{"2*-3", -6},
		{"1 + 2 << 3", 24}, // shift binds looser than +, like C
	}
	for _, c := range cases {
		if got := evalConst(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	bad := []string{"", "1+", "(1", "1)", "1 1", "$", "'ab'", "1/0", "1%0", "nosuchsym"}
	for _, s := range bad {
		e, err := ParseExpr(s)
		if err != nil {
			continue
		}
		if _, err := e.Eval(MapSymbols{}); err == nil {
			t.Errorf("%q: want an error somewhere, got none", s)
		}
	}
}

func TestExprUndefinedSymbolNamed(t *testing.T) {
	e, err := ParseExpr("missing + 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(MapSymbols{}); err == nil {
		t.Fatal("want undefined-symbol error")
	}
	if _, ok := e.ConstValue(); ok {
		t.Error("ConstValue should fail for symbolic expressions")
	}
}

func TestLitAndSymHelpers(t *testing.T) {
	if v, ok := Lit(42).ConstValue(); !ok || v != 42 {
		t.Errorf("Lit(42) = %d, %v", v, ok)
	}
	v, err := Sym("x").Eval(MapSymbols{"x": 7})
	if err != nil || v != 7 {
		t.Errorf("Sym eval = %d, %v", v, err)
	}
}

func TestQuickLiteralRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		got, ok := Lit(int(v)).ConstValue()
		return ok && got == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAdditionAssociativity(t *testing.T) {
	// Parser must agree with Go on mixed +/- chains of literals.
	f := func(a, b, c int16) bool {
		e, err := ParseExpr(Lit(int(a)).String() + "+" + Lit(int(b)).String() + "-" + Lit(int(c)).String())
		if err != nil {
			return false
		}
		v, ok := e.ConstValue()
		return ok && v == int(a)+int(b)-int(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
