package asm

import (
	"strings"

	"repro/internal/isa"
)

// regAliases maps register operand spellings to register numbers.
var regAliases = map[string]uint8{
	"zero": 0, "sp": 14, "ra": 15,
}

func parseReg(tok string) (uint8, bool) {
	if r, ok := regAliases[tok]; ok {
		return r, true
	}
	if len(tok) >= 2 && tok[0] == 'r' {
		n := 0
		for _, c := range tok[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		if n < isa.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

// pseudoInfo describes operand shapes for pseudo-instructions.
var pseudoByName = map[string]Pseudo{
	"li": PseudoLI, "la": PseudoLA, "mov": PseudoMOV, "j": PseudoJ,
	"call": PseudoCALL, "ret": PseudoRET, "not": PseudoNOT, "neg": PseudoNEG,
	"bgt": PseudoBGT, "ble": PseudoBLE, "bgtu": PseudoBGTU, "bleu": PseudoBLEU,
	"beqz": PseudoBEQZ, "bnez": PseudoBNEZ,
}

// Parse parses one assembler source file into a Unit. Item sizes (and hence
// segment sizes) are final after parsing; encoding happens once the linker
// has placed segments and built the symbol table.
func Parse(name, src string) (*Unit, error) {
	u := &Unit{Name: name}
	var seg *Segment
	needSeg := func(line int) error {
		if seg == nil {
			return errf(name, line, "statement outside any .code/.data segment")
		}
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := lineNo + 1
		text := stripComment(raw)

		// Leading labels (possibly several on one line).
		for {
			trimmed := strings.TrimSpace(text)
			i := strings.IndexByte(trimmed, ':')
			if i <= 0 || !isIdentifier(trimmed[:i]) {
				break
			}
			if err := needSeg(line); err != nil {
				return nil, err
			}
			seg.Items = append(seg.Items, Item{Kind: ItemLabel, Line: line, Label: trimmed[:i]})
			text = trimmed[i+1:]
		}

		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}

		if strings.HasPrefix(text, ".") {
			var err error
			seg, err = parseDirective(u, seg, text, line)
			if err != nil {
				return nil, err
			}
			continue
		}

		if err := needSeg(line); err != nil {
			return nil, err
		}
		if seg.Kind != SegCode {
			return nil, errf(name, line, "instruction %q in data segment %q", text, seg.Name)
		}
		it, err := parseInstr(name, text, line)
		if err != nil {
			return nil, err
		}
		seg.Items = append(seg.Items, it)
		seg.size += it.size
	}
	return u, nil
}

func stripComment(s string) string {
	// Comments start with ';' or "//". Character literals never contain
	// either, so a simple scan suffices.
	for i := 0; i < len(s); i++ {
		if s[i] == ';' {
			return s[:i]
		}
		if s[i] == '/' && i+1 < len(s) && s[i+1] == '/' {
			return s[:i]
		}
	}
	return s
}

func isIdentifier(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdent(s[i]) {
			return false
		}
	}
	return true
}

func parseDirective(u *Unit, seg *Segment, text string, line int) (*Segment, error) {
	word, rest := splitWord(text)
	switch word {
	case ".code", ".data":
		segName := strings.TrimSpace(rest)
		if !isIdentifier(segName) {
			return seg, errf(u.Name, line, "%s: missing or invalid segment name", word)
		}
		kind := SegCode
		if word == ".data" {
			kind = SegData
		}
		for _, s := range u.Segments {
			if s.Name == segName {
				if s.Kind != kind {
					return seg, errf(u.Name, line, "segment %q reopened with different kind", segName)
				}
				return s, nil // reopening appends to the existing segment
			}
		}
		ns := &Segment{Name: segName, Kind: kind}
		u.Segments = append(u.Segments, ns)
		return ns, nil

	case ".equ":
		nameStr, exprStr, ok := strings.Cut(rest, ",")
		nameStr = strings.TrimSpace(nameStr)
		if !ok || !isIdentifier(nameStr) {
			return seg, errf(u.Name, line, ".equ: want \".equ name, expr\"")
		}
		e, err := ParseExpr(exprStr)
		if err != nil {
			return seg, errf(u.Name, line, ".equ %s: %v", nameStr, err)
		}
		u.Equs = append(u.Equs, Equ{Name: nameStr, Expr: e, Line: line})
		return seg, nil

	case ".word":
		if seg == nil || seg.Kind != SegData {
			return seg, errf(u.Name, line, ".word outside a data segment")
		}
		var words []*Expr
		for _, field := range splitOperands(rest) {
			e, err := ParseExpr(field)
			if err != nil {
				return seg, errf(u.Name, line, ".word: %v", err)
			}
			words = append(words, e)
		}
		if len(words) == 0 {
			return seg, errf(u.Name, line, ".word: no values")
		}
		seg.Items = append(seg.Items, Item{Kind: ItemWord, Line: line, Words: words, size: len(words)})
		seg.size += len(words)
		return seg, nil

	case ".space":
		if seg == nil || seg.Kind != SegData {
			return seg, errf(u.Name, line, ".space outside a data segment")
		}
		e, err := ParseExpr(rest)
		if err != nil {
			return seg, errf(u.Name, line, ".space: %v", err)
		}
		n, ok := e.ConstValue()
		if !ok || n < 0 {
			return seg, errf(u.Name, line, ".space: size must be a non-negative constant")
		}
		seg.Items = append(seg.Items, Item{Kind: ItemSpace, Line: line, Space: n, size: n})
		seg.size += n
		return seg, nil
	}
	return seg, errf(u.Name, line, "unknown directive %q", word)
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i+1:]
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

func parseInstr(unit, text string, line int) (Item, error) {
	mnem, rest := splitWord(text)
	mnem = strings.ToLower(mnem)
	ops := splitOperands(rest)
	it := Item{Kind: ItemInstr, Line: line, size: 1}

	if ps, ok := pseudoByName[mnem]; ok {
		return parsePseudo(unit, ps, mnem, ops, it)
	}

	op, ok := isa.OpcodeByName[mnem]
	if !ok {
		return it, errf(unit, line, "unknown mnemonic %q", mnem)
	}
	it.Op = op

	want := func(n int) error {
		if len(ops) != n {
			return errf(unit, line, "%s: want %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (uint8, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, errf(unit, line, "%s: operand %d: bad register %q", mnem, i+1, ops[i])
		}
		return r, nil
	}

	switch op.Fmt() {
	case isa.FmtR:
		if err := want(3); err != nil {
			return it, err
		}
		for i := 0; i < 3; i++ {
			r, err := reg(i)
			if err != nil {
				return it, err
			}
			it.Regs[i] = r
		}
		it.NRegs = 3

	case isa.FmtI:
		switch op {
		case isa.OpLW:
			// lw rd, off(base)
			if err := want(2); err != nil {
				return it, err
			}
			rd, err := reg(0)
			if err != nil {
				return it, err
			}
			base, off, err := parseMemOperand(unit, line, mnem, ops[1])
			if err != nil {
				return it, err
			}
			it.Regs[0], it.Regs[1] = rd, base
			it.NRegs, it.Ex = 2, off
		case isa.OpLUI:
			if err := want(2); err != nil {
				return it, err
			}
			rd, err := reg(0)
			if err != nil {
				return it, err
			}
			e, err := ParseExpr(ops[1])
			if err != nil {
				return it, errf(unit, line, "%s: %v", mnem, err)
			}
			it.Regs[0], it.NRegs, it.Ex = rd, 1, e
		default:
			if err := want(3); err != nil {
				return it, err
			}
			rd, err := reg(0)
			if err != nil {
				return it, err
			}
			rs1, err := reg(1)
			if err != nil {
				return it, err
			}
			e, err := ParseExpr(ops[2])
			if err != nil {
				return it, errf(unit, line, "%s: %v", mnem, err)
			}
			it.Regs[0], it.Regs[1] = rd, rs1
			it.NRegs, it.Ex = 2, e
		}

	case isa.FmtB:
		if op == isa.OpSW {
			// sw rs2, off(base)
			if err := want(2); err != nil {
				return it, err
			}
			rs2, err := reg(0)
			if err != nil {
				return it, err
			}
			base, off, err := parseMemOperand(unit, line, mnem, ops[1])
			if err != nil {
				return it, err
			}
			it.Regs[0], it.Regs[1] = rs2, base
			it.NRegs, it.Ex = 2, off
			break
		}
		// branches: bxx rs1, rs2, target
		if err := want(3); err != nil {
			return it, err
		}
		rs1, err := reg(0)
		if err != nil {
			return it, err
		}
		rs2, err := reg(1)
		if err != nil {
			return it, err
		}
		e, err := ParseExpr(ops[2])
		if err != nil {
			return it, errf(unit, line, "%s: %v", mnem, err)
		}
		it.Regs[0], it.Regs[1] = rs1, rs2
		it.NRegs, it.Ex = 2, e

	case isa.FmtJ:
		if err := want(2); err != nil {
			return it, err
		}
		rd, err := reg(0)
		if err != nil {
			return it, err
		}
		e, err := ParseExpr(ops[1])
		if err != nil {
			return it, errf(unit, line, "%s: %v", mnem, err)
		}
		it.Regs[0], it.NRegs, it.Ex = rd, 1, e

	case isa.FmtS:
		if err := want(1); err != nil {
			return it, err
		}
		arg := ops[0]
		if !strings.HasPrefix(arg, "#") {
			return it, errf(unit, line, "%s: sync point must use #literal syntax", mnem)
		}
		e, err := ParseExpr(arg[1:])
		if err != nil {
			return it, errf(unit, line, "%s: %v", mnem, err)
		}
		it.Ex, it.ExIsSync = e, true

	case isa.FmtN:
		if err := want(0); err != nil {
			return it, err
		}
	}
	return it, nil
}

func parseMemOperand(unit string, line int, mnem, s string) (base uint8, off *Expr, err error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, nil, errf(unit, line, "%s: want off(reg), got %q", mnem, s)
	}
	r, ok := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if !ok {
		return 0, nil, errf(unit, line, "%s: bad base register in %q", mnem, s)
	}
	offText := strings.TrimSpace(s[:open])
	if offText == "" {
		offText = "0"
	}
	e, err := ParseExpr(offText)
	if err != nil {
		return 0, nil, errf(unit, line, "%s: %v", mnem, err)
	}
	return r, e, nil
}

func parsePseudo(unit string, ps Pseudo, mnem string, ops []string, it Item) (Item, error) {
	it.Pseudo = ps
	line := it.Line
	want := func(n int) error {
		if len(ops) != n {
			return errf(unit, line, "%s: want %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (uint8, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, errf(unit, line, "%s: operand %d: bad register %q", mnem, i+1, ops[i])
		}
		return r, nil
	}
	expr := func(i int) (*Expr, error) {
		e, err := ParseExpr(ops[i])
		if err != nil {
			return nil, errf(unit, line, "%s: %v", mnem, err)
		}
		return e, nil
	}

	switch ps {
	case PseudoLI, PseudoLA:
		if err := want(2); err != nil {
			return it, err
		}
		rd, err := reg(0)
		if err != nil {
			return it, err
		}
		e, err := expr(1)
		if err != nil {
			return it, err
		}
		it.Regs[0], it.NRegs, it.Ex = rd, 1, e
		// Size is fixed now: a constant fitting the signed 10-bit
		// immediate takes one ADDI; anything else (including all
		// symbolic values) reserves the LUI+ORI pair.
		it.size = 2
		if ps == PseudoLI {
			if v, ok := e.ConstValue(); ok && v >= isa.Imm10Min && v <= isa.Imm10Max {
				it.size = 1
			}
		}
	case PseudoMOV, PseudoNOT, PseudoNEG:
		if err := want(2); err != nil {
			return it, err
		}
		rd, err := reg(0)
		if err != nil {
			return it, err
		}
		rs, err := reg(1)
		if err != nil {
			return it, err
		}
		it.Regs[0], it.Regs[1], it.NRegs = rd, rs, 2
	case PseudoJ, PseudoCALL:
		if err := want(1); err != nil {
			return it, err
		}
		e, err := expr(0)
		if err != nil {
			return it, err
		}
		it.Ex = e
	case PseudoRET:
		if err := want(0); err != nil {
			return it, err
		}
	case PseudoBGT, PseudoBLE, PseudoBGTU, PseudoBLEU:
		if err := want(3); err != nil {
			return it, err
		}
		a, err := reg(0)
		if err != nil {
			return it, err
		}
		b, err := reg(1)
		if err != nil {
			return it, err
		}
		e, err := expr(2)
		if err != nil {
			return it, err
		}
		it.Regs[0], it.Regs[1], it.NRegs, it.Ex = a, b, 2, e
	case PseudoBEQZ, PseudoBNEZ:
		if err := want(2); err != nil {
			return it, err
		}
		a, err := reg(0)
		if err != nil {
			return it, err
		}
		e, err := expr(1)
		if err != nil {
			return it, err
		}
		it.Regs[0], it.NRegs, it.Ex = a, 1, e
	}
	return it, nil
}
