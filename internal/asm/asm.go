// Package asm implements the WB16 assembler, part of the paper's programming
// tool-chain (compiler, builder and linker; §IV-C). Sources are parsed into
// units of named code and data segments whose items have fixed sizes; the
// linker (internal/link) assigns base addresses to segments, after which the
// unit is encoded against the global symbol table.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// SegKind distinguishes instruction-memory from data-memory segments.
type SegKind uint8

// Segment kinds.
const (
	SegCode SegKind = iota // 24-bit instruction words, placed in IM banks
	SegData                // 16-bit data words, placed in DM
)

func (k SegKind) String() string {
	if k == SegCode {
		return "code"
	}
	return "data"
}

// Unit is one assembled translation unit: an ordered list of segments plus
// unit-level .equ definitions.
type Unit struct {
	Name     string
	Segments []*Segment
	// Equs are constant definitions, evaluated against the full symbol
	// table at encode time (they may reference labels).
	Equs []Equ
}

// Equ is a named constant definition from a .equ directive.
type Equ struct {
	Name string
	Expr *Expr
	Line int
}

// Segment is a contiguous run of code or data placed as one block.
type Segment struct {
	Name  string
	Kind  SegKind
	Items []Item
	// Base is the word address assigned by the linker (IM address for
	// code, DM address for data). Valid after placement.
	Base int
	// size in words, accumulated during parsing.
	size int
}

// Size returns the segment size in words (24-bit words for code, 16-bit for
// data).
func (s *Segment) Size() int { return s.size }

// Item is a single parsed entity within a segment.
type Item struct {
	Kind ItemKind
	Line int

	// Label name, for ItemLabel.
	Label string

	// Instruction fields, for ItemInstr.
	Op       isa.Opcode
	Pseudo   Pseudo
	Regs     [3]uint8 // operand registers in source order
	NRegs    int
	Ex       *Expr // immediate / offset / target / sync point
	ExIsSync bool  // immediate written with the #literal sync syntax

	// Data fields, for ItemWord (one expression per word) and ItemSpace.
	Words []*Expr
	Space int

	// size of the item in words, fixed at parse time.
	size int
}

// ItemKind enumerates parsed item types.
type ItemKind uint8

// Item kinds.
const (
	ItemLabel ItemKind = iota
	ItemInstr
	ItemWord
	ItemSpace
)

// Pseudo enumerates pseudo-instructions expanded at encode time. Their sizes
// are fixed at parse time so segment layout never changes afterwards.
type Pseudo uint8

// Pseudo-instructions.
const (
	PseudoNone Pseudo = iota
	PseudoLI          // li rd, expr   -> addi (1 word) or lui+ori (2 words)
	PseudoLA          // la rd, symbol -> lui+ori (always 2 words)
	PseudoMOV         // mov rd, rs    -> add rd, rs, r0
	PseudoJ           // j label       -> jal r0, label
	PseudoCALL        // call label    -> jal ra, label
	PseudoRET         // ret           -> jalr r0, ra, 0
	PseudoNOT         // not rd, rs    -> xori rd, rs, -1
	PseudoNEG         // neg rd, rs    -> sub rd, r0, rs
	PseudoBGT         // bgt a,b,l     -> blt b,a,l
	PseudoBLE         // ble a,b,l     -> bge b,a,l
	PseudoBGTU        // bgtu a,b,l    -> bltu b,a,l
	PseudoBLEU        // bleu a,b,l    -> bgeu b,a,l
	PseudoBEQZ        // beqz a,l      -> beq a,r0,l
	PseudoBNEZ        // bnez a,l      -> bne a,r0,l
)

// Error is an assembler diagnostic carrying source position.
type Error struct {
	Unit string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Unit, e.Line, e.Msg)
}

func errf(unit string, line int, format string, args ...any) error {
	return &Error{Unit: unit, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Symbols collects every label (as segment-relative offsets resolved against
// segment bases) and .equ of the unit into dst. Labels must be unique across
// the whole program; collisions are reported.
func (u *Unit) Symbols(dst MapSymbols) error {
	for _, seg := range u.Segments {
		off := 0
		for _, it := range seg.Items {
			if it.Kind == ItemLabel {
				if _, dup := dst[it.Label]; dup {
					return errf(u.Name, it.Line, "duplicate symbol %q", it.Label)
				}
				dst[it.Label] = seg.Base + off
			}
			off += it.size
		}
	}
	return nil
}

// ResolveEqus evaluates the unit's .equ definitions into dst. Definitions may
// reference labels and previously defined constants.
func (u *Unit) ResolveEqus(dst MapSymbols) error {
	for _, eq := range u.Equs {
		if _, dup := dst[eq.Name]; dup {
			return errf(u.Name, eq.Line, "duplicate symbol %q", eq.Name)
		}
		v, err := eq.Expr.Eval(dst)
		if err != nil {
			return errf(u.Name, eq.Line, ".equ %s: %v", eq.Name, err)
		}
		dst[eq.Name] = v
	}
	return nil
}

// CodeImage is an encoded code segment ready to be loaded into IM.
type CodeImage struct {
	Seg   *Segment
	Words []isa.Word
	// SyncInstrs counts instructions belonging to the sync ISE, for the
	// paper's code-overhead metric (Table I).
	SyncInstrs int
}

// DataImage is an encoded data segment ready to be loaded into DM.
type DataImage struct {
	Seg   *Segment
	Words []uint16
}
