package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func mustAssemble(t *testing.T, src string) ([]isa.Word, []uint16, MapSymbols) {
	t.Helper()
	code, data, sym, err := AssembleSnippet(src, 0, 0)
	if err != nil {
		t.Fatalf("AssembleSnippet: %v", err)
	}
	return code, data, sym
}

func TestBasicProgram(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code main
start:
    addi r1, r0, 5
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`)
	want := []isa.Instr{
		{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5},
		{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: -1},
		{Op: isa.OpBNE, Rs1: 1, Rs2: 0, Imm: -2},
		{Op: isa.OpHALT},
	}
	if len(code) != len(want) {
		t.Fatalf("got %d words, want %d", len(code), len(want))
	}
	for i, w := range want {
		if got := isa.Decode(code[i]); got != w {
			t.Errorf("word %d: got %v, want %v", i, got, w)
		}
	}
}

func TestForwardReference(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code main
    beq r0, r0, done
    addi r1, r0, 1
done:
    halt
`)
	ins := isa.Decode(code[0])
	if ins.Op != isa.OpBEQ || ins.Imm != 1 {
		t.Errorf("forward branch decoded as %v, want beq +1", ins)
	}
}

func TestLoadStoreSyntax(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code main
    lw r3, 8(r2)
    lw r3, (r2)
    sw r3, -4(sp)
    halt
`)
	if got := isa.Decode(code[0]); got != (isa.Instr{Op: isa.OpLW, Rd: 3, Rs1: 2, Imm: 8}) {
		t.Errorf("lw: %v", got)
	}
	if got := isa.Decode(code[1]); got != (isa.Instr{Op: isa.OpLW, Rd: 3, Rs1: 2, Imm: 0}) {
		t.Errorf("lw no-offset: %v", got)
	}
	if got := isa.Decode(code[2]); got != (isa.Instr{Op: isa.OpSW, Rs1: 14, Rs2: 3, Imm: -4}) {
		t.Errorf("sw: %v", got)
	}
}

func TestSyncInstructions(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.equ PT_FILTER, 3
.code main
    sinc #PT_FILTER
    sdec #PT_FILTER
    snop #2
    sleep
    halt
`)
	wants := []isa.Instr{
		{Op: isa.OpSINC, Imm: 3},
		{Op: isa.OpSDEC, Imm: 3},
		{Op: isa.OpSNOP, Imm: 2},
		{Op: isa.OpSLEEP},
	}
	for i, w := range wants {
		if got := isa.Decode(code[i]); got != w {
			t.Errorf("word %d: got %v, want %v", i, got, w)
		}
	}
}

func TestSyncRequiresHashSyntax(t *testing.T) {
	_, _, _, err := AssembleSnippet(".code m\n sinc 3\n", 0, 0)
	if err == nil || !strings.Contains(err.Error(), "#literal") {
		t.Errorf("want #literal error, got %v", err)
	}
}

func TestLIExpansion(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code main
    li r1, 5          ; fits imm10: one addi
    li r2, 0x1234     ; needs lui+ori
    li r3, -512       ; boundary: fits
    li r4, 512        ; does not fit
    halt
`)
	if len(code) != 7 {
		t.Fatalf("got %d words, want 7", len(code))
	}
	if got := isa.Decode(code[0]); got != (isa.Instr{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 5}) {
		t.Errorf("li small: %v", got)
	}
	lui := isa.Decode(code[1])
	ori := isa.Decode(code[2])
	if lui.Op != isa.OpLUI || ori.Op != isa.OpORI {
		t.Fatalf("li large: got %v, %v", lui, ori)
	}
	if v := uint16(lui.Imm)<<6 | uint16(ori.Imm); v != 0x1234 {
		t.Errorf("li large reconstructs to %#x, want 0x1234", v)
	}
}

func TestLASymbolic(t *testing.T) {
	code, _, sym := mustAssemble(t, `
.code main
    la r1, buf
    lw r2, (r1)
    halt
.data d
    .space 7
buf:
    .word 42
`)
	lui := isa.Decode(code[0])
	ori := isa.Decode(code[1])
	got := int(uint16(lui.Imm)<<6 | uint16(ori.Imm))
	if got != sym["buf"] || sym["buf"] != 7 {
		t.Errorf("la resolves to %d, symbol buf = %d (want 7)", got, sym["buf"])
	}
}

func TestPseudoBranchesAndMoves(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code main
t:  mov r1, r2
    not r3, r4
    neg r5, r6
    bgt r1, r2, t
    ble r1, r2, t
    bgtu r1, r2, t
    bleu r1, r2, t
    beqz r1, t
    bnez r1, t
    j t
    call t
    ret
`)
	wants := []isa.Instr{
		{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 0},
		{Op: isa.OpXORI, Rd: 3, Rs1: 4, Imm: -1},
		{Op: isa.OpSUB, Rd: 5, Rs1: 0, Rs2: 6},
		{Op: isa.OpBLT, Rs1: 2, Rs2: 1, Imm: -4},
		{Op: isa.OpBGE, Rs1: 2, Rs2: 1, Imm: -5},
		{Op: isa.OpBLTU, Rs1: 2, Rs2: 1, Imm: -6},
		{Op: isa.OpBGEU, Rs1: 2, Rs2: 1, Imm: -7},
		{Op: isa.OpBEQ, Rs1: 1, Rs2: 0, Imm: -8},
		{Op: isa.OpBNE, Rs1: 1, Rs2: 0, Imm: -9},
		{Op: isa.OpJAL, Rd: 0, Imm: -10},
		{Op: isa.OpJAL, Rd: 15, Imm: -11},
		{Op: isa.OpJALR, Rd: 0, Rs1: 15, Imm: 0},
	}
	for i, w := range wants {
		if got := isa.Decode(code[i]); got != w {
			t.Errorf("word %d: got %v, want %v", i, got, w)
		}
	}
}

func TestDataSegment(t *testing.T) {
	_, data, sym := mustAssemble(t, `
.data tab
coef:
    .word 1, -2, 0x10, 'A'
    .space 3
end:
    .word end - coef
`)
	want := []uint16{1, 0xFFFE, 0x10, 65, 0, 0, 0, 7}
	if len(data) != len(want) {
		t.Fatalf("data len %d, want %d", len(data), len(want))
	}
	for i, w := range want {
		if data[i] != w {
			t.Errorf("data[%d] = %d, want %d", i, data[i], w)
		}
	}
	if sym["end"]-sym["coef"] != 7 {
		t.Errorf("label arithmetic wrong: end-coef = %d", sym["end"]-sym["coef"])
	}
}

func TestEquExpressions(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.equ A, 3
.equ B, A * 4 + 1
.code m
    addi r1, r0, B
    halt
`)
	if got := isa.Decode(code[0]); got.Imm != 13 {
		t.Errorf("B = %d, want 13", got.Imm)
	}
}

func TestRegisterAliases(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code m
    add sp, ra, zero
    halt
`)
	if got := isa.Decode(code[0]); got != (isa.Instr{Op: isa.OpADD, Rd: 14, Rs1: 15, Rs2: 0}) {
		t.Errorf("aliases: %v", got)
	}
}

func TestComments(t *testing.T) {
	code, _, _ := mustAssemble(t, `
.code m        ; segment
    nop        // trailing
; full line
    halt
`)
	if len(code) != 2 {
		t.Errorf("got %d instructions, want 2", len(code))
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	_, _, sym := mustAssemble(t, `
.code m
a: b:
    nop
c:
    halt
`)
	if sym["a"] != sym["b"] || sym["a"] != 0 || sym["c"] != 1 {
		t.Errorf("labels: a=%d b=%d c=%d", sym["a"], sym["b"], sym["c"])
	}
}

func TestSegmentReopening(t *testing.T) {
	code, _, sym := mustAssemble(t, `
.code a
    nop
.code b
    halt
.code a
second:
    halt
`)
	// Segments: a (2 words), then b (1 word). Placement is a then b.
	if len(code) != 3 {
		t.Fatalf("got %d words, want 3", len(code))
	}
	if sym["second"] != 1 {
		t.Errorf("second = %d, want 1 (appended to segment a)", sym["second"])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"nop\n", "outside any"},
		{".code m\n frob r1\n", "unknown mnemonic"},
		{".code m\n add r1, r2\n", "want 3 operands"},
		{".code m\n add r1, r2, r99\n", "bad register"},
		{".code m\n addi r1, r0, 4096\n", "out of signed 10-bit"},
		{".code m\n lw r1, r2\n", "want off(reg)"},
		{".data d\n .word\n", "no values"},
		{".code m\n .word 3\n", "outside a data segment"},
		{".data d\n nop\n", "in data segment"},
		{".bogus x\n", "unknown directive"},
		{".code m\nx: nop\nx: nop\n", "duplicate symbol"},
		{".equ q, 1\n.equ q, 2\n.code m\n nop\n", "duplicate symbol"},
		{".code m\n beq r0, r0, nowhere\n", "undefined symbol"},
		{".data d\n .word 70000\n", "out of 16-bit range"},
		{".data d\n .space -1\n", "non-negative"},
		{".code m\n jal r1, start + \n", "unexpected end"},
	}
	for _, c := range cases {
		_, _, _, err := AssembleSnippet(c.src, 0, 0)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("src %q: want error containing %q, got %v", c.src, c.wantSub, err)
		}
	}
}

func TestErrorCarriesLineNumber(t *testing.T) {
	_, _, _, err := AssembleSnippet(".code m\n nop\n frob\n", 0, 0)
	if err == nil || !strings.Contains(err.Error(), ":3:") {
		t.Errorf("want line 3 in error, got %v", err)
	}
}

func TestSyncInstrCountForCodeOverhead(t *testing.T) {
	u, err := Parse("t", `
.code m
    addi r1, r0, 1
    sinc #0
    sdec #0
    sleep
    snop #1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sym := MapSymbols{}
	if err := u.Symbols(sym); err != nil {
		t.Fatal(err)
	}
	code, _, err := u.Encode(sym)
	if err != nil {
		t.Fatal(err)
	}
	if code[0].SyncInstrs != 4 {
		t.Errorf("SyncInstrs = %d, want 4", code[0].SyncInstrs)
	}
}

func TestBranchOffsetFromDifferentBase(t *testing.T) {
	// The same source assembled at a non-zero base must produce identical
	// relative branches.
	src := `
.code m
top:
    addi r1, r1, 1
    bne r1, r0, top
    halt
`
	a, _, _, err := AssembleSnippet(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := AssembleSnippet(src, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("word %d differs across bases: %#x vs %#x", i, a[i], b[i])
		}
	}
}
