package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a constant expression over integers and symbols, evaluated once the
// linker has assigned addresses to every label. The grammar supports decimal,
// hexadecimal (0x) and character ('c') literals, symbol references, unary - ~
// and the binary operators + - * / % << >> & | ^ with C-like precedence.
type Expr struct {
	text string
	node exprNode
}

// String returns the source text of the expression.
func (e *Expr) String() string { return e.text }

type exprNode interface {
	eval(sym SymbolTable) (int, error)
}

// SymbolTable resolves symbol names to values during encoding.
type SymbolTable interface {
	Lookup(name string) (int, bool)
}

// MapSymbols is a SymbolTable backed by a plain map.
type MapSymbols map[string]int

// Lookup implements SymbolTable.
func (m MapSymbols) Lookup(name string) (int, bool) {
	v, ok := m[name]
	return v, ok
}

type litNode int

func (n litNode) eval(SymbolTable) (int, error) { return int(n), nil }

type symNode string

func (n symNode) eval(sym SymbolTable) (int, error) {
	if sym != nil {
		if v, ok := sym.Lookup(string(n)); ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("undefined symbol %q", string(n))
}

type unaryNode struct {
	op rune
	x  exprNode
}

func (n unaryNode) eval(sym SymbolTable) (int, error) {
	v, err := n.x.eval(sym)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case '-':
		return -v, nil
	case '~':
		return ^v, nil
	}
	return 0, fmt.Errorf("unknown unary operator %q", n.op)
}

type binNode struct {
	op   string
	l, r exprNode
}

func (n binNode) eval(sym SymbolTable) (int, error) {
	l, err := n.l.eval(sym)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(sym)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case "<<":
		return l << uint(r&31), nil
	case ">>":
		return l >> uint(r&31), nil
	case "&":
		return l & r, nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	}
	return 0, fmt.Errorf("unknown operator %q", n.op)
}

// Eval evaluates the expression against sym.
func (e *Expr) Eval(sym SymbolTable) (int, error) {
	v, err := e.node.eval(sym)
	if err != nil {
		return 0, fmt.Errorf("in %q: %w", e.text, err)
	}
	return v, nil
}

// ConstValue evaluates the expression with no symbols; ok is false when the
// expression references any symbol.
func (e *Expr) ConstValue() (v int, ok bool) {
	v, err := e.node.eval(MapSymbols(nil))
	return v, err == nil
}

// Lit returns an Expr holding a fixed integer, useful for generated code.
func Lit(v int) *Expr { return &Expr{text: strconv.Itoa(v), node: litNode(v)} }

// Sym returns an Expr referencing a symbol, useful for generated code.
func Sym(name string) *Expr { return &Expr{text: name, node: symNode(name)} }

// ParseExpr parses a constant expression from s.
func ParseExpr(s string) (*Expr, error) {
	p := exprParser{src: s}
	n, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("expression %q: trailing input at %q", s, p.src[p.pos:])
	}
	return &Expr{text: strings.TrimSpace(s), node: n}, nil
}

type exprParser struct {
	src string
	pos int
}

// binary operator precedence, lowest first.
var precedence = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"<<": 4, ">>": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peekOp() string {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return ""
	}
	if p.pos+1 < len(p.src) {
		two := p.src[p.pos : p.pos+2]
		if two == "<<" || two == ">>" {
			return two
		}
	}
	c := p.src[p.pos]
	if strings.ContainsRune("+-*/%&|^", rune(c)) {
		return string(c)
	}
	return ""
}

func (p *exprParser) parseBinary(minPrec int) (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peekOp()
		if op == "" || precedence[op] < minPrec {
			return left, nil
		}
		p.pos += len(op)
		right, err := p.parseBinary(precedence[op] + 1)
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
}

func (p *exprParser) parseUnary() (exprNode, error) {
	p.skipSpace()
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '-', '~':
			op := rune(p.src[p.pos])
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return unaryNode{op: op, x: x}, nil
		}
	}
	return p.parsePrimary()
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *exprParser) parsePrimary() (exprNode, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("expression %q: unexpected end", p.src)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		n, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("expression %q: missing )", p.src)
		}
		p.pos++
		return n, nil
	case c == '\'':
		if p.pos+2 < len(p.src) && p.src[p.pos+2] == '\'' {
			v := litNode(p.src[p.pos+1])
			p.pos += 3
			return v, nil
		}
		return nil, fmt.Errorf("expression %q: bad character literal", p.src)
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && (isIdent(p.src[p.pos])) {
			p.pos++
		}
		text := p.src[start:p.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("expression %q: bad number %q", p.src, text)
		}
		return litNode(v), nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdent(p.src[p.pos]) {
			p.pos++
		}
		return symNode(p.src[start:p.pos]), nil
	}
	return nil, fmt.Errorf("expression %q: unexpected %q", p.src, c)
}
