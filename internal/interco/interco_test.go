package interco

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBroadcastMerge(t *testing.T) {
	x := NewCrossbar(8)
	reqs := []Request{
		{Core: 0, Bank: 2, Offset: 10},
		{Core: 1, Bank: 2, Offset: 10},
		{Core: 2, Bank: 2, Offset: 10},
	}
	res := x.Arbitrate(reqs)
	if res.Accesses != 1 || res.Merged != 2 || res.Stalled != 0 {
		t.Fatalf("res = %+v, want 1 access, 2 merged, 0 stalled", res)
	}
	for i, r := range reqs {
		if !r.Granted {
			t.Errorf("request %d not granted", i)
		}
	}
}

func TestConflictSerializes(t *testing.T) {
	x := NewCrossbar(8)
	reqs := []Request{
		{Core: 0, Bank: 2, Offset: 10},
		{Core: 1, Bank: 2, Offset: 11},
	}
	res := x.Arbitrate(reqs)
	if res.Accesses != 1 || res.Stalled != 1 {
		t.Fatalf("res = %+v, want 1 access 1 stall", res)
	}
	if !reqs[0].Granted || reqs[1].Granted {
		t.Error("rotating priority at cycle 0 should favor core 0")
	}
}

func TestRotatingPriorityIsFair(t *testing.T) {
	x := NewCrossbar(8)
	wins := map[int]int{}
	for cycle := 0; cycle < 64; cycle++ {
		reqs := []Request{
			{Core: 0, Bank: 1, Offset: 1},
			{Core: 1, Bank: 1, Offset: 2},
		}
		x.Arbitrate(reqs)
		for _, r := range reqs {
			if r.Granted {
				wins[r.Core]++
			}
		}
		x.Advance()
	}
	if wins[0] == 0 || wins[1] == 0 {
		t.Errorf("starvation: wins = %v", wins)
	}
}

func TestDifferentBanksNoConflict(t *testing.T) {
	x := NewCrossbar(8)
	reqs := []Request{
		{Core: 0, Bank: 0, Offset: 5},
		{Core: 1, Bank: 1, Offset: 5},
		{Core: 2, Bank: 2, Offset: 5},
	}
	res := x.Arbitrate(reqs)
	if res.Accesses != 3 || res.Stalled != 0 || res.Merged != 0 {
		t.Fatalf("res = %+v, want 3 independent accesses", res)
	}
}

func TestWritesNeverMerge(t *testing.T) {
	x := NewCrossbar(8)
	reqs := []Request{
		{Core: 0, Bank: 2, Offset: 10, Write: true},
		{Core: 1, Bank: 2, Offset: 10, Write: true},
	}
	res := x.Arbitrate(reqs)
	if res.Accesses != 1 || res.Stalled != 1 || res.Merged != 0 {
		t.Fatalf("res = %+v, want write serialization", res)
	}
}

func TestReadDoesNotMergeWithWrite(t *testing.T) {
	x := NewCrossbar(8)
	reqs := []Request{
		{Core: 0, Bank: 2, Offset: 10, Write: true},
		{Core: 1, Bank: 2, Offset: 10},
	}
	res := x.Arbitrate(reqs)
	if res.Stalled != 1 {
		t.Fatalf("res = %+v: a read must not merge with a write", res)
	}
	// And the other way around: a read winner does not grant a write.
	x2 := NewCrossbar(8)
	reqs2 := []Request{
		{Core: 0, Bank: 2, Offset: 10},
		{Core: 1, Bank: 2, Offset: 10, Write: true},
	}
	res2 := x2.Arbitrate(reqs2)
	if res2.Stalled != 1 || reqs2[1].Granted {
		t.Fatalf("res = %+v: a write must not ride a read broadcast", res2)
	}
}

func TestEmptyCycle(t *testing.T) {
	x := NewCrossbar(8)
	res := x.Arbitrate(nil)
	if res != (Result{}) {
		t.Errorf("empty arbitration = %+v", res)
	}
}

func TestDecoderGrantsEverything(t *testing.T) {
	var d Decoder
	reqs := []Request{
		{Core: 0, Bank: 0, Offset: 5},
		{Core: 0, Bank: 0, Offset: 9, Write: true},
	}
	res := d.Arbitrate(reqs)
	if res.Accesses != 2 || res.Stalled != 0 {
		t.Fatalf("decoder res = %+v", res)
	}
	for _, r := range reqs {
		if !r.Granted || r.Merged {
			t.Error("decoder must grant directly without merging")
		}
	}
}

// Property: arbitration conserves requests, never grants two distinct
// addresses on one bank, and merged grants always match their winner.
func TestQuickArbitrationInvariants(t *testing.T) {
	f := func(seed int64, n uint8, advance uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewCrossbar(16)
		for i := 0; i < int(advance%32); i++ {
			x.Advance()
		}
		nreq := int(n%12) + 1
		reqs := make([]Request, nreq)
		for i := range reqs {
			reqs[i] = Request{
				Core:   i,
				Bank:   rng.Intn(4), // few banks to force conflicts
				Offset: rng.Intn(3),
				Write:  rng.Intn(3) == 0,
			}
		}
		res := x.Arbitrate(reqs)

		granted, merged, stalled := 0, 0, 0
		type ba struct{ b, o int }
		grantedAddr := map[int]ba{}
		grantedWrite := map[int]bool{}
		for _, r := range reqs {
			switch {
			case r.Granted && r.Merged:
				merged++
			case r.Granted:
				granted++
			default:
				stalled++
			}
			if r.Granted {
				if prev, ok := grantedAddr[r.Bank]; ok {
					if prev != (ba{r.Bank, r.Offset}) {
						return false // two addresses granted on one bank
					}
					if r.Write || grantedWrite[r.Bank] {
						return false // writes must be exclusive
					}
				} else {
					grantedAddr[r.Bank] = ba{r.Bank, r.Offset}
					grantedWrite[r.Bank] = r.Write
				}
			}
		}
		if granted != res.Accesses || merged != res.Merged || stalled != res.Stalled {
			return false
		}
		return granted+merged+stalled == nreq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: exactly one non-merged grant (the bank access) per contended
// bank, so energy accounting can charge one access per bank per cycle.
func TestQuickOneAccessPerBank(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := NewCrossbar(8)
		reqs := make([]Request, rng.Intn(10)+1)
		for i := range reqs {
			reqs[i] = Request{Core: i, Bank: rng.Intn(2), Offset: rng.Intn(2)}
		}
		x.Arbitrate(reqs)
		perBank := map[int]int{}
		for _, r := range reqs {
			if r.Granted && !r.Merged {
				perBank[r.Bank]++
			}
		}
		for _, n := range perBank {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: PlanConflictFree agrees with Arbitrate at every rotating-priority
// phase — it reports ok exactly when no phase would stall any request, and on
// ok its access count matches Arbitrate's post-merge bank accesses (which are
// then phase-independent). This is the contract the platform's multi-core
// stride engine plans cycles against.
func TestQuickPlanConflictFreeMatchesEveryPhase(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nreq := int(n%9) + 1
		reqs := make([]Request, nreq)
		for i := range reqs {
			reqs[i] = Request{
				Core:   i,
				Bank:   rng.Intn(4), // few banks to force conflicts
				Offset: rng.Intn(3),
				Write:  rng.Intn(4) == 0,
			}
		}
		plan := make([]Request, nreq)
		copy(plan, reqs)
		accesses, ok := PlanConflictFree(plan)
		// The planner must be pure: the request set is untouched.
		for i := range plan {
			if plan[i] != reqs[i] {
				return false
			}
		}
		x := NewCrossbar(4)
		for phase := 0; phase < PhasePeriod; phase++ {
			x.SetPhase(phase)
			scratch := make([]Request, nreq)
			copy(scratch, reqs)
			res := x.Arbitrate(scratch)
			if ok {
				if res.Stalled != 0 || res.Accesses != accesses {
					return false
				}
				continue
			}
			// Not conflict-free: some phase must stall someone. (For the
			// crossbar's winner rule every phase does — an incompatible
			// pair leaves the loser stalled regardless of priority.)
			if res.Stalled == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
