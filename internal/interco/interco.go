// Package interco models the interconnection networks between cores and
// memories. The multi-core platform uses logarithmic-interconnect crossbars
// (Kakoee et al., DATE'12) providing single-cycle combinational access, here
// extended — as in the paper — with broadcasting: multiple read requests for
// the same location in the same clock cycle are merged into a single memory
// access. The single-core baseline replaces the crossbars with simple
// decoders (no arbitration needed).
package interco

// Request is one core-to-memory access submitted for arbitration within a
// single clock cycle.
type Request struct {
	Core   int  // requesting core id
	Bank   int  // target bank
	Offset int  // word offset within the bank
	Write  bool // write access (writes never merge)

	// Outcome, filled by Arbitrate.
	Granted bool // access proceeds this cycle
	Merged  bool // granted by riding a broadcast of another core's access
}

// Result summarizes one cycle of arbitration.
type Result struct {
	Accesses int // bank accesses actually performed (post-merge)
	Merged   int // requests satisfied by a broadcast merge (no own access)
	Stalled  int // requests that must retry next cycle
}

// PhasePeriod is the cycle count after which the rotating arbitration
// priority repeats: only rr mod PhasePeriod is observable (see prio). It is
// the alignment grain of the platform's spin-loop fast-forward — a repeating
// request pattern produces repeating grant/stall outcomes once its period is
// a multiple of PhasePeriod, so state recurrence is checked on that grid.
// The one exception is a conflict-free pattern: when no two same-cycle
// requests collide incompatibly on a bank, every request is granted at every
// phase (winner selection only matters to stalled losers, and read merges
// grant all parties regardless of which rides the broadcast), so the pattern
// repeats at its own period and the leap only needs AdvanceN to land the
// phase where a stepped run would.
const PhasePeriod = 64

// Crossbar arbitrates same-cycle requests onto banks with rotating priority
// and broadcast merging.
type Crossbar struct {
	nbanks int
	rr     int // rotating priority seed, advanced every cycle

	// per-bank scratch, reset each Arbitrate call
	winner     []int // index into reqs of the winning request, -1 if none
	winnerCore []int
}

// NewCrossbar returns a crossbar arbitrating over nbanks banks.
func NewCrossbar(nbanks int) *Crossbar {
	return &Crossbar{
		nbanks:     nbanks,
		winner:     make([]int, nbanks),
		winnerCore: make([]int, nbanks),
	}
}

// Advance rotates the arbitration priority; call once per platform cycle.
func (x *Crossbar) Advance() { x.rr++ }

// AdvanceN rotates the arbitration priority by n cycles at once, for the
// platform's fast-forward engines: leaping over n cycles — quiescent ones,
// or whole periods of a proven-periodic spin pattern — must leave the
// rotating priority exactly where a cycle-by-cycle run would. Only
// rr mod PhasePeriod is observable (see prio), so n is reduced first to
// keep the counter far from overflow.
func (x *Crossbar) AdvanceN(n uint64) { x.rr = (x.rr + int(n%PhasePeriod)) & (PhasePeriod - 1) }

// Phase returns the observable rotating-priority phase (rr mod PhasePeriod),
// the crossbar's only mutable state, for platform snapshots.
func (x *Crossbar) Phase() int { return x.rr & (PhasePeriod - 1) }

// SetPhase reinstates a snapshotted rotating-priority phase.
func (x *Crossbar) SetPhase(p int) { x.rr = p & (PhasePeriod - 1) }

// Arbitrate resolves the cycle's requests in place and returns the summary.
//
// Per bank: the pending request whose core has the highest rotating priority
// wins and performs the bank access. If the winner is a read, every other
// read of the same (bank, offset) is granted by broadcast merging. All other
// requests on that bank stall. Writes are exclusive: they never merge, and
// two same-cycle writes (even to the same address) serialize.
func (x *Crossbar) Arbitrate(reqs []Request) Result {
	var res Result
	if len(reqs) == 0 {
		return res
	}
	for b := 0; b < x.nbanks; b++ {
		x.winner[b] = -1
	}
	// Pick winners with rotating priority: lower (core-rr) mod N wins.
	for i := range reqs {
		r := &reqs[i]
		r.Granted, r.Merged = false, false
		b := r.Bank
		w := x.winner[b]
		if w < 0 || x.prio(r.Core) < x.prio(x.winnerCore[b]) {
			x.winner[b] = i
			x.winnerCore[b] = r.Core
		}
	}
	// Grant winners and merge compatible reads.
	for i := range reqs {
		r := &reqs[i]
		w := x.winner[r.Bank]
		if w == i {
			r.Granted = true
			res.Accesses++
			continue
		}
		win := &reqs[w]
		if !r.Write && !win.Write && r.Offset == win.Offset {
			r.Granted = true
			r.Merged = true
			res.Merged++
			continue
		}
		res.Stalled++
	}
	return res
}

// PlanConflictFree reports whether reqs — one cycle's request set — is
// conflict-free: every request would be granted by Arbitrate at every
// rotating-priority phase. That holds exactly when no bank sees an
// incompatible pair — a write sharing a bank with anything, or two reads of
// different offsets — because winner selection only matters to stalled
// losers, and read merges grant all parties regardless of which rides the
// broadcast (see PhasePeriod). On success it returns the number of bank
// accesses the cycle performs post-merge (one per distinct bank); on failure
// the access count is meaningless and at least one request would stall at
// some (possibly every) phase.
//
// Unlike Arbitrate this is a pure predicate: it never mutates reqs or the
// crossbar, so the platform's multi-core stride engine can prove a cycle
// safe before committing any state. Request sets are tiny (at most one per
// core), so the quadratic same-bank scan beats any map.
func PlanConflictFree(reqs []Request) (accesses int, ok bool) {
	for i := range reqs {
		ri := &reqs[i]
		first := true
		for j := 0; j < i; j++ {
			rj := &reqs[j]
			if rj.Bank != ri.Bank {
				continue
			}
			// Same-bank pair: only equal-offset reads coexist stall-free.
			if ri.Write || rj.Write || rj.Offset != ri.Offset {
				return 0, false
			}
			first = false
		}
		if first {
			accesses++
		}
	}
	return accesses, true
}

func (x *Crossbar) prio(core int) int {
	// Rotating: the core equal to rr mod PhasePeriod has priority 0 this
	// cycle.
	return (core - x.rr) & (PhasePeriod - 1)
}

// Decoder is the single-core baseline's memory interface: one requester, no
// arbitration, every request granted.
type Decoder struct{}

// Arbitrate grants every request (the single core cannot conflict with
// itself: instruction and data memories have independent decoders).
func (Decoder) Arbitrate(reqs []Request) Result {
	for i := range reqs {
		reqs[i].Granted = true
		reqs[i].Merged = false
	}
	return Result{Accesses: len(reqs)}
}
