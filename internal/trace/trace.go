// Package trace records cycle-stamped platform events — core state
// transitions, synchronization operations, wake-ups, interrupts and ADC
// samples — for debugging synchronization protocols and inspecting the
// lock-step behaviour the paper's mechanism produces. Tracing is optional;
// an unattached recorder costs the platform a nil check per event site.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/isa"
)

// Kind classifies one event.
type Kind uint8

// Event kinds.
const (
	KindState  Kind = iota // core changed execution state; Arg1 = new state code
	KindSync               // core issued SINC/SDEC/SNOP; Arg1 = opcode, Arg2 = point
	KindSleep              // core requested SLEEP; Arg1 = 1 if gated, 0 if fell through
	KindWake               // core resumed by the synchronizer
	KindIRQ                // interrupt raised; Arg1 = source mask
	KindSample             // ADC published a sample set; Arg1 = sample index
	KindHalt               // core halted
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindState:
		return "state"
	case KindSync:
		return "sync"
	case KindSleep:
		return "sleep"
	case KindWake:
		return "wake"
	case KindIRQ:
		return "irq"
	case KindSample:
		return "sample"
	case KindHalt:
		return "halt"
	}
	return fmt.Sprintf("kind?%d", uint8(k))
}

// CoreState codes for KindState events (mirrors the platform's cycle
// classification).
const (
	StateIdle = iota
	StateExec
	StateStall
	StateBubble
)

var stateNames = [...]string{"idle", "exec", "stall", "bubble"}

// Event is one recorded occurrence. Core is -1 for platform-wide events.
type Event struct {
	Cycle      uint64
	Core       int8
	Kind       Kind
	Arg1, Arg2 int32
}

// String renders the event for the timeline.
func (e Event) String() string {
	who := "platform"
	if e.Core >= 0 {
		who = fmt.Sprintf("core %d", e.Core)
	}
	switch e.Kind {
	case KindState:
		name := "?"
		if int(e.Arg1) < len(stateNames) {
			name = stateNames[e.Arg1]
		}
		return fmt.Sprintf("%10d  %-8s -> %s", e.Cycle, who, name)
	case KindSync:
		return fmt.Sprintf("%10d  %-8s %s #%d", e.Cycle, who, isa.Opcode(e.Arg1), e.Arg2)
	case KindSleep:
		if e.Arg1 != 0 {
			return fmt.Sprintf("%10d  %-8s sleep (gated)", e.Cycle, who)
		}
		return fmt.Sprintf("%10d  %-8s sleep (token, fell through)", e.Cycle, who)
	case KindWake:
		return fmt.Sprintf("%10d  %-8s woken", e.Cycle, who)
	case KindIRQ:
		return fmt.Sprintf("%10d  %-8s irq mask %#x", e.Cycle, who, e.Arg1)
	case KindSample:
		return fmt.Sprintf("%10d  %-8s adc sample %d", e.Cycle, who, e.Arg1)
	case KindHalt:
		return fmt.Sprintf("%10d  %-8s halted", e.Cycle, who)
	}
	return fmt.Sprintf("%10d  %-8s %v", e.Cycle, who, e.Kind)
}

// Recorder accumulates events up to a capacity, then keeps the most recent
// ones (ring semantics), which is what post-mortem debugging wants.
type Recorder struct {
	events  []Event
	start   int // ring start when full
	cap     int
	dropped uint64
	mask    uint16 // enabled kinds bitmask
}

// NewRecorder returns a recorder holding up to capacity events (0 = 64k).
// All kinds start enabled.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{cap: capacity, mask: 1<<uint(numKinds) - 1}
}

// Only restricts recording to the given kinds.
func (r *Recorder) Only(kinds ...Kind) *Recorder {
	r.mask = 0
	for _, k := range kinds {
		r.mask |= 1 << uint(k)
	}
	return r
}

// Enabled reports whether a kind is recorded.
func (r *Recorder) Enabled(k Kind) bool { return r.mask&(1<<uint(k)) != 0 }

// Record appends one event, evicting the oldest beyond capacity.
func (r *Recorder) Record(cycle uint64, coreID int, kind Kind, arg1, arg2 int32) {
	if !r.Enabled(kind) {
		return
	}
	e := Event{Cycle: cycle, Core: int8(coreID), Kind: kind, Arg1: arg1, Arg2: arg2}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.dropped++
}

// Events returns the recorded events in chronological order.
func (r *Recorder) Events() []Event {
	if len(r.events) < r.cap || r.start == 0 {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped returns how many events were evicted.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// WriteTimeline prints the retained events, most recent last.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped ...\n", r.dropped); err != nil {
			return err
		}
	}
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates the retained events per kind and core.
func (r *Recorder) Summary() string {
	perKind := map[Kind]int{}
	perCore := map[int8]int{}
	for _, e := range r.Events() {
		perKind[e.Kind]++
		perCore[e.Core]++
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d events retained (%d dropped)\n", r.Len(), r.dropped)
	for k := Kind(0); k < numKinds; k++ {
		if n := perKind[k]; n > 0 {
			fmt.Fprintf(&sb, "  %-7s %d\n", k, n)
		}
	}
	return sb.String()
}
