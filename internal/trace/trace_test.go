package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestRecordAndReplay(t *testing.T) {
	r := NewRecorder(16)
	r.Record(10, 0, KindSync, int32(isa.OpSINC), 3)
	r.Record(11, 1, KindSleep, 1, 0)
	r.Record(20, -1, KindIRQ, 7, 0)
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Cycle != 10 || evs[0].Kind != KindSync || evs[0].Arg2 != 3 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if !strings.Contains(evs[0].String(), "sinc #3") {
		t.Errorf("sync rendering: %q", evs[0].String())
	}
	if !strings.Contains(evs[1].String(), "gated") {
		t.Errorf("sleep rendering: %q", evs[1].String())
	}
	if !strings.Contains(evs[2].String(), "platform") {
		t.Errorf("platform-wide rendering: %q", evs[2].String())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(uint64(i), 0, KindWake, 0, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d at cycle %d, want %d (most recent kept, in order)", i, e.Cycle, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestOnlyFilter(t *testing.T) {
	r := NewRecorder(16).Only(KindSync)
	r.Record(1, 0, KindSync, int32(isa.OpSDEC), 0)
	r.Record(2, 0, KindWake, 0, 0)
	r.Record(3, 0, KindSleep, 1, 0)
	if r.Len() != 1 {
		t.Errorf("filter retained %d events, want 1", r.Len())
	}
	if !r.Enabled(KindSync) || r.Enabled(KindWake) {
		t.Error("Enabled mask wrong")
	}
}

func TestTimelineAndSummary(t *testing.T) {
	r := NewRecorder(8)
	r.Record(5, 2, KindState, StateExec, 0)
	r.Record(9, 2, KindState, StateIdle, 0)
	r.Record(12, 2, KindHalt, 0, 0)
	var sb strings.Builder
	if err := r.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"exec", "idle", "halted", "core 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	sum := r.Summary()
	if !strings.Contains(sum, "3 events retained") || !strings.Contains(sum, "state") {
		t.Errorf("summary: %q", sum)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.Contains(s, "?") {
			t.Errorf("kind %d renders as %q", k, s)
		}
	}
}
