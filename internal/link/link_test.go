package link

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/power"
)

func TestPlacementAcrossBanks(t *testing.T) {
	spec := Spec{
		Sources: map[string]string{
			"a": ".code alpha\nstart_a:\n nop\n halt\n.data tbl\n .word 1, 2, 3\n",
			"b": ".code beta\nstart_b:\n nop\n nop\n halt\n",
		},
		CodeBanks:   map[string]int{"alpha": 0, "beta": 2},
		EntryLabels: []string{"start_a", "start_b"},
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CodePlacement["alpha"] != 0 {
		t.Errorf("alpha at %d", res.CodePlacement["alpha"])
	}
	if res.CodePlacement["beta"] != 2*isa.IMBankWords {
		t.Errorf("beta at %d, want bank 2 base", res.CodePlacement["beta"])
	}
	if res.DataPlacement["tbl"] != ReservedSyncWords {
		t.Errorf("tbl at %d, want %d (above sync region)", res.DataPlacement["tbl"], ReservedSyncWords)
	}
	if res.Image.Entries[0] != 0 || res.Image.Entries[1] != 2*isa.IMBankWords {
		t.Errorf("entries = %v", res.Image.Entries)
	}
}

func TestSameBankStacksSegments(t *testing.T) {
	spec := Spec{
		Sources: map[string]string{
			"u": ".code p1\ne1:\n nop\n halt\n.code p2\ne2:\n halt\n",
		},
		CodeBanks:   map[string]int{"p1": 3, "p2": 3},
		EntryLabels: []string{"e1", "e2"},
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := 3 * isa.IMBankWords
	if res.CodePlacement["p1"] != base || res.CodePlacement["p2"] != base+2 {
		t.Errorf("placement = %v", res.CodePlacement)
	}
}

func TestPrivatePlacementPerCore(t *testing.T) {
	spec := Spec{
		Sources: map[string]string{
			"u": `
.code main
e0:
 halt
.data buf0
 .space 10
.data buf1
 .space 20
.data shared_tab
 .word 7
`,
		},
		CodeBanks:   map[string]int{"main": 0},
		PrivCore:    map[string]int{"buf0": 0, "buf1": 1},
		EntryLabels: []string{"e0", "e0"},
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataPlacement["buf0"] != DefaultSharedLimit {
		t.Errorf("buf0 at %#x", res.DataPlacement["buf0"])
	}
	if res.DataPlacement["buf1"] != DefaultSharedLimit {
		t.Errorf("buf1 at %#x (each core's private space starts at the limit)", res.DataPlacement["buf1"])
	}
	if res.DataPlacement["shared_tab"] != ReservedSyncWords {
		t.Errorf("shared_tab at %d", res.DataPlacement["shared_tab"])
	}
	if len(res.Image.Priv) != 2 || len(res.Image.Shared) != 1 {
		t.Errorf("image has %d priv, %d shared segments", len(res.Image.Priv), len(res.Image.Shared))
	}
}

func TestLinkedProgramRuns(t *testing.T) {
	// Cross-unit symbol use: code in one unit reads data declared in
	// another and stores a result read back by the test.
	spec := Spec{
		Sources: map[string]string{
			"code": `
.code main
entry:
    la  r1, input
    lw  r2, 0(r1)
    lw  r3, 1(r1)
    add r2, r2, r3
    la  r4, output
    sw  r2, 0(r4)
    halt
`,
			"data": ".data din\ninput:\n .word 30, 12\n.data dout\noutput:\n .word 0\n",
		},
		CodeBanks:   map[string]int{"main": 0},
		EntryLabels: []string{"entry"},
		SingleCore:  true,
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.New(platform.Config{Arch: power.SC, ClockHz: 1e6, VoltageV: 0.6}, res.Image)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	out := uint16(res.Symbols["output"])
	if v, _ := p.PeekData(0, out); v != 42 {
		t.Errorf("output = %d, want 42", v)
	}
}

func TestStaticCounts(t *testing.T) {
	spec := Spec{
		Sources: map[string]string{
			"u": ".code m\ne:\n sinc #0\n sdec #0\n sleep\n addi r1, r1, 1\n halt\n",
		},
		CodeBanks:     map[string]int{"m": 0},
		EntryLabels:   []string{"e"},
		NumSyncPoints: 1,
	}
	res, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.StaticInstrs != 5 || res.Image.StaticSyncInstrs != 3 {
		t.Errorf("static = %d/%d, want 5/3", res.Image.StaticSyncInstrs, res.Image.StaticInstrs)
	}
	if pct := res.Image.CodeOverheadPct(); pct != 60 {
		t.Errorf("overhead = %v%%", pct)
	}
}

func TestErrors(t *testing.T) {
	base := func() Spec {
		return Spec{
			Sources:     map[string]string{"u": ".code m\ne:\n halt\n"},
			CodeBanks:   map[string]int{"m": 0},
			EntryLabels: []string{"e"},
		}
	}
	cases := []struct {
		mutate  func(*Spec)
		wantSub string
	}{
		{func(s *Spec) { s.EntryLabels = nil }, "no entry labels"},
		{func(s *Spec) { s.EntryLabels = []string{"nope"} }, "undefined"},
		{func(s *Spec) { s.CodeBanks = map[string]int{} }, "no bank directive"},
		{func(s *Spec) { s.CodeBanks = map[string]int{"m": 9} }, "invalid bank"},
		{func(s *Spec) { s.NumSyncPoints = 17 }, "reserved words"},
		{func(s *Spec) { s.SingleCore = true; s.EntryLabels = []string{"e", "e"} }, "single-core"},
		{func(s *Spec) { s.SingleCore = true; s.PrivCore = map[string]int{"x": 0} }, "multi-core feature"},
		{func(s *Spec) {
			s.Sources["v"] = ".code m\n halt\n"
		}, "defined in both"},
		{func(s *Spec) {
			s.Sources["v"] = ".data big\n .space 40000\n"
		}, "overflows"},
		{func(s *Spec) {
			s.Sources["v"] = ".data pb\n .space 5000\n"
			s.PrivCore = map[string]int{"pb": 0}
		}, "private memory overflows"},
		{func(s *Spec) {
			s.Sources["v"] = ".data pb\n .space 1\n"
			s.PrivCore = map[string]int{"pb": 3}
		}, "outside the"},
	}
	for _, c := range cases {
		spec := base()
		c.mutate(&spec)
		_, err := Build(spec)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("mutation %q: got %v", c.wantSub, err)
		}
	}
}

func TestBankOverflowDetected(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".code big\ne:\n")
	for i := 0; i < isa.IMBankWords+1; i++ {
		sb.WriteString(" nop\n")
	}
	spec := Spec{
		Sources:     map[string]string{"u": sb.String()},
		CodeBanks:   map[string]int{"big": 0},
		EntryLabels: []string{"e"},
	}
	if _, err := Build(spec); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Errorf("want bank overflow, got %v", err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	spec := Spec{
		Sources: map[string]string{
			"a": ".code s1\ne1:\n halt\n",
			"b": ".code s2\ne2:\n halt\n",
			"c": ".data d1\n .word 1\n.data d2\n .word 2\n",
		},
		CodeBanks:   map[string]int{"s1": 0, "s2": 0},
		EntryLabels: []string{"e1", "e2"},
	}
	r1, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, base := range r1.CodePlacement {
		if r2.CodePlacement[name] != base {
			t.Errorf("placement of %q not deterministic", name)
		}
	}
	for name, base := range r1.DataPlacement {
		if r2.DataPlacement[name] != base {
			t.Errorf("data placement of %q not deterministic", name)
		}
	}
}
