// Package link implements the builder/linker of the programming tool-chain
// (paper §IV-C): it places code segments into instruction-memory banks
// following the mapping directives (phase code is placed so that cores
// executing the same phase share a bank and benefit from broadcasting,
// §III-B step 3), lays out shared and private data, reserves the
// synchronization points, resolves symbols and encodes the final image.
package link

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/platform"
)

// ReservedSyncWords is the size of the reserved synchronization-point region
// at the bottom of shared data memory. Data placement starts above it so
// layouts stay comparable across configurations.
const ReservedSyncWords = 16

// DefaultSharedLimit is the default shared/private threshold of the
// multi-core data memory: 8 KWords shared, the rest split per core by the
// ATU.
const DefaultSharedLimit = 0x2000

// Spec describes one program to build: its translation units plus the
// building directives that guide automatic linking.
type Spec struct {
	// Sources maps unit names to assembler source text.
	Sources map[string]string

	// CodeBanks maps every code segment name to its instruction-memory
	// bank. Segments directed to the same bank are placed consecutively
	// in directive order (sorted by segment name for determinism).
	CodeBanks map[string]int

	// PrivCore marks data segments as core-private: segment name -> core.
	// Unlisted data segments are shared.
	PrivCore map[string]int

	// EntryLabels lists the entry label of each core, in core order.
	EntryLabels []string

	// NumSyncPoints configures the synchronizer (must fit the reserved
	// region).
	NumSyncPoints int

	// SharedLimit overrides the shared/private threshold (0 = default).
	SharedLimit uint16

	// SingleCore builds for the baseline: exactly one entry, no private
	// segments, linear data placement.
	SingleCore bool
}

// Result is a fully linked program.
type Result struct {
	Image   *platform.Image
	Symbols asm.MapSymbols
	// CodePlacement records the final base of every code segment.
	CodePlacement map[string]int
	// DataPlacement records the final base of every data segment.
	DataPlacement map[string]int
}

// Build links the program.
func Build(spec Spec) (*Result, error) {
	if len(spec.EntryLabels) == 0 {
		return nil, fmt.Errorf("link: no entry labels")
	}
	if spec.SingleCore && len(spec.EntryLabels) != 1 {
		return nil, fmt.Errorf("link: single-core build with %d entries", len(spec.EntryLabels))
	}
	if spec.SingleCore && len(spec.PrivCore) != 0 {
		return nil, fmt.Errorf("link: private segments are a multi-core feature")
	}
	if spec.NumSyncPoints > ReservedSyncWords {
		return nil, fmt.Errorf("link: %d sync points exceed the %d reserved words", spec.NumSyncPoints, ReservedSyncWords)
	}
	sharedLimit := spec.SharedLimit
	if sharedLimit == 0 {
		sharedLimit = DefaultSharedLimit
	}

	// Parse all units.
	var units []*asm.Unit
	for _, name := range sortedKeys(spec.Sources) {
		u, err := asm.Parse(name, spec.Sources[name])
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}

	// Collect segments, checking name uniqueness program-wide.
	type owned struct {
		seg  *asm.Segment
		unit *asm.Unit
	}
	segByName := map[string]owned{}
	var codeSegs, dataSegs []*asm.Segment
	for _, u := range units {
		for _, seg := range u.Segments {
			if prev, dup := segByName[seg.Name]; dup {
				return nil, fmt.Errorf("link: segment %q defined in both %s and %s", seg.Name, prev.unit.Name, u.Name)
			}
			segByName[seg.Name] = owned{seg, u}
			if seg.Kind == asm.SegCode {
				codeSegs = append(codeSegs, seg)
			} else {
				dataSegs = append(dataSegs, seg)
			}
		}
	}
	sort.Slice(codeSegs, func(i, j int) bool { return codeSegs[i].Name < codeSegs[j].Name })
	sort.Slice(dataSegs, func(i, j int) bool { return dataSegs[i].Name < dataSegs[j].Name })

	res := &Result{
		Symbols:       asm.MapSymbols{},
		CodePlacement: map[string]int{},
		DataPlacement: map[string]int{},
	}

	// Place code into banks.
	bankCursor := map[int]int{}
	for _, seg := range codeSegs {
		bank, ok := spec.CodeBanks[seg.Name]
		if !ok {
			return nil, fmt.Errorf("link: code segment %q has no bank directive", seg.Name)
		}
		if bank < 0 || bank >= isa.IMBanks {
			return nil, fmt.Errorf("link: code segment %q directed to invalid bank %d", seg.Name, bank)
		}
		off := bankCursor[bank]
		if off+seg.Size() > isa.IMBankWords {
			return nil, fmt.Errorf("link: bank %d overflows at segment %q (%d+%d words)", bank, seg.Name, off, seg.Size())
		}
		seg.Base = bank*isa.IMBankWords + off
		bankCursor[bank] = off + seg.Size()
		res.CodePlacement[seg.Name] = seg.Base
	}

	// Place data: shared segments above the reserved sync region; private
	// segments per core starting at the shared limit.
	sharedCursor := ReservedSyncWords
	privCursor := map[int]int{}
	privWords := (isa.DMWords - int(sharedLimit)) / isa.MaxCores
	if privWords%2 == 0 {
		privWords-- // must match the platform's odd private stride
	}
	for _, seg := range dataSegs {
		if coreID, priv := spec.PrivCore[seg.Name]; priv {
			if coreID < 0 || coreID >= len(spec.EntryLabels) {
				return nil, fmt.Errorf("link: private segment %q for core %d outside the %d used cores", seg.Name, coreID, len(spec.EntryLabels))
			}
			off := privCursor[coreID]
			if off+seg.Size() > privWords {
				return nil, fmt.Errorf("link: core %d private memory overflows at %q (%d+%d of %d words)", coreID, seg.Name, off, seg.Size(), privWords)
			}
			seg.Base = int(sharedLimit) + off
			privCursor[coreID] = off + seg.Size()
		} else {
			limit := int(sharedLimit)
			if spec.SingleCore {
				limit = isa.MMIOBase
			}
			if sharedCursor+seg.Size() > limit {
				return nil, fmt.Errorf("link: shared data overflows at %q (%d+%d of %d words)", seg.Name, sharedCursor, seg.Size(), limit)
			}
			seg.Base = sharedCursor
			sharedCursor += seg.Size()
		}
		res.DataPlacement[seg.Name] = seg.Base
	}

	// Symbols: labels first, then .equ constants (which may use labels).
	for _, u := range units {
		if err := u.Symbols(res.Symbols); err != nil {
			return nil, err
		}
	}
	for _, u := range units {
		if err := u.ResolveEqus(res.Symbols); err != nil {
			return nil, err
		}
	}

	// Encode.
	img := &platform.Image{
		SharedLimit:   sharedLimit,
		NumSyncPoints: spec.NumSyncPoints,
	}
	for _, u := range units {
		code, data, err := u.Encode(res.Symbols)
		if err != nil {
			return nil, err
		}
		for _, c := range code {
			img.Code = append(img.Code, platform.CodeSeg{Base: c.Seg.Base, Words: c.Words})
			img.StaticInstrs += len(c.Words)
			img.StaticSyncInstrs += c.SyncInstrs
		}
		for _, d := range data {
			if coreID, priv := spec.PrivCore[d.Seg.Name]; priv {
				img.Priv = append(img.Priv, platform.PrivSeg{Core: coreID, Base: uint16(d.Seg.Base), Words: d.Words})
			} else {
				img.Shared = append(img.Shared, platform.DataSeg{Base: uint16(d.Seg.Base), Words: d.Words})
			}
		}
	}

	// Resolve entries.
	for _, label := range spec.EntryLabels {
		pc, ok := res.Symbols[label]
		if !ok {
			return nil, fmt.Errorf("link: entry label %q undefined", label)
		}
		img.Entries = append(img.Entries, pc)
	}
	res.Image = img
	return res, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
