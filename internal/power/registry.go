package power

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// The descriptor registry maps names to sync-architecture descriptors both
// ways. The three paper presets are pre-registered; scenario files and the
// CLIs register the custom descriptors they declare, so progress output and
// tables render them by name. The registry is the single source of the
// default architecture lists (PaperArchs, PresetArchs) the grid builders and
// both CLIs derive their axes from.
var (
	regMu      sync.RWMutex
	archByName = map[string]Arch{}
	nameByArch = map[Arch]string{}
)

func init() {
	for _, p := range []struct {
		name string
		arch Arch
	}{
		{"SC", SC},
		{"MC", MC},
		{"MC-nosync", MCNoSync},
	} {
		if err := RegisterArch(p.name, p.arch); err != nil {
			panic(err)
		}
	}
}

// RegisterArch binds a name to a descriptor. Lookup is case-insensitive; the
// given capitalization is kept for display. Re-registering the same
// (name, descriptor) pair is a no-op, so scenario reloads stay idempotent;
// binding an existing name to a different descriptor is an error.
func RegisterArch(name string, a Arch) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("power: empty descriptor name")
	}
	key := strings.ToLower(name)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := archByName[key]; ok {
		if prev != a {
			return fmt.Errorf("power: descriptor name %q already bound to %s", name, prev.Key())
		}
		return nil
	}
	archByName[key] = a
	// First registration wins the display name (the presets keep theirs).
	if _, ok := nameByArch[a]; !ok {
		nameByArch[a] = name
	}
	return nil
}

// ArchByName resolves a registered descriptor name, case-insensitively.
func ArchByName(name string) (Arch, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := archByName[strings.ToLower(name)]
	return a, ok
}

// ArchName returns the display name a descriptor was first registered under.
func ArchName(a Arch) (string, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	name, ok := nameByArch[a]
	return name, ok
}

// ArchNames lists the registered lookup names in lexical order, for error
// messages.
func ArchNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(archByName))
	for name := range archByName {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// PaperArchs is the default architecture pairing of Table I and the bundled
// scenarios: the single-core baseline against the proposed multi-core system.
func PaperArchs() []Arch { return []Arch{SC, MC} }

// PresetArchs are all three paper variants in Figure 6's bar order.
func PresetArchs() []Arch { return []Arch{SC, MCNoSync, MC} }

// ParseArchSpec parses a command-line descriptor selection: either a
// registered name ("MC", "sc", a scenario-registered custom name) or a
// comma-separated structural spec of the fields, e.g.
//
//	multi,groups=0x0F+0x18,timeout=50000000
//
// with the terms "multi", "busywait", "groups=<mask>[+<mask>...]" (up to
// MaxSyncGroups masks, each core bit set in at most the declared cores) and
// "timeout=<cycles>".
func ParseArchSpec(spec string) (Arch, error) {
	spec = strings.TrimSpace(spec)
	if a, ok := ArchByName(spec); ok {
		return a, nil
	}
	var a Arch
	structural := false
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		switch {
		case term == "multi":
			a.Multi = true
			structural = true
		case term == "busywait":
			a.BusyWait = true
			structural = true
		case strings.HasPrefix(term, "groups="):
			masks := strings.Split(strings.TrimPrefix(term, "groups="), "+")
			if len(masks) > MaxSyncGroups {
				return Arch{}, fmt.Errorf("power: %d sync groups exceed the maximum of %d", len(masks), MaxSyncGroups)
			}
			for g, m := range masks {
				v, err := strconv.ParseUint(strings.TrimSpace(m), 0, 8)
				if err != nil {
					return Arch{}, fmt.Errorf("power: bad group mask %q: %v", m, err)
				}
				a.Groups[g] = uint8(v)
			}
			structural = true
		case strings.HasPrefix(term, "timeout="):
			v, err := strconv.ParseUint(strings.TrimPrefix(term, "timeout="), 0, 64)
			if err != nil {
				return Arch{}, fmt.Errorf("power: bad timeout %q: %v", term, err)
			}
			a.TimeoutCycles = v
			structural = true
		default:
			return Arch{}, fmt.Errorf("power: unknown descriptor %q (known names: %s; or a spec of multi, busywait, groups=, timeout=)",
				spec, strings.Join(ArchNames(), ", "))
		}
	}
	if !structural {
		return Arch{}, fmt.Errorf("power: empty descriptor spec")
	}
	if err := a.Validate(); err != nil {
		return Arch{}, err
	}
	return a, nil
}

// Validate checks a descriptor's internal consistency: group masks and
// timeouts require the multi-core fabric, and a busy-wait variant has no
// sync unit to configure.
func (a Arch) Validate() error {
	custom := a.Groups != [MaxSyncGroups]uint8{} || a.TimeoutCycles != 0
	if custom && !a.Multi {
		return fmt.Errorf("power: sync groups/timeouts require the multi-core fabric")
	}
	if custom && a.BusyWait {
		return fmt.Errorf("power: busy-wait variant has no sync unit to configure")
	}
	for g := 0; g < MaxSyncGroups; g++ {
		if a.Groups[g] == 0 && a.Groups != [MaxSyncGroups]uint8{} && g < a.NumGroups() {
			return fmt.Errorf("power: sync group %d is empty", g)
		}
	}
	return nil
}
