package power

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func baseCounters() *Counters {
	return &Counters{
		Cycles:            1_000_000,
		CoreActive:        800_000,
		CoreStall:         50_000,
		CoreGated:         150_000,
		Instrs:            800_000,
		IMReqs:            800_000,
		IMAccesses:        700_000,
		DMReqs:            300_000,
		DMReads:           200_000,
		DMWrites:          95_000,
		XbarReqs:          1_100_000,
		SyncOps:           1_000,
		SyncPointWrites:   900,
		UngatedCoreCycles: 850_000,
		MMIOReads:         5_000,
		MMIOWrites:        1_000,
	}
}

func mcConfig() SystemConfig {
	return SystemConfig{Arch: MC, NumCores: 3, ActiveIMBanks: 1, ActiveDMBanks: 16, VoltageV: 0.5, FreqHz: 1e6}
}

func TestComputeBasics(t *testing.T) {
	r, err := Compute(mcConfig(), baseCounters(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.DurationS != 1.0 {
		t.Errorf("DurationS = %v, want 1.0", r.DurationS)
	}
	if r.TotalUW <= 0 {
		t.Fatal("total power must be positive")
	}
	var sum float64
	for comp := Component(0); comp < NumComponents; comp++ {
		if r.DynamicUW[comp] < 0 || r.LeakUW[comp] < 0 {
			t.Errorf("%v: negative power", comp)
		}
		sum += r.ComponentUW(comp)
	}
	if math.Abs(sum-r.TotalUW) > 1e-9 {
		t.Errorf("decomposition sums to %v, total says %v", sum, r.TotalUW)
	}
}

func TestDynamicScalesWithVoltageSquared(t *testing.T) {
	p := DefaultParams()
	c := baseCounters()
	lo := mcConfig()
	hi := mcConfig()
	hi.VoltageV = 1.0
	rl, err := Compute(lo, c, p)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Compute(hi, c, p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rl.TotalDynamicUW / rh.TotalDynamicUW
	if math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("dynamic ratio at 0.5V vs 1.0V = %v, want 0.25", ratio)
	}
	lratio := rl.TotalLeakUW / rh.TotalLeakUW
	if math.Abs(lratio-0.125) > 1e-9 {
		t.Errorf("leakage ratio = %v, want 0.125", lratio)
	}
}

func TestSCUsesDecodersAndNoSynchronizer(t *testing.T) {
	cfg := mcConfig()
	cfg.Arch = SC
	cfg.NumCores = 1
	r, err := Compute(cfg, baseCounters(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ComponentUW(CompSync) != 0 {
		t.Errorf("SC synchronizer power = %v, want 0", r.ComponentUW(CompSync))
	}
	mc, err := Compute(mcConfig(), baseCounters(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicUW[CompInterco] >= mc.DynamicUW[CompInterco] {
		t.Error("decoder interconnect should be cheaper than crossbar at same traffic")
	}
	if r.DynamicUW[CompClock] >= mc.DynamicUW[CompClock] {
		t.Error("SC clock tree should be cheaper than MC clock tree")
	}
}

func TestMCNoSyncHasNoSynchronizerButKeepsCrossbar(t *testing.T) {
	cfg := mcConfig()
	cfg.Arch = MCNoSync
	r, err := Compute(cfg, baseCounters(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ComponentUW(CompSync) != 0 {
		t.Error("MC-nosync must not pay for the synchronizer")
	}
	mc, _ := Compute(mcConfig(), baseCounters(), DefaultParams())
	if r.DynamicUW[CompInterco] != mc.DynamicUW[CompInterco] {
		t.Error("MC-nosync keeps the crossbar energy")
	}
}

func TestLeakageFollowsBankCounts(t *testing.T) {
	p := DefaultParams()
	few := mcConfig()
	few.ActiveDMBanks = 3
	many := mcConfig()
	rf, _ := Compute(few, baseCounters(), p)
	rm, _ := Compute(many, baseCounters(), p)
	wantDelta := p.DMBankLeakUW * 13 * p.LeakScale(0.5)
	if got := rm.LeakUW[CompDMem] - rf.LeakUW[CompDMem]; math.Abs(got-wantDelta) > 1e-9 {
		t.Errorf("DM leakage delta = %v, want %v", got, wantDelta)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(SystemConfig{FreqHz: 0}, baseCounters(), DefaultParams()); err == nil {
		t.Error("want error for zero frequency")
	}
	if _, err := Compute(mcConfig(), &Counters{}, DefaultParams()); err == nil {
		t.Error("want error for zero cycles")
	}
}

func TestBroadcastPercentages(t *testing.T) {
	c := &Counters{IMReqs: 1000, IMAccesses: 600, DMReqs: 200, DMReads: 150, DMWrites: 44}
	if got := c.IMBroadcastPct(); math.Abs(got-40) > 1e-9 {
		t.Errorf("IMBroadcastPct = %v, want 40", got)
	}
	if got := c.DMBroadcastPct(); math.Abs(got-3) > 1e-9 {
		t.Errorf("DMBroadcastPct = %v, want 3", got)
	}
	empty := &Counters{}
	if empty.IMBroadcastPct() != 0 || empty.DMBroadcastPct() != 0 {
		t.Error("empty counters must report 0% broadcast")
	}
}

func TestRuntimeOverheadPct(t *testing.T) {
	c := &Counters{Instrs: 10_000, SyncInstrs: 165}
	if got := c.RuntimeOverheadPct(); math.Abs(got-1.65) > 1e-9 {
		t.Errorf("RuntimeOverheadPct = %v, want 1.65", got)
	}
}

func TestCountersAdd(t *testing.T) {
	a := baseCounters()
	b := baseCounters()
	sum := &Counters{}
	sum.Add(a)
	sum.Add(b)
	if sum.Cycles != 2*a.Cycles || sum.DMWrites != 2*a.DMWrites || sum.SyncOps != 2*a.SyncOps {
		t.Error("Add did not double the counters")
	}
}

func TestVFSMinVoltage(t *testing.T) {
	vfs := DefaultVFS()
	// The paper's operating points: MC at 1.0 MHz -> 0.5 V; SC between
	// 2.3 and 3.4 MHz -> 0.6 V.
	op, err := MinVoltage(vfs, MC, 1.0e6)
	if err != nil || op.VoltageV != 0.5 {
		t.Errorf("MC@1MHz -> %v V (err %v), want 0.5", op.VoltageV, err)
	}
	for _, f := range []float64{2.3e6, 3.3e6, 3.4e6} {
		op, err := MinVoltage(vfs, SC, f)
		if err != nil || op.VoltageV != 0.6 {
			t.Errorf("SC@%.1fMHz -> %v V (err %v), want 0.6", f/1e6, op.VoltageV, err)
		}
	}
	// The same frequencies on the crossbar-limited MC fabric need more
	// voltage than on SC.
	opMC, err := MinVoltage(vfs, MC, 3.4e6)
	if err != nil || opMC.VoltageV <= 0.6 {
		t.Errorf("MC@3.4MHz -> %v V, want > 0.6", opMC.VoltageV)
	}
	if _, err := MinVoltage(vfs, MC, 1e9); err == nil {
		t.Error("want error for impossible frequency")
	}
}

func TestVFSTableMonotonic(t *testing.T) {
	vfs := DefaultVFS()
	for i := 1; i < len(vfs); i++ {
		if vfs[i].VoltageV <= vfs[i-1].VoltageV || vfs[i].FMaxMCHz <= vfs[i-1].FMaxMCHz {
			t.Errorf("VFS table not monotonic at row %d", i)
		}
	}
	for _, op := range vfs {
		if op.FMaxSCHz <= op.FMaxMCHz {
			t.Errorf("SC f_max must exceed MC f_max at %v V", op.VoltageV)
		}
	}
}

func TestClampFreq(t *testing.T) {
	if ClampFreq(0.3e6) != MinClockHz {
		t.Error("frequencies below the floor must clamp to 1 MHz")
	}
	if ClampFreq(2e6) != 2e6 {
		t.Error("frequencies above the floor must pass through")
	}
}

func TestQuickPowerMonotonicInVoltage(t *testing.T) {
	p := DefaultParams()
	c := baseCounters()
	f := func(rawV uint8) bool {
		v := 0.5 + float64(rawV%70)/100 // 0.5 .. 1.19
		lo := mcConfig()
		lo.VoltageV = v
		hi := mcConfig()
		hi.VoltageV = v + 0.01
		rl, err1 := Compute(lo, c, p)
		rh, err2 := Compute(hi, c, p)
		return err1 == nil && err2 == nil && rl.TotalUW < rh.TotalUW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecompositionSumsToTotal(t *testing.T) {
	p := DefaultParams()
	f := func(a, i, d, x uint32) bool {
		c := &Counters{
			Cycles:            1 + uint64(a%1e6),
			CoreActive:        uint64(a % 1e6),
			IMReqs:            uint64(i%1e6) + uint64(i%7),
			IMAccesses:        uint64(i % 1e6),
			DMReads:           uint64(d % 1e5),
			DMWrites:          uint64(d % 1e4),
			XbarReqs:          uint64(x % 1e6),
			UngatedCoreCycles: uint64(a % 1e6),
		}
		r, err := Compute(mcConfig(), c, p)
		if err != nil {
			return false
		}
		var sum float64
		for comp := Component(0); comp < NumComponents; comp++ {
			sum += r.ComponentUW(comp)
		}
		return math.Abs(sum-r.TotalUW) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArchStrings(t *testing.T) {
	if SC.String() != "SC" || MC.String() != "MC" || MCNoSync.String() != "MC-nosync" {
		t.Error("Arch String mismatch")
	}
	if SC.IsMulti() || !MC.IsMulti() || !MCNoSync.IsMulti() {
		t.Error("IsMulti mismatch")
	}
}

func TestComponentStrings(t *testing.T) {
	for comp := Component(0); comp < NumComponents; comp++ {
		if comp.String() == "" || comp.String()[0] == '?' {
			t.Errorf("component %d has no name", comp)
		}
	}
}

// counterLeaves flattens a Counters value into its scalar uint64 cells
// (array fields like SyncGroupOps contribute one leaf per element), with a
// name per leaf for failure messages. Any field of an unexpected kind fails
// the test, so the flattening cannot silently skip a future addition.
func counterLeaves(t *testing.T, c *Counters) (leaves []reflect.Value, names []string) {
	t.Helper()
	v := reflect.ValueOf(c).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Uint64:
			leaves = append(leaves, f)
			names = append(names, name)
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				leaves = append(leaves, f.Index(j))
				names = append(names, fmt.Sprintf("%s[%d]", name, j))
			}
		default:
			t.Fatalf("Counters field %s has unexpected kind %v", name, f.Kind())
		}
	}
	return leaves, names
}

// TestCountersDiffAddScaled checks the spin fast-forward's bulk-accounting
// contract over every field by reflection, so a counter added to the struct
// but forgotten in Diff or AddScaled fails here instead of silently
// diverging a leap from the cycle-by-cycle reference.
func TestCountersDiffAddScaled(t *testing.T) {
	var base, now Counters
	bl, _ := counterLeaves(t, &base)
	nl, _ := counterLeaves(t, &now)
	for i := range bl {
		bl[i].SetUint(uint64(100 + i))
		nl[i].SetUint(uint64(100 + i + 3*(i+1))) // delta 3*(i+1) per leaf
	}
	d := now.Diff(&base)
	dl, dn := counterLeaves(t, &d)
	for i := range dl {
		if got, want := dl[i].Uint(), uint64(3*(i+1)); got != want {
			t.Errorf("Diff field %s = %d, want %d", dn[i], got, want)
		}
	}
	sum := base
	sum.AddScaled(&d, 5)
	sl, sn := counterLeaves(t, &sum)
	for i := range sl {
		if got, want := sl[i].Uint(), uint64(100+i)+5*uint64(3*(i+1)); got != want {
			t.Errorf("AddScaled field %s = %d, want %d", sn[i], got, want)
		}
	}
}
