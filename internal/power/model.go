package power

import "fmt"

// SystemConfig describes the powered hardware inventory of a run, needed to
// turn activity counters into power: which components exist (and leak) and
// the operating point.
type SystemConfig struct {
	Arch          Arch
	NumCores      int // instantiated, powered cores
	ActiveIMBanks int // powered instruction banks
	ActiveDMBanks int // powered data banks
	VoltageV      float64
	FreqHz        float64
}

// Component identifies one slice of the Figure 6 power decomposition.
type Component uint8

// Decomposition components (Figure 6).
const (
	CompCores   Component = iota // cores & logic
	CompIMem                     // instruction-memory accesses + bank leakage
	CompDMem                     // data-memory accesses + bank leakage
	CompInterco                  // crossbars (MC) or decoders (SC)
	CompClock                    // clock tree
	CompSync                     // synchronizer unit
	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompCores:
		return "cores & logic"
	case CompIMem:
		return "IM"
	case CompDMem:
		return "DM"
	case CompInterco:
		return "interconnect"
	case CompClock:
		return "clock tree"
	case CompSync:
		return "synchronizer"
	}
	return fmt.Sprintf("comp?%d", uint8(c))
}

// Report is the power outcome of one simulated run.
type Report struct {
	Config    SystemConfig
	DurationS float64 // simulated seconds = Cycles / FreqHz

	// Per-component average power in µW; each entry includes that
	// component's leakage share.
	DynamicUW [NumComponents]float64
	LeakUW    [NumComponents]float64

	TotalUW        float64
	TotalDynamicUW float64
	TotalLeakUW    float64
}

// ComponentUW returns dynamic+leakage power of one component.
func (r *Report) ComponentUW(c Component) float64 { return r.DynamicUW[c] + r.LeakUW[c] }

// Compute turns counters into a power report at the configured operating
// point. The simulated duration is Cycles/FreqHz; average power is total
// energy over that duration plus leakage of all powered components.
func Compute(cfg SystemConfig, c *Counters, p *Params) (*Report, error) {
	if cfg.FreqHz <= 0 {
		return nil, fmt.Errorf("power: non-positive frequency %v", cfg.FreqHz)
	}
	if c.Cycles == 0 {
		return nil, fmt.Errorf("power: no cycles simulated")
	}
	r := &Report{Config: cfg, DurationS: float64(c.Cycles) / cfg.FreqHz}

	dynScale := p.DynScale(cfg.VoltageV)
	leakScale := p.LeakScale(cfg.VoltageV)
	// pJ of energy over the run -> average µW: 1e-12 J / s * 1e6 = 1e-6.
	toUW := dynScale / r.DurationS * 1e-6

	// Cores & logic.
	r.DynamicUW[CompCores] = toUW * (float64(c.CoreActive)*p.CoreActivePJ +
		float64(c.CoreStall)*p.CoreStallPJ +
		float64(c.CoreGated)*p.CoreGatedPJ)
	r.LeakUW[CompCores] = leakScale * p.CoreLeakUW * float64(cfg.NumCores)

	// Instruction memory: accesses already account for broadcast merging.
	r.DynamicUW[CompIMem] = toUW * float64(c.IMAccesses) * p.IMReadPJ
	r.LeakUW[CompIMem] = leakScale * p.IMBankLeakUW * float64(cfg.ActiveIMBanks)

	// Data memory, including the synchronizer's sync-point writes and the
	// (cheap) MMIO register file.
	r.DynamicUW[CompDMem] = toUW * (float64(c.DMReads+c.DMWrites+c.SyncPointWrites)*p.DMAccessPJ +
		float64(c.MMIOReads+c.MMIOWrites)*p.MMIOAccessPJ)
	r.LeakUW[CompDMem] = leakScale * p.DMBankLeakUW * float64(cfg.ActiveDMBanks)

	// Interconnect: logarithmic crossbars in the multi-core, plain
	// decoders in the single-core baseline.
	if cfg.Arch.IsMulti() {
		r.DynamicUW[CompInterco] = toUW * float64(c.XbarReqs) * p.XbarPerReqPJ
		r.LeakUW[CompInterco] = leakScale * p.XbarLeakUW
	} else {
		r.DynamicUW[CompInterco] = toUW * float64(c.XbarReqs) * p.DecoderPerReqPJ
		r.LeakUW[CompInterco] = leakScale * p.DecoderLeakUW
	}

	// Clock tree: root toggles every cycle, leaves only for ungated cores.
	clockBase := p.ClockBaseSCPJ
	clockLeak := p.ClockLeakSCUW
	if cfg.Arch.IsMulti() {
		clockBase = p.ClockBaseMCPJ
		clockLeak = p.ClockLeakMCUW
	}
	r.DynamicUW[CompClock] = toUW * (float64(c.Cycles)*clockBase +
		float64(c.UngatedCoreCycles)*p.ClockPerCorePJ)
	r.LeakUW[CompClock] = leakScale * clockLeak

	// Synchronizer (only instantiated with the proposed approach).
	if cfg.Arch.HasSyncUnit() {
		r.DynamicUW[CompSync] = toUW * (float64(c.SyncOps)*p.SyncOpPJ +
			float64(c.Cycles)*p.SyncIdlePJ)
		r.LeakUW[CompSync] = leakScale * p.SyncLeakUW
	}

	for comp := Component(0); comp < NumComponents; comp++ {
		r.TotalDynamicUW += r.DynamicUW[comp]
		r.TotalLeakUW += r.LeakUW[comp]
	}
	r.TotalUW = r.TotalDynamicUW + r.TotalLeakUW
	return r, nil
}
