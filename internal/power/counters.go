// Package power implements the energy/power model of the WBSN platform.
//
// Counters also publish themselves into the observability layer's metrics
// registry (internal/obs), the uniform stats surface the CLIs expose.
//
// Following the paper's methodology (§IV-C), the architectural simulator is
// annotated with per-component energy costs (the paper derives them from
// post-layout RTL simulation in a 90 nm low-leakage process; here they are
// plausible constants calibrated so the absolute numbers land near Table I).
// Activity counters collected during simulation are combined with the
// operating voltage and frequency to produce average-power figures and the
// per-component decomposition of Figure 6.
package power

import "repro/internal/obs"

// Counters accumulates architectural activity during a simulation run. All
// platform components share one instance.
type Counters struct {
	// Cycles is the number of simulated platform clock cycles.
	Cycles uint64

	// Core activity, summed over all instantiated cores.
	CoreActive uint64 // cycles that executed an instruction
	CoreStall  uint64 // cycles stalled on a memory-bank conflict
	CoreGated  uint64 // cycles spent clock-gated (SLEEP)
	CoreHalted uint64 // cycles after HALT (power-gated, free)

	// Instrs counts executed instructions; SyncInstrs the subset belonging
	// to the sync ISE (SINC/SDEC/SNOP/SLEEP) for the paper's run-time
	// overhead metric; BranchBubbles the taken-branch pipeline bubbles.
	Instrs        uint64
	SyncInstrs    uint64
	BranchBubbles uint64

	// Instruction-memory traffic. Requests counts core fetch attempts;
	// Accesses counts bank reads actually performed after broadcast
	// merging. Requests-Accesses is the energy saved by lock-step.
	IMReqs     uint64
	IMAccesses uint64
	IMConflict uint64 // requests delayed by a bank conflict

	// Data-memory traffic, with the same request/access distinction.
	DMReqs     uint64
	DMReads    uint64
	DMWrites   uint64
	DMConflict uint64

	// Memory-mapped I/O accesses (outside the banked arrays).
	MMIOReads  uint64
	MMIOWrites uint64

	// Interconnect requests routed (crossbar in MC, decoder in SC).
	XbarReqs uint64

	// Synchronizer activity.
	SyncOps         uint64 // SINC/SDEC/SNOP/SEVS operations committed
	SyncMerged      uint64 // operations merged into another same-cycle op
	SyncWakes       uint64 // core wake-ups issued
	SyncPointWrites uint64 // read-modify-writes of sync points in shared DM
	SyncTimeouts    uint64 // per-core wait timeouts fired (timeout IRQs raised)

	// SyncGroupOps splits SyncOps by the sync group the operation targeted
	// (descriptors with one implicit all-core barrier accumulate only
	// group 0, matching the paper presets).
	SyncGroupOps [MaxSyncGroups]uint64

	// UngatedCoreCycles feeds the clock-tree leaf energy: the sum over all
	// cycles of the number of cores receiving a clock (active or stalled).
	UngatedCoreCycles uint64

	// Peripheral activity.
	IRQs       uint64
	ADCSamples uint64
}

// AddIdleCycles accounts n platform cycles during which gated cores stayed
// clock-gated, halted cores stayed power-gated, and nothing else happened —
// the bulk path used by the simulator's idle fast-forward engine. It must
// mutate exactly the counters a cycle-by-cycle idle run would (Cycles, plus
// CoreGated/CoreHalted per core), so energy numbers stay bit-identical
// between the exact and fast-forward simulation modes.
func (c *Counters) AddIdleCycles(n, gatedCores, haltedCores uint64) {
	c.Cycles += n
	c.CoreGated += n * gatedCores
	c.CoreHalted += n * haltedCores
}

// StrideDelta is the bulk counter flush of one block-engine stride: the
// activity a straight-line stretch accumulated, applied in one shot instead
// of per cycle. Both the single-core block path and the multi-core stride
// path fill one of these, so the counter mapping — which fields a stride may
// touch, and that interconnect traffic is exactly fetches plus granted data
// requests — lives in one place.
//
// A stride by construction contains no MMIO, no sync ISE, no bank conflicts
// and no stalled requests, so the conflict/MMIO/sync counters have no delta.
type StrideDelta struct {
	Cycles uint64 // platform cycles covered by the stride
	Instrs uint64 // instructions executed

	ActiveCycles  uint64 // core-cycles that executed (CoreActive)
	StallCycles   uint64 // branch-bubble core-cycles (CoreStall)
	BranchBubbles uint64 // taken branches
	UngatedCycles uint64 // core-cycles receiving a clock (active or bubble)
	GatedCycles   uint64 // core-cycles spent clock-gated alongside the stride
	HaltedCycles  uint64 // core-cycles spent power-gated alongside the stride

	IMReqs     uint64 // fetch requests issued
	IMAccesses uint64 // bank reads performed after broadcast merging
	DMReqs     uint64 // data requests issued
	DMReads    uint64 // bank reads performed (merged riders excluded)
	DMWrites   uint64 // bank writes performed
}

// AddStride accounts one block-engine stride. It must mutate exactly the
// counters a cycle-by-cycle run of the same stretch would, so the fast paths
// stay bit-identical to the exact engine.
func (c *Counters) AddStride(d StrideDelta) {
	c.Cycles += d.Cycles
	c.Instrs += d.Instrs
	c.CoreActive += d.ActiveCycles
	c.CoreStall += d.StallCycles
	c.BranchBubbles += d.BranchBubbles
	c.UngatedCoreCycles += d.UngatedCycles
	c.CoreGated += d.GatedCycles
	c.CoreHalted += d.HaltedCycles
	c.IMReqs += d.IMReqs
	c.IMAccesses += d.IMAccesses
	c.DMReqs += d.DMReqs
	c.DMReads += d.DMReads
	c.DMWrites += d.DMWrites
	// Every fetch and every granted data request crossed the interconnect.
	c.XbarReqs += d.IMReqs + d.DMReqs
}

// IMBroadcastPct returns the share of fetch requests satisfied by a merged
// (broadcast) access instead of a dedicated bank read, in percent. This is
// Table I's "IM Broadcast (%)".
func (c *Counters) IMBroadcastPct() float64 {
	if c.IMReqs == 0 {
		return 0
	}
	return 100 * float64(c.IMReqs-c.IMAccesses) / float64(c.IMReqs)
}

// DMBroadcastPct returns the share of data requests satisfied by a merged
// access, in percent ("DM Broadcast (%)").
func (c *Counters) DMBroadcastPct() float64 {
	if c.DMReqs == 0 {
		return 0
	}
	accesses := c.DMReads + c.DMWrites
	if accesses > c.DMReqs {
		return 0
	}
	return 100 * float64(c.DMReqs-accesses) / float64(c.DMReqs)
}

// RuntimeOverheadPct returns the dynamically executed sync-ISE instructions
// as a share of all executed instructions ("Run-time Overhead (%)").
func (c *Counters) RuntimeOverheadPct() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return 100 * float64(c.SyncInstrs) / float64(c.Instrs)
}

// Diff returns the field-wise difference c - base: the activity accumulated
// between two readings of the same counter set. The spin-loop fast-forward
// engine measures one proven-periodic loop traversal this way and replays
// it with AddScaled.
func (c *Counters) Diff(base *Counters) Counters {
	var groupOps [MaxSyncGroups]uint64
	for g := range groupOps {
		groupOps[g] = c.SyncGroupOps[g] - base.SyncGroupOps[g]
	}
	return Counters{
		Cycles:            c.Cycles - base.Cycles,
		CoreActive:        c.CoreActive - base.CoreActive,
		CoreStall:         c.CoreStall - base.CoreStall,
		CoreGated:         c.CoreGated - base.CoreGated,
		CoreHalted:        c.CoreHalted - base.CoreHalted,
		Instrs:            c.Instrs - base.Instrs,
		SyncInstrs:        c.SyncInstrs - base.SyncInstrs,
		BranchBubbles:     c.BranchBubbles - base.BranchBubbles,
		IMReqs:            c.IMReqs - base.IMReqs,
		IMAccesses:        c.IMAccesses - base.IMAccesses,
		IMConflict:        c.IMConflict - base.IMConflict,
		DMReqs:            c.DMReqs - base.DMReqs,
		DMReads:           c.DMReads - base.DMReads,
		DMWrites:          c.DMWrites - base.DMWrites,
		DMConflict:        c.DMConflict - base.DMConflict,
		MMIOReads:         c.MMIOReads - base.MMIOReads,
		MMIOWrites:        c.MMIOWrites - base.MMIOWrites,
		XbarReqs:          c.XbarReqs - base.XbarReqs,
		SyncOps:           c.SyncOps - base.SyncOps,
		SyncMerged:        c.SyncMerged - base.SyncMerged,
		SyncWakes:         c.SyncWakes - base.SyncWakes,
		SyncPointWrites:   c.SyncPointWrites - base.SyncPointWrites,
		SyncTimeouts:      c.SyncTimeouts - base.SyncTimeouts,
		SyncGroupOps:      groupOps,
		UngatedCoreCycles: c.UngatedCoreCycles - base.UngatedCoreCycles,
		IRQs:              c.IRQs - base.IRQs,
		ADCSamples:        c.ADCSamples - base.ADCSamples,
	}
}

// AddScaled accumulates n copies of o into c: the bulk-accounting step of
// the spin-loop fast-forward, which replays n whole loop traversals'
// activity arithmetically. It must touch every field Add touches, so a leap
// over n periods mutates exactly the counters n periods of stepping would.
func (c *Counters) AddScaled(o *Counters, n uint64) {
	c.Cycles += n * o.Cycles
	c.CoreActive += n * o.CoreActive
	c.CoreStall += n * o.CoreStall
	c.CoreGated += n * o.CoreGated
	c.CoreHalted += n * o.CoreHalted
	c.Instrs += n * o.Instrs
	c.SyncInstrs += n * o.SyncInstrs
	c.BranchBubbles += n * o.BranchBubbles
	c.IMReqs += n * o.IMReqs
	c.IMAccesses += n * o.IMAccesses
	c.IMConflict += n * o.IMConflict
	c.DMReqs += n * o.DMReqs
	c.DMReads += n * o.DMReads
	c.DMWrites += n * o.DMWrites
	c.DMConflict += n * o.DMConflict
	c.MMIOReads += n * o.MMIOReads
	c.MMIOWrites += n * o.MMIOWrites
	c.XbarReqs += n * o.XbarReqs
	c.SyncOps += n * o.SyncOps
	c.SyncMerged += n * o.SyncMerged
	c.SyncWakes += n * o.SyncWakes
	c.SyncPointWrites += n * o.SyncPointWrites
	c.SyncTimeouts += n * o.SyncTimeouts
	for g := range c.SyncGroupOps {
		c.SyncGroupOps[g] += n * o.SyncGroupOps[g]
	}
	c.UngatedCoreCycles += n * o.UngatedCoreCycles
	c.IRQs += n * o.IRQs
	c.ADCSamples += n * o.ADCSamples
}

// Publish writes every activity counter into reg under the "counters."
// namespace, in the registry's canonical snake_case naming. The per-group
// operation split publishes all MaxSyncGroups entries so the exported
// document's key set does not depend on the workload.
func (c *Counters) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Add("counters.cycles", c.Cycles)
	reg.Add("counters.core_active", c.CoreActive)
	reg.Add("counters.core_stall", c.CoreStall)
	reg.Add("counters.core_gated", c.CoreGated)
	reg.Add("counters.core_halted", c.CoreHalted)
	reg.Add("counters.instrs", c.Instrs)
	reg.Add("counters.sync_instrs", c.SyncInstrs)
	reg.Add("counters.branch_bubbles", c.BranchBubbles)
	reg.Add("counters.im_reqs", c.IMReqs)
	reg.Add("counters.im_accesses", c.IMAccesses)
	reg.Add("counters.im_conflict", c.IMConflict)
	reg.Add("counters.dm_reqs", c.DMReqs)
	reg.Add("counters.dm_reads", c.DMReads)
	reg.Add("counters.dm_writes", c.DMWrites)
	reg.Add("counters.dm_conflict", c.DMConflict)
	reg.Add("counters.mmio_reads", c.MMIOReads)
	reg.Add("counters.mmio_writes", c.MMIOWrites)
	reg.Add("counters.xbar_reqs", c.XbarReqs)
	reg.Add("counters.sync_ops", c.SyncOps)
	reg.Add("counters.sync_merged", c.SyncMerged)
	reg.Add("counters.sync_wakes", c.SyncWakes)
	reg.Add("counters.sync_point_writes", c.SyncPointWrites)
	reg.Add("counters.sync_timeouts", c.SyncTimeouts)
	for g, n := range c.SyncGroupOps {
		reg.Add(syncGroupOpsName[g], n)
	}
	reg.Add("counters.ungated_core_cycles", c.UngatedCoreCycles)
	reg.Add("counters.irqs", c.IRQs)
	reg.Add("counters.adc_samples", c.ADCSamples)
}

var syncGroupOpsName = [MaxSyncGroups]string{
	"counters.sync_group_ops.g0",
	"counters.sync_group_ops.g1",
	"counters.sync_group_ops.g2",
	"counters.sync_group_ops.g3",
}

// Add accumulates o into c, for aggregating runs.
func (c *Counters) Add(o *Counters) {
	c.Cycles += o.Cycles
	c.CoreActive += o.CoreActive
	c.CoreStall += o.CoreStall
	c.CoreGated += o.CoreGated
	c.CoreHalted += o.CoreHalted
	c.Instrs += o.Instrs
	c.SyncInstrs += o.SyncInstrs
	c.BranchBubbles += o.BranchBubbles
	c.IMReqs += o.IMReqs
	c.IMAccesses += o.IMAccesses
	c.IMConflict += o.IMConflict
	c.DMReqs += o.DMReqs
	c.DMReads += o.DMReads
	c.DMWrites += o.DMWrites
	c.DMConflict += o.DMConflict
	c.MMIOReads += o.MMIOReads
	c.MMIOWrites += o.MMIOWrites
	c.XbarReqs += o.XbarReqs
	c.SyncOps += o.SyncOps
	c.SyncMerged += o.SyncMerged
	c.SyncWakes += o.SyncWakes
	c.SyncPointWrites += o.SyncPointWrites
	c.SyncTimeouts += o.SyncTimeouts
	for g := range c.SyncGroupOps {
		c.SyncGroupOps[g] += o.SyncGroupOps[g]
	}
	c.UngatedCoreCycles += o.UngatedCoreCycles
	c.IRQs += o.IRQs
	c.ADCSamples += o.ADCSamples
}
