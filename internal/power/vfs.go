package power

import "fmt"

// Arch identifies the platform variants evaluated in the paper.
type Arch uint8

// Architecture variants.
const (
	// SC is the single-core baseline: same memory hierarchy, simple
	// decoders instead of crossbars (higher f_max at equal voltage).
	SC Arch = iota
	// MC is the multi-core platform with the proposed synchronization.
	MC
	// MCNoSync is the multi-core platform without the proposed approach:
	// active waiting for producer-consumer relationships (Figure 6).
	MCNoSync
)

func (a Arch) String() string {
	switch a {
	case SC:
		return "SC"
	case MC:
		return "MC"
	case MCNoSync:
		return "MC-nosync"
	}
	return fmt.Sprintf("arch?%d", uint8(a))
}

// IsMulti reports whether the variant uses the multi-core fabric (crossbars,
// ATU, all-DM-banks-active rule).
func (a Arch) IsMulti() bool { return a != SC }

// OperatingPoint is one row of the voltage-frequency table: the maximum
// clock frequency each architecture sustains at a supply voltage.
// The single-core fabric replaces crossbars with simple decoders, allowing
// higher clock frequencies at the same voltage level (paper §IV-B); the
// ratio below reflects the crossbar being on the memory critical path.
type OperatingPoint struct {
	VoltageV float64
	FMaxMCHz float64
	FMaxSCHz float64
}

// SCFreqAdvantage is f_max(SC)/f_max(MC) at equal voltage.
const SCFreqAdvantage = 1.4

// MinClockHz is the platform's minimum clock frequency: the paper's
// multi-core executions all report 1.0 MHz, the floor of the clock network.
const MinClockHz = 1.0e6

// DefaultVFS returns the voltage-frequency table used by the reproduction.
// f_max follows an alpha-power-law-like progression typical of 90 nm
// low-leakage logic between 0.5 V and 1.2 V.
func DefaultVFS() []OperatingPoint {
	mc := []struct {
		v, f float64
	}{
		{0.5, 1.05e6},
		{0.6, 2.6e6},
		{0.7, 4.6e6},
		{0.8, 7.0e6},
		{0.9, 9.8e6},
		{1.0, 13.0e6},
		{1.1, 16.0e6},
		{1.2, 19.0e6},
	}
	pts := make([]OperatingPoint, len(mc))
	for i, e := range mc {
		pts[i] = OperatingPoint{VoltageV: e.v, FMaxMCHz: e.f, FMaxSCHz: e.f * SCFreqAdvantage}
	}
	return pts
}

// FMax returns the table's maximum frequency for arch at the given point.
func (op OperatingPoint) FMax(arch Arch) float64 {
	if arch == SC {
		return op.FMaxSCHz
	}
	return op.FMaxMCHz
}

// MinVoltage returns the lowest operating point whose f_max for arch is at
// least freqHz. It errors when the demand exceeds the fastest point.
func MinVoltage(vfs []OperatingPoint, arch Arch, freqHz float64) (OperatingPoint, error) {
	for _, op := range vfs {
		if op.FMax(arch) >= freqHz {
			return op, nil
		}
	}
	return OperatingPoint{}, fmt.Errorf("power: no operating point sustains %.2f MHz for %v", freqHz/1e6, arch)
}

// ClampFreq applies the platform clock floor to a demanded frequency.
func ClampFreq(freqHz float64) float64 {
	if freqHz < MinClockHz {
		return MinClockHz
	}
	return freqHz
}
