package power

import "fmt"

// MaxSyncGroups bounds the number of mask-defined sync groups a descriptor
// can declare (hwsync-style units expose a small fixed set of group masks).
const MaxSyncGroups = 4

// Arch is a sync-architecture descriptor: a declarative description of the
// platform variant a run executes on. It replaces the former three-value
// enum; the paper's variants are the named presets SC, MC and MCNoSync
// (registered by name in the descriptor registry, see registry.go).
//
// The zero value is the single-core baseline. Descriptors are plain
// comparable structs, so they remain usable as map keys and in ==
// comparisons against the presets.
type Arch struct {
	// Multi selects the multi-core fabric (crossbars, ATU,
	// all-DM-banks-active rule). False is the single-core baseline: same
	// memory hierarchy, simple decoders instead of crossbars (higher
	// f_max at equal voltage).
	Multi bool
	// BusyWait disables the hardware synchronizer: producer-consumer
	// relationships fall back to active waiting (the paper's "no-sync"
	// column, Figure 6).
	BusyWait bool
	// Groups are the sync unit's mask-defined core groups: bit c of
	// Groups[g] makes core c a member of group g. An all-zero array
	// declares the paper's single all-core barrier (group 0 spanning
	// every core), so the presets keep their historical behavior.
	Groups [MaxSyncGroups]uint8
	// TimeoutCycles, when non-zero, arms a per-core timeout on every
	// gated wait: a core still waiting after this many cycles receives a
	// sync-timeout IRQ and is woken instead of hanging its group.
	TimeoutCycles uint64
}

// The paper's architecture variants, as preset descriptors. These are
// variables only because Go constants cannot be structs; they must not be
// mutated.
var (
	// SC is the single-core baseline.
	SC = Arch{}
	// MC is the multi-core platform with the proposed synchronization.
	MC = Arch{Multi: true}
	// MCNoSync is the multi-core platform without the proposed approach:
	// active waiting for producer-consumer relationships (Figure 6).
	MCNoSync = Arch{Multi: true, BusyWait: true}
)

// String returns the descriptor's registered name (presets render exactly as
// the former enum did: "SC", "MC", "MC-nosync") or, for unregistered custom
// descriptors, a compact structural rendering.
func (a Arch) String() string {
	if name, ok := ArchName(a); ok {
		return name
	}
	return a.Key()
}

// Key returns a canonical structural rendering of the descriptor, used for
// cache and checkpoint keys: two descriptors produce the same key iff they
// are structurally equal, independent of any registered names.
func (a Arch) Key() string {
	return fmt.Sprintf("arch[multi=%t,busywait=%t,groups=%02x.%02x.%02x.%02x,timeout=%d]",
		a.Multi, a.BusyWait, a.Groups[0], a.Groups[1], a.Groups[2], a.Groups[3], a.TimeoutCycles)
}

// IsMulti reports whether the variant uses the multi-core fabric (crossbars,
// ATU, all-DM-banks-active rule).
func (a Arch) IsMulti() bool { return a.Multi }

// HasSyncUnit reports whether the hardware synchronizer is instantiated (and
// consumes power): the multi-core fabric without the busy-wait fallback.
func (a Arch) HasSyncUnit() bool { return a.Multi && !a.BusyWait }

// NumGroups returns the number of declared sync groups: the highest non-zero
// Groups entry plus one, or 1 for the implicit all-core barrier of an
// all-zero array.
func (a Arch) NumGroups() int {
	n := 1
	for g := 0; g < MaxSyncGroups; g++ {
		if a.Groups[g] != 0 {
			n = g + 1
		}
	}
	return n
}

// GroupMask returns the member-core mask of group g. With an all-zero Groups
// array, group 0 spans all cores (the paper's single barrier) and the other
// groups are empty.
func (a Arch) GroupMask(g int) uint8 {
	if g < 0 || g >= MaxSyncGroups {
		return 0
	}
	if a.Groups == [MaxSyncGroups]uint8{} {
		if g == 0 {
			return 0xFF
		}
		return 0
	}
	return a.Groups[g]
}

// OperatingPoint is one row of the voltage-frequency table: the maximum
// clock frequency each architecture sustains at a supply voltage.
// The single-core fabric replaces crossbars with simple decoders, allowing
// higher clock frequencies at the same voltage level (paper §IV-B); the
// ratio below reflects the crossbar being on the memory critical path.
type OperatingPoint struct {
	VoltageV float64
	FMaxMCHz float64
	FMaxSCHz float64
}

// SCFreqAdvantage is f_max(SC)/f_max(MC) at equal voltage.
const SCFreqAdvantage = 1.4

// MinClockHz is the platform's minimum clock frequency: the paper's
// multi-core executions all report 1.0 MHz, the floor of the clock network.
const MinClockHz = 1.0e6

// DefaultVFS returns the voltage-frequency table used by the reproduction.
// f_max follows an alpha-power-law-like progression typical of 90 nm
// low-leakage logic between 0.5 V and 1.2 V.
func DefaultVFS() []OperatingPoint {
	mc := []struct {
		v, f float64
	}{
		{0.5, 1.05e6},
		{0.6, 2.6e6},
		{0.7, 4.6e6},
		{0.8, 7.0e6},
		{0.9, 9.8e6},
		{1.0, 13.0e6},
		{1.1, 16.0e6},
		{1.2, 19.0e6},
	}
	pts := make([]OperatingPoint, len(mc))
	for i, e := range mc {
		pts[i] = OperatingPoint{VoltageV: e.v, FMaxMCHz: e.f, FMaxSCHz: e.f * SCFreqAdvantage}
	}
	return pts
}

// FMax returns the table's maximum frequency for arch at the given point.
func (op OperatingPoint) FMax(arch Arch) float64 {
	if !arch.IsMulti() {
		return op.FMaxSCHz
	}
	return op.FMaxMCHz
}

// MinVoltage returns the lowest operating point whose f_max for arch is at
// least freqHz. It errors when the demand exceeds the fastest point.
func MinVoltage(vfs []OperatingPoint, arch Arch, freqHz float64) (OperatingPoint, error) {
	for _, op := range vfs {
		if op.FMax(arch) >= freqHz {
			return op, nil
		}
	}
	return OperatingPoint{}, fmt.Errorf("power: no operating point sustains %.2f MHz for %v", freqHz/1e6, arch)
}

// ClampFreq applies the platform clock floor to a demanded frequency.
func ClampFreq(freqHz float64) float64 {
	if freqHz < MinClockHz {
		return MinClockHz
	}
	return freqHz
}
