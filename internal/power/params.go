package power

// Params holds per-event dynamic energies (pJ at the nominal voltage) and
// per-component leakage powers (µW at the nominal voltage).
//
// The values below are inspired by published 90 nm low-leakage numbers for
// microwatt bio-signal platforms (Ashouei ISSCC'11 reports ~13 pJ/cycle at
// 0.4 V; Kwong JSSC'11 and Sridhara JSSC'11 report comparable figures) and
// calibrated so the absolute average power of the reproduced benchmarks lands
// in the neighbourhood of the paper's Table I. Instruction-memory access
// dominates the per-instruction energy, which is what makes the paper's
// instruction broadcasting effective.
type Params struct {
	NominalV float64 // voltage the pJ/µW figures are quoted at

	// Dynamic energy per event, pJ at NominalV.
	CoreActivePJ    float64 // one executed instruction (datapath + regfile)
	CoreStallPJ     float64 // one stalled-but-clocked cycle
	CoreGatedPJ     float64 // one clock-gated cycle (local gating overhead)
	IMReadPJ        float64 // one instruction-bank read (24-bit word)
	DMAccessPJ      float64 // one data-bank read or write (16-bit word)
	MMIOAccessPJ    float64 // one memory-mapped register access
	XbarPerReqPJ    float64 // crossbar routing, per request (multi-core)
	DecoderPerReqPJ float64 // simple address decoder, per request (single-core)
	ClockBaseSCPJ   float64 // clock-tree root, per cycle, single-core tree
	ClockBaseMCPJ   float64 // clock-tree root, per cycle, multi-core tree
	ClockPerCorePJ  float64 // clock-tree leaf, per ungated core per cycle
	SyncOpPJ        float64 // synchronizer commit of one sync operation
	SyncIdlePJ      float64 // synchronizer per-cycle housekeeping

	// Leakage power per powered component, µW at NominalV.
	CoreLeakUW    float64
	IMBankLeakUW  float64
	DMBankLeakUW  float64
	XbarLeakUW    float64 // both crossbars together
	DecoderLeakUW float64 // both decoders together (single-core)
	SyncLeakUW    float64
	ClockLeakSCUW float64
	ClockLeakMCUW float64

	// Voltage-scaling exponents: dynamic energy scales with (V/Vnom)^DynExp
	// (classic CV² ⇒ 2); leakage power with (V/Vnom)^LeakExp (super-linear
	// due to DIBL and gate leakage ⇒ 3).
	DynExp  float64
	LeakExp float64
}

// DefaultParams returns the calibrated 90 nm low-leakage parameter set used
// throughout the reproduction.
func DefaultParams() *Params {
	return &Params{
		NominalV: 1.0,

		CoreActivePJ:    13.5,
		CoreStallPJ:     5.0,
		CoreGatedPJ:     0.5,
		IMReadPJ:        51.0,
		DMAccessPJ:      18.0,
		MMIOAccessPJ:    2.2,
		XbarPerReqPJ:    2.4,
		DecoderPerReqPJ: 0.6,
		ClockBaseSCPJ:   13.5,
		ClockBaseMCPJ:   18.0,
		ClockPerCorePJ:  3.0,
		SyncOpPJ:        3.5,
		SyncIdlePJ:      0.35,

		CoreLeakUW:    7.5,
		IMBankLeakUW:  3.75,
		DMBankLeakUW:  1.2,
		XbarLeakUW:    4.5,
		DecoderLeakUW: 1.5,
		SyncLeakUW:    0.9,
		ClockLeakSCUW: 3.0,
		ClockLeakMCUW: 5.25,

		DynExp:  2.0,
		LeakExp: 3.0,
	}
}

// DynScale returns the dynamic-energy scaling factor at voltage v.
func (p *Params) DynScale(v float64) float64 { return pow(v/p.NominalV, p.DynExp) }

// LeakScale returns the leakage-power scaling factor at voltage v.
func (p *Params) LeakScale(v float64) float64 { return pow(v/p.NominalV, p.LeakExp) }

// pow is a tiny positive-base power helper avoiding a math import for the
// common integer exponents used here.
func pow(base, exp float64) float64 {
	switch exp {
	case 2:
		return base * base
	case 3:
		return base * base * base
	}
	// Fallback: exp is small and positive in practice; iterate squares.
	result := 1.0
	for i := 0; i < int(exp); i++ {
		result *= base
	}
	frac := exp - float64(int(exp))
	if frac != 0 {
		// Linear interpolation between integer exponents is adequate for
		// the model's calibration purpose.
		result *= 1 + frac*(base-1)
	}
	return result
}
