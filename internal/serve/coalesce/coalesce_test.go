package coalesce

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentCallsShareOneFlight pins the single-flight contract: K
// concurrent callers with one key execute fn exactly once and all receive
// the same bytes. The first caller's fn blocks until every other caller has
// attached, so the coalesce count is deterministic.
func TestConcurrentCallsShareOneFlight(t *testing.T) {
	const K = 8
	g := NewGroup()
	var runs atomic.Int64
	attached := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]byte, K)
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do("k", func() ([]byte, error) {
				runs.Add(1)
				<-attached // hold the flight until all K callers arrived
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			_ = shared
			results[i] = v
		}()
	}
	// Wait until K-1 callers are parked on the flight, then release it.
	for {
		_, coalesced := g.Stats()
		if coalesced == K-1 {
			break
		}
	}
	close(attached)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i := 1; i < K; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d received a different byte slice", i)
		}
	}
	started, coalesced := g.Stats()
	if started != 1 || coalesced != K-1 {
		t.Fatalf("stats %d/%d, want 1/%d", started, coalesced, K-1)
	}
}

// TestCompletedFlightsAreForgotten pins the no-memoization contract: a
// sequential repeat runs fn again (persistence is the store's job), and an
// error is shared only with the callers already in flight.
func TestCompletedFlightsAreForgotten(t *testing.T) {
	g := NewGroup()
	var runs int
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, shared, err := g.Do("k", func() ([]byte, error) {
			runs++
			return nil, boom
		})
		if !errors.Is(err, boom) || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
	}
	if runs != 2 {
		t.Fatalf("fn ran %d times, want 2 (flights must not be memoized)", runs)
	}
}
