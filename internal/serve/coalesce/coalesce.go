// Package coalesce provides single-flight request coalescing for the
// serving layer: N identical concurrent requests share one computation and
// every caller receives the same result — the signal.Cache pattern lifted
// from record synthesis to whole solves.
//
// Unlike a cache, a Group retains nothing once a flight lands: completed
// results belong to the content-addressed store (which persists them across
// restarts); the group only deduplicates work that is in flight right now.
// That split keeps the memory footprint bounded by concurrency, not by
// history, and keeps one failure mode out: a transient error is never
// memoized, only shared with the callers that were already waiting on it.
package coalesce

import "sync"

// Group deduplicates concurrent calls by key. The zero value is not usable;
// use NewGroup.
type Group struct {
	mu      sync.Mutex
	flights map[string]*flight

	started   uint64
	coalesced uint64
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewGroup returns an empty group safe for concurrent use.
func NewGroup() *Group {
	return &Group{flights: map[string]*flight{}}
}

// Do returns the result of fn for key, executing fn at most once across all
// concurrent callers with the same key: the first caller runs it, the rest
// block until it lands and receive the identical byte slice (callers must
// treat it as immutable — it is shared). shared reports whether this caller
// attached to another caller's flight. Once a flight completes it is
// forgotten: a later Do with the same key runs fn again.
func (g *Group) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.coalesced++
		g.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.started++
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Stats returns how many flights were started (distinct executions of fn)
// and how many callers were coalesced onto an already-running flight.
func (g *Group) Stats() (started, coalesced uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started, g.coalesced
}
