package serve_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// Short simulated windows keep the suite fast; the determinism contract is
// duration-independent, so any positive values exercise it.
const (
	testDurationS = 0.4
	testProbeS    = 0.3
)

func newEngine(t *testing.T, cfg serve.Config) *serve.Engine {
	t.Helper()
	if cfg.ScenarioDir == "" {
		cfg.ScenarioDir = "../../scenarios"
	}
	e, err := serve.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// request is one schedule entry: an endpoint plus its body.
type request struct {
	endpoint string // "solve", "measure" or "sweep"
	solve    wire.SolveRequest
	sweep    wire.SweepRequest
}

func (r request) String() string {
	if r.endpoint == "sweep" {
		return fmt.Sprintf("sweep %s apps=%v archs=%v", r.sweep.Scenario, r.sweep.Apps, r.sweep.Archs)
	}
	return fmt.Sprintf("%s %s/%s/%s", r.endpoint, r.solve.Scenario, r.solve.App, r.solve.Arch)
}

func (r request) run(e *serve.Engine) ([]byte, bool, error) {
	switch r.endpoint {
	case "solve":
		return e.Solve(r.solve)
	case "measure":
		return e.Measure(r.solve)
	default:
		return e.Sweep(r.sweep)
	}
}

// goldenMatrix is the bundled-scenario coverage the determinism golden test
// replays: every (scenario app x {sc, mc-nosync, mc}) solve for two
// scenarios of different signal kinds, two full measures, and one sweep
// whose grid overlaps the individual solves (stressing session sharing).
func goldenMatrix() []request {
	var reqs []request
	cell := func(endpoint, scenario, app, arch string) request {
		return request{endpoint: endpoint, solve: wire.SolveRequest{
			Scenario: scenario, App: app, Arch: arch,
			DurationS: testDurationS, ProbeS: testProbeS,
		}}
	}
	for _, app := range []string{"3l-mf", "3l-mmd", "rp-class"} {
		for _, arch := range []string{"sc", "mc-nosync", "mc"} {
			reqs = append(reqs, cell("solve", "ecg-default", app, arch))
		}
	}
	for _, app := range []string{"3l-mf", "3l-mmd"} {
		for _, arch := range []string{"sc", "mc-nosync", "mc"} {
			reqs = append(reqs, cell("solve", "emg-burst", app, arch))
		}
	}
	reqs = append(reqs,
		cell("measure", "ecg-default", "3l-mf", "sc"),
		cell("measure", "ecg-default", "3l-mf", "mc"),
		// The sweep's grid is exactly the nine individual ecg-default solve
		// cells, so replaying it concurrently with them stresses session
		// sharing. (emg-burst is solve-only above: its sparse bursts need
		// probe windows near the scenario's own 2.5s to measure safely,
		// which would dominate the suite's wall-clock.)
		request{endpoint: "sweep", sweep: wire.SweepRequest{
			Scenario: "ecg-default", DurationS: testDurationS, ProbeS: testProbeS,
		}},
	)
	return reqs
}

// TestDeterminismGolden pins the service contract: every response body from
// a randomized concurrent schedule (with duplicates) is byte-identical to
// the body a fresh engine produces serving the same request alone,
// sequentially, cold. The reference and replay engines share nothing.
func TestDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full bundled-scenario matrix twice")
	}
	matrix := goldenMatrix()

	ref := newEngine(t, serve.Config{Jobs: 1})
	want := make(map[string][]byte, len(matrix))
	for _, r := range matrix {
		body, _, err := r.run(ref)
		if err != nil {
			t.Fatalf("reference %s: %v", r, err)
		}
		want[r.String()] = body
	}

	// Fixed-seed shuffle of two copies of the matrix: duplicates coalesce
	// or hit the session's memoization depending on timing, neither of
	// which may change a byte.
	schedule := append(append([]request{}, matrix...), matrix...)
	rand.New(rand.NewSource(7)).Shuffle(len(schedule), func(i, j int) {
		schedule[i], schedule[j] = schedule[j], schedule[i]
	})

	replay := newEngine(t, serve.Config{Jobs: 2})
	type outcome struct {
		req  request
		body []byte
		err  error
	}
	results := make(chan outcome, len(schedule))
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, r := range schedule {
		wg.Add(1)
		go func(r request) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, _, err := r.run(replay)
			results <- outcome{req: r, body: body, err: err}
		}(r)
	}
	wg.Wait()
	close(results)

	for out := range results {
		if out.err != nil {
			t.Fatalf("replay %s: %v", out.req, out.err)
		}
		if !bytes.Equal(out.body, want[out.req.String()]) {
			t.Errorf("replay %s diverged from the sequential cold reference:\n got: %s\nwant: %s",
				out.req, out.body, want[out.req.String()])
		}
	}
}

// TestSolveCoalescesConcurrentRequests proves the single-flight layer at
// the engine level: requests arriving while an identical solve is in flight
// attach to it — one simulation, byte-identical bodies for everyone.
func TestSolveCoalescesConcurrentRequests(t *testing.T) {
	e := newEngine(t, serve.Config{Jobs: 1})
	req := wire.SolveRequest{Scenario: "ecg-default", App: "3l-mf", Arch: "mc",
		DurationS: testDurationS, ProbeS: testProbeS}

	const followers = 4
	bodies := make([][]byte, 1+followers)
	shared := make([]bool, 1+followers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, sh, err := e.Solve(req)
		if err != nil {
			t.Error(err)
		}
		bodies[0], shared[0] = body, sh
	}()
	// Wait for the leader's flight to register; the flight then stays open
	// for the length of a cold solve (several simulated probes), so the
	// followers launched below land inside it.
	for {
		if started, _ := e.CoalesceStats(); started == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, sh, err := e.Solve(req)
			if err != nil {
				t.Error(err)
			}
			bodies[i], shared[i] = body, sh
		}(i)
	}
	wg.Wait()

	started, coalesced := e.CoalesceStats()
	if started != 1 || coalesced != followers {
		t.Fatalf("flights started=%d coalesced=%d, want 1/%d", started, coalesced, followers)
	}
	if shared[0] {
		t.Fatal("the leader reported itself coalesced")
	}
	for i := 1; i <= followers; i++ {
		if !shared[i] {
			t.Errorf("follower %d did not report coalescing", i)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("follower %d body differs from the leader's", i)
		}
	}
}

// TestRestartServesFromWarmStore is the persistence acceptance test: a new
// process (fresh engine) over the same store directory answers a
// previously-solved measure request without re-simulating — the solve comes
// from the store, the measurement continues the persisted probe-boundary
// warm snapshot, and the timeline shows no probe or verify phase.
func TestRestartServesFromWarmStore(t *testing.T) {
	dir := t.TempDir()
	req := wire.SolveRequest{Scenario: "ecg-default", App: "3l-mf", Arch: "mc",
		DurationS: testDurationS, ProbeS: testProbeS}

	e1 := newEngine(t, serve.Config{Jobs: 1, StoreDir: dir, TimelineCap: 4096})
	body1, _, err := e1.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	solves, demands, warms, err := e1.Store().Len()
	if err != nil {
		t.Fatal(err)
	}
	if solves == 0 || demands == 0 || warms == 0 {
		t.Fatalf("first run persisted %d solves, %d demands, %d warm snapshots; want all > 0",
			solves, demands, warms)
	}

	// "Restart": a fresh engine (new session, empty memory caches) over the
	// same store directory.
	e2 := newEngine(t, serve.Config{Jobs: 1, StoreDir: dir, TimelineCap: 4096})
	body2, _, err := e2.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("restarted engine changed the response:\n got: %s\nwant: %s", body2, body1)
	}

	stats := e2.Session().Stats()
	if stats.StoreHits == 0 {
		t.Fatalf("restarted engine served without store hits: %+v", stats)
	}
	if stats.ProbeRuns != 0 {
		t.Fatalf("restarted engine re-ran %d probes; the store should have answered", stats.ProbeRuns)
	}
	if stats.WarmMeasures != 1 {
		t.Fatalf("WarmMeasures = %d, want 1 (measurement should continue the persisted snapshot)", stats.WarmMeasures)
	}
	warmPhase := false
	for _, ev := range e2.Timeline() {
		if ev.Kind != obs.KindPhase {
			continue
		}
		if strings.HasPrefix(ev.Label, "probe ") || strings.HasPrefix(ev.Label, "verify ") {
			t.Fatalf("restarted engine re-simulated: timeline has phase %q", ev.Label)
		}
		if strings.Contains(ev.Label, "(warm)") {
			warmPhase = true
		}
	}
	if !warmPhase {
		t.Fatal("timeline lacks the warm-measure phase span")
	}
}

// TestResolveErrors pins the request-validation failure modes.
func TestResolveErrors(t *testing.T) {
	e := newEngine(t, serve.Config{})
	cases := []struct {
		name string
		req  wire.SolveRequest
		want string
	}{
		{"unknown scenario", wire.SolveRequest{Scenario: "nope", App: "3l-mf", Arch: "sc"}, "unknown scenario"},
		{"missing app", wire.SolveRequest{Scenario: "ecg-default", Arch: "sc"}, "missing \"app\""},
		{"unknown app", wire.SolveRequest{Scenario: "ecg-default", App: "4l-mf", Arch: "sc"}, "unknown app"},
		{"missing arch", wire.SolveRequest{Scenario: "ecg-default", App: "3l-mf"}, "missing \"arch\""},
		{"negative duration", wire.SolveRequest{App: "3l-mf", Arch: "sc", DurationS: -1}, "negative"},
		{"patho out of range", wire.SolveRequest{App: "3l-mf", Arch: "sc", PathoFrac: f64(1.5)}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		_, _, err := e.Solve(tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func f64(v float64) *float64 { return &v }
