// Package serve is the operating-point solving service: the long-running
// form of the one-shot CLI invocations, exposing solve, measure and sweep
// over HTTP/JSON on a shared exp.Session. Three layers turn the expensive
// compute kernel into something a fleet of clients can hit concurrently:
//
//   - a content-addressed result store (internal/serve/store) persisting
//     solved points, demand estimates and probe-boundary warm snapshots
//     across restarts;
//   - a bounded LRU of pristine platform templates (the session's template
//     cache under a cap), keeping memory flat under workload diversity
//     while amortizing image builds;
//   - single-flight request coalescing (internal/serve/coalesce): N
//     identical concurrent requests share one simulation and receive
//     byte-identical bodies.
//
// Determinism is the service contract: for any request mix at any
// concurrency, each response body is byte-identical to what a fresh,
// sequential, cold-session run of the same request would produce. The
// simulator is bit-exact by construction (golden-pinned), responses are
// marshaled from fixed-shape structs, and every cache layer is keyed on the
// full canonical request identity — so reuse can change wall-clock time,
// never bytes. The golden test in this package replays a randomized
// concurrent schedule against sequential cold references to pin it.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/serve/coalesce"
	"repro/internal/serve/store"
	"repro/internal/serve/wire"
)

// Config parameterizes an Engine.
type Config struct {
	// ScenarioDir is scanned (non-recursively) for *.json scenario files;
	// requests select them by scenario name. Empty means no scenarios —
	// only the default ECG configuration is servable.
	ScenarioDir string
	// StoreDir roots the content-addressed result store. Empty disables
	// persistence: the session still memoizes in memory, but nothing
	// survives the process.
	StoreDir string
	// TemplateCap bounds the session's pristine-template LRU; 0 keeps it
	// unbounded.
	TemplateCap int
	// Jobs bounds each sweep request's worker pool; values < 1 select 1.
	// Solve and measure requests are one simulation each; their
	// concurrency is bounded by the HTTP layer's in-flight requests.
	Jobs int
	// TimelineCap, when positive, attaches an event-timeline ring of that
	// capacity to every simulation the engine runs (solve phases, probe
	// spans). Observation only: results and response bytes are identical
	// with or without it.
	TimelineCap int
	// Params calibrates power reports (nil selects power.DefaultParams).
	Params *power.Params
}

// Engine is the concurrency-safe facade the HTTP layer (and tests) drive:
// it owns the shared session, the store, the scenario registry and the
// coalescing group, and turns resolved requests into response bodies. All
// methods are safe for concurrent use.
type Engine struct {
	session   *exp.Session
	params    *power.Params
	store     *store.Store
	scenarios map[string]*scenario.Scenario
	names     []string
	jobs      int
	group     *coalesce.Group
	reg       *obs.Registry
	sink      *obs.Sink
}

// NewEngine builds the serving engine: loads the scenario directory, opens
// (or creates) the store, and wires both into a fresh session.
func NewEngine(cfg Config) (*Engine, error) {
	params := cfg.Params
	if params == nil {
		params = power.DefaultParams()
	}
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	reg := obs.NewRegistry()
	var sink *obs.Sink
	if cfg.TimelineCap > 0 {
		sink = obs.NewSink(obs.NewTimeline(cfg.TimelineCap), reg)
	}
	e := &Engine{
		session:   exp.NewSession(params),
		params:    params,
		scenarios: map[string]*scenario.Scenario{},
		jobs:      jobs,
		group:     coalesce.NewGroup(),
		reg:       reg,
		sink:      sink,
	}
	e.session.SetTemplateCap(cfg.TemplateCap)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		e.store = st
		e.session.SetStore(st)
	}
	if cfg.ScenarioDir != "" {
		entries, err := os.ReadDir(cfg.ScenarioDir)
		if err != nil {
			return nil, fmt.Errorf("serve: scenario dir: %w", err)
		}
		for _, ent := range entries {
			if ent.IsDir() || !strings.EqualFold(filepath.Ext(ent.Name()), ".json") {
				continue
			}
			scn, err := scenario.Load(filepath.Join(cfg.ScenarioDir, ent.Name()))
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			if prev, ok := e.scenarios[scn.Name]; ok && prev != scn {
				return nil, fmt.Errorf("serve: two scenario files declare the name %q", scn.Name)
			}
			e.scenarios[scn.Name] = scn
			e.names = append(e.names, scn.Name)
		}
		sort.Strings(e.names)
	}
	return e, nil
}

// Scenarios lists the loaded scenario names in lexical order.
func (e *Engine) Scenarios() []string { return e.names }

// Session exposes the shared session (tests assert on its statistics).
func (e *Engine) Session() *exp.Session { return e.session }

// Store exposes the backing store (nil when persistence is disabled).
func (e *Engine) Store() *store.Store { return e.store }

// Registry exposes the engine's metrics registry.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Timeline returns the engine's event-timeline events (nil without a
// TimelineCap).
func (e *Engine) Timeline() []obs.Event { return e.sink.Events() }

// CoalesceStats returns how many flights ran and how many requests were
// coalesced onto one.
func (e *Engine) CoalesceStats() (started, coalesced uint64) { return e.group.Stats() }

// resolved is a request after scenario resolution and validation: the exact
// cell identity the session is driven with.
type resolved struct {
	scenario string
	app      string
	arch     power.Arch
	opts     exp.Options
}

// resolveCommon validates the shared request fields and layers them over
// the scenario's options.
func (e *Engine) resolveCommon(scenarioName string, durationS, probeS float64, seed *int64, pathoFrac *float64, exact bool) (string, exp.Options, error) {
	opts := exp.DefaultOptions()
	if scenarioName != "" {
		scn, ok := e.scenarios[scenarioName]
		if !ok {
			return "", exp.Options{}, fmt.Errorf("unknown scenario %q (loaded: %v)", scenarioName, e.names)
		}
		opts = scn.Options()
	}
	if durationS < 0 || probeS < 0 {
		return "", exp.Options{}, fmt.Errorf("negative duration_s (%v) or probe_s (%v)", durationS, probeS)
	}
	if durationS > 0 {
		opts.Duration = durationS
	}
	if probeS > 0 {
		opts.ProbeDuration = probeS
	}
	if seed != nil {
		opts.Seed = *seed
	}
	if pathoFrac != nil {
		if *pathoFrac < 0 || *pathoFrac > 1 {
			return "", exp.Options{}, fmt.Errorf("pathological_frac %v outside [0, 1]", *pathoFrac)
		}
		opts.PathoFrac = *pathoFrac
	}
	opts.Exact = exact
	opts.Scenario = scenarioName
	opts.Obs = e.sink
	return scenarioName, opts, nil
}

// resolveCell resolves one (app, arch) cell request.
func (e *Engine) resolveCell(req wire.SolveRequest) (resolved, error) {
	name, opts, err := e.resolveCommon(req.Scenario, req.DurationS, req.ProbeS, req.Seed, req.PathoFrac, req.Exact)
	if err != nil {
		return resolved{}, err
	}
	if req.App == "" {
		return resolved{}, fmt.Errorf("missing \"app\" (known: %v)", apps.Names)
	}
	known := false
	for _, n := range apps.Names {
		known = known || n == req.App
	}
	if !known {
		return resolved{}, fmt.Errorf("unknown app %q (known: %v)", req.App, apps.Names)
	}
	if req.Arch == "" {
		return resolved{}, fmt.Errorf("missing \"arch\" (e.g. sc, mc, mc-nosync, or a structural spec)")
	}
	arch, err := power.ParseArchSpec(req.Arch)
	if err != nil {
		return resolved{}, err
	}
	return resolved{scenario: name, app: req.App, arch: arch, opts: opts}, nil
}

// Solve returns the response body for one solve request, coalescing
// identical concurrent requests onto one computation. shared reports
// whether this call attached to another request's in-flight solve.
func (e *Engine) Solve(req wire.SolveRequest) (body []byte, shared bool, err error) {
	r, err := e.resolveCell(req)
	if err != nil {
		return nil, false, &resolveError{err}
	}
	key := wire.CanonicalKey("solve", r.scenario, r.app, r.arch, r.opts)
	return e.group.Do(key, func() ([]byte, error) {
		op, err := e.solveCell(r)
		if err != nil {
			return nil, err
		}
		return marshalBody(wire.SolveResponse{
			Key:      wire.Hash(key),
			Scenario: r.scenario,
			App:      r.app,
			Arch:     r.arch.String(),
			FreqHz:   op.FreqHz,
			FreqMHz:  op.FreqHz / 1e6,
			VoltageV: op.VoltageV,
		})
	})
}

// Measure returns the response body for one solve-and-measure request.
func (e *Engine) Measure(req wire.MeasureRequest) (body []byte, shared bool, err error) {
	r, err := e.resolveCell(req)
	if err != nil {
		return nil, false, &resolveError{err}
	}
	key := wire.CanonicalKey("measure", r.scenario, r.app, r.arch, r.opts)
	return e.group.Do(key, func() ([]byte, error) {
		// Background context: a flight may be shared by several requests
		// and its result is persisted; one client disconnecting must not
		// cancel (or poison) the simulation for the rest.
		ctx := context.Background()
		sig, err := r.opts.Record(r.app)
		if err != nil {
			return nil, err
		}
		op, err := e.session.SolveOperatingPoint(ctx, r.app, r.arch, sig, r.opts)
		if err != nil {
			return nil, err
		}
		m, err := e.session.Measure(ctx, r.app, r.arch, op, sig, r.opts)
		if err != nil {
			return nil, err
		}
		pt := exp.Point{App: r.app, Arch: r.arch, Opts: r.opts}
		rows := exp.JSONPoints("measure", []exp.Point{pt}, []*exp.Measurement{m})
		return marshalBody(wire.MeasureResponse{Key: wire.Hash(key), Point: rows[0]})
	})
}

// solveCell drives the session for one cell's operating point.
func (e *Engine) solveCell(r resolved) (exp.OperatingPoint, error) {
	sig, err := r.opts.Record(r.app)
	if err != nil {
		return exp.OperatingPoint{}, err
	}
	return e.session.SolveOperatingPoint(context.Background(), r.app, r.arch, sig, r.opts)
}

// Sweep returns the response body for one grid request, fanning the cells
// across a bounded worker pool on the shared session.
func (e *Engine) Sweep(req wire.SweepRequest) (body []byte, shared bool, err error) {
	name, opts, err := e.resolveCommon(req.Scenario, req.DurationS, req.ProbeS, req.Seed, req.PathoFrac, req.Exact)
	if err != nil {
		return nil, false, &resolveError{err}
	}
	appNames := req.Apps
	archs := []power.Arch{}
	if name != "" {
		scn := e.scenarios[name]
		if len(appNames) == 0 {
			appNames = scn.Apps
		}
		archs = scn.Archs
	}
	if len(appNames) == 0 {
		appNames = apps.Names
	}
	for _, n := range appNames {
		known := false
		for _, k := range apps.Names {
			known = known || k == n
		}
		if !known {
			return nil, false, &resolveError{fmt.Errorf("unknown app %q (known: %v)", n, apps.Names)}
		}
	}
	if len(req.Archs) > 0 {
		archs = nil
		for _, spec := range req.Archs {
			a, err := power.ParseArchSpec(spec)
			if err != nil {
				return nil, false, &resolveError{err}
			}
			archs = append(archs, a)
		}
	}
	if len(archs) == 0 {
		archs = power.PresetArchs()
	}
	key := wire.SweepCanonicalKey(name, appNames, archs, opts)
	return e.group.Do(key, func() ([]byte, error) {
		// A fresh Sweep per flight (concurrent Run calls on one Sweep are
		// unsupported), all sharing the one session and cache.
		sw := &exp.Sweep{Jobs: e.jobs, Params: e.params, Session: e.session, Cache: e.session.Cache()}
		points := exp.Grid(appNames, archs, opts)
		ms, err := sw.Run(context.Background(), points)
		if err != nil {
			return nil, err
		}
		return marshalBody(wire.SweepResponse{Key: wire.Hash(key), Rows: exp.JSONPoints("sweep", points, ms)})
	})
}

// PublishMetrics refreshes the registry with every gauge the engine can
// report: session work counters, signal- and template-cache hit rates,
// store traffic and coalescing stats. Idempotent; the metrics endpoint
// calls it per scrape.
func (e *Engine) PublishMetrics() *obs.Registry {
	e.session.PublishMetrics(e.reg)
	if e.store != nil {
		hits, misses, puts := e.store.Stats()
		e.reg.Set("serve.store.hits", hits)
		e.reg.Set("serve.store.misses", misses)
		e.reg.Set("serve.store.puts", puts)
	}
	started, coalesced := e.group.Stats()
	e.reg.Set("serve.coalesce.started", started)
	e.reg.Set("serve.coalesce.coalesced", coalesced)
	return e.reg
}
