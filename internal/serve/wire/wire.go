// Package wire defines the serving layer's HTTP/JSON request and response
// shapes and the canonical request identity they are coalesced and stored
// under. Responses are plain structs marshaled with encoding/json — field
// order is fixed by the struct, keys are stable — so an identical request
// always yields byte-identical response bodies, which is the service's
// determinism contract (see docs/SERVE.md).
package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/exp"
	"repro/internal/power"
)

// SolveRequest asks for the operating point of one (scenario, app, arch)
// cell: the minimum real-time clock frequency and the minimum voltage
// sustaining it. Scenario selects a bundled scenario by name (empty means
// the paper's default ECG configuration); the remaining optional fields
// override the scenario's values.
type SolveRequest struct {
	Scenario string `json:"scenario,omitempty"`
	App      string `json:"app"`
	// Arch is an architecture spec: a registered descriptor name ("sc",
	// "mc", "mc-nosync", a scenario-registered custom name) or a structural
	// spec like "multi,groups=0x0F+0x18,timeout=50000000".
	Arch string `json:"arch"`
	// DurationS overrides the simulated measurement duration (seconds).
	// It participates in solve identities only through the synthesized
	// record length; /v1/measure runs it in full.
	DurationS float64 `json:"duration_s,omitempty"`
	// ProbeS overrides the simulated probe/verification window (seconds).
	ProbeS float64 `json:"probe_s,omitempty"`
	// Seed overrides the synthetic-record seed (pointer: 0 is a valid seed).
	Seed *int64 `json:"seed,omitempty"`
	// PathoFrac overrides the pathological-event share in [0, 1].
	PathoFrac *float64 `json:"pathological_frac,omitempty"`
	// Exact disables the simulator's fast-forward engines (bit-identical
	// results, slower; a cross-check knob).
	Exact bool `json:"exact,omitempty"`
}

// SolveResponse is the solved operating point. Key is the content address
// (hex SHA-256 of the canonical request identity) the result is stored and
// coalesced under.
type SolveResponse struct {
	Key      string  `json:"key"`
	Scenario string  `json:"scenario,omitempty"`
	App      string  `json:"app"`
	Arch     string  `json:"arch"`
	FreqHz   float64 `json:"freq_hz"`
	FreqMHz  float64 `json:"freq_mhz"`
	VoltageV float64 `json:"voltage_v"`
}

// MeasureRequest asks for a full solve-and-measure of one cell: the
// operating point plus the calibrated power report over the measurement
// duration. The measurement continues the solve's probe-boundary warm
// snapshot when the store holds one.
type MeasureRequest = SolveRequest

// MeasureResponse is the measured cell: the solved point and the metrics
// row the paper's tables are built from.
type MeasureResponse struct {
	Key   string        `json:"key"`
	Point exp.PointJSON `json:"point"`
}

// SweepRequest asks for a whole (apps x archs) grid, solved and measured
// through the parallel sweep engine. Apps and Archs default to the
// scenario's lists (or the full paper grid without a scenario).
type SweepRequest struct {
	Scenario  string   `json:"scenario,omitempty"`
	Apps      []string `json:"apps,omitempty"`
	Archs     []string `json:"archs,omitempty"`
	DurationS float64  `json:"duration_s,omitempty"`
	ProbeS    float64  `json:"probe_s,omitempty"`
	Seed      *int64   `json:"seed,omitempty"`
	PathoFrac *float64 `json:"pathological_frac,omitempty"`
	Exact     bool     `json:"exact,omitempty"`
}

// SweepResponse is the solved grid, one row per cell in grid order
// (deterministic for any server worker count).
type SweepResponse struct {
	Key  string          `json:"key"`
	Rows []exp.PointJSON `json:"rows"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CanonicalKey serializes the full identity of a resolved request:
// everything its response bytes depend on. endpoint keeps solve, measure
// and sweep results from aliasing; the architecture contributes its
// canonical descriptor Key (structurally equal customs share identities);
// the options contribute the normalized signal source and every solver
// knob. Identical concurrent requests coalesce on this string, and the
// content-addressed store files results under its SHA-256.
func CanonicalKey(endpoint, scenario, app string, arch power.Arch, o exp.Options) string {
	return fmt.Sprintf("%s|scenario=%s|app=%s|arch=%s|src=%+v|seed=%d|patho=%v|dur=%v|probe=%v|exact=%v",
		endpoint, scenario, app, arch.Key(), o.Source, o.Seed, o.PathoFrac, o.Duration, o.ProbeDuration, o.Exact)
}

// SweepCanonicalKey is CanonicalKey's grid form: the identity of a whole
// (apps x archs) sweep, in grid order.
func SweepCanonicalKey(scenario string, appNames []string, archs []power.Arch, o exp.Options) string {
	keys := make([]string, 0, len(archs))
	for _, a := range archs {
		keys = append(keys, a.Key())
	}
	return fmt.Sprintf("sweep|scenario=%s|apps=%v|archs=%v|src=%+v|seed=%d|patho=%v|dur=%v|probe=%v|exact=%v",
		scenario, appNames, keys, o.Source, o.Seed, o.PathoFrac, o.Duration, o.ProbeDuration, o.Exact)
}

// Hash returns the content address of a canonical key: its hex SHA-256.
func Hash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}
