package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/serve/wire"
)

// marshalBody renders a response struct as the canonical body bytes:
// indented JSON with a trailing newline, byte-stable for identical
// contents (struct field order is fixed; no maps are marshaled).
func marshalBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("serve: encoding response: %w", err)
	}
	return buf.Bytes(), nil
}

// Handler returns the engine's HTTP API:
//
//	POST /v1/solve    one cell's operating point
//	POST /v1/measure  one cell solved and measured (power report row)
//	POST /v1/sweep    a whole (apps x archs) grid
//	GET  /v1/healthz  liveness + loaded scenarios
//	GET  /v1/metrics  metrics registry (JSON; ?format=text for stats lines)
//
// Request bodies are strict JSON (unknown fields rejected — a typoed knob
// must not silently fall back). Solve/measure/sweep bodies are
// deterministic: byte-identical for identical requests at any concurrency.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		e.reg.Add("serve.requests.solve", 1)
		handleBody(e, w, r, func(req wireSolve) ([]byte, bool, error) { return e.Solve(req) })
	})
	mux.HandleFunc("/v1/measure", func(w http.ResponseWriter, r *http.Request) {
		e.reg.Add("serve.requests.measure", 1)
		handleBody(e, w, r, func(req wireSolve) ([]byte, bool, error) { return e.Measure(req) })
	})
	mux.HandleFunc("/v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		e.reg.Add("serve.requests.sweep", 1)
		handleBody(e, w, r, func(req wireSweep) ([]byte, bool, error) { return e.Sweep(req) })
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		e.reg.Add("serve.requests.healthz", 1)
		body, err := marshalBody(struct {
			Status    string   `json:"status"`
			Scenarios []string `json:"scenarios"`
			Store     bool     `json:"store"`
		}{Status: "ok", Scenarios: e.Scenarios(), Store: e.store != nil})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		e.reg.Add("serve.requests.metrics", 1)
		reg := e.PublishMetrics()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := reg.WriteText(w, "stats "); err != nil {
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			writeError(w, http.StatusInternalServerError, err)
		}
	})
	return mux
}

// wireSolve and wireSweep keep the generic handler readable.
type (
	wireSolve = wire.SolveRequest
	wireSweep = wire.SweepRequest
)

// handleBody decodes a strict-JSON POST body, runs the endpoint and writes
// the deterministic response bytes. Resolution failures are the client's
// (400); simulation failures are reported as 422 (the request was
// well-formed, the configured cell cannot meet real time or faulted).
func handleBody[Req any](e *Engine, w http.ResponseWriter, r *http.Request, run func(Req) ([]byte, bool, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST with a JSON body"))
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Req
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	body, shared, err := run(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if body == nil && isResolveError(err) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	if shared {
		// Advisory only (headers are not part of the determinism
		// contract, bodies are): this response rode another request's
		// simulation.
		w.Header().Set("X-Coalesced", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// resolveError marks request-resolution failures so the HTTP layer can
// classify them as 400s without string matching.
type resolveError struct{ err error }

func (e *resolveError) Error() string { return e.err.Error() }
func (e *resolveError) Unwrap() error { return e.err }

func isResolveError(err error) bool {
	_, ok := err.(*resolveError)
	return ok
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
