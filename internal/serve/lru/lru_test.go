package lru

import "testing"

func TestEvictionOrder(t *testing.T) {
	var evicted []string
	c := New[string, int](2, func(k string, v int) { evicted = append(evicted, k) })
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b, the LRU
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d/%v, want 1/true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	hits, misses, evictions := c.Stats()
	// Gets: a(hit), b(miss), a(hit); the failed Get("a") cannot happen.
	if hits != 2 || misses != 1 || evictions != 1 {
		t.Fatalf("stats %d/%d/%d, want 2/1/1", hits, misses, evictions)
	}
}

func TestRebindDoesNotEvict(t *testing.T) {
	c := New[string, int](2, func(k string, v int) { t.Fatalf("evicted %s", k) })
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int, int](0, func(k, v int) { t.Fatalf("evicted %d", k) })
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
	}
	if c.Len() != 1000 {
		t.Fatalf("len %d, want 1000", c.Len())
	}
}
