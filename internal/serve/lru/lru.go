// Package lru provides the bounded most-recently-used cache the serving
// layer (and the experiment session behind it) uses to keep memory flat
// under workload diversity: pristine platform templates are megabytes each,
// and a long-running server must amortize their construction without
// accumulating one per (scenario, app, arch) combination it ever saw.
//
// The cache is a plain container, not a synchronization point: it is NOT
// safe for concurrent use on its own. Owners guard it with their existing
// mutex (exp.Session holds entries under the session lock), which keeps the
// single-flight once-per-entry pattern owners layer on top race-free.
package lru

// Cache is a bounded map with least-recently-used eviction. A capacity of
// zero or less means unbounded (degenerating to a plain map, no eviction).
type Cache[K comparable, V any] struct {
	capacity int
	onEvict  func(K, V)
	entries  map[K]*node[K, V]
	// head.next is the most recently used node, tail.prev the least.
	head, tail *node[K, V]

	hits, misses, evictions uint64
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// New returns an empty cache holding at most capacity entries (<= 0 means
// unbounded). onEvict, when non-nil, is called for every evicted entry —
// synchronously, under whatever lock the caller holds around Put.
func New[K comparable, V any](capacity int, onEvict func(K, V)) *Cache[K, V] {
	c := &Cache[K, V]{
		capacity: capacity,
		onEvict:  onEvict,
		entries:  map[K]*node[K, V]{},
		head:     &node[K, V]{},
		tail:     &node[K, V]{},
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// Get returns the value bound to k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	n, ok := c.entries[k]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.unlink(n)
	c.pushFront(n)
	return n.val, true
}

// Put binds k to v, marking it most recently used and evicting the least
// recently used entry if the capacity is exceeded. Rebinding an existing key
// replaces its value without eviction side effects on other entries.
func (c *Cache[K, V]) Put(k K, v V) {
	if n, ok := c.entries[k]; ok {
		n.val = v
		c.unlink(n)
		c.pushFront(n)
		return
	}
	n := &node[K, V]{key: k, val: v}
	c.entries[k] = n
	c.pushFront(n)
	if c.capacity > 0 && len(c.entries) > c.capacity {
		lru := c.tail.prev
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(lru.key, lru.val)
		}
	}
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Stats returns the cumulative hit, miss and eviction counts.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (c *Cache[K, V]) pushFront(n *node[K, V]) {
	n.prev = c.head
	n.next = c.head.next
	c.head.next.prev = n
	c.head.next = n
}
