package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newEngine(t, serve.Config{Jobs: 1}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name, path, body string
		status           int
		want             string
	}{
		{"unknown field", "/v1/solve", `{"app":"3l-mf","arch":"sc","probe_seconds":1}`, http.StatusBadRequest, "unknown field"},
		{"malformed json", "/v1/solve", `{"app":`, http.StatusBadRequest, "decoding request"},
		{"unknown scenario", "/v1/solve", `{"scenario":"nope","app":"3l-mf","arch":"sc"}`, http.StatusBadRequest, "unknown scenario"},
		{"unknown app", "/v1/measure", `{"app":"4l-mf","arch":"sc"}`, http.StatusBadRequest, "unknown app"},
		{"bad arch", "/v1/solve", `{"app":"3l-mf","arch":"quad"}`, http.StatusBadRequest, ""},
		{"sweep unknown app", "/v1/sweep", `{"apps":["bogus"]}`, http.StatusBadRequest, "unknown app"},
	}
	for _, tc := range cases {
		resp, body := post(t, srv, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not an ErrorResponse (%v)", tc.name, body, err)
			continue
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Errorf("%s: error %q lacks %q", tc.name, e.Error, tc.want)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzListsScenarios(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h struct {
		Status    string   `json:"status"`
		Scenarios []string `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	found := false
	for _, n := range h.Scenarios {
		found = found || n == "ecg-default"
	}
	if !found {
		t.Fatalf("healthz scenarios %v lack ecg-default", h.Scenarios)
	}
}

func TestMetricsEndpointFormats(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Counters["serve.coalesce.started"]; !ok {
		t.Fatalf("metrics JSON lacks serve.coalesce.started: %v", doc.Counters)
	}

	resp, err = http.Get(srv.URL + "/v1/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stats serve.requests.metrics") {
		t.Fatalf("text metrics lack the stats prefix lines:\n%s", buf.String())
	}
}
