// Package store implements the serving layer's content-addressed result
// store: the persistent form of everything an exp.Session memoizes, keyed
// by the SHA-256 of the session's canonical identity strings. It replaces
// the single bulk -checkpoint file with one small file per result, written
// atomically as results are produced, so a server killed mid-grid loses
// only in-flight work — and, unlike the checkpoint file, it also persists
// the probe-boundary warm snapshots, so measurements warm-start across
// process death.
//
// # Layout
//
// Under the root directory:
//
//	solve/<sha256(key)>.json   solved operating point + its full key
//	demand/<sha256(key)>.json  probe demand estimate + its full key
//	warm/<sha256(key)>.snap    platform snapshot file (versioned gob,
//	                           platform.WriteSnapshotFile) with the key in
//	                           its metadata
//
// Every entry records the full canonical key it was stored under and reads
// verify it, so a hash collision or a misplaced file surfaces as a
// corruption error instead of a silently wrong result. JSON stores float64
// via Go's shortest round-trip formatting, so operating points and demands
// survive the trip bit-exactly.
//
// All methods are safe for concurrent use; writes go through a temp file
// and rename, so readers (including concurrent processes) never observe a
// partial entry.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/exp"
	"repro/internal/platform"
)

// Store is a content-addressed PointStore rooted at a directory.
type Store struct {
	dir string

	hits, misses, puts atomic.Uint64
}

// Compile-time check: the store is the session's persistence backend.
var _ exp.PointStore = (*Store)(nil)

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"solve", "demand", "warm"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the cumulative hit, miss and put counts across all entry
// classes.
func (s *Store) Stats() (hits, misses, puts uint64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load()
}

// path returns the content address of key within class: the hex SHA-256 of
// the canonical key string.
func (s *Store) path(class, key, ext string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, class, hex.EncodeToString(sum[:])+ext)
}

// solveEntry is the on-disk shape of a solved operating point. Key carries
// the full canonical identity for read-back verification and debuggability
// (the filename is only its hash).
type solveEntry struct {
	Key      string  `json:"key"`
	FreqHz   float64 `json:"freq_hz"`
	VoltageV float64 `json:"voltage_v"`
}

// demandEntry is the on-disk shape of a probe demand estimate.
type demandEntry struct {
	Key      string  `json:"key"`
	DemandHz float64 `json:"demand_hz"`
}

// readJSON loads one JSON entry, distinguishing absence (ok=false, nil
// error) from damage (error).
func (s *Store) readJSON(path, key string, v any, gotKey func() string) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("store: corrupt entry %s: %w", path, err)
	}
	if got := gotKey(); got != key {
		return false, fmt.Errorf("store: entry %s was stored under a different key (hash collision or misplaced file):\n  stored: %s\n  wanted: %s", path, got, key)
	}
	s.hits.Add(1)
	return true, nil
}

// writeJSON atomically persists one JSON entry.
func (s *Store) writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(path, data); err != nil {
		return err
	}
	s.puts.Add(1)
	return nil
}

// GetSolve returns the solved operating point stored under key, if any.
func (s *Store) GetSolve(key string) (exp.OperatingPoint, bool, error) {
	var e solveEntry
	ok, err := s.readJSON(s.path("solve", key, ".json"), key, &e, func() string { return e.Key })
	if !ok || err != nil {
		return exp.OperatingPoint{}, false, err
	}
	return exp.OperatingPoint{FreqHz: e.FreqHz, VoltageV: e.VoltageV}, true, nil
}

// PutSolve persists a solved operating point under key.
func (s *Store) PutSolve(key string, op exp.OperatingPoint) error {
	return s.writeJSON(s.path("solve", key, ".json"), solveEntry{Key: key, FreqHz: op.FreqHz, VoltageV: op.VoltageV})
}

// GetDemand returns the probe demand estimate stored under key, if any.
func (s *Store) GetDemand(key string) (float64, bool, error) {
	var e demandEntry
	ok, err := s.readJSON(s.path("demand", key, ".json"), key, &e, func() string { return e.Key })
	if !ok || err != nil {
		return 0, false, err
	}
	return e.DemandHz, true, nil
}

// PutDemand persists a probe demand estimate under key.
func (s *Store) PutDemand(key string, demand float64) error {
	return s.writeJSON(s.path("demand", key, ".json"), demandEntry{Key: key, DemandHz: demand})
}

// GetWarm returns the probe-boundary warm snapshot stored under key, if
// any. The snapshot file's own magic/version framing rejects foreign or
// incompatible files; the key recorded in its metadata is verified here.
func (s *Store) GetWarm(key string) (*platform.Snapshot, bool, error) {
	path := s.path("warm", key, ".snap")
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	file, err := platform.ReadSnapshotFile(f)
	if err != nil {
		return nil, false, fmt.Errorf("store: corrupt entry %s: %w", path, err)
	}
	if got := file.Meta["key"]; got != key {
		return nil, false, fmt.Errorf("store: entry %s was stored under a different key (hash collision or misplaced file):\n  stored: %s\n  wanted: %s", path, got, key)
	}
	s.hits.Add(1)
	return file.Snap, true, nil
}

// PutWarm persists a probe-boundary warm snapshot under key.
func (s *Store) PutWarm(key string, snap *platform.Snapshot) error {
	path := s.path("warm", key, ".snap")
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := platform.WriteSnapshotFile(tmp, &platform.SnapshotFile{Meta: map[string]string{"key": key}, Snap: snap}); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Len counts the persisted entries per class, for startup logging.
func (s *Store) Len() (solves, demands, warms int, err error) {
	count := func(class string) (int, error) {
		entries, err := os.ReadDir(filepath.Join(s.dir, class))
		if err != nil {
			return 0, fmt.Errorf("store: %w", err)
		}
		n := 0
		for _, e := range entries {
			if !e.IsDir() {
				n++
			}
		}
		return n, nil
	}
	if solves, err = count("solve"); err != nil {
		return
	}
	if demands, err = count("demand"); err != nil {
		return
	}
	warms, err = count("warm")
	return
}

// writeAtomic writes data to path via a temp file and rename.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
