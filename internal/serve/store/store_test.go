package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestSolveDemandRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "solve|3l-mf|multi:sync|sig={...}|dur=2.5|exact=false"
	op := exp.OperatingPoint{FreqHz: 1.1e6 / 3, VoltageV: 0.7000000000000001}
	if _, ok, err := s.GetSolve(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := s.PutSolve(key, op); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSolve(key)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if got != op {
		// Bit-exactness matters: the determinism contract hangs on it.
		t.Fatalf("round trip changed the point: %v != %v", got, op)
	}

	d := 123456.78900000001
	if err := s.PutDemand("demand|x", d); err != nil {
		t.Fatal(err)
	}
	gd, ok, err := s.GetDemand("demand|x")
	if err != nil || !ok || gd != d {
		t.Fatalf("demand round trip: %v/%v/%v", gd, ok, err)
	}

	hits, misses, puts := s.Stats()
	if hits != 2 || misses != 1 || puts != 2 {
		t.Fatalf("stats %d/%d/%d, want 2/1/2", hits, misses, puts)
	}
}

func TestReopenedStoreServesEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	op := exp.OperatingPoint{FreqHz: 2.2e6, VoltageV: 0.8}
	if err := s1.PutSolve("k", op); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.GetSolve("k")
	if err != nil || !ok || got != op {
		t.Fatalf("reopened store: %v/%v/%v", got, ok, err)
	}
	solves, demands, warms, err := s2.Len()
	if err != nil || solves != 1 || demands != 0 || warms != 0 {
		t.Fatalf("len %d/%d/%d err=%v, want 1/0/0", solves, demands, warms, err)
	}
}

func TestKeyMismatchIsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSolve("key-a", exp.OperatingPoint{FreqHz: 1e6, VoltageV: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Move the entry onto key-b's content address: the stored key no longer
	// matches the requested one, which must surface, not silently serve a
	// wrong operating point.
	a := s.path("solve", "key-a", ".json")
	b := s.path("solve", "key-b", ".json")
	if err := os.Rename(a, b); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetSolve("key-b"); ok || err == nil || !strings.Contains(err.Error(), "different key") {
		t.Fatalf("misplaced entry: ok=%v err=%v", ok, err)
	}

	// A truncated entry is corruption, not a miss.
	if err := os.WriteFile(b, []byte(`{"key":"key-b","freq`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetSolve("key-b"); ok || err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("truncated entry: ok=%v err=%v", ok, err)
	}
}

func TestAtomicWriteLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.PutDemand("k", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "demand"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("demand dir holds %v, want exactly one entry", names)
	}
}
