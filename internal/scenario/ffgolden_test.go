package scenario

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/platform"
	"repro/internal/power"
)

// ffGoldenArchs is the full architecture column of the fast-forward golden
// matrix. MC-nosync is the one the spin-loop engine was built for; SC and MC
// pin that the engine never mis-fires on the quiescence-dominated variants.
var ffGoldenArchs = []power.Arch{power.SC, power.MCNoSync, power.MC}

// ffGoldenClockHz keeps the runs idle/spin-dominated (the regime both
// engines target) while staying affordable in exact mode.
const ffGoldenClockHz = 4e6

// bundledScenarios loads every scenario file shipped in scenarios/.
func bundledScenarios(t *testing.T) []*Scenario {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(bundledDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) < 5 {
		t.Fatalf("found %d bundled scenarios, want >= 5", len(paths))
	}
	var scns []*Scenario
	for _, path := range paths {
		scn, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		scns = append(scns, scn)
	}
	return scns
}

// spinApp picks the scenario application with the richest busy-wait
// structure under the no-sync lowering: 3L-MMD and RP-CLASS have polling
// consumer stages, 3L-MF is fully replicated and barely spins.
func spinApp(scn *Scenario) string {
	for _, prefer := range []string{apps.MMD3L, apps.RPClass} {
		for _, app := range scn.Apps {
			if app == prefer {
				return app
			}
		}
	}
	return scn.Apps[0]
}

// runFFGolden runs one scenario cell once in the given mode and returns the
// platform (no tracer attached: the regime in which the spin engine leaps).
func runFFGolden(t *testing.T, scn *Scenario, app string, arch power.Arch, exact bool) *platform.Platform {
	t.Helper()
	opts := scn.Options()
	opts.Duration = 0.3
	sig, err := opts.Record(app)
	if err != nil {
		t.Fatal(err)
	}
	v, err := apps.Build(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(sig, ffGoldenClockHz, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.SetExact(exact)
	if err := p.RunSeconds(opts.Duration); err != nil {
		t.Fatal(err)
	}
	return p
}

// assertFFEquivalent asserts bit-identity of every observable output of an
// exact and a fast-forwarded run: counters (hence every power figure), cycle
// position, per-core architectural state, busy statistics, debug and error
// streams, overruns and violations.
func assertFFEquivalent(t *testing.T, cores int, exact, fast *platform.Platform) {
	t.Helper()
	if *exact.Counters() != *fast.Counters() {
		t.Errorf("counters diverge:\nexact: %+v\nfast:  %+v", *exact.Counters(), *fast.Counters())
	}
	if e, f := exact.Cycle(), fast.Cycle(); e != f {
		t.Errorf("cycle diverges: exact %d, fast %d", e, f)
	}
	for c := 0; c < cores; c++ {
		if e, f := exact.CoreBusy(c), fast.CoreBusy(c); e != f {
			t.Errorf("core %d busy diverges: exact %d, fast %d", c, e, f)
		}
		if e, f := exact.CoreRegs(c), fast.CoreRegs(c); e != f {
			t.Errorf("core %d registers diverge", c)
		}
		if e, f := exact.CoreState(c), fast.CoreState(c); e != f {
			t.Errorf("core %d state diverges: exact %v, fast %v", c, e, f)
		}
	}
	if e, f := exact.MaxSampleBusy(), fast.MaxSampleBusy(); e != f {
		t.Errorf("max sample busy diverges: exact %d, fast %d", e, f)
	}
	if e, f := exact.Overruns(), fast.Overruns(); e != f {
		t.Errorf("overruns diverge: exact %d, fast %d", e, f)
	}
	ed, fd := exact.Debug(), fast.Debug()
	if len(ed) != len(fd) {
		t.Errorf("debug streams diverge: exact %d entries, fast %d", len(ed), len(fd))
	} else {
		for i := range ed {
			if ed[i] != fd[i] {
				t.Errorf("debug streams diverge at entry %d: exact %+v, fast %+v", i, ed[i], fd[i])
				break
			}
		}
	}
	ee, fe := exact.ErrCodes(), fast.ErrCodes()
	if len(ee) != len(fe) {
		t.Errorf("error streams diverge: exact %d entries, fast %d", len(ee), len(fe))
	} else {
		for i := range ee {
			if ee[i] != fe[i] {
				t.Errorf("error streams diverge at entry %d: exact %+v, fast %+v", i, ee[i], fe[i])
				break
			}
		}
	}
	ev, fv := exact.Violations(), fast.Violations()
	if len(ev) != len(fv) {
		t.Errorf("violations diverge: exact %v, fast %v", ev, fv)
	}
	if exact.FFSkippedCycles() != 0 || exact.SpinSkippedCycles() != 0 {
		t.Errorf("exact mode skipped cycles: idle %d, spin %d; want 0",
			exact.FFSkippedCycles(), exact.SpinSkippedCycles())
	}
	if exact.BlockCycles() != 0 {
		t.Errorf("exact mode ran %d cycles on the block engine; want 0", exact.BlockCycles())
	}
}

// TestScenarioFastForwardGoldenEquivalence is the spin-engine acceptance
// matrix: across every bundled scenario and all three architecture
// variants, the fast-forwarded run (idle and spin-loop leaps) must be
// bit-identical to -exact. On MC-nosync with polling consumer stages the
// spin engine must actually have engaged — the column this PR exists for.
func TestScenarioFastForwardGoldenEquivalence(t *testing.T) {
	for _, scn := range bundledScenarios(t) {
		app := spinApp(scn)
		for _, arch := range ffGoldenArchs {
			scn, arch := scn, arch
			t.Run(fmt.Sprintf("%s/%s/%v", scn.Name, app, arch), func(t *testing.T) {
				t.Parallel()
				exact := runFFGolden(t, scn, app, arch, true)
				fast := runFFGolden(t, scn, app, arch, false)
				assertFFEquivalent(t, exact.PowerConfig().NumCores, exact, fast)
				// How much is skippable depends on the workload (a 400 Hz
				// EMG grid is genuinely busier than 250 Hz ECG); what is
				// invariant is that some of it is, and that it never costs
				// correctness.
				if total := fast.FFSkippedCycles() + fast.SpinSkippedCycles(); total == 0 {
					t.Error("fast-forward never engaged")
				}
				if arch == power.MCNoSync && app != apps.MF3L && fast.SpinSkippedCycles() == 0 {
					t.Error("spin fast-forward never engaged on a busy-wait scenario cell")
				}
				if arch == power.SC && fast.BlockCycles() == 0 {
					t.Error("block engine never engaged on the single-core cell")
				}
			})
		}
	}
}

// TestScenarioSolveExactMatchesFast closes the loop at the experiment layer:
// for every bundled scenario and architecture, the solved operating point
// (the quantity every figure depends on) must be identical — including
// identical errors — whether the solver simulated with fast-forward or
// cycle-by-cycle. Both sides run the from-scratch reference, so the only
// varying ingredient is the engine under test.
func TestScenarioSolveExactMatchesFast(t *testing.T) {
	ctx := context.Background()
	for _, scn := range bundledScenarios(t) {
		app := spinApp(scn)
		for _, arch := range ffGoldenArchs {
			scn, arch := scn, arch
			t.Run(fmt.Sprintf("%s/%s/%v", scn.Name, app, arch), func(t *testing.T) {
				t.Parallel()
				opts := scn.Options()
				opts.Duration = 0.5
				opts.ProbeDuration = 0.4
				sig, err := opts.Record(app)
				if err != nil {
					t.Fatal(err)
				}
				exactOpts := opts
				exactOpts.Exact = true
				want, wantErr := exp.SolveOperatingPointFromScratch(ctx, app, arch, sig, exactOpts)
				got, gotErr := exp.SolveOperatingPointFromScratch(ctx, app, arch, sig, opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("exact err %v, fast err %v", wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Errorf("errors differ:\nexact: %v\nfast:  %v", wantErr, gotErr)
					}
					return
				}
				if want != got {
					t.Errorf("operating points diverge: exact %.4f MHz / %.2f V, fast %.4f MHz / %.2f V",
						want.FreqHz/1e6, want.VoltageV, got.FreqHz/1e6, got.VoltageV)
				}
			})
		}
	}
}
