package scenario

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/exp"
	"repro/internal/power"
)

// TestSessionSolvesMatchFromScratch is the acceptance matrix for the
// session redesign: across every bundled scenario, every application the
// scenario exercises, and all three architecture variants, the fork-based
// session solve must produce bit-identical operating points (or identical
// errors) to the from-scratch reference. One session is shared across the
// whole matrix, so cross-scenario cache keying is exercised too: a record or
// probe cached for one scenario must never leak into another's solve.
func TestSessionSolvesMatchFromScratch(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(bundledDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) < 5 {
		t.Fatalf("found %d bundled scenarios, want >= 5", len(paths))
	}
	sess := exp.NewSession(nil)
	ctx := context.Background()
	for _, path := range paths {
		scn, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		opts := scn.Options()
		opts.Duration = 0.8
		opts.ProbeDuration = 0.6
		for _, app := range scn.Apps {
			for _, arch := range []power.Arch{power.SC, power.MCNoSync, power.MC} {
				app, arch, opts := app, arch, opts
				t.Run(fmt.Sprintf("%s/%s/%v", scn.Name, app, arch), func(t *testing.T) {
					t.Parallel()
					sig, err := opts.Record(app)
					if err != nil {
						t.Fatal(err)
					}
					want, wantErr := exp.SolveOperatingPointFromScratch(ctx, app, arch, sig, opts)
					got, gotErr := sess.SolveOperatingPoint(ctx, app, arch, sig, opts)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("scratch err %v, session err %v", wantErr, gotErr)
					}
					if wantErr != nil {
						if wantErr.Error() != gotErr.Error() {
							t.Errorf("errors differ:\nscratch: %v\nsession: %v", wantErr, gotErr)
						}
						return
					}
					if want != got {
						t.Errorf("operating points diverge: scratch %.4f MHz / %.2f V, session %.4f MHz / %.2f V",
							want.FreqHz/1e6, want.VoltageV, got.FreqHz/1e6, got.VoltageV)
					}
				})
			}
		}
	}
}
