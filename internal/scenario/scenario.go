// Package scenario loads declarative experiment scenarios: JSON files that
// select a signal kind, per-channel sampling rates, seed, pathological
// fraction, simulated durations, and which benchmark applications and
// architecture variants to solve — turning every new workload into a config
// file instead of a code change (ROADMAP: "scenario files selecting traces,
// rates and per-app parameters").
//
// A scenario file looks like:
//
//	{
//	  "name": "emg-burst",
//	  "description": "surface-EMG burst activity at 400 Hz",
//	  "signal": {
//	    "kind": "emg",
//	    "sample_rate_hz": 400,
//	    "rate_div": [1, 1, 1],
//	    "seed": 1,
//	    "event_rate_hz": 0.6,
//	    "pathological_frac": 0.2,
//	    "amplitude": 900,
//	    "noise_amp": 12
//	  },
//	  "duration_s": 10,
//	  "probe_s": 2.5,
//	  "apps": ["3l-mf", "3l-mmd"],
//	  "archs": ["sc", "mc"]
//	}
//
// A "sync" stanza declares custom sync-architecture descriptors (hardware
// sync-unit configurations, see power.Arch) and names them for use in
// "archs" — alongside the built-in "sc", "mc" and "mc-nosync" presets:
//
//	"sync": [
//	  {
//	    "name": "split-pipeline",
//	    "groups": ["0x0F", "0x18"],
//	    "timeout_cycles": 50000000
//	  }
//	],
//	"archs": ["sc", "mc", "split-pipeline"]
//
// Each entry defines a multi-core sync-unit descriptor: "groups" lists the
// per-group core membership masks (hex strings or numbers; omitted means
// the single implicit all-core barrier) and "timeout_cycles" arms the
// per-core sync timeout (0 disables it). Names are registered process-wide
// (power.RegisterArch): re-declaring the same binding is idempotent,
// renaming a different descriptor to a taken name is an error.
//
// Omitted signal fields take the kind's defaults; omitted durations the
// experiment defaults; omitted apps/archs the full paper grid. Unknown
// fields are rejected — a typoed knob must not silently fall back. One
// deliberate exception, inherited from signal.Config's comparable-cache-key
// representation: a zero sample_rate_hz, event_rate_hz, amplitude or
// noise_amp means "kind default" (use a small non-zero noise_amp for a
// near-noiseless record); seed is a pointer field, so an explicit 0 is a
// valid seed.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/signal"
)

// Scenario is one loaded and validated experiment scenario.
type Scenario struct {
	Name        string
	Description string
	// Signal is the validated, normalized base signal configuration.
	Signal signal.Config
	// DurationS is the simulated measurement time per grid cell, seconds.
	DurationS float64
	// ProbeS is the simulated time per operating-point probe, seconds.
	ProbeS float64
	// Apps lists the benchmark applications the scenario exercises.
	Apps []string
	// Archs lists the architecture variants solved per application.
	Archs []power.Arch
}

// fileFormat is the on-disk schema. Pointer fields distinguish "omitted"
// from an explicit zero.
type fileFormat struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	Signal      signalFormat `json:"signal"`
	DurationS   *float64     `json:"duration_s"`
	ProbeS      *float64     `json:"probe_s"`
	Apps        []string     `json:"apps"`
	Archs       []string     `json:"archs"`
	Sync        []syncFormat `json:"sync"`
}

// syncFormat declares one custom sync-architecture descriptor.
type syncFormat struct {
	Name          string     `json:"name"`
	Groups        []maskWord `json:"groups"`
	TimeoutCycles uint64     `json:"timeout_cycles"`
}

// maskWord is a core-membership bitmask that reads as either a JSON number
// or a string in any Go integer syntax ("0x0F" being the natural spelling).
type maskWord uint8

func (m *maskWord) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 8)
		if err != nil {
			return fmt.Errorf("bad group mask %q: %w", s, err)
		}
		*m = maskWord(v)
		return nil
	}
	var v uint8
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("group mask %s is neither a number nor a mask string", data)
	}
	*m = maskWord(v)
	return nil
}

type signalFormat struct {
	Kind         string  `json:"kind"`
	SampleRateHz float64 `json:"sample_rate_hz"`
	RateDiv      []int   `json:"rate_div"`
	// Seed is a pointer so an explicit 0 (a valid generator seed) is
	// distinguishable from an omitted field (which defaults to 1, the
	// experiment default).
	Seed             *int64  `json:"seed"`
	PathologicalFrac float64 `json:"pathological_frac"`
	EventRateHz      float64 `json:"event_rate_hz"`
	Amplitude        float64 `json:"amplitude"`
	NoiseAmp         float64 `json:"noise_amp"`
}

// registerSync validates one "sync" stanza entry and registers it with the
// process-wide descriptor registry, so "archs" (and the CLIs' -sync flag)
// can select it by name.
func registerSync(sf syncFormat) error {
	if sf.Name == "" {
		return fmt.Errorf("sync descriptor missing \"name\"")
	}
	if strings.ContainsAny(sf.Name, " \t\n,=") {
		return fmt.Errorf("sync descriptor name %q contains whitespace or spec punctuation", sf.Name)
	}
	if len(sf.Groups) > power.MaxSyncGroups {
		return fmt.Errorf("sync descriptor %q declares %d groups, the hardware supports %d",
			sf.Name, len(sf.Groups), power.MaxSyncGroups)
	}
	a := power.Arch{Multi: true, TimeoutCycles: sf.TimeoutCycles}
	for g, m := range sf.Groups {
		a.Groups[g] = uint8(m)
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("sync descriptor %q: %w", sf.Name, err)
	}
	return power.RegisterArch(sf.Name, a)
}

// Load reads and validates one scenario file.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// Parse reads and validates one scenario from r.
func Parse(r io.Reader) (*Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Strict decoding rejects unknown fields but silently keeps the last of
	// two duplicate keys — a typo'd override would lose without a trace, so
	// duplicates are rejected first, with the offending path and position.
	if err := checkDuplicateKeys(data); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ff fileFormat
	if err := dec.Decode(&ff); err != nil {
		return nil, err
	}
	if ff.Name == "" {
		return nil, fmt.Errorf("missing \"name\"")
	}
	if strings.ContainsAny(ff.Name, " \t\n") {
		return nil, fmt.Errorf("name %q contains whitespace", ff.Name)
	}

	cfg := signal.Config{
		Kind:             signal.Kind(ff.Signal.Kind),
		SampleRateHz:     ff.Signal.SampleRateHz,
		Seed:             1,
		PathologicalFrac: ff.Signal.PathologicalFrac,
		EventRateHz:      ff.Signal.EventRateHz,
		Amplitude:        ff.Signal.Amplitude,
		NoiseAmp:         ff.Signal.NoiseAmp,
	}
	if ff.Signal.Seed != nil {
		cfg.Seed = *ff.Signal.Seed
	}
	if len(ff.Signal.RateDiv) > signal.MaxChannels {
		return nil, fmt.Errorf("rate_div has %d entries, the platform ADC has %d channels",
			len(ff.Signal.RateDiv), signal.MaxChannels)
	}
	copy(cfg.RateDiv[:], ff.Signal.RateDiv)
	cfg, err = signal.Normalize(cfg)
	if err != nil {
		return nil, err
	}

	for _, sf := range ff.Sync {
		if err := registerSync(sf); err != nil {
			return nil, err
		}
	}

	s := &Scenario{
		Name:        ff.Name,
		Description: ff.Description,
		Signal:      cfg,
		DurationS:   10,
		ProbeS:      2.5,
		Apps:        ff.Apps,
		Archs:       power.PaperArchs(),
	}
	if ff.DurationS != nil {
		s.DurationS = *ff.DurationS
	}
	if ff.ProbeS != nil {
		s.ProbeS = *ff.ProbeS
	}
	if s.DurationS <= 0 || s.ProbeS <= 0 {
		return nil, fmt.Errorf("non-positive duration_s (%v) or probe_s (%v)", s.DurationS, s.ProbeS)
	}
	if len(s.Apps) == 0 {
		s.Apps = append([]string(nil), apps.Names...)
	}
	for i, app := range s.Apps {
		known := false
		for _, n := range apps.Names {
			known = known || n == app
		}
		if !known {
			return nil, fmt.Errorf("apps[%d]: unknown app %q (known: %v)", i, app, apps.Names)
		}
	}
	if len(ff.Archs) > 0 {
		s.Archs = s.Archs[:0]
		for i, name := range ff.Archs {
			arch, err := power.ParseArchSpec(name)
			if err != nil {
				return nil, fmt.Errorf("archs[%d]: %w", i, err)
			}
			s.Archs = append(s.Archs, arch)
		}
	}
	return s, nil
}

// checkDuplicateKeys walks the document's token stream and rejects objects
// that bind the same key twice, reporting the dotted path and byte offset of
// the second binding.
func checkDuplicateKeys(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := checkDupValue(dec, nil); err != nil {
		return err
	}
	// Trailing garbage after the document is the strict decoder's problem.
	return nil
}

// checkDupValue consumes one JSON value from dec, recursing into containers.
// path holds the dotted location of the value being read.
func checkDupValue(dec *json.Decoder, path []string) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return nil // scalar
	}
	switch delim {
	case '{':
		seen := map[string]bool{}
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return err
			}
			key, _ := keyTok.(string)
			if seen[key] {
				return fmt.Errorf("duplicate key %q at byte %d (the first binding would be silently overridden)",
					strings.Join(append(path, key), "."), dec.InputOffset())
			}
			seen[key] = true
			if err := checkDupValue(dec, append(path, key)); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume '}'
		return err
	case '[':
		for i := 0; dec.More(); i++ {
			if err := checkDupValue(dec, append(path, fmt.Sprintf("[%d]", i))); err != nil {
				return err
			}
		}
		_, err = dec.Token() // consume ']'
		return err
	}
	return nil
}

// Options converts the scenario into experiment options. Seed and
// PathoFrac are lifted out of the signal configuration because they are
// exp's sweep axes (exp.Options re-applies them onto Source).
func (s *Scenario) Options() exp.Options {
	return exp.Options{
		Duration:      s.DurationS,
		ProbeDuration: s.ProbeS,
		PathoFrac:     s.Signal.PathologicalFrac,
		Seed:          s.Signal.Seed,
		Source:        s.Signal,
		Scenario:      s.Name,
	}
}

// Points builds the scenario's (app x arch) experiment grid under opts
// (usually s.Options(), possibly with Exact or durations overridden).
func (s *Scenario) Points(opts exp.Options) []exp.Point {
	return exp.Grid(s.Apps, s.Archs, opts)
}
