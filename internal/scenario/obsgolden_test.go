package scenario

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/power"
)

// runObsGolden runs one scenario cell in fast mode with a full observability
// sink (timeline + registry) attached — the configuration -timeline-out and
// -metrics-out produce. The fast-forward engines must stay engaged: unlike
// the tracer, the sink observes only boundary events, so it never forces the
// cycle-by-cycle path.
func runObsGolden(t *testing.T, scn *Scenario, app string, arch power.Arch) (*platform.Platform, *obs.Sink) {
	t.Helper()
	opts := scn.Options()
	opts.Duration = 0.3
	sig, err := opts.Record(app)
	if err != nil {
		t.Fatal(err)
	}
	v, err := apps.Build(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(sig, ffGoldenClockHz, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.SetExact(false)
	sink := obs.NewSink(obs.NewTimeline(obs.DefaultTimelineCap), obs.NewRegistry())
	p.SetObserver(sink)
	if err := p.RunSeconds(opts.Duration); err != nil {
		t.Fatal(err)
	}
	return p, sink
}

// assertObsEquivalent asserts bit-identity of every observable output of an
// unobserved and an observed run — including the fast-forward engines' own
// statistics, so attaching the sink provably did not change which engine
// simulated which cycle.
func assertObsEquivalent(t *testing.T, cores int, plain, observed *platform.Platform) {
	t.Helper()
	if *plain.Counters() != *observed.Counters() {
		t.Errorf("counters diverge:\nplain:    %+v\nobserved: %+v", *plain.Counters(), *observed.Counters())
	}
	if e, f := plain.Cycle(), observed.Cycle(); e != f {
		t.Errorf("cycle diverges: plain %d, observed %d", e, f)
	}
	for c := 0; c < cores; c++ {
		if e, f := plain.CoreBusy(c), observed.CoreBusy(c); e != f {
			t.Errorf("core %d busy diverges: plain %d, observed %d", c, e, f)
		}
		if e, f := plain.CoreRegs(c), observed.CoreRegs(c); e != f {
			t.Errorf("core %d registers diverge", c)
		}
		if e, f := plain.CoreState(c), observed.CoreState(c); e != f {
			t.Errorf("core %d state diverges: plain %v, observed %v", c, e, f)
		}
	}
	if e, f := plain.MaxSampleBusy(), observed.MaxSampleBusy(); e != f {
		t.Errorf("max sample busy diverges: plain %d, observed %d", e, f)
	}
	if e, f := plain.Overruns(), observed.Overruns(); e != f {
		t.Errorf("overruns diverge: plain %d, observed %d", e, f)
	}
	ed, fd := plain.Debug(), observed.Debug()
	if len(ed) != len(fd) {
		t.Errorf("debug streams diverge: plain %d entries, observed %d", len(ed), len(fd))
	} else {
		for i := range ed {
			if ed[i] != fd[i] {
				t.Errorf("debug streams diverge at entry %d: plain %+v, observed %+v", i, ed[i], fd[i])
				break
			}
		}
	}
	ee, fe := plain.ErrCodes(), observed.ErrCodes()
	if len(ee) != len(fe) {
		t.Errorf("error streams diverge: plain %d entries, observed %d", len(ee), len(fe))
	} else {
		for i := range ee {
			if ee[i] != fe[i] {
				t.Errorf("error streams diverge at entry %d: plain %+v, observed %+v", i, ee[i], fe[i])
				break
			}
		}
	}
	if ev, fv := plain.Violations(), observed.Violations(); len(ev) != len(fv) {
		t.Errorf("violations diverge: plain %v, observed %v", ev, fv)
	}
	// Engine engagement must be identical, not merely nonzero: the sink must
	// not shorten, split or suppress a single leap or stride.
	if e, f := plain.FFSkippedCycles(), observed.FFSkippedCycles(); e != f {
		t.Errorf("idle fast-forward diverges: plain %d skipped, observed %d", e, f)
	}
	if e, f := plain.SpinSkippedCycles(), observed.SpinSkippedCycles(); e != f {
		t.Errorf("spin fast-forward diverges: plain %d skipped, observed %d", e, f)
	}
	if e, f := plain.BlockCycles(), observed.BlockCycles(); e != f {
		t.Errorf("block engine diverges: plain %d cycles, observed %d", e, f)
	}
}

// TestScenarioObservedGoldenEquivalence is the observability acceptance
// matrix: across every bundled scenario and all three architecture variants,
// a fast run with the timeline sink attached must be bit-identical to the
// same run unobserved, with every fast-path engine exactly as engaged. The
// engagement floor mirrors the fast-forward golden matrix: the observed run
// must still leap (and, on the single-core column, stride).
func TestScenarioObservedGoldenEquivalence(t *testing.T) {
	for _, scn := range bundledScenarios(t) {
		app := spinApp(scn)
		for _, arch := range ffGoldenArchs {
			scn, arch := scn, arch
			t.Run(fmt.Sprintf("%s/%s/%v", scn.Name, app, arch), func(t *testing.T) {
				t.Parallel()
				plain := runFFGolden(t, scn, app, arch, false)
				observed, sink := runObsGolden(t, scn, app, arch)
				assertObsEquivalent(t, plain.PowerConfig().NumCores, plain, observed)
				if total := observed.FFSkippedCycles() + observed.SpinSkippedCycles(); total == 0 {
					t.Error("fast-forward never engaged under observation")
				}
				if arch == power.MCNoSync && app != apps.MF3L && observed.SpinSkippedCycles() == 0 {
					t.Error("spin fast-forward never engaged under observation on a busy-wait cell")
				}
				if arch == power.SC && observed.BlockCycles() == 0 {
					t.Error("block engine never engaged under observation on the single-core cell")
				}
				// The sink must actually have seen the run: the timeline
				// carries events and every engaged engine recorded its
				// leap-length histogram.
				if len(sink.Events()) == 0 {
					t.Error("timeline recorded no events")
				}
				reg := sink.Registry()
				if h, ok := reg.Histogram("engine.idle_leap_cycles"); observed.FFSkippedCycles() > 0 && (!ok || h.Count == 0) {
					t.Error("idle leaps engaged but engine.idle_leap_cycles histogram is empty")
				}
				if h, ok := reg.Histogram("engine.spin_leap_cycles"); observed.SpinSkippedCycles() > 0 && (!ok || h.Count == 0) {
					t.Error("spin leaps engaged but engine.spin_leap_cycles histogram is empty")
				}
				if h, ok := reg.Histogram("engine.block_stride_cycles"); observed.BlockCycles() > 0 && (!ok || h.Count == 0) {
					t.Error("block strides engaged but engine.block_stride_cycles histogram is empty")
				}
			})
		}
	}
}

// TestScenarioSolveObservedMatchesUnobserved closes the loop at the
// experiment layer: for every bundled scenario and architecture, the solved
// operating point (the quantity every figure depends on) must be identical —
// including identical errors — whether or not the solver's platforms carried
// an observability sink.
func TestScenarioSolveObservedMatchesUnobserved(t *testing.T) {
	ctx := context.Background()
	for _, scn := range bundledScenarios(t) {
		app := spinApp(scn)
		for _, arch := range ffGoldenArchs {
			scn, arch := scn, arch
			t.Run(fmt.Sprintf("%s/%s/%v", scn.Name, app, arch), func(t *testing.T) {
				t.Parallel()
				opts := scn.Options()
				opts.Duration = 0.5
				opts.ProbeDuration = 0.4
				sig, err := opts.Record(app)
				if err != nil {
					t.Fatal(err)
				}
				obsOpts := opts
				obsOpts.Obs = obs.NewSink(obs.NewTimeline(obs.DefaultTimelineCap), obs.NewRegistry())
				want, wantErr := exp.SolveOperatingPointFromScratch(ctx, app, arch, sig, opts)
				got, gotErr := exp.SolveOperatingPointFromScratch(ctx, app, arch, sig, obsOpts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("unobserved err %v, observed err %v", wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Errorf("errors differ:\nunobserved: %v\nobserved:   %v", wantErr, gotErr)
					}
					return
				}
				if want != got {
					t.Errorf("operating points diverge: unobserved %.4f MHz / %.2f V, observed %.4f MHz / %.2f V",
						want.FreqHz/1e6, want.VoltageV, got.FreqHz/1e6, got.VoltageV)
				}
			})
		}
	}
}
