package scenario

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/signal"
)

// bundledDir is the checked-in scenario directory, relative to this package.
const bundledDir = "../../scenarios"

func loadBundled(t *testing.T) map[string]*Scenario {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(bundledDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("found %d bundled scenarios, want >= 5 (%v)", len(paths), paths)
	}
	sort.Strings(paths)
	out := map[string]*Scenario{}
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		base := strings.TrimSuffix(filepath.Base(p), ".json")
		if s.Name != base {
			t.Errorf("%s declares name %q; file name and scenario name must match", p, s.Name)
		}
		if _, dup := out[s.Name]; dup {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		out[s.Name] = s
	}
	return out
}

// TestBundledScenariosCoverTheKinds pins the bundle's breadth: at least one
// ECG, one EMG, one PPG scenario and one multi-rate mix.
func TestBundledScenariosCoverTheKinds(t *testing.T) {
	scns := loadBundled(t)
	kinds := map[signal.Kind]bool{}
	multiRate := false
	for _, s := range scns {
		kinds[s.Signal.Kind] = true
		for _, d := range s.Signal.RateDiv {
			multiRate = multiRate || d > 1
		}
	}
	for _, k := range []signal.Kind{signal.KindECG, signal.KindEMG, signal.KindPPG} {
		if !kinds[k] {
			t.Errorf("no bundled scenario exercises kind %q", k)
		}
	}
	if !multiRate {
		t.Error("no bundled scenario uses per-channel rate divisors")
	}
}

// TestBundledScenariosSolve loads every checked-in scenario and solves its
// first (app, arch) cell at short duration: a scenario that cannot reach a
// real-time operating point is a broken config and must not ship.
func TestBundledScenariosSolve(t *testing.T) {
	for name, s := range loadBundled(t) {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opts := s.Options()
			opts.Duration = 0.8
			opts.ProbeDuration = 0.6
			app, arch := s.Apps[0], s.Archs[0]
			sig, err := opts.Record(app)
			if err != nil {
				t.Fatal(err)
			}
			op, err := exp.SolveOperatingPoint(app, arch, sig, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", app, arch, err)
			}
			if op.FreqHz < power.MinClockHz || op.VoltageV <= 0 {
				t.Errorf("%s/%v solved to an implausible point %v", app, arch, op)
			}
		})
	}
}

// TestScenarioTableDeterministic pins the acceptance bar for scenario
// sweeps: the rendered operating-point table of a scenario grid is
// byte-identical between a serial and a parallel sweep.
func TestScenarioTableDeterministic(t *testing.T) {
	s, err := Load(filepath.Join(bundledDir, "ppg-motion.json"))
	if err != nil {
		t.Fatal(err)
	}
	opts := s.Options()
	opts.Duration = 0.8
	opts.ProbeDuration = 0.6
	points := s.Points(opts)
	render := func(jobs int) string {
		ms, err := exp.NewSweep(jobs, power.DefaultParams()).Run(context.Background(), points)
		if err != nil {
			t.Fatal(err)
		}
		return exp.FormatPoints(points, ms)
	}
	if serial, parallel := render(1), render(6); serial != parallel {
		t.Errorf("jobs=1 and jobs=6 scenario tables differ:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

func TestParseValidation(t *testing.T) {
	cases := map[string]string{
		"missing name":   `{"signal": {"kind": "ecg"}}`,
		"unknown field":  `{"name": "x", "signal": {"kind": "ecg"}, "durations": 3}`,
		"unknown kind":   `{"name": "x", "signal": {"kind": "eeg"}}`,
		"unknown app":    `{"name": "x", "signal": {"kind": "ecg"}, "apps": ["4l-mf"]}`,
		"unknown arch":   `{"name": "x", "signal": {"kind": "ecg"}, "archs": ["gpu"]}`,
		"bad patho":      `{"name": "x", "signal": {"kind": "ecg", "pathological_frac": 2}}`,
		"bad divisor":    `{"name": "x", "signal": {"kind": "ecg", "rate_div": [1, -1, 1]}}`,
		"too many chans": `{"name": "x", "signal": {"kind": "ecg", "rate_div": [1, 1, 1, 1]}}`,
		"zero duration":  `{"name": "x", "signal": {"kind": "ecg"}, "duration_s": 0}`,
	}
	for label, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
}

// TestRejectDuplicateKeys: strict decoding alone keeps the last of two
// duplicate bindings, so a typo'd override silently loses; the parser must
// reject the document and point at the duplicate.
func TestRejectDuplicateKeys(t *testing.T) {
	cases := map[string]struct {
		doc  string
		path string
	}{
		"top level": {
			`{"name": "x", "duration_s": 3, "signal": {"kind": "ecg"}, "duration_s": 5}`,
			`"duration_s"`,
		},
		"nested in signal": {
			`{"name": "x", "signal": {"kind": "ecg", "seed": 1, "seed": 2}}`,
			`"signal.seed"`,
		},
		"object inside array": {
			`{"name": "x", "signal": {"kind": "ecg"}, "apps": [{"a": 1, "a": 2}]}`,
			`"apps.[0].a"`,
		},
	}
	for label, tc := range cases {
		_, err := Parse(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted %s", label, tc.doc)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate key "+tc.path) || !strings.Contains(err.Error(), "at byte") {
			t.Errorf("%s: error %q does not name the duplicate path %s with its position", label, err, tc.path)
		}
	}
	// Equal keys in different objects are not duplicates.
	doc := `{"name": "x", "signal": {"kind": "ecg", "seed": 1}, "duration_s": 3}`
	if _, err := Parse(strings.NewReader(doc)); err != nil {
		t.Errorf("distinct objects sharing key names rejected: %v", err)
	}
}

// TestPositionalAppArchErrors: unknown grid entries must name their index so
// long lists are debuggable.
func TestPositionalAppArchErrors(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name": "x", "signal": {"kind": "ecg"}, "apps": ["3l-mf", "4l-mf"]}`))
	if err == nil || !strings.Contains(err.Error(), "apps[1]") {
		t.Errorf("unknown app error lacks its position: %v", err)
	}
	_, err = Parse(strings.NewReader(`{"name": "x", "signal": {"kind": "ecg"}, "archs": ["sc", "mc", "gpu"]}`))
	if err == nil || !strings.Contains(err.Error(), "archs[2]") {
		t.Errorf("unknown arch error lacks its position: %v", err)
	}
}

// TestExplicitZeroSeed: seed 0 is a valid generator seed and must not be
// silently rewritten to the omitted-field default of 1.
func TestExplicitZeroSeed(t *testing.T) {
	s, err := Parse(strings.NewReader(`{"name": "z", "signal": {"kind": "ecg", "seed": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Signal.Seed != 0 {
		t.Errorf("explicit seed 0 loaded as %d", s.Signal.Seed)
	}
}

// TestSyncStanza: a "sync" entry registers a named descriptor usable in
// "archs", masks read as hex strings or numbers, and re-declaring the same
// binding (scenario files are loaded repeatedly) is idempotent.
func TestSyncStanza(t *testing.T) {
	doc := `{
		"name": "x", "signal": {"kind": "ecg"}, "apps": ["3l-mmd"],
		"sync": [{"name": "stanza-test", "groups": ["0x0F", 24], "timeout_cycles": 1000}],
		"archs": ["stanza-test", "mc"]
	}`
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := power.Arch{Multi: true, Groups: [power.MaxSyncGroups]uint8{0x0F, 0x18}, TimeoutCycles: 1000}
	if s.Archs[0] != want {
		t.Errorf("archs[0] = %+v, want %+v", s.Archs[0], want)
	}
	if s.Archs[1] != power.MC {
		t.Errorf("archs[1] = %+v, want the MC preset", s.Archs[1])
	}
	// Idempotent re-registration: the same file parses again.
	if _, err := Parse(strings.NewReader(doc)); err != nil {
		t.Errorf("re-parsing the same stanza failed: %v", err)
	}
	// The registered name resolves process-wide (the CLIs' -sync/-arch path).
	if got, ok := power.ArchByName("stanza-test"); !ok || got != want {
		t.Errorf("ArchByName = %+v,%v after stanza registration", got, ok)
	}
}

func TestSyncStanzaValidation(t *testing.T) {
	cases := map[string]string{
		"missing name":               `{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"groups": ["0x03"]}]}`,
		"name with spec punctuation": `{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "a,b", "groups": ["0x03"]}]}`,
		"too many groups":            `{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "v1-test", "groups": [1, 2, 4, 8, 16]}]}`,
		"empty middle group":         `{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "v2-test", "groups": ["0x0F", "0x00", "0x18"]}]}`,
		"unparsable mask":            `{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "v3-test", "groups": ["0xfff"]}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %s", label, doc)
		}
	}
	// Rebinding a taken name to a different descriptor must fail.
	if _, err := Parse(strings.NewReader(
		`{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "rebind-test", "groups": ["0x03"]}]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(strings.NewReader(
		`{"name": "x", "signal": {"kind": "ecg"}, "sync": [{"name": "rebind-test", "groups": ["0x07"]}]}`)); err == nil {
		t.Error("rebinding a registered name to a different descriptor was accepted")
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse(strings.NewReader(`{"name": "mini", "signal": {"kind": "emg"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Signal.SampleRateHz != 400 || s.Signal.Seed != 1 {
		t.Errorf("EMG defaults not applied: %+v", s.Signal)
	}
	if s.DurationS != 10 || s.ProbeS != 2.5 {
		t.Errorf("duration defaults not applied: %v / %v", s.DurationS, s.ProbeS)
	}
	if len(s.Apps) != 3 || len(s.Archs) != 2 {
		t.Errorf("grid defaults not applied: apps %v archs %v", s.Apps, s.Archs)
	}
	opts := s.Options()
	if opts.Scenario != "mini" || opts.Source.Kind != signal.KindEMG || opts.Seed != 1 {
		t.Errorf("options not derived from scenario: %+v", opts)
	}
	if got := len(s.Points(opts)); got != 6 {
		t.Errorf("default grid has %d points, want 6", got)
	}
}
