package dsp

// MMDParams sizes the multi-scale morphological-derivative delineator.
type MMDParams struct {
	Scale1     int   // short scale, sharpens onset/offset (samples)
	Scale2     int   // long scale, robust R detection (samples)
	Thr        int16 // detection threshold on the derivative magnitude
	PeakWin    int   // samples to search for the derivative peak after crossing
	Refractory int   // samples to ignore after an emitted QRS (0.2 s)
	EdgeDiv    int   // onset/offset edge threshold = peak >> EdgeDiv
	EdgeWin    int   // max samples to scan for onset/offset around the peak
}

// DefaultMMDParams returns the delineator tuning used by the benchmarks.
func DefaultMMDParams() MMDParams {
	return MMDParams{Scale1: 6, Scale2: 12, Thr: 400, PeakWin: 12, Refractory: 50, EdgeDiv: 3, EdgeWin: 25}
}

// Combine3 merges three conditioned leads into the single detection stream
// the delineator consumes: the sum of magnitudes, halved for headroom.
func Combine3(a, b, c int16) int16 {
	return (abs16(a) + abs16(b) + abs16(c)) >> 1
}

func abs16(v int16) int16 {
	// Branchless form matching the generated code: mask = v >> 15;
	// |v| = (v ^ mask) - mask.
	m := v >> 15
	return (v ^ m) - m
}

// MMDerivative computes the morphological derivative at one scale:
// d[n] = max(x[n-s..n]) + min(x[n-s..n]) - 2*x[n-s/2], with pre-record
// samples reading 0. A large |d| marks a steep slope pair — the QRS.
func MMDerivative(x []int16, s int) []int16 {
	d := make([]int16, len(x))
	for n := range x {
		mx, mn := int16(-32768+32767), int16(0) // placeholders; set below
		first := true
		for j := n - s; j <= n; j++ {
			var v int16
			if j >= 0 {
				v = x[j]
			}
			if first {
				mx, mn = v, v
				first = false
				continue
			}
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
		}
		var center int16
		if n-s/2 >= 0 {
			center = x[n-s/2]
		}
		d[n] = mx + mn - 2*center
	}
	return d
}

// DetectionStream returns det[n] = (|d_s1[n]| + |d_s2[n]|) >> 1, the
// multi-scale magnitude the detector thresholds.
func DetectionStream(x []int16, p MMDParams) []int16 {
	d1 := MMDerivative(x, p.Scale1)
	d2 := MMDerivative(x, p.Scale2)
	det := make([]int16, len(x))
	for n := range det {
		det[n] = (abs16(d1[n]) + abs16(d2[n])) >> 1
	}
	return det
}

// Fiducials is one delineated QRS complex, in detection-stream time (which
// lags raw time by the conditioning delay).
type Fiducials struct {
	Onset, Peak, Offset int
}

// Delineate runs the full 3L-MMD back-end over a combined conditioned
// stream: thresholding with peak search and refractory, then onset/offset
// localization where the derivative magnitude falls below peak>>EdgeDiv.
func Delineate(combined []int16, p MMDParams) []Fiducials {
	det := DetectionStream(combined, p)
	var out []Fiducials
	lastEnd := -p.Refractory - 1
	n := 0
	for n < len(det) {
		if det[n] < p.Thr || n-lastEnd <= p.Refractory {
			n++
			continue
		}
		// Crossing: search the derivative peak in the next PeakWin samples.
		peak, peakV := n, det[n]
		for j := n + 1; j < len(det) && j <= n+p.PeakWin; j++ {
			if det[j] > peakV {
				peak, peakV = j, det[j]
			}
		}
		edge := peakV >> p.EdgeDiv
		onset := peak
		for j := peak; j >= 0 && j >= peak-p.EdgeWin; j-- {
			if det[j] < edge {
				break
			}
			onset = j
		}
		offset := peak
		for j := peak; j < len(det) && j <= peak+p.EdgeWin; j++ {
			if det[j] < edge {
				break
			}
			offset = j
		}
		out = append(out, Fiducials{Onset: onset, Peak: peak, Offset: offset})
		lastEnd = peak
		n = peak + 1
	}
	return out
}

// DelineateStreamed matches the streaming hardware delineator: identical to
// Delineate except that a QRS whose edge window extends past the processed
// samples is still pending and not reported. Use it to compare against a
// simulator run that processed exactly len(combined) samples.
func DelineateStreamed(combined []int16, p MMDParams) []Fiducials {
	all := Delineate(combined, p)
	var out []Fiducials
	for _, f := range all {
		if f.Peak+p.EdgeWin < len(combined) {
			out = append(out, f)
		}
	}
	return out
}

// DetectPeaks is the simple amplitude beat detector the RP-CLASS front-end
// uses on one conditioned lead: a beat fires at n-1 when x[n-1] >= thr,
// x[n] < x[n-1] and the refractory interval has elapsed.
func DetectPeaks(x []int16, thr int16, refractory int) []int {
	var beats []int
	last := -refractory - 1
	for n := 1; n < len(x); n++ {
		if x[n-1] >= thr && x[n] < x[n-1] && n-1-last > refractory {
			beats = append(beats, n-1)
			last = n - 1
		}
	}
	return beats
}
