package dsp

import "fmt"

// RPParams configures the random-projection heartbeat classifier
// (Braojos et al., DATE 2013): a window around each detected beat is
// projected onto K random +-1 vectors and labelled by the nearest centroid
// in the projected space.
type RPParams struct {
	Window     int    // samples per beat window
	Pre        int    // samples before the R peak included in the window
	K          int    // number of projections
	InShift    int    // input prescale (arithmetic right shift) against overflow
	ProjShift  int    // projection postscale before the distance computation
	BeatThr    int16  // beat-detector threshold on the conditioned lead
	Refractory int    // beat-detector refractory, samples
	Seed       uint32 // projection-matrix seed
}

// DefaultRPParams returns the classifier tuning used by the benchmarks.
// Worst-case analysis: |x>>3| <= 4096, sum of 32 terms <= 32*4096 — still
// too big, but conditioned ECG magnitudes stay below ~2000 LSB, so after
// the >>3 prescale the projection sum is bounded by 32*250 = 8000 and the
// L1 distance over 8 postscaled terms by 8*4000; both fit int16 comfortably.
func DefaultRPParams() RPParams {
	return RPParams{Window: 32, Pre: 15, K: 8, InShift: 3, ProjShift: 2, BeatThr: 500, Refractory: 50, Seed: 0x1234}
}

// RPMatrix generates the deterministic +-1 projection matrix (K x Window),
// from a tiny xorshift PRNG so the same table can be embedded in the
// generated program's data segment.
func RPMatrix(p RPParams) [][]int16 {
	state := p.Seed | 1
	next := func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
	m := make([][]int16, p.K)
	for k := range m {
		m[k] = make([]int16, p.Window)
		for w := range m[k] {
			if next()&1 == 1 {
				m[k][w] = 1
			} else {
				m[k][w] = -1
			}
		}
	}
	return m
}

// Project maps one beat window (length p.Window) into the K-dimensional
// projected space with the exact integer steps of the generated kernel:
// prescale inputs by >>InShift, accumulate +-1 dot products, postscale by
// >>ProjShift.
func Project(window []int16, m [][]int16, p RPParams) []int16 {
	y := make([]int16, p.K)
	for k := 0; k < p.K; k++ {
		var acc int16
		for w := 0; w < p.Window; w++ {
			v := window[w] >> p.InShift
			if m[k][w] > 0 {
				acc += v
			} else {
				acc -= v
			}
		}
		y[k] = acc >> p.ProjShift
	}
	return y
}

// L1Dist is the Manhattan distance between projected vectors.
func L1Dist(a, b []int16) int16 {
	var d int16
	for i := range a {
		d += abs16(a[i] - b[i])
	}
	return d
}

// Classify labels a projected beat: true = pathological. Ties go to normal.
func Classify(y, centNormal, centPatho []int16) bool {
	return L1Dist(y, centPatho) < L1Dist(y, centNormal)
}

// Centroids are the trained class centers embedded in the program image.
type Centroids struct {
	Normal, Patho []int16
}

// TrainCentroids computes class centers from a labelled conditioned lead:
// for each annotated beat whose window fits, project and average per class.
// This offline step substitutes the paper's pre-trained classifier.
func TrainCentroids(conditioned []int16, beats []int, labels []bool, m [][]int16, p RPParams) (Centroids, error) {
	if len(beats) != len(labels) {
		return Centroids{}, fmt.Errorf("dsp: %d beats vs %d labels", len(beats), len(labels))
	}
	sumN := make([]int32, p.K)
	sumP := make([]int32, p.K)
	nN, nP := 0, 0
	for i, r := range beats {
		lo := r - p.Pre
		if lo < 0 || lo+p.Window > len(conditioned) {
			continue
		}
		y := Project(conditioned[lo:lo+p.Window], m, p)
		if labels[i] {
			for k, v := range y {
				sumP[k] += int32(v)
			}
			nP++
		} else {
			for k, v := range y {
				sumN[k] += int32(v)
			}
			nN++
		}
	}
	if nN == 0 || nP == 0 {
		return Centroids{}, fmt.Errorf("dsp: training needs both classes (normal %d, pathological %d)", nN, nP)
	}
	c := Centroids{Normal: make([]int16, p.K), Patho: make([]int16, p.K)}
	for k := 0; k < p.K; k++ {
		c.Normal[k] = int16(sumN[k] / int32(nN))
		c.Patho[k] = int16(sumP[k] / int32(nP))
	}
	return c, nil
}
