// Package dsp provides bit-exact integer reference implementations (golden
// models) of the three benchmark signal chains from the paper (§IV-D):
//
//   - morphological filtering for ECG conditioning (3L-MF), after
//     Sun et al., "ECG signal conditioning by morphological filtering",
//     Computers in Biology and Medicine, 2002;
//   - delineation using multi-scale morphological derivatives (3L-MMD),
//     after Rincon et al., IEEE TITB 2011;
//   - heartbeat classification using random projections (RP-CLASS), after
//     Braojos et al., DATE 2013.
//
// All arithmetic is 16-bit integer with arithmetic shifts, exactly what the
// generated WB16 programs compute, so simulator output can be compared
// word-for-word against these models.
package dsp

// MFParams sizes the morphological-filter structuring elements (in samples
// at 250 Hz). The opening/closing pair removes baseline wander; the short
// pair suppresses noise (Sun et al. 2002).
type MFParams struct {
	LOpen  int // baseline opening structuring-element length (~0.15 s)
	LClose int // baseline closing structuring-element length (~0.23 s)
	LNoise int // noise-suppression structuring-element length
}

// DefaultMFParams returns the element lengths used by the benchmarks
// (0.16 s and 0.24 s at 250 Hz, after Sun et al.'s 0.2 s/0.3 s pair).
func DefaultMFParams() MFParams {
	return MFParams{LOpen: 41, LClose: 61, LNoise: 5}
}

// BaselineDelay is the group delay of the baseline estimator: the detrended
// output at index n subtracts the baseline from x[n-BaselineDelay].
func (p MFParams) BaselineDelay() int { return p.LOpen + p.LClose - 2 }

// TotalDelay is the delay of the fully conditioned output relative to the
// raw input.
func (p MFParams) TotalDelay() int { return p.BaselineDelay() + p.LNoise - 1 }

// ErodeCausal computes the causal flat erosion with window length L:
// y[n] = min(x[n-L+1] .. x[n]), treating samples before the record as 0.
func ErodeCausal(x []int16, l int) []int16 {
	return slideCausal(x, l, false)
}

// DilateCausal computes the causal flat dilation with window length L:
// y[n] = max(x[n-L+1] .. x[n]), treating samples before the record as 0.
func DilateCausal(x []int16, l int) []int16 {
	return slideCausal(x, l, true)
}

// slideCausal is the shared naive O(N*L) sliding min/max — deliberately the
// same algorithm the 16-bit cores run, so cycle counts and results align.
func slideCausal(x []int16, l int, useMax bool) []int16 {
	y := make([]int16, len(x))
	for n := range x {
		var acc int16
		for j := n - l + 1; j <= n; j++ {
			var v int16
			if j >= 0 {
				v = x[j]
			}
			if j == n-l+1 {
				acc = v
				continue
			}
			if useMax {
				if v > acc {
					acc = v
				}
			} else {
				if v < acc {
					acc = v
				}
			}
		}
		y[n] = acc
	}
	return y
}

// MorphFilter conditions one ECG lead: baseline removal by an opening-closing
// cascade, then noise suppression by the average of a dilation-of-erosion and
// an erosion-of-dilation with a short element (Sun et al. 2002, eq. 2-4).
// The output is delayed by p.TotalDelay() samples relative to the input.
func MorphFilter(x []int16, p MFParams) []int16 {
	// Baseline estimation: opening (erode, dilate) then closing (dilate,
	// erode) with the longer element.
	open := DilateCausal(ErodeCausal(x, p.LOpen), p.LOpen)
	baseline := ErodeCausal(DilateCausal(open, p.LClose), p.LClose)

	// Detrending with delay alignment: the causal cascade delays the
	// baseline by BaselineDelay samples, so subtract it from the
	// correspondingly delayed input.
	d := make([]int16, len(x))
	delay := p.BaselineDelay()
	for n := range x {
		var xd int16
		if n-delay >= 0 {
			xd = x[n-delay]
		}
		d[n] = xd - baseline[n]
	}

	// Noise suppression: y = (dilate(erode(d)) + erode(dilate(d))) >> 1.
	a := DilateCausal(ErodeCausal(d, p.LNoise), p.LNoise)
	b := ErodeCausal(DilateCausal(d, p.LNoise), p.LNoise)
	y := make([]int16, len(x))
	for n := range y {
		y[n] = (a[n] + b[n]) >> 1
	}
	return y
}

// MFState is the streaming (per-sample) form of MorphFilter, structured the
// way the WB16 kernels are generated: one ring buffer per stage, naive
// window scans. Push consumes one raw sample and returns one conditioned
// sample (delayed by TotalDelay).
type MFState struct {
	p MFParams

	raw   *ring // raw input, long enough to reach x[n-BaselineDelay]
	ero   *ring // after opening's erosion
	opn   *ring // after opening
	dil   *ring // after closing's dilation
	det   *ring // detrended
	nsEro *ring // noise stage: erosion of detrended
	nsDil *ring // noise stage: dilation of detrended
}

// NewMFState returns a streaming conditioner.
func NewMFState(p MFParams) *MFState {
	return &MFState{
		p:     p,
		raw:   newRing(p.BaselineDelay() + 1),
		ero:   newRing(p.LOpen),
		opn:   newRing(p.LClose),
		dil:   newRing(p.LClose),
		det:   newRing(p.LNoise),
		nsEro: newRing(p.LNoise),
		nsDil: newRing(p.LNoise),
	}
}

// Push processes one sample.
func (s *MFState) Push(x int16) int16 {
	s.raw.push(x)
	s.ero.push(s.raw.min(s.p.LOpen))
	s.opn.push(s.ero.max(s.p.LOpen))
	s.dil.push(s.opn.max(s.p.LClose))
	baseline := s.dil.min(s.p.LClose)
	d := s.raw.at(s.p.BaselineDelay()) - baseline
	s.det.push(d)
	s.nsEro.push(s.det.min(s.p.LNoise))
	s.nsDil.push(s.det.max(s.p.LNoise))
	return (s.nsEro.max(s.p.LNoise) + s.nsDil.min(s.p.LNoise)) >> 1
}

// ring is a zero-initialized circular buffer over int16, matching the
// zero-filled private-memory buffers of the generated programs.
type ring struct {
	buf []int16
	pos int // index of the most recent sample
}

func newRing(n int) *ring {
	return &ring{buf: make([]int16, n), pos: n - 1}
}

func (r *ring) push(v int16) {
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
	r.buf[r.pos] = v
}

// at returns the sample d positions back (d=0 is the most recent).
func (r *ring) at(d int) int16 {
	i := r.pos - d
	if i < 0 {
		i += len(r.buf)
	}
	return r.buf[i]
}

func (r *ring) min(l int) int16 {
	acc := r.at(l - 1)
	for d := l - 2; d >= 0; d-- {
		if v := r.at(d); v < acc {
			acc = v
		}
	}
	return acc
}

func (r *ring) max(l int) int16 {
	acc := r.at(l - 1)
	for d := l - 2; d >= 0; d-- {
		if v := r.at(d); v > acc {
			acc = v
		}
	}
	return acc
}
