package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ecg"
)

func randSignal(seed int64, n int, amp int) []int16 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]int16, n)
	for i := range x {
		x[i] = int16(rng.Intn(2*amp) - amp)
	}
	return x
}

func TestErodeDilateBasics(t *testing.T) {
	x := []int16{3, 1, 4, 1, 5, 9, 2, 6}
	e := ErodeCausal(x, 3)
	d := DilateCausal(x, 3)
	wantE := []int16{0, 0, 1, 1, 1, 1, 2, 2}
	wantD := []int16{3, 3, 4, 4, 5, 9, 9, 9}
	for i := range x {
		if e[i] != wantE[i] {
			t.Errorf("erode[%d] = %d, want %d", i, e[i], wantE[i])
		}
		if d[i] != wantD[i] {
			t.Errorf("dilate[%d] = %d, want %d", i, d[i], wantD[i])
		}
	}
}

func TestQuickErosionDilationBounds(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		l := int(lRaw%20) + 1
		x := randSignal(seed, 100, 1000)
		e := ErodeCausal(x, l)
		d := DilateCausal(x, l)
		for i := range x {
			// With zero padding, erosion can only dip below x via the
			// padding or window minima; it must never exceed x, and
			// dilation never fall below x (for i >= l-1 exactly).
			if i >= l-1 {
				if e[i] > x[i] || d[i] < x[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickErodeDilateDuality(t *testing.T) {
	f := func(seed int64, lRaw uint8) bool {
		l := int(lRaw%20) + 1
		x := randSignal(seed, 80, 1000)
		neg := make([]int16, len(x))
		for i := range x {
			neg[i] = -x[i]
		}
		e := ErodeCausal(x, l)
		d := DilateCausal(neg, l)
		for i := range x {
			if e[i] != -d[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpeningIdempotentUpToShift(t *testing.T) {
	// The causal erode-dilate pair is a true morphological opening
	// composed with a shift of L-1 samples, so applying it twice equals
	// applying it once to a stream delayed by L-1: open2[n] == open1[n-(L-1)].
	const l = 9
	x := randSignal(7, 300, 800)
	open := func(v []int16) []int16 { return DilateCausal(ErodeCausal(v, l), l) }
	a := open(x)
	b := open(a)
	for n := 3 * l; n < len(x); n++ { // skip zero-padding warm-up
		if b[n] != a[n-(l-1)] {
			t.Fatalf("shifted idempotence violated at %d: %d vs %d", n, b[n], a[n-(l-1)])
		}
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	p := DefaultMFParams()
	x := randSignal(42, 600, 1500)
	batch := MorphFilter(x, p)
	st := NewMFState(p)
	for i, v := range x {
		if got := st.Push(v); got != batch[i] {
			t.Fatalf("streaming diverges at %d: %d vs %d", i, got, batch[i])
		}
	}
}

func TestQuickStreamingMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		p := MFParams{LOpen: 7, LClose: 11, LNoise: 3}
		x := randSignal(seed, 150, 2000)
		batch := MorphFilter(x, p)
		st := NewMFState(p)
		for i, v := range x {
			if st.Push(v) != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMorphFilterRemovesBaselineWander(t *testing.T) {
	cfg := ecg.DefaultConfig()
	cfg.BaselineAmp = 150
	cfg.NoiseAmp = 0
	sig, err := ecg.Synthesize(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultMFParams()
	y := MorphFilter(sig.Leads[0], p)
	// Between beats the conditioned signal must hover near zero even
	// though the raw signal rides a 150 LSB wander. Compare mean absolute
	// level over inter-beat segments.
	var rawSum, outSum, n int64
	for _, b := range sig.Beats {
		// Sample 90..60 before each beat (iso-electric region).
		for d := 60; d < 90; d++ {
			i := b.RPeak - d
			j := i + p.TotalDelay()
			if i < 0 || j >= len(y) {
				continue
			}
			rawSum += int64(absInt(int(sig.Leads[0][i])))
			outSum += int64(absInt(int(y[j])))
			n++
		}
	}
	if n == 0 {
		t.Fatal("no iso-electric samples examined")
	}
	raw, out := float64(rawSum)/float64(n), float64(outSum)/float64(n)
	if out > raw/2 {
		t.Errorf("baseline not removed: raw level %.1f, conditioned %.1f", raw, out)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMorphFilterPreservesRPeaks(t *testing.T) {
	cfg := ecg.DefaultConfig()
	sig, err := ecg.Synthesize(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultMFParams()
	y := MorphFilter(sig.Leads[0], p)
	delay := p.TotalDelay()
	found := 0
	for _, b := range sig.Beats {
		c := b.RPeak + delay
		if c+5 >= len(y) || c-5 < 0 {
			continue
		}
		var peak int16
		for j := c - 5; j <= c+5; j++ {
			if y[j] > peak {
				peak = y[j]
			}
		}
		if peak > 600 {
			found++
		}
	}
	if found < len(sig.Beats)*8/10 {
		t.Errorf("only %d/%d R peaks survive conditioning", found, len(sig.Beats))
	}
}

func TestMMDerivativeZeroOnConstant(t *testing.T) {
	x := make([]int16, 50)
	for i := range x {
		x[i] = 700
	}
	d := MMDerivative(x, 6)
	for i := 12; i < len(d); i++ { // past zero-padding warm-up
		if d[i] != 0 {
			t.Fatalf("derivative of constant = %d at %d", d[i], i)
		}
	}
}

func TestMMDerivativePeaksOnSpike(t *testing.T) {
	x := make([]int16, 60)
	x[30] = 2000
	d := MMDerivative(x, 6)
	var peak int16
	for _, v := range d {
		if v > peak {
			peak = v
		}
	}
	if peak < 1500 {
		t.Errorf("spike derivative peak = %d, want large", peak)
	}
}

func TestDelineateOnSyntheticECG(t *testing.T) {
	cfg := ecg.DefaultConfig()
	sig, err := ecg.Synthesize(cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	mf := DefaultMFParams()
	var leads [3][]int16
	for l := 0; l < 3; l++ {
		leads[l] = MorphFilter(sig.Leads[l], mf)
	}
	combined := make([]int16, len(leads[0]))
	for n := range combined {
		combined[n] = Combine3(leads[0][n], leads[1][n], leads[2][n])
	}
	fids := Delineate(combined, DefaultMMDParams())

	delay := mf.TotalDelay()
	tol := 10
	matched := 0
	used := make([]bool, len(fids))
	for _, b := range sig.Beats {
		want := b.RPeak + delay
		for i, f := range fids {
			if !used[i] && absInt(f.Peak-want) <= tol {
				used[i] = true
				matched++
				break
			}
		}
	}
	sens := float64(matched) / float64(len(sig.Beats))
	prec := float64(matched) / float64(len(fids))
	if sens < 0.90 {
		t.Errorf("delineation sensitivity = %.2f (%d/%d)", sens, matched, len(sig.Beats))
	}
	if prec < 0.90 {
		t.Errorf("delineation precision = %.2f (%d detections)", prec, len(fids))
	}
	for _, f := range fids {
		if !(f.Onset <= f.Peak && f.Peak <= f.Offset) {
			t.Fatalf("fiducials out of order: %+v", f)
		}
	}
}

func TestDetectPeaksSemantics(t *testing.T) {
	// Triangle pulses at known positions.
	x := make([]int16, 100)
	for _, c := range []int{20, 60} {
		for d := -3; d <= 3; d++ {
			x[c+d] = int16(800 - 150*absInt(d))
		}
	}
	beats := DetectPeaks(x, 500, 10)
	if len(beats) != 2 || beats[0] != 20 || beats[1] != 60 {
		t.Errorf("beats = %v, want [20 60]", beats)
	}
}

func TestDetectPeaksRefractory(t *testing.T) {
	x := make([]int16, 60)
	for _, c := range []int{10, 14} { // two close peaks
		x[c] = 900
	}
	beats := DetectPeaks(x, 500, 20)
	if len(beats) != 1 {
		t.Errorf("refractory violated: beats = %v", beats)
	}
}

func TestRPMatrixDeterministicPlusMinusOne(t *testing.T) {
	p := DefaultRPParams()
	a := RPMatrix(p)
	b := RPMatrix(p)
	plus := 0
	for k := range a {
		for w := range a[k] {
			if a[k][w] != b[k][w] {
				t.Fatal("matrix not deterministic")
			}
			if a[k][w] != 1 && a[k][w] != -1 {
				t.Fatalf("entry %d not +-1", a[k][w])
			}
			if a[k][w] == 1 {
				plus++
			}
		}
	}
	total := p.K * p.Window
	if plus < total/4 || plus > 3*total/4 {
		t.Errorf("matrix unbalanced: %d/%d positive", plus, total)
	}
}

func TestProjectLinearity(t *testing.T) {
	p := DefaultRPParams()
	p.InShift = 0
	p.ProjShift = 0
	m := RPMatrix(p)
	x := make([]int16, p.Window)
	for i := range x {
		x[i] = int16(i)
	}
	y := Project(x, m, p)
	// Doubling the input doubles the projection (no shifts configured).
	x2 := make([]int16, p.Window)
	for i := range x2 {
		x2[i] = 2 * x[i]
	}
	y2 := Project(x2, m, p)
	for k := range y {
		if y2[k] != 2*y[k] {
			t.Errorf("projection not linear at %d: %d vs 2*%d", k, y2[k], y[k])
		}
	}
}

func TestL1Dist(t *testing.T) {
	a := []int16{1, -2, 3}
	b := []int16{-1, 2, 3}
	if d := L1Dist(a, b); d != 6 {
		t.Errorf("L1 = %d, want 6", d)
	}
	if d := L1Dist(a, a); d != 0 {
		t.Errorf("L1(a,a) = %d", d)
	}
	if L1Dist(a, b) != L1Dist(b, a) {
		t.Error("L1 not symmetric")
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	cfg := ecg.DefaultConfig()
	cfg.PathologicalFrac = 0.3
	sig, err := ecg.Synthesize(cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	mf := DefaultMFParams()
	cond := MorphFilter(sig.Leads[0], mf)
	delay := mf.TotalDelay()
	p := DefaultRPParams()
	m := RPMatrix(p)

	// Ground-truth-aligned beat windows in conditioned time.
	var beats []int
	var labels []bool
	for _, b := range sig.Beats {
		beats = append(beats, b.RPeak+delay)
		labels = append(labels, b.Pathological)
	}
	half := len(beats) / 2
	cents, err := TrainCentroids(cond, beats[:half], labels[:half], m, p)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := half; i < len(beats); i++ {
		lo := beats[i] - p.Pre
		if lo < 0 || lo+p.Window > len(cond) {
			continue
		}
		y := Project(cond[lo:lo+p.Window], m, p)
		if Classify(y, cents.Normal, cents.Patho) == labels[i] {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Errorf("classifier accuracy = %.2f (%d/%d)", acc, correct, total)
	}
}

func TestTrainCentroidsErrors(t *testing.T) {
	p := DefaultRPParams()
	m := RPMatrix(p)
	if _, err := TrainCentroids(make([]int16, 100), []int{50}, []bool{true, false}, m, p); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, err := TrainCentroids(make([]int16, 100), []int{50}, []bool{true}, m, p); err == nil {
		t.Error("want single-class error")
	}
}

func TestCombine3(t *testing.T) {
	if got := Combine3(-100, 200, -300); got != 300 {
		t.Errorf("Combine3 = %d, want 300", got)
	}
	if got := Combine3(0, 0, 0); got != 0 {
		t.Errorf("Combine3 zero = %d", got)
	}
}

func TestAbs16MatchesBranchless(t *testing.T) {
	f := func(v int16) bool {
		want := v
		if v < 0 {
			want = -v
		}
		return abs16(v) == want || v == -32768 // -32768 has no positive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
