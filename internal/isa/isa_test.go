package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	cases := []Instr{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpMIN, Rd: 7, Rs1: 7, Rs2: 7},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: -512},
		{Op: OpADDI, Rd: 4, Rs1: 5, Imm: 511},
		{Op: OpLW, Rd: 9, Rs1: 2, Imm: -1},
		{Op: OpSW, Rs1: 2, Rs2: 9, Imm: 33},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -256},
		{Op: OpJAL, Rd: 15, Imm: 8191},
		{Op: OpJAL, Rd: 0, Imm: -8192},
		{Op: OpJALR, Rd: 0, Rs1: 15, Imm: 0},
		{Op: OpSINC, Imm: 0},
		{Op: OpSDEC, Imm: 7},
		{Op: OpSNOP, Imm: Imm18Max},
		{Op: OpSLEEP},
		{Op: OpHALT},
		{Op: OpNOP},
		{Op: OpLUI, Rd: 3, Imm: 500},
	}
	for _, ins := range cases {
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%v): %v", ins, err)
		}
		if w>>24 != 0 {
			t.Errorf("Encode(%v) = %#x: exceeds 24 bits", ins, w)
		}
		got := Decode(w)
		if got != ins {
			t.Errorf("round trip %v -> %#x -> %v", ins, w, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instr{
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: 512},
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: -513},
		{Op: OpBEQ, Rs1: 1, Rs2: 1, Imm: 1000},
		{Op: OpJAL, Rd: 1, Imm: 8192},
		{Op: OpSINC, Imm: -1},
		{Op: OpSINC, Imm: Imm18Max + 1},
		{Op: Opcode(63)},
		{Op: OpADD, Rd: 16},
	}
	for _, ins := range bad {
		if _, err := Encode(ins); err == nil {
			t.Errorf("Encode(%v): want error, got none", ins)
		}
	}
}

// canonical clamps an arbitrary Instr into one that Encode accepts and that
// Decode must reproduce exactly.
func canonical(ins Instr) Instr {
	ins.Op %= numOpcodes
	ins.Rd &= 0xF
	ins.Rs1 &= 0xF
	ins.Rs2 &= 0xF
	switch ins.Op.Fmt() {
	case FmtR:
		ins.Imm = 0
	case FmtI:
		ins.Rs2 = 0
		ins.Imm = int32(int16(ins.Imm) % 512)
	case FmtB:
		// B-format reuses the rd field slot for rs1: normalize names.
		ins.Rd = 0
		ins.Imm = int32(int16(ins.Imm) % 512)
	case FmtJ:
		ins.Rs1, ins.Rs2 = 0, 0
		ins.Imm = int32(int16(ins.Imm) % 8192)
	case FmtS:
		ins.Rd, ins.Rs1, ins.Rs2 = 0, 0, 0
		if ins.Imm < 0 {
			ins.Imm = -ins.Imm
		}
		ins.Imm %= Imm18Max + 1
	case FmtN:
		ins.Rd, ins.Rs1, ins.Rs2, ins.Imm = 0, 0, 0, 0
	}
	return ins
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int16) bool {
		ins := canonical(Instr{Op: Opcode(op), Rd: rd, Rs1: rs1, Rs2: rs2, Imm: int32(imm)})
		w, err := Encode(ins)
		if err != nil {
			t.Logf("Encode(%v): %v", ins, err)
			return false
		}
		return Decode(w) == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeUnknownOpcodeIsInvalid(t *testing.T) {
	w := uint32(63) << opShift
	ins := Decode(w)
	if ins.Op.Valid() {
		t.Errorf("Decode(%#x).Op = %v, want invalid", w, ins.Op)
	}
}

func TestOpcodePredicates(t *testing.T) {
	for _, op := range []Opcode{OpSINC, OpSDEC, OpSNOP} {
		if !op.IsSync() || !op.IsSyncExtension() {
			t.Errorf("%v: IsSync/IsSyncExtension should be true", op)
		}
	}
	if !OpSLEEP.IsSleep() || !OpSLEEP.IsSyncExtension() || OpSLEEP.IsSync() {
		t.Error("SLEEP predicate mismatch")
	}
	for _, op := range []Opcode{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU} {
		if !op.IsBranch() {
			t.Errorf("%v: IsBranch should be true", op)
		}
	}
	if OpJAL.IsBranch() || OpADD.IsBranch() {
		t.Error("JAL/ADD must not be branches")
	}
	if !OpLW.IsMem() || !OpSW.IsMem() || OpADD.IsMem() {
		t.Error("IsMem mismatch")
	}
	if OpADD.IsSyncExtension() {
		t.Error("ADD must not be in the sync extension")
	}
}

func TestMnemonicsUniqueAndComplete(t *testing.T) {
	if len(OpcodeByName) != int(numOpcodes) {
		t.Fatalf("OpcodeByName has %d entries, want %d (duplicate mnemonic?)", len(OpcodeByName), numOpcodes)
	}
	for name, op := range OpcodeByName {
		if op.String() != name {
			t.Errorf("mnemonic mismatch: %q -> %v -> %q", name, op, op.String())
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		ins  Instr
		want string
	}{
		{Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpLW, Rd: 4, Rs1: 2, Imm: -8}, "lw r4, -8(r2)"},
		{Instr{Op: OpSW, Rs1: 2, Rs2: 4, Imm: 5}, "sw r4, 5(r2)"},
		{Instr{Op: OpBNE, Rs1: 1, Rs2: 0, Imm: -3}, "bne r1, r0, -3"},
		{Instr{Op: OpSINC, Imm: 4}, "sinc #4"},
		{Instr{Op: OpSLEEP}, "sleep"},
		{Instr{Op: OpJAL, Rd: 15, Imm: 10}, "jal r15, 10"},
		{Instr{Op: OpLUI, Rd: 2, Imm: 100}, "lui r2, 100"},
	}
	for _, c := range cases {
		if got := c.ins.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.ins, got, c.want)
		}
	}
}

func TestGeometryConstantsMatchPaper(t *testing.T) {
	// Paper §IV-B: 96 KB IM = 32 KWords x 24 bit in 8 banks;
	// 64 KB DM = 32 KWords x 16 bit in 16 banks.
	if IMWords*3 != 96*1024 {
		t.Errorf("IM size = %d bytes, want 96KB", IMWords*3)
	}
	if DMWords*2 != 64*1024 {
		t.Errorf("DM size = %d bytes, want 64KB", DMWords*2)
	}
	if IMBankWords*IMBanks != IMWords || DMBankWords*DMBanks != DMWords {
		t.Error("bank geometry does not tile the memories")
	}
}

func TestIMBankOf(t *testing.T) {
	if IMBankOf(0) != 0 || IMBankOf(IMBankWords-1) != 0 || IMBankOf(IMBankWords) != 1 || IMBankOf(IMWords-1) != IMBanks-1 {
		t.Error("IMBankOf boundaries wrong")
	}
}

func TestIsMMIO(t *testing.T) {
	if IsMMIO(MMIOBase-1) || !IsMMIO(MMIOBase) || !IsMMIO(RegDebugOut) {
		t.Error("IsMMIO boundaries wrong")
	}
}

func TestStringOfInvalidOpcode(t *testing.T) {
	if s := Opcode(63).String(); !strings.HasPrefix(s, "op?") {
		t.Errorf("invalid opcode String = %q", s)
	}
}
