package isa

import (
	"strings"
	"testing"
)

func TestListingResolvesTargets(t *testing.T) {
	words := []Word{
		MustEncode(Instr{Op: OpADDI, Rd: 1, Rs1: 0, Imm: 5}),
		MustEncode(Instr{Op: OpBNE, Rs1: 1, Rs2: 0, Imm: -2}),
		MustEncode(Instr{Op: OpJAL, Rd: 0, Imm: 10}),
		MustEncode(Instr{Op: OpHALT}),
	}
	l := Listing(0x1000, words)
	lines := strings.Split(strings.TrimSpace(l), "\n")
	if len(lines) != 4 {
		t.Fatalf("listing has %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "-> 0x001000") {
		t.Errorf("branch target not resolved: %q", lines[1])
	}
	if !strings.Contains(lines[2], "-> 0x00100d") {
		t.Errorf("jump target not resolved: %q", lines[2])
	}
	if !strings.HasPrefix(lines[0], "001000: ") {
		t.Errorf("address column wrong: %q", lines[0])
	}
}

func TestAnalyzeSync(t *testing.T) {
	words := []Word{
		MustEncode(Instr{Op: OpSINC, Imm: 0}),
		MustEncode(Instr{Op: OpSDEC, Imm: 0}),
		MustEncode(Instr{Op: OpSNOP, Imm: 1}),
		MustEncode(Instr{Op: OpSLEEP}),
		MustEncode(Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}),
		MustEncode(Instr{Op: OpHALT}),
	}
	s := AnalyzeSync(words)
	if s.Total != 6 || s.SyncPoints != 3 || s.Sleeps != 1 {
		t.Errorf("stats = %+v", s)
	}
	want := 100.0 * 4 / 6
	if got := s.OverheadPct(); got < want-0.01 || got > want+0.01 {
		t.Errorf("overhead = %v, want %v", got, want)
	}
	if (SyncStats{}).OverheadPct() != 0 {
		t.Error("empty stats overhead must be 0")
	}
}
