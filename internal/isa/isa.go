// Package isa defines the WB16 instruction-set architecture used by the
// multi-core WBSN platform reproduced from Braojos et al., DATE 2014.
//
// WB16 is a 16-bit load/store RISC with 24-bit-wide instructions (the paper's
// instruction memory is 32 KWords x 24 bit) and sixteen general-purpose
// registers, r0 hardwired to zero. The instruction set is extended with the
// paper's synchronization instructions SINC, SDEC, SNOP and SLEEP, which
// operate on synchronization points managed by the synchronizer unit.
package isa

import "fmt"

// Architectural geometry shared by the whole platform (paper §IV-B).
const (
	// NumRegs is the number of general-purpose registers. r0 reads as zero.
	NumRegs = 16

	// IMWords is the instruction-memory size in 24-bit words (96 KByte).
	IMWords = 32768
	// IMBanks is the number of independently powered instruction banks.
	IMBanks = 8
	// IMBankWords is the size of one instruction bank.
	IMBankWords = IMWords / IMBanks

	// DMWords is the data-memory size in 16-bit words (64 KByte).
	DMWords = 32768
	// DMBanks is the number of independently powered data banks.
	DMBanks = 16
	// DMBankWords is the size of one data bank.
	DMBankWords = DMWords / DMBanks

	// MaxCores is the number of cores the synchronization point format
	// supports: the high 8 bits of a sync point hold one flag per core.
	MaxCores = 8
)

// Memory-mapped I/O registers. They live at the top of the data address
// space, outside the banked memory, and are word-addressed like all of DM.
const (
	MMIOBase = 0x7F00 // first MMIO word address

	RegCoreID     = 0x7F00 // r/o: identifier of the issuing core
	RegCycleLo    = 0x7F01 // r/o: low 16 bits of the platform cycle counter
	RegCycleHi    = 0x7F02 // r/o: high 16 bits of the platform cycle counter
	RegIRQSub     = 0x7F03 // r/w per core: interrupt-source subscription mask
	RegIRQPend    = 0x7F04 // r/o per core: pending subscribed interrupts
	RegADCData0   = 0x7F08 // r/o: ADC channel 0 sample; reading clears ready
	RegADCData1   = 0x7F09 // r/o: ADC channel 1 sample; reading clears ready
	RegADCData2   = 0x7F0A // r/o: ADC channel 2 sample; reading clears ready
	RegADCStatus  = 0x7F0B // r/o: per-channel data-ready bits
	RegADCOverrun = 0x7F0C // r/o: saturating count of ADC overruns
	RegDebugOut   = 0x7F10 // w/o: host-visible debug trace value
	RegDebugErr   = 0x7F11 // w/o: host-visible application error code
	RegHostFlag   = 0x7F12 // r/w: scratch flag readable by the host harness
)

// Interrupt source bits (used with RegIRQSub / RegIRQPend).
const (
	IRQADC0 = 1 << 0 // channel 0 data ready
	IRQADC1 = 1 << 1 // channel 1 data ready
	IRQADC2 = 1 << 2 // channel 2 data ready
	IRQADC  = IRQADC0 | IRQADC1 | IRQADC2
	// IRQSyncTimeout is raised by the synchronizer when a core's gated
	// wait exceeds the descriptor's timeout threshold. Unlike the ADC
	// sources it is delivered regardless of the subscription mask: a
	// timed-out core is woken so it can observe and recover from the
	// stall, subscribed or not.
	IRQSyncTimeout = 1 << 3
)

// Opcode enumerates WB16 operations. Values are the 6-bit primary opcode
// stored in instruction bits [23:18].
type Opcode uint8

// Instruction opcodes. The ALU set includes MIN/MAX, common DSP extensions
// on bio-signal platforms and heavily used by the morphological operators.
const (
	OpNOP Opcode = iota
	// R-type ALU: rd <- rs1 op rs2
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpMUL
	OpMULH
	OpSLT
	OpSLTU
	OpMIN
	OpMAX
	OpMINU
	OpMAXU
	// I-type ALU: rd <- rs1 op signext(imm10)
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpLUI // rd <- imm10 << 6
	// Memory: word-addressed 16-bit data memory
	OpLW // rd <- DM[rs1 + signext(imm10)]
	OpSW // DM[rs1 + signext(imm10)] <- rs2
	// Control flow
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpJAL  // rd <- PC+1; PC <- PC+1+off14
	OpJALR // rd <- PC+1; PC <- (rs1 + signext(imm10)) & 0x7FFF
	// Synchronization ISE (the paper's contribution, §III-B)
	OpSINC  // set issuing core's flag on point imm18 and increment its counter
	OpSDEC  // decrement point imm18's counter; on zero the synchronizer wakes flagged cores
	OpSNOP  // set issuing core's flag on point imm18 without touching the counter
	OpSLEEP // request clock gating until the next synchronization event
	// Simulation control
	OpHALT // stop the issuing core permanently
	// Event-group synchronization (FreeRTOS-style rendezvous; appended
	// after OpHALT so the pre-existing opcode numbering is unchanged)
	OpSEVS // set this core's event bits and wait for a rendezvous pattern

	numOpcodes
)

// Format describes how an opcode's operands are packed into 24 bits.
type Format uint8

// Instruction formats (fields listed from bit 23 downwards after the opcode).
const (
	FmtR Format = iota // rd[17:14] rs1[13:10] rs2[9:6] 0[5:0]
	FmtI               // rd[17:14] rs1[13:10] imm10[9:0]
	FmtB               // rs1[17:14] rs2[13:10] imm10[9:0]   (branches, SW)
	FmtJ               // rd[17:14] imm14[13:0]               (JAL)
	FmtS               // imm18[17:0]                         (sync, point id)
	FmtN               // no operands                         (NOP, SLEEP, HALT)
)

// Word is one 24-bit instruction stored in the low bits of a uint32.
type Word = uint32

const (
	opShift  = 18
	rdShift  = 14
	rs1Shift = 10
	rs2Shift = 6

	imm10Mask = 0x3FF
	imm14Mask = 0x3FFF
	imm18Mask = 0x3FFFF

	// Imm10Min and Imm10Max bound the signed 10-bit immediate.
	Imm10Min = -512
	Imm10Max = 511
	// Imm14Min and Imm14Max bound the signed 14-bit jump offset.
	Imm14Min = -8192
	Imm14Max = 8191
	// Imm18Max bounds the unsigned 18-bit sync-point literal.
	Imm18Max = 1<<18 - 1
)

var opInfo = [numOpcodes]struct {
	name string
	fmt  Format
}{
	OpNOP:   {"nop", FmtN},
	OpADD:   {"add", FmtR},
	OpSUB:   {"sub", FmtR},
	OpAND:   {"and", FmtR},
	OpOR:    {"or", FmtR},
	OpXOR:   {"xor", FmtR},
	OpSLL:   {"sll", FmtR},
	OpSRL:   {"srl", FmtR},
	OpSRA:   {"sra", FmtR},
	OpMUL:   {"mul", FmtR},
	OpMULH:  {"mulh", FmtR},
	OpSLT:   {"slt", FmtR},
	OpSLTU:  {"sltu", FmtR},
	OpMIN:   {"min", FmtR},
	OpMAX:   {"max", FmtR},
	OpMINU:  {"minu", FmtR},
	OpMAXU:  {"maxu", FmtR},
	OpADDI:  {"addi", FmtI},
	OpANDI:  {"andi", FmtI},
	OpORI:   {"ori", FmtI},
	OpXORI:  {"xori", FmtI},
	OpSLLI:  {"slli", FmtI},
	OpSRLI:  {"srli", FmtI},
	OpSRAI:  {"srai", FmtI},
	OpSLTI:  {"slti", FmtI},
	OpLUI:   {"lui", FmtI},
	OpLW:    {"lw", FmtI},
	OpSW:    {"sw", FmtB},
	OpBEQ:   {"beq", FmtB},
	OpBNE:   {"bne", FmtB},
	OpBLT:   {"blt", FmtB},
	OpBGE:   {"bge", FmtB},
	OpBLTU:  {"bltu", FmtB},
	OpBGEU:  {"bgeu", FmtB},
	OpJAL:   {"jal", FmtJ},
	OpJALR:  {"jalr", FmtI},
	OpSINC:  {"sinc", FmtS},
	OpSDEC:  {"sdec", FmtS},
	OpSNOP:  {"snop", FmtS},
	OpSLEEP: {"sleep", FmtN},
	OpHALT:  {"halt", FmtN},
	OpSEVS:  {"sevs", FmtS},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op?%d", uint8(op))
	}
	return opInfo[op].name
}

// Fmt returns the encoding format of op.
func (op Opcode) Fmt() Format {
	if !op.Valid() {
		return FmtN
	}
	return opInfo[op].fmt
}

// IsSync reports whether op is one of the synchronizer-posted instructions
// (SINC, SDEC, SNOP, SEVS). SLEEP is reported separately by IsSleep.
func (op Opcode) IsSync() bool {
	return op == OpSINC || op == OpSDEC || op == OpSNOP || op == OpSEVS
}

// IsSleep reports whether op is the SLEEP clock-gating request.
func (op Opcode) IsSleep() bool { return op == OpSLEEP }

// IsSyncExtension reports whether op belongs to the paper's instruction-set
// extension (SINC, SDEC, SNOP or SLEEP). Used for code-overhead accounting.
func (op Opcode) IsSyncExtension() bool { return op.IsSync() || op.IsSleep() }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= OpBEQ && op <= OpBGEU }

// IsJump reports whether op is an unconditional control transfer (JAL, JALR).
func (op Opcode) IsJump() bool { return op == OpJAL || op == OpJALR }

// IsControl reports whether op can redirect the program counter: a
// conditional branch or a jump. Control instructions terminate the basic
// blocks of the platform's block execution engine (internal/mem).
func (op Opcode) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool { return op == OpLW || op == OpSW }

// Sync-operand packing inside the 18-bit sync immediate.
//
// SINC/SDEC/SNOP address a sync point within a sync group:
//
//	imm18 = group[9:8] | point[7:0]
//
// Group 0 is the paper's single all-core barrier, so pre-existing programs
// (whose immediates are plain point ids < 256) decode unchanged.
//
// SEVS carries an event-group rendezvous (FreeRTOS xEventGroupSync shape):
//
//	imm18 = group[17:16] | set[15:8] | wait[7:0]
//
// The issuing core sets the `set` bits in its group's event word and blocks
// (on the following SLEEP) until all `wait` bits are present; wait=0 is a
// fire-and-forget set.
const (
	SyncGroupShift = 8
	SyncGroupBits  = 2 // up to 4 sync groups addressable per instruction
	SyncPointMask  = 0xFF

	SevsGroupShift = 16
	SevsSetShift   = 8
	SevsMask       = 0xFF
)

// SyncPointOf extracts the sync-point id from a SINC/SDEC/SNOP immediate.
func SyncPointOf(imm int) int { return imm & SyncPointMask }

// SyncGroupOf extracts the sync-group id from a SINC/SDEC/SNOP immediate.
func SyncGroupOf(imm int) int { return imm >> SyncGroupShift & (1<<SyncGroupBits - 1) }

// SyncImm packs a sync-group id and point id into a SINC/SDEC/SNOP immediate.
func SyncImm(group, point int) int { return group<<SyncGroupShift | point&SyncPointMask }

// SevsGroupOf extracts the event-group id from a SEVS immediate.
func SevsGroupOf(imm int) int { return imm >> SevsGroupShift & (1<<SyncGroupBits - 1) }

// SevsSetOf extracts the bits-to-set mask from a SEVS immediate.
func SevsSetOf(imm int) uint8 { return uint8(imm >> SevsSetShift & SevsMask) }

// SevsWaitOf extracts the bits-to-wait-for mask from a SEVS immediate.
func SevsWaitOf(imm int) uint8 { return uint8(imm & SevsMask) }

// SevsImm packs an event rendezvous into a SEVS immediate.
func SevsImm(group int, set, wait uint8) int {
	return group<<SevsGroupShift | int(set)<<SevsSetShift | int(wait)
}

// OpcodeByName maps assembler mnemonics to opcodes.
var OpcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[opInfo[op].name] = op
	}
	return m
}()

// Instr is a decoded WB16 instruction. Imm holds the sign-extended immediate
// for I/B/J formats and the zero-extended 18-bit literal for the sync format.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Encode packs ins into a 24-bit instruction word. It returns an error when a
// field is out of range for the instruction's format.
func Encode(ins Instr) (Word, error) {
	if !ins.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", ins.Op)
	}
	if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: %s: register out of range", ins.Op)
	}
	w := uint32(ins.Op) << opShift
	switch ins.Op.Fmt() {
	case FmtR:
		w |= uint32(ins.Rd)<<rdShift | uint32(ins.Rs1)<<rs1Shift | uint32(ins.Rs2)<<rs2Shift
	case FmtI:
		if ins.Imm < Imm10Min || ins.Imm > Imm10Max {
			return 0, fmt.Errorf("isa: %s: immediate %d out of signed 10-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rd)<<rdShift | uint32(ins.Rs1)<<rs1Shift | uint32(ins.Imm)&imm10Mask
	case FmtB:
		if ins.Imm < Imm10Min || ins.Imm > Imm10Max {
			return 0, fmt.Errorf("isa: %s: offset %d out of signed 10-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rs1)<<rdShift | uint32(ins.Rs2)<<rs1Shift | uint32(ins.Imm)&imm10Mask
	case FmtJ:
		if ins.Imm < Imm14Min || ins.Imm > Imm14Max {
			return 0, fmt.Errorf("isa: %s: offset %d out of signed 14-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rd)<<rdShift | uint32(ins.Imm)&imm14Mask
	case FmtS:
		if ins.Imm < 0 || ins.Imm > Imm18Max {
			return 0, fmt.Errorf("isa: %s: sync point %d out of 18-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Imm) & imm18Mask
	case FmtN:
		// no operands
	}
	return w, nil
}

// MustEncode is Encode but panics on error; for tests and generated tables.
func MustEncode(ins Instr) Word {
	w, err := Encode(ins)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 24-bit instruction word. Unknown opcodes decode as an
// Instr with an invalid Op; the core treats executing one as a fault.
func Decode(w Word) Instr {
	op := Opcode(w >> opShift & 0x3F)
	ins := Instr{Op: op}
	if !op.Valid() {
		return ins
	}
	switch op.Fmt() {
	case FmtR:
		ins.Rd = uint8(w >> rdShift & 0xF)
		ins.Rs1 = uint8(w >> rs1Shift & 0xF)
		ins.Rs2 = uint8(w >> rs2Shift & 0xF)
	case FmtI:
		ins.Rd = uint8(w >> rdShift & 0xF)
		ins.Rs1 = uint8(w >> rs1Shift & 0xF)
		ins.Imm = signExtend(w&imm10Mask, 10)
	case FmtB:
		ins.Rs1 = uint8(w >> rdShift & 0xF)
		ins.Rs2 = uint8(w >> rs1Shift & 0xF)
		ins.Imm = signExtend(w&imm10Mask, 10)
	case FmtJ:
		ins.Rd = uint8(w >> rdShift & 0xF)
		ins.Imm = signExtend(w&imm14Mask, 14)
	case FmtS:
		ins.Imm = int32(w & imm18Mask)
	case FmtN:
	}
	return ins
}

// String renders ins in assembler syntax.
func (ins Instr) String() string {
	switch ins.Op.Fmt() {
	case FmtR:
		return fmt.Sprintf("%s r%d, r%d, r%d", ins.Op, ins.Rd, ins.Rs1, ins.Rs2)
	case FmtI:
		if ins.Op == OpLW {
			return fmt.Sprintf("lw r%d, %d(r%d)", ins.Rd, ins.Imm, ins.Rs1)
		}
		if ins.Op == OpLUI {
			return fmt.Sprintf("lui r%d, %d", ins.Rd, ins.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", ins.Op, ins.Rd, ins.Rs1, ins.Imm)
	case FmtB:
		if ins.Op == OpSW {
			return fmt.Sprintf("sw r%d, %d(r%d)", ins.Rs2, ins.Imm, ins.Rs1)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", ins.Op, ins.Rs1, ins.Rs2, ins.Imm)
	case FmtJ:
		return fmt.Sprintf("jal r%d, %d", ins.Rd, ins.Imm)
	case FmtS:
		return fmt.Sprintf("%s #%d", ins.Op, ins.Imm)
	default:
		return ins.Op.String()
	}
}

// IMBankOf returns the instruction-memory bank holding word address pc.
func IMBankOf(pc int) int { return pc / IMBankWords }

// IsMMIO reports whether a data word address falls in the MMIO window.
func IsMMIO(addr uint16) bool { return addr >= MMIOBase }
