package isa

import (
	"fmt"
	"strings"
)

// Listing renders a code block as an annotated disassembly, one line per
// 24-bit word: address, raw encoding and assembler syntax. base is the IM
// word address of words[0]. Branch and jump targets are shown resolved to
// absolute addresses, which is what makes listings of linked images
// readable.
func Listing(base int, words []Word) string {
	var sb strings.Builder
	for i, w := range words {
		pc := base + i
		ins := Decode(w)
		text := ins.String()
		if ins.Op.IsBranch() || ins.Op == OpJAL {
			target := pc + 1 + int(ins.Imm)
			text = fmt.Sprintf("%s  ; -> %#06x", text, target&(IMWords-1))
		}
		fmt.Fprintf(&sb, "%06x: %06x  %s\n", pc, w, text)
	}
	return sb.String()
}

// SyncStats summarizes a code block's synchronization-ISE footprint: the
// static counts behind the paper's code-overhead metric.
type SyncStats struct {
	Total      int // total instructions
	SyncPoints int // SINC + SDEC + SNOP
	Sleeps     int // SLEEP
}

// AnalyzeSync scans encoded instructions for the sync ISE.
func AnalyzeSync(words []Word) SyncStats {
	var s SyncStats
	s.Total = len(words)
	for _, w := range words {
		op := Decode(w).Op
		switch {
		case op.IsSync():
			s.SyncPoints++
		case op.IsSleep():
			s.Sleeps++
		}
	}
	return s
}

// OverheadPct returns the sync-extension share of the block.
func (s SyncStats) OverheadPct() float64 {
	if s.Total == 0 {
		return 0
	}
	return 100 * float64(s.SyncPoints+s.Sleeps) / float64(s.Total)
}
