// Package core implements the paper's primary contribution: the lightweight
// synchronizer unit and the semantics of its synchronization points
// (Braojos et al., DATE 2014, §III).
//
// A synchronization point is one reserved 16-bit word in shared data memory.
// Its most significant 8 bits hold one flag per core; the least significant
// 8 bits an up/down counter (paper Fig. 3):
//
//	SINC #p: set issuing core's flag, increment the counter
//	SNOP #p: set issuing core's flag only
//	SDEC #p: decrement the counter; when it reaches zero the synchronizer
//	         resumes every flagged core and clears the flags
//	SLEEP:   clock-gate the issuing core until the next synchronization event
//
// All synchronization instructions issued in the same clock cycle on the same
// point are merged into a single consistent memory modification (§III-B).
//
// The unit also forwards peripheral interrupts: cores subscribe to interrupt
// sources through a memory-mapped register, SLEEP, and are resumed when a
// subscribed interrupt arrives.
//
// Wake-up races (a synchronization event arriving while the target core is
// still running, before it executes SLEEP) are closed with a per-core event
// token, analogous to the ARM WFE/SEV event register: a wake delivered to a
// running core latches the token, and SLEEP with a latched token consumes it
// and falls through without gating. This detail is not spelled out in the
// paper; it is the minimal hardware that makes the published protocol
// race-free.
package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/power"
)

// CoreState is the synchronizer's view of one core's clock/power state.
type CoreState uint8

// Core states.
const (
	StateRunning CoreState = iota
	StateGated             // clock-gated by SLEEP, waiting for an event
	StateHalted            // stopped by HALT (end of program)
	StateOff               // not instantiated in this configuration
)

func (s CoreState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateGated:
		return "gated"
	case StateHalted:
		return "halted"
	case StateOff:
		return "off"
	}
	return fmt.Sprintf("state?%d", uint8(s))
}

// Point is the architectural value of one synchronization point.
type Point struct {
	Flags   uint8 // bit c set: core c is registered on this point
	Counter uint8 // up/down counter; wake triggers on an SDEC reaching 0
}

// Value packs the point into its in-memory 16-bit representation.
func (p Point) Value() uint16 { return uint16(p.Flags)<<8 | uint16(p.Counter) }

// op is one posted synchronization operation awaiting end-of-cycle commit.
// Point operations (SINC/SDEC/SNOP) carry a decoded (group, point) pair;
// event rendezvous (SEVS) carry the group and its set/wait masks, with
// point = -1 so the point-merge scan skips them.
type op struct {
	core  int
	kind  isa.Opcode // OpSINC, OpSDEC, OpSNOP or OpSEVS
	group int
	point int
	set   uint8 // SEVS: event bits to set
	want  uint8 // SEVS: event bits to wait for (0 = fire and forget)
}

// Synchronizer is the hardware unit orchestrating the run-time behaviour of
// the multi-core system: it tracks synchronization points, merges same-cycle
// operations, clock-gates and resumes cores, forwards interrupts, and — per
// the configured sync-architecture descriptor — scopes barriers to
// mask-defined core groups, times out overdue gated waits, and hosts one
// event-bit word per group for SEVS rendezvous.
type Synchronizer struct {
	nc      int
	npoints int
	points  []Point

	// Descriptor-derived configuration (immutable after construction).
	ngroups int
	groups  [power.MaxSyncGroups]uint8 // member-core mask per sync group
	timeout uint64                     // gated-wait timeout in cycles; 0 = disabled

	state  [isa.MaxCores]CoreState
	wakeAt [isa.MaxCores]uint64 // cycle at which a waking core resumes fetch
	token  [isa.MaxCores]bool   // per-core event token (WFE/SEV semantics)

	irqSub  [isa.MaxCores]uint16
	irqPend [isa.MaxCores]uint16

	// Event-group rendezvous state (SEVS).
	eventBits [power.MaxSyncGroups]uint8 // currently set event bits per group
	eventWant [isa.MaxCores]uint8        // pattern each core waits for; 0 = none
	eventGrp  [isa.MaxCores]uint8        // group of the core's pending wait

	// timeoutAt holds the armed per-core wait deadline (0 = unarmed). A
	// deadline arms when a core is gated while registered on a point or
	// event rendezvous, and fires a recoverable sync-timeout IRQ when the
	// commit cycle reaches it.
	timeoutAt [isa.MaxCores]uint64

	pending []op
	cycle   uint64

	ctr *power.Counters

	// Mirror, when set, write-throughs committed point values to their
	// reserved shared-DM locations (point index == word address).
	Mirror func(point int, value uint16)

	// Obs, when set, receives barrier-traffic notifications (arrivals,
	// releases, timeouts, wakes) stamped with the synchronizer's current
	// commit cycle. Observation only: implementations must not call back
	// into the synchronizer. Like Mirror it is process state, never part
	// of snapshots; the platform installs itself here when a sink is
	// attached and clears it otherwise, so the disabled path is a single
	// nil-interface check per commit event.
	Obs SyncObserver

	// violations records protocol errors (counter underflow/overflow,
	// out-of-range point ids), capped to keep memory bounded.
	violations []string
}

// SyncObserver receives the synchronizer's boundary events. Arrivals and
// releases carry the sync group and point; timeouts carry the recovered
// core and how many points its flag was withdrawn from. Every callback
// fires at a stepped (committed) cycle — none of the fast-forward engines
// can skip one (idle leaps cover only quiescent stretches, spin windows
// contain no sync operations, block strides bail before sync ISE) — so
// the event stream is identical whether or not fast paths are engaged.
type SyncObserver interface {
	// SyncArrive fires when core's flag is set at (group, point).
	SyncArrive(cycle uint64, group, point, core int)
	// SyncRelease fires when an SDEC opens (group, point), resuming the
	// released mask of member cores.
	SyncRelease(cycle uint64, group, point int, released uint8)
	// SyncTimeout fires when core's gated-wait deadline expires and the
	// recoverable sync-timeout IRQ is latched.
	SyncTimeout(cycle uint64, core, withdrawn int)
	// SyncWake fires when core leaves the gated state.
	SyncWake(cycle uint64, core int)
}

// WakeLatency is the number of cycles between the synchronization event
// (commit of the releasing SDEC at cycle T) and the resumed core's next
// fetch (cycle T+WakeLatency). Two cycles make a woken core and the core
// that issued the releasing SDEC resume on exactly the same cycle: the
// releaser executes its own SLEEP at T+1 (falling through via its event
// token) and fetches the next instruction at T+2, which is what restores
// lock-step execution after divergent branches.
const WakeLatency = 2

const maxViolations = 16

// NewSynchronizer returns a synchronizer for nc cores and npoints
// synchronization points, configured by the sync-architecture descriptor
// cfg and accounting activity into ctr. Cores outside [0,nc) are StateOff.
// Group masks are clipped to the instantiated cores; the presets' implicit
// all-core group therefore spans exactly cores [0,nc).
func NewSynchronizer(nc, npoints int, cfg power.Arch, ctr *power.Counters) *Synchronizer {
	if nc <= 0 || nc > isa.MaxCores {
		panic(fmt.Sprintf("core: invalid core count %d", nc))
	}
	s := &Synchronizer{
		nc:      nc,
		npoints: npoints,
		points:  make([]Point, npoints),
		ngroups: cfg.NumGroups(),
		timeout: cfg.TimeoutCycles,
		ctr:     ctr,
	}
	coreMask := uint8(1<<uint(nc) - 1)
	for g := 0; g < s.ngroups; g++ {
		s.groups[g] = cfg.GroupMask(g) & coreMask
	}
	for c := nc; c < isa.MaxCores; c++ {
		s.state[c] = StateOff
	}
	return s
}

// NumPoints returns the configured number of synchronization points.
func (s *Synchronizer) NumPoints() int { return s.npoints }

// State returns the synchronizer's view of core c.
func (s *Synchronizer) State(c int) CoreState { return s.state[c] }

// PointState returns the architectural value of point p.
func (s *Synchronizer) PointState(p int) Point { return s.points[p] }

// Violations returns recorded protocol errors (nil when the run was clean).
func (s *Synchronizer) Violations() []string { return s.violations }

func (s *Synchronizer) violate(format string, args ...any) {
	if len(s.violations) < maxViolations {
		s.violations = append(s.violations, fmt.Sprintf("cycle %d: ", s.cycle)+fmt.Sprintf(format, args...))
	}
}

// NumGroups returns the number of configured sync groups.
func (s *Synchronizer) NumGroups() int { return s.ngroups }

// GroupMask returns the member-core mask of sync group g (clipped to the
// instantiated cores).
func (s *Synchronizer) GroupMask(g int) uint8 {
	if g < 0 || g >= s.ngroups {
		return 0
	}
	return s.groups[g]
}

// TimeoutCycles returns the configured gated-wait timeout (0 = disabled).
func (s *Synchronizer) TimeoutCycles() uint64 { return s.timeout }

// TimeoutDeadline returns core c's armed wait deadline, 0 when unarmed.
func (s *Synchronizer) TimeoutDeadline(c int) uint64 { return s.timeoutAt[c] }

// EventBits returns the currently set event bits of group g.
func (s *Synchronizer) EventBits(g int) uint8 { return s.eventBits[g] }

// EventWant returns the rendezvous pattern core c is waiting for (0 = none).
func (s *Synchronizer) EventWant(c int) uint8 { return s.eventWant[c] }

// Post queues a synchronization operation issued by core c this cycle.
// kind must be OpSINC, OpSDEC, OpSNOP or OpSEVS; imm is the instruction's
// raw 18-bit immediate, carrying the target group alongside the point id
// (or, for SEVS, the set/wait masks) — see the isa package's sync-operand
// packing. Operations addressing an undeclared group, a group the issuing
// core is not a member of, or an out-of-range point are protocol violations
// and are dropped.
func (s *Synchronizer) Post(c int, kind isa.Opcode, imm int) {
	if kind == isa.OpSEVS {
		g := isa.SevsGroupOf(imm)
		if g >= s.ngroups {
			s.violate("core %d: sevs on undeclared group %d", c, g)
			return
		}
		if s.groups[g]&(1<<uint(c)) == 0 {
			s.violate("core %d: sevs on group %d without membership", c, g)
			return
		}
		s.pending = append(s.pending, op{
			core: c, kind: kind, group: g, point: -1,
			set: isa.SevsSetOf(imm), want: isa.SevsWaitOf(imm),
		})
		return
	}
	g, point := isa.SyncGroupOf(imm), isa.SyncPointOf(imm)
	if imm < 0 || point >= s.npoints {
		s.violate("core %d: %v on out-of-range point %d", c, kind, imm)
		return
	}
	if g >= s.ngroups {
		s.violate("core %d: %v on undeclared group %d", c, kind, g)
		return
	}
	if s.groups[g]&(1<<uint(c)) == 0 {
		s.violate("core %d: %v on group %d without membership", c, kind, g)
		return
	}
	s.pending = append(s.pending, op{core: c, kind: kind, group: g, point: point})
}

// RequestSleep handles core c executing SLEEP. It returns true when the core
// must clock-gate; false when a latched event token absorbs the request and
// execution falls through.
func (s *Synchronizer) RequestSleep(c int) bool {
	if s.token[c] {
		s.token[c] = false
		return false
	}
	s.state[c] = StateGated
	return true
}

// Halt marks core c permanently stopped.
func (s *Synchronizer) Halt(c int) { s.state[c] = StateHalted }

// Runnable reports whether core c may fetch at the given cycle, accounting
// for wake latency.
func (s *Synchronizer) Runnable(c int, cycle uint64) bool {
	return s.state[c] == StateRunning && cycle >= s.wakeAt[c]
}

// wake resumes core c (or latches its event token when it is running).
func (s *Synchronizer) wake(c int) {
	switch s.state[c] {
	case StateGated:
		s.state[c] = StateRunning
		s.wakeAt[c] = s.cycle + WakeLatency
		s.ctr.SyncWakes++
		if s.Obs != nil {
			s.Obs.SyncWake(s.cycle, c)
		}
	case StateRunning:
		s.token[c] = true
	}
}

// Quiescent reports whether no core can fetch at the given cycle: every
// core is halted, gated, or running but still inside its wake latency. A
// quiescent platform performs no work, so absent an external event (an ADC
// interrupt) its only future activity is the expiry of pending wake
// latencies — which NextWake exposes. This is the query the platform's idle
// fast-forward engine leaps on.
func (s *Synchronizer) Quiescent(cycle uint64) bool {
	for c := 0; c < s.nc; c++ {
		if s.state[c] == StateRunning && cycle >= s.wakeAt[c] {
			return false
		}
	}
	return true
}

// NextWake returns the earliest cycle strictly after the given cycle at
// which some core becomes runnable absent new synchronization or interrupt
// events, and ok=false when no such internally scheduled wake exists (every
// core is gated or halted, so only an external interrupt can resume
// execution). Armed wait-timeout deadlines are folded in: a gated core with
// a deadline will wake (via its timeout IRQ) at that cycle, so the idle
// fast-forward engine must not leap past it — the deadline cycle is stepped
// and committed exactly.
func (s *Synchronizer) NextWake(cycle uint64) (at uint64, ok bool) {
	for c := 0; c < s.nc; c++ {
		if s.state[c] == StateRunning && s.wakeAt[c] > cycle {
			if !ok || s.wakeAt[c] < at {
				at, ok = s.wakeAt[c], true
			}
		}
		if s.timeout != 0 && s.state[c] == StateGated && s.timeoutAt[c] > cycle {
			if !ok || s.timeoutAt[c] < at {
				at, ok = s.timeoutAt[c], true
			}
		}
	}
	return at, ok
}

// FastForward advances the synchronizer's notion of the current cycle
// without committing anything, as a bulk replacement for the once-per-cycle
// Commit calls skipped while the platform leaps over a quiescent stretch.
// It keeps wake latencies (wake() stamps s.cycle+WakeLatency) and violation
// messages identical to a cycle-by-cycle run. Only valid when no operations
// are pending, which is guaranteed after any completed platform cycle.
func (s *Synchronizer) FastForward(cycle uint64) {
	if len(s.pending) > 0 {
		panic("core: FastForward with pending synchronization operations")
	}
	if s.timeout != 0 {
		for c := 0; c < s.nc; c++ {
			if s.state[c] == StateGated && s.timeoutAt[c] != 0 && s.timeoutAt[c] <= cycle {
				panic("core: FastForward past an armed sync-timeout deadline")
			}
		}
	}
	s.cycle = cycle
}

// SyncState is the deep-copied mutable state of a Synchronizer, captured by
// Snapshot and reinstated by Restore. Fields are exported so platform
// snapshots serialize through encoding/gob.
type SyncState struct {
	Points     []Point
	State      [isa.MaxCores]CoreState
	WakeAt     [isa.MaxCores]uint64
	Token      [isa.MaxCores]bool
	IRQSub     [isa.MaxCores]uint16
	IRQPend    [isa.MaxCores]uint16
	EventBits  [power.MaxSyncGroups]uint8
	EventWant  [isa.MaxCores]uint8
	EventGrp   [isa.MaxCores]uint8
	TimeoutAt  [isa.MaxCores]uint64
	Cycle      uint64
	Violations []string
}

// Snapshot deep-copies the synchronizer's mutable state. Only valid at a
// cycle boundary: pending operations are posted and committed within one
// platform cycle, so a non-empty pending list means the caller is mid-cycle
// and the snapshot would be unreplayable.
func (s *Synchronizer) Snapshot() SyncState {
	if len(s.pending) > 0 {
		panic("core: Snapshot with pending synchronization operations")
	}
	st := SyncState{
		Points:    append([]Point(nil), s.points...),
		State:     s.state,
		WakeAt:    s.wakeAt,
		Token:     s.token,
		IRQSub:    s.irqSub,
		IRQPend:   s.irqPend,
		EventBits: s.eventBits,
		EventWant: s.eventWant,
		EventGrp:  s.eventGrp,
		TimeoutAt: s.timeoutAt,
		Cycle:     s.cycle,
	}
	if len(s.violations) > 0 {
		st.Violations = append([]string(nil), s.violations...)
	}
	return st
}

// Restore reinstates a previously captured state. The synchronizer must have
// been constructed with the same core and point counts the state was captured
// under.
func (s *Synchronizer) Restore(st SyncState) error {
	if len(st.Points) != s.npoints {
		return fmt.Errorf("core: restoring %d sync points onto a synchronizer with %d", len(st.Points), s.npoints)
	}
	for c := 0; c < isa.MaxCores; c++ {
		if (st.State[c] == StateOff) != (c >= s.nc) {
			return fmt.Errorf("core: snapshot core-count mismatch at core %d (have %d cores)", c, s.nc)
		}
	}
	if len(s.pending) > 0 {
		panic("core: Restore with pending synchronization operations")
	}
	copy(s.points, st.Points)
	s.state = st.State
	s.wakeAt = st.WakeAt
	s.token = st.Token
	s.irqSub = st.IRQSub
	s.irqPend = st.IRQPend
	s.eventBits = st.EventBits
	s.eventWant = st.EventWant
	s.eventGrp = st.EventGrp
	s.timeoutAt = st.TimeoutAt
	s.cycle = st.Cycle
	s.violations = nil
	if len(st.Violations) > 0 {
		s.violations = append([]string(nil), st.Violations...)
	}
	return nil
}

// SetSubscription sets core c's interrupt-source mask (MMIO RegIRQSub).
func (s *Synchronizer) SetSubscription(c int, mask uint16) { s.irqSub[c] = mask }

// Subscription returns core c's interrupt-source mask.
func (s *Synchronizer) Subscription(c int) uint16 { return s.irqSub[c] }

// Pending returns core c's pending subscribed interrupts (MMIO RegIRQPend).
func (s *Synchronizer) Pending(c int) uint16 { return s.irqPend[c] }

// ClearPending clears the given pending bits for core c.
func (s *Synchronizer) ClearPending(c int, mask uint16) { s.irqPend[c] &^= mask }

// RaiseIRQ delivers an interrupt source to every subscribed core, waking
// gated subscribers and latching event tokens for running ones.
func (s *Synchronizer) RaiseIRQ(source uint16) {
	s.ctr.IRQs++
	for c := 0; c < s.nc; c++ {
		if s.irqSub[c]&source != 0 {
			s.irqPend[c] |= source
			s.wake(c)
		}
	}
}

// Commit merges and applies all synchronization operations posted during the
// cycle, performing exactly one consistent memory modification per touched
// (group, point), processes event rendezvous, issues the resulting wake-ups,
// and finally arms or fires gated-wait timeouts. Call once at the end of
// every platform cycle, passing the cycle number just simulated. Timeouts
// are evaluated after the merge/apply pass so a legitimate wake landing on
// the deadline cycle beats the deadline's expiry.
func (s *Synchronizer) Commit(cycle uint64) {
	s.cycle = cycle
	if len(s.pending) > 0 {
		s.ctr.SyncOps += uint64(len(s.pending))
		for i := range s.pending {
			s.ctr.SyncGroupOps[s.pending[i].group]++
		}

		// Merge per (group, point). The pending list is tiny (at most one
		// op per core), so a quadratic grouping scan beats allocating a map
		// every cycle. SEVS ops carry point = -1 and are skipped here.
		for i := 0; i < len(s.pending); i++ {
			if s.pending[i].point < 0 {
				continue // SEVS, or already consumed by an earlier group
			}
			g, p := s.pending[i].group, s.pending[i].point
			var setFlags uint8
			incs, decs, nops := 0, 0, 0
			for j := i; j < len(s.pending); j++ {
				o := &s.pending[j]
				if o.point != p || o.group != g {
					continue
				}
				switch o.kind {
				case isa.OpSINC:
					setFlags |= 1 << uint(o.core)
					incs++
				case isa.OpSNOP:
					setFlags |= 1 << uint(o.core)
					nops++
				case isa.OpSDEC:
					decs++
				}
				if j > i {
					o.point = -1 // consumed
					s.ctr.SyncMerged++
				}
			}
			_ = nops
			s.apply(g, p, setFlags, incs, decs)
		}
		s.commitEvents()
		s.pending = s.pending[:0]
	}
	if s.timeout != 0 {
		s.commitTimeouts(cycle)
	}
}

// commitEvents applies this cycle's SEVS operations: all set-bits land in
// their group's event word first, then every registered waiter whose pattern
// is now complete is released (FreeRTOS xEventGroupSync shape), and a group
// whose rendezvous completed with no waiters left clears its bits for the
// next round. A releasing core that is still running has its event token
// latched, so the SLEEP conventionally following SEVS falls through.
func (s *Synchronizer) commitEvents() {
	var touched [power.MaxSyncGroups]bool
	any := false
	for i := range s.pending {
		o := &s.pending[i]
		if o.kind != isa.OpSEVS {
			continue
		}
		s.eventBits[o.group] |= o.set
		if o.want != 0 {
			s.eventWant[o.core] = o.want
			s.eventGrp[o.core] = uint8(o.group)
		}
		touched[o.group] = true
		any = true
	}
	if !any {
		return
	}
	var released [power.MaxSyncGroups]bool
	for c := 0; c < s.nc; c++ {
		if s.eventWant[c] == 0 {
			continue
		}
		g := int(s.eventGrp[c])
		if !touched[g] {
			continue
		}
		if s.eventBits[g]&s.eventWant[c] == s.eventWant[c] {
			s.eventWant[c] = 0
			released[g] = true
			s.wake(c)
		}
	}
	for g := 0; g < s.ngroups; g++ {
		if !released[g] {
			continue
		}
		waiters := false
		for c := 0; c < s.nc; c++ {
			if s.eventWant[c] != 0 && int(s.eventGrp[c]) == g {
				waiters = true
				break
			}
		}
		if !waiters {
			s.eventBits[g] = 0
		}
	}
}

// waiting reports whether gated core c is blocked on a synchronization
// event: registered (flagged) on some point, or holding an unsatisfied
// event rendezvous. Cores sleeping purely for a peripheral interrupt are
// not waiting in this sense and never arm a timeout.
func (s *Synchronizer) waiting(c int) bool {
	if s.eventWant[c] != 0 {
		return true
	}
	bit := uint8(1) << uint(c)
	for i := range s.points {
		if s.points[i].Flags&bit != 0 {
			return true
		}
	}
	return false
}

// commitTimeouts arms and fires the per-core gated-wait deadlines. A core
// arms when it is gated while waiting on a point or event; the deadline
// disarms the moment the core stops being gated or stops waiting, and fires
// when the commit cycle reaches it.
func (s *Synchronizer) commitTimeouts(cycle uint64) {
	for c := 0; c < s.nc; c++ {
		if s.state[c] != StateGated || !s.waiting(c) {
			s.timeoutAt[c] = 0
			continue
		}
		if s.timeoutAt[c] == 0 {
			s.timeoutAt[c] = cycle + s.timeout
			continue
		}
		if cycle >= s.timeoutAt[c] {
			s.fireTimeout(c)
		}
	}
}

// fireTimeout recovers core c from an overdue gated wait: its registration
// flags are withdrawn from every point (each a mirrored read-modify-write,
// so shared DM stays consistent), any event rendezvous is abandoned, the
// sync-timeout IRQ is latched — deliberately ignoring the subscription
// mask, the woken core must be able to observe why it resumed — and the
// core is woken through the ordinary wake path. The stall is recoverable by
// design, so no protocol violation is recorded.
func (s *Synchronizer) fireTimeout(c int) {
	bit := uint8(1) << uint(c)
	withdrawn := 0
	for p := range s.points {
		if s.points[p].Flags&bit == 0 {
			continue
		}
		s.points[p].Flags &^= bit
		withdrawn++
		s.ctr.SyncPointWrites++
		if s.Mirror != nil {
			s.Mirror(p, s.points[p].Value())
		}
	}
	s.eventWant[c] = 0
	s.irqPend[c] |= isa.IRQSyncTimeout
	s.ctr.SyncTimeouts++
	s.timeoutAt[c] = 0
	if s.Obs != nil {
		s.Obs.SyncTimeout(s.cycle, c, withdrawn)
	}
	s.wake(c)
}

// apply performs the single merged read-modify-write of point p on behalf of
// sync group g: the barrier release resumes only flagged members of g.
func (s *Synchronizer) apply(g, p int, setFlags uint8, incs, decs int) {
	pt := &s.points[p]
	if s.Obs != nil && setFlags != 0 {
		for c := 0; c < s.nc; c++ {
			if setFlags&(1<<uint(c)) != 0 {
				s.Obs.SyncArrive(s.cycle, g, p, c)
			}
		}
	}
	pt.Flags |= setFlags
	delta := incs - decs
	nv := int(pt.Counter) + delta
	if nv < 0 {
		s.violate("point %d: counter underflow (%d%+d)", p, pt.Counter, delta)
		nv = 0
	}
	if nv > 255 {
		s.violate("point %d: counter overflow (%d%+d)", p, pt.Counter, delta)
		nv = 255
	}
	pt.Counter = uint8(nv)

	// Paper §III-B: when an SDEC brings the counter to zero, all cores
	// registered in the identification flags are resumed and the point is
	// cleared. The wake is edge-triggered on SDEC so that a consumer
	// registering (SNOP) on an already-idle point keeps sleeping until the
	// next production cycle completes. Under a group descriptor only the
	// releasing group's members are resumed and cleared (with the presets'
	// single all-core group this is every flagged core, the paper's rule).
	if decs > 0 && pt.Counter == 0 && pt.Flags != 0 {
		released := pt.Flags & s.groups[g]
		pt.Flags &^= released
		if s.Obs != nil && released != 0 {
			s.Obs.SyncRelease(s.cycle, g, p, released)
		}
		for c := 0; c < s.nc; c++ {
			if released&(1<<uint(c)) != 0 {
				s.wake(c)
			}
		}
	}

	s.ctr.SyncPointWrites++
	if s.Mirror != nil {
		s.Mirror(p, pt.Value())
	}
}
