// Spin-loop signature tracking.
//
// The busy-wait (MC-nosync) lowering replaces the sync ISE with active
// waiting: a consumer polls a shared data-memory counter in a tight
// load/compare/branch loop until a producer advances it. Those loops defeat
// the platform's quiescence-based idle fast-forward — the spinning core
// fetches and executes on every cycle — yet they perform no work the
// simulator needs to replay individually: a spin iteration's only memory
// traffic is re-reading locations nobody is writing.
//
// SpinTracker is the per-core detector feeding the platform's spin-loop
// fast-forward engine (internal/platform/spinff.go). It keeps a bounded
// history of executed PCs (the loop signature), the set of data addresses
// the window observed (the read set), and a side-effect watermark (the
// write set must be empty: stores, MMIO writes, synchronization operations,
// SLEEP and HALT all disqualify the window). Candidate reports whether the
// recent history is consistent with a small side-effect-free loop; the
// platform then *proves* the stretch periodic — state recurrence over one
// full period with the read set unchanged — before leaping, so the tracker
// only ever has to be a cheap, conservative trigger. A loop the tracker
// misses merely simulates cycle-by-cycle; a loop it wrongly nominates fails
// the platform's recurrence proof and costs nothing (the probed cycles were
// stepped normally anyway).

package core

// Spin-detector geometry. The window must cover at least two full periods
// of the largest recognizable loop so Candidate never extrapolates from a
// single traversal.
const (
	// SpinWindow is the length of the per-core executed-PC history.
	SpinWindow = 64
	// MaxSpinPeriod is the largest loop signature (in executed
	// instructions) recognized as a spin candidate. Loops longer than this
	// fall back to cycle-accurate stepping. 2*MaxSpinPeriod <= SpinWindow.
	MaxSpinPeriod = 24
	// MaxSpinReads bounds the observed-address set: a window reading more
	// distinct locations than this (a scan over a buffer, not a poll of a
	// flag) is never nominated.
	MaxSpinReads = 16
)

// SpinTracker observes one core's executed instructions and nominates
// spin-loop candidates. The zero value is ready to use. All methods are
// O(1) except Candidate, which the platform calls only at arming attempts.
type SpinTracker struct {
	pcs [SpinWindow]int32
	n   uint64 // executed instructions observed in total
	// clean counts instructions observed since the last side effect; the
	// window is only meaningful when clean >= SpinWindow.
	clean uint64

	reads        [MaxSpinReads]uint16
	nreads       int
	readOverflow bool
}

// Reset clears the full history, for platform restore/fork and mode
// switches.
func (t *SpinTracker) Reset() { *t = SpinTracker{} }

// NoteExec records one executed instruction's PC.
func (t *SpinTracker) NoteExec(pc int) {
	t.pcs[t.n%SpinWindow] = int32(pc)
	t.n++
	t.clean++
}

// NoteRead records a data read (banked DM or MMIO) at addr into the
// observed-address set. The set saturates at MaxSpinReads distinct
// addresses, after which the window is disqualified until the next side
// effect (or Reset) clears it.
func (t *SpinTracker) NoteRead(addr uint16) {
	if t.readOverflow {
		return
	}
	for i := 0; i < t.nreads; i++ {
		if t.reads[i] == addr {
			return
		}
	}
	if t.nreads == MaxSpinReads {
		t.readOverflow = true
		return
	}
	t.reads[t.nreads] = addr
	t.nreads++
}

// NoteSideEffect records that the core did something a spin loop must not:
// a store or MMIO write (the write set must stay empty), a synchronization
// operation, SLEEP, or HALT. It restarts the clean window.
func (t *SpinTracker) NoteSideEffect() {
	t.clean = 0
	t.nreads = 0
	t.readOverflow = false
}

// ReadSet returns the distinct data addresses the current clean window
// observed (unspecified order), for diagnostics and tests.
func (t *SpinTracker) ReadSet() []uint16 {
	return append([]uint16(nil), t.reads[:t.nreads]...)
}

// Candidate reports whether the core's recent execution looks like a small
// side-effect-free spin loop, and the loop's signature period in executed
// instructions. It requires a full SpinWindow of history with no side
// effects, a bounded observed-address set, and the PC history to be exactly
// periodic with the smallest period <= MaxSpinPeriod — which the window
// length guarantees was observed for at least two full traversals.
//
// Negative cases fall out by construction: a loop containing a store resets
// the clean window every iteration; an irregular PC history (data-dependent
// iteration counts, a counter register steering different paths) never
// turns periodic; a loop longer than MaxSpinPeriod finds no period. All
// three keep the platform on the cycle-accurate path.
func (t *SpinTracker) Candidate() (period int, ok bool) {
	if t.n < SpinWindow || t.clean < SpinWindow || t.readOverflow {
		return 0, false
	}
	for p := 1; p <= MaxSpinPeriod; p++ {
		if t.periodic(p) {
			return p, true
		}
	}
	return 0, false
}

// periodic reports whether the whole history window repeats with period p.
func (t *SpinTracker) periodic(p int) bool {
	// t.n is the ring index of the oldest entry (the next write position).
	base := t.n % SpinWindow
	for i := 0; i < SpinWindow-p; i++ {
		a := (base + uint64(i)) % SpinWindow
		b := (base + uint64(i) + uint64(p)) % SpinWindow
		if t.pcs[a] != t.pcs[b] {
			return false
		}
	}
	return true
}

// StableEqual compares the synchronizer's current state against a captured
// SyncState, ignoring the cycle stamp and the absolute wake-at cycles: the
// spin fast-forward engine requires separately (via NextWake) that no wake
// latency is pending at either end of the compared window, which makes the
// wake-at values dead state. Armed timeout deadlines are covered by the same
// NextWake precondition (an armed gated wait schedules a future wake, so the
// engine never arms over one), but TimeoutAt is compared anyway as a cheap
// belt-and-braces. Violation messages embed cycle numbers, so only their
// count is compared — violations append-only, and an equal count across the
// window means none were recorded in it.
func (s *Synchronizer) StableEqual(st *SyncState) bool {
	if len(st.Points) != s.npoints || len(st.Violations) != len(s.violations) {
		return false
	}
	for i := range s.points {
		if s.points[i] != st.Points[i] {
			return false
		}
	}
	return s.state == st.State &&
		s.token == st.Token &&
		s.irqSub == st.IRQSub &&
		s.irqPend == st.IRQPend &&
		s.eventBits == st.EventBits &&
		s.eventWant == st.EventWant &&
		s.eventGrp == st.EventGrp &&
		s.timeoutAt == st.TimeoutAt
}
