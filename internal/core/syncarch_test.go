package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
)

// splitArch is a two-group descriptor for four cores: group 0 = cores 0,1;
// group 1 = cores 2,3.
var splitArch = power.Arch{Multi: true, Groups: [power.MaxSyncGroups]uint8{0x03, 0x0C}}

func newSyncArch(nc, npoints int, cfg power.Arch) (*Synchronizer, *power.Counters) {
	ctr := &power.Counters{}
	return NewSynchronizer(nc, npoints, cfg, ctr), ctr
}

// TestGroupScopedRelease: a barrier release on a shared point resumes only
// the releasing group's members; flags held by the other group survive.
func TestGroupScopedRelease(t *testing.T) {
	s, _ := newSyncArch(4, 1, splitArch)
	// Core 2 (group 1) registers on point 0 without touching the counter.
	s.Post(2, isa.OpSNOP, isa.SyncImm(1, 0))
	s.Commit(1)
	if !s.RequestSleep(2) {
		t.Fatal("core 2 should be granted sleep")
	}
	// Core 0 (group 0) produces and completes on the same point.
	s.Post(0, isa.OpSINC, isa.SyncImm(0, 0))
	s.Commit(2)
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Commit(3)
	if !s.RequestSleep(1) {
		t.Fatal("core 1 should be granted sleep")
	}
	s.Post(0, isa.OpSDEC, isa.SyncImm(0, 0))
	s.Commit(4)
	if s.State(1) != StateRunning {
		t.Error("group-0 member must be released by the group-0 SDEC")
	}
	if s.State(2) != StateGated {
		t.Error("group-1 member must survive a group-0 release")
	}
	pt := s.PointState(0)
	if pt.Flags != 0b0100 {
		t.Errorf("flags = %#04b, want only core 2 still registered", pt.Flags)
	}
	// The group-1 release later resumes core 2.
	s.Post(3, isa.OpSINC, isa.SyncImm(1, 0))
	s.Commit(5)
	s.Post(3, isa.OpSDEC, isa.SyncImm(1, 0))
	s.Commit(6)
	if s.State(2) != StateRunning {
		t.Error("group-1 member must be released by the group-1 SDEC")
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

// TestGroupMembershipViolations: operations on an undeclared group or a
// group the issuing core is not a member of are recorded and dropped.
func TestGroupMembershipViolations(t *testing.T) {
	s, _ := newSyncArch(4, 1, splitArch)
	s.Post(2, isa.OpSINC, isa.SyncImm(0, 0)) // core 2 is not in group 0
	s.Post(0, isa.OpSINC, isa.SyncImm(2, 0)) // group 2 is not declared
	s.Post(0, isa.OpSEVS, isa.SevsImm(1, 1, 0))
	s.Commit(1)
	if got := len(s.Violations()); got != 3 {
		t.Fatalf("violations = %v, want 3", s.Violations())
	}
	if pt := s.PointState(0); pt.Flags != 0 || pt.Counter != 0 {
		t.Errorf("dropped ops still mutated the point: %+v", pt)
	}
	if s.EventBits(1) != 0 {
		t.Error("dropped sevs still set event bits")
	}
}

// TestTimeoutFiresAndRecovers: a gated wait that exceeds the descriptor's
// timeout withdraws the core's registrations, latches the sync-timeout IRQ
// and resumes the core — a recovery, not a protocol violation.
func TestTimeoutFiresAndRecovers(t *testing.T) {
	cfg := power.Arch{Multi: true, TimeoutCycles: 10}
	s, ctr := newSyncArch(2, 1, cfg)
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Commit(1)
	if !s.RequestSleep(1) {
		t.Fatal("sleep should be granted")
	}
	s.Commit(2) // arms the deadline: 2 + 10
	if got := s.TimeoutDeadline(1); got != 12 {
		t.Fatalf("deadline = %d, want 12", got)
	}
	// The idle engine must not leap past an armed deadline.
	if at, ok := s.NextWake(2); !ok || at != 12 {
		t.Fatalf("NextWake = %d,%v, want 12,true", at, ok)
	}
	for cyc := uint64(3); cyc < 12; cyc++ {
		s.Commit(cyc)
		if s.State(1) != StateGated {
			t.Fatalf("cycle %d: core woke before the deadline", cyc)
		}
	}
	s.Commit(12)
	if s.State(1) != StateRunning {
		t.Fatal("timeout must resume the core")
	}
	if s.Pending(1)&isa.IRQSyncTimeout == 0 {
		t.Error("timeout must latch the sync-timeout IRQ")
	}
	if pt := s.PointState(0); pt.Flags != 0 {
		t.Errorf("flags = %#02b, want the timed-out registration withdrawn", pt.Flags)
	}
	if ctr.SyncTimeouts != 1 {
		t.Errorf("SyncTimeouts = %d, want 1", ctr.SyncTimeouts)
	}
	if s.TimeoutDeadline(1) != 0 {
		t.Error("deadline must disarm after firing")
	}
	if v := s.Violations(); len(v) != 0 {
		t.Errorf("a recoverable timeout must not record a violation, got %v", v)
	}
}

// TestTimeoutWakeOnDeadlineBeatsExpiry: a legitimate release committing on
// the deadline cycle wins — the merge/apply pass runs before the timeout
// scan, so the core wakes normally and no timeout fires.
func TestTimeoutWakeOnDeadlineBeatsExpiry(t *testing.T) {
	cfg := power.Arch{Multi: true, TimeoutCycles: 10}
	s, ctr := newSyncArch(2, 1, cfg)
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Commit(1)
	s.RequestSleep(1)
	s.Commit(2) // deadline: 12
	s.Post(0, isa.OpSINC, isa.SyncImm(0, 0))
	s.Commit(3)
	s.Post(0, isa.OpSDEC, isa.SyncImm(0, 0))
	s.Commit(12)
	if s.State(1) != StateRunning {
		t.Fatal("release on the deadline cycle must wake the core")
	}
	if ctr.SyncTimeouts != 0 {
		t.Errorf("SyncTimeouts = %d, want 0 (the release beat the deadline)", ctr.SyncTimeouts)
	}
	if s.Pending(1)&isa.IRQSyncTimeout != 0 {
		t.Error("no timeout IRQ may latch when the release wins")
	}
}

// TestTimeoutDisarmsWithoutWait: a core gated purely for a peripheral
// interrupt (no point registration, no event rendezvous) never arms a
// deadline — ADC sleep loops must not be "recovered" out of.
func TestTimeoutDisarmsWithoutWait(t *testing.T) {
	cfg := power.Arch{Multi: true, TimeoutCycles: 10}
	s, ctr := newSyncArch(2, 1, cfg)
	s.SetSubscription(1, 1)
	s.RequestSleep(1)
	for cyc := uint64(1); cyc < 40; cyc++ {
		s.Commit(cyc)
	}
	if s.State(1) != StateGated {
		t.Fatal("an interrupt sleeper must stay gated past the timeout")
	}
	if ctr.SyncTimeouts != 0 {
		t.Errorf("SyncTimeouts = %d, want 0", ctr.SyncTimeouts)
	}
	if _, ok := s.NextWake(40); ok {
		t.Error("an interrupt sleeper schedules no internal wake")
	}
}

// TestEventRendezvous: two cores complete a FreeRTOS-style event-group sync
// — each sets its arrival bit and waits for the full pattern; the second
// arrival releases both and clears the group's bits.
func TestEventRendezvous(t *testing.T) {
	s, _ := newSyncArch(2, 1, power.MC)
	s.Post(0, isa.OpSEVS, isa.SevsImm(0, 0x01, 0x03))
	s.Commit(1)
	if s.EventBits(0) != 0x01 || s.EventWant(0) != 0x03 {
		t.Fatalf("bits=%#02x want=%#02x after first arrival", s.EventBits(0), s.EventWant(0))
	}
	if !s.RequestSleep(0) {
		t.Fatal("first arrival should be granted sleep")
	}
	s.Post(1, isa.OpSEVS, isa.SevsImm(0, 0x02, 0x03))
	s.Commit(2)
	if s.State(0) != StateRunning {
		t.Error("completing the pattern must wake the gated waiter")
	}
	if s.EventWant(0) != 0 || s.EventWant(1) != 0 {
		t.Error("both waits must be satisfied")
	}
	// The completing core was still running: its token is latched, so its
	// conventional SLEEP-after-SEVS falls through.
	if s.RequestSleep(1) {
		t.Error("the completing core's SLEEP must fall through on its token")
	}
	if s.EventBits(0) != 0 {
		t.Errorf("bits = %#02x, want cleared after the rendezvous", s.EventBits(0))
	}
}

// TestEventFireAndForget: a SEVS with wait=0 publishes bits without
// registering; a later want-only SEVS against already-satisfied bits is
// released immediately.
func TestEventFireAndForget(t *testing.T) {
	s, _ := newSyncArch(2, 1, power.MC)
	s.Post(0, isa.OpSEVS, isa.SevsImm(0, 0x05, 0))
	s.Commit(1)
	if s.EventBits(0) != 0x05 {
		t.Fatalf("bits = %#02x, want 0x05 retained (no waiters)", s.EventBits(0))
	}
	if s.EventWant(0) != 0 {
		t.Fatal("fire-and-forget must not register a wait")
	}
	s.Post(1, isa.OpSEVS, isa.SevsImm(0, 0, 0x04))
	s.Commit(2)
	if s.EventWant(1) != 0 {
		t.Error("a wait against already-set bits must satisfy immediately")
	}
	if s.RequestSleep(1) {
		t.Error("the satisfied waiter's SLEEP must fall through on its token")
	}
}

// TestSyncArchSnapshotRoundTrip: a snapshot taken mid-wait — deadline armed,
// event bits and wants outstanding — restores exactly, and the restored
// timeline fires the timeout at the same absolute cycle as the original.
func TestSyncArchSnapshotRoundTrip(t *testing.T) {
	cfg := power.Arch{Multi: true, Groups: [power.MaxSyncGroups]uint8{0x03, 0x0C}, TimeoutCycles: 20}
	mk := func() (*Synchronizer, *power.Counters) { return newSyncArch(4, 2, cfg) }
	s, _ := mk()
	// Core 1: gated on a group-0 point (deadline arms). Core 2: holds an
	// unsatisfied group-1 event wait. Core 3: published a group-1 bit.
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Post(2, isa.OpSEVS, isa.SevsImm(1, 0x01, 0x03))
	s.Post(3, isa.OpSEVS, isa.SevsImm(1, 0, 0))
	s.Commit(1)
	s.RequestSleep(1)
	s.RequestSleep(2)
	s.Commit(2) // deadlines arm: cycle 22
	st := s.Snapshot()

	r, rctr := mk()
	if err := r.Restore(st); err != nil {
		t.Fatal(err)
	}
	if !r.StableEqual(&st) {
		t.Fatal("restored synchronizer does not StableEqual the snapshot")
	}
	if r.TimeoutDeadline(1) != 22 || r.TimeoutDeadline(2) != 22 {
		t.Fatalf("deadlines = %d,%d, want 22,22", r.TimeoutDeadline(1), r.TimeoutDeadline(2))
	}
	if r.EventBits(1) != 0x01 || r.EventWant(2) != 0x03 {
		t.Errorf("event state bits=%#02x want=%#02x not restored", r.EventBits(1), r.EventWant(2))
	}
	// The restored timeline recovers both waits at the captured deadline.
	for cyc := uint64(3); cyc <= 22; cyc++ {
		r.Commit(cyc)
	}
	if rctr.SyncTimeouts != 2 {
		t.Fatalf("SyncTimeouts = %d, want both restored waits recovered", rctr.SyncTimeouts)
	}
	if r.State(1) != StateRunning || r.State(2) != StateRunning {
		t.Error("both cores must be running after the restored timeouts fire")
	}
	if r.EventWant(2) != 0 {
		t.Error("the timed-out event wait must be abandoned")
	}
}

// TestFastForwardRefusesArmedDeadline: leaping to or past an armed deadline
// would skip the timeout commit; the synchronizer must panic rather than
// silently diverge from a cycle-by-cycle run.
func TestFastForwardRefusesArmedDeadline(t *testing.T) {
	cfg := power.Arch{Multi: true, TimeoutCycles: 10}
	s, _ := newSyncArch(2, 1, cfg)
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Commit(1)
	s.RequestSleep(1)
	s.Commit(2)       // deadline: 12
	s.FastForward(11) // up to the cycle before the deadline is fine
	defer func() {
		if recover() == nil {
			t.Error("FastForward past an armed deadline must panic")
		}
	}()
	s.FastForward(12)
}

// TestStableEqualCoversSyncArchState: the spin engine's state comparison
// must notice event and timeout mutations — a leap across a window that
// changed any of them would not replay exactly.
func TestStableEqualCoversSyncArchState(t *testing.T) {
	cfg := power.Arch{Multi: true, TimeoutCycles: 1000}
	s, _ := newSyncArch(2, 1, cfg)
	st := s.Snapshot()
	s.Post(0, isa.OpSEVS, isa.SevsImm(0, 0x01, 0))
	s.Commit(1)
	if s.StableEqual(&st) {
		t.Fatal("event-bit change went unnoticed")
	}
	st = s.Snapshot()
	s.Post(1, isa.OpSNOP, isa.SyncImm(0, 0))
	s.Commit(2)
	s.RequestSleep(1)
	s.Commit(3) // arms core 1's deadline
	if s.StableEqual(&st) {
		t.Fatal("armed timeout deadline went unnoticed")
	}
}
