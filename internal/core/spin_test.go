package core

import (
	"testing"

	"repro/internal/power"
)

// feedLoop replays n executed instructions of a loop with the given PC body.
func feedLoop(t *SpinTracker, body []int, n int) {
	for i := 0; i < n; i++ {
		t.NoteExec(body[i%len(body)])
	}
}

func TestSpinTrackerNominatesSmallLoop(t *testing.T) {
	var tr SpinTracker
	body := []int{100, 101, 102, 103}
	feedLoop(&tr, body, 2*SpinWindow)
	p, ok := tr.Candidate()
	if !ok || p != len(body) {
		t.Fatalf("Candidate() = %d, %v; want %d, true", p, ok, len(body))
	}
}

func TestSpinTrackerFindsSmallestPeriod(t *testing.T) {
	var tr SpinTracker
	// A body that is itself a repeated sub-pattern must be nominated at the
	// sub-pattern's period.
	feedLoop(&tr, []int{7, 8, 7, 8}, 2*SpinWindow)
	if p, ok := tr.Candidate(); !ok || p != 2 {
		t.Fatalf("Candidate() = %d, %v; want 2, true", p, ok)
	}
	// A jump-to-self degenerates to period 1.
	tr.Reset()
	feedLoop(&tr, []int{42}, SpinWindow)
	if p, ok := tr.Candidate(); !ok || p != 1 {
		t.Fatalf("Candidate() = %d, %v; want 1, true", p, ok)
	}
}

func TestSpinTrackerNeedsFullWindow(t *testing.T) {
	var tr SpinTracker
	feedLoop(&tr, []int{1, 2, 3}, SpinWindow-1)
	if _, ok := tr.Candidate(); ok {
		t.Fatal("nominated with less than a full window of history")
	}
}

func TestSpinTrackerRejectsStores(t *testing.T) {
	var tr SpinTracker
	body := []int{10, 11, 12}
	// A store every iteration keeps resetting the clean window: never
	// nominated no matter how long it runs.
	for i := 0; i < 4*SpinWindow; i++ {
		tr.NoteExec(body[i%len(body)])
		if i%len(body) == 1 {
			tr.NoteSideEffect()
		}
	}
	if _, ok := tr.Candidate(); ok {
		t.Fatal("nominated a loop with a store in every iteration")
	}
	// Once the stores stop, a full clean window re-qualifies it.
	feedLoop(&tr, body, SpinWindow)
	if p, ok := tr.Candidate(); !ok || p != len(body) {
		t.Fatalf("Candidate() after stores ceased = %d, %v; want %d, true", p, ok, len(body))
	}
}

func TestSpinTrackerRejectsIrregularHistory(t *testing.T) {
	var tr SpinTracker
	// A deterministic but aperiodic PC walk (inner loop with a growing
	// iteration count) must never be nominated.
	pc := 0
	for i := 0; i < 4*SpinWindow; i++ {
		tr.NoteExec(pc)
		pc = (pc*5 + 3) % 97 // pseudo-random walk, period 97 > window
	}
	if _, ok := tr.Candidate(); ok {
		t.Fatal("nominated an irregular PC history")
	}
}

func TestSpinTrackerRejectsLongLoop(t *testing.T) {
	var tr SpinTracker
	body := make([]int, MaxSpinPeriod+1)
	for i := range body {
		body[i] = 200 + i
	}
	feedLoop(&tr, body, 4*SpinWindow)
	if _, ok := tr.Candidate(); ok {
		t.Fatalf("nominated a %d-instruction loop, above the %d-instruction ceiling", len(body), MaxSpinPeriod)
	}
}

func TestSpinTrackerRejectsWideReadSet(t *testing.T) {
	var tr SpinTracker
	body := []int{50, 51}
	for i := 0; i < 4*SpinWindow; i++ {
		tr.NoteExec(body[i%len(body)])
		// A different address every iteration: a scan, not a poll.
		tr.NoteRead(uint16(i))
	}
	if _, ok := tr.Candidate(); ok {
		t.Fatal("nominated a loop observing an unbounded address set")
	}
	// The same loop polling one location qualifies.
	tr.NoteSideEffect() // clears the saturated read set
	for i := 0; i < SpinWindow; i++ {
		tr.NoteExec(body[i%len(body)])
		tr.NoteRead(300)
	}
	if _, ok := tr.Candidate(); !ok {
		t.Fatal("rejected a single-location poll loop")
	}
	if rs := tr.ReadSet(); len(rs) != 1 || rs[0] != 300 {
		t.Fatalf("ReadSet() = %v, want [300]", rs)
	}
}

func TestSynchronizerStableEqual(t *testing.T) {
	var ctr power.Counters
	s := NewSynchronizer(2, 1, power.MC, &ctr)
	st := s.Snapshot()
	if !s.StableEqual(&st) {
		t.Fatal("fresh synchronizer does not StableEqual its own snapshot")
	}
	// The cycle stamp is explicitly ignored: FastForward must not break
	// equality.
	s.FastForward(1000)
	if !s.StableEqual(&st) {
		t.Fatal("cycle stamp broke StableEqual; it must be ignored")
	}
	// A subscription change is stable state and must break equality.
	s.SetSubscription(0, 1)
	if s.StableEqual(&st) {
		t.Fatal("IRQ subscription change went unnoticed")
	}
	s.SetSubscription(0, 0)
	if !s.StableEqual(&st) {
		t.Fatal("reverting the subscription did not restore equality")
	}
	// A recorded violation must break equality (its count is compared).
	s.Post(0, 99 /* invalid kind on out-of-range point */, 5)
	if s.StableEqual(&st) {
		t.Fatal("violation went unnoticed")
	}
}
