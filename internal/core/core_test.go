package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/power"
)

func newSync(nc, npoints int) (*Synchronizer, *power.Counters) {
	ctr := &power.Counters{}
	return NewSynchronizer(nc, npoints, power.MC, ctr), ctr
}

// TestPaperFigure3a reproduces the paper's Figure 3-a: cores 0, 1 and 2
// jointly produce data for core 4; data is not yet available. After
// core0..2: SINC(#p) and core4: SNOP(#p) the point must read
// flags=0b00010111, counter=3.
func TestPaperFigure3a(t *testing.T) {
	s, _ := newSync(8, 1)
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSINC, 0)
	s.Post(2, isa.OpSINC, 0)
	s.Post(4, isa.OpSNOP, 0)
	s.Commit(1)
	pt := s.PointState(0)
	if pt.Flags != 0b00010111 {
		t.Errorf("flags = %#08b, want 0b00010111", pt.Flags)
	}
	if pt.Counter != 3 {
		t.Errorf("counter = %d, want 3", pt.Counter)
	}
	if pt.Value() != 0b00010111<<8|3 {
		t.Errorf("packed value = %#x", pt.Value())
	}
}

// TestPaperFigure3b reproduces Figure 3-b: cores 0, 1 and 2 entered a
// data-dependent branch (SINC each); core 0 has finished it (SDEC). The
// point must read flags=0b00000111, counter=2.
func TestPaperFigure3b(t *testing.T) {
	s, _ := newSync(8, 1)
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSINC, 0)
	s.Post(2, isa.OpSINC, 0)
	s.Commit(1)
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(2)
	pt := s.PointState(0)
	if pt.Flags != 0b00000111 {
		t.Errorf("flags = %#08b, want 0b00000111", pt.Flags)
	}
	if pt.Counter != 2 {
		t.Errorf("counter = %d, want 2", pt.Counter)
	}
}

func TestSDECDoesNotSetFlag(t *testing.T) {
	s, _ := newSync(4, 1)
	s.Post(1, isa.OpSINC, 0)
	s.Commit(1)
	s.Post(1, isa.OpSINC, 0)
	s.Commit(2)
	s.Post(2, isa.OpSDEC, 0) // core 2 decrements without registering
	s.Commit(3)
	pt := s.PointState(0)
	if pt.Flags != 0b0010 {
		t.Errorf("flags = %#04b, want only core 1", pt.Flags)
	}
	if pt.Counter != 1 {
		t.Errorf("counter = %d, want 1", pt.Counter)
	}
}

func TestWakeOnCounterZero(t *testing.T) {
	s, _ := newSync(4, 1)
	// Consumer core 3 registers and sleeps.
	s.Post(3, isa.OpSNOP, 0)
	s.Commit(1)
	if !s.RequestSleep(3) {
		t.Fatal("consumer should be granted sleep")
	}
	if s.State(3) != StateGated {
		t.Fatalf("state = %v, want gated", s.State(3))
	}
	// Producer registers and, later, completes.
	s.Post(0, isa.OpSINC, 0)
	s.Commit(2)
	if s.State(3) != StateGated {
		t.Fatal("SINC alone must not wake the consumer")
	}
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(3)
	if s.State(3) != StateRunning {
		t.Fatal("SDEC to zero must wake the flagged consumer")
	}
	if s.Runnable(3, 3) || s.Runnable(3, 4) {
		t.Error("woken core must respect the wake latency")
	}
	if !s.Runnable(3, 3+WakeLatency) {
		t.Error("woken core must be runnable after the wake latency")
	}
	// Flags cleared after the wake.
	if pt := s.PointState(0); pt.Flags != 0 || pt.Counter != 0 {
		t.Errorf("point after wake = %+v, want cleared", pt)
	}
}

func TestSNOPOnIdlePointDoesNotWake(t *testing.T) {
	// Edge-triggered semantics: registering on a point whose counter is
	// already zero keeps the core asleep until the next SDEC event.
	s, _ := newSync(2, 1)
	s.Post(1, isa.OpSNOP, 0)
	s.Commit(1)
	if !s.RequestSleep(1) {
		t.Fatal("sleep should be granted")
	}
	s.Commit(2) // nothing happens
	if s.State(1) != StateGated {
		t.Error("core must stay gated on an idle point")
	}
	// The next production cycle releases it.
	s.Post(0, isa.OpSINC, 0)
	s.Commit(3)
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(4)
	if s.State(1) != StateRunning {
		t.Error("core must wake at the next SDEC-to-zero")
	}
}

func TestEventTokenClosesWakeRace(t *testing.T) {
	s, _ := newSync(2, 1)
	// Consumer (core 1) registers while still running.
	s.Post(1, isa.OpSNOP, 0)
	s.Commit(1)
	// Producer completes a full cycle before the consumer sleeps.
	s.Post(0, isa.OpSINC, 0)
	s.Commit(2)
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(3)
	// The wake raced ahead: the consumer must not deadlock.
	if s.RequestSleep(1) {
		t.Fatal("SLEEP must fall through via the event token")
	}
	if s.State(1) != StateRunning {
		t.Error("consumer must still be running")
	}
	// The token is single-use.
	if !s.RequestSleep(1) {
		t.Error("second SLEEP must gate")
	}
}

func TestLockStepResumeAlignment(t *testing.T) {
	// Three cores entered a branch (SINC). Cores 1 and 2 finish early and
	// sleep; core 0 finishes last at cycle T. All three must next be
	// runnable at exactly T+WakeLatency, restoring lock-step.
	s, _ := newSync(3, 1)
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSINC, 0)
	s.Post(2, isa.OpSINC, 0)
	s.Commit(1)

	s.Post(1, isa.OpSDEC, 0)
	s.Commit(2)
	if !s.RequestSleep(1) {
		t.Fatal("core 1 should gate")
	}
	s.Post(2, isa.OpSDEC, 0)
	s.Commit(3)
	if !s.RequestSleep(2) {
		t.Fatal("core 2 should gate")
	}

	const T = 10
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(T)
	// Cores 1 and 2 were gated: woken with latency.
	for _, c := range []int{1, 2} {
		if s.Runnable(c, T+WakeLatency-1) {
			t.Errorf("core %d runnable too early", c)
		}
		if !s.Runnable(c, T+WakeLatency) {
			t.Errorf("core %d not runnable at T+%d", c, WakeLatency)
		}
	}
	// Core 0 received a token; its SLEEP at T+1 falls through, so its
	// next instruction fetch happens at T+2 == T+WakeLatency.
	if s.RequestSleep(0) {
		t.Error("core 0's SLEEP must fall through (token)")
	}
}

func TestSameCycleMergeIsSingleWrite(t *testing.T) {
	s, ctr := newSync(8, 2)
	// Five ops on point 0 and one on point 1, same cycle.
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSINC, 0)
	s.Post(2, isa.OpSINC, 0)
	s.Post(3, isa.OpSDEC, 0)
	s.Post(4, isa.OpSNOP, 0)
	s.Post(5, isa.OpSINC, 1)
	s.Commit(1)
	if ctr.SyncPointWrites != 2 {
		t.Errorf("SyncPointWrites = %d, want 2 (one per touched point)", ctr.SyncPointWrites)
	}
	if ctr.SyncOps != 6 {
		t.Errorf("SyncOps = %d, want 6", ctr.SyncOps)
	}
	if ctr.SyncMerged != 4 {
		t.Errorf("SyncMerged = %d, want 4", ctr.SyncMerged)
	}
	pt := s.PointState(0)
	if pt.Counter != 2 { // 3 SINC - 1 SDEC
		t.Errorf("merged counter = %d, want 2", pt.Counter)
	}
	if pt.Flags != 0b00010111 {
		t.Errorf("merged flags = %#08b", pt.Flags)
	}
}

func TestMergedSDECToZeroWakesOnce(t *testing.T) {
	s, ctr := newSync(4, 1)
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSINC, 0)
	s.Commit(1)
	for _, c := range []int{0, 1} {
		s.Post(c, isa.OpSDEC, 0)
	}
	// Both SDECs land in the same cycle; the merged update reaches zero.
	s.Commit(2)
	if pt := s.PointState(0); pt.Counter != 0 || pt.Flags != 0 {
		t.Errorf("point = %+v, want cleared", pt)
	}
	// Both cores were running: they get tokens, not wakes.
	if ctr.SyncWakes != 0 {
		t.Errorf("SyncWakes = %d, want 0 (tokens only)", ctr.SyncWakes)
	}
	if s.RequestSleep(0) || s.RequestSleep(1) {
		t.Error("both flagged cores must hold event tokens")
	}
}

func TestCounterUnderflowRecorded(t *testing.T) {
	s, _ := newSync(2, 1)
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(1)
	if len(s.Violations()) == 0 || !strings.Contains(s.Violations()[0], "underflow") {
		t.Errorf("violations = %v, want underflow", s.Violations())
	}
	if s.PointState(0).Counter != 0 {
		t.Error("counter must clamp at zero")
	}
}

func TestOutOfRangePointRecorded(t *testing.T) {
	s, _ := newSync(2, 1)
	s.Post(0, isa.OpSINC, 5)
	s.Commit(1)
	if len(s.Violations()) == 0 {
		t.Error("want a violation for out-of-range point")
	}
}

func TestIRQSubscriptionAndWake(t *testing.T) {
	s, ctr := newSync(3, 0)
	s.SetSubscription(0, isa.IRQADC0)
	s.SetSubscription(1, isa.IRQADC1)
	if !s.RequestSleep(0) || !s.RequestSleep(1) || !s.RequestSleep(2) {
		t.Fatal("all cores should gate")
	}
	s.Commit(1)
	s.RaiseIRQ(isa.IRQADC0)
	if s.State(0) != StateRunning {
		t.Error("subscribed core 0 must wake")
	}
	if s.State(1) != StateGated || s.State(2) != StateGated {
		t.Error("non-subscribed cores must stay gated")
	}
	if s.Pending(0)&isa.IRQADC0 == 0 {
		t.Error("pending bit must be latched")
	}
	s.ClearPending(0, isa.IRQADC0)
	if s.Pending(0) != 0 {
		t.Error("pending bit must clear")
	}
	if ctr.IRQs != 1 || ctr.SyncWakes != 1 {
		t.Errorf("IRQs = %d, SyncWakes = %d", ctr.IRQs, ctr.SyncWakes)
	}
}

func TestIRQToRunningCoreLatchesToken(t *testing.T) {
	s, _ := newSync(1, 0)
	s.SetSubscription(0, isa.IRQADC0)
	s.RaiseIRQ(isa.IRQADC0)
	if s.State(0) != StateRunning {
		t.Fatal("core was running")
	}
	if s.RequestSleep(0) {
		t.Error("SLEEP right after a raced IRQ must fall through")
	}
}

func TestHaltedCoreNeverWakes(t *testing.T) {
	s, _ := newSync(2, 1)
	s.Halt(1)
	s.SetSubscription(1, isa.IRQADC0)
	s.RaiseIRQ(isa.IRQADC0)
	if s.State(1) != StateHalted {
		t.Error("halted core must ignore interrupts")
	}
	s.Post(0, isa.OpSINC, 0)
	s.Post(1, isa.OpSNOP, 0) // stale registration
	s.Commit(1)
	s.Post(0, isa.OpSDEC, 0)
	s.Commit(2)
	if s.State(1) != StateHalted {
		t.Error("halted core must ignore sync wakes")
	}
}

func TestOffCoresReported(t *testing.T) {
	s, _ := newSync(3, 0)
	if s.State(5) != StateOff {
		t.Errorf("core 5 state = %v, want off", s.State(5))
	}
}

func TestProducerConsumerFullProtocol(t *testing.T) {
	// Complete protocol walk: consumer SNOPs first, checks for data,
	// sleeps; producer SINC/SDECs per item. Run several rounds and verify
	// no deadlock and exactly one wake per round.
	s, ctr := newSync(2, 1)
	const rounds = 5
	cycle := uint64(0)
	tick := func() { cycle++; s.Commit(cycle) }

	for r := 0; r < rounds; r++ {
		// Consumer registers, sees no data, sleeps.
		s.Post(1, isa.OpSNOP, 0)
		tick()
		if !s.RequestSleep(1) {
			t.Fatalf("round %d: consumer should gate", r)
		}
		// Producer produces.
		s.Post(0, isa.OpSINC, 0)
		tick()
		s.Post(0, isa.OpSDEC, 0)
		tick()
		if s.State(1) != StateRunning {
			t.Fatalf("round %d: consumer not woken", r)
		}
	}
	if ctr.SyncWakes != rounds {
		t.Errorf("SyncWakes = %d, want %d", ctr.SyncWakes, rounds)
	}
}

// Property: committing a random batch of operations in one cycle leaves the
// point in the same state as applying the batch as one atomic merge computed
// independently; the counter never underflows below zero; and the number of
// point writes equals the number of distinct touched points.
func TestQuickMergeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, ctr := newSync(8, 4)

		// Pre-charge counters so SDECs rarely underflow.
		for p := 0; p < 4; p++ {
			for i := 0; i < rng.Intn(4); i++ {
				s.Post(rng.Intn(8), isa.OpSINC, p)
			}
		}
		s.Commit(1)
		before := [4]Point{}
		for p := range before {
			before[p] = s.PointState(p)
		}
		writesBefore := ctr.SyncPointWrites

		nops := rng.Intn(8) + 1
		type rec struct {
			core, point int
			kind        isa.Opcode
		}
		var batch []rec
		kinds := []isa.Opcode{isa.OpSINC, isa.OpSDEC, isa.OpSNOP}
		for i := 0; i < nops; i++ {
			r := rec{core: rng.Intn(8), point: rng.Intn(4), kind: kinds[rng.Intn(3)]}
			batch = append(batch, r)
			s.Post(r.core, r.kind, r.point)
		}
		s.Commit(2)

		touched := map[int]bool{}
		for p := 0; p < 4; p++ {
			var flags uint8
			incs, decs := 0, 0
			used := false
			for _, r := range batch {
				if r.point != p {
					continue
				}
				used = true
				switch r.kind {
				case isa.OpSINC:
					flags |= 1 << uint(r.core)
					incs++
				case isa.OpSNOP:
					flags |= 1 << uint(r.core)
				case isa.OpSDEC:
					decs++
				}
			}
			if used {
				touched[p] = true
			}
			want := before[p]
			want.Flags |= flags
			nv := int(want.Counter) + incs - decs
			if nv < 0 {
				nv = 0
			}
			want.Counter = uint8(nv)
			if decs > 0 && want.Counter == 0 && want.Flags != 0 {
				want.Flags = 0
			}
			got := s.PointState(p)
			if got != want {
				return false
			}
		}
		return ctr.SyncPointWrites-writesBefore == uint64(len(touched))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: under arbitrary op sequences, a gated core either stays gated or
// becomes runnable after exactly WakeLatency cycles — never retroactively.
func TestQuickWakeLatencyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, _ := newSync(4, 2)
		gatedAt := map[int]uint64{}
		for cyc := uint64(1); cyc < 40; cyc++ {
			for c := 0; c < 4; c++ {
				if s.State(c) != StateRunning {
					continue
				}
				switch rng.Intn(6) {
				case 0:
					s.Post(c, isa.OpSINC, rng.Intn(2))
				case 1:
					s.Post(c, isa.OpSDEC, rng.Intn(2))
				case 2:
					s.Post(c, isa.OpSNOP, rng.Intn(2))
				case 3:
					if s.RequestSleep(c) {
						gatedAt[c] = cyc
					}
				}
			}
			s.Commit(cyc)
			for c := 0; c < 4; c++ {
				if s.State(c) == StateRunning {
					if when, was := gatedAt[c]; was {
						// woke at some commit w >= when; runnable only from w+WakeLatency
						if s.Runnable(c, when) {
							return false
						}
						delete(gatedAt, c)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMirrorWriteThrough(t *testing.T) {
	s, _ := newSync(2, 2)
	got := map[int]uint16{}
	s.Mirror = func(p int, v uint16) { got[p] = v }
	s.Post(0, isa.OpSINC, 1)
	s.Commit(1)
	want := s.PointState(1).Value()
	if got[1] != want {
		t.Errorf("mirror wrote %#x, want %#x", got[1], want)
	}
}

func TestNewSynchronizerPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for invalid core count")
		}
	}()
	NewSynchronizer(9, 1, power.MC, &power.Counters{})
}

func TestStateStrings(t *testing.T) {
	for _, s := range []CoreState{StateRunning, StateGated, StateHalted, StateOff} {
		if s.String() == "" {
			t.Errorf("state %d has no name", s)
		}
	}
}

// TestQuiescentAndNextWake exercises the fast-forward queries: quiescence
// must track runnability (including wake latency) and NextWake must expose
// exactly the internally scheduled resume cycles.
func TestQuiescentAndNextWake(t *testing.T) {
	s, _ := newSync(3, 1)
	// All cores start running and runnable: not quiescent, no pending wake.
	if s.Quiescent(1) {
		t.Error("running cores must not be quiescent")
	}
	if _, ok := s.NextWake(1); ok {
		t.Error("no wake should be scheduled for runnable cores")
	}

	// Gate every core: quiescent at any cycle, and with no producer left
	// there is no internal wake either (only an IRQ could resume them).
	for c := 0; c < 3; c++ {
		if !s.RequestSleep(c) {
			t.Fatalf("core %d not gated", c)
		}
	}
	if !s.Quiescent(10) {
		t.Error("all-gated system must be quiescent")
	}
	if _, ok := s.NextWake(10); ok {
		t.Error("all-gated system has no internally scheduled wake")
	}

	// A releasing SDEC at cycle 20 wakes cores 0 and 1 for 20+WakeLatency:
	// the system stays quiescent up to (exclusive) that cycle and NextWake
	// reports it.
	s.Post(0, isa.OpSINC, 0)
	s.Commit(19) // register core 0 (cannot happen while gated; test shortcut)
	s.points[0].Flags |= 1 << 1
	s.Post(2, isa.OpSDEC, 0)
	s.state[0], s.state[1] = StateGated, StateGated
	s.Commit(20)
	want := uint64(20 + WakeLatency)
	at, ok := s.NextWake(20)
	if !ok || at != want {
		t.Errorf("NextWake = %d,%v, want %d,true", at, ok, want)
	}
	if !s.Quiescent(want - 1) {
		t.Error("must stay quiescent until the wake latency expires")
	}
	if s.Quiescent(want) {
		t.Error("woken cores are runnable at the wake cycle")
	}

	// FastForward moves the cycle stamp so later wakes compute the same
	// latency a stepped run would.
	s.FastForward(100)
	s.state[2] = StateGated
	s.RaiseIRQ(0xffff) // nobody subscribed: no effect
	if s.State(2) != StateGated {
		t.Error("unsubscribed IRQ must not wake")
	}
	s.SetSubscription(2, 1)
	s.RaiseIRQ(1)
	if at, ok := s.NextWake(100); !ok || at != 100+WakeLatency {
		t.Errorf("post-FastForward wake = %d,%v, want %d,true", at, ok, uint64(100+WakeLatency))
	}
}
