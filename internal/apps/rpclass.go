package apps

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/prog"
)

// Classifier state-slot layout.
const (
	clsPrev  = 0 // previous conditioned sample (beat detector)
	clsLast  = 1 // last beat index (refractory)
	clsPendR = 2 // pending beat index awaiting its window
	clsPendA = 3 // pending flag
	clsSlots = 4
)

// SC chain-interleave state slots.
const (
	segAct   = 0 // a segment is being processed
	segK     = 1 // next segment sample
	segR     = 2 // descriptor (beat index) of the active segment
	segDone  = 3 // segments completed
	segY0    = 4 // scratch: conditioned lead-0 sample of the current k
	segY1    = 5 // scratch: conditioned lead-1 sample
	segSlots = 6
)

// trainedCentroids computes the embedded classifier tables from a dedicated
// synthetic training record, substituting the paper's pre-trained model.
func trainedCentroids(rp dsp.RPParams, mat [][]int16) (dsp.Centroids, error) {
	cfg := ecg.DefaultConfig()
	cfg.Seed = 7777
	cfg.PathologicalFrac = 0.3
	sig, err := ecg.Synthesize(cfg, 120)
	if err != nil {
		return dsp.Centroids{}, err
	}
	mfp := dsp.DefaultMFParams()
	cond := dsp.MorphFilter(sig.Leads[0], mfp)
	delay := mfp.TotalDelay()
	var beats []int
	var labels []bool
	for _, b := range sig.Beats {
		beats = append(beats, b.RPeak+delay)
		labels = append(labels, b.Pathological)
	}
	return dsp.TrainCentroids(cond, beats, labels, mat, rp)
}

// declareRPData declares the buffers shared by every RP-CLASS lowering.
func declareRPData(d *dataGen, rp dsp.RPParams) error {
	mat := dsp.RPMatrix(rp)
	cents, err := trainedCentroids(rp, mat)
	if err != nil {
		return err
	}
	flat := make([]int16, 0, rp.K*rp.Window)
	for _, row := range mat {
		flat = append(flat, row...)
	}
	d.words("rp_mat", flat)
	d.words("rp_centn", cents.Normal)
	d.words("rp_centp", cents.Patho)
	d.words("rp_cfg", []int16{1})
	for ch := 0; ch < 3; ch++ {
		d.space(fmtSym("rp_rawa%d", ch), RawRingLen, -1)
		d.space(fmtSym("rp_sega%d", ch), SegLen, -1)
		d.space(fmtSym("rp_scnt%d", ch), 1, -1)
	}
	d.space("rp_c0", OutRingLen, -1)
	d.space("rp_acnt", 1, -1)
	d.space("rp_beats", 2*ResultSlots, -1)
	d.space("rp_bcnt", 1, -1)
	d.space("rp_desc", DescQueueLen, -1)
	d.space("rp_dcnt", 1, -1)
	d.space("rp_delres", 4*64, -1)
	d.space("rp_delcnt", 1, -1)
	return nil
}

// emitBeatDetect advances the streaming beat detector (dsp.DetectPeaks): at
// stream index c with conditioned sample v, a beat fires at c-1 when
// prev >= thr, v < prev and the refractory has elapsed; it is parked in the
// pending slots for classification once its window completes.
func emitBeatDetect(g *kgen, c, v *prog.Reg, stSym string, rp dsp.RPParams) {
	b := g.b
	st := b.Temp()
	prev := b.Temp()
	b.La(st, stSym)
	b.Lw(prev, st, clsPrev)
	b.IfNe(c, prog.Zero, func() {
		thr := b.Temp()
		b.Li(thr, int(rp.BeatThr))
		b.IfGe(prev, thr, func() {
			b.IfLt(v, prev, func() {
				r := b.Temp()
				t := b.Temp()
				b.Addi(r, c, -1)
				b.Lw(t, st, clsLast)
				b.Sub(t, r, t)
				b.Li(thr, rp.Refractory+1)
				b.IfGe(t, thr, func() {
					b.Sw(r, st, clsLast)
					b.Sw(r, st, clsPendR)
					one := b.Temp()
					b.Li(one, 1)
					b.Sw(one, st, clsPendA)
					b.Free(one)
				}, nil)
				b.Free(r, t)
			}, nil)
		}, nil)
		b.Free(thr)
	}, nil)
	b.Sw(v, st, clsPrev)
	b.Free(st, prev)
}

// emitClassify projects the pending beat's window and labels it by nearest
// centroid (dsp.Project / dsp.Classify), records the (index, label) pair and
// — for pathological beats — enqueues a descriptor and kicks the delineation
// chain. doneSym supplies the chain's completion count for the queue-full
// check; kick is invoked after a successful enqueue (nil for busy lowering).
func emitClassify(g *kgen, pr *prog.Reg, rp dsp.RPParams, ybufSym, doneSym string, kick func()) {
	b := g.b
	c0 := ring{sym: "rp_c0", len: OutRingLen}

	// Projection: y[k] = (sum of +-window samples >> InShift) >> ProjShift.
	mp := b.Temp()
	yb := b.Temp()
	kk := b.Temp()
	b.La(mp, "rp_mat")
	b.La(yb, ybufSym)
	b.Li(kk, 0)
	kTop := b.NewLabel("proj")
	b.Label(kTop)
	{
		acc := b.Temp()
		jj := b.Temp()
		ww := b.Temp()
		b.Li(acc, 0)
		b.Addi(jj, pr, -rp.Pre)
		b.Li(ww, rp.Window)
		wTop := b.NewLabel("mac")
		b.Label(wTop)
		{
			xv := b.Temp()
			m := b.Temp()
			g.ringAt(xv, jj, 0, c0)
			b.Srai(xv, xv, rp.InShift)
			b.Lw(m, mp, 0)
			b.Addi(mp, mp, 1)
			neg := b.NewLabel("neg")
			done := b.NewLabel("macd")
			b.Blt(m, prog.Zero, neg)
			b.Add(acc, acc, xv)
			b.J(done)
			b.Label(neg)
			b.Sub(acc, acc, xv)
			b.Label(done)
			b.Free(xv, m)
		}
		b.Addi(jj, jj, 1)
		b.Addi(ww, ww, -1)
		b.Bnez(ww, wTop)
		b.Srai(acc, acc, rp.ProjShift)
		b.Add(jj, yb, kk) // reuse jj as address
		b.Sw(acc, jj, 0)
		b.Free(acc, jj, ww)
	}
	b.Addi(kk, kk, 1)
	t := b.Temp()
	b.Li(t, rp.K)
	b.Blt(kk, t, kTop)
	b.Free(t, mp)

	// Distances to the two centroids (L1).
	dN := b.Temp()
	dP := b.Temp()
	cn := b.Temp()
	cp := b.Temp()
	b.Li(dN, 0)
	b.Li(dP, 0)
	b.La(cn, "rp_centn")
	b.La(cp, "rp_centp")
	b.Li(kk, 0)
	dTop := b.NewLabel("dist")
	b.Label(dTop)
	{
		y := b.Temp()
		a := b.Temp()
		diff := b.Temp()
		b.Add(a, yb, kk)
		b.Lw(y, a, 0)
		b.Add(a, cn, kk)
		b.Lw(a, a, 0)
		b.Sub(diff, y, a)
		b.Abs(diff, diff)
		b.Add(dN, dN, diff)
		b.Add(a, cp, kk)
		b.Lw(a, a, 0)
		b.Sub(diff, y, a)
		b.Abs(diff, diff)
		b.Add(dP, dP, diff)
		b.Free(y, a, diff)
	}
	b.Addi(kk, kk, 1)
	t = b.Temp()
	b.Li(t, rp.K)
	b.Blt(kk, t, dTop)
	b.Free(t, kk, yb, cn, cp)

	lab := b.Temp()
	b.Slt(lab, dP, dN) // pathological when closer to the patho centroid
	b.Free(dN, dP)

	// Record the beat (index, label).
	{
		bc := b.Temp()
		base := b.Temp()
		t := b.Temp()
		b.La(base, "rp_bcnt")
		b.Lw(bc, base, 0)
		b.Addi(t, bc, 1)
		b.Sw(t, base, 0)
		b.AndMask(bc, bc, ResultSlots-1)
		b.Slli(bc, bc, 1)
		b.La(base, "rp_beats")
		b.Add(base, base, bc)
		b.Sw(pr, base, 0)
		b.Sw(lab, base, 1)
		b.Free(bc, base, t)
	}

	// Pathological: enqueue a descriptor and wake the chain.
	b.IfNez(lab, func() {
		dc := b.Temp()
		base := b.Temp()
		t := b.Temp()
		b.La(base, "rp_dcnt")
		b.Lw(dc, base, 0)
		// Queue-full guard: outstanding = dcnt - done < DescQueueLen.
		b.La(t, doneSym)
		b.Lw(t, t, 0)
		b.Sub(t, dc, t)
		full := b.Temp()
		b.Li(full, DescQueueLen)
		b.IfLt(t, full, func() {
			b.AndMask(t, dc, DescQueueLen-1)
			b.La(full, "rp_desc")
			b.Add(full, full, t)
			b.Sw(pr, full, 0)
			b.Addi(t, dc, 1)
			b.Sw(t, base, 0)
			if kick != nil {
				kick()
			}
		}, func() {
			// Saturating queue: drop and report.
			b.StoreMMIOImm(0xE1, isa.RegDebugErr)
		})
		b.Free(dc, base, t, full)
	}, nil)
	b.Free(lab)
}

// emitClassifierStep runs detection plus the delayed classification trigger
// for stream index c with conditioned sample v. It takes ownership of v
// (classification needs every register the pool can spare).
func emitClassifierStep(g *kgen, c, v *prog.Reg, stSym, ybufSym, doneSym string, rp dsp.RPParams, kick func()) {
	b := g.b
	emitBeatDetect(g, c, v, stSym, rp)
	b.Free(v)

	// Manual branch structure keeps the live set minimal around the large
	// classification body (branch-over-jump for range safety).
	endL := b.NewLabel("clsend")
	st := b.Temp()
	pa := b.Temp()
	b.La(st, stSym)
	b.Lw(pa, st, clsPendA)
	{
		cont := b.NewLabel("clsp")
		b.Bnez(pa, cont)
		b.J(endL)
		b.Label(cont)
	}
	b.Free(pa)
	pr := b.Temp()
	t := b.Temp()
	b.Lw(pr, st, clsPendR)
	b.Addi(t, pr, TriggerDelay)
	{
		cont := b.NewLabel("clst")
		b.Beq(c, t, cont)
		b.J(endL)
		b.Label(cont)
	}
	b.Free(t)
	b.Sw(prog.Zero, st, clsPendA)
	b.Free(st)
	emitClassify(g, pr, rp, ybufSym, doneSym, kick)
	b.Free(pr)
	b.Label(endL)
}

// buildRPClass generates the RP-CLASS benchmark (paper Fig. 5-c): a
// single-lead heartbeat classifier that activates a three-lead delineation
// chain only for pathological beats — the paper's showcase for combined
// control and data flow with non-uniform workload.
func buildRPClass(arch power.Arch) (*Variant, error) {
	strat := stratFor(arch)
	mfp := mfParams()
	mmp := chainMMDParams()
	rp := rpParams()
	d := newDataGen()
	if err := declareRPData(d, rp); err != nil {
		return nil, err
	}

	if strat == stratSC {
		return buildRPClassSC(d, mfp, mmp, rp)
	}

	d.equ("PT_A", 0)
	d.equ("PT_B", 1)
	d.equ("PT_C", 2)
	d.equ("PT_LOCK", 3)

	pgroups, err := pointGroups(arch, map[string]uint8{
		"PT_A":    0x1F, // core 0 produces; classifier 1 and chain 2-4 consume
		"PT_B":    0x1E, // classifier 1 kicks the chain cores 2-4
		"PT_C":    0x3C, // chain 2-4 produce, delineator 5 consumes
		"PT_LOCK": 0x1C, // lock-step recovery across the chain cores
	})
	if err != nil {
		return nil, err
	}

	// --- core 0: acquisition + lead-0 conditioning ---
	ab := prog.New("rp_cond")
	ag := &kgen{b: ab, strat: strat, groups: pgroups}
	condRings := declareMFRings(d, "rp_mfr", mfp, 0)
	c0 := ring{sym: "rp_c0", len: OutRingLen}
	raw := [3]ring{
		{sym: "rp_rawa0", len: RawRingLen},
		{sym: "rp_rawa1", len: RawRingLen},
		{sym: "rp_rawa2", len: RawRingLen},
	}
	ab.Label("rp_a_entry")
	ag.emitSubscribe(irqMaskAll)
	s := ab.Reg()
	ab.Li(s, 0)
	ab.LoopForever(func(skip string) {
		ag.emitWaitSample(irqMaskAll)
		ag.emitCfgGate("rp_cfg", skip)
		ag.produceBegin("PT_A")
		x0 := ab.Temp()
		b1 := ab.Temp()
		ab.LoadMMIO(x0, adcDataAddr(0))
		ab.LoadMMIO(b1, adcDataAddr(1))
		ag.ringPush(s, b1, raw[1])
		ab.LoadMMIO(b1, adcDataAddr(2))
		ag.ringPush(s, b1, raw[2])
		ab.Free(b1)
		ag.ringPush(s, x0, raw[0])
		y := ab.Temp()
		ag.emitMF(y, x0, s, condRings)
		ab.Free(x0)
		ag.ringPush(s, y, c0)
		ab.Free(y)
		t := ab.Temp()
		base := ab.Temp()
		ab.Addi(t, s, 1)
		ab.La(base, "rp_acnt")
		ab.Sw(t, base, 0)
		ab.Free(t, base)
		ag.produceEnd("PT_A")
		ab.Addi(s, s, 1)
	})
	ab.Halt()
	if err := ab.Err(); err != nil {
		return nil, err
	}

	// --- core 1: beat detection + classification ---
	cb := prog.New("rp_cls")
	cg := &kgen{b: cb, strat: strat, groups: pgroups}
	d.space("rp_cls_st", clsSlots, 1)
	d.space("rp_ybuf", rp.K, 1)
	cb.Label("rp_c_entry")
	// Initialize the refractory state.
	{
		st := cb.Temp()
		t := cb.Temp()
		cb.La(st, "rp_cls_st")
		for i := 0; i < clsSlots; i++ {
			cb.Sw(prog.Zero, st, i)
		}
		cb.Li(t, -(rp.Refractory + 1))
		cb.Sw(t, st, clsLast)
		cb.Free(st, t)
	}
	c := cb.Reg()
	cb.Li(c, 0)
	cb.LoopForever(func(string) {
		cg.consumerWait("PT_A", func(have string) {
			t := cb.Temp()
			base := cb.Temp()
			cb.La(base, "rp_acnt")
			cb.Lw(t, base, 0)
			cb.Bne(t, c, have)
			cb.Free(t, base)
		})
		v := cb.Temp()
		cg.ringAt(v, c, 0, c0)
		emitClassifierStep(cg, c, v, "rp_cls_st", "rp_ybuf", "rp_scnt0", rp, func() {
			if strat == stratSync {
				cb.SincG("PT_B", cg.groupOf("PT_B"))
				cb.SdecG("PT_B", cg.groupOf("PT_B"))
			}
		})
		cb.Addi(c, c, 1)
	})
	cb.Halt()
	if err := cb.Err(); err != nil {
		return nil, err
	}

	// --- cores 2-4: on-demand segment conditioning (lock-step group) ---
	hb := prog.New("rp_chain")
	hg := &kgen{b: hb, strat: strat, lockPoint: "PT_LOCK", groups: pgroups}
	chainRings := declareMFRings(d, "rp_chr", chainMFParams(), 2)
	d.space("rp_ch_slots", 2, 2) // 0: raw base, 1: seg base (per core)
	hb.Label("rp_h_entry")
	{
		id := hb.Temp()
		t := hb.Temp()
		base := hb.Temp()
		hb.LoadMMIO(id, isa.RegCoreID)
		hb.Addi(id, id, -2) // lead index
		hb.La(base, "rp_ch_slots")
		hb.La(t, "rp_rawa0")
		lead2k := hb.Temp()
		hb.Slli(lead2k, id, shiftFor(RawRingLen))
		hb.Add(t, t, lead2k)
		hb.Sw(t, base, 0)
		// seg base = rp_sega0 + lead*SegLen
		hb.La(t, "rp_sega0")
		hb.Li(lead2k, SegLen)
		hb.Mul(lead2k, lead2k, id)
		hb.Add(t, t, lead2k)
		hb.Sw(t, base, 1)
		// completion counter address differs per lead: keep lead around
		// via the scnt write below recomputing from CoreID.
		hb.Free(id, t, base, lead2k)
	}
	kdone := hb.Reg()
	hb.Li(kdone, 0)
	hb.LoopForever(func(string) {
		hg.consumerWait("PT_B", func(have string) {
			t := hb.Temp()
			base := hb.Temp()
			hb.La(base, "rp_dcnt")
			hb.Lw(t, base, 0)
			hb.Bne(t, kdone, have)
			hb.Free(t, base)
		})
		hg.emitResetRings(chainRings)
		r := hb.Reg()
		{
			t := hb.Temp()
			base := hb.Temp()
			hb.AndMask(t, kdone, DescQueueLen-1)
			hb.La(base, "rp_desc")
			hb.Add(base, base, t)
			hb.Lw(r, base, 0)
			hb.Free(t, base)
		}
		// Wait until the acquisition core has published the whole raw
		// segment (acnt > r + SegPost): the per-sample PT_A events wake
		// us for the re-check.
		hg.consumerWait("PT_A", func(have string) {
			t := hb.Temp()
			lim := hb.Temp()
			hb.La(t, "rp_acnt")
			hb.Lw(t, t, 0)
			hb.Sub(t, t, r)
			hb.Li(lim, SegPost+1)
			hb.Bge(t, lim, have)
			hb.Free(t, lim)
		})
		hg.produceBegin("PT_C")
		k := hb.Reg()
		hb.Li(k, 0)
		kTop := hb.NewLabel("seg")
		hb.Label(kTop)
		{
			xr := hb.Temp()
			t := hb.Temp()
			// j = r - SegPre + k, raw sample of this core's lead
			hb.Add(t, r, k)
			hb.Addi(t, t, -(SegPre + RawOffset))
			hb.AndMask(t, t, RawRingLen-1)
			base := hb.Temp()
			hb.La(base, "rp_ch_slots")
			hb.Lw(base, base, 0)
			hb.Add(base, base, t)
			hb.Lw(xr, base, 0)
			hb.Free(base, t)
			y := hb.Temp()
			hg.emitMF(y, xr, k, chainRings)
			hb.Free(xr)
			t = hb.Temp()
			hb.La(t, "rp_ch_slots")
			hb.Lw(t, t, 1)
			hb.Add(t, t, k)
			hb.Sw(y, t, 0)
			hb.Free(t, y)
		}
		hb.Addi(k, k, 1)
		{
			t := hb.Temp()
			hb.Li(t, SegLen)
			hb.Blt(k, t, kTop)
			hb.Free(t)
		}
		hb.Free(k)
		// completion: rp_scnt[lead] = kdone+1
		{
			id := hb.Temp()
			t := hb.Temp()
			hb.LoadMMIO(id, isa.RegCoreID)
			hb.Addi(id, id, -2)
			hb.La(t, "rp_scnt0")
			hb.Add(t, t, id)
			hb.Addi(id, kdone, 1)
			hb.Sw(id, t, 0)
			hb.Free(id, t)
		}
		hg.produceEnd("PT_C")
		hb.Free(r)
		hb.Addi(kdone, kdone, 1)
	})
	hb.Halt()
	if err := hb.Err(); err != nil {
		return nil, err
	}

	// --- core 5: segment combination + delineation ---
	db := prog.New("rp_delin")
	dg := &kgen{b: db, strat: strat, groups: pgroups}
	combSeg := d.newRing("rp_combseg", 16, 5)
	detRing := d.newRing("rp_det", 64, 5)
	d.space("rp_del_st", stSlots, 5)
	db.Label("rp_d_entry")
	ddone := db.Reg()
	db.Li(ddone, 0)
	db.LoopForever(func(string) {
		dg.consumerWait("PT_C", func(have string) {
			nope := db.NewLabel("nseg")
			t := db.Temp()
			base := db.Temp()
			db.La(base, "rp_scnt0")
			for ch := 0; ch < 3; ch++ {
				db.Lw(t, base, ch)
				db.Beq(t, ddone, nope)
			}
			db.Free(t, base)
			db.J(have)
			db.Label(nope)
		})
		dg.emitDetectorInit("rp_del_st", mmp)
		dg.emitMemset(combSeg.sym, combSeg.len)
		dg.emitMemset(detRing.sym, detRing.len)
		k := db.Reg()
		db.Li(k, 0)
		kTop := db.NewLabel("dseg")
		db.Label(kTop)
		{
			a, bb, cc := db.Temp(), db.Temp(), db.Temp()
			base := db.Temp()
			t := db.Temp()
			db.La(base, "rp_sega0")
			db.Add(base, base, k)
			db.Lw(a, base, 0)
			db.Li(t, SegLen)
			db.Add(base, base, t)
			db.Lw(bb, base, 0)
			db.Add(base, base, t)
			db.Lw(cc, base, 0)
			db.Free(base, t)
			comb := db.Temp()
			dg.emitCombine3(comb, a, bb, cc)
			db.Free(a, bb, cc)
			dg.ringPush(k, comb, combSeg)
			db.Free(comb)
			det := db.Temp()
			dg.emitMMDStep(det, k, combSeg, mmp)
			dg.ringPush(k, det, detRing)
			dg.emitDetectorStep(det, k, detRing, "rp_del_st", mmp, func(st *prog.Reg) {
				emitDelRecord(dg, st, ddone)
			})
			db.Free(det)
		}
		db.Addi(k, k, 1)
		{
			t := db.Temp()
			db.Li(t, SegLen)
			db.Blt(k, t, kTop)
			db.Free(t)
		}
		db.Free(k)
		db.Addi(ddone, ddone, 1)
	})
	db.Halt()
	if err := db.Err(); err != nil {
		return nil, err
	}

	nsync := 4
	if strat == stratBusy {
		nsync = 0
	}
	res, err := link.Build(link.Spec{
		Sources: map[string]string{
			"cond": ab.Source(), "cls": cb.Source(),
			"chain": hb.Source(), "delin": db.Source(),
			"data": d.source(),
		},
		CodeBanks: map[string]int{
			"rp_cond": 1, "rp_cls": 2, "rp_chain": 3, "rp_delin": 4,
		},
		PrivCore: d.priv,
		EntryLabels: []string{
			"rp_a_entry", "rp_c_entry",
			"rp_h_entry", "rp_h_entry", "rp_h_entry",
			"rp_d_entry",
		},
		NumSyncPoints: nsync,
		SharedLimit:   0x3800,
	})
	if err != nil {
		return nil, err
	}
	return &Variant{App: RPClass, Arch: arch, Cores: 6, Res: res}, nil
}

// emitDelRecord appends {descriptor, onset, peak, offset} (segment-relative
// indices) to the delineation results.
func emitDelRecord(g *kgen, st, ddone *prog.Reg) {
	b := g.b
	rc := b.Temp()
	base := b.Temp()
	t := b.Temp()
	b.La(base, "rp_delcnt")
	b.Lw(rc, base, 0)
	b.Addi(t, rc, 1)
	b.Sw(t, base, 0)
	b.AndMask(rc, rc, 63)
	b.Slli(rc, rc, 2)
	b.La(base, "rp_delres")
	b.Add(base, base, rc)
	// the triggering descriptor
	b.AndMask(t, ddone, DescQueueLen-1)
	b.La(rc, "rp_desc")
	b.Add(rc, rc, t)
	b.Lw(t, rc, 0)
	b.Sw(t, base, 0)
	b.Lw(t, st, stOnset)
	b.Sw(t, base, 1)
	b.Lw(t, st, stPeakAt)
	b.Sw(t, base, 2)
	b.Lw(t, st, stOffset)
	b.Sw(t, base, 3)
	b.Free(rc, base, t)
}

// emitDelRecordFromSlot is emitDelRecord for the sequential lowering: the
// active descriptor index is fetched from the segment-state block instead of
// a register.
func emitDelRecordFromSlot(g *kgen, st *prog.Reg) {
	b := g.b
	dd := b.Temp()
	b.La(dd, "rp_seg_st")
	b.Lw(dd, dd, segDone)
	emitDelRecord(g, st, dd)
	b.Free(dd)
}

// buildRPClassSC lowers RP-CLASS sequentially: acquisition, conditioning and
// classification every sample, with pending delineation segments processed
// SCChunk segment-samples at a time so the worst-case per-sample load stays
// bounded.
func buildRPClassSC(d *dataGen, mfp dspMF, mmp dspMMD, rp dsp.RPParams) (*Variant, error) {
	b := prog.New("rp_sc")
	g := &kgen{b: b, strat: stratSC}
	condRings := declareMFRings(d, "rp_mfr", mfp, -1)
	var segRings [3]mfRings
	for ch := 0; ch < 3; ch++ {
		segRings[ch] = declareMFRings(d, fmtSym("rpsc%d", ch), chainMFParams(), -1)
	}
	combSeg := d.newRing("rp_combseg", 16, -1)
	detRing := d.newRing("rp_det", 64, -1)
	d.space("rp_del_st", stSlots, -1)
	d.space("rp_cls_st", clsSlots, -1)
	d.space("rp_ybuf", rp.K, -1)
	d.space("rp_seg_st", segSlots, -1)
	c0 := ring{sym: "rp_c0", len: OutRingLen}
	raw := [3]ring{
		{sym: "rp_rawa0", len: RawRingLen},
		{sym: "rp_rawa1", len: RawRingLen},
		{sym: "rp_rawa2", len: RawRingLen},
	}

	b.Label("rp_entry")
	g.emitSubscribe(irqMaskAll)
	g.emitDetectorInit("rp_del_st", mmp)
	{
		st := b.Temp()
		t := b.Temp()
		b.La(st, "rp_cls_st")
		for i := 0; i < clsSlots; i++ {
			b.Sw(prog.Zero, st, i)
		}
		b.Li(t, -(rp.Refractory + 1))
		b.Sw(t, st, clsLast)
		b.La(st, "rp_seg_st")
		for i := 0; i < segSlots; i++ {
			b.Sw(prog.Zero, st, i)
		}
		b.Free(st, t)
	}
	s := b.Reg()
	b.Li(s, 0)
	b.LoopForever(func(skip string) {
		g.emitWaitSample(irqMaskAll)
		g.emitCfgGate("rp_cfg", skip)
		// Acquire all channels, buffer raw history.
		x0 := b.Temp()
		t := b.Temp()
		b.LoadMMIO(x0, adcDataAddr(0))
		b.LoadMMIO(t, adcDataAddr(1))
		g.ringPush(s, t, raw[1])
		b.LoadMMIO(t, adcDataAddr(2))
		g.ringPush(s, t, raw[2])
		b.Free(t)
		g.ringPush(s, x0, raw[0])
		// Condition lead 0 and publish.
		y := b.Temp()
		g.emitMF(y, x0, s, condRings)
		b.Free(x0)
		g.ringPush(s, y, c0)
		{
			t := b.Temp()
			base := b.Temp()
			b.Addi(t, s, 1)
			b.La(base, "rp_acnt")
			b.Sw(t, base, 0)
			b.Free(t, base)
		}
		// Detect + classify (chain completion tracked in rp_scnt0).
		emitClassifierStep(g, s, y, "rp_cls_st", "rp_ybuf", "rp_scnt0", rp, nil)
		// Interleaved chain work.
		for chunk := 0; chunk < SCChunk; chunk++ {
			emitSCChainChunk(g, segRings, combSeg, detRing, raw, mmp)
		}
		b.Addi(s, s, 1)
	})
	b.Halt()
	if err := b.Err(); err != nil {
		return nil, err
	}
	res, err := link.Build(link.Spec{
		Sources:     map[string]string{"code": b.Source(), "data": d.source()},
		CodeBanks:   map[string]int{"rp_sc": 0},
		EntryLabels: []string{"rp_entry"},
		SingleCore:  true,
	})
	if err != nil {
		return nil, err
	}
	return &Variant{App: RPClass, Arch: power.SC, Cores: 1, Res: res}, nil
}

// emitSCChainChunk processes at most one pending segment-sample: it starts a
// queued segment (resetting the filter state) or advances the active one by
// a single fully pipelined step (three leads filtered, combined, derived,
// detected).
func emitSCChainChunk(g *kgen, segRings [3]mfRings, combSeg, detRing ring, raw [3]ring, mmp dsp.MMDParams) {
	b := g.b
	stepL := b.NewLabel("chstep")
	elseL := b.NewLabel("chidle")
	endL := b.NewLabel("chend")
	// Dispatch on the active flag, then release every register before the
	// large bodies (manual branch-over-jump keeps ranges safe).
	st := b.Temp()
	act := b.Temp()
	b.La(st, "rp_seg_st")
	b.Lw(act, st, segAct)
	b.Bnez(act, stepL)
	b.Free(st, act)
	b.J(elseL)

	b.Label(stepL)
	emitSCChainStep(g, segRings, combSeg, detRing, raw, mmp)
	b.J(endL)

	b.Label(elseL)
	{
		// Start the next queued segment, if any.
		st := b.Temp()
		t := b.Temp()
		dc := b.Temp()
		b.La(st, "rp_seg_st")
		b.La(t, "rp_dcnt")
		b.Lw(dc, t, 0)
		b.Lw(t, st, segDone)
		b.IfNe(dc, t, func() {
			for _, m := range segRings {
				g.emitResetRings(m)
			}
			g.emitMemset(combSeg.sym, combSeg.len)
			g.emitMemset(detRing.sym, detRing.len)
			g.emitDetectorInit("rp_del_st", mmp)
			base := b.Temp()
			b.AndMask(dc, t, DescQueueLen-1)
			b.La(base, "rp_desc")
			b.Add(base, base, dc)
			b.Lw(dc, base, 0)
			b.Sw(dc, st, segR)
			b.Sw(prog.Zero, st, segK)
			one := b.Temp()
			b.Li(one, 1)
			b.Sw(one, st, segAct)
			b.Free(base, one)
		}, nil)
		b.Free(st, t, dc)
	}
	b.Label(endL)
}

// emitSCChainStep advances the active segment by one sample k.
func emitSCChainStep(g *kgen, segRings [3]mfRings, combSeg, detRing ring, raw [3]ring, mmp dsp.MMDParams) {
	b := g.b
	// Filter the three leads at k, parking results in the scratch slots.
	for ch := 0; ch < 3; ch++ {
		st := b.Temp()
		k := b.Temp()
		j := b.Temp()
		b.La(st, "rp_seg_st")
		b.Lw(k, st, segK)
		b.Lw(j, st, segR)
		b.Add(j, j, k)
		b.Addi(j, j, -(SegPre + RawOffset))
		xr := b.Temp()
		g.ringAt(xr, j, 0, raw[ch])
		b.Free(j)
		y := b.Temp()
		g.emitMF(y, xr, k, segRings[ch])
		b.Free(xr, k)
		if ch < 2 {
			b.Sw(y, st, segY0+ch)
		} else {
			// Combine and push.
			a, bb := b.Temp(), b.Temp()
			b.Lw(a, st, segY0)
			b.Lw(bb, st, segY1)
			comb := b.Temp()
			g.emitCombine3(comb, a, bb, y)
			b.Free(a, bb, y)
			k2 := b.Temp()
			b.Lw(k2, st, segK)
			g.ringPush(k2, comb, combSeg)
			b.Free(comb)
			det := b.Temp()
			g.emitMMDStep(det, k2, combSeg, mmp)
			g.ringPush(k2, det, detRing)
			// Free the block base across the detector step (tight pool)
			// and reload it afterwards; the record callback fetches the
			// descriptor index from memory itself.
			b.Free(st)
			g.emitDetectorStep(det, k2, detRing, "rp_del_st", mmp, func(stReg *prog.Reg) {
				emitDelRecordFromSlot(g, stReg)
			})
			b.Free(det)
			st = b.Temp()
			b.La(st, "rp_seg_st")
			// Advance k; finish the segment after SegLen samples.
			b.Addi(k2, k2, 1)
			b.Sw(k2, st, segK)
			lim := b.Temp()
			b.Li(lim, SegLen)
			b.IfGe(k2, lim, func() {
				done := b.Temp()
				b.Lw(done, st, segDone)
				b.Addi(done, done, 1)
				b.Sw(done, st, segDone)
				b.Sw(prog.Zero, st, segAct)
				// Mirror the completion counters for result parity
				// with the multi-core mapping.
				base := b.Temp()
				b.La(base, "rp_scnt0")
				for ch := 0; ch < 3; ch++ {
					b.Sw(done, base, ch)
				}
				b.Free(done, base)
			}, nil)
			b.Free(k2, lim)
		}
		if ch < 2 {
			b.Free(y)
		}
		b.Free(st)
	}
}

var _ = fmt.Sprintf // keep fmt for symbol helpers in this file
