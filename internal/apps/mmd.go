package apps

import (
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/prog"
)

// buildMMD generates the 3L-MMD benchmark (paper Fig. 5-b): three leads are
// conditioned in parallel, aggregated into a single stream and delineated
// with multi-scale morphological derivatives. The multi-core mapping uses
// five cores — three lock-step filters, a combiner and a delineator — and
// exercises both synchronization modes: producer-consumer (Fig. 3-a) between
// the stages and lock-step recovery (Fig. 3-b) within the filter phase.
func buildMMD(arch power.Arch) (*Variant, error) {
	strat := stratFor(arch)
	mfp := mfParams()
	mmp := mmdParams()
	d := newDataGen()

	// Shared stage buffers.
	for ch := 0; ch < 3; ch++ {
		d.space(fmtSym("mmd_cnt%d", ch), 1, -1)
		d.space(fmtSym("mmd_out%d", ch), OutRingLen, -1)
	}
	d.space("mmd_comb", OutRingLen, -1)   // combined stream ring
	d.space("mmd_ccnt", 1, -1)            // combined samples produced
	d.space("mmd_dcnt", 1, -1)            // combined samples delineated
	d.space("mmd_res", 3*ResultSlots, -1) // fiducial triples
	d.space("mmd_rescnt", 1, -1)
	d.words("mmd_cfg", []int16{1})
	combRing := ring{sym: "mmd_comb", len: OutRingLen}

	if strat == stratSC {
		return buildMMDSC(d, mfp, mmp, combRing)
	}

	// Sync points and the cores touching each: the replicated filters
	// (0-2) recover lock-step among themselves, produce for the combiner
	// (3) over PT_F2C, and the combiner feeds the delineator (4) over
	// PT_C2D. A descriptor with more than one sync group splits these
	// rendezvous across its groups.
	pgroups, err := pointGroups(arch, map[string]uint8{
		"PT_F2C":  0x0F, // filters 0-2 produce, combiner 3 consumes
		"PT_C2D":  0x18, // combiner 3 produces, delineator 4 consumes
		"PT_LOCK": 0x07, // lock-step recovery across the replicated filters
	})
	if err != nil {
		return nil, err
	}

	// --- filter phase: one segment replicated on cores 0-2 ---
	fb := prog.New("mmd_filter")
	fg := &kgen{b: fb, strat: strat, lockPoint: "PT_LOCK", groups: pgroups}
	d.equ("PT_LOCK", 2)
	d.equ("PT_F2C", 0)
	d.equ("PT_C2D", 1)
	frings := declareMFRings(d, "mmdr", mfp, 0)

	fb.Label("mmd_f_entry")
	id := fb.Reg()
	fb.LoadMMIO(id, isa.RegCoreID)
	fg.emitSubscribeOwnChannel(id)
	s := fb.Reg()
	fb.Li(s, 0)
	fb.LoopForever(func(skip string) {
		fg.emitWaitSampleOwnChannel(id)
		fg.emitCfgGate("mmd_cfg", skip)
		// Register production for the combiner (Fig. 3-a).
		fg.produceBegin("PT_F2C")
		x := fb.Temp()
		t := fb.Temp()
		fb.Li(t, adcDataAddr(0))
		fb.Add(t, t, id)
		fb.Lw(x, t, 0)
		fb.Free(t)
		y := fb.Temp()
		fg.emitMF(y, x, s, frings)
		fb.Free(x)
		emitOutWriteByCore(fg, y, s, id, "mmd_out0", "mmd_cnt0")
		fb.Free(y)
		fg.produceEnd("PT_F2C")
		fb.Addi(s, s, 1)
	})
	fb.Halt()
	if err := fb.Err(); err != nil {
		return nil, err
	}

	// --- combiner: consumes the three conditioned streams ---
	cb := prog.New("mmd_comb_code")
	cg := &kgen{b: cb, strat: strat, groups: pgroups}
	cb.Label("mmd_c_entry")
	c := cb.Reg()
	cb.Li(c, 0)
	cb.LoopForever(func(string) {
		cg.consumerWait("PT_F2C", func(have string) {
			nope := cb.NewLabel("nodata")
			t := cb.Temp()
			base := cb.Temp()
			cb.La(base, "mmd_cnt0")
			for ch := 0; ch < 3; ch++ {
				cb.Lw(t, base, ch)
				cb.Beq(t, c, nope)
			}
			cb.Free(t, base)
			cb.J(have)
			cb.Label(nope)
		})
		// One sample from each lead at index c (the rings are placed
		// contiguously, OutRingLen apart).
		a, bb, cc := cb.Temp(), cb.Temp(), cb.Temp()
		idx := cb.Temp()
		base := cb.Temp()
		cb.AndMask(idx, c, OutRingLen-1)
		cb.La(base, "mmd_out0")
		cb.Add(base, base, idx)
		cb.Lw(a, base, 0)
		cb.Li(idx, OutRingLen)
		cb.Add(base, base, idx)
		cb.Lw(bb, base, 0)
		cb.Add(base, base, idx)
		cb.Lw(cc, base, 0)
		cb.Free(idx)
		comb := cb.Temp()
		cg.emitCombine3(comb, a, bb, cc)
		cb.Free(a, bb, cc)
		cg.produceBegin("PT_C2D")
		cg.ringPush(c, comb, combRing)
		cb.Free(comb)
		t := cb.Temp()
		cb.Addi(t, c, 1)
		cb.La(base, "mmd_ccnt")
		cb.Sw(t, base, 0)
		cb.Free(t, base)
		cg.produceEnd("PT_C2D")
		cb.Addi(c, c, 1)
	})
	cb.Halt()
	if err := cb.Err(); err != nil {
		return nil, err
	}

	// --- delineator: consumes the combined stream ---
	db := prog.New("mmd_delin_code")
	dg := &kgen{b: db, strat: strat, groups: pgroups}
	detRing := d.newRing("mmd_det", 64, 4)
	d.space("mmd_st", stSlots, 4)
	db.Label("mmd_d_entry")
	cd := db.Reg()
	db.Li(cd, 0)
	dg.emitDetectorInit("mmd_st", mmp)
	db.LoopForever(func(string) {
		dg.consumerWait("PT_C2D", func(have string) {
			t := db.Temp()
			base := db.Temp()
			db.La(base, "mmd_ccnt")
			db.Lw(t, base, 0)
			db.Bne(t, cd, have)
			db.Free(t, base)
		})
		det := db.Temp()
		dg.emitMMDStep(det, cd, combRing, mmp)
		dg.ringPush(cd, det, detRing)
		dg.emitDetectorStep(det, cd, detRing, "mmd_st", mmp, func(st *prog.Reg) {
			dg.emitRecordTriple(st, "mmd_res", "mmd_rescnt", ResultSlots)
		})
		db.Free(det)
		t := db.Temp()
		base := db.Temp()
		db.Addi(t, cd, 1)
		db.La(base, "mmd_dcnt")
		db.Sw(t, base, 0)
		db.Free(t, base)
		db.Addi(cd, cd, 1)
	})
	db.Halt()
	if err := db.Err(); err != nil {
		return nil, err
	}

	nsync := 3
	if strat == stratBusy {
		nsync = 0
	}
	res, err := link.Build(link.Spec{
		Sources: map[string]string{
			"filter": fb.Source(),
			"comb":   cb.Source(),
			"delin":  db.Source(),
			"data":   d.source(),
		},
		CodeBanks: map[string]int{
			"mmd_filter":     1, // three cores share this bank (broadcast)
			"mmd_comb_code":  2,
			"mmd_delin_code": 3,
		},
		PrivCore: d.priv,
		EntryLabels: []string{
			"mmd_f_entry", "mmd_f_entry", "mmd_f_entry",
			"mmd_c_entry", "mmd_d_entry",
		},
		NumSyncPoints: nsync,
		// Four 2K-word stage rings: widen the shared section (the
		// threshold between shared and private sections is a mapping
		// directive, paper §III-B step 3).
		SharedLimit: 0x3000,
	})
	if err != nil {
		return nil, err
	}
	return &Variant{App: MMD3L, Arch: arch, Cores: 5, Res: res}, nil
}

// buildMMDSC lowers the same pipeline sequentially for the baseline.
func buildMMDSC(d *dataGen, mfp dspMF, mmp dspMMD, combRing ring) (*Variant, error) {
	b := prog.New("mmd_sc")
	g := &kgen{b: b, strat: stratSC}
	var rings [3]mfRings
	for ch := 0; ch < 3; ch++ {
		rings[ch] = declareMFRings(d, fmtSym("mmdr%d", ch), mfp, -1)
	}
	detRing := d.newRing("mmd_det", 64, -1)
	d.space("mmd_st", stSlots, -1)

	b.Label("mmd_entry")
	g.emitSubscribe(irqMaskAll)
	g.emitDetectorInit("mmd_st", mmp)
	s := b.Reg()
	b.Li(s, 0)
	b.LoopForever(func(skip string) {
		g.emitWaitSample(irqMaskAll)
		g.emitCfgGate("mmd_cfg", skip)
		// Condition each lead, parking the results in the output rings
		// (the combiner below re-reads them, like the multi-core stage).
		for ch := 0; ch < 3; ch++ {
			x := b.Temp()
			y := b.Temp()
			b.LoadMMIO(x, adcDataAddr(ch))
			g.emitMF(y, x, s, rings[ch])
			emitOutWrite(g, y, s, fmtSym("mmd_out%d", ch), fmtSym("mmd_cnt%d", ch))
			b.Free(x, y)
		}
		a, bb, cc := b.Temp(), b.Temp(), b.Temp()
		idx := b.Temp()
		base := b.Temp()
		b.AndMask(idx, s, OutRingLen-1)
		b.La(base, "mmd_out0")
		b.Add(base, base, idx)
		b.Lw(a, base, 0)
		b.Li(idx, OutRingLen)
		b.Add(base, base, idx)
		b.Lw(bb, base, 0)
		b.Add(base, base, idx)
		b.Lw(cc, base, 0)
		b.Free(idx, base)
		comb := b.Temp()
		g.emitCombine3(comb, a, bb, cc)
		b.Free(a, bb, cc)
		g.ringPush(s, comb, combRing)
		b.Free(comb)
		t := b.Temp()
		base = b.Temp()
		b.Addi(t, s, 1)
		b.La(base, "mmd_ccnt")
		b.Sw(t, base, 0)
		b.Free(t, base)
		det := b.Temp()
		g.emitMMDStep(det, s, combRing, mmp)
		g.ringPush(s, det, detRing)
		g.emitDetectorStep(det, s, detRing, "mmd_st", mmp, func(st *prog.Reg) {
			g.emitRecordTriple(st, "mmd_res", "mmd_rescnt", ResultSlots)
		})
		b.Free(det)
		t = b.Temp()
		base = b.Temp()
		b.Addi(t, s, 1)
		b.La(base, "mmd_dcnt")
		b.Sw(t, base, 0)
		b.Free(t, base)
		b.Addi(s, s, 1)
	})
	b.Halt()
	if err := b.Err(); err != nil {
		return nil, err
	}
	res, err := link.Build(link.Spec{
		Sources:     map[string]string{"code": b.Source(), "data": d.source()},
		CodeBanks:   map[string]int{"mmd_sc": 0},
		EntryLabels: []string{"mmd_entry"},
		SingleCore:  true,
	})
	if err != nil {
		return nil, err
	}
	return &Variant{App: MMD3L, Arch: power.SC, Cores: 1, Res: res}, nil
}
