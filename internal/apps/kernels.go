// Package apps builds the paper's three benchmark applications (§IV-D) as
// WB16 programs:
//
//   - 3L-MF:    three-lead morphological filtering (Fig. 5-a)
//   - 3L-MMD:   three-lead filtering + MMD delineation (Fig. 5-b)
//   - RP-CLASS: random-projection heartbeat classification with on-demand
//     three-lead delineation (Fig. 5-c)
//
// Each application is written once against the program-builder DSL and
// lowered three ways, the paper's mapping step: SC (sequential single-core
// baseline), MC (multi-core with the proposed synchronization ISE) and
// MC-nosync (multi-core with active waiting, Figure 6's middle bars).
// The generated kernels mirror the internal/dsp golden models instruction
// for instruction, so simulator output is verified word-for-word.
package apps

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/prog"
)

// strategy selects the synchronization lowering.
type strategy uint8

const (
	stratSC   strategy = iota // sequential, sleep on ADC interrupts
	stratSync                 // proposed: SINC/SDEC/SNOP/SLEEP
	stratBusy                 // active waiting, no sync ISE, no gating
)

// ring is a power-of-two circular buffer bound to a linker symbol.
type ring struct {
	sym string
	len int
}

func (r ring) mask() int { return r.len - 1 }

// dataGen accumulates the generated data segments.
type dataGen struct {
	src  []string
	priv map[string]int // segment name -> core for private segments
}

func newDataGen() *dataGen {
	return &dataGen{priv: map[string]int{}}
}

// space declares an uninitialized buffer segment and returns its base label.
// core < 0 means shared.
func (d *dataGen) space(name string, words, core int) string {
	d.src = append(d.src, fmt.Sprintf(".data %s\n%s:\n .space %d\n", name, name, words))
	if core >= 0 {
		d.priv[name] = core
	}
	return name
}

// equ declares a named constant.
func (d *dataGen) equ(name string, v int) string {
	d.src = append(d.src, fmt.Sprintf(".equ %s, %d\n", name, v))
	return name
}

// words declares an initialized shared table.
func (d *dataGen) words(name string, vals []int16) string {
	s := fmt.Sprintf(".data %s\n%s:\n", name, name)
	for i := 0; i < len(vals); i += 8 {
		s += " .word "
		for j := i; j < i+8 && j < len(vals); j++ {
			if j > i {
				s += ", "
			}
			s += fmt.Sprintf("%d", vals[j])
		}
		s += "\n"
	}
	d.src = append(d.src, s)
	return name
}

func (d *dataGen) source() string {
	out := ""
	for _, s := range d.src {
		out += s
	}
	return out
}

// newRing declares a ring buffer segment. Power-of-two length required.
func (d *dataGen) newRing(name string, length, core int) ring {
	if length&(length-1) != 0 {
		panic(fmt.Sprintf("apps: ring %s length %d not a power of two", name, length))
	}
	d.space(name, length, core)
	return ring{sym: name, len: length}
}

// kgen couples a code builder with emission helpers shared by the kernels.
type kgen struct {
	b     *prog.Builder
	strat strategy
	// lockPoint is the sync point used for lock-step recovery regions;
	// empty disables them (single-core phases and busy-wait lowering).
	lockPoint string
	// groups maps sync points to the hardware sync group serving them on a
	// descriptor architecture with more than one group (see pointGroups).
	// nil — the presets' case — keeps every point on group 0, the paper's
	// single barrier, so the generated assembly is unchanged.
	groups map[string]int
}

// groupOf returns the sync group a point is served by (0 when unmapped).
func (g *kgen) groupOf(point string) int { return g.groups[point] }

// syncRegion wraps body in the lock-step recovery idiom when enabled.
func (g *kgen) syncRegion(body func()) {
	if g.strat == stratSync && g.lockPoint != "" {
		g.b.SyncRegionG(g.lockPoint, g.groupOf(g.lockPoint), body)
		return
	}
	body()
}

// ringPush stores v into r at index (s & mask).
func (g *kgen) ringPush(s, v *prog.Reg, r ring) {
	b := g.b
	t := b.Temp()
	base := b.Temp()
	b.AndMask(t, s, r.mask())
	b.La(base, r.sym)
	b.Add(base, base, t)
	b.Sw(v, base, 0)
	b.Free(t, base)
}

// ringAt loads dst = r[(s - back) & mask].
func (g *kgen) ringAt(dst, s *prog.Reg, back int, r ring) {
	b := g.b
	t := b.Temp()
	base := b.Temp()
	b.Addi(t, s, -back)
	b.AndMask(t, t, r.mask())
	b.La(base, r.sym)
	b.Add(base, base, t)
	b.Lw(dst, base, 0)
	b.Free(t, base)
}

// ringScan computes the causal window min (or max) of the last l samples of
// r into acc: the naive data-dependent compare-and-branch loop whose
// divergence the paper's lock-step recovery targets.
func (g *kgen) ringScan(acc, s *prog.Reg, l int, r ring, max bool) {
	b := g.b
	j := b.Temp()
	base := b.Temp()
	cnt := b.Temp()
	t := b.Temp()
	v := b.Temp()

	b.Addi(j, s, -(l - 1))
	b.La(base, r.sym)
	// First element initializes the accumulator.
	b.AndMask(t, j, r.mask())
	b.Add(t, base, t)
	b.Lw(acc, t, 0)
	b.Li(cnt, l-1)
	if l > 1 {
		top := b.NewLabel("scan")
		skip := b.NewLabel("noupd")
		b.Label(top)
		b.Addi(j, j, 1)
		b.AndMask(t, j, r.mask())
		b.Add(t, base, t)
		b.Lw(v, t, 0)
		// Data-dependent update with an extra bookkeeping instruction
		// on the taken-update path (real kernels track the extremum
		// position). The timing imbalance means cores whose branch
		// outcomes differ slip out of alignment — exactly the
		// divergence the paper's SINC/SDEC regions recover from
		// (§III-B, method of [8]).
		if max {
			b.Blt(v, acc, skip)
		} else {
			b.Bge(v, acc, skip)
		}
		b.Mov(acc, v)
		b.Mov(t, j) // extremum-position upkeep
		b.Label(skip)
		b.Addi(cnt, cnt, -1)
		b.Bnez(cnt, top)
	}
	b.Free(j, base, cnt, t, v)
}

// mfRings is one morphological-filter instance's buffer set.
type mfRings struct {
	raw, ero, opn, dil, det, nsEro, nsDil ring
	p                                     dsp.MFParams
}

// declareMFRings allocates the instance's rings (core < 0: shared).
func declareMFRings(d *dataGen, prefix string, p dsp.MFParams, core int) mfRings {
	pow2 := func(min int) int {
		n := 1
		for n < min {
			n <<= 1
		}
		return n
	}
	return mfRings{
		p:     p,
		raw:   d.newRing(prefix+"_raw", pow2(p.BaselineDelay()+1), core),
		ero:   d.newRing(prefix+"_ero", pow2(p.LOpen), core),
		opn:   d.newRing(prefix+"_opn", pow2(p.LClose), core),
		dil:   d.newRing(prefix+"_dil", pow2(p.LClose), core),
		det:   d.newRing(prefix+"_det", pow2(p.LNoise), core),
		nsEro: d.newRing(prefix+"_nse", pow2(p.LNoise), core),
		nsDil: d.newRing(prefix+"_nsd", pow2(p.LNoise), core),
	}
}

// totalWords returns the instance's buffer footprint.
func (m mfRings) totalWords() int {
	return m.raw.len + m.ero.len + m.opn.len + m.dil.len + m.det.len + m.nsEro.len + m.nsDil.len
}

// emitMF generates one streaming conditioning step (dsp.MFState.Push): x is
// the raw sample, s the sample counter; the conditioned sample lands in y.
// Each window scan is a data-dependent segment wrapped in a lock-step
// recovery region when the strategy calls for it.
func (g *kgen) emitMF(y, x, s *prog.Reg, m mfRings) {
	b := g.b
	p := m.p
	t := b.Temp()

	xd := b.Temp()
	b.Comment("MF: opening (erosion + dilation)")
	g.ringPush(s, x, m.raw)
	g.syncRegion(func() {
		g.ringScan(t, s, p.LOpen, m.raw, false)
		g.ringPush(s, t, m.ero)
		g.ringScan(t, s, p.LOpen, m.ero, true)
	})
	g.ringPush(s, t, m.opn)
	b.Comment("MF: closing (dilation + erosion) + detrend")
	g.syncRegion(func() {
		g.ringScan(t, s, p.LClose, m.opn, true)
		g.ringPush(s, t, m.dil)
		g.ringScan(t, s, p.LClose, m.dil, false)
	})
	g.ringAt(xd, s, p.BaselineDelay(), m.raw)
	b.Sub(xd, xd, t) // detrended sample
	g.ringPush(s, xd, m.det)
	b.Comment("MF: noise-suppression stage 1")
	g.syncRegion(func() {
		g.ringScan(t, s, p.LNoise, m.det, false)
		g.ringPush(s, t, m.nsEro)
		g.ringScan(t, s, p.LNoise, m.det, true)
		g.ringPush(s, t, m.nsDil)
	})
	b.Comment("MF: noise-suppression stage 2")
	g.syncRegion(func() {
		g.ringScan(t, s, p.LNoise, m.nsEro, true)
		g.ringScan(xd, s, p.LNoise, m.nsDil, false)
	})
	b.Add(y, t, xd)
	b.Srai(y, y, 1)
	b.Free(t, xd)
}

// emitResetRings zeroes an MF instance's rings and is used by the RP-CLASS
// delineation chain, whose segment filtering starts from clean state (the
// golden model filters the extracted segment with zero history).
func (g *kgen) emitResetRings(m mfRings) {
	for _, r := range []ring{m.raw, m.ero, m.opn, m.dil, m.det, m.nsEro, m.nsDil} {
		g.emitMemset(r.sym, r.len)
	}
}

// emitMemset zeroes words at a symbol.
func (g *kgen) emitMemset(sym string, words int) {
	b := g.b
	base := b.Temp()
	cnt := b.Temp()
	b.La(base, sym)
	b.Li(cnt, words)
	top := b.NewLabel("memset")
	b.Label(top)
	b.Sw(prog.Zero, base, 0)
	b.Addi(base, base, 1)
	b.Addi(cnt, cnt, -1)
	b.Bnez(cnt, top)
	b.Free(base, cnt)
}

// emitCombine3 computes y = (|a| + |b| + |c|) >> 1 (dsp.Combine3).
func (g *kgen) emitCombine3(y, a, bb, c *prog.Reg) {
	b := g.b
	t := b.Temp()
	b.Abs(y, a)
	b.Abs(t, bb)
	b.Add(y, y, t)
	b.Abs(t, c)
	b.Add(y, y, t)
	b.Srai(y, y, 1)
	b.Free(t)
}

// emitMMDStep computes det[n] for the streaming delineator: the combined
// sample must already be pushed into comb at counter s. Matches
// dsp.DetectionStream: det = (|d_s1| + |d_s2|) >> 1 with
// d_s = max(win) + min(win) - 2*comb[n - s/2], window length scale+1.
func (g *kgen) emitMMDStep(det, s *prog.Reg, comb ring, p dsp.MMDParams) {
	b := g.b
	mx := b.Temp()
	mn := b.Temp()
	ctr := b.Temp()
	for i, scale := range []int{p.Scale1, p.Scale2} {
		g.syncRegion(func() {
			g.ringScan(mx, s, scale+1, comb, true)
			g.ringScan(mn, s, scale+1, comb, false)
		})
		g.ringAt(ctr, s, scale/2, comb)
		b.Add(mx, mx, mn)
		b.Sub(mx, mx, ctr)
		b.Sub(mx, mx, ctr) // d_s = max + min - 2*center
		if i == 0 {
			b.Abs(det, mx)
		} else {
			b.Abs(mx, mx)
			b.Add(det, det, mx)
		}
	}
	b.Srai(det, det, 1)
	b.Free(mx, mn, ctr)
}

// emitCfgGate reads a shared configuration word and skips to skipLabel when
// it is zero (a soft enable). Replicated lock-step cores read the same
// shared location in the same cycle, which the crossbar merges into one
// broadcast access — the data-memory counterpart of instruction
// broadcasting (Table I's "DM Broadcast").
func (g *kgen) emitCfgGate(cfgSym, skipLabel string) {
	b := g.b
	t := b.Temp()
	base := b.Temp()
	b.La(base, cfgSym)
	b.Lw(t, base, 0)
	cont := b.NewLabel("cfgok")
	b.Bnez(t, cont) // branch-over-jump: skipLabel may be far away
	b.J(skipLabel)
	b.Label(cont)
	b.Free(t, base)
}

// ringAtReg loads dst = r[(s - back) & mask] with a register-held distance.
func (g *kgen) ringAtReg(dst, s, back *prog.Reg, r ring) {
	b := g.b
	t := b.Temp()
	base := b.Temp()
	b.Sub(t, s, back)
	b.AndMask(t, t, r.mask())
	b.La(base, r.sym)
	b.Add(base, base, t)
	b.Lw(dst, base, 0)
	b.Free(t, base)
}

// Detector state-slot layout (one private scalar block per delineator).
const (
	stMode   = 0 // 0 idle, 1 peak search, 2 waiting for the edge window
	stPeakV  = 1
	stPeakAt = 2
	stLeft   = 3
	stLast   = 4
	stOnset  = 5
	stOffset = 6
	stSlots  = 7
)

// emitDetectorInit resets the QRS-detector state block.
func (g *kgen) emitDetectorInit(stSym string, p dsp.MMDParams) {
	b := g.b
	st := b.Temp()
	t := b.Temp()
	b.La(st, stSym)
	for i := 0; i < stSlots; i++ {
		b.Sw(prog.Zero, st, i)
	}
	b.Li(t, -(p.Refractory + 1))
	b.Sw(t, st, stLast)
	b.Free(st, t)
}

// emitDetectorStep advances the streaming QRS detector by one sample: det is
// the detection-stream value at index n (already pushed into detRing). The
// streaming machine is cycle-for-cycle equivalent to dsp.Delineate except
// that fiducials whose edge window extends past the processed samples are
// still pending (dsp.DelineateStreamed). record is emitted with the state
// block in st: slots stOnset/stPeakAt/stOffset hold the fiducials.
func (g *kgen) emitDetectorStep(det, n *prog.Reg, detRing ring, stSym string, p dsp.MMDParams, record func(st *prog.Reg)) {
	b := g.b
	st := b.Temp()
	mode := b.Temp()
	b.La(st, stSym)
	b.Lw(mode, st, 0)

	// mode 0: idle — arm on a threshold crossing outside the refractory.
	b.IfEq(mode, prog.Zero, func() {
		t := b.Temp()
		thr := b.Temp()
		b.Lw(t, st, stLast)
		b.Sub(t, n, t)            // n - last
		b.Li(thr, p.Refractory+1) // strict: n - last > refractory
		b.IfGe(t, thr, func() {
			b.Li(thr, int(p.Thr))
			b.IfGe(det, thr, func() {
				b.Sw(det, st, stPeakV)
				b.Sw(n, st, stPeakAt)
				lt := b.Temp()
				b.Li(lt, p.PeakWin)
				b.Sw(lt, st, stLeft)
				b.Li(lt, 1)
				b.Sw(lt, st, stMode)
				b.Free(lt)
			}, nil)
		}, nil)
		b.Free(t, thr)
	}, nil)

	// mode 1: peak search over the next PeakWin samples (strict >).
	one := b.Temp()
	b.Li(one, 1)
	b.IfEq(mode, one, func() {
		pv := b.Temp()
		b.Lw(pv, st, stPeakV)
		b.IfLt(pv, det, func() { // det > peakV
			b.Sw(det, st, stPeakV)
			b.Sw(n, st, stPeakAt)
		}, nil)
		b.Lw(pv, st, stLeft)
		b.Addi(pv, pv, -1)
		b.Sw(pv, st, stLeft)
		b.IfEq(pv, prog.Zero, func() {
			t := b.Temp()
			b.Li(t, 2)
			b.Sw(t, st, stMode)
			b.Free(t)
		}, nil)
		b.Free(pv)
	}, nil)

	// mode 2: when the edge window is complete, localize onset/offset.
	b.Addi(one, one, 1) // == 2
	b.IfEq(mode, one, func() {
		pa := b.Temp()
		t := b.Temp()
		b.Lw(pa, st, stPeakAt)
		b.Addi(t, pa, p.EdgeWin)
		b.IfEq(n, t, func() {
			edge := b.Temp()
			b.Lw(edge, st, stPeakV)
			b.Srai(edge, edge, p.EdgeDiv)

			// Onset: walk back from the peak while det >= edge.
			off := b.Temp()
			v := b.Temp()
			b.Sw(pa, st, stOnset)
			b.Li(off, 0)
			oTop := b.NewLabel("onset")
			oEnd := b.NewLabel("onsetend")
			b.Label(oTop)
			b.Addi(t, off, p.EdgeWin) // back distance = (n-peak) + off
			g.ringAtReg(v, n, t, detRing)
			b.Blt(v, edge, oEnd)
			b.Sub(t, pa, off)
			b.Sw(t, st, stOnset)
			b.Addi(off, off, 1)
			b.Li(t, p.EdgeWin)
			b.Bge(t, off, oTop)
			b.Label(oEnd)

			// Offset: walk forward from the peak while det >= edge.
			b.Sw(pa, st, stOffset)
			b.Li(off, 0)
			fTop := b.NewLabel("offs")
			fEnd := b.NewLabel("offsend")
			b.Label(fTop)
			b.Li(t, p.EdgeWin)
			b.Sub(t, t, off) // back distance = (n-peak) - off
			g.ringAtReg(v, n, t, detRing)
			b.Blt(v, edge, fEnd)
			b.Add(t, pa, off)
			b.Sw(t, st, stOffset)
			b.Addi(off, off, 1)
			b.Li(t, p.EdgeWin)
			b.Bge(t, off, fTop)
			b.Label(fEnd)
			b.Free(edge, off, v)

			b.Sw(pa, st, stLast)
			b.Sw(prog.Zero, st, stMode)
			record(st)
		}, nil)
		b.Free(pa, t)
	}, nil)
	b.Free(one, st, mode)
}

// emitRecordTriple appends (onset, peak, offset) from the detector state to
// a shared result buffer of 3-word slots with a shared count.
func (g *kgen) emitRecordTriple(st *prog.Reg, resSym, cntSym string, slots int) {
	b := g.b
	rc := b.Temp()
	base := b.Temp()
	t := b.Temp()
	b.La(base, cntSym)
	b.Lw(rc, base, 0)
	b.Addi(t, rc, 1)
	b.Sw(t, base, 0)
	b.AndMask(rc, rc, slots-1)
	// slot offset = rc*3
	b.Slli(t, rc, 1)
	b.Add(rc, rc, t)
	b.La(base, resSym)
	b.Add(base, base, rc)
	b.Lw(t, st, stOnset)
	b.Sw(t, base, 0)
	b.Lw(t, st, stPeakAt)
	b.Sw(t, base, 1)
	b.Lw(t, st, stOffset)
	b.Sw(t, base, 2)
	b.Free(rc, base, t)
}

// adcDataAddr returns the MMIO address of an ADC channel's data register.
func adcDataAddr(ch int) int { return isa.RegADCData0 + ch }

// emitWaitSample blocks until the ADC channels in mask are ready via
// interrupt-driven sleep. All lowerings keep conventional ADC interrupts;
// the paper's no-sync comparison point replaces only the producer-consumer
// synchronization with active waiting (Figure 6: "performing active waiting
// for the producer-consumer relationships").
func (g *kgen) emitWaitSample(mask int) {
	b := g.b
	st := b.Temp()
	top := b.NewLabel("wadc")
	b.Label(top)
	b.Sleep()
	b.LoadMMIO(st, isa.RegADCStatus)
	b.Andi(st, st, mask)
	b.Beqz(st, top)
	b.StoreMMIOImm(mask, isa.RegIRQPend)
	b.Free(st)
}

// emitSubscribe subscribes the issuing core to the IRQ mask.
func (g *kgen) emitSubscribe(mask int) {
	g.b.StoreMMIOImm(mask, isa.RegIRQSub)
}

// emitWaitSampleOwnChannel waits for the issuing core's own ADC channel
// (channel == core id), the idiom of the replicated filter phases.
func (g *kgen) emitWaitSampleOwnChannel(id *prog.Reg) {
	b := g.b
	m := b.Temp()
	st := b.Temp()
	b.Li(m, 1)
	b.Sll(m, m, id)
	top := b.NewLabel("wown")
	b.Label(top)
	b.Sleep()
	b.LoadMMIO(st, isa.RegADCStatus)
	b.And(st, st, m)
	b.Beqz(st, top)
	b.StoreMMIO(m, isa.RegIRQPend)
	b.Free(m, st)
}

// emitSubscribeOwnChannel subscribes the issuing core to its own channel.
func (g *kgen) emitSubscribeOwnChannel(id *prog.Reg) {
	b := g.b
	m := b.Temp()
	b.Li(m, 1)
	b.Sll(m, m, id)
	b.StoreMMIO(m, isa.RegIRQSub)
	b.Free(m)
}

// produceBegin/produceEnd bracket one produced item (paper Fig. 3-a):
// the proposed lowering registers with SINC and completes with SDEC; the
// busy lowering relies on the consumer polling the counters.
func (g *kgen) produceBegin(point string) {
	if g.strat == stratSync {
		g.b.SincG(point, g.groupOf(point))
	}
}

func (g *kgen) produceEnd(point string) {
	if g.strat == stratSync {
		g.b.SdecG(point, g.groupOf(point))
	}
}

// consumerWait emits the consumer idiom around a data-availability check:
// check() must branch to haveLabel when data is present. With the proposed
// approach the core registers (SNOP), re-checks and clock-gates; with busy
// waiting it spins.
func (g *kgen) consumerWait(point string, check func(haveLabel string)) {
	b := g.b
	top := b.NewLabel("cwait")
	have := b.NewLabel("chave")
	b.Label(top)
	if g.strat == stratSync {
		b.SnopG(point, g.groupOf(point))
	}
	check(have)
	if g.strat == stratSync {
		b.Sleep()
	}
	b.J(top)
	b.Label(have)
}
