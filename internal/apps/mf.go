package apps

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/power"
	"repro/internal/prog"
)

// buildMF generates the 3L-MF benchmark (paper Fig. 5-a): three-lead
// morphological filtering. The multi-core mapping replicates one filter
// phase over three cores sharing a single instruction bank; the only
// synchronization is lock-step recovery around the data-dependent window
// scans (Table I: no producer-consumer relationships).
func buildMF(arch power.Arch) (*Variant, error) {
	strat := stratFor(arch)
	p := mfParams()
	d := newDataGen()

	// Output rings and counters: names sort adjacently so the linker
	// places them contiguously, letting the replicated code index by
	// core id.
	for ch := 0; ch < 3; ch++ {
		d.space(fmtSym("mf_cnt%d", ch), 1, -1)
		d.space(fmtSym("mf_out%d", ch), OutRingLen, -1)
	}
	d.words("mf_cfg", []int16{1}) // soft enable, read each sample

	if strat == stratSC {
		b := prog.New("mf_sc")
		g := &kgen{b: b, strat: strat}
		var rings [3]mfRings
		for ch := 0; ch < 3; ch++ {
			rings[ch] = declareMFRings(d, fmtSym("mfr%d", ch), p, -1)
		}
		b.Label("mf_entry")
		g.emitSubscribe(irqMaskAll)
		s := b.Reg()
		b.Li(s, 0)
		b.LoopForever(func(skip string) {
			g.emitWaitSample(irqMaskAll)
			g.emitCfgGate("mf_cfg", skip)
			x0, x1, x2 := b.Temp(), b.Temp(), b.Temp()
			b.LoadMMIO(x0, adcDataAddr(0))
			b.LoadMMIO(x1, adcDataAddr(1))
			b.LoadMMIO(x2, adcDataAddr(2))
			for ch, x := range []*prog.Reg{x0, x1, x2} {
				y := b.Temp()
				g.emitMF(y, x, s, rings[ch])
				emitOutWrite(g, y, s, fmtSym("mf_out%d", ch), fmtSym("mf_cnt%d", ch))
				b.Free(y)
			}
			b.Free(x0, x1, x2)
			b.Addi(s, s, 1)
		})
		b.Halt()
		if err := b.Err(); err != nil {
			return nil, err
		}
		res, err := link.Build(link.Spec{
			Sources:     map[string]string{"code": b.Source(), "data": d.source()},
			CodeBanks:   map[string]int{"mf_sc": 0},
			EntryLabels: []string{"mf_entry"},
			SingleCore:  true,
		})
		if err != nil {
			return nil, err
		}
		return &Variant{App: MF3L, Arch: arch, Cores: 1, Res: res}, nil
	}

	// Multi-core: one filter phase replicated on three cores. Rings live
	// in private memory at identical logical addresses (ATU isolation).
	pgroups, err := pointGroups(arch, map[string]uint8{
		"PT_LOCK": 0x07, // lock-step recovery across the replicated filters
	})
	if err != nil {
		return nil, err
	}
	b := prog.New("mf_filter")
	g := &kgen{b: b, strat: strat, lockPoint: "PT_LOCK", groups: pgroups}
	d.equ("PT_LOCK", 0)
	rings := declareMFRings(d, "mfr", p, 0)

	b.Label("mf_entry")
	id := b.Reg()
	b.LoadMMIO(id, isa.RegCoreID)
	g.emitSubscribeOwnChannel(id)
	s := b.Reg()
	b.Li(s, 0)
	b.LoopForever(func(skip string) {
		g.emitWaitSampleOwnChannel(id)
		g.emitCfgGate("mf_cfg", skip)
		x := b.Temp()
		t := b.Temp()
		b.Li(t, adcDataAddr(0))
		b.Add(t, t, id)
		b.Lw(x, t, 0)
		b.Free(t)
		y := b.Temp()
		g.emitMF(y, x, s, rings)
		b.Free(x)
		emitOutWriteByCore(g, y, s, id, "mf_out0", "mf_cnt0")
		b.Free(y)
		b.Addi(s, s, 1)
	})
	b.Halt()
	if err := b.Err(); err != nil {
		return nil, err
	}
	nsync := 1
	if strat == stratBusy {
		nsync = 0
	}
	res, err := link.Build(link.Spec{
		Sources:       map[string]string{"code": b.Source(), "data": d.source()},
		CodeBanks:     map[string]int{"mf_filter": 1},
		PrivCore:      d.priv,
		EntryLabels:   []string{"mf_entry", "mf_entry", "mf_entry"},
		NumSyncPoints: nsync,
	})
	if err != nil {
		return nil, err
	}
	return &Variant{App: MF3L, Arch: arch, Cores: 3, Res: res}, nil
}

// emitOutWrite appends y to a named output ring and bumps its counter
// (counter value = s+1 = samples produced).
func emitOutWrite(g *kgen, y, s *prog.Reg, outSym, cntSym string) {
	b := g.b
	t := b.Temp()
	tb := b.Temp()
	b.AndMask(t, s, OutRingLen-1)
	b.La(tb, outSym)
	b.Add(tb, tb, t)
	b.Sw(y, tb, 0)
	b.Addi(t, s, 1)
	b.La(tb, cntSym)
	b.Sw(t, tb, 0)
	b.Free(t, tb)
}

// emitOutWriteByCore indexes contiguous per-core output rings and counters
// by the core id register: out[id][s & mask] = y; cnt[id] = s+1.
func emitOutWriteByCore(g *kgen, y, s, id *prog.Reg, outBaseSym, cntBaseSym string) {
	b := g.b
	t := b.Temp()
	tb := b.Temp()
	off := b.Temp()
	// out ring: base + id*OutRingLen + (s & mask)
	b.Slli(off, id, shiftFor(OutRingLen))
	b.AndMask(t, s, OutRingLen-1)
	b.Add(off, off, t)
	b.La(tb, outBaseSym)
	b.Add(tb, tb, off)
	b.Sw(y, tb, 0)
	// counter: base + id
	b.Addi(t, s, 1)
	b.La(tb, cntBaseSym)
	b.Add(tb, tb, id)
	b.Sw(t, tb, 0)
	b.Free(t, tb, off)
}

func shiftFor(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

func fmtSym(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
