package apps

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/signal"
)

func isaDecodeOp(w isa.Word) string { return isa.Decode(w).Op.String() }

// testSignal synthesizes a short deterministic record.
func testSignal(t *testing.T, seconds float64, pathoFrac float64) *ecg.Signal {
	t.Helper()
	cfg := ecg.DefaultConfig()
	cfg.PathologicalFrac = pathoFrac
	sig, err := ecg.Synthesize(cfg, seconds)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// runMF builds and runs a 3L-MF variant for nSamples samples and returns
// the produced per-lead outputs.
func runMF(t *testing.T, arch power.Arch, sig *ecg.Signal, nSamples int) (*Variant, [3][]int16) {
	t.Helper()
	v, err := Build(MF3L, arch)
	if err != nil {
		t.Fatal(err)
	}
	// Generous clock so real time is comfortably met during verification.
	p, err := v.NewPlatform(signal.FromECG(sig), 4e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cycles := uint64(float64(nSamples+4) / SampleRateHz * 4e6)
	if err := p.Run(cycles); err != nil {
		t.Fatalf("%v run: %v", arch, err)
	}
	if p.Overruns() != 0 {
		t.Fatalf("%v: %d ADC overruns", arch, p.Overruns())
	}
	if len(p.ErrCodes()) != 0 {
		t.Fatalf("%v: app errors %v", arch, p.ErrCodes())
	}
	if len(p.Violations()) != 0 {
		t.Fatalf("%v: sync violations %v", arch, p.Violations())
	}
	var outs [3][]int16
	for ch := 0; ch < 3; ch++ {
		cnt, err := v.ReadWord(p, fmtSym("mf_cnt%d", ch))
		if err != nil {
			t.Fatal(err)
		}
		if int(cnt) < nSamples {
			t.Fatalf("%v: lead %d produced %d samples, want >= %d", arch, ch, cnt, nSamples)
		}
		out, err := v.ReadRing(p, fmtSym("mf_out%d", ch), OutRingLen, nSamples)
		if err != nil {
			t.Fatal(err)
		}
		outs[ch] = out
	}
	return v, outs
}

// golden computes the reference conditioning of the first n samples.
func goldenMF(sig *ecg.Signal, n int) [3][]int16 {
	p := dsp.DefaultMFParams()
	var g [3][]int16
	for ch := 0; ch < 3; ch++ {
		g[ch] = dsp.MorphFilter(sig.Leads[ch][:n], p)
	}
	return g
}

func TestMFSCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 4, 0)
	const n = 700
	_, outs := runMF(t, power.SC, sig, n)
	want := goldenMF(sig, n)
	for ch := 0; ch < 3; ch++ {
		for i := 0; i < n; i++ {
			if outs[ch][i] != want[ch][i] {
				t.Fatalf("SC lead %d sample %d: got %d, want %d", ch, i, outs[ch][i], want[ch][i])
			}
		}
	}
}

func TestMFMCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 4, 0)
	const n = 700
	_, outs := runMF(t, power.MC, sig, n)
	want := goldenMF(sig, n)
	for ch := 0; ch < 3; ch++ {
		for i := 0; i < n; i++ {
			if outs[ch][i] != want[ch][i] {
				t.Fatalf("MC lead %d sample %d: got %d, want %d", ch, i, outs[ch][i], want[ch][i])
			}
		}
	}
}

func TestMFMCNoSyncMatchesGolden(t *testing.T) {
	sig := testSignal(t, 3, 0)
	const n = 400
	_, outs := runMF(t, power.MCNoSync, sig, n)
	want := goldenMF(sig, n)
	for ch := 0; ch < 3; ch++ {
		for i := 0; i < n; i++ {
			if outs[ch][i] != want[ch][i] {
				t.Fatalf("nosync lead %d sample %d: got %d, want %d", ch, i, outs[ch][i], want[ch][i])
			}
		}
	}
}

func TestMFMCUsesOneIMBank(t *testing.T) {
	sig := testSignal(t, 1, 0)
	v, err := Build(MF3L, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), 2e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ActiveIMBanks(); got != 1 {
		t.Errorf("active IM banks = %d, want 1 (Table I)", got)
	}
	if got := p.ActiveDMBanks(); got != 16 {
		t.Errorf("active DM banks = %d, want 16 (ATU rule)", got)
	}
}

func TestMFMCBroadcastAndGating(t *testing.T) {
	sig := testSignal(t, 3, 0)
	v, err := Build(MF3L, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), 1.2e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunSeconds(2.5); err != nil {
		t.Fatal(err)
	}
	c := p.Counters()
	if pct := c.IMBroadcastPct(); pct < 15 {
		t.Errorf("IM broadcast = %.1f%%, want substantial lock-step merging", pct)
	}
	if c.CoreGated == 0 {
		t.Error("filter cores must clock-gate between samples")
	}
	if c.SyncOps == 0 {
		t.Error("lock-step recovery must exercise the sync ISE")
	}
	if pct := c.RuntimeOverheadPct(); pct > 5 {
		t.Errorf("runtime overhead = %.2f%%, want low single digits", pct)
	}
	// Our hand-sized kernels are denser than the paper's compiled C, so
	// the fixed sync-instruction count weighs more than Table I's 2.57%,
	// but it must stay a small fraction of the binary.
	if pct := v.Res.Image.CodeOverheadPct(); pct <= 0 || pct > 8 {
		t.Errorf("code overhead = %.2f%%", pct)
	}
}

func TestMFCodeOverheadZeroWithoutSync(t *testing.T) {
	v, err := Build(MF3L, power.MCNoSync)
	if err != nil {
		t.Fatal(err)
	}
	// The no-sync variant keeps conventional interrupt-driven ADC sleep
	// (one SLEEP in the wait loop) but must not touch synchronization
	// points: no SINC/SDEC/SNOP anywhere in the binary.
	for _, seg := range v.Res.Image.Code {
		for _, w := range seg.Words {
			if op := isaDecodeOp(w); op == "sinc" || op == "sdec" || op == "snop" {
				t.Fatalf("busy-wait variant contains %s", op)
			}
		}
	}
	vsc, err := Build(MF3L, power.SC)
	if err != nil {
		t.Fatal(err)
	}
	// The SC baseline sleeps on the ADC (SLEEP is part of the ISE) but
	// must not use synchronization points.
	src := vsc.Res
	_ = src
	if vsc.Cores != 1 {
		t.Errorf("SC cores = %d", vsc.Cores)
	}
}
