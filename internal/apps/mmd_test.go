package apps

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/power"
	"repro/internal/signal"
)

// goldenMMD computes the reference combined stream and streamed fiducials
// for the first n samples.
func goldenMMD(sig *ecg.Signal, n int) ([]int16, []dsp.Fiducials) {
	mfp := dsp.DefaultMFParams()
	var cond [3][]int16
	for ch := 0; ch < 3; ch++ {
		cond[ch] = dsp.MorphFilter(sig.Leads[ch][:n], mfp)
	}
	comb := make([]int16, n)
	for i := 0; i < n; i++ {
		comb[i] = dsp.Combine3(cond[0][i], cond[1][i], cond[2][i])
	}
	return comb, dsp.DelineateStreamed(comb, dsp.DefaultMMDParams())
}

// runMMD builds and runs one variant until at least n samples are combined
// and delineated.
func runMMD(t *testing.T, arch power.Arch, sig *ecg.Signal, n int) (*Variant, []int16, []dsp.Fiducials) {
	t.Helper()
	v, err := Build(MMD3L, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), 4e6, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cycles := uint64(float64(n+8) / SampleRateHz * 4e6)
	if err := p.Run(cycles); err != nil {
		t.Fatalf("%v run: %v", arch, err)
	}
	if p.Overruns() != 0 {
		t.Fatalf("%v: %d overruns", arch, p.Overruns())
	}
	if len(p.Violations()) != 0 {
		t.Fatalf("%v: %v", arch, p.Violations())
	}
	dcnt, err := v.ReadWord(p, "mmd_dcnt")
	if err != nil {
		t.Fatal(err)
	}
	if int(dcnt) < n {
		t.Fatalf("%v: delineated %d samples, want >= %d", arch, dcnt, n)
	}
	comb, err := v.ReadRing(p, "mmd_comb", OutRingLen, n)
	if err != nil {
		t.Fatal(err)
	}
	rescnt, err := v.ReadWord(p, "mmd_rescnt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.ReadRing(p, "mmd_res", 3*ResultSlots, int(rescnt)*3)
	if err != nil {
		t.Fatal(err)
	}
	var fids []dsp.Fiducials
	for i := 0; i+2 < len(res); i += 3 {
		fids = append(fids, dsp.Fiducials{Onset: int(uint16(res[i])), Peak: int(uint16(res[i+1])), Offset: int(uint16(res[i+2]))})
	}
	return v, comb, fids
}

// compareMMD verifies the combined stream word-for-word and the fiducial
// list. The simulated delineator may have processed a few samples past n, so
// it may report up to a couple more trailing fiducials; every golden
// fiducial must be present as a prefix.
func compareMMD(t *testing.T, arch power.Arch, comb []int16, fids []dsp.Fiducials, wantComb []int16, wantFids []dsp.Fiducials) {
	t.Helper()
	for i := range wantComb {
		if comb[i] != wantComb[i] {
			t.Fatalf("%v: combined[%d] = %d, want %d", arch, i, comb[i], wantComb[i])
		}
	}
	if len(fids) < len(wantFids) {
		t.Fatalf("%v: %d fiducials reported, want >= %d", arch, len(fids), len(wantFids))
	}
	for i, w := range wantFids {
		if fids[i] != w {
			t.Fatalf("%v: fiducial %d = %+v, want %+v", arch, i, fids[i], w)
		}
	}
	if len(fids) > len(wantFids)+2 {
		t.Errorf("%v: %d extra fiducials beyond golden %d", arch, len(fids)-len(wantFids), len(wantFids))
	}
}

func TestMMDSCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 5, 0)
	const n = 1000
	_, comb, fids := runMMD(t, power.SC, sig, n)
	wantComb, wantFids := goldenMMD(sig, n)
	if len(wantFids) < 3 {
		t.Fatalf("degenerate golden: only %d fiducials", len(wantFids))
	}
	compareMMD(t, power.SC, comb, fids, wantComb, wantFids)
}

func TestMMDMCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 5, 0)
	const n = 1000
	_, comb, fids := runMMD(t, power.MC, sig, n)
	wantComb, wantFids := goldenMMD(sig, n)
	compareMMD(t, power.MC, comb, fids, wantComb, wantFids)
}

func TestMMDMCNoSyncMatchesGolden(t *testing.T) {
	sig := testSignal(t, 4, 0)
	const n = 700
	_, comb, fids := runMMD(t, power.MCNoSync, sig, n)
	wantComb, wantFids := goldenMMD(sig, n)
	compareMMD(t, power.MCNoSync, comb, fids, wantComb, wantFids)
}

func TestMMDDetectsBeatsNearTruth(t *testing.T) {
	sig := testSignal(t, 5, 0)
	const n = 1000
	_, _, fids := runMMD(t, power.MC, sig, n)
	delay := dsp.DefaultMFParams().TotalDelay()
	matched := 0
	for _, b := range sig.Beats {
		want := b.RPeak + delay
		if want >= n {
			continue
		}
		for _, f := range fids {
			if abs(f.Peak-want) <= 10 {
				matched++
				break
			}
		}
	}
	if matched < 3 {
		t.Errorf("only %d beats matched ground truth", matched)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestMMDMCStructure(t *testing.T) {
	v, err := Build(MMD3L, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cores != 5 {
		t.Errorf("cores = %d, want 5 (paper Table I)", v.Cores)
	}
	sig := testSignal(t, 1, 0)
	p, err := v.NewPlatform(signal.FromECG(sig), 1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ActiveIMBanks(); got != 3 {
		t.Errorf("active IM banks = %d, want 3 (filter shared + combiner + delineator)", got)
	}
	if pct := v.Res.Image.CodeOverheadPct(); pct <= 0 || pct > 6 {
		t.Errorf("code overhead = %.2f%%", pct)
	}
	// 3L-MMD sync share must be lower than 3L-MF's: same sync count over
	// a larger binary (paper: 0.92% vs 2.57%).
	vmf, err := Build(MF3L, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	if v.Res.Image.CodeOverheadPct() >= vmf.Res.Image.CodeOverheadPct() {
		t.Errorf("MMD code overhead %.2f%% should be below MF's %.2f%%",
			v.Res.Image.CodeOverheadPct(), vmf.Res.Image.CodeOverheadPct())
	}
}
