package apps

import (
	"testing"

	"repro/internal/dsp"
	"repro/internal/ecg"
	"repro/internal/power"
	"repro/internal/signal"
)

// goldenRP replicates the full RP-CLASS pipeline on the host: conditioning,
// beat detection, delayed classification, and on-demand segment delineation
// for pathological beats. n is the number of processed samples.
type rpBeat struct {
	R     int
	Patho bool
}

type rpDelRec struct {
	Desc                int
	Onset, Peak, Offset int
}

func goldenRP(sig *ecg.Signal, n int) ([]int16, []rpBeat, []rpDelRec) {
	mfp := dsp.DefaultMFParams()
	mmp := chainMMDParams()
	rp := dsp.DefaultRPParams()
	mat := dsp.RPMatrix(rp)
	cents, err := trainedCentroids(rp, mat)
	if err != nil {
		panic(err)
	}
	cond := dsp.MorphFilter(sig.Leads[0][:n], mfp)

	var beats []rpBeat
	var recs []rpDelRec
	for _, r := range dsp.DetectPeaks(cond, rp.BeatThr, rp.Refractory) {
		// Classification triggers once the window and the raw segment
		// are complete; untriggered trailing beats are not recorded.
		if r+TriggerDelay >= n {
			continue
		}
		lo := r - rp.Pre
		if lo < 0 {
			continue // cannot happen in practice: conditioning delay
		}
		y := dsp.Project(cond[lo:lo+rp.Window], mat, rp)
		patho := dsp.Classify(y, cents.Normal, cents.Patho)
		beats = append(beats, rpBeat{R: r, Patho: patho})
		if !patho {
			continue
		}
		// Delineation chain: filter the raw segment around the beat.
		var seg [3][]int16
		for ch := 0; ch < 3; ch++ {
			rawSeg := make([]int16, SegLen)
			for k := 0; k < SegLen; k++ {
				j := r - RawOffset - SegPre + k
				if j >= 0 && j < n {
					rawSeg[k] = sig.Leads[ch][j]
				}
			}
			seg[ch] = dsp.MorphFilter(rawSeg, chainMFParams())
		}
		comb := make([]int16, SegLen)
		for k := range comb {
			comb[k] = dsp.Combine3(seg[0][k], seg[1][k], seg[2][k])
		}
		for _, f := range dsp.DelineateStreamed(comb, mmp) {
			recs = append(recs, rpDelRec{Desc: r, Onset: f.Onset, Peak: f.Peak, Offset: f.Offset})
		}
	}
	return cond, beats, recs
}

// runRP executes one variant and extracts conditioned stream, beat records
// and delineation records.
func runRP(t *testing.T, arch power.Arch, sig *ecg.Signal, n int, clock float64) ([]int16, []rpBeat, []rpDelRec) {
	t.Helper()
	v, err := Build(RPClass, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), clock, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cycles := uint64(float64(n+8) / SampleRateHz * clock)
	if err := p.Run(cycles); err != nil {
		t.Fatalf("%v run: %v", arch, err)
	}
	if p.Overruns() != 0 {
		t.Fatalf("%v: %d overruns", arch, p.Overruns())
	}
	if len(p.ErrCodes()) != 0 {
		t.Fatalf("%v: app errors %v", arch, p.ErrCodes())
	}
	if len(p.Violations()) != 0 {
		t.Fatalf("%v: %v", arch, p.Violations())
	}
	acnt, err := v.ReadWord(p, "rp_acnt")
	if err != nil {
		t.Fatal(err)
	}
	if int(acnt) < n {
		t.Fatalf("%v: conditioned %d samples, want >= %d", arch, acnt, n)
	}
	cond, err := v.ReadRing(p, "rp_c0", OutRingLen, n)
	if err != nil {
		t.Fatal(err)
	}
	bcnt, err := v.ReadWord(p, "rp_bcnt")
	if err != nil {
		t.Fatal(err)
	}
	braw, err := v.ReadRing(p, "rp_beats", 2*ResultSlots, int(bcnt)*2)
	if err != nil {
		t.Fatal(err)
	}
	var beats []rpBeat
	for i := 0; i+1 < len(braw); i += 2 {
		beats = append(beats, rpBeat{R: int(uint16(braw[i])), Patho: braw[i+1] != 0})
	}
	dcnt, err := v.ReadWord(p, "rp_delcnt")
	if err != nil {
		t.Fatal(err)
	}
	draw, err := v.ReadRing(p, "rp_delres", 4*64, int(dcnt)*4)
	if err != nil {
		t.Fatal(err)
	}
	var recs []rpDelRec
	for i := 0; i+3 < len(draw); i += 4 {
		recs = append(recs, rpDelRec{
			Desc:  int(uint16(draw[i])),
			Onset: int(uint16(draw[i+1])), Peak: int(uint16(draw[i+2])), Offset: int(uint16(draw[i+3])),
		})
	}
	return cond, beats, recs
}

func compareRP(t *testing.T, arch power.Arch, cond []int16, beats []rpBeat, recs []rpDelRec, wc []int16, wb []rpBeat, wr []rpDelRec) {
	t.Helper()
	for i := range wc {
		if cond[i] != wc[i] {
			t.Fatalf("%v: conditioned[%d] = %d, want %d", arch, i, cond[i], wc[i])
		}
	}
	if len(beats) < len(wb) {
		t.Fatalf("%v: %d beat records, want >= %d", arch, len(beats), len(wb))
	}
	for i, w := range wb {
		if beats[i] != w {
			t.Fatalf("%v: beat %d = %+v, want %+v", arch, i, beats[i], w)
		}
	}
	if len(beats) > len(wb)+2 {
		t.Errorf("%v: %d stray beat records", arch, len(beats)-len(wb))
	}
	// The simulated delineator may still be working on the last segment.
	if len(recs) < len(wr)-2 {
		t.Fatalf("%v: %d delineation records, want >= %d", arch, len(recs), len(wr)-2)
	}
	for i, r := range recs {
		if i >= len(wr) {
			t.Fatalf("%v: stray delineation record %+v", arch, r)
		}
		if r != wr[i] {
			t.Fatalf("%v: delineation %d = %+v, want %+v", arch, i, r, wr[i])
		}
	}
}

func TestRPClassSCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 8, 0.3)
	const n = 1800
	cond, beats, recs := runRP(t, power.SC, sig, n, 6e6)
	wc, wb, wr := goldenRP(sig, n)
	if len(wb) < 5 {
		t.Fatalf("degenerate golden: %d beats", len(wb))
	}
	pathoCount := 0
	for _, b := range wb {
		if b.Patho {
			pathoCount++
		}
	}
	if pathoCount == 0 || len(wr) == 0 {
		t.Fatalf("degenerate golden: %d patho, %d delineations", pathoCount, len(wr))
	}
	compareRP(t, power.SC, cond, beats, recs, wc, wb, wr)
}

func TestRPClassMCMatchesGolden(t *testing.T) {
	sig := testSignal(t, 8, 0.3)
	const n = 1800
	cond, beats, recs := runRP(t, power.MC, sig, n, 6e6)
	wc, wb, wr := goldenRP(sig, n)
	compareRP(t, power.MC, cond, beats, recs, wc, wb, wr)
}

func TestRPClassMCNoSyncMatchesGolden(t *testing.T) {
	sig := testSignal(t, 6, 0.3)
	const n = 1300
	cond, beats, recs := runRP(t, power.MCNoSync, sig, n, 6e6)
	wc, wb, wr := goldenRP(sig, n)
	compareRP(t, power.MCNoSync, cond, beats, recs, wc, wb, wr)
}

func TestRPClassClassifierAccuracy(t *testing.T) {
	sig := testSignal(t, 10, 0.3)
	const n = 2300
	_, beats, _ := runRP(t, power.MC, sig, n, 6e6)
	delay := dsp.DefaultMFParams().TotalDelay()
	correct, total := 0, 0
	for _, b := range beats {
		// Match against ground truth via the conditioning delay.
		for _, g := range sig.Beats {
			if abs(g.RPeak+delay-b.R) <= 8 {
				total++
				if g.Pathological == b.Patho {
					correct++
				}
				break
			}
		}
	}
	if total < 5 {
		t.Fatalf("only %d beats matched ground truth", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("on-platform classifier accuracy = %.2f (%d/%d)", acc, correct, total)
	}
}

func TestRPClassChainIdleWithoutPathology(t *testing.T) {
	sig := testSignal(t, 4, 0) // no ectopic beats
	v, err := Build(RPClass, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(signal.FromECG(sig), 2e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunSeconds(3.5); err != nil {
		t.Fatal(err)
	}
	// The four delineation-chain cores (2..5) must have slept through the
	// entire run: "the four cores in the delineation chain are seldom
	// activated" (paper §IV-D); with 0% ectopics they never are.
	for c := 2; c <= 5; c++ {
		if busy := p.CoreBusy(c); busy > 20_000 {
			t.Errorf("chain core %d busy for %d cycles despite no pathology", c, busy)
		}
	}
	if dcnt, _ := v.ReadWord(p, "rp_dcnt"); dcnt != 0 {
		t.Errorf("descriptors enqueued without pathology: %d", dcnt)
	}
}

func TestRPClassStructure(t *testing.T) {
	v, err := Build(RPClass, power.MC)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cores != 6 {
		t.Errorf("cores = %d, want 6 (paper Table I)", v.Cores)
	}
	sig := testSignal(t, 1, 0)
	p, err := v.NewPlatform(signal.FromECG(sig), 1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ActiveIMBanks(); got != 4 {
		t.Errorf("active IM banks = %d, want 4", got)
	}
	if pct := v.Res.Image.CodeOverheadPct(); pct <= 0 || pct > 4 {
		t.Errorf("code overhead = %.2f%% (paper: 0.69%%)", pct)
	}
}
