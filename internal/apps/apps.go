package apps

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/isa"
	"repro/internal/link"
	"repro/internal/periph"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/signal"
)

// Application names.
const (
	MF3L    = "3l-mf"
	MMD3L   = "3l-mmd"
	RPClass = "rp-class"
)

// Names lists the three benchmarks in the paper's order.
var Names = []string{MF3L, MMD3L, RPClass}

// SampleRateHz is the default ECG acquisition rate of the paper's
// benchmarks; scenario files select other rates (and other signal kinds)
// through SourceConfig.
const SampleRateHz = 250

// SourceConfig returns the generator configuration of a benchmark's input
// record: the scenario's base signal configuration with the per-app
// overrides applied. For ECG, RP-CLASS is the only benchmark whose
// behaviour depends on the pathological-beat share — an ectopic beat is a
// different morphology processed at identical per-sample cost by the
// MF/MMD conditioning — so every other app's ECG record zeroes it,
// letting 3L-MF and 3L-MMD share one cached record (and preserving the
// paper's record semantics bit-for-bit). For EMG and PPG the pathological
// share shapes the waveform globally (anomalous bursts, motion
// excursions), so it is kept for every app: a scenario's advertised signal
// content must be what every tool measures. Centralizing this keeps every
// consumer — the experiment driver, its signal cache and the benchmark
// harness — keyed on identical configurations, so memoization collapses
// their records.
func SourceConfig(app string, base signal.Config) signal.Config {
	cfg := base
	if cfg.Kind == "" {
		cfg.Kind = signal.KindECG
	}
	if app != RPClass && cfg.Kind == signal.KindECG {
		cfg.PathologicalFrac = 0
	}
	return cfg
}

// Shared ring geometry (power-of-two lengths for cheap masking).
const (
	OutRingLen   = 2048 // conditioned-output rings
	RawRingLen   = 2048 // raw-sample history rings (RP-CLASS)
	ResultSlots  = 256  // result records kept (ring, overwrites oldest)
	DescQueueLen = 16   // RP-CLASS pathological-beat descriptor queue
)

// RP-CLASS segment geometry: the delineation chain re-filters a raw window
// around each pathological beat. The conditioned R lands TriggerDelay
// samples after detection so the whole raw segment is guaranteed available
// when the chain is kicked.
const (
	SegPre  = 90
	SegPost = 85 // covers the chain filter's group delay + detector lag + edge window
	SegLen  = SegPre + 1 + SegPost
	// RawOffset converts a detected beat index (conditioned-stream time)
	// to raw-sample time: the main conditioning chain's group delay.
	// Must equal mfParams().TotalDelay().
	RawOffset = 104
	// TriggerDelay postpones classification past the beat so its window
	// is complete with margin; it must stay below the detector refractory
	// so a single pending-beat slot suffices. The chain itself waits for
	// the remaining raw samples of its segment.
	TriggerDelay = 46
)

// SC RP-CLASS interleaving: pending segment-samples processed per acquired
// sample, bounding the per-sample worst case (and hence the min frequency)
// while keeping segment throughput above the worst-case beat rate.
const SCChunk = 1

// Variant is one application built for one architecture.
type Variant struct {
	App   string
	Arch  power.Arch
	Cores int
	Res   *link.Result
}

// Build generates, assembles and links one application variant.
func Build(app string, arch power.Arch) (*Variant, error) {
	switch app {
	case MF3L:
		return buildMF(arch)
	case MMD3L:
		return buildMMD(arch)
	case RPClass:
		return buildRPClass(arch)
	}
	return nil, fmt.Errorf("apps: unknown application %q", app)
}

// stratFor maps the architecture descriptor to the synchronization
// lowering, structurally: any single-core descriptor lowers sequentially,
// any busy-wait descriptor lowers to active waiting on shared flags, and
// everything else — the paper's MC preset and every custom sync-unit
// descriptor — lowers to the sync ISE.
func stratFor(arch power.Arch) strategy {
	switch {
	case !arch.IsMulti():
		return stratSC
	case arch.BusyWait:
		return stratBusy
	default:
		return stratSync
	}
}

// pointGroups assigns each sync point to the hardware sync group that
// serves it under arch: the lowest declared group whose membership covers
// every core touching the point (pointCores maps point symbols to core
// bitmasks). The presets — and any descriptor with a single implicit
// all-core group — return nil, keeping every point on group 0 and the
// generated assembly identical to the pre-descriptor lowering. A custom
// descriptor none of whose groups covers a point is a mapping error: the
// hardware could never release that rendezvous.
func pointGroups(arch power.Arch, pointCores map[string]uint8) (map[string]int, error) {
	if arch.NumGroups() <= 1 {
		return nil, nil
	}
	m := make(map[string]int, len(pointCores))
	for pt, cores := range pointCores {
		found := false
		for g := 0; g < arch.NumGroups(); g++ {
			if arch.GroupMask(g)&cores == cores {
				m[pt] = g
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("apps: no sync group of %v covers point %s (cores %#02x)", arch, pt, cores)
		}
	}
	return m, nil
}

// Addr looks up a linker symbol as a data address.
func (v *Variant) Addr(sym string) (uint16, error) {
	a, ok := v.Res.Symbols[sym]
	if !ok {
		return 0, fmt.Errorf("apps: symbol %q not in image", sym)
	}
	return uint16(a), nil
}

// NewPlatform instantiates the variant on a simulated platform clocked at
// clockHz, fed with the source's per-channel traces at their per-channel
// rates (wrap ecg records with signal.FromECG).
func (v *Variant) NewPlatform(src *signal.Source, clockHz, voltageV float64) (*platform.Platform, error) {
	cfg := platform.Config{
		Arch:         v.Arch,
		ClockHz:      clockHz,
		VoltageV:     voltageV,
		SampleRateHz: src.BaseRateHz(),
	}
	for ch := 0; ch < periph.NumADCChannels && ch < signal.MaxChannels; ch++ {
		cfg.Traces[ch] = src.Traces[ch]
		cfg.ChannelRateHz[ch] = src.Rates[ch]
	}
	return platform.New(cfg, v.Res.Image)
}

// ReadRing extracts n values from a shared ring buffer symbol.
func (v *Variant) ReadRing(p *platform.Platform, sym string, ringLen, n int) ([]int16, error) {
	base, err := v.Addr(sym)
	if err != nil {
		return nil, err
	}
	if n > ringLen {
		n = ringLen
	}
	out := make([]int16, n)
	for i := 0; i < n; i++ {
		w, ok := p.PeekData(0, base+uint16(i))
		if !ok {
			return nil, fmt.Errorf("apps: reading %s[%d] failed", sym, i)
		}
		out[i] = int16(w)
	}
	return out, nil
}

// ReadWord reads one shared word by symbol.
func (v *Variant) ReadWord(p *platform.Platform, sym string) (uint16, error) {
	a, err := v.Addr(sym)
	if err != nil {
		return 0, err
	}
	w, ok := p.PeekData(0, a)
	if !ok {
		return 0, fmt.Errorf("apps: reading %s failed", sym)
	}
	return w, nil
}

// Aliases keep the builder signatures compact.
type (
	dspMF  = dsp.MFParams
	dspMMD = dsp.MMDParams
	dspRP  = dsp.RPParams
)

// mfParams returns the conditioning parameters shared between golden models
// and generated code.
func mfParams() dsp.MFParams { return dsp.DefaultMFParams() }

// chainMFParams returns the lighter conditioning used by the RP-CLASS
// delineation chain: the re-filtered segment is short, so its baseline is
// locally constant and shorter structuring elements suffice — keeping the
// on-demand burst small enough for the sequential baseline to interleave.
func chainMFParams() dsp.MFParams { return dsp.MFParams{LOpen: 17, LClose: 25, LNoise: 5} }

// chainMMDParams returns the delineator tuning for the RP-CLASS chain: the
// lightly filtered segments carry smaller derivative magnitudes than the
// full-rate combined stream, so the threshold is proportionally lower.
func chainMMDParams() dsp.MMDParams {
	p := dsp.DefaultMMDParams()
	p.Thr = 250
	return p
}

// mmdParams returns the delineation parameters.
func mmdParams() dsp.MMDParams { return dsp.DefaultMMDParams() }

// rpParams returns the classifier parameters.
func rpParams() dsp.RPParams { return dsp.DefaultRPParams() }

// irqMaskAll subscribes to all three ADC channels.
const irqMaskAll = isa.IRQADC
