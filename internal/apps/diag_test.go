package apps

import (
	"testing"

	"repro/internal/power"
	"repro/internal/signal"
)

func TestDiagMF(t *testing.T) {
	sig := testSignal(t, 3, 0)
	for _, arch := range []power.Arch{power.SC, power.MC, power.MCNoSync} {
		v, err := Build(MF3L, arch)
		if err != nil {
			t.Fatal(err)
		}
		clock := 4e6
		p, err := v.NewPlatform(signal.FromECG(sig), clock, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunSeconds(2.5); err != nil {
			t.Fatal(err)
		}
		c := p.Counters()
		busiest := uint64(0)
		for i := 0; i < v.Cores; i++ {
			if b := p.CoreBusy(i); b > busiest {
				busiest = b
			}
		}
		t.Logf("%s: IMbcast=%.1f%% DMbcast=%.2f%% rtOvh=%.2f%% codeOvh=%.2f%% busiest=%.0f cyc/s (fmin=%.2fMHz) stalls=%d gated=%d instrs=%d overruns=%d\n",
			arch, c.IMBroadcastPct(), c.DMBroadcastPct(), c.RuntimeOverheadPct(), v.Res.Image.CodeOverheadPct(),
			float64(busiest)/2.5, float64(busiest)/2.5/1e6, c.CoreStall, c.CoreGated, c.Instrs, p.Overruns())
	}
}
