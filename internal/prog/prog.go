// Package prog is the structured program builder of the tool-chain: a typed
// front-end over WB16 assembly with a register pool, control-flow helpers
// and symbolic data references. The benchmark applications are written once
// against this builder and lowered to single-core, multi-core-synchronized
// or busy-waiting variants (the paper's mapping step, §III-B).
//
// The builder emits assembly text consumed by internal/asm via internal/link,
// so generated programs stay inspectable and the whole tool-chain path —
// compiler-like front-end, assembler, builder/linker — matches the paper's
// §IV-C description.
package prog

import (
	"fmt"
	"strings"
)

// Reg is an allocated machine register handle.
type Reg struct {
	n     uint8
	temp  bool
	freed bool
}

// String returns the assembler spelling.
func (r *Reg) String() string { return fmt.Sprintf("r%d", r.n) }

// Zero is the hardwired-zero register r0.
var Zero = &Reg{n: 0}

// Builder accumulates one code segment.
type Builder struct {
	segName string
	lines   []string
	inUse   [16]bool
	nlabels int
	err     error
}

// New returns a builder for the named code segment. Registers r1..r13 are
// allocatable; r14/r15 stay free for conventions (sp/ra) and r0 is zero.
func New(segName string) *Builder {
	b := &Builder{segName: segName}
	b.inUse[0] = true  // r0
	b.inUse[14] = true // sp
	b.inUse[15] = true // ra
	b.raw(".code " + segName)
	return b
}

// Err returns the first builder error (register exhaustion, double free).
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("prog: %s: %s", b.segName, fmt.Sprintf(format, args...))
	}
}

// Reg allocates a register for long-lived use.
func (b *Builder) Reg() *Reg { return b.alloc(false) }

// Temp allocates a scratch register the caller should Free promptly.
func (b *Builder) Temp() *Reg { return b.alloc(true) }

func (b *Builder) alloc(temp bool) *Reg {
	for n := uint8(1); n <= 13; n++ {
		if !b.inUse[n] {
			b.inUse[n] = true
			return &Reg{n: n, temp: temp}
		}
	}
	b.fail("out of registers")
	return &Reg{n: 13}
}

// Free returns a register to the pool.
func (b *Builder) Free(rs ...*Reg) {
	for _, r := range rs {
		if r.n == 0 {
			continue
		}
		if r.freed || !b.inUse[r.n] {
			b.fail("double free of r%d", r.n)
			continue
		}
		r.freed = true
		b.inUse[r.n] = false
	}
}

// Source returns the accumulated assembly text.
func (b *Builder) Source() string { return strings.Join(b.lines, "\n") + "\n" }

func (b *Builder) raw(line string) { b.lines = append(b.lines, line) }

// Comment emits an assembly comment.
func (b *Builder) Comment(format string, args ...any) {
	b.raw("    ; " + fmt.Sprintf(format, args...))
}

func (b *Builder) ins(format string, args ...any) {
	b.raw("    " + fmt.Sprintf(format, args...))
}

// NewLabel reserves a fresh unique label name.
func (b *Builder) NewLabel(hint string) string {
	b.nlabels++
	return fmt.Sprintf(".%s_%s_%d", b.segName, hint, b.nlabels)
}

// Label places a label at the current position.
func (b *Builder) Label(name string) { b.raw(name + ":") }

// --- plain instructions ---

// Li loads a 16-bit constant.
func (b *Builder) Li(rd *Reg, v int) { b.ins("li %s, %d", rd, v) }

// La loads the address of a linker symbol.
func (b *Builder) La(rd *Reg, sym string) { b.ins("la %s, %s", rd, sym) }

// LiSym loads a .equ constant by name.
func (b *Builder) LiSym(rd *Reg, sym string) { b.ins("la %s, %s", rd, sym) }

// Mov copies a register.
func (b *Builder) Mov(rd, rs *Reg) { b.ins("mov %s, %s", rd, rs) }

// Binary register ops.
func (b *Builder) Add(rd, a, c *Reg) { b.ins("add %s, %s, %s", rd, a, c) }
func (b *Builder) Sub(rd, a, c *Reg) { b.ins("sub %s, %s, %s", rd, a, c) }
func (b *Builder) And(rd, a, c *Reg) { b.ins("and %s, %s, %s", rd, a, c) }
func (b *Builder) Or(rd, a, c *Reg)  { b.ins("or %s, %s, %s", rd, a, c) }
func (b *Builder) Xor(rd, a, c *Reg) { b.ins("xor %s, %s, %s", rd, a, c) }
func (b *Builder) Mul(rd, a, c *Reg) { b.ins("mul %s, %s, %s", rd, a, c) }
func (b *Builder) Slt(rd, a, c *Reg) { b.ins("slt %s, %s, %s", rd, a, c) }
func (b *Builder) Min(rd, a, c *Reg) { b.ins("min %s, %s, %s", rd, a, c) }
func (b *Builder) Max(rd, a, c *Reg) { b.ins("max %s, %s, %s", rd, a, c) }
func (b *Builder) Sll(rd, a, c *Reg) { b.ins("sll %s, %s, %s", rd, a, c) }
func (b *Builder) Sra(rd, a, c *Reg) { b.ins("sra %s, %s, %s", rd, a, c) }

// Immediate ops.
func (b *Builder) Addi(rd, a *Reg, imm int) { b.ins("addi %s, %s, %d", rd, a, imm) }
func (b *Builder) Andi(rd, a *Reg, imm int) { b.ins("andi %s, %s, %d", rd, a, imm) }
func (b *Builder) Ori(rd, a *Reg, imm int)  { b.ins("ori %s, %s, %d", rd, a, imm) }
func (b *Builder) Slli(rd, a *Reg, imm int) { b.ins("slli %s, %s, %d", rd, a, imm) }
func (b *Builder) Srli(rd, a *Reg, imm int) { b.ins("srli %s, %s, %d", rd, a, imm) }
func (b *Builder) Srai(rd, a *Reg, imm int) { b.ins("srai %s, %s, %d", rd, a, imm) }
func (b *Builder) Slti(rd, a *Reg, imm int) { b.ins("slti %s, %s, %d", rd, a, imm) }

// Memory.
func (b *Builder) Lw(rd, base *Reg, off int)  { b.ins("lw %s, %d(%s)", rd, off, base) }
func (b *Builder) Sw(val, base *Reg, off int) { b.ins("sw %s, %d(%s)", val, off, base) }

// Control flow.
func (b *Builder) J(label string)              { b.ins("j %s", label) }
func (b *Builder) Beq(a, c *Reg, label string) { b.ins("beq %s, %s, %s", a, c, label) }
func (b *Builder) Bne(a, c *Reg, label string) { b.ins("bne %s, %s, %s", a, c, label) }
func (b *Builder) Blt(a, c *Reg, label string) { b.ins("blt %s, %s, %s", a, c, label) }
func (b *Builder) Bge(a, c *Reg, label string) { b.ins("bge %s, %s, %s", a, c, label) }
func (b *Builder) Beqz(a *Reg, label string)   { b.ins("beqz %s, %s", a, label) }
func (b *Builder) Bnez(a *Reg, label string)   { b.ins("bnez %s, %s", a, label) }
func (b *Builder) Halt()                       { b.ins("halt") }
func (b *Builder) Nop()                        { b.ins("nop") }

// Sync ISE. The plain forms address sync group 0 — the paper's single
// hardware barrier; the G variants target a specific group of a descriptor
// architecture by folding the group index into the immediate's group field
// (isa.SyncGroupShift), spelled as a point+offset expression so the
// generated assembly stays readable and round-trips through the assembler's
// ordinary expression grammar.
func (b *Builder) Sinc(sym string) { b.SincG(sym, 0) }
func (b *Builder) Sdec(sym string) { b.SdecG(sym, 0) }
func (b *Builder) Snop(sym string) { b.SnopG(sym, 0) }
func (b *Builder) Sleep()          { b.ins("sleep") }

func (b *Builder) SincG(sym string, group int) { b.syncG("sinc", sym, group) }
func (b *Builder) SdecG(sym string, group int) { b.syncG("sdec", sym, group) }
func (b *Builder) SnopG(sym string, group int) { b.syncG("snop", sym, group) }

func (b *Builder) syncG(op, sym string, group int) {
	if group == 0 {
		b.ins("%s #%s", op, sym)
		return
	}
	b.ins("%s #%s+%d", op, sym, group<<8)
}

// Sevs emits an event-group signal-and-wait: atomically OR set into the
// group's event bits, then (when want is non-zero) flag the core as waiting
// for every bit of want; a following SLEEP blocks until the rendezvous
// releases it. want == 0 is fire-and-forget. The immediate is emitted as an
// explicit or-of-shifts expression mirroring isa.SevsImm's field layout.
func (b *Builder) Sevs(group, set, want int) {
	b.ins("sevs #%d<<16|%d<<8|%d", group, set, want)
}

// --- composite helpers ---

// AndMask emits rd = rs & mask, using ANDI when the mask fits the signed
// 10-bit immediate and a LI+AND pair otherwise.
func (b *Builder) AndMask(rd, rs *Reg, mask int) {
	if mask >= -512 && mask <= 511 {
		b.Andi(rd, rs, mask)
		return
	}
	t := b.Temp()
	b.Li(t, mask)
	b.And(rd, rs, t)
	b.Free(t)
}

// LoadMMIO reads a memory-mapped register into rd.
func (b *Builder) LoadMMIO(rd *Reg, addr int) {
	t := b.Temp()
	b.Li(t, addr)
	b.Lw(rd, t, 0)
	b.Free(t)
}

// StoreMMIO writes val to a memory-mapped register.
func (b *Builder) StoreMMIO(val *Reg, addr int) {
	t := b.Temp()
	b.Li(t, addr)
	b.Sw(val, t, 0)
	b.Free(t)
}

// StoreMMIOImm writes a constant to a memory-mapped register.
func (b *Builder) StoreMMIOImm(v, addr int) {
	t := b.Temp()
	b.Li(t, v)
	b.StoreMMIO(t, addr)
	b.Free(t)
}

// ForN emits a counted loop: body runs n times with i ascending from 0.
// The index register is read-only inside the body.
func (b *Builder) ForN(n int, body func(i *Reg)) {
	i := b.Temp()
	limit := b.Temp()
	b.Li(i, 0)
	b.Li(limit, n)
	top := b.NewLabel("for")
	b.Label(top)
	body(i)
	b.Addi(i, i, 1)
	b.Blt(i, limit, top)
	b.Free(i, limit)
}

// While emits a loop that runs while cond (emitted each iteration) branches
// to the continue label. cond receives the break label.
func (b *Builder) LoopForever(body func(breakLabel string)) {
	top := b.NewLabel("loop")
	brk := b.NewLabel("break")
	b.Label(top)
	body(brk)
	b.J(top)
	b.Label(brk)
}

// IfLt emits: if a < c { then } else { otherwise }; otherwise may be nil.
func (b *Builder) IfLt(a, c *Reg, then func(), otherwise func()) {
	b.ifCond(func(thenL string) { b.Blt(a, c, thenL) }, then, otherwise)
}

// IfGe emits: if a >= c { then } else { otherwise }.
func (b *Builder) IfGe(a, c *Reg, then func(), otherwise func()) {
	b.ifCond(func(thenL string) { b.Bge(a, c, thenL) }, then, otherwise)
}

// IfEq emits: if a == c { then } else { otherwise }.
func (b *Builder) IfEq(a, c *Reg, then func(), otherwise func()) {
	b.ifCond(func(thenL string) { b.Beq(a, c, thenL) }, then, otherwise)
}

// IfNe emits: if a != c { then } else { otherwise }.
func (b *Builder) IfNe(a, c *Reg, then func(), otherwise func()) {
	b.ifCond(func(thenL string) { b.Bne(a, c, thenL) }, then, otherwise)
}

// IfNez emits: if a != 0 { then } else { otherwise }.
func (b *Builder) IfNez(a *Reg, then func(), otherwise func()) {
	b.ifCond(func(thenL string) { b.Bnez(a, thenL) }, then, otherwise)
}

// ifCond emits the branch-over-jump shape so then/else bodies of any length
// stay within reach: the conditional branch spans one instruction, the long
// hops use JAL's 14-bit offset.
func (b *Builder) ifCond(branchToThen func(string), then func(), otherwise func()) {
	thenL := b.NewLabel("then")
	elseL := b.NewLabel("else")
	endL := b.NewLabel("endif")
	branchToThen(thenL)
	b.J(elseL)
	b.Label(thenL)
	then()
	if otherwise != nil {
		b.J(endL)
	}
	b.Label(elseL)
	if otherwise != nil {
		otherwise()
		b.Label(endL)
	}
}

// MinBranch updates acc = min(acc, v) using a compare-and-branch, the
// data-dependent idiom whose divergence the paper's lock-step recovery
// addresses (the ISA's branchless MIN exists, but the benchmark kernels use
// the branching form deliberately, as a compiler without the DSP extension
// would emit).
func (b *Builder) MinBranch(acc, v *Reg) {
	skip := b.NewLabel("minskip")
	b.Bge(v, acc, skip)
	b.Mov(acc, v)
	b.Label(skip)
}

// MaxBranch updates acc = max(acc, v) with a compare-and-branch.
func (b *Builder) MaxBranch(acc, v *Reg) {
	skip := b.NewLabel("maxskip")
	b.Blt(v, acc, skip)
	b.Mov(acc, v)
	b.Label(skip)
}

// Abs computes rd = |a| (branchless: mask = a>>15; rd = (a^mask)-mask).
func (b *Builder) Abs(rd, a *Reg) {
	m := b.Temp()
	b.Srai(m, a, 15)
	b.Xor(rd, a, m)
	b.Sub(rd, rd, m)
	b.Free(m)
}

// SyncRegion wraps body in the paper's lock-step recovery idiom: SINC on
// entry, SDEC and SLEEP on exit, so a group of cores executing body with
// divergent branches realigns when the last one leaves (§III-B, Fig. 3-b).
func (b *Builder) SyncRegion(point string, body func()) {
	b.SyncRegionG(point, 0, body)
}

// SyncRegionG is SyncRegion on a specific sync group of a descriptor
// architecture.
func (b *Builder) SyncRegionG(point string, group int, body func()) {
	b.SincG(point, group)
	body()
	b.SdecG(point, group)
	b.Sleep()
}

// WaitIRQ emits the subscribe-once helper's wait loop: sleep until the
// status register anded with mask is non-zero, leaving the masked status in
// rd. ackPending clears the pending bits after wake.
func (b *Builder) WaitIRQ(rd *Reg, statusAddr, mask, pendAddr int) {
	top := b.NewLabel("wirq")
	b.Label(top)
	b.Sleep()
	b.LoadMMIO(rd, statusAddr)
	b.Andi(rd, rd, mask)
	b.Beqz(rd, top)
	b.StoreMMIOImm(mask, pendAddr)
}
