package prog

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// assemble compiles builder output through the real assembler.
func assemble(t *testing.T, b *Builder) []isa.Word {
	t.Helper()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	code, _, _, err := asm.AssembleSnippet(b.Source(), 0, 0)
	if err != nil {
		t.Fatalf("assembling generated code: %v\n%s", err, b.Source())
	}
	return code
}

func TestBasicEmission(t *testing.T) {
	b := New("t")
	r1 := b.Reg()
	r2 := b.Reg()
	b.Li(r1, 5)
	b.Li(r2, 7)
	b.Add(r1, r1, r2)
	b.Halt()
	code := assemble(t, b)
	if len(code) != 4 {
		t.Fatalf("got %d words", len(code))
	}
	if got := isa.Decode(code[2]); got.Op != isa.OpADD {
		t.Errorf("third word = %v", got)
	}
}

func TestRegisterPoolExhaustion(t *testing.T) {
	b := New("t")
	for i := 0; i < 13; i++ {
		b.Reg()
	}
	b.Reg() // 14th allocation must fail
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "out of registers") {
		t.Errorf("err = %v", b.Err())
	}
}

func TestFreeAndReuse(t *testing.T) {
	b := New("t")
	var last *Reg
	for i := 0; i < 13; i++ {
		last = b.Reg()
	}
	b.Free(last)
	r := b.Reg()
	if b.Err() != nil {
		t.Fatalf("reuse after free failed: %v", b.Err())
	}
	if r.n != last.n {
		t.Errorf("expected reuse of r%d, got r%d", last.n, r.n)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	b := New("t")
	r := b.Reg()
	b.Free(r)
	b.Free(r)
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "double free") {
		t.Errorf("err = %v", b.Err())
	}
}

func TestForNLoop(t *testing.T) {
	b := New("t")
	sum := b.Reg()
	b.Li(sum, 0)
	b.ForN(5, func(i *Reg) {
		b.Add(sum, sum, i)
	})
	b.Halt()
	src := b.Source()
	if !strings.Contains(src, "blt") {
		t.Errorf("loop must use blt:\n%s", src)
	}
	assemble(t, b)
}

func TestIfHelpers(t *testing.T) {
	b := New("t")
	a, c := b.Reg(), b.Reg()
	b.IfLt(a, c, func() { b.Li(a, 1) }, func() { b.Li(a, 2) })
	b.IfEq(a, c, func() { b.Li(a, 3) }, nil)
	b.IfNez(a, func() { b.Li(a, 4) }, nil)
	b.Halt()
	assemble(t, b)
}

func TestSyncRegionIdiom(t *testing.T) {
	b := New("t")
	b.SyncRegion("PT_X", func() { b.Nop() })
	b.Halt()
	src := b.Source()
	wantOrder := []string{"sinc #PT_X", "nop", "sdec #PT_X", "sleep"}
	pos := -1
	for _, w := range wantOrder {
		i := strings.Index(src, w)
		if i < 0 || i < pos {
			t.Fatalf("sync region idiom out of order, missing %q:\n%s", w, src)
		}
		pos = i
	}
}

func TestUniqueLabels(t *testing.T) {
	b := New("t")
	l1 := b.NewLabel("x")
	l2 := b.NewLabel("x")
	if l1 == l2 {
		t.Error("labels must be unique")
	}
}

func TestMMIOHelpers(t *testing.T) {
	b := New("t")
	r := b.Reg()
	b.LoadMMIO(r, int(isa.RegCoreID))
	b.StoreMMIO(r, int(isa.RegDebugOut))
	b.StoreMMIOImm(3, int(isa.RegIRQSub))
	b.Halt()
	assemble(t, b)
}

func TestWaitIRQShape(t *testing.T) {
	b := New("t")
	r := b.Reg()
	b.WaitIRQ(r, int(isa.RegADCStatus), 1, int(isa.RegIRQPend))
	b.Halt()
	src := b.Source()
	if !strings.Contains(src, "sleep") || !strings.Contains(src, "beqz") {
		t.Errorf("wait loop malformed:\n%s", src)
	}
	assemble(t, b)
}

func TestMinMaxBranchAndAbs(t *testing.T) {
	b := New("t")
	acc, v, out := b.Reg(), b.Reg(), b.Reg()
	b.MinBranch(acc, v)
	b.MaxBranch(acc, v)
	b.Abs(out, v)
	b.Halt()
	src := b.Source()
	// Abs is branchless; min/max use compare-and-branch (two branches).
	if strings.Count(src, "bge")+strings.Count(src, "blt") != 2 {
		t.Errorf("expected exactly two compare-and-branch ops:\n%s", src)
	}
	assemble(t, b)
}

func TestLoopForever(t *testing.T) {
	b := New("t")
	n := b.Reg()
	b.Li(n, 0)
	b.LoopForever(func(brk string) {
		b.Addi(n, n, 1)
		t2 := b.Temp()
		b.Li(t2, 10)
		b.Bge(n, t2, brk)
		b.Free(t2)
	})
	b.Halt()
	assemble(t, b)
}

func TestZeroRegisterNeverFreed(t *testing.T) {
	b := New("t")
	b.Free(Zero) // must be a harmless no-op
	if b.Err() != nil {
		t.Errorf("freeing Zero errored: %v", b.Err())
	}
}

func TestCommentsDoNotBreakAssembly(t *testing.T) {
	b := New("t")
	b.Comment("stage %d: %s", 1, "erosion")
	b.Halt()
	assemble(t, b)
}
