// Package obs is the observability layer: a cycle-stamped event timeline
// and a metrics registry that can watch a simulation without changing it.
//
// The package exists because the instruction tracer cannot: attaching a
// trace.Recorder disables the spin fast-forward and block engines, so the
// tracer can never observe the system in its real operating mode. The
// timeline takes the opposite contract. It records only boundary events
// that every engine already crosses — core wake/sleep/halt, barrier
// arrive/release, sync-timeout fire, ADC sample publication, and one span
// per idle leap / spin leap / block stride — so all three fast paths stay
// engaged and a timeline-enabled run is bit-identical to a disabled one.
//
// The disabled path is free. Every emit method is defined on the concrete
// *Sink pointer and tolerates a nil receiver, so an unobserved call site
// is a nil check with zero allocations (pinned by testing.AllocsPerRun in
// the platform tests). Call sites must keep the receiver a concrete
// *Sink: boxing it into an interface would defeat both guarantees.
//
// Timeline and registry contents are process state, like the spin/block
// engine diagnostics: they are reset when a platform adopts a snapshot
// and are never serialized into snapshots (see docs/FORMATS.md).
package obs

// Kind classifies a timeline event. The catalog is documented in
// docs/OBSERVABILITY.md; the String form is the "name" field of the
// exported Chrome trace events.
type Kind uint8

const (
	// KindWake marks a core leaving the gated state (Track/ID = core).
	KindWake Kind = iota
	// KindSleep marks a core gating on SLEEP (Track/ID = core).
	KindSleep
	// KindHalt marks a core executing HALT (Track/ID = core).
	KindHalt
	// KindTimeout marks a sync-timeout IRQ firing on a core
	// (Track/ID = core, Arg1 = withdrawn-flags group mask).
	KindTimeout
	// KindBarrierArrive marks a core setting its flag at a sync point
	// (Track/ID = group, Arg1 = point, Arg2 = core).
	KindBarrierArrive
	// KindBarrierRelease marks a sync point opening
	// (Track/ID = group, Arg1 = point, Arg2 = released core mask).
	KindBarrierRelease
	// KindADCSample marks one sample publication
	// (Track/ID = channel, Arg1 = cumulative samples on the channel).
	KindADCSample
	// KindIdleLeap is one idle fast-forward leap spanning Dur cycles.
	KindIdleLeap
	// KindSpinLeap is one spin fast-forward leap spanning Dur cycles
	// (Arg1 = loop period in cycles, Arg2 = iterations replayed).
	KindSpinLeap
	// KindBlockStride is one block-engine run spanning Dur cycles
	// (Arg1 = instructions retired in the stride, Arg2 = participating
	// running cores: 1 for single-core block runs, ≥ 2 for multi-core
	// lock-step strides).
	KindBlockStride
	// KindPhase is an operating-point session phase (probe, verify,
	// measure) spanning Dur cycles of the forked platform's clock;
	// Label carries the phase and point being solved.
	KindPhase
)

var kindNames = [...]string{
	KindWake:           "wake",
	KindSleep:          "sleep",
	KindHalt:           "halt",
	KindTimeout:        "sync-timeout",
	KindBarrierArrive:  "barrier-arrive",
	KindBarrierRelease: "barrier-release",
	KindADCSample:      "adc-sample",
	KindIdleLeap:       "idle-leap",
	KindSpinLeap:       "spin-leap",
	KindBlockStride:    "block-stride",
	KindPhase:          "phase",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Track selects the timeline row family an event belongs to. Together
// with the event ID it maps onto a Perfetto pid/tid pair (see chrome.go).
type Track uint8

const (
	// TrackCore rows carry per-core events; ID is the core index.
	TrackCore Track = iota
	// TrackSync rows carry barrier traffic; ID is the sync group.
	TrackSync
	// TrackADC rows carry sample publications; ID is the channel.
	TrackADC
	// TrackEngine carries fast-path engine spans (ID 0).
	TrackEngine
	// TrackSession carries operating-point phase spans (ID 0).
	TrackSession
)

var trackNames = [...]string{
	TrackCore:    "core",
	TrackSync:    "sync",
	TrackADC:     "adc",
	TrackEngine:  "engine",
	TrackSession: "session",
}

func (t Track) String() string {
	if int(t) < len(trackNames) {
		return trackNames[t]
	}
	return "unknown"
}

// Event is one timeline entry. Cycle is the exact simulated cycle the
// event was committed at; Dur is zero for instants and the span length in
// cycles for leap/stride/phase events. Arg1/Arg2 are kind-specific (see
// the Kind constants). Label is set only on KindPhase events; boundary
// events leave it empty so the hot emit path never builds strings.
type Event struct {
	Cycle uint64
	Dur   uint64
	Kind  Kind
	Track Track
	ID    int32
	Arg1  int64
	Arg2  int64
	Label string
}
