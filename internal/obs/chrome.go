package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event export maps the timeline onto Perfetto's
// process/thread grid: each Track family is one "process" and each row ID
// one "thread", so Perfetto renders one track per core, one per sync
// group, plus ADC-channel, engine and session tracks. Timestamps are
// simulated cycles written into the ts/dur microsecond fields — the
// viewer's "us" axis reads directly as cycles.

// trackPid maps a Track family to its synthetic process id (index by
// Track; pids start at 1 because pid 0 renders poorly in viewers).
func trackPid(t Track) int { return int(t) + 1 }

// traceEvent is one entry of the Chrome trace-event JSON array.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// eventArgs names the kind-specific Arg1/Arg2 payload for the viewer.
func eventArgs(ev Event) map[string]any {
	switch ev.Kind {
	case KindBarrierArrive:
		return map[string]any{"point": ev.Arg1, "core": ev.Arg2}
	case KindBarrierRelease:
		return map[string]any{"point": ev.Arg1, "released_mask": ev.Arg2}
	case KindTimeout:
		return map[string]any{"withdrawn_groups": ev.Arg1}
	case KindADCSample:
		return map[string]any{"samples": ev.Arg1}
	case KindSpinLeap:
		return map[string]any{"period": ev.Arg1, "iterations": ev.Arg2}
	case KindBlockStride:
		return map[string]any{"instrs": ev.Arg1, "cores": ev.Arg2}
	case KindPhase:
		return map[string]any{"cycles": ev.Dur}
	default:
		return nil
	}
}

// eventName is the display name: the kind, or the phase label when set.
func eventName(ev Event) string {
	if ev.Kind == KindPhase && ev.Label != "" {
		return ev.Label
	}
	return ev.Kind.String()
}

// WriteChromeTrace writes events as a Chrome trace-event JSON document
// loadable in Perfetto or chrome://tracing. Events are stably sorted by
// cycle so timestamps are monotone even when several platforms shared the
// sink; metadata (process/thread names) is emitted for every track row
// that appears, in deterministic order.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cycle < sorted[j].Cycle })

	type row struct {
		pid, tid int
	}
	seen := make(map[row]Track)
	out := make([]traceEvent, 0, len(sorted)+16)
	for _, ev := range sorted {
		r := row{trackPid(ev.Track), int(ev.ID)}
		seen[r] = ev.Track
		te := traceEvent{
			Name: eventName(ev),
			Pid:  r.pid,
			Tid:  r.tid,
			Ts:   ev.Cycle,
			Args: eventArgs(ev),
		}
		if ev.Dur != 0 || ev.Kind == KindIdleLeap || ev.Kind == KindSpinLeap ||
			ev.Kind == KindBlockStride || ev.Kind == KindPhase {
			dur := ev.Dur
			te.Phase = "X"
			te.Dur = &dur
		} else {
			te.Phase = "i"
			te.Scope = "t"
		}
		out = append(out, te)
	}

	rows := make([]row, 0, len(seen))
	for r := range seen {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pid != rows[j].pid {
			return rows[i].pid < rows[j].pid
		}
		return rows[i].tid < rows[j].tid
	})
	meta := make([]traceEvent, 0, 2*len(rows))
	lastPid := -1
	for _, r := range rows {
		tr := seen[r]
		if r.pid != lastPid {
			lastPid = r.pid
			meta = append(meta, traceEvent{
				Name: "process_name", Phase: "M", Pid: r.pid,
				Args: map[string]any{"name": tr.String()},
			})
		}
		meta = append(meta, traceEvent{
			Name: "thread_name", Phase: "M", Pid: r.pid, Tid: r.tid,
			Args: map[string]any{"name": fmt.Sprintf("%s %d", tr, r.tid)},
		})
	}

	doc := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, out...)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
