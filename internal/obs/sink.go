package obs

import "sync"

// Sink is the attachment point the engines emit into: a timeline, a
// registry, or both. A nil *Sink is the canonical "observability off"
// value — every method tolerates a nil receiver and returns immediately,
// so instrumentation sites are a nil check costing zero allocations.
// Keep sink fields and parameters typed as the concrete *Sink; boxing
// one into an interface would make the nil test and the zero-alloc
// guarantee unreliable.
//
// A sink may be shared by concurrent platforms (a session sweep): the
// timeline is guarded by the sink's mutex and the registry by its own.
type Sink struct {
	mu  sync.Mutex
	tl  *Timeline
	reg *Registry
}

// NewSink returns a sink recording into tl and reg; either may be nil to
// attach only the other surface.
func NewSink(tl *Timeline, reg *Registry) *Sink {
	return &Sink{tl: tl, reg: reg}
}

// Timeline returns the sink's timeline (nil if none, or on a nil sink).
func (s *Sink) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return s.tl
}

// Registry returns the sink's registry (nil if none, or on a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Events snapshots the timeline's live events (nil if no timeline).
func (s *Sink) Events() []Event {
	if s == nil || s.tl == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tl.Events()
}

// Instant records a zero-duration event at cycle.
func (s *Sink) Instant(kind Kind, track Track, id int32, cycle uint64, a1, a2 int64) {
	if s == nil || s.tl == nil {
		return
	}
	s.mu.Lock()
	s.tl.append(Event{Cycle: cycle, Kind: kind, Track: track, ID: id, Arg1: a1, Arg2: a2})
	s.mu.Unlock()
}

// Span records an event covering [start, start+dur) cycles.
func (s *Sink) Span(kind Kind, track Track, id int32, start, dur uint64, a1, a2 int64) {
	if s == nil || s.tl == nil {
		return
	}
	s.mu.Lock()
	s.tl.append(Event{Cycle: start, Dur: dur, Kind: kind, Track: track, ID: id, Arg1: a1, Arg2: a2})
	s.mu.Unlock()
}

// Phase records a labeled session-phase span. Unlike the boundary emits
// it carries a string; callers guard phase label construction behind a
// nil check so disabled runs never build it.
func (s *Sink) Phase(label string, start, dur uint64, a1 int64) {
	if s == nil || s.tl == nil {
		return
	}
	s.mu.Lock()
	s.tl.append(Event{Cycle: start, Dur: dur, Kind: KindPhase, Track: TrackSession, Arg1: a1, Label: label})
	s.mu.Unlock()
}

// Add increments registry counter name by n (no-op without a registry).
func (s *Sink) Add(name string, n uint64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.Add(name, n)
}

// Observe records one histogram sample (no-op without a registry).
func (s *Sink) Observe(name string, v uint64) {
	if s == nil || s.reg == nil {
		return
	}
	s.reg.Observe(name, v)
}
