package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
)

// Registry holds named monotonic counters and cycle histograms. Engines,
// power counters and session stats publish into it at end of run, and the
// sink feeds the histograms live (leap lengths, barrier waits). All reads
// and writes are mutex-guarded, so a sweep's worker pool can share one
// registry. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Hist),
	}
}

// Hist is a histogram of uint64 samples (cycle counts) bucketed by power
// of two: bucket i counts samples whose bit length is i, i.e. values in
// [2^(i-1), 2^i). Exact count/sum/min/max ride along so means and ranges
// need no bucket interpolation.
type Hist struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [65]uint64
}

func (h *Hist) observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Add increments counter name by n.
func (r *Registry) Add(name string, n uint64) {
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Set binds counter name to the absolute value v. End-of-run publishers use
// Add into a fresh registry; long-lived publishers (the serving layer's
// metrics endpoint re-exports cumulative session statistics on every scrape)
// use Set so repeated publication is idempotent.
func (r *Registry) Set(name string, v uint64) {
	r.mu.Lock()
	r.counters[name] = v
	r.mu.Unlock()
}

// Observe records one sample into histogram name.
func (r *Registry) Observe(name string, v uint64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Hist{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counter returns the current value of counter name (0 if absent).
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Histogram returns a copy of histogram name and whether it exists.
func (r *Registry) Histogram(name string) (Hist, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		return Hist{}, false
	}
	return *h, true
}

// WriteText writes the registry as sorted, deterministic one-per-line
// text, each line prefixed with prefix. Counters print as "name value",
// histograms as "name count=N sum=S min=M max=X" — integers only, so the
// output is stable across platforms. This is the uniform stats block the
// CLIs print on stderr.
func (r *Registry) WriteText(w io.Writer, prefix string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", prefix, name, r.counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		if _, err := fmt.Fprintf(w, "%s%s count=%d sum=%d min=%d max=%d\n",
			prefix, name, h.Count, h.Sum, h.Min, h.Max); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the exported histogram shape: exact summary plus the
// nonzero power-of-two buckets as [upper bound, count] pairs, ordered by
// bound, so the document is byte-stable for identical contents.
type histJSON struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Min     uint64      `json:"min"`
	Max     uint64      `json:"max"`
	Buckets [][2]uint64 `json:"buckets"`
}

// metricsJSON is the -metrics-out document. encoding/json writes map keys
// sorted, so identical registries marshal byte-identically.
type metricsJSON struct {
	Counters   map[string]uint64   `json:"counters"`
	Histograms map[string]histJSON `json:"histograms"`
}

// WriteJSON writes the registry as the stable metrics document consumed
// by tools/benchjson and the -metrics-out flag.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	doc := metricsJSON{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]histJSON, len(r.hists)),
	}
	for name, v := range r.counters {
		doc.Counters[name] = v
	}
	for name, h := range r.hists {
		hj := histJSON{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
		for i, c := range h.Buckets {
			if c != 0 {
				var bound uint64
				if i >= 64 {
					bound = 1<<64 - 1
				} else {
					bound = 1 << uint(i)
				}
				hj.Buckets = append(hj.Buckets, [2]uint64{bound, c})
			}
		}
		doc.Histograms[name] = hj
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
