package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(4)
	for i := 0; i < 3; i++ {
		tl.append(Event{Cycle: uint64(i)})
	}
	if tl.Len() != 3 || tl.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3/0", tl.Len(), tl.Dropped())
	}
	for i := 3; i < 10; i++ {
		tl.append(Event{Cycle: uint64(i)})
	}
	if tl.Len() != 4 {
		t.Fatalf("len=%d, want capacity 4", tl.Len())
	}
	if tl.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", tl.Dropped())
	}
	evs := tl.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle=%d, want %d (most recent window)", i, ev.Cycle, want)
		}
	}
	tl.Reset()
	if tl.Len() != 0 || tl.Dropped() != 0 || len(tl.Events()) != 0 {
		t.Fatalf("reset did not clear the ring")
	}
}

func TestRegistryCountersAndHists(t *testing.T) {
	r := NewRegistry()
	r.Add("b.count", 2)
	r.Add("a.count", 1)
	r.Add("b.count", 3)
	if got := r.Counter("b.count"); got != 5 {
		t.Fatalf("b.count=%d, want 5", got)
	}
	for _, v := range []uint64{1, 2, 3, 1024} {
		r.Observe("h.cycles", v)
	}
	h, ok := r.Histogram("h.cycles")
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 4 || h.Sum != 1030 || h.Min != 1 || h.Max != 1024 {
		t.Fatalf("hist summary = %+v", h)
	}
	// v=1 -> bit length 1; v=2,3 -> 2; v=1024 -> 11.
	if h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[11] != 1 {
		t.Fatalf("hist buckets = %v", h.Buckets[:12])
	}
}

func TestRegistryWriteTextSortedDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Add("z.last", 1)
	r.Add("a.first", 2)
	r.Observe("m.hist", 7)
	var b1, b2 bytes.Buffer
	if err := r.WriteText(&b1, "stats "); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b2, "stats "); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("WriteText not deterministic:\n%q\n%q", b1.String(), b2.String())
	}
	want := "stats a.first 2\nstats z.last 1\nstats m.hist count=1 sum=7 min=7 max=7\n"
	if b1.String() != want {
		t.Fatalf("WriteText = %q, want %q", b1.String(), want)
	}
}

func TestRegistryWriteJSONStable(t *testing.T) {
	r := NewRegistry()
	r.Add("runs", 3)
	r.Observe("leap.cycles", 100)
	r.Observe("leap.cycles", 5)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteJSON not byte-stable across calls")
	}
	var doc struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count   uint64      `json:"count"`
			Buckets [][2]uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if doc.Counters["runs"] != 3 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	h := doc.Histograms["leap.cycles"]
	if h.Count != 2 || len(h.Buckets) != 2 {
		t.Fatalf("histogram export = %+v", h)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i][0] <= h.Buckets[i-1][0] {
			t.Fatalf("bucket bounds not ascending: %v", h.Buckets)
		}
	}
}

func TestSinkRecordsAndNilSafe(t *testing.T) {
	var nilSink *Sink
	// Every method must tolerate a nil receiver (the disabled path).
	nilSink.Instant(KindWake, TrackCore, 0, 1, 0, 0)
	nilSink.Span(KindIdleLeap, TrackEngine, 0, 1, 10, 0, 0)
	nilSink.Phase("probe", 0, 10, 0)
	nilSink.Add("c", 1)
	nilSink.Observe("h", 1)
	if nilSink.Events() != nil || nilSink.Timeline() != nil || nilSink.Registry() != nil {
		t.Fatal("nil sink accessors must return nil")
	}

	s := NewSink(NewTimeline(16), NewRegistry())
	s.Instant(KindWake, TrackCore, 2, 100, 0, 0)
	s.Span(KindSpinLeap, TrackEngine, 0, 200, 64, 8, 8)
	s.Phase("probe ecg/MC", 0, 300, 0)
	s.Add("engine.spin.leaps", 1)
	s.Observe("engine.spin_leap_cycles", 64)
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindWake || evs[0].ID != 2 || evs[0].Cycle != 100 {
		t.Fatalf("instant = %+v", evs[0])
	}
	if evs[1].Dur != 64 || evs[1].Arg1 != 8 {
		t.Fatalf("span = %+v", evs[1])
	}
	if evs[2].Label != "probe ecg/MC" || evs[2].Track != TrackSession {
		t.Fatalf("phase = %+v", evs[2])
	}
	if s.Registry().Counter("engine.spin.leaps") != 1 {
		t.Fatal("registry counter not recorded")
	}
}

func TestNilSinkZeroAlloc(t *testing.T) {
	var s *Sink
	n := testing.AllocsPerRun(1000, func() {
		s.Instant(KindWake, TrackCore, 0, 1, 0, 0)
		s.Span(KindIdleLeap, TrackEngine, 0, 1, 10, 0, 0)
		s.Add("x", 1)
		s.Observe("x", 1)
	})
	if n != 0 {
		t.Fatalf("nil-sink emits allocated %v per run, want 0", n)
	}
}

func TestChromeTraceSchema(t *testing.T) {
	s := NewSink(NewTimeline(64), nil)
	// Deliberately out of order across tracks; same-cycle events keep order.
	s.Instant(KindSleep, TrackCore, 1, 50, 0, 0)
	s.Instant(KindBarrierArrive, TrackSync, 0, 50, 3, 1)
	s.Span(KindIdleLeap, TrackEngine, 0, 51, 100, 0, 0)
	s.Instant(KindBarrierRelease, TrackSync, 0, 151, 3, 0b11)
	s.Instant(KindWake, TrackCore, 1, 151, 0, 0)
	s.Instant(KindADCSample, TrackADC, 2, 160, 1, 0)
	s.Phase("measure ecg/MC", 0, 200, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Pid   int            `json:"pid"`
			Tid   int            `json:"tid"`
			Ts    uint64         `json:"ts"`
			Dur   *uint64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	lastTs := uint64(0)
	var sawMetaProc, sawMetaThread bool
	names := map[string]bool{}
	for _, te := range doc.TraceEvents {
		switch te.Phase {
		case "M":
			name, _ := te.Args["name"].(string)
			if te.Name == "process_name" {
				sawMetaProc = true
			}
			if te.Name == "thread_name" {
				sawMetaThread = true
				names[name] = true
			}
		case "X", "i":
			if te.Ts < lastTs {
				t.Fatalf("timestamps not monotone: %d after %d", te.Ts, lastTs)
			}
			lastTs = te.Ts
			if te.Phase == "X" && te.Dur == nil {
				t.Fatalf("span %q missing dur", te.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", te.Phase)
		}
	}
	if !sawMetaProc || !sawMetaThread {
		t.Fatal("missing process_name/thread_name metadata")
	}
	for _, want := range []string{"core 1", "sync 0", "adc 2", "engine 0", "session 0"} {
		if !names[want] {
			t.Fatalf("missing thread_name %q in %v", want, names)
		}
	}
	// Track families map to distinct pids, rows to tids.
	for _, te := range doc.TraceEvents {
		if te.Name == "barrier-arrive" && (te.Pid != trackPid(TrackSync) || te.Tid != 0) {
			t.Fatalf("barrier-arrive on pid=%d tid=%d", te.Pid, te.Tid)
		}
		if te.Name == "sleep" && (te.Pid != trackPid(TrackCore) || te.Tid != 1) {
			t.Fatalf("sleep on pid=%d tid=%d", te.Pid, te.Tid)
		}
	}
	if strings.Count(buf.String(), "idle-leap") != 1 {
		t.Fatal("idle leap must export as a single span event")
	}
}
