package obs

// Timeline is a fixed-capacity ring of Events. The ring is preallocated
// at construction and never grows: when full, the oldest events are
// overwritten and counted in Dropped, so a long run keeps its most recent
// window instead of failing or allocating. The zero value is unusable;
// use NewTimeline.
//
// Timeline is not safe for concurrent use on its own; Sink serializes
// access to it.
type Timeline struct {
	buf     []Event
	head    int    // index of the next slot to write
	n       int    // live events, <= len(buf)
	dropped uint64 // events overwritten after the ring filled
}

// DefaultTimelineCap is the ring capacity the CLIs use unless overridden:
// large enough to hold every boundary event of the bundled scenarios at
// their default durations, small enough to stay a few dozen MB.
const DefaultTimelineCap = 1 << 18

// NewTimeline returns a ring holding up to cap events (minimum 1).
func NewTimeline(capacity int) *Timeline {
	if capacity < 1 {
		capacity = 1
	}
	return &Timeline{buf: make([]Event, capacity)}
}

// append records ev, overwriting the oldest event if the ring is full.
func (t *Timeline) append(ev Event) {
	t.buf[t.head] = ev
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
}

// Len reports the number of live events.
func (t *Timeline) Len() int { return t.n }

// Dropped reports how many events were overwritten after the ring filled.
func (t *Timeline) Dropped() uint64 { return t.dropped }

// Events returns the live events oldest-first as a fresh slice. Within
// one platform the order is cycle-monotone; when several platforms share
// a sink (a session sweep) events interleave in emission order.
func (t *Timeline) Events() []Event {
	out := make([]Event, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Reset discards all events and the dropped count.
func (t *Timeline) Reset() {
	t.head, t.n, t.dropped = 0, 0, 0
}
