package cpu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// fakeEnv records synchronizer interactions.
type fakeEnv struct {
	posts  []string
	sleeps int
	grant  bool
	halted bool
}

func (f *fakeEnv) PostSync(core int, kind isa.Opcode, point int) {
	f.posts = append(f.posts, kind.String())
}
func (f *fakeEnv) RequestSleep(core int) bool { f.sleeps++; return f.grant }
func (f *fakeEnv) Halt(core int)              { f.halted = true }

func exec(t *testing.T, c *Core, ins isa.Instr, load uint16) Effect {
	t.Helper()
	env := &fakeEnv{grant: true}
	eff := c.Execute(ins, load, env)
	if eff.Fault != nil {
		t.Fatalf("Execute(%v): %v", ins, eff.Fault)
	}
	return eff
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b uint16
		want uint16
	}{
		{isa.OpADD, 3, 4, 7},
		{isa.OpADD, 0xFFFF, 1, 0}, // wraparound
		{isa.OpSUB, 3, 4, 0xFFFF},
		{isa.OpAND, 0xF0F0, 0xFF00, 0xF000},
		{isa.OpOR, 0xF0F0, 0x0F00, 0xFFF0},
		{isa.OpXOR, 0xFFFF, 0x00FF, 0xFF00},
		{isa.OpSLL, 1, 15, 0x8000},
		{isa.OpSLL, 1, 16, 1}, // shift amount masked to 4 bits
		{isa.OpSRL, 0x8000, 15, 1},
		{isa.OpSRA, 0x8000, 15, 0xFFFF}, // arithmetic: sign extends
		{isa.OpMUL, 300, 300, uint16(90000 & 0xFFFF)},
		{isa.OpMUL, 0xFFFF, 2, 0xFFFE},       // -1 * 2 = -2
		{isa.OpMULH, 0x4000, 0x4000, 0x1000}, // 16384^2 >> 16
		{isa.OpSLT, 0xFFFF, 0, 1},            // -1 < 0 signed
		{isa.OpSLTU, 0xFFFF, 0, 0},           // unsigned
		{isa.OpMIN, 0xFFFF, 1, 0xFFFF},       // signed min(-1,1) = -1
		{isa.OpMAX, 0xFFFF, 1, 1},
		{isa.OpMINU, 0xFFFF, 1, 1},
		{isa.OpMAXU, 0xFFFF, 1, 0xFFFF},
	}
	for _, tc := range cases {
		c := New(0, 0)
		c.Regs[1], c.Regs[2] = tc.a, tc.b
		exec(t, c, isa.Instr{Op: tc.op, Rd: 3, Rs1: 1, Rs2: 2}, 0)
		if c.Regs[3] != tc.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", tc.op, tc.a, tc.b, c.Regs[3], tc.want)
		}
		if c.PC != 1 {
			t.Errorf("%v: PC = %d, want 1", tc.op, c.PC)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a    uint16
		imm  int32
		want uint16
	}{
		{isa.OpADDI, 10, -3, 7},
		{isa.OpANDI, 0xFFFF, 0xF, 0xF},
		{isa.OpORI, 0xFF00, 0x3F, 0xFF3F},
		{isa.OpXORI, 0x00FF, -1, 0xFF00},
		{isa.OpSLLI, 1, 8, 0x100},
		{isa.OpSRLI, 0x100, 8, 1},
		{isa.OpSRAI, 0x8000, 8, 0xFF80},
		{isa.OpSLTI, 0xFFFF, 0, 1},
		{isa.OpLUI, 0, 0x3FF, 0xFFC0},
	}
	for _, tc := range cases {
		c := New(0, 0)
		c.Regs[1] = tc.a
		exec(t, c, isa.Instr{Op: tc.op, Rd: 3, Rs1: 1, Imm: tc.imm}, 0)
		if c.Regs[3] != tc.want {
			t.Errorf("%v(%#x, %d) = %#x, want %#x", tc.op, tc.a, tc.imm, c.Regs[3], tc.want)
		}
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	c := New(0, 0)
	c.Regs[1] = 99
	exec(t, c, isa.Instr{Op: isa.OpADD, Rd: 0, Rs1: 1, Rs2: 1}, 0)
	if c.Regs[0] != 0 {
		t.Error("write to r0 must be discarded")
	}
	exec(t, c, isa.Instr{Op: isa.OpLW, Rd: 0, Rs1: 1}, 1234)
	if c.Regs[0] != 0 {
		t.Error("load to r0 must be discarded")
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		op    isa.Opcode
		a, b  uint16
		taken bool
	}{
		{isa.OpBEQ, 5, 5, true},
		{isa.OpBEQ, 5, 6, false},
		{isa.OpBNE, 5, 6, true},
		{isa.OpBLT, 0xFFFF, 0, true}, // -1 < 0
		{isa.OpBLT, 0, 0xFFFF, false},
		{isa.OpBGE, 0, 0xFFFF, true},
		{isa.OpBLTU, 0, 0xFFFF, true},
		{isa.OpBGEU, 0xFFFF, 0, true},
	}
	for _, tc := range cases {
		c := New(0, 10)
		c.Regs[1], c.Regs[2] = tc.a, tc.b
		eff := exec(t, c, isa.Instr{Op: tc.op, Rs1: 1, Rs2: 2, Imm: 5}, 0)
		if eff.Taken != tc.taken {
			t.Errorf("%v(%#x,%#x): taken = %v, want %v", tc.op, tc.a, tc.b, eff.Taken, tc.taken)
		}
		wantPC := 11
		wantBubble := 0
		if tc.taken {
			wantPC = 16 // 10 + 1 + 5
			wantBubble = BranchPenalty
		}
		if c.PC != wantPC || c.Bubble != wantBubble {
			t.Errorf("%v: PC=%d bubble=%d, want PC=%d bubble=%d", tc.op, c.PC, c.Bubble, wantPC, wantBubble)
		}
	}
}

func TestJALAndJALR(t *testing.T) {
	c := New(0, 100)
	eff := exec(t, c, isa.Instr{Op: isa.OpJAL, Rd: 15, Imm: -50}, 0)
	if !eff.Taken || c.PC != 51 || c.Regs[15] != 101 {
		t.Errorf("JAL: PC=%d ra=%d taken=%v", c.PC, c.Regs[15], eff.Taken)
	}
	c2 := New(0, 200)
	c2.Regs[15] = 101
	eff = exec(t, c2, isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: 15, Imm: 0}, 0)
	if !eff.Taken || c2.PC != 101 {
		t.Errorf("JALR: PC=%d", c2.PC)
	}
}

func TestMemRequest(t *testing.T) {
	c := New(0, 0)
	c.Regs[2] = 0x1000
	c.Regs[3] = 0xABCD
	op := c.MemRequest(isa.Instr{Op: isa.OpLW, Rd: 1, Rs1: 2, Imm: 4})
	if !op.Valid || op.Write || op.Addr != 0x1004 {
		t.Errorf("LW request = %+v", op)
	}
	op = c.MemRequest(isa.Instr{Op: isa.OpSW, Rs1: 2, Rs2: 3, Imm: -1})
	if !op.Valid || !op.Write || op.Addr != 0x0FFF || op.Data != 0xABCD {
		t.Errorf("SW request = %+v", op)
	}
	op = c.MemRequest(isa.Instr{Op: isa.OpADD})
	if op.Valid {
		t.Error("ALU ops need no memory request")
	}
}

func TestLoadWritesRegister(t *testing.T) {
	c := New(0, 0)
	exec(t, c, isa.Instr{Op: isa.OpLW, Rd: 5, Rs1: 0, Imm: 16}, 0xCAFE)
	if c.Regs[5] != 0xCAFE {
		t.Errorf("LW loaded %#x", c.Regs[5])
	}
}

func TestSyncInstructionsReachEnv(t *testing.T) {
	c := New(3, 0)
	env := &fakeEnv{grant: true}
	c.Execute(isa.Instr{Op: isa.OpSINC, Imm: 2}, 0, env)
	c.Execute(isa.Instr{Op: isa.OpSDEC, Imm: 2}, 0, env)
	c.Execute(isa.Instr{Op: isa.OpSNOP, Imm: 1}, 0, env)
	if len(env.posts) != 3 || env.posts[0] != "sinc" || env.posts[1] != "sdec" || env.posts[2] != "snop" {
		t.Errorf("posts = %v", env.posts)
	}
	if c.PC != 3 {
		t.Errorf("PC after sync ops = %d, want 3", c.PC)
	}
}

func TestSleepGrantedAndDenied(t *testing.T) {
	c := New(0, 0)
	env := &fakeEnv{grant: true}
	eff := c.Execute(isa.Instr{Op: isa.OpSLEEP}, 0, env)
	if !eff.Gated || c.PC != 1 {
		t.Errorf("granted sleep: gated=%v PC=%d", eff.Gated, c.PC)
	}
	env.grant = false // event token pending: fall through
	eff = c.Execute(isa.Instr{Op: isa.OpSLEEP}, 0, env)
	if eff.Gated || c.PC != 2 {
		t.Errorf("denied sleep: gated=%v PC=%d", eff.Gated, c.PC)
	}
	if env.sleeps != 2 {
		t.Errorf("sleeps = %d", env.sleeps)
	}
}

func TestHalt(t *testing.T) {
	c := New(0, 7)
	env := &fakeEnv{}
	eff := c.Execute(isa.Instr{Op: isa.OpHALT}, 0, env)
	if !eff.Halted || !env.halted {
		t.Error("HALT must stop the core")
	}
}

func TestInvalidOpcodeFaults(t *testing.T) {
	c := New(0, 0)
	eff := c.Execute(isa.Instr{Op: isa.Opcode(60)}, 0, &fakeEnv{})
	if eff.Fault == nil {
		t.Error("invalid opcode must fault")
	}
}

func TestReset(t *testing.T) {
	c := New(2, 5)
	c.Regs[3] = 7
	c.Bubble = 1
	c.Fetched = true
	c.Reset(9)
	if c.PC != 9 || c.Regs[3] != 0 || c.Bubble != 0 || c.Fetched || c.ID != 2 {
		t.Errorf("Reset left state: %+v", c)
	}
}

func TestQuickAddMatchesInt16(t *testing.T) {
	f := func(a, b int16) bool {
		c := New(0, 0)
		c.Regs[1], c.Regs[2] = uint16(a), uint16(b)
		c.Execute(isa.Instr{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}, 0, &fakeEnv{})
		return int16(c.Regs[3]) == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxConsistent(t *testing.T) {
	f := func(a, b int16) bool {
		c := New(0, 0)
		c.Regs[1], c.Regs[2] = uint16(a), uint16(b)
		c.Execute(isa.Instr{Op: isa.OpMIN, Rd: 3, Rs1: 1, Rs2: 2}, 0, &fakeEnv{})
		c.Execute(isa.Instr{Op: isa.OpMAX, Rd: 4, Rs1: 1, Rs2: 2}, 0, &fakeEnv{})
		lo, hi := int16(c.Regs[3]), int16(c.Regs[4])
		if lo > hi {
			return false
		}
		return (lo == a || lo == b) && (hi == a || hi == b) && lo <= a && lo <= b && hi >= a && hi >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMULMatchesGo(t *testing.T) {
	f := func(a, b int16) bool {
		c := New(0, 0)
		c.Regs[1], c.Regs[2] = uint16(a), uint16(b)
		c.Execute(isa.Instr{Op: isa.OpMUL, Rd: 3, Rs1: 1, Rs2: 2}, 0, &fakeEnv{})
		c.Execute(isa.Instr{Op: isa.OpMULH, Rd: 4, Rs1: 1, Rs2: 2}, 0, &fakeEnv{})
		p := int32(a) * int32(b)
		return c.Regs[3] == uint16(p) && c.Regs[4] == uint16(p>>16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPCWrapsAtIMBoundary(t *testing.T) {
	c := New(0, isa.IMWords-1)
	exec(t, c, isa.Instr{Op: isa.OpNOP}, 0)
	if c.PC != 0 {
		t.Errorf("PC after last word = %d, want 0 (wrap)", c.PC)
	}
}
