// Package cpu models the platform's computing cores: 16-bit RISC machines
// with a three-stage pipeline with forwarding paths (paper §IV-A), extended
// with the synchronization ISE. The package holds the architectural state
// and the pure instruction semantics; fetch/memory arbitration and the cycle
// loop are orchestrated by internal/platform, which owns the shared fabric.
//
// Timing model: CPI 1 with forwarding; taken branches and jumps insert
// BranchPenalty bubble cycles (the three-stage pipeline refills); memory
// bank conflicts stall the issuing core until granted. Wrong-path
// speculative fetches during bubbles are not simulated (their energy is
// ignored; documented simplification).
package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// BranchPenalty is the number of bubble cycles a taken branch or jump costs.
const BranchPenalty = 1

// Env is the core's window onto the synchronizer. It is implemented by the
// platform (and by test fakes).
type Env interface {
	// PostSync queues a SINC/SDEC/SNOP on a synchronization point.
	PostSync(core int, kind isa.Opcode, point int)
	// RequestSleep handles SLEEP; it returns true when the core must gate.
	RequestSleep(core int) bool
	// Halt reports the core stopping permanently.
	Halt(core int)
}

// Core is one computing unit's architectural and pipeline state.
type Core struct {
	ID   int
	Regs [isa.NumRegs]uint16
	PC   int

	// Pipeline/cycle-loop state managed by the platform:

	// Fetched is true when the current instruction was already fetched in
	// an earlier cycle (the core was stalled on a data-memory conflict);
	// the instruction is held in IR and must not be re-fetched (and its
	// fetch must not be re-counted).
	Fetched bool
	// IR is the held instruction when Fetched.
	IR isa.Instr
	// Bubble is the number of pipeline-refill cycles left to burn after a
	// taken branch.
	Bubble int
}

// New returns a core with cleared state starting at entry.
func New(id, entry int) *Core {
	return &Core{ID: id, PC: entry}
}

// Reset rewinds the core to a clean state at entry.
func (c *Core) Reset(entry int) {
	*c = Core{ID: c.ID, PC: entry}
}

// Effect reports what an executed instruction did, for the platform's cycle
// accounting.
type Effect struct {
	Taken  bool // control transfer happened: charge BranchPenalty bubbles
	Gated  bool // core requested SLEEP and was granted gating
	Halted bool // core stopped
	Fault  error
}

// MemOp describes the data-memory access an instruction needs, computed
// before execution so the platform can arbitrate the crossbar.
type MemOp struct {
	Addr  uint16
	Write bool
	Data  uint16 // store value for writes
	Valid bool
}

// MemRequest returns the data access ins needs, with addresses computed from
// the current register state.
func (c *Core) MemRequest(ins isa.Instr) MemOp {
	switch ins.Op {
	case isa.OpLW:
		return MemOp{Addr: c.Regs[ins.Rs1] + uint16(ins.Imm), Valid: true}
	case isa.OpSW:
		return MemOp{Addr: c.Regs[ins.Rs1] + uint16(ins.Imm), Write: true, Data: c.Regs[ins.Rs2], Valid: true}
	}
	return MemOp{}
}

// Execute applies ins to the core's state. loadVal carries the memory word
// for LW (the platform performed the read during arbitration). The returned
// Effect tells the platform how to account the cycle.
func (c *Core) Execute(ins isa.Instr, loadVal uint16, env Env) Effect {
	var eff Effect
	nextPC := c.PC + 1
	setRd := func(v uint16) {
		if ins.Rd != 0 {
			c.Regs[ins.Rd] = v
		}
	}
	rs1 := c.Regs[ins.Rs1]
	rs2 := c.Regs[ins.Rs2]

	switch ins.Op {
	case isa.OpNOP:
	case isa.OpADD:
		setRd(rs1 + rs2)
	case isa.OpSUB:
		setRd(rs1 - rs2)
	case isa.OpAND:
		setRd(rs1 & rs2)
	case isa.OpOR:
		setRd(rs1 | rs2)
	case isa.OpXOR:
		setRd(rs1 ^ rs2)
	case isa.OpSLL:
		setRd(rs1 << (rs2 & 15))
	case isa.OpSRL:
		setRd(rs1 >> (rs2 & 15))
	case isa.OpSRA:
		setRd(uint16(int16(rs1) >> (rs2 & 15)))
	case isa.OpMUL:
		setRd(uint16(int32(int16(rs1)) * int32(int16(rs2))))
	case isa.OpMULH:
		setRd(uint16(int32(int16(rs1)) * int32(int16(rs2)) >> 16))
	case isa.OpSLT:
		setRd(boolTo16(int16(rs1) < int16(rs2)))
	case isa.OpSLTU:
		setRd(boolTo16(rs1 < rs2))
	case isa.OpMIN:
		setRd(uint16(min16(int16(rs1), int16(rs2))))
	case isa.OpMAX:
		setRd(uint16(max16(int16(rs1), int16(rs2))))
	case isa.OpMINU:
		if rs1 < rs2 {
			setRd(rs1)
		} else {
			setRd(rs2)
		}
	case isa.OpMAXU:
		if rs1 > rs2 {
			setRd(rs1)
		} else {
			setRd(rs2)
		}

	case isa.OpADDI:
		setRd(rs1 + uint16(ins.Imm))
	case isa.OpANDI:
		setRd(rs1 & uint16(ins.Imm))
	case isa.OpORI:
		setRd(rs1 | uint16(ins.Imm))
	case isa.OpXORI:
		setRd(rs1 ^ uint16(ins.Imm))
	case isa.OpSLLI:
		setRd(rs1 << (uint16(ins.Imm) & 15))
	case isa.OpSRLI:
		setRd(rs1 >> (uint16(ins.Imm) & 15))
	case isa.OpSRAI:
		setRd(uint16(int16(rs1) >> (uint16(ins.Imm) & 15)))
	case isa.OpSLTI:
		setRd(boolTo16(int16(rs1) < int16(ins.Imm)))
	case isa.OpLUI:
		setRd(uint16(ins.Imm) << 6)

	case isa.OpLW:
		setRd(loadVal)
	case isa.OpSW:
		// The platform performed the write during arbitration.

	case isa.OpBEQ:
		eff.Taken = rs1 == rs2
	case isa.OpBNE:
		eff.Taken = rs1 != rs2
	case isa.OpBLT:
		eff.Taken = int16(rs1) < int16(rs2)
	case isa.OpBGE:
		eff.Taken = int16(rs1) >= int16(rs2)
	case isa.OpBLTU:
		eff.Taken = rs1 < rs2
	case isa.OpBGEU:
		eff.Taken = rs1 >= rs2

	case isa.OpJAL:
		setRd(uint16(c.PC + 1))
		nextPC = c.PC + 1 + int(ins.Imm)
		eff.Taken = true
	case isa.OpJALR:
		target := int(rs1+uint16(ins.Imm)) & (isa.IMWords - 1)
		setRd(uint16(c.PC + 1))
		nextPC = target
		eff.Taken = true

	case isa.OpSINC, isa.OpSDEC, isa.OpSNOP, isa.OpSEVS:
		env.PostSync(c.ID, ins.Op, int(ins.Imm))
	case isa.OpSLEEP:
		eff.Gated = env.RequestSleep(c.ID)
	case isa.OpHALT:
		env.Halt(c.ID)
		eff.Halted = true

	default:
		eff.Fault = fmt.Errorf("cpu: core %d at pc %#x: invalid opcode %d", c.ID, c.PC, ins.Op)
		return eff
	}

	if ins.Op.IsBranch() && eff.Taken {
		nextPC = c.PC + 1 + int(ins.Imm)
	}
	c.PC = nextPC & (isa.IMWords - 1)
	if eff.Taken {
		c.Bubble += BranchPenalty
	}
	c.Fetched = false
	return eff
}

// ExecuteBlock applies ins on the platform's basic-block fast path and
// reports whether a control transfer was taken. The caller guarantees — by
// static classification (mem.Classify) — that ins is a valid non-ISE
// instruction, so the Env-dependent cases (sync posts, SLEEP, HALT) and the
// invalid-opcode fault are unreachable and no Env is needed. Everything
// else (register updates, PC advance, bubble accounting) is byte-for-byte
// the cycle-accurate Execute.
func (c *Core) ExecuteBlock(ins isa.Instr, loadVal uint16) bool {
	return c.Execute(ins, loadVal, nil).Taken
}

func boolTo16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}
