package periph

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
)

func threeTraces(n int) [NumADCChannels][]int16 {
	var tr [NumADCChannels][]int16
	for ch := range tr {
		tr[ch] = make([]int16, n)
		for i := range tr[ch] {
			tr[ch][i] = int16(ch*1000 + i)
		}
	}
	return tr
}

func TestSamplingCadence(t *testing.T) {
	ctr := &power.Counters{}
	var irqs []uint16
	a, err := NewADC(threeTraces(10), 250, 1e6, func(m uint16) { irqs = append(irqs, m) }, ctr)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MHz / 250 Hz = 4000 cycles per sample.
	for cyc := uint64(0); cyc <= 4000; cyc++ {
		a.Tick(cyc)
	}
	if a.SamplesPublished() != 1 {
		t.Fatalf("samples after 4000 cycles = %d, want 1", a.SamplesPublished())
	}
	for cyc := uint64(4000); cyc <= 12000; cyc++ {
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
		a.Tick(cyc)
	}
	if a.SamplesPublished() != 3 {
		t.Errorf("samples after 12000 cycles = %d, want 3 (at 4000, 8000, 12000)", a.SamplesPublished())
	}
	if len(irqs) != 3 || irqs[0] != isa.IRQADC {
		t.Errorf("irqs = %v, want 3 x all-channel mask", irqs)
	}
	if ctr.ADCSamples != 3 {
		t.Errorf("counter ADCSamples = %d", ctr.ADCSamples)
	}
}

func TestReadClearsReady(t *testing.T) {
	a, err := NewADC(threeTraces(10), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if a.Status() != isa.IRQADC {
		t.Fatalf("status = %#x, want all ready", a.Status())
	}
	v := a.ReadData(1)
	if v != 1000 {
		t.Errorf("channel 1 sample = %d, want 1000", v)
	}
	if a.Status()&isa.IRQADC1 != 0 {
		t.Error("reading must clear the channel's ready bit")
	}
	if a.Status()&(isa.IRQADC0|isa.IRQADC2) == 0 {
		t.Error("other channels must stay ready")
	}
}

func TestOverrunDetection(t *testing.T) {
	a, err := NewADC(threeTraces(10), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	a.Tick(8000) // nothing read in between: 3 channels overrun
	if a.Overruns() != 3 {
		t.Errorf("overruns = %d, want 3", a.Overruns())
	}
}

func TestTraceWrapsAround(t *testing.T) {
	a, err := NewADC(threeTraces(2), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if got := a.ReadData(0); got != 0 {
		t.Errorf("sample 0 = %d", got)
	}
	a.Tick(8000)
	if got := a.ReadData(0); got != 1 {
		t.Errorf("sample 1 = %d", got)
	}
	a.Tick(12000)
	if got := a.ReadData(0); got != 0 {
		t.Errorf("sample 2 should wrap to trace[0], got %d", got)
	}
}

func TestDisabledChannel(t *testing.T) {
	var tr [NumADCChannels][]int16
	tr[0] = []int16{5}
	a, err := NewADC(tr, 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if a.Status() != isa.IRQADC0 {
		t.Errorf("status = %#x, want only channel 0", a.Status())
	}
	a.Tick(8000)
	a.Tick(12000)
	if a.Overruns() != 2 {
		t.Errorf("overruns = %d, want 2 (only the enabled channel)", a.Overruns())
	}
}

func TestFractionalPeriodNoDrift(t *testing.T) {
	// 3 Hz at 1 kHz clock: period 333.33 cycles. Over 30 simulated
	// seconds the ADC must publish 3 * 30 = 90 +/- 1 samples.
	var tr [NumADCChannels][]int16
	tr[0] = []int16{1}
	a, err := NewADC(tr, 3, 1000, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(0); cyc < 30_000; cyc++ {
		a.Tick(cyc)
		a.ReadData(0)
	}
	if got := a.SamplesPublished(); got < 89 || got > 90 {
		t.Errorf("samples over 30s at 3Hz = %d, want 89..90", got)
	}
}

func TestNegativeSamplesRoundTrip(t *testing.T) {
	var tr [NumADCChannels][]int16
	tr[0] = []int16{-123}
	a, err := NewADC(tr, 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if got := int16(a.ReadData(0)); got != -123 {
		t.Errorf("negative sample = %d, want -123", got)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewADC(threeTraces(1), 0, 1e6, nil, &power.Counters{}); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewADC(threeTraces(1), 250, 0, nil, &power.Counters{}); err == nil {
		t.Error("want error for zero clock")
	}
	if _, err := NewADC(threeTraces(1), 2e6, 1e6, nil, &power.Counters{}); err == nil {
		t.Error("want error when rate exceeds clock")
	}
}

func TestReadDataOutOfRange(t *testing.T) {
	a, _ := NewADC(threeTraces(1), 250, 1e6, nil, &power.Counters{})
	if a.ReadData(-1) != 0 || a.ReadData(NumADCChannels) != 0 {
		t.Error("out-of-range channels must read 0")
	}
}

// TestNextEventCycle pins the fast-forward contract: Tick is a no-op on
// every cycle before NextEventCycle and publishes exactly at it, including
// with fractional sample periods.
func TestNextEventCycle(t *testing.T) {
	for _, tc := range []struct{ rate, clock float64 }{
		{250, 1e6},   // integral period (4000 cycles)
		{250, 1.7e6}, // fractional period (6800 cycles)
		{300, 1e6},   // repeating fraction (3333.33... cycles)
	} {
		ctr := &power.Counters{}
		a, err := NewADC(threeTraces(10), tc.rate, tc.clock, nil, ctr)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			next := a.NextEventCycle()
			before := ctr.ADCSamples
			if next > 0 {
				a.Tick(next - 1)
			}
			if ctr.ADCSamples != before {
				t.Fatalf("rate %v/clock %v: Tick(%d) published early", tc.rate, tc.clock, next-1)
			}
			a.Tick(next)
			if ctr.ADCSamples != before+1 {
				t.Fatalf("rate %v/clock %v: Tick(%d) did not publish", tc.rate, tc.clock, next)
			}
		}
	}
}

// TestLongRunSampleCount is the timing-drift regression test: over a
// simulated 60 s the published sample count must equal rate*duration within
// one sample, even when the sampling period is a non-terminating binary
// fraction. The instants are derived from the sample index; a running
// float64 accumulator would compound one rounding error per sample and let
// the sampling grid drift on long runs.
func TestLongRunSampleCount(t *testing.T) {
	const (
		clockHz   = 3.3e6 // Table I's SC-class clock
		rateHz    = 360.0 // period = 9166.66... cycles, inexact in binary
		durationS = 60.0  // the paper's full measurement window
	)
	a, err := NewADC(threeTraces(1024), rateHz, clockHz, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(durationS * clockHz)
	for cyc := a.NextEventCycle(); cyc <= total; cyc = a.NextEventCycle() {
		before := a.SamplesPublished()
		// Fast-forward consistency: the cycle before the advertised
		// event must be a no-op.
		a.Tick(cyc - 1)
		if got := a.SamplesPublished(); got != before {
			t.Fatalf("Tick(%d) published a sample before NextEventCycle %d", cyc-1, cyc)
		}
		a.Tick(cyc)
		if got := a.SamplesPublished(); got != before+1 {
			t.Fatalf("Tick at advertised event cycle %d published %d samples, want 1", cyc, got-before)
		}
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
	}
	want := rateHz * durationS
	if got := float64(a.SamplesPublished()); math.Abs(got-want) > 1 {
		t.Errorf("published %v samples over %v s at %v Hz, want %v +- 1", got, durationS, rateHz, want)
	}
	if a.Overruns() != 0 {
		t.Errorf("overruns = %d, want 0", a.Overruns())
	}
}

// TestSamplingInstantsExact pins each advertised instant to the closed form
// ceil(period*(n+1)): no cumulative deviation is tolerated.
func TestSamplingInstantsExact(t *testing.T) {
	const (
		clockHz = 1e6
		rateHz  = 300.0 // period = 3333.33... cycles
	)
	a, err := NewADC(threeTraces(64), rateHz, clockHz, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	period := clockHz / rateHz
	for n := 0; n < 100000; n++ {
		want := uint64(math.Ceil(period * float64(n+1)))
		if got := a.NextEventCycle(); got != want {
			t.Fatalf("instant %d advertised at cycle %d, want %d", n, got, want)
		}
		a.Tick(a.NextEventCycle())
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
	}
}
