package periph

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
)

func threeTraces(n int) [NumADCChannels][]int16 {
	var tr [NumADCChannels][]int16
	for ch := range tr {
		tr[ch] = make([]int16, n)
		for i := range tr[ch] {
			tr[ch][i] = int16(ch*1000 + i)
		}
	}
	return tr
}

func TestSamplingCadence(t *testing.T) {
	ctr := &power.Counters{}
	var irqs []uint16
	a, err := NewADC(threeTraces(10), 250, 1e6, func(m uint16) { irqs = append(irqs, m) }, ctr)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MHz / 250 Hz = 4000 cycles per sample.
	for cyc := uint64(0); cyc <= 4000; cyc++ {
		a.Tick(cyc)
	}
	if a.SamplesPublished() != 1 {
		t.Fatalf("samples after 4000 cycles = %d, want 1", a.SamplesPublished())
	}
	for cyc := uint64(4000); cyc <= 12000; cyc++ {
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
		a.Tick(cyc)
	}
	if a.SamplesPublished() != 3 {
		t.Errorf("samples after 12000 cycles = %d, want 3 (at 4000, 8000, 12000)", a.SamplesPublished())
	}
	if len(irqs) != 3 || irqs[0] != isa.IRQADC {
		t.Errorf("irqs = %v, want 3 x all-channel mask", irqs)
	}
	if ctr.ADCSamples != 3 {
		t.Errorf("counter ADCSamples = %d", ctr.ADCSamples)
	}
}

func TestReadClearsReady(t *testing.T) {
	a, err := NewADC(threeTraces(10), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if a.Status() != isa.IRQADC {
		t.Fatalf("status = %#x, want all ready", a.Status())
	}
	v := a.ReadData(1)
	if v != 1000 {
		t.Errorf("channel 1 sample = %d, want 1000", v)
	}
	if a.Status()&isa.IRQADC1 != 0 {
		t.Error("reading must clear the channel's ready bit")
	}
	if a.Status()&(isa.IRQADC0|isa.IRQADC2) == 0 {
		t.Error("other channels must stay ready")
	}
}

func TestOverrunDetection(t *testing.T) {
	a, err := NewADC(threeTraces(10), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	a.Tick(8000) // nothing read in between: 3 channels overrun
	if a.Overruns() != 3 {
		t.Errorf("overruns = %d, want 3", a.Overruns())
	}
}

func TestTraceWrapsAround(t *testing.T) {
	a, err := NewADC(threeTraces(2), 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if got := a.ReadData(0); got != 0 {
		t.Errorf("sample 0 = %d", got)
	}
	a.Tick(8000)
	if got := a.ReadData(0); got != 1 {
		t.Errorf("sample 1 = %d", got)
	}
	a.Tick(12000)
	if got := a.ReadData(0); got != 0 {
		t.Errorf("sample 2 should wrap to trace[0], got %d", got)
	}
}

func TestDisabledChannel(t *testing.T) {
	var tr [NumADCChannels][]int16
	tr[0] = []int16{5}
	a, err := NewADC(tr, 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if a.Status() != isa.IRQADC0 {
		t.Errorf("status = %#x, want only channel 0", a.Status())
	}
	a.Tick(8000)
	a.Tick(12000)
	if a.Overruns() != 2 {
		t.Errorf("overruns = %d, want 2 (only the enabled channel)", a.Overruns())
	}
}

func TestFractionalPeriodNoDrift(t *testing.T) {
	// 3 Hz at 1 kHz clock: period 333.33 cycles. Over 30 simulated
	// seconds the ADC must publish 3 * 30 = 90 +/- 1 samples.
	var tr [NumADCChannels][]int16
	tr[0] = []int16{1}
	a, err := NewADC(tr, 3, 1000, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(0); cyc < 30_000; cyc++ {
		a.Tick(cyc)
		a.ReadData(0)
	}
	if got := a.SamplesPublished(); got < 89 || got > 90 {
		t.Errorf("samples over 30s at 3Hz = %d, want 89..90", got)
	}
}

func TestNegativeSamplesRoundTrip(t *testing.T) {
	var tr [NumADCChannels][]int16
	tr[0] = []int16{-123}
	a, err := NewADC(tr, 250, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000)
	if got := int16(a.ReadData(0)); got != -123 {
		t.Errorf("negative sample = %d, want -123", got)
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewADC(threeTraces(1), 0, 1e6, nil, &power.Counters{}); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewADC(threeTraces(1), 250, 0, nil, &power.Counters{}); err == nil {
		t.Error("want error for zero clock")
	}
	if _, err := NewADC(threeTraces(1), 2e6, 1e6, nil, &power.Counters{}); err == nil {
		t.Error("want error when rate exceeds clock")
	}
}

func TestReadDataOutOfRange(t *testing.T) {
	a, _ := NewADC(threeTraces(1), 250, 1e6, nil, &power.Counters{})
	if a.ReadData(-1) != 0 || a.ReadData(NumADCChannels) != 0 {
		t.Error("out-of-range channels must read 0")
	}
}

// TestNextEventCycle pins the fast-forward contract: Tick is a no-op on
// every cycle before NextEventCycle and publishes exactly at it, including
// with fractional sample periods.
func TestNextEventCycle(t *testing.T) {
	for _, tc := range []struct{ rate, clock float64 }{
		{250, 1e6},   // integral period (4000 cycles)
		{250, 1.7e6}, // fractional period (6800 cycles)
		{300, 1e6},   // repeating fraction (3333.33... cycles)
	} {
		ctr := &power.Counters{}
		a, err := NewADC(threeTraces(10), tc.rate, tc.clock, nil, ctr)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			next := a.NextEventCycle()
			before := ctr.ADCSamples
			if next > 0 {
				a.Tick(next - 1)
			}
			if ctr.ADCSamples != before {
				t.Fatalf("rate %v/clock %v: Tick(%d) published early", tc.rate, tc.clock, next-1)
			}
			a.Tick(next)
			if ctr.ADCSamples != before+1 {
				t.Fatalf("rate %v/clock %v: Tick(%d) did not publish", tc.rate, tc.clock, next)
			}
		}
	}
}

// TestLongRunSampleCount is the timing-drift regression test: over a
// simulated 60 s the published sample count must equal rate*duration within
// one sample, even when the sampling period is a non-terminating binary
// fraction. The instants are derived from the sample index; a running
// float64 accumulator would compound one rounding error per sample and let
// the sampling grid drift on long runs.
func TestLongRunSampleCount(t *testing.T) {
	const (
		clockHz   = 3.3e6 // Table I's SC-class clock
		rateHz    = 360.0 // period = 9166.66... cycles, inexact in binary
		durationS = 60.0  // the paper's full measurement window
	)
	a, err := NewADC(threeTraces(1024), rateHz, clockHz, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(durationS * clockHz)
	for cyc := a.NextEventCycle(); cyc <= total; cyc = a.NextEventCycle() {
		before := a.SamplesPublished()
		// Fast-forward consistency: the cycle before the advertised
		// event must be a no-op.
		a.Tick(cyc - 1)
		if got := a.SamplesPublished(); got != before {
			t.Fatalf("Tick(%d) published a sample before NextEventCycle %d", cyc-1, cyc)
		}
		a.Tick(cyc)
		if got := a.SamplesPublished(); got != before+1 {
			t.Fatalf("Tick at advertised event cycle %d published %d samples, want 1", cyc, got-before)
		}
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
	}
	want := rateHz * durationS
	if got := float64(a.SamplesPublished()); math.Abs(got-want) > 1 {
		t.Errorf("published %v samples over %v s at %v Hz, want %v +- 1", got, durationS, rateHz, want)
	}
	if a.Overruns() != 0 {
		t.Errorf("overruns = %d, want 0", a.Overruns())
	}
}

// TestSamplingInstantsExact pins each advertised instant to the closed form
// ceil(period*(n+1)): no cumulative deviation is tolerated.
func TestSamplingInstantsExact(t *testing.T) {
	const (
		clockHz = 1e6
		rateHz  = 300.0 // period = 3333.33... cycles
	)
	a, err := NewADC(threeTraces(64), rateHz, clockHz, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	period := clockHz / rateHz
	for n := 0; n < 100000; n++ {
		want := uint64(math.Ceil(period * float64(n+1)))
		if got := a.NextEventCycle(); got != want {
			t.Fatalf("instant %d advertised at cycle %d, want %d", n, got, want)
		}
		a.Tick(a.NextEventCycle())
		a.ReadData(0)
		a.ReadData(1)
		a.ReadData(2)
	}
}

// TestMultiRateIndependentGrids pins the per-channel sampling grids: at
// 250/125 Hz on a 1 MHz clock, channel 0 publishes every 4000 cycles and
// channel 1 every 8000, with the coinciding instants grouped into a single
// publication event (one counter increment, one combined IRQ raise).
func TestMultiRateIndependentGrids(t *testing.T) {
	ctr := &power.Counters{}
	var irqs []uint16
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: make([]int16, 100), RateHz: 250}
	chans[1] = Channel{Trace: make([]int16, 50), RateHz: 125}
	a, err := NewMultiRateADC(chans, 1e6, func(m uint16) { irqs = append(irqs, m) }, ctr)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := uint64(0); cyc <= 16000; cyc++ {
		a.Tick(cyc)
		a.ReadData(0)
		a.ReadData(1)
	}
	// Events: 4000 (ch0), 8000 (ch0+ch1), 12000 (ch0), 16000 (ch0+ch1).
	want := []uint16{isa.IRQADC0, isa.IRQADC0 | isa.IRQADC1, isa.IRQADC0, isa.IRQADC0 | isa.IRQADC1}
	if len(irqs) != len(want) {
		t.Fatalf("raised %d IRQs (%v), want %d", len(irqs), irqs, len(want))
	}
	for i, m := range want {
		if irqs[i] != m {
			t.Errorf("IRQ %d mask = %#x, want %#x", i, irqs[i], m)
		}
	}
	if a.SamplesPublished() != 4 {
		t.Errorf("publication events = %d, want 4", a.SamplesPublished())
	}
	if ctr.ADCSamples != 4 {
		t.Errorf("counter ADCSamples = %d, want 4", ctr.ADCSamples)
	}
	if a.Overruns() != 0 {
		t.Errorf("overruns = %d", a.Overruns())
	}
	if a.RateHz() != 250 || a.ChannelRateHz(1) != 125 {
		t.Errorf("rates = %v / %v, want 250 / 125", a.RateHz(), a.ChannelRateHz(1))
	}
}

// TestMultiRateNextEventCycle pins the fast-forward contract on divided
// grids: NextEventCycle is the min across the per-channel instants, Tick is
// a no-op strictly before it, and exactly one event publishes at it.
func TestMultiRateNextEventCycle(t *testing.T) {
	ctr := &power.Counters{}
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: make([]int16, 1024), RateHz: 300} // 3333.33.. cycles
	chans[1] = Channel{Trace: make([]int16, 512), RateHz: 150}  // 6666.66.. cycles
	chans[2] = Channel{Trace: make([]int16, 256), RateHz: 75}   // 13333.33.. cycles
	a, err := NewMultiRateADC(chans, 1e6, nil, ctr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		next := a.NextEventCycle()
		before := ctr.ADCSamples
		a.Tick(next - 1)
		if ctr.ADCSamples != before {
			t.Fatalf("Tick(%d) published before the advertised event", next-1)
		}
		a.Tick(next)
		if ctr.ADCSamples != before+1 {
			t.Fatalf("Tick(%d) published %d events, want 1", next, ctr.ADCSamples-before)
		}
		for ch := 0; ch < NumADCChannels; ch++ {
			a.ReadData(ch)
		}
	}
	// Over the simulated stretch the channels must keep their 4:2:1 ratio.
	n0, n1, n2 := a.idx[0], a.idx[1], a.idx[2]
	if n0 < 2*n1-2 || n0 > 2*n1+2 || n0 < 4*n2-4 || n0 > 4*n2+4 {
		t.Errorf("per-channel sample counts %d/%d/%d break the 4:2:1 rate ratio", n0, n1, n2)
	}
}

// TestUnequalTraceLengthsRejected is the regression test for the silent
// mis-acceptance: equal-rate channels with different trace lengths would
// wrap one channel mid-record and shear the channels out of alignment.
func TestUnequalTraceLengthsRejected(t *testing.T) {
	var tr [NumADCChannels][]int16
	tr[0] = make([]int16, 100)
	tr[1] = make([]int16, 99)
	tr[2] = make([]int16, 100)
	if _, err := NewADC(tr, 250, 1e6, nil, &power.Counters{}); err == nil {
		t.Fatal("unequal trace lengths accepted at equal rates")
	}
}

// TestMultiRateDurationMismatchRejected: differing-rate channels must carry
// equal durations (within one sample of rounding), not equal lengths.
func TestMultiRateDurationMismatchRejected(t *testing.T) {
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: make([]int16, 500), RateHz: 250} // 2.0 s
	chans[1] = Channel{Trace: make([]int16, 250), RateHz: 125} // 2.0 s: fine
	if _, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{}); err != nil {
		t.Fatalf("equal-duration multi-rate traces rejected: %v", err)
	}
	chans[1] = Channel{Trace: make([]int16, 251), RateHz: 125} // 2.008 s: rounding slack, fine
	if _, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{}); err != nil {
		t.Fatalf("one-sample rounding slack rejected: %v", err)
	}
	chans[1] = Channel{Trace: make([]int16, 150), RateHz: 125} // 1.2 s: mismatch
	if _, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{}); err == nil {
		t.Fatal("mismatched multi-rate trace durations accepted")
	}
}

// TestMultiRateZeroOrderHold: a slow channel read between its sampling
// instants holds its last value, the upsampling semantics base-rate code
// observes.
func TestMultiRateZeroOrderHold(t *testing.T) {
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: []int16{10, 11, 12, 13}, RateHz: 250}
	chans[1] = Channel{Trace: []int16{20, 21}, RateHz: 125}
	a, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	a.Tick(4000) // ch0 only
	if got := a.ReadData(1); got != 0 {
		t.Errorf("channel 1 before its first instant = %d, want 0", got)
	}
	a.Tick(8000) // both
	if got := a.ReadData(1); got != 20 {
		t.Errorf("channel 1 first sample = %d, want 20", got)
	}
	a.Tick(12000) // ch0 only: ch1 holds
	if got := a.ReadData(1); got != 20 {
		t.Errorf("channel 1 between instants = %d, want held 20", got)
	}
	if got := a.ReadData(0); got != 12 {
		t.Errorf("channel 0 third sample = %d, want 12", got)
	}
}

// TestEqualRateBehindDifferentRateReferenceRejected is the regression test
// for the pairwise validation: two equal-rate channels behind a
// different-rate channel 0 must still be length-checked against each other,
// not only against channel 0's duration.
func TestEqualRateBehindDifferentRateReferenceRejected(t *testing.T) {
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: make([]int16, 500), RateHz: 250}
	chans[1] = Channel{Trace: make([]int16, 250), RateHz: 125}
	chans[2] = Channel{Trace: make([]int16, 251), RateHz: 125}
	if _, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{}); err == nil {
		t.Fatal("equal-rate channels 1 and 2 with unequal lengths accepted behind a different-rate channel 0")
	}
	chans[2] = Channel{Trace: make([]int16, 250), RateHz: 125}
	if _, err := NewMultiRateADC(chans, 1e6, nil, &power.Counters{}); err != nil {
		t.Fatalf("consistent mixed-rate configuration rejected: %v", err)
	}
}

// TestNonDyadicDivisorCoincidenceGroups is the regression test for the
// float-equality grouping bug: with a divisor-3 channel the fractional
// closed-form instants of a true coincidence can differ in the last ulp
// (clock/(rate/3) != 3*(clock/rate) in float64), but both land on the same
// integer cycle and must publish as one event with one combined IRQ raise.
func TestNonDyadicDivisorCoincidenceGroups(t *testing.T) {
	ctr := &power.Counters{}
	var irqs []uint16
	var chans [NumADCChannels]Channel
	chans[0] = Channel{Trace: make([]int16, 300), RateHz: 400}
	chans[1] = Channel{Trace: make([]int16, 100), RateHz: 400.0 / 3}
	a, err := NewMultiRateADC(chans, 1e6, func(m uint16) { irqs = append(irqs, m) }, ctr)
	if err != nil {
		t.Fatal(err)
	}
	// Drive three base periods (2500 cycles each): events at cycles 2500
	// (ch0), 5000 (ch0) and 7500 (ch0 + ch1's first instant, 7499.99..).
	for cyc := uint64(0); cyc <= 7500; cyc++ {
		a.Tick(cyc)
		a.ReadData(0)
		a.ReadData(1)
	}
	if a.SamplesPublished() != 3 {
		t.Errorf("publication events = %d, want 3 (coincidence must group)", a.SamplesPublished())
	}
	if len(irqs) != 3 || irqs[2] != isa.IRQADC0|isa.IRQADC1 {
		t.Errorf("irqs = %#x, want third raise to carry both channels", irqs)
	}
}
