// Package periph models the platform peripherals, chiefly the multi-channel
// analog-to-digital converter that samples the bio-signals at a constant
// frequency and raises data-ready interrupts forwarded by the synchronizer
// (paper §III-B, §IV-B: "a three-channels ADC unit is interfaced to the
// system using memory mapped registers ... and data-ready interrupt lines
// connected to the synchronizer").
package periph

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/power"
)

// NumADCChannels is the channel count of the platform's ADC front-end.
const NumADCChannels = 3

// ADC is a fixed-rate multi-channel converter. Sample traces are preloaded
// (the simulated analog world); each sampling instant publishes one sample
// per enabled channel into the data registers, sets the ready bits and
// raises the per-channel interrupt lines.
type ADC struct {
	traces   [NumADCChannels][]int16
	enabled  [NumADCChannels]bool
	rateHz   float64
	periodCy float64 // platform cycles between samples, possibly fractional
	idx      int     // next sample index (channels sample simultaneously)

	data     [NumADCChannels]uint16
	ready    uint16
	overruns uint64

	raise func(source uint16)
	ctr   *power.Counters
}

// NewADC creates an ADC sampling at rateHz with the platform clocked at
// clockHz. raise is invoked with the IRQ source mask at each sampling
// instant (wired to the synchronizer). Channels with a nil trace are
// disabled.
func NewADC(traces [NumADCChannels][]int16, rateHz, clockHz float64, raise func(uint16), ctr *power.Counters) (*ADC, error) {
	if rateHz <= 0 || clockHz <= 0 {
		return nil, fmt.Errorf("periph: non-positive rate (%v Hz) or clock (%v Hz)", rateHz, clockHz)
	}
	period := clockHz / rateHz
	if period < 1 {
		return nil, fmt.Errorf("periph: sample rate %v Hz exceeds the platform clock %v Hz", rateHz, clockHz)
	}
	a := &ADC{
		traces:   traces,
		rateHz:   rateHz,
		periodCy: period,
		raise:    raise,
		ctr:      ctr,
	}
	for ch, tr := range traces {
		a.enabled[ch] = len(tr) > 0
	}
	return a, nil
}

// instantCy returns the (possibly fractional) platform cycle of sampling
// instant n: one full period after reset, then one per period. Deriving each
// instant from the sample index keeps the cadence exact forever — a running
// `nextAt += periodCy` accumulator would compound one float64 rounding error
// per sample, drifting the sampling grid over the millions of samples a
// paper-scale 60 s run publishes.
func (a *ADC) instantCy(n int) float64 {
	return a.periodCy * float64(n+1)
}

// Tick advances the ADC to the given platform cycle, publishing any due
// samples. Traces wrap around when exhausted, modelling a continuing signal.
func (a *ADC) Tick(cycle uint64) {
	for float64(cycle) >= a.instantCy(a.idx) {
		a.sample()
	}
}

func (a *ADC) sample() {
	var irq uint16
	for ch := 0; ch < NumADCChannels; ch++ {
		if !a.enabled[ch] {
			continue
		}
		bit := uint16(isa.IRQADC0) << uint(ch)
		if a.ready&bit != 0 {
			// Previous sample was never read: real-time violation.
			a.overruns++
		}
		tr := a.traces[ch]
		a.data[ch] = uint16(tr[a.idx%len(tr)])
		a.ready |= bit
		irq |= bit
	}
	a.idx++
	a.ctr.ADCSamples++
	if irq != 0 && a.raise != nil {
		a.raise(irq)
	}
}

// NextEventCycle returns the cycle number at which Tick will next publish a
// sample: the smallest integer cycle satisfying Tick's float64(cycle) >=
// instantCy(idx) condition. Ticks on earlier cycles are no-ops, which is
// what lets the platform's fast-forward engine leap over them.
func (a *ADC) NextEventCycle() uint64 {
	return uint64(math.Ceil(a.instantCy(a.idx)))
}

// ReadData returns the latest sample of channel ch and clears its ready bit
// (reading the data register acknowledges the sample).
func (a *ADC) ReadData(ch int) uint16 {
	if ch < 0 || ch >= NumADCChannels {
		return 0
	}
	a.ready &^= uint16(isa.IRQADC0) << uint(ch)
	return a.data[ch]
}

// Status returns the per-channel data-ready mask (RegADCStatus).
func (a *ADC) Status() uint16 { return a.ready }

// Overruns returns how many samples were overwritten before being read; any
// non-zero value after warm-up means the configuration missed real time.
func (a *ADC) Overruns() uint64 { return a.overruns }

// SamplesPublished returns the number of sampling instants so far.
func (a *ADC) SamplesPublished() int { return a.idx }

// RateHz returns the configured sampling rate.
func (a *ADC) RateHz() float64 { return a.rateHz }
