// Package periph models the platform peripherals, chiefly the multi-channel
// analog-to-digital converter that samples the bio-signals and raises
// data-ready interrupts forwarded by the synchronizer (paper §III-B, §IV-B:
// "a three-channels ADC unit is interfaced to the system using memory mapped
// registers ... and data-ready interrupt lines connected to the
// synchronizer"). Channels sample on independent index-derived grids, so a
// single converter serves both the paper's equal-rate 3-lead ECG setup and
// multi-rate scenario mixes (e.g. a fast lead next to decimated auxiliary
// channels).
package periph

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/power"
)

// NumADCChannels is the channel count of the platform's ADC front-end.
const NumADCChannels = 3

// Channel configures one ADC channel: its preloaded sample trace (the
// simulated analog world) and its sampling rate. A nil/empty trace disables
// the channel.
type Channel struct {
	Trace  []int16
	RateHz float64
}

// ADC is a multi-channel converter with a per-channel sampling rate. Each
// channel publishes one sample per own-rate sampling instant into its data
// register, sets its ready bit and raises its interrupt line; channels whose
// instants coincide publish in the same event, sharing a single interrupt
// raise (equal-rate channels therefore behave exactly like the original
// simultaneous-sampling converter).
type ADC struct {
	traces   [NumADCChannels][]int16
	enabled  [NumADCChannels]bool
	rateHz   [NumADCChannels]float64
	periodCy [NumADCChannels]float64 // platform cycles between samples, possibly fractional
	idx      [NumADCChannels]int     // next sample index per channel
	instants int                     // publication events so far (coinciding channels share one)

	// nextDue caches the earliest pending sampling instant across enabled
	// channels (+Inf with none), so the per-cycle Tick in the no-event
	// common case is a single compare instead of a channel scan; it is
	// recomputed only after a publication advances a channel index.
	nextDue float64

	data     [NumADCChannels]uint16
	ready    uint16
	overruns uint64

	raise func(source uint16)
	ctr   *power.Counters
}

// NewADC creates an equal-rate ADC sampling every enabled channel at rateHz
// with the platform clocked at clockHz: the paper's configuration. raise is
// invoked with the IRQ source mask at each sampling instant (wired to the
// synchronizer). Channels with a nil trace are disabled.
func NewADC(traces [NumADCChannels][]int16, rateHz, clockHz float64, raise func(uint16), ctr *power.Counters) (*ADC, error) {
	if rateHz <= 0 {
		return nil, fmt.Errorf("periph: non-positive sample rate %v Hz", rateHz)
	}
	var chans [NumADCChannels]Channel
	for ch, tr := range traces {
		chans[ch] = Channel{Trace: tr, RateHz: rateHz}
	}
	return NewMultiRateADC(chans, clockHz, raise, ctr)
}

// NewMultiRateADC creates an ADC whose channels sample at independent rates.
// Enabled channels must carry traces of equal duration: equal-rate channels
// must match in length exactly, and differing-rate channels within one
// sample period (decimated traces round their length up) — silently
// accepting mismatched traces would wrap one channel mid-record and shear
// the channels out of alignment. Each channel's trace wraps around
// independently when exhausted, modelling a continuing signal.
func NewMultiRateADC(chans [NumADCChannels]Channel, clockHz float64, raise func(uint16), ctr *power.Counters) (*ADC, error) {
	if clockHz <= 0 {
		return nil, fmt.Errorf("periph: non-positive clock %v Hz", clockHz)
	}
	a := &ADC{raise: raise, ctr: ctr}
	for ch, c := range chans {
		if len(c.Trace) == 0 {
			continue
		}
		if c.RateHz <= 0 {
			return nil, fmt.Errorf("periph: channel %d has non-positive rate %v Hz", ch, c.RateHz)
		}
		period := clockHz / c.RateHz
		if period < 1 {
			return nil, fmt.Errorf("periph: channel %d rate %v Hz exceeds the platform clock %v Hz", ch, c.RateHz, clockHz)
		}
		a.traces[ch] = c.Trace
		a.enabled[ch] = true
		a.rateHz[ch] = c.RateHz
		a.periodCy[ch] = period
		// Validate against every earlier enabled channel, pairwise: a
		// first-channel-only reference would let two equal-rate channels
		// behind a different-rate reference slip through with unequal
		// lengths.
		for prev := 0; prev < ch; prev++ {
			if !a.enabled[prev] {
				continue
			}
			if c.RateHz == chans[prev].RateHz {
				if len(c.Trace) != len(chans[prev].Trace) {
					return nil, fmt.Errorf("periph: channels %d and %d sample at %v Hz but carry %d vs %d samples",
						prev, ch, c.RateHz, len(chans[prev].Trace), len(c.Trace))
				}
				continue
			}
			durPrev := float64(len(chans[prev].Trace)) / chans[prev].RateHz
			dur := float64(len(c.Trace)) / c.RateHz
			if tol := 1/c.RateHz + 1/chans[prev].RateHz; math.Abs(dur-durPrev) > tol {
				return nil, fmt.Errorf("periph: channel %d trace covers %.4f s but channel %d covers %.4f s; enabled channels must match in duration",
					ch, dur, prev, durPrev)
			}
		}
	}
	a.nextDue = a.scanNextInstant()
	return a, nil
}

// instantCy returns the (possibly fractional) platform cycle of channel
// ch's sampling instant n: one full period after reset, then one per
// period. Deriving each instant from the sample index keeps the cadence
// exact forever — a running `nextAt += periodCy` accumulator would compound
// one float64 rounding error per sample, drifting the sampling grid over
// the millions of samples a paper-scale 60 s run publishes.
func (a *ADC) instantCy(ch, n int) float64 {
	return a.periodCy[ch] * float64(n+1)
}

// scanNextInstant recomputes the earliest pending sampling instant across
// enabled channels (and +Inf with none enabled).
func (a *ADC) scanNextInstant() float64 {
	min := math.Inf(1)
	for ch := 0; ch < NumADCChannels; ch++ {
		if !a.enabled[ch] {
			continue
		}
		if in := a.instantCy(ch, a.idx[ch]); in < min {
			min = in
		}
	}
	return min
}

// Tick advances the ADC to the given platform cycle, publishing any due
// samples. Channels whose instants land on the same integer cycle — always
// the case at equal rates, and at every true coincidence of divided rates
// even when the fractional closed forms differ in the last ulp — publish as
// one event: one sample counter increment and one combined interrupt
// raise, exactly as samples on one clock edge are indistinguishable in
// hardware.
func (a *ADC) Tick(cycle uint64) {
	for float64(cycle) >= a.nextDue { // +Inf nextDue never satisfies this
		due := uint64(math.Ceil(a.nextDue))
		var irq uint16
		for ch := 0; ch < NumADCChannels; ch++ {
			if a.enabled[ch] && uint64(math.Ceil(a.instantCy(ch, a.idx[ch]))) == due {
				irq |= a.sample(ch)
			}
		}
		a.nextDue = a.scanNextInstant()
		a.instants++
		a.ctr.ADCSamples++
		if irq != 0 && a.raise != nil {
			a.raise(irq)
		}
	}
}

// sample publishes channel ch's next sample and returns its IRQ bit.
func (a *ADC) sample(ch int) uint16 {
	bit := uint16(isa.IRQADC0) << uint(ch)
	if a.ready&bit != 0 {
		// Previous sample was never read: real-time violation.
		a.overruns++
	}
	tr := a.traces[ch]
	a.data[ch] = uint16(tr[a.idx[ch]%len(tr)])
	a.ready |= bit
	a.idx[ch]++
	return bit
}

// NextEventCycle returns the cycle number at which Tick will next publish a
// sample on any channel: the smallest integer cycle satisfying Tick's
// float64(cycle) >= instant condition for the earliest pending per-channel
// instant. Ticks on earlier cycles are no-ops, which is what lets the
// platform's fast-forward engine leap over them — with multi-rate channels
// the minimum across the per-channel grids keeps the leap exact.
func (a *ADC) NextEventCycle() uint64 {
	if math.IsInf(a.nextDue, 1) {
		return math.MaxUint64
	}
	return uint64(math.Ceil(a.nextDue))
}

// ADCState is the deep-copied mutable state of an ADC, captured by Snapshot
// and reinstated by Restore. The sampling grids themselves (per-channel rates
// and periods) are configuration, re-derived from the platform clock on
// restore — which is what lets a snapshot rehydrate under a different clock
// frequency: sample indices and data registers carry over, and the next
// sampling instant is recomputed on the new clock's index-derived grid.
type ADCState struct {
	Idx      [NumADCChannels]int
	Instants int
	Data     [NumADCChannels]uint16
	Ready    uint16
	Overruns uint64
}

// Snapshot copies the converter's mutable state.
func (a *ADC) Snapshot() ADCState {
	return ADCState{Idx: a.idx, Instants: a.instants, Data: a.data, Ready: a.ready, Overruns: a.overruns}
}

// Restore reinstates a previously captured state and recomputes the pending
// sampling instant from the restored per-channel sample indices under the
// converter's own (possibly different) clock configuration.
func (a *ADC) Restore(st ADCState) error {
	for ch := 0; ch < NumADCChannels; ch++ {
		if st.Idx[ch] < 0 {
			return fmt.Errorf("periph: negative sample index %d for channel %d", st.Idx[ch], ch)
		}
		if st.Idx[ch] > 0 && !a.enabled[ch] {
			return fmt.Errorf("periph: snapshot has %d samples on channel %d, which is disabled here", st.Idx[ch], ch)
		}
	}
	a.idx = st.Idx
	a.instants = st.Instants
	a.data = st.Data
	a.ready = st.Ready
	a.overruns = st.Overruns
	a.nextDue = a.scanNextInstant()
	return nil
}

// ReadData returns the latest sample of channel ch and clears its ready bit
// (reading the data register acknowledges the sample). A channel read
// between its own sampling instants holds its last value: slower channels
// appear zero-order-held to code polling at the base rate.
func (a *ADC) ReadData(ch int) uint16 {
	if ch < 0 || ch >= NumADCChannels {
		return 0
	}
	a.ready &^= uint16(isa.IRQADC0) << uint(ch)
	return a.data[ch]
}

// Status returns the per-channel data-ready mask (RegADCStatus).
func (a *ADC) Status() uint16 { return a.ready }

// Overruns returns how many samples were overwritten before being read; any
// non-zero value after warm-up means the configuration missed real time.
func (a *ADC) Overruns() uint64 { return a.overruns }

// SamplesPublished returns the number of publication events so far
// (channels sampling at the same instant share one event, so at equal rates
// this counts sampling instants exactly as the single-rate converter did).
func (a *ADC) SamplesPublished() int { return a.instants }

// RateHz returns the fastest enabled channel's sampling rate.
func (a *ADC) RateHz() float64 {
	max := 0.0
	for ch := 0; ch < NumADCChannels; ch++ {
		if a.enabled[ch] && a.rateHz[ch] > max {
			max = a.rateHz[ch]
		}
	}
	return max
}

// ChannelRateHz returns channel ch's sampling rate (0 when disabled).
func (a *ADC) ChannelRateHz(ch int) float64 {
	if ch < 0 || ch >= NumADCChannels {
		return 0
	}
	return a.rateHz[ch]
}
