// Package mem models the platform's multi-banked instruction and data
// memories (paper §III-A): banks are independently readable/writable and can
// be powered off when unused to save energy. Access arbitration, conflict
// handling and broadcast merging live in internal/interco; this package is
// the storage, the power state and the address-mapping policies (the ATU's
// interleaving and the single-core linear decoder).
package mem

import (
	"fmt"

	"repro/internal/isa"
)

// IMem is the banked instruction memory. Words are pre-decoded at load time:
// the contents are immutable during simulation, so decoding once keeps the
// cycle loop fast without changing architectural behaviour.
type IMem struct {
	words   []isa.Word
	decoded []isa.Instr
	bankOn  [isa.IMBanks]bool
}

// NewIMem returns an instruction memory with every bank powered off.
func NewIMem() *IMem {
	return &IMem{
		words:   make([]isa.Word, isa.IMWords),
		decoded: make([]isa.Instr, isa.IMWords),
	}
}

// Load places code at word address base and powers on the banks it covers.
func (m *IMem) Load(base int, code []isa.Word) error {
	if base < 0 || base+len(code) > isa.IMWords {
		return fmt.Errorf("mem: code segment [%d,%d) outside instruction memory", base, base+len(code))
	}
	for i, w := range code {
		m.words[base+i] = w
		m.decoded[base+i] = isa.Decode(w)
	}
	for b := isa.IMBankOf(base); b <= isa.IMBankOf(base+len(code)-1); b++ {
		m.bankOn[b] = true
	}
	return nil
}

// SetBankPower forces a bank's power state (the builder decides which banks
// stay on).
func (m *IMem) SetBankPower(bank int, on bool) { m.bankOn[bank] = on }

// BankOn reports whether a bank is powered.
func (m *IMem) BankOn(bank int) bool { return m.bankOn[bank] }

// ActiveBanks counts powered banks (Table I's "Active IM banks").
func (m *IMem) ActiveBanks() int {
	n := 0
	for _, on := range m.bankOn {
		if on {
			n++
		}
	}
	return n
}

// Fetch returns the pre-decoded instruction at pc. ok is false when pc is out
// of range or its bank is powered off (an architectural fault).
func (m *IMem) Fetch(pc int) (isa.Instr, bool) {
	if pc < 0 || pc >= isa.IMWords || !m.bankOn[isa.IMBankOf(pc)] {
		return isa.Instr{}, false
	}
	return m.decoded[pc], true
}

// Word returns the raw instruction word at pc, for dumps and disassembly.
func (m *IMem) Word(pc int) isa.Word { return m.words[pc] }

// DMem is the banked data memory, addressed physically as (bank, offset).
type DMem struct {
	// banks[b][o]: flat storage laid out bank-major.
	words  []uint16
	bankOn [isa.DMBanks]bool
	// gen counts successful writes (including Restore, which replaces the
	// whole contents). It is the read-set stability witness of the spin
	// fast-forward engine: a window over which gen did not change read the
	// same value from every location on every visit — see Gen.
	gen uint64
}

// NewDMem returns a data memory with every bank powered off.
func NewDMem() *DMem {
	return &DMem{words: make([]uint16, isa.DMWords)}
}

// SetBankPower forces a bank's power state.
func (m *DMem) SetBankPower(bank int, on bool) { m.bankOn[bank] = on }

// BankOn reports whether a bank is powered.
func (m *DMem) BankOn(bank int) bool { return m.bankOn[bank] }

// ActiveBanks counts powered banks (Table I's "Active DM banks").
func (m *DMem) ActiveBanks() int {
	n := 0
	for _, on := range m.bankOn {
		if on {
			n++
		}
	}
	return n
}

func (m *DMem) index(bank, offset int) (int, bool) {
	if bank < 0 || bank >= isa.DMBanks || offset < 0 || offset >= isa.DMBankWords {
		return 0, false
	}
	return bank*isa.DMBankWords + offset, m.bankOn[bank]
}

// Read returns the word at (bank, offset); ok is false on a powered-off bank
// or out-of-range access.
func (m *DMem) Read(bank, offset int) (uint16, bool) {
	i, ok := m.index(bank, offset)
	if !ok {
		return 0, false
	}
	return m.words[i], true
}

// Write stores v at (bank, offset); ok is false on a powered-off bank or
// out-of-range access.
func (m *DMem) Write(bank, offset int, v uint16) bool {
	i, ok := m.index(bank, offset)
	if !ok {
		return false
	}
	m.words[i] = v
	m.gen++
	return true
}

// Gen returns the memory's write-generation stamp, a counter advanced by
// every successful Write (and by Restore). Two equal Gen readings bracket a
// window in which no location changed, which is how the platform's
// spin-loop fast-forward proves a polling loop's read set stable without
// tracking individual addresses. The stamp is simulation-process state, not
// architectural state: it is not part of snapshots, and its absolute value
// carries no meaning.
func (m *DMem) Gen() uint64 { return m.gen }

// DMemState is the deep-copied content and power state of a data memory,
// captured by Snapshot and reinstated by Restore (platform checkpoints).
type DMemState struct {
	Words  []uint16
	BankOn [isa.DMBanks]bool
}

// Snapshot deep-copies the memory's words and per-bank power state.
func (m *DMem) Snapshot() DMemState {
	return DMemState{Words: append([]uint16(nil), m.words...), BankOn: m.bankOn}
}

// Restore reinstates a previously captured state.
func (m *DMem) Restore(st DMemState) error {
	if len(st.Words) != len(m.words) {
		return fmt.Errorf("mem: restoring %d data words onto a %d-word memory", len(st.Words), len(m.words))
	}
	copy(m.words, st.Words)
	m.bankOn = st.BankOn
	// The whole contents changed: invalidate any read-set stability window
	// a caller derived from Gen.
	m.gen++
	return nil
}

// Mapper translates a core's logical data address into a physical bank and
// offset. The multi-core platform uses the ATU's interleaving; the
// single-core baseline a linear decoder.
type Mapper interface {
	// Map translates addr for the given core. MMIO addresses never reach
	// the mapper.
	Map(core int, addr uint16) (bank, offset int)
	// BanksTouched returns how many banks the mapping can reach given the
	// data actually placed, to size the active-bank set.
	Name() string
}

// ATU is the multi-core Address Translation Unit (paper §IV-A): a
// combinational unit that appends a per-core tag to private-section accesses.
// Both the shared section and the tagged private sections are interleaved
// word-by-word across all DM banks, which is why every bank must stay
// powered in the multi-core configuration (paper §V-A).
type ATU struct {
	// SharedLimit is the first private logical address: [0, SharedLimit)
	// is shared, [SharedLimit, MMIOBase) is per-core private.
	SharedLimit uint16
	// PrivWords is the physical allocation per core behind the tag.
	PrivWords int
}

// Map implements Mapper.
func (a ATU) Map(core int, addr uint16) (bank, offset int) {
	eff := int(addr)
	if addr >= a.SharedLimit {
		eff = int(a.SharedLimit) + core*a.PrivWords + int(addr-a.SharedLimit)
	}
	return eff & (isa.DMBanks - 1), eff / isa.DMBanks
}

// Name implements Mapper.
func (ATU) Name() string { return "atu-interleaved" }

// LinearMap is the single-core decoder: consecutive addresses fill one bank
// before spilling into the next, so unused banks can be powered off.
type LinearMap struct{}

// Map implements Mapper.
func (LinearMap) Map(_ int, addr uint16) (bank, offset int) {
	return int(addr) / isa.DMBankWords, int(addr) % isa.DMBankWords
}

// Name implements Mapper.
func (LinearMap) Name() string { return "linear" }
