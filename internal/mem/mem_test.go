package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestIMemLoadFetch(t *testing.T) {
	m := NewIMem()
	code := []isa.Word{
		isa.MustEncode(isa.Instr{Op: isa.OpADDI, Rd: 1, Rs1: 0, Imm: 7}),
		isa.MustEncode(isa.Instr{Op: isa.OpHALT}),
	}
	if err := m.Load(100, code); err != nil {
		t.Fatal(err)
	}
	ins, ok := m.Fetch(100)
	if !ok || ins.Op != isa.OpADDI || ins.Imm != 7 {
		t.Errorf("Fetch(100) = %v, %v", ins, ok)
	}
	if m.Word(101) != code[1] {
		t.Error("raw word mismatch")
	}
	if m.ActiveBanks() != 1 {
		t.Errorf("ActiveBanks = %d, want 1", m.ActiveBanks())
	}
}

func TestIMemLoadPowersSpannedBanks(t *testing.T) {
	m := NewIMem()
	code := make([]isa.Word, 2) // straddles the bank 0/1 boundary
	if err := m.Load(isa.IMBankWords-1, code); err != nil {
		t.Fatal(err)
	}
	if !m.BankOn(0) || !m.BankOn(1) || m.BankOn(2) {
		t.Error("bank power after spanning load is wrong")
	}
	if m.ActiveBanks() != 2 {
		t.Errorf("ActiveBanks = %d, want 2", m.ActiveBanks())
	}
}

func TestIMemFetchFromOffBankFails(t *testing.T) {
	m := NewIMem()
	if _, ok := m.Fetch(0); ok {
		t.Error("fetch from powered-off bank must fail")
	}
	if _, ok := m.Fetch(-1); ok {
		t.Error("negative pc must fail")
	}
	if _, ok := m.Fetch(isa.IMWords); ok {
		t.Error("out-of-range pc must fail")
	}
}

func TestIMemLoadBounds(t *testing.T) {
	m := NewIMem()
	if err := m.Load(isa.IMWords-1, make([]isa.Word, 2)); err == nil {
		t.Error("overflowing load must fail")
	}
	if err := m.Load(-1, make([]isa.Word, 1)); err == nil {
		t.Error("negative base must fail")
	}
}

func TestDMemReadWrite(t *testing.T) {
	m := NewDMem()
	m.SetBankPower(3, true)
	if !m.Write(3, 17, 0xBEEF) {
		t.Fatal("write failed")
	}
	v, ok := m.Read(3, 17)
	if !ok || v != 0xBEEF {
		t.Errorf("Read = %#x, %v", v, ok)
	}
	if _, ok := m.Read(4, 17); ok {
		t.Error("read from off bank must fail")
	}
	if m.Write(4, 17, 1) {
		t.Error("write to off bank must fail")
	}
	if _, ok := m.Read(3, isa.DMBankWords); ok {
		t.Error("offset out of range must fail")
	}
	if _, ok := m.Read(isa.DMBanks, 0); ok {
		t.Error("bank out of range must fail")
	}
	if m.ActiveBanks() != 1 {
		t.Errorf("ActiveBanks = %d, want 1", m.ActiveBanks())
	}
}

func TestATUSharedInterleavesAcrossAllBanks(t *testing.T) {
	atu := ATU{SharedLimit: 0x2000, PrivWords: 0x0C00}
	seen := map[int]bool{}
	for a := 0; a < 64; a++ {
		bank, _ := atu.Map(0, uint16(a))
		seen[bank] = true
	}
	if len(seen) != isa.DMBanks {
		t.Errorf("64 consecutive shared words touch %d banks, want %d", len(seen), isa.DMBanks)
	}
	// Same shared address maps identically for every core (that is what
	// makes broadcasting possible).
	for core := 0; core < 8; core++ {
		b, o := atu.Map(core, 0x123)
		b0, o0 := atu.Map(0, 0x123)
		if b != b0 || o != o0 {
			t.Errorf("core %d maps shared 0x123 to (%d,%d), core 0 to (%d,%d)", core, b, o, b0, o0)
		}
	}
}

func TestATUPrivateDistinctPerCore(t *testing.T) {
	atu := ATU{SharedLimit: 0x2000, PrivWords: 0x0C00}
	type loc struct{ b, o int }
	seen := map[loc]int{}
	for core := 0; core < 8; core++ {
		for a := 0; a < 256; a++ {
			b, o := atu.Map(core, uint16(0x2000+a))
			l := loc{b, o}
			if prev, dup := seen[l]; dup {
				t.Fatalf("cores %d and %d collide at physical (%d,%d)", prev, core, b, o)
			}
			seen[l] = core
		}
	}
}

func TestATUQuickNoAliasingWithinCapacity(t *testing.T) {
	atu := ATU{SharedLimit: 0x1000, PrivWords: (isa.DMWords - 0x1000) / 8}
	f := func(core1, core2 uint8, a1, a2 uint16) bool {
		c1, c2 := int(core1%8), int(core2%8)
		// Constrain addresses into the valid logical window.
		limit := uint16(0x1000 + atu.PrivWords)
		a1 %= limit
		a2 %= limit
		b1, o1 := atu.Map(c1, a1)
		b2, o2 := atu.Map(c2, a2)
		same := b1 == b2 && o1 == o2
		// Physical collision is allowed only when it is the same logical
		// word: same address in the shared region, or same core and
		// address in the private region.
		shared1, shared2 := a1 < 0x1000, a2 < 0x1000
		legal := (a1 == a2 && shared1 && shared2) || (a1 == a2 && c1 == c2)
		if same && !legal {
			return false
		}
		if a1 == a2 && (shared1 || c1 == c2) && !same {
			return false // same logical word must map to same physical word
		}
		return b1 >= 0 && b1 < isa.DMBanks && o1 >= 0 && o1 < isa.DMBankWords &&
			b2 >= 0 && b2 < isa.DMBanks && o2 >= 0 && o2 < isa.DMBankWords
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLinearMapFillsBanksSequentially(t *testing.T) {
	lin := LinearMap{}
	b, o := lin.Map(0, 0)
	if b != 0 || o != 0 {
		t.Error("address 0 must map to bank 0 offset 0")
	}
	b, _ = lin.Map(0, uint16(isa.DMBankWords-1))
	if b != 0 {
		t.Error("last word of bank 0 mapped elsewhere")
	}
	b, o = lin.Map(0, uint16(isa.DMBankWords))
	if b != 1 || o != 0 {
		t.Error("first word of bank 1 mapped elsewhere")
	}
	// 3 KWords of data touch exactly 2 banks: this is how the single-core
	// baseline keeps unused banks powered off.
	banks := map[int]bool{}
	for a := 0; a < 3*1024; a++ {
		b, _ := lin.Map(0, uint16(a))
		banks[b] = true
	}
	if len(banks) != 2 {
		t.Errorf("3KW touch %d banks under linear mapping, want 2", len(banks))
	}
}

func TestMapperNames(t *testing.T) {
	if (ATU{}).Name() == (LinearMap{}).Name() {
		t.Error("mapper names must differ")
	}
}

// TestDMemGen pins the write-generation contract the spin fast-forward's
// read-set stability check is built on: successful writes and Restore bump
// the stamp; reads and rejected writes do not.
func TestDMemGen(t *testing.T) {
	m := NewDMem()
	m.SetBankPower(0, true)
	g0 := m.Gen()
	if !m.Write(0, 0, 42) {
		t.Fatal("write to powered bank failed")
	}
	if m.Gen() == g0 {
		t.Error("successful write did not bump the generation")
	}
	g1 := m.Gen()
	if _, ok := m.Read(0, 0); !ok {
		t.Fatal("read failed")
	}
	if m.Gen() != g1 {
		t.Error("read bumped the generation")
	}
	if m.Write(1, 0, 7) { // bank 1 is powered off
		t.Fatal("write to powered-off bank succeeded")
	}
	if m.Gen() != g1 {
		t.Error("rejected write bumped the generation")
	}
	snap := m.Snapshot()
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m.Gen() == g1 {
		t.Error("Restore did not invalidate the generation window")
	}
}
