// Block-analysis reference tests: AnalyzeBlocks' one-pass backward tables
// (class, run length, run summary) are pinned against a naive
// per-instruction forward reference, both on hand-built images covering
// every terminator form — including the SEVS/sync-tagged ISE forms added
// after the analyzer was written — and on every bundled benchmark program
// across all three paper architectures.
package mem_test

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/power"
)

// refWalk computes the straight-line run length and memory summary starting
// at pc by walking forward one instruction at a time — the obvious O(run)
// reference the analyzer's backward pass must reproduce.
func refWalk(m *mem.IMem, pc int) (runLen int, sum mem.RunSummary) {
	for i := pc; i < isa.IMWords; i++ {
		switch cls := mem.Classify(isa.Decode(m.Word(i)).Op); cls {
		case mem.ClassStop:
			return runLen, sum
		case mem.ClassControl:
			return runLen + 1, sum
		case mem.ClassLoad:
			sum |= mem.SumLoad
		case mem.ClassStore:
			sum |= mem.SumStore
		}
		runLen++
	}
	return runLen, sum
}

// assertBlocksMatchReference checks class, run length and summary at every
// address in pcs against the forward reference.
func assertBlocksMatchReference(t *testing.T, m *mem.IMem, b *mem.BlockSet, pcs []int) {
	t.Helper()
	for _, pc := range pcs {
		wantCls := mem.Classify(isa.Decode(m.Word(pc)).Op)
		if got := b.Class(pc); got != wantCls {
			t.Errorf("Class(%d) = %v, want %v", pc, got, wantCls)
		}
		wantLen, wantSum := refWalk(m, pc)
		if wantCls == mem.ClassStop {
			wantLen, wantSum = 0, 0
		}
		if wantCls == mem.ClassControl {
			// A run starting at a control transfer is just that
			// instruction; the forward walk from pc reports the same.
			wantLen, wantSum = 1, 0
		}
		if got := b.RunLen(pc); got != wantLen {
			t.Errorf("RunLen(%d) = %d, want %d", pc, got, wantLen)
		}
		if got := b.Summary(pc); got != wantSum {
			t.Errorf("Summary(%d) = %v, want %v", pc, got, wantSum)
		}
	}
}

// TestAnalyzeBlocksTerminatorForms loads one snippet containing every class
// of terminator — branches, jumps, plain and group-tagged sync ops, SEVS,
// SLEEP, HALT — and checks the tables instruction by instruction.
func TestAnalyzeBlocksTerminatorForms(t *testing.T) {
	enc := func(ins isa.Instr) isa.Word { return isa.MustEncode(ins) }
	code := []isa.Word{
		enc(isa.Instr{Op: isa.OpADDI, Rd: 1, Imm: 4}),                          // 0: ALU
		enc(isa.Instr{Op: isa.OpLW, Rd: 2, Rs1: 1, Imm: 0}),                    // 1: load
		enc(isa.Instr{Op: isa.OpSW, Rs1: 1, Rs2: 2, Imm: 1}),                   // 2: store
		enc(isa.Instr{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 2}),                  // 3: control
		enc(isa.Instr{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}),                   // 4: ALU
		enc(isa.Instr{Op: isa.OpSINC, Imm: int32(isa.SyncImm(0, 1))}),          // 5: stop (plain sync)
		enc(isa.Instr{Op: isa.OpXOR, Rd: 3, Rs1: 3, Rs2: 3}),                   // 6: ALU
		enc(isa.Instr{Op: isa.OpSDEC, Imm: int32(isa.SyncImm(2, 3))}),          // 7: stop (group-tagged sync)
		enc(isa.Instr{Op: isa.OpNOP}),                                          // 8: ALU
		enc(isa.Instr{Op: isa.OpSEVS, Imm: int32(isa.SevsImm(1, 0b01, 0b10))}), // 9: stop (SEVS rendezvous)
		enc(isa.Instr{Op: isa.OpLW, Rd: 4, Rs1: 1, Imm: 2}),                    // 10: load
		enc(isa.Instr{Op: isa.OpSLEEP}),                                        // 11: stop
		enc(isa.Instr{Op: isa.OpJAL, Rd: 0, Imm: -8}),                          // 12: control
		enc(isa.Instr{Op: isa.OpSNOP, Imm: int32(isa.SyncImm(1, 0))}),          // 13: stop
		enc(isa.Instr{Op: isa.OpHALT}),                                         // 14: stop
		enc(isa.Instr{Op: isa.OpSW, Rs1: 1, Rs2: 4, Imm: 3}),                   // 15: store
	}
	m := mem.NewIMem()
	if err := m.Load(0, code); err != nil {
		t.Fatal(err)
	}
	b := mem.AnalyzeBlocks(m)

	pcs := make([]int, 64)
	for i := range pcs {
		pcs[i] = i // the snippet plus the NOP run trailing it
	}
	assertBlocksMatchReference(t, m, b, pcs)

	// Spot-check the shape the engine depends on: the run at 0 spans the
	// load, the store and the terminating branch, and summarizes both
	// access kinds.
	if got := b.RunLen(0); got != 4 {
		t.Errorf("RunLen(0) = %d, want 4", got)
	}
	if s := b.Summary(0); !s.HasLoad() || !s.HasStore() || !s.TouchesMem() {
		t.Errorf("Summary(0) = %v, want load+store", s)
	}
	// Runs stop before every ISE form, old and new.
	for _, pc := range []int{5, 7, 9, 11, 13, 14} {
		if b.RunLen(pc) != 0 {
			t.Errorf("RunLen(%d) = %d, want 0 (stop)", pc, b.RunLen(pc))
		}
	}
	// The run at 10 is the lone load (SLEEP follows) and knows it loads.
	if b.RunLen(10) != 1 || b.Summary(10) != mem.SumLoad {
		t.Errorf("run at 10 = len %d sum %v, want 1/load", b.RunLen(10), b.Summary(10))
	}
}

// TestAnalyzeBlocksMatchesReferenceOnBundledApps runs the reference
// comparison over every bundled benchmark on every paper architecture —
// the MC/MC-nosync builds lower their synchronization differently (sync ISE
// vs busy-wait loops), so together they exercise every terminator the real
// programs contain.
func TestAnalyzeBlocksMatchesReferenceOnBundledApps(t *testing.T) {
	for _, app := range apps.Names {
		for _, arch := range []power.Arch{power.SC, power.MC, power.MCNoSync} {
			app, arch := app, arch
			t.Run(fmt.Sprintf("%s/%v", app, arch), func(t *testing.T) {
				v, err := apps.Build(app, arch)
				if err != nil {
					t.Fatal(err)
				}
				m := mem.NewIMem()
				var pcs []int
				for _, seg := range v.Res.Image.Code {
					if err := m.Load(seg.Base, seg.Words); err != nil {
						t.Fatal(err)
					}
					// Check every loaded address plus a margin of the
					// NOP-decoding unloaded words around each segment.
					lo, hi := seg.Base-8, seg.Base+len(seg.Words)+8
					if lo < 0 {
						lo = 0
					}
					if hi > isa.IMWords {
						hi = isa.IMWords
					}
					for pc := lo; pc < hi; pc++ {
						pcs = append(pcs, pc)
					}
				}
				b := mem.AnalyzeBlocks(m)
				assertBlocksMatchReference(t, m, b, pcs)
			})
		}
	}
}
