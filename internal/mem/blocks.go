// Basic-block analysis over the pre-decoded instruction memory.
//
// The platform's block execution engine (internal/platform/blockengine.go)
// wants to execute straight-line stretches of code without re-classifying
// every instruction on every cycle. Because instruction memory is immutable
// after load, the classification can be computed once per image: every word
// gets an InstrClass, and every address the length of the straight-line run
// that starts there. Both tables are dense (one entry per IM word), so the
// engine's inner loop is two array reads per block, not per cycle.
package mem

import "repro/internal/isa"

// InstrClass is the block engine's static classification of one decoded
// instruction. It answers the only questions the fast path asks: does the
// instruction touch data memory (and which way), can it redirect the PC, and
// may it be executed outside the cycle-accurate Step at all.
type InstrClass uint8

const (
	// ClassALU is straight-line compute: no memory access, no control
	// transfer, no platform interaction. NOP included.
	ClassALU InstrClass = iota
	// ClassLoad is LW. The effective address is register-relative, so
	// whether it hits banked memory or MMIO is only known at run time.
	ClassLoad
	// ClassStore is SW, with the same run-time MMIO caveat.
	ClassStore
	// ClassControl is a conditional branch or jump: executable on the fast
	// path, but it terminates the block (the next PC is dynamic).
	ClassControl
	// ClassStop is anything the fast path must not execute: the sync ISE
	// (SINC/SDEC/SNOP/SLEEP), HALT, and invalid encodings. All of them
	// interact with platform state (synchronizer, core states, faults), so
	// the engine yields to Step before reaching one.
	ClassStop
)

// Classify returns the block-engine class of op.
func Classify(op isa.Opcode) InstrClass {
	switch {
	case !op.Valid() || op.IsSyncExtension() || op == isa.OpHALT:
		return ClassStop
	case op == isa.OpLW:
		return ClassLoad
	case op == isa.OpSW:
		return ClassStore
	case op.IsControl():
		return ClassControl
	default:
		return ClassALU
	}
}

// RunSummary aggregates the straight-line run starting at one address: which
// kinds of data-memory access appear anywhere in the run (terminator
// included). The multi-core stride engine reads it once per run instead of
// re-deriving per cycle whether data-memory arbitration needs planning at
// all, which keeps the bail decision for pure-compute strides O(1).
type RunSummary uint8

const (
	// SumLoad marks at least one LW somewhere in the run.
	SumLoad RunSummary = 1 << iota
	// SumStore marks at least one SW somewhere in the run.
	SumStore
)

// HasLoad reports whether the run contains a load.
func (s RunSummary) HasLoad() bool { return s&SumLoad != 0 }

// HasStore reports whether the run contains a store.
func (s RunSummary) HasStore() bool { return s&SumStore != 0 }

// TouchesMem reports whether the run accesses data memory at all.
func (s RunSummary) TouchesMem() bool { return s != 0 }

// BlockSet is the basic-block metadata of one loaded instruction memory:
// per-address instruction classes, straight-line run lengths and per-run
// memory-access summaries. It is immutable after AnalyzeBlocks and can be
// shared between platforms running the same image.
type BlockSet struct {
	class   []InstrClass
	runLen  []int32
	summary []RunSummary
}

// AnalyzeBlocks scans the pre-decoded instruction memory once and returns
// its block metadata. Unloaded words decode as NOP and join the surrounding
// straight-line runs; that is safe because the engine still performs the
// architectural fetch (bank power check) per instruction, so running into an
// unpowered bank faults exactly as Step would.
func AnalyzeBlocks(m *IMem) *BlockSet {
	b := &BlockSet{
		class:   make([]InstrClass, isa.IMWords),
		runLen:  make([]int32, isa.IMWords),
		summary: make([]RunSummary, isa.IMWords),
	}
	// One backward pass: a run length is 0 at a stop, 1 at a control
	// transfer (executable, then the next PC is dynamic), and otherwise
	// extends the run that starts at the next address. The last IM word has
	// no successor; ending the run there is always correct, merely
	// conservative for code that wraps the PC. The run summary folds the
	// same way: a suffix's memory accesses are the next address's summary,
	// which is exactly the rest of this run.
	for pc := isa.IMWords - 1; pc >= 0; pc-- {
		cls := Classify(m.decoded[pc].Op)
		b.class[pc] = cls
		switch cls {
		case ClassStop:
			b.runLen[pc] = 0
		case ClassControl:
			b.runLen[pc] = 1
		default:
			var s RunSummary
			switch cls {
			case ClassLoad:
				s = SumLoad
			case ClassStore:
				s = SumStore
			}
			if pc+1 < isa.IMWords {
				b.runLen[pc] = 1 + b.runLen[pc+1]
				s |= b.summary[pc+1]
			} else {
				b.runLen[pc] = 1
			}
			b.summary[pc] = s
		}
	}
	return b
}

// Class returns the class of the instruction at pc.
func (b *BlockSet) Class(pc int) InstrClass { return b.class[pc] }

// RunLen returns how many consecutive instructions starting at pc the block
// engine may execute before it must look up the table again: 0 at a
// ClassStop (yield to the cycle-accurate path), otherwise the distance to
// and including the block's terminator.
func (b *BlockSet) RunLen(pc int) int { return int(b.runLen[pc]) }

// Summary returns the memory-access summary of the straight-line run
// starting at pc. It is zero at a ClassStop (there is no run to summarize)
// and at a ClassControl (a control transfer never accesses data memory).
func (b *BlockSet) Summary(pc int) RunSummary { return b.summary[pc] }
