// Package ecg synthesizes deterministic multi-lead electrocardiogram signals
// as a substitute for the CSE multi-lead database used in the paper (§IV-D),
// which is not freely redistributable. Beats are modelled as sums of
// Gaussian waves (P, Q, R, S, T) — the standard synthetic-ECG construction —
// with per-lead projection gains, baseline wander, measurement noise, and
// optional PVC-like pathological (ectopic) beats injected uniformly at a
// configurable rate, matching the paper's RP-CLASS experiments (20 % in
// Table I, 0..100 % in Figure 7).
//
// Samples are 16-bit fixed-point LSB values in the range the platform's ADC
// produces; the ground-truth beat annotations (R-peak positions and labels)
// make the reproduced benchmarks verifiable by construction.
package ecg

import (
	"fmt"
	"math"
	"math/rand"
)

// NumLeads is the number of synthesized leads (the paper's 3-lead setups).
const NumLeads = 3

// Config parameterizes the generator. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	SampleRateHz     float64
	HeartRateBPM     float64
	RRJitter         float64 // relative std-dev of the RR interval
	PathologicalFrac float64 // share of beats replaced by PVC-like ectopics
	BaselineAmp      float64 // baseline-wander amplitude, LSB
	NoiseAmp         float64 // white-noise amplitude, LSB
	RAmplitude       float64 // R-wave peak amplitude on lead 0, LSB
	Seed             int64
}

// DefaultConfig returns the configuration used across the reproduction:
// 250 Hz sampling, 72 bpm (the CSE healthy-subject range), modest wander and
// noise, R peak around 1200 LSB.
func DefaultConfig() Config {
	return Config{
		SampleRateHz: 250,
		HeartRateBPM: 72,
		RRJitter:     0.04,
		BaselineAmp:  90,
		NoiseAmp:     30,
		RAmplitude:   1200,
		Seed:         1,
	}
}

// Beat is one annotated heartbeat of the synthesized record.
type Beat struct {
	RPeak        int  // sample index of the R peak
	Onset        int  // approximate QRS onset sample
	Offset       int  // approximate QRS offset sample
	Pathological bool // PVC-like ectopic beat
}

// Signal is a synthesized multi-lead record with ground truth.
type Signal struct {
	Cfg   Config
	Leads [NumLeads][]int16
	Beats []Beat
}

// wave is one Gaussian component: amplitude (relative to RAmplitude), center
// offset from the R peak (seconds) and width (seconds).
type wave struct {
	amp, center, sigma float64
}

// Normal-beat morphology, lead 0 reference.
var normalWaves = []wave{
	{amp: 0.13, center: -0.17, sigma: 0.022},   // P
	{amp: -0.14, center: -0.035, sigma: 0.010}, // Q
	{amp: 1.00, center: 0.0, sigma: 0.013},     // R
	{amp: -0.23, center: 0.035, sigma: 0.011},  // S
	{amp: 0.30, center: 0.29, sigma: 0.065},    // T
}

// PVC-like ectopic morphology: no P wave, wide tall R, deep S, inverted T.
var pvcWaves = []wave{
	{amp: 1.35, center: 0.0, sigma: 0.036},
	{amp: -0.55, center: 0.065, sigma: 0.030},
	{amp: -0.34, center: 0.30, sigma: 0.075},
}

// Per-lead gains model the projection of the cardiac vector onto three
// electrode axes.
var leadGain = [NumLeads]float64{1.00, 0.76, 0.58}

// leadPBoost slightly emphasizes the P wave on lead 1 (as in limb leads).
var leadPBoost = [NumLeads]float64{1.0, 1.25, 0.9}

// Synthesize generates duration seconds of signal.
func Synthesize(cfg Config, duration float64) (*Signal, error) {
	if cfg.SampleRateHz <= 0 || cfg.HeartRateBPM <= 0 {
		return nil, fmt.Errorf("ecg: non-positive rate in config %+v", cfg)
	}
	if cfg.PathologicalFrac < 0 || cfg.PathologicalFrac > 1 {
		return nil, fmt.Errorf("ecg: pathological fraction %v out of [0,1]", cfg.PathologicalFrac)
	}
	n := int(duration * cfg.SampleRateHz)
	if n <= 0 {
		return nil, fmt.Errorf("ecg: non-positive duration %v", duration)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Signal{Cfg: cfg}
	for l := range s.Leads {
		s.Leads[l] = make([]int16, n)
	}

	// Beat schedule. Ectopic beats arrive prematurely (shorter preceding
	// RR) and are followed by a compensatory pause.
	meanRR := 60 / cfg.HeartRateBPM
	var rTimes []float64
	var patho []bool
	t := 0.5 * meanRR // first beat early in the record
	compensate := false
	for t < duration {
		isPatho := rng.Float64() < cfg.PathologicalFrac
		rTimes = append(rTimes, t)
		patho = append(patho, isPatho)
		rr := meanRR * (1 + cfg.RRJitter*rng.NormFloat64())
		if isPatho {
			rr *= 0.82 // premature next... no: the ectopic itself came early
		}
		if compensate {
			rr *= 1.15
		}
		compensate = isPatho
		if rr < 0.25*meanRR {
			rr = 0.25 * meanRR
		}
		t += rr
	}

	// Accumulate waves in float, then quantize once.
	acc := make([][]float64, NumLeads)
	for l := range acc {
		acc[l] = make([]float64, n)
	}
	for bi, rt := range rTimes {
		waves := normalWaves
		if patho[bi] {
			waves = pvcWaves
		}
		for _, w := range waves {
			amp := w.amp * cfg.RAmplitude
			// Only fill the +-4 sigma support.
			lo := int((rt + w.center - 4*w.sigma) * cfg.SampleRateHz)
			hi := int((rt + w.center + 4*w.sigma) * cfg.SampleRateHz)
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for i := lo; i <= hi; i++ {
				ts := float64(i)/cfg.SampleRateHz - (rt + w.center)
				g := math.Exp(-ts * ts / (2 * w.sigma * w.sigma))
				for l := 0; l < NumLeads; l++ {
					gain := leadGain[l]
					if w.amp > 0 && w.center < -0.1 { // P wave
						gain *= leadPBoost[l]
					}
					acc[l][i] += amp * gain * g
				}
			}
		}
		r := int(rt * cfg.SampleRateHz)
		width := 0.06
		if patho[bi] {
			width = 0.11
		}
		b := Beat{
			RPeak:        r,
			Onset:        r - int(width*cfg.SampleRateHz),
			Offset:       r + int(width*cfg.SampleRateHz),
			Pathological: patho[bi],
		}
		if b.RPeak < n {
			s.Beats = append(s.Beats, b)
		}
	}

	// Baseline wander (respiration-like) and noise, then quantization.
	for i := 0; i < n; i++ {
		ts := float64(i) / cfg.SampleRateHz
		wander := cfg.BaselineAmp * (math.Sin(2*math.Pi*0.23*ts) + 0.5*math.Sin(2*math.Pi*0.071*ts+1.0))
		for l := 0; l < NumLeads; l++ {
			v := acc[l][i] + wander*leadGain[l] + cfg.NoiseAmp*rng.NormFloat64()
			s.Leads[l][i] = clamp16(v)
		}
	}
	return s, nil
}

func clamp16(v float64) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(math.Round(v))
}

// PathologicalCount returns the number of annotated ectopic beats.
func (s *Signal) PathologicalCount() int {
	n := 0
	for _, b := range s.Beats {
		if b.Pathological {
			n++
		}
	}
	return n
}

// Samples returns the record length in samples.
func (s *Signal) Samples() int { return len(s.Leads[0]) }
