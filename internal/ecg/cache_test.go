package ecg

import (
	"sync"
	"testing"
)

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig()
	const workers = 8
	sigs := make([]*Signal, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := c.Synthesize(cfg, 2)
			if err != nil {
				t.Error(err)
				return
			}
			sigs[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if sigs[i] != sigs[0] {
			t.Fatalf("worker %d got a distinct signal instance", i)
		}
	}
	if n := c.Synths(); n != 1 {
		t.Errorf("synthesized %d times for one key, want 1", n)
	}
}

func TestCacheDistinguishesKeys(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig()
	a, err := c.Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Different duration: distinct record.
	b, err := c.Synthesize(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different durations shared one record")
	}
	// Different seed: distinct record.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	d, err := c.Synthesize(cfg2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different seeds shared one record")
	}
	if n := c.Synths(); n != 3 {
		t.Errorf("synthesized %d times for three keys, want 3", n)
	}
}

func TestCacheMatchesDirectSynthesis(t *testing.T) {
	c := NewCache()
	cfg := DefaultConfig()
	cached, err := c.Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Synthesize(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < NumLeads; l++ {
		if len(cached.Leads[l]) != len(direct.Leads[l]) {
			t.Fatalf("lead %d length differs", l)
		}
		for i := range cached.Leads[l] {
			if cached.Leads[l][i] != direct.Leads[l][i] {
				t.Fatalf("lead %d sample %d differs: cached %d, direct %d",
					l, i, cached.Leads[l][i], direct.Leads[l][i])
			}
		}
	}
}
