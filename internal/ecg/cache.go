package ecg

import (
	"sync"
	"sync/atomic"
)

// Cache memoizes Synthesize by (Config, duration). The experiment sweep
// engine shares one cache across its worker pool so each distinct record is
// synthesized exactly once per grid instead of once per (app, arch) point;
// synthesis is deterministic, so a cached record is bit-identical to a fresh
// one. Callers must treat returned signals as immutable — they are shared.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	synths  atomic.Int64
}

type cacheKey struct {
	cfg  Config
	durS float64
}

// cacheEntry is a single-flight slot: concurrent requests for the same key
// block on one synthesis instead of duplicating it.
type cacheEntry struct {
	once sync.Once
	sig  *Signal
	err  error
}

// NewCache returns an empty signal cache safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// Synthesize returns the memoized record for (cfg, duration), synthesizing
// it on first request.
func (c *Cache) Synthesize(cfg Config, duration float64) (*Signal, error) {
	key := cacheKey{cfg: cfg, durS: duration}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.synths.Add(1)
		e.sig, e.err = Synthesize(cfg, duration)
	})
	return e.sig, e.err
}

// Synths returns how many records were actually synthesized (cache misses);
// the gap to the request count is work the memoization saved.
func (c *Cache) Synths() int { return int(c.synths.Load()) }
