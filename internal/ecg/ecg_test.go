package ecg

import (
	"math"
	"testing"
	"testing/quick"
)

func synth(t *testing.T, cfg Config, dur float64) *Signal {
	t.Helper()
	s, err := Synthesize(cfg, dur)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeterminism(t *testing.T) {
	a := synth(t, DefaultConfig(), 10)
	b := synth(t, DefaultConfig(), 10)
	for l := range a.Leads {
		for i := range a.Leads[l] {
			if a.Leads[l][i] != b.Leads[l][i] {
				t.Fatalf("lead %d sample %d differs: %d vs %d", l, i, a.Leads[l][i], b.Leads[l][i])
			}
		}
	}
	if len(a.Beats) != len(b.Beats) {
		t.Error("beat annotations differ")
	}
}

func TestSeedChangesSignal(t *testing.T) {
	cfg := DefaultConfig()
	a := synth(t, cfg, 5)
	cfg.Seed = 2
	b := synth(t, cfg, 5)
	same := true
	for i := range a.Leads[0] {
		if a.Leads[0][i] != b.Leads[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must produce different signals")
	}
}

func TestBeatRateMatchesHeartRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeartRateBPM = 72
	s := synth(t, cfg, 60)
	if got := len(s.Beats); got < 66 || got > 78 {
		t.Errorf("beats in 60s at 72 bpm = %d, want ~72", got)
	}
}

func TestDurationAndLeads(t *testing.T) {
	s := synth(t, DefaultConfig(), 4)
	if s.Samples() != 1000 {
		t.Errorf("samples = %d, want 1000", s.Samples())
	}
	for l := range s.Leads {
		if len(s.Leads[l]) != 1000 {
			t.Errorf("lead %d has %d samples", l, len(s.Leads[l]))
		}
	}
}

func TestPathologicalFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathologicalFrac = 0.2
	s := synth(t, cfg, 300)
	frac := float64(s.PathologicalCount()) / float64(len(s.Beats))
	if math.Abs(frac-0.2) > 0.06 {
		t.Errorf("pathological fraction = %.3f, want ~0.20", frac)
	}
}

func TestZeroAndFullPathological(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathologicalFrac = 0
	if s := synth(t, cfg, 30); s.PathologicalCount() != 0 {
		t.Error("0% config produced ectopics")
	}
	cfg.PathologicalFrac = 1
	if s := synth(t, cfg, 30); s.PathologicalCount() != len(s.Beats) {
		t.Error("100% config produced normals")
	}
}

func TestAmplitudeInRange(t *testing.T) {
	s := synth(t, DefaultConfig(), 30)
	var peak int16
	for _, v := range s.Leads[0] {
		if v > peak {
			peak = v
		}
	}
	// R amplitude 1200 plus wander/noise headroom.
	if peak < 900 || peak > 1800 {
		t.Errorf("lead 0 peak = %d, want around 1200", peak)
	}
}

func TestLeadGainsOrdered(t *testing.T) {
	s := synth(t, DefaultConfig(), 30)
	peaks := [NumLeads]int16{}
	for l := range s.Leads {
		for _, v := range s.Leads[l] {
			if v > peaks[l] {
				peaks[l] = v
			}
		}
	}
	if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
		t.Errorf("lead peaks not ordered by gain: %v", peaks)
	}
}

func TestRPeakAnnotationsPointAtMaxima(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BaselineAmp = 0
	cfg.NoiseAmp = 0
	s := synth(t, cfg, 20)
	for _, b := range s.Beats {
		if b.RPeak < 3 || b.RPeak > s.Samples()-4 {
			continue
		}
		// The annotated R peak must be a local maximum region.
		v := s.Leads[0][b.RPeak]
		if v < int16(0.8*cfg.RAmplitude) {
			t.Errorf("beat at %d: amplitude %d below 80%% of R", b.RPeak, v)
		}
	}
}

func TestBeatsSortedAndSpaced(t *testing.T) {
	s := synth(t, DefaultConfig(), 60)
	minRR := int(0.2 * s.Cfg.SampleRateHz) // 200 ms refractory floor
	for i := 1; i < len(s.Beats); i++ {
		d := s.Beats[i].RPeak - s.Beats[i-1].RPeak
		if d <= 0 {
			t.Fatalf("beats not sorted at %d", i)
		}
		if d < minRR {
			t.Errorf("RR of %d samples below physiological floor", d)
		}
	}
}

func TestOnsetOffsetBracketRPeak(t *testing.T) {
	s := synth(t, DefaultConfig(), 20)
	for _, b := range s.Beats {
		if !(b.Onset < b.RPeak && b.RPeak < b.Offset) {
			t.Fatalf("beat annotation not ordered: %+v", b)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleRateHz = 0
	if _, err := Synthesize(cfg, 10); err == nil {
		t.Error("want error for zero rate")
	}
	cfg = DefaultConfig()
	cfg.PathologicalFrac = 1.5
	if _, err := Synthesize(cfg, 10); err == nil {
		t.Error("want error for fraction > 1")
	}
	if _, err := Synthesize(DefaultConfig(), 0); err == nil {
		t.Error("want error for zero duration")
	}
}

func TestQuickSynthesisStaysBounded(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.PathologicalFrac = float64(fracRaw%101) / 100
		s, err := Synthesize(cfg, 5)
		if err != nil {
			return false
		}
		for l := range s.Leads {
			for _, v := range s.Leads[l] {
				if v > 4000 || v < -4000 {
					return false
				}
			}
		}
		return len(s.Beats) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
