// Predecoded basic-block execution engine.
//
// The two fast-forward engines (fastforward.go, spinff.go) remove the quiet
// cycles; this engine attacks the loud ones. When cores are marching through
// straight-line code, Step still pays the full seven-phase toll per cycle —
// classify every core, arbitrate request lists, re-derive the MemOp, walk
// the opcode dispatch — even though nothing about the cycle is contended or
// observable from outside. The block engine executes those stretches from
// the image's precomputed basic-block tables (mem.BlockSet) with all
// counter, busy-window and crossbar accounting applied in bulk at the end of
// the stretch, exactly as the equivalent Steps would have. It has two
// shapes:
//
//   - single-core runs (blockRunSingle): exactly one core is running, so a
//     single requester is always granted by the crossbars, never merged and
//     never stalled — the per-cycle arbitration results are known
//     statically and the inner loop is fetch → (optional banked memory
//     access) → execute;
//   - multi-core strides (blockRunMulti): N ≥ 2 running cores execute
//     interleaved on the true cycle grid, the paper's MC steady state of
//     lock-step cores inside the same block between sync points. Each cycle
//     is planned first — fetch set, data-access set — and committed only if
//     the interconnect proves it conflict-free at every rotating-priority
//     phase (interco.PlanConflictFree): merged lock-step fetches, merged
//     equal-address reads, and writes alone on their bank. Any colliding
//     pair, and any write a concurrent core could observe ordering effects
//     from, ends the stride before the cycle mutates anything, so Step
//     re-arbitrates it exactly.
//
// Unlike the fast-forward leaps, these cycles are fully simulated — every
// instruction executes with architectural fidelity; only the per-cycle
// dispatch overhead is removed — so bit-identity with -exact holds by
// construction wherever the engine's preconditions do:
//
//   - gated/halted cores contribute constant per-cycle counter increments,
//     applied in bulk;
//   - the stretch ends before anything external can intervene: the cycle
//     budget, the next ADC event (which can publish samples, raise IRQs and
//     roll the sample window) and the next scheduled wake or gated-wait
//     timeout all bound it;
//   - the engine yields to Step before any instruction it cannot reproduce:
//     sync ISE, HALT, invalid encodings (mem.ClassStop), MMIO accesses
//     (dedicated register file with platform side effects), faulting
//     fetches and data accesses (Step re-runs the cycle and faults with
//     exact-mode accounting);
//   - no event tracer is attached (the gate mirrors the spin engine's).
//
// The one regime deliberately left to others is the short busy-wait loop:
// executing a spin loop instruction-by-instruction — even cheaply — is
// asymptotically worse than the spin engine's O(1) leap per proven period.
// On a taken backward branch of spin-detectable distance the engine
// therefore yields stickily (per-core yield spans) and lets Step feed the
// spin detector until that core's PC leaves the loop body. With the idle
// fast-forward leaping the quiescent cycles, the four engines compose:
// idle FF / spin FF / single-core blocks / multi-core strides.
//
// Like the fast-forward engines, everything here is simulation-process
// state: Restore and Fork reset it (snapshot.go) and leap/engagement
// placement may differ across Run chunkings while every architectural
// observable stays bit-identical — enforced by blockengine_test.go, the
// randomized cross-engine differential fuzzer (difffuzz_test.go), the
// golden-equivalence suites and the scenario matrix.

package platform

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/interco"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/power"
)

// blockMCRetry is the probe back-off after a multi-core stride attempt that
// could not commit a single cycle (divergent fetches colliding on a bank,
// conflicting data accesses, MMIO straight ahead). Planning a cycle costs
// about as much as stepping it, so in a persistently contended regime the
// engine must not re-plan every cycle; it waits this many cycles before
// probing again. Engagement placement is process state — backing off never
// changes an architectural observable.
const blockMCRetry = 64

// blockEngine is the engine state embedded in Platform.
type blockEngine struct {
	// set is the image's basic-block metadata, built once in New and shared
	// with forks (the image is immutable).
	set *mem.BlockSet

	// Sticky per-core spin-yield spans: while core c's PC lies in
	// [yieldLo[c], yieldHi[c]] the engine stays off any stretch c
	// participates in, so the spin detector sees an uninterrupted stepped
	// instruction stream (spinff.go).
	yield   []bool
	yieldLo []int
	yieldHi []int

	// mcNextTry gates multi-core stride attempts after a fruitless plan
	// (see blockMCRetry).
	mcNextTry uint64

	// Reusable scratch for the multi-core planner (no per-cycle allocs).
	active []int             // participating core ids this stride
	dm     []interco.Request // one cycle's data-access plan
	im     []interco.Request // one cycle's fetch plan (divergent PCs only)

	// Wall-clock diagnostics (process state, not snapshotted).
	runs     uint64 // single-core engagements that executed ≥ 1 cycle
	cycles   uint64 // cycles executed on the single-core fast path
	mcRuns   uint64 // multi-core strides that executed ≥ 1 cycle
	mcCycles uint64 // cycles executed on the multi-core stride path
}

// blockInit sizes the engine's per-core state for ncore cores; called once
// from New after the block tables are built.
func (b *blockEngine) blockInit(ncore int) {
	b.yield = make([]bool, ncore)
	b.yieldLo = make([]int, ncore)
	b.yieldHi = make([]int, ncore)
	b.active = make([]int, 0, ncore)
	b.dm = make([]interco.Request, 0, ncore)
	b.im = make([]interco.Request, 0, ncore)
}

// BlockRuns returns how many times the basic-block engine engaged its
// single-core fast path for at least one cycle. Like FFLeaps it is a
// wall-clock diagnostic: identical simulations chunked differently may
// engage differently while producing bit-identical results. Restore and
// Fork reset it.
func (p *Platform) BlockRuns() uint64 { return p.block.runs }

// BlockCycles returns how many cycles were executed by the single-core
// block path instead of through Step's seven phases. Unlike the
// fast-forward engines' skipped cycles these were fully simulated — only
// the per-cycle dispatch overhead was avoided — so the figure is a
// wall-clock diagnostic, not a statement about the workload.
func (p *Platform) BlockCycles() uint64 { return p.block.cycles }

// BlockMCStrides returns how many multi-core strides executed at least one
// cycle. A wall-clock diagnostic like BlockRuns; Restore and Fork reset it.
func (p *Platform) BlockMCStrides() uint64 { return p.block.mcRuns }

// BlockMCCycles returns how many cycles were executed inside multi-core
// strides. Every participating core advanced through each of them, so the
// per-core-cycle figure is this times the participant count (see the
// engine.block_stride_cycles.cN histograms for the split).
func (p *Platform) BlockMCCycles() uint64 { return p.block.mcCycles }

// blockReset clears the engine's sticky yields, probe back-off and
// diagnostics: Restore, Fork. The block tables themselves derive from the
// immutable image and survive.
func (p *Platform) blockReset() {
	for c := range p.block.yield {
		p.block.yield[c] = false
	}
	p.block.mcNextTry = 0
	p.block.runs = 0
	p.block.cycles = 0
	p.block.mcRuns = 0
	p.block.mcCycles = 0
}

// blockStrideCoresName[n-1] names the stride-length histogram for strides
// with n participating cores — the core-count dimension of the block
// engine's observability (obs must stay isa-agnostic, hence the fixed
// table here).
var blockStrideCoresName = [isa.MaxCores]string{
	"engine.block_stride_cycles.c1",
	"engine.block_stride_cycles.c2",
	"engine.block_stride_cycles.c3",
	"engine.block_stride_cycles.c4",
	"engine.block_stride_cycles.c5",
	"engine.block_stride_cycles.c6",
	"engine.block_stride_cycles.c7",
	"engine.block_stride_cycles.c8",
}

// blockRun executes as many upcoming cycles as it can prove safe on the
// basic-block fast path, stopping at limit (the caller's exclusive cycle
// budget). It either advances the platform exactly as the same number of
// Steps would, or returns having touched nothing — every bail-out happens
// before the cycle being abandoned has any effect, so Step re-simulates it
// with exact-mode accounting.
func (p *Platform) blockRun(limit uint64) {
	if p.fault != nil {
		return
	}
	// Count the running cores; gated and halted cores contribute fixed
	// per-cycle counter increments on either path.
	anchor := -1
	nrun := 0
	var gated, halted uint64
	for c := 0; c < p.ncore; c++ {
		switch p.sync.State(c) {
		case core.StateRunning:
			nrun++
			if anchor < 0 {
				anchor = c
			}
		case core.StateGated:
			gated++
		default:
			halted++
		}
	}
	switch {
	case nrun == 0:
		return // fully idle: the quiescence engine's territory
	case nrun == 1:
		p.blockRunSingle(limit, anchor, gated, halted)
	default:
		p.blockRunMulti(limit, gated, halted)
	}
}

// blockRunSingle is the one-running-core fast path (see the file comment).
func (p *Platform) blockRunSingle(limit uint64, anchor int, gated, halted uint64) {
	cr := p.cores[anchor]
	if p.block.yield[anchor] {
		if cr.PC >= p.block.yieldLo[anchor] && cr.PC <= p.block.yieldHi[anchor] {
			return // inside a yielded spin loop: keep stepping
		}
		p.block.yield[anchor] = false
	}
	if cr.Fetched {
		return // held instruction from a DM stall: Step must replay it
	}
	if !p.sync.Runnable(anchor, p.cycle+1) {
		return // inside its wake latency: these are idle cycles
	}
	if cr.Bubble == 0 && p.block.set.RunLen(cr.PC) == 0 {
		return // parked on a stop instruction: nothing for the fast path
	}

	end := p.blockEnd(limit)
	if end <= p.cycle {
		return
	}

	start := p.cycle
	cyc := start
	var instrs, bubbles, taken, reads, writes uint64
loop:
	for cyc < end {
		// Pipeline-refill bubbles burn whole cycles without fetching.
		if cr.Bubble > 0 {
			n := uint64(cr.Bubble)
			if room := end - cyc; n > room {
				n = room
			}
			cr.Bubble -= int(n)
			bubbles += n
			cyc += n
			continue
		}
		n := p.block.set.RunLen(cr.PC)
		if n == 0 {
			break // stop instruction ahead: yield to Step
		}
		if room := end - cyc; uint64(n) > room {
			n = int(room)
		}
		for i := 0; i < n; i++ {
			ins, ok := p.imem.Fetch(cr.PC)
			if !ok {
				break loop // Step will fault with exact accounting
			}
			var loadVal uint16
			switch p.block.set.Class(cr.PC) {
			case mem.ClassLoad:
				addr := cr.Regs[ins.Rs1] + uint16(ins.Imm)
				if isa.IsMMIO(addr) {
					break loop // MMIO interacts with platform state
				}
				b, o := p.mapper.Map(anchor, addr)
				v, ok := p.dmem.Read(b, o)
				if !ok {
					break loop // powered-off bank: Step will fault
				}
				loadVal = v
				reads++
			case mem.ClassStore:
				addr := cr.Regs[ins.Rs1] + uint16(ins.Imm)
				if isa.IsMMIO(addr) {
					break loop
				}
				b, o := p.mapper.Map(anchor, addr)
				if !p.dmem.Write(b, o, cr.Regs[ins.Rs2]) {
					break loop
				}
				writes++
			}
			// Keep IR on the same trajectory Step's fetch phase would, so
			// core snapshots stay bit-identical across engines.
			prevPC := cr.PC
			cr.IR = ins
			if cr.ExecuteBlock(ins, loadVal) {
				taken++
				instrs++
				cyc++
				if cr.PC <= prevPC && prevPC-cr.PC < core.MaxSpinPeriod {
					// A tight backward loop is the spin detector's domain:
					// its O(1) leap beats executing every iteration. Yield
					// stickily until the PC leaves the loop body.
					p.block.yield[anchor] = true
					p.block.yieldLo[anchor], p.block.yieldHi[anchor] = cr.PC, prevPC
					break loop
				}
				continue
			}
			instrs++
			cyc++
		}
	}
	if cyc == start {
		return
	}

	// Bulk accounting: exactly what cyc-start Steps over this stretch would
	// have accumulated. Single-requester arbitration is always granted,
	// never merged, never stalled, so each executed instruction is one IM
	// request and access, and each load/store one granted DM request.
	n := cyc - start
	p.ctr.AddStride(power.StrideDelta{
		Cycles:        n,
		Instrs:        instrs,
		ActiveCycles:  instrs,
		StallCycles:   bubbles,
		BranchBubbles: taken,
		UngatedCycles: n,
		GatedCycles:   n * gated,
		HaltedCycles:  n * halted,
		IMReqs:        instrs,
		IMAccesses:    instrs,
		DMReqs:        reads + writes,
		DMReads:       reads,
		DMWrites:      writes,
	})
	p.perCoreBusy[anchor] += n
	p.windowBusy[anchor] += uint32(n)
	p.cycle = cyc
	p.sync.FastForward(cyc)
	p.imx.AdvanceN(n)
	p.dmx.AdvanceN(n)
	p.lastCycleIdle = false
	p.block.runs++
	p.block.cycles += n
	// One span per stride: the engine bails before MMIO, sync ISE, HALT
	// and faults, so no boundary event can fall inside the stretch.
	p.obs.Span(obs.KindBlockStride, obs.TrackEngine, 0, start, n, int64(instrs), 1)
	p.obs.Observe("engine.block_stride_cycles", n)
	p.obs.Observe(blockStrideCoresName[0], n)
	p.blockSpinHygiene(anchor)
}

// blockRunMulti is the N ≥ 2 running-core stride path: per-core block runs
// interleaved on the cycle grid, each cycle planned and proven conflict-free
// before it commits, with one batched crossbar/counters/synchronizer flush
// for the whole stride (see the file comment).
func (p *Platform) blockRunMulti(limit uint64, gated, halted uint64) {
	be := &p.block
	if p.cycle < be.mcNextTry {
		return // recent fruitless plan: this regime is Step's for now
	}

	// Collect the participants and check the per-core entry conditions.
	// memPlan tracks whether any participant's current straight-line run
	// touches data memory at all (mem.RunSummary): pure-compute strides —
	// the lock-step common case between sync points — skip data-access
	// planning entirely until a branch lands in a run that needs it.
	act := be.active[:0]
	memPlan := false
	for c := 0; c < p.ncore; c++ {
		if p.sync.State(c) != core.StateRunning {
			continue
		}
		cr := p.cores[c]
		if be.yield[c] {
			if cr.PC >= be.yieldLo[c] && cr.PC <= be.yieldHi[c] {
				return // a participant spins: the spin detector's domain
			}
			be.yield[c] = false
		}
		if cr.Fetched {
			return // held instruction from a DM stall: Step must replay it
		}
		if !p.sync.Runnable(c, p.cycle+1) {
			return // inside its wake latency: these are idle cycles
		}
		if cr.Bubble == 0 && be.set.RunLen(cr.PC) == 0 {
			return // parked on a stop instruction: Step executes it
		}
		if be.set.Summary(cr.PC).TouchesMem() {
			memPlan = true
		}
		act = append(act, c)
	}
	be.active = act

	end := p.blockEnd(limit)
	if end <= p.cycle {
		return
	}

	// Per-cycle scratch, indexed by participant position in act.
	var (
		pins  [isa.MaxCores]isa.Instr
		fetch [isa.MaxCores]bool
		mcls  [isa.MaxCores]mem.InstrClass
		mbank [isa.MaxCores]int
		moff  [isa.MaxCores]int
		crs   [isa.MaxCores]*cpu.Core
	)
	nact := len(act)
	for i, c := range act {
		crs[i] = p.cores[c]
	}
	start := p.cycle
	cyc := start
	var instrs, bubbles, taken, imReqs, imAccesses, dmReqs, dmReads, dmWrites uint64
	yielded := false

stride:
	for cyc < end && !yielded {
		// ---- Lock-step fast lane: every participant aligned at the same PC
		// with no pipeline bubbles — the paper's MC steady state. One shared
		// classify and one broadcast-merged fetch serve all cores; only the
		// data addresses (register-dependent) are planned per core.
		pc0 := crs[0].PC
		aligned := crs[0].Bubble == 0
		for k := 1; k < nact; k++ {
			if crs[k].PC != pc0 || crs[k].Bubble != 0 {
				aligned = false
				break
			}
		}
		if aligned {
			cls := be.set.Class(pc0)
			if cls == mem.ClassStop {
				break stride // sync ISE / HALT / invalid ahead: Step's turn
			}
			ins, ok := p.imem.Fetch(pc0)
			if !ok {
				break stride // fetch fault: Step replays it exactly
			}
			dmAcc, nw := 0, 0
			if cls == mem.ClassLoad || cls == mem.ClassStore {
				dm := be.dm[:0]
				for i, c := range act {
					addr := crs[i].Regs[ins.Rs1] + uint16(ins.Imm)
					if isa.IsMMIO(addr) {
						break stride // MMIO interacts with platform state
					}
					b, o := p.mapper.Map(c, addr)
					mbank[i], moff[i] = b, o
					dm = append(dm, interco.Request{
						Core: c, Bank: b, Offset: o, Write: cls == mem.ClassStore,
					})
				}
				var ok bool
				dmAcc, ok = interco.PlanConflictFree(dm)
				if !ok {
					break stride // colliding data accesses: Step arbitrates
				}
				for i := range dm {
					if _, ok := p.dmem.Read(dm[i].Bank, dm[i].Offset); !ok {
						break stride // powered-off bank: Step will fault
					}
				}
				if cls == mem.ClassStore {
					nw = len(dm)
				}
				dmReqs += uint64(len(dm))
			}
			for i := range crs[:nact] {
				cr := crs[i]
				var loadVal uint16
				switch cls {
				case mem.ClassLoad:
					loadVal, _ = p.dmem.Read(mbank[i], moff[i])
				case mem.ClassStore:
					p.dmem.Write(mbank[i], moff[i], cr.Regs[ins.Rs2])
				}
				cr.IR = ins
				if cr.ExecuteBlock(ins, loadVal) {
					taken++
					if cr.PC <= pc0 && pc0-cr.PC < core.MaxSpinPeriod {
						// Yield this core's loop to the spin detector; the
						// cycle still commits for every participant.
						be.yield[act[i]] = true
						be.yieldLo[act[i]], be.yieldHi[act[i]] = cr.PC, pc0
						yielded = true
					}
				}
				// Refresh the memory-planning invariant for the generic lane
				// (a diverging branch may drop out of lock-step next cycle).
				if cls == mem.ClassControl && !memPlan && be.set.Summary(cr.PC).TouchesMem() {
					memPlan = true
				}
			}
			instrs += uint64(nact)
			imReqs += uint64(nact)
			imAccesses++
			dmReads += uint64(dmAcc - nw)
			dmWrites += uint64(nw)
			cyc++
			continue
		}

		// ---- Plan: prove the cycle fault-free and conflict-free before
		// mutating anything. Register state is pre-cycle for every core, so
		// the planned addresses are exactly Step's phase-3 addresses.
		nfetch := 0
		lockstep := true
		firstPC := -1
		dm := be.dm[:0]
		for i, c := range act {
			cr := crs[i]
			if cr.Bubble > 0 {
				fetch[i] = false
				continue
			}
			cls := be.set.Class(cr.PC)
			if cls == mem.ClassStop {
				break stride // sync ISE / HALT / invalid ahead: Step's turn
			}
			mcls[i] = cls
			ins, ok := p.imem.Fetch(cr.PC)
			if !ok {
				break stride // fetch fault: Step replays it exactly
			}
			pins[i] = ins
			fetch[i] = true
			nfetch++
			if firstPC < 0 {
				firstPC = cr.PC
			} else if cr.PC != firstPC {
				lockstep = false
			}
			if !memPlan {
				// Invariant: no run in flight contains a load or store
				// (entry check + the refresh after every control transfer
				// below), so no address needs computing.
				continue
			}
			switch cls {
			case mem.ClassLoad, mem.ClassStore:
				addr := cr.Regs[ins.Rs1] + uint16(ins.Imm)
				if isa.IsMMIO(addr) {
					break stride // MMIO interacts with platform state
				}
				b, o := p.mapper.Map(c, addr)
				mbank[i], moff[i] = b, o
				dm = append(dm, interco.Request{
					Core: c, Bank: b, Offset: o, Write: cls == mem.ClassStore,
				})
			}
		}

		// Fetch arbitration. Lock-step cores share one PC and ride a single
		// broadcast-merged bank read; divergent PCs must be proven
		// conflict-free on the instruction banks.
		imAcc := 0
		if nfetch > 0 {
			imAcc = 1
			if !lockstep {
				im := be.im[:0]
				for i, c := range act {
					if !fetch[i] {
						continue
					}
					pc := p.cores[c].PC
					im = append(im, interco.Request{
						Core: c, Bank: isa.IMBankOf(pc), Offset: pc,
					})
				}
				var ok bool
				imAcc, ok = interco.PlanConflictFree(im)
				if !ok {
					break stride // colliding fetches: Step arbitrates
				}
			}
		}

		// Data arbitration. Conflict-free means every bank sees either one
		// write alone or reads of a single address, so commit order within
		// the cycle cannot matter: no other core can observe a same-cycle
		// write (same word ⇒ same bank ⇒ conflict ⇒ bail).
		nw := 0
		dmAcc := 0
		if len(dm) > 0 {
			var ok bool
			dmAcc, ok = interco.PlanConflictFree(dm)
			if !ok {
				break stride // colliding data accesses: Step arbitrates
			}
			for i := range dm {
				if dm[i].Write {
					nw++
				}
				if _, ok := p.dmem.Read(dm[i].Bank, dm[i].Offset); !ok {
					break stride // powered-off bank: Step will fault
				}
			}
		}

		// ---- Commit: the cycle is proven; execute it in core order.
		for i, c := range act {
			cr := crs[i]
			if !fetch[i] {
				cr.Bubble--
				bubbles++
				continue
			}
			ins := pins[i]
			var loadVal uint16
			switch mcls[i] {
			case mem.ClassLoad:
				loadVal, _ = p.dmem.Read(mbank[i], moff[i])
			case mem.ClassStore:
				p.dmem.Write(mbank[i], moff[i], cr.Regs[ins.Rs2])
			}
			prevPC := cr.PC
			cr.IR = ins
			if cr.ExecuteBlock(ins, loadVal) {
				taken++
				if cr.PC <= prevPC && prevPC-cr.PC < core.MaxSpinPeriod {
					// Yield this core's loop to the spin detector; the
					// cycle still commits for every participant.
					be.yield[c] = true
					be.yieldLo[c], be.yieldHi[c] = cr.PC, prevPC
					yielded = true
				}
			}
			// Straight-line runs only ever end at a control transfer, so
			// this is the one place a core can enter a new run mid-stride:
			// refresh the memory-planning flag (taken or fall-through).
			if mcls[i] == mem.ClassControl && !memPlan && be.set.Summary(cr.PC).TouchesMem() {
				memPlan = true
			}
			instrs++
		}
		imReqs += uint64(nfetch)
		imAccesses += uint64(imAcc)
		dmReqs += uint64(len(dm))
		dmReads += uint64(dmAcc - nw)
		dmWrites += uint64(nw)
		cyc++
	}
	if cyc == start {
		// The entry conditions held but the very first cycle could not be
		// proven safe. Planning costs about as much as stepping; back off
		// before probing this contended regime again.
		be.mcNextTry = p.cycle + blockMCRetry
		return
	}

	// Bulk accounting: exactly what cyc-start Steps over this stretch would
	// have accumulated. Every participant was clocked (exec or bubble) each
	// cycle; fetch and data access counts come from the per-cycle plans.
	n := cyc - start
	p.ctr.AddStride(power.StrideDelta{
		Cycles:        n,
		Instrs:        instrs,
		ActiveCycles:  instrs,
		StallCycles:   bubbles,
		BranchBubbles: taken,
		UngatedCycles: n * uint64(len(act)),
		GatedCycles:   n * gated,
		HaltedCycles:  n * halted,
		IMReqs:        imReqs,
		IMAccesses:    imAccesses,
		DMReqs:        dmReqs,
		DMReads:       dmReads,
		DMWrites:      dmWrites,
	})
	for _, c := range act {
		p.perCoreBusy[c] += n
		p.windowBusy[c] += uint32(n)
	}
	p.cycle = cyc
	p.sync.FastForward(cyc)
	p.imx.AdvanceN(n)
	p.dmx.AdvanceN(n)
	p.lastCycleIdle = false
	be.mcRuns++
	be.mcCycles += n
	// One span per stride, tagged with the participating core count.
	p.obs.Span(obs.KindBlockStride, obs.TrackEngine, 0, start, n, int64(instrs), int64(len(act)))
	p.obs.Observe("engine.block_stride_cycles", n)
	p.obs.Observe(blockStrideCoresName[len(act)-1], n)
	for _, c := range act {
		p.blockSpinHygiene(c)
	}
}

// blockEnd bounds a stretch: it must end before anything external can
// intervene — the cycle budget, the next ADC event (sample publications,
// IRQ wakes, overruns, sample-window rollover) and any scheduled wake
// latency or gated-wait timeout expiry.
func (p *Platform) blockEnd(limit uint64) uint64 {
	end := limit
	if w, ok := p.sync.NextWake(p.cycle); ok && w-1 < end {
		end = w - 1
	}
	if p.adc != nil {
		if e := p.adc.NextEventCycle(); e-1 < end {
			end = e - 1
		}
	}
	return end
}

// blockSpinHygiene resets the spin detector for a stride participant: the
// stretch was not stepped, so core c's PC history is stale and any armed
// probe assumed contiguity it no longer has. Detection resumes on the
// stepped path.
func (p *Platform) blockSpinHygiene(c int) {
	p.spin.track[c].Reset()
	if p.spin.armed {
		p.spin.armed = false
		p.spin.nextCheck = p.cycle + spinRecheck
	}
}
