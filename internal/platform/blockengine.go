// Predecoded basic-block execution engine.
//
// The two fast-forward engines (fastforward.go, spinff.go) remove the quiet
// cycles; this engine attacks the loud ones. When a single core is marching
// through straight-line code, Step still pays the full seven-phase toll per
// cycle — classify every core, arbitrate empty request lists, re-derive the
// MemOp, walk the opcode dispatch — even though nothing about the cycle is
// contended or observable from outside. The block engine executes those
// stretches from the image's precomputed basic-block tables (mem.BlockSet):
// a tight loop of fetch → (optional banked memory access) → execute, with
// all counter, busy-window and crossbar accounting applied in bulk at the
// end of the stretch, exactly as the equivalent Steps would have.
//
// Unlike the fast-forward leaps, these cycles are fully simulated — every
// instruction executes with architectural fidelity; only the per-cycle
// dispatch overhead is removed — so bit-identity with -exact holds by
// construction wherever the engine's preconditions do:
//
//   - exactly one core is running (gated/halted cores contribute constant
//     per-cycle counter increments, applied in bulk). A single requester is
//     always granted by the crossbars, never merged and never stalled, so
//     the per-cycle arbitration results are known statically;
//   - the stretch ends before anything external can intervene: the cycle
//     budget, the next ADC event (which can publish samples, raise IRQs and
//     roll the sample window) and the next scheduled wake all bound it;
//   - the engine yields to Step before any instruction it cannot reproduce:
//     sync ISE, HALT, invalid encodings (mem.ClassStop), MMIO accesses
//     (dedicated register file with platform side effects), faulting
//     fetches and data accesses (Step re-runs the cycle and faults with
//     exact-mode accounting);
//   - no event tracer is attached (the gate mirrors the spin engine's).
//
// The one regime deliberately left to others is the short busy-wait loop:
// executing a spin loop instruction-by-instruction — even cheaply — is
// asymptotically worse than the spin engine's O(1) leap per proven period.
// On a taken backward branch of spin-detectable distance the engine
// therefore yields stickily (blockYield) and lets Step feed the spin
// detector until the PC leaves that loop.
//
// Like the fast-forward engines, everything here is simulation-process
// state: Restore and Fork reset it (snapshot.go) and leap/engagement
// placement may differ across Run chunkings while every architectural
// observable stays bit-identical — enforced by blockengine_test.go, the
// golden-equivalence suites and the scenario matrix.

package platform

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
)

// blockEngine is the engine state embedded in Platform.
type blockEngine struct {
	// set is the image's basic-block metadata, built once in New and shared
	// with forks (the image is immutable).
	set *mem.BlockSet

	// Sticky spin-yield span: while the single running core's PC lies in
	// [yieldLo, yieldHi] the engine stays off, so the spin detector sees an
	// uninterrupted stepped instruction stream (spinff.go).
	yield            bool
	yieldLo, yieldHi int

	// Wall-clock diagnostics (process state, not snapshotted).
	runs   uint64 // fast-path engagements that executed at least one cycle
	cycles uint64 // cycles executed on the fast path
}

// BlockRuns returns how many times the basic-block engine engaged its fast
// path for at least one cycle. Like FFLeaps it is a wall-clock diagnostic:
// identical simulations chunked differently may engage differently while
// producing bit-identical results. Restore and Fork reset it.
func (p *Platform) BlockRuns() uint64 { return p.block.runs }

// BlockCycles returns how many cycles were executed by the basic-block
// engine instead of through Step's seven phases. Unlike the fast-forward
// engines' skipped cycles these were fully simulated — only the per-cycle
// dispatch overhead was avoided — so the figure is a wall-clock diagnostic,
// not a statement about the workload.
func (p *Platform) BlockCycles() uint64 { return p.block.cycles }

// blockReset clears the engine's sticky yield and diagnostics: Restore,
// Fork. The block tables themselves derive from the immutable image and
// survive.
func (p *Platform) blockReset() {
	p.block.yield = false
	p.block.runs = 0
	p.block.cycles = 0
}

// blockRun executes as many upcoming cycles as it can prove safe on the
// basic-block fast path, stopping at limit (the caller's exclusive cycle
// budget). It either advances the platform exactly as the same number of
// Steps would, or returns having touched nothing — every bail-out happens
// before the cycle being abandoned has any effect, so Step re-simulates it
// with exact-mode accounting.
func (p *Platform) blockRun(limit uint64) {
	if p.fault != nil {
		return
	}
	// Exactly one running core; gated and halted cores contribute fixed
	// per-cycle counter increments.
	anchor := -1
	var gated, halted uint64
	for c := 0; c < p.ncore; c++ {
		switch p.sync.State(c) {
		case core.StateRunning:
			if anchor >= 0 {
				return // contended fabric: Step arbitrates
			}
			anchor = c
		case core.StateGated:
			gated++
		default:
			halted++
		}
	}
	if anchor < 0 {
		return // fully idle: the quiescence engine's territory
	}
	cr := p.cores[anchor]
	if p.block.yield {
		if cr.PC >= p.block.yieldLo && cr.PC <= p.block.yieldHi {
			return // inside a yielded spin loop: keep stepping
		}
		p.block.yield = false
	}
	if cr.Fetched {
		return // held instruction from a DM stall: Step must replay it
	}
	if !p.sync.Runnable(anchor, p.cycle+1) {
		return // inside its wake latency: these are idle cycles
	}
	if cr.Bubble == 0 && p.block.set.RunLen(cr.PC) == 0 {
		return // parked on a stop instruction: nothing for the fast path
	}

	// The stretch must end before anything external can intervene: the
	// budget, the next ADC event (sample publications, IRQ wakes, overruns,
	// sample-window rollover) and any scheduled wake latency expiry.
	end := limit
	if w, ok := p.sync.NextWake(p.cycle); ok && w-1 < end {
		end = w - 1
	}
	if p.adc != nil {
		if e := p.adc.NextEventCycle(); e-1 < end {
			end = e - 1
		}
	}
	if end <= p.cycle {
		return
	}

	start := p.cycle
	cyc := start
	var instrs, bubbles, taken, reads, writes uint64
loop:
	for cyc < end {
		// Pipeline-refill bubbles burn whole cycles without fetching.
		if cr.Bubble > 0 {
			n := uint64(cr.Bubble)
			if room := end - cyc; n > room {
				n = room
			}
			cr.Bubble -= int(n)
			bubbles += n
			cyc += n
			continue
		}
		n := p.block.set.RunLen(cr.PC)
		if n == 0 {
			break // stop instruction ahead: yield to Step
		}
		if room := end - cyc; uint64(n) > room {
			n = int(room)
		}
		for i := 0; i < n; i++ {
			ins, ok := p.imem.Fetch(cr.PC)
			if !ok {
				break loop // Step will fault with exact accounting
			}
			var loadVal uint16
			switch p.block.set.Class(cr.PC) {
			case mem.ClassLoad:
				addr := cr.Regs[ins.Rs1] + uint16(ins.Imm)
				if isa.IsMMIO(addr) {
					break loop // MMIO interacts with platform state
				}
				b, o := p.mapper.Map(anchor, addr)
				v, ok := p.dmem.Read(b, o)
				if !ok {
					break loop // powered-off bank: Step will fault
				}
				loadVal = v
				reads++
			case mem.ClassStore:
				addr := cr.Regs[ins.Rs1] + uint16(ins.Imm)
				if isa.IsMMIO(addr) {
					break loop
				}
				b, o := p.mapper.Map(anchor, addr)
				if !p.dmem.Write(b, o, cr.Regs[ins.Rs2]) {
					break loop
				}
				writes++
			}
			// Keep IR on the same trajectory Step's fetch phase would, so
			// core snapshots stay bit-identical across engines.
			prevPC := cr.PC
			cr.IR = ins
			if cr.ExecuteBlock(ins, loadVal) {
				taken++
				instrs++
				cyc++
				if cr.PC <= prevPC && prevPC-cr.PC < core.MaxSpinPeriod {
					// A tight backward loop is the spin detector's domain:
					// its O(1) leap beats executing every iteration. Yield
					// stickily until the PC leaves the loop body.
					p.block.yield = true
					p.block.yieldLo, p.block.yieldHi = cr.PC, prevPC
					break loop
				}
				continue
			}
			instrs++
			cyc++
		}
	}
	if cyc == start {
		return
	}

	// Bulk accounting: exactly what cyc-start Steps over this stretch would
	// have accumulated. Single-requester arbitration is always granted,
	// never merged, never stalled, so each executed instruction is one IM
	// request and access, and each load/store one granted DM request.
	n := cyc - start
	p.ctr.Cycles += n
	p.ctr.Instrs += instrs
	p.ctr.CoreActive += instrs
	p.ctr.CoreStall += bubbles
	p.ctr.BranchBubbles += taken
	p.ctr.UngatedCoreCycles += n
	p.ctr.CoreGated += n * gated
	p.ctr.CoreHalted += n * halted
	p.ctr.IMReqs += instrs
	p.ctr.IMAccesses += instrs
	p.ctr.XbarReqs += instrs + reads + writes
	p.ctr.DMReqs += reads + writes
	p.ctr.DMReads += reads
	p.ctr.DMWrites += writes
	p.perCoreBusy[anchor] += n
	p.windowBusy[anchor] += uint32(n)
	p.cycle = cyc
	p.sync.FastForward(cyc)
	p.imx.AdvanceN(n)
	p.dmx.AdvanceN(n)
	p.lastCycleIdle = false
	p.block.runs++
	p.block.cycles += n
	// One span per stride: the engine bails before MMIO, sync ISE, HALT
	// and faults, so no boundary event can fall inside the stretch.
	p.obs.Span(obs.KindBlockStride, obs.TrackEngine, 0, start, n, int64(instrs), 0)
	p.obs.Observe("engine.block_stride_cycles", n)

	// Spin-detector hygiene: the stretch was not stepped, so the anchor's
	// PC history is stale and any armed probe assumed contiguity it no
	// longer has. Reset both; detection resumes on the stepped path.
	p.spin.track[anchor].Reset()
	if p.spin.armed {
		p.spin.armed = false
		p.spin.nextCheck = p.cycle + spinRecheck
	}
}
