package platform

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/power"
)

// buildImage assembles each source as one code block placed at the given
// bases, with entries one per source.
func buildImage(t *testing.T, sharedLimit uint16, nsync int, srcs []string, bases []int, data []DataSeg) *Image {
	t.Helper()
	img := &Image{SharedLimit: sharedLimit, NumSyncPoints: nsync, Shared: data}
	for i, src := range srcs {
		code, _, _, err := asm.AssembleSnippet(src, bases[i], 0)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		img.Code = append(img.Code, CodeSeg{Base: bases[i], Words: code})
		img.Entries = append(img.Entries, bases[i])
		img.StaticInstrs += len(code)
		for _, w := range code {
			if isa.Decode(w).Op.IsSyncExtension() {
				img.StaticSyncInstrs++
			}
		}
	}
	return img
}

func mcCfg() Config {
	return Config{Arch: power.MC, ClockHz: 1e6, VoltageV: 0.5}
}

func scCfg() Config {
	return Config{Arch: power.SC, ClockHz: 1e6, VoltageV: 0.6}
}

func TestSCSimpleProgram(t *testing.T) {
	src := `
.code main
    li   r1, 5
    li   r2, 7
    add  r3, r1, r2
    li   r4, 100
    sw   r3, 0(r4)
    halt
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, []DataSeg{{Base: 100, Words: []uint16{0}}})
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("program did not halt")
	}
	v, ok := p.PeekData(0, 100)
	if !ok || v != 12 {
		t.Errorf("mem[100] = %d (%v), want 12", v, ok)
	}
	c := p.Counters()
	if c.Instrs == 0 || c.IMAccesses != c.IMReqs {
		t.Errorf("SC counters odd: %+v", c)
	}
}

func TestSCCoreIDAndCycleMMIO(t *testing.T) {
	src := `
.code main
    li   r4, 0x7F00    ; RegCoreID
    lw   r1, 0(r4)
    li   r4, 0x7F01    ; RegCycleLo
    lw   r2, 0(r4)
    li   r4, 200
    sw   r1, 0(r4)
    sw   r2, 1(r4)
    halt
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, []DataSeg{{Base: 200, Words: []uint16{9, 9}}})
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	id, _ := p.PeekData(0, 200)
	cyc, _ := p.PeekData(0, 201)
	if id != 0 {
		t.Errorf("core id = %d", id)
	}
	if cyc == 0 {
		t.Error("cycle counter must be non-zero")
	}
	if p.Counters().MMIOReads != 2 {
		t.Errorf("MMIOReads = %d, want 2", p.Counters().MMIOReads)
	}
}

func TestSCADCSleepLoop(t *testing.T) {
	// Subscribe to channel 0, collect 4 samples into a buffer, halt.
	src := `
.code main
    li   r4, 0x7F03     ; RegIRQSub
    li   r1, 1          ; IRQADC0
    sw   r1, 0(r4)
    li   r2, 300        ; buffer
    li   r3, 0          ; count
    li   r6, 4
loop:
    sleep
    li   r4, 0x7F0B     ; RegADCStatus
    lw   r1, 0(r4)
    andi r1, r1, 1
    beqz r1, loop
    li   r4, 0x7F04     ; RegIRQPend: acknowledge
    li   r1, 1
    sw   r1, 0(r4)
    li   r4, 0x7F08     ; RegADCData0
    lw   r1, 0(r4)
    add  r5, r2, r3
    sw   r1, 0(r5)
    addi r3, r3, 1
    blt  r3, r6, loop
    halt
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, []DataSeg{{Base: 300, Words: make([]uint16, 4)}})
	cfg := scCfg()
	cfg.SampleRateHz = 250
	cfg.Traces[0] = []int16{11, 22, 33, 44, 55}
	p, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(30_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("did not halt: ADC sleep loop stuck")
	}
	for i, want := range []uint16{11, 22, 33, 44} {
		if v, _ := p.PeekData(0, uint16(300+i)); v != want {
			t.Errorf("sample %d = %d, want %d", i, v, want)
		}
	}
	if p.Overruns() != 0 {
		t.Errorf("overruns = %d", p.Overruns())
	}
	c := p.Counters()
	if c.CoreGated == 0 {
		t.Error("core should have been clock-gated while waiting")
	}
	if c.IRQs < 4 {
		t.Errorf("IRQs = %d, want >= 4", c.IRQs)
	}
}

const producerSrc = `
.equ PT, 0
.equ WIDX, 16
.equ BUF, 17
.code producer
    li   r2, 0        ; widx
    li   r3, 1        ; value
    li   r4, 6        ; produce 1..5
ploop:
    sinc #PT
    li   r5, BUF
    add  r5, r5, r2
    sw   r3, 0(r5)
    addi r2, r2, 1
    li   r6, WIDX
    sw   r2, 0(r6)
    sdec #PT
    addi r3, r3, 1
    blt  r3, r4, ploop
    halt
`

const consumerSrc = `
.equ PT, 0
.equ WIDX, 16
.equ BUF, 17
.equ RESULT, 30
.code consumer
    li   r2, 0      ; ridx
    li   r7, 0      ; sum
    li   r4, 5
cloop:
    snop #PT
    li   r6, WIDX
    lw   r5, 0(r6)
    bne  r5, r2, have
    sleep
    j    cloop
have:
    li   r6, BUF
    add  r6, r6, r2
    lw   r5, 0(r6)
    add  r7, r7, r5
    addi r2, r2, 1
    blt  r2, r4, cloop
    li   r6, RESULT
    sw   r7, 0(r6)
    halt
`

func producerConsumerImage(t *testing.T) *Image {
	return buildImage(t, 0x2000, 1,
		[]string{producerSrc, consumerSrc},
		[]int{0, isa.IMBankWords}, // separate IM banks
		[]DataSeg{{Base: 16, Words: make([]uint16, 32)}})
}

func TestMCProducerConsumer(t *testing.T) {
	p, err := New(mcCfg(), producerConsumerImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatalf("deadlock: states %v %v, cycle %d", p.CoreState(0), p.CoreState(1), p.Cycle())
	}
	sum, _ := p.PeekData(0, 30)
	if sum != 15 {
		t.Errorf("consumer sum = %d, want 15", sum)
	}
	c := p.Counters()
	if c.SyncOps == 0 || c.SyncPointWrites == 0 {
		t.Error("sync activity expected")
	}
	if len(p.Violations()) != 0 {
		t.Errorf("violations: %v", p.Violations())
	}
	if p.ActiveIMBanks() != 2 {
		t.Errorf("active IM banks = %d, want 2", p.ActiveIMBanks())
	}
	if p.ActiveDMBanks() != isa.DMBanks {
		t.Errorf("active DM banks = %d, want all %d (ATU rule)", p.ActiveDMBanks(), isa.DMBanks)
	}
}

func TestMCProducerConsumerConsumerFaster(t *testing.T) {
	// Same program, but verify the consumer actually sleeps and is woken:
	// the consumer spins up before the producer finishes an item.
	p, err := New(mcCfg(), producerConsumerImage(t))
	if err != nil {
		t.Fatal(err)
	}
	sawGated := false
	for i := 0; i < 10_000 && !p.AllHalted(); i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		if p.CoreState(1) == core.StateGated {
			sawGated = true
		}
	}
	if !sawGated {
		t.Error("consumer never clock-gated")
	}
	if p.Counters().SyncWakes == 0 {
		t.Error("no sync wakes recorded")
	}
	if sum, _ := p.PeekData(0, 30); sum != 15 {
		t.Errorf("sum = %d, want 15", sum)
	}
}

// lockstepSrc runs an identical compute loop on both cores: sums a shared
// table into a private accumulator, stores the result to a per-core shared
// mailbox, then halts. Both cores execute the same code words from the same
// IM bank: in lock-step, every fetch pair merges into one broadcast access.
const lockstepSrc = `
.equ TAB, 16
.equ OUT, 80
.code work
    li   r4, 0x7F00   ; core id
    lw   r10, 0(r4)
    li   r2, TAB
    li   r3, 0        ; i
    li   r4, 32       ; n
    li   r7, 0        ; sum
wloop:
    add  r5, r2, r3
    lw   r6, 0(r5)
    add  r7, r7, r6
    addi r3, r3, 1
    blt  r3, r4, wloop
    li   r6, OUT
    add  r6, r6, r10
    sw   r7, 0(r6)
    halt
`

func lockstepImage(t *testing.T) *Image {
	tab := make([]uint16, 32)
	total := uint16(0)
	for i := range tab {
		tab[i] = uint16(i * 3)
		total += tab[i]
	}
	img := buildImage(t, 0x2000, 0, []string{lockstepSrc}, []int{0},
		[]DataSeg{{Base: 16, Words: tab}, {Base: 80, Words: make([]uint16, 8)}})
	// Both cores share the single code segment and entry.
	img.Entries = append(img.Entries, img.Entries[0])
	return img
}

func TestMCLockStepBroadcast(t *testing.T) {
	img := lockstepImage(t)
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("did not halt")
	}
	want := uint16(0)
	for i := 0; i < 32; i++ {
		want += uint16(i * 3)
	}
	for c := 0; c < 2; c++ {
		if v, _ := p.PeekData(0, uint16(80+c)); v != want {
			t.Errorf("core %d sum = %d, want %d", c, v, want)
		}
	}
	ctr := p.Counters()
	if ctr.IMAccesses >= ctr.IMReqs {
		t.Errorf("no broadcast merging: reqs %d, accesses %d", ctr.IMReqs, ctr.IMAccesses)
	}
	// Perfect lock-step would merge nearly every fetch pair: expect close
	// to 50% broadcast (both cores run the identical instruction stream).
	if pct := ctr.IMBroadcastPct(); pct < 45 {
		t.Errorf("IM broadcast = %.1f%%, want ~50%%", pct)
	}
	// The shared table reads also merge.
	if ctr.DMBroadcastPct() <= 0 {
		t.Errorf("DM broadcast = %.1f%%, want > 0", ctr.DMBroadcastPct())
	}
}

// divergeSrc exercises lock-step recovery across a data-dependent branch
// (paper Fig. 3-b): each core runs a per-core-length inner loop wrapped in
// SINC/SDEC+SLEEP. After the sync point releases, the cores are re-aligned.
const divergeSrc = `
.equ PT, 0
.equ OUT, 80
.code work
    li   r4, 0x7F00
    lw   r10, 0(r4)    ; core id
    ; divergent region: loop (id+1)*8 times
    sinc #PT
    addi r3, r10, 1
    slli r3, r3, 3
    li   r7, 0
dloop:
    addi r7, r7, 1
    blt  r7, r3, dloop
    sdec #PT
    sleep
    ; aligned region: 32 aligned iterations
    li   r3, 0
    li   r4, 32
    li   r7, 0
aloop:
    addi r7, r7, 2
    addi r3, r3, 1
    blt  r3, r4, aloop
    li   r6, OUT
    add  r6, r6, r10
    sw   r7, 0(r6)
    halt
`

func TestMCLockStepRecoveryAfterDivergence(t *testing.T) {
	img := buildImage(t, 0x2000, 1, []string{divergeSrc}, []int{0},
		[]DataSeg{{Base: 16, Words: make([]uint16, 8)}, {Base: 80, Words: make([]uint16, 8)}})
	img.Entries = append(img.Entries, img.Entries[0])
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatalf("did not halt: %v %v", p.CoreState(0), p.CoreState(1))
	}
	for c := 0; c < 2; c++ {
		if v, _ := p.PeekData(0, uint16(80+c)); v != 64 {
			t.Errorf("core %d result = %d, want 64", c, v)
		}
	}
	// The aligned region dominates; most fetches after recovery merge.
	if pct := p.Counters().IMBroadcastPct(); pct < 25 {
		t.Errorf("IM broadcast = %.1f%% — lock-step was not recovered", pct)
	}
	if len(p.Violations()) != 0 {
		t.Errorf("violations: %v", p.Violations())
	}
}

// busywaitProducer/Consumer implement the same pipeline without the sync ISE
// (the paper's "MC (no synch)" bar in Figure 6): flags in shared memory and
// spin loops.
const busyProducerSrc = `
.equ WIDX, 16
.equ BUF, 17
.code producer
    li   r2, 0
    li   r3, 1
    li   r4, 6
ploop:
    li   r5, BUF
    add  r5, r5, r2
    sw   r3, 0(r5)
    addi r2, r2, 1
    li   r6, WIDX
    sw   r2, 0(r6)
    addi r3, r3, 1
    blt  r3, r4, ploop
    halt
`

const busyConsumerSrc = `
.equ WIDX, 16
.equ BUF, 17
.equ RESULT, 30
.code consumer
    li   r2, 0
    li   r7, 0
    li   r4, 5
cloop:
    li   r6, WIDX
    lw   r5, 0(r6)
    beq  r5, r2, cloop   ; active waiting
    li   r6, BUF
    add  r6, r6, r2
    lw   r5, 0(r6)
    add  r7, r7, r5
    addi r2, r2, 1
    blt  r2, r4, cloop
    li   r6, RESULT
    sw   r7, 0(r6)
    halt
`

func TestMCNoSyncBusyWait(t *testing.T) {
	img := buildImage(t, 0x2000, 0,
		[]string{busyProducerSrc, busyConsumerSrc},
		[]int{0, isa.IMBankWords},
		[]DataSeg{{Base: 16, Words: make([]uint16, 32)}})
	cfg := mcCfg()
	cfg.Arch = power.MCNoSync
	p, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("busy-wait version did not finish")
	}
	if sum, _ := p.PeekData(0, 30); sum != 15 {
		t.Errorf("sum = %d, want 15", sum)
	}
	c := p.Counters()
	if c.SyncOps != 0 || c.SyncInstrs != 0 {
		t.Error("no sync ISE activity expected")
	}
	if c.CoreGated != 0 {
		t.Error("busy-waiting cores must never be clock-gated")
	}
}

func TestIMBankConflictSerializes(t *testing.T) {
	// Two different programs placed in the same IM bank: every cycle both
	// cores fetch different addresses from one bank and must serialize.
	a := ".code a\nx: addi r1, r1, 1\n blt r1, r2, x\n halt\n"
	b := ".code b\ny: addi r1, r1, 1\n blt r1, r2, y\n halt\n"
	img := buildImage(t, 0x2000, 0, []string{a, b}, []int{0, 100}, nil)
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	// Set both loop bounds via direct register poke: run a few cycles
	// then inspect stalls. Loop bound r2=0 means branch never taken
	// after first increment; just run to halt.
	if err := p.Run(1_000); err != nil {
		t.Fatal(err)
	}
	if p.Counters().IMConflict == 0 {
		t.Error("expected IM conflicts between same-bank programs")
	}
	if p.Counters().CoreStall == 0 {
		t.Error("expected stall cycles")
	}
}

func TestPrivateDataIsolation(t *testing.T) {
	// Each core stores its id at the same private logical address, then
	// reads it back into a shared mailbox. Values must not interfere.
	src := `
.equ PRIVADDR, 0x3000
.equ OUT, 40
.code work
    li   r4, 0x7F00
    lw   r10, 0(r4)
    li   r2, PRIVADDR
    addi r3, r10, 77
    sw   r3, 0(r2)
    ; read back
    lw   r5, 0(r2)
    li   r6, OUT
    add  r6, r6, r10
    sw   r5, 0(r6)
    halt
`
	img := buildImage(t, 0x2000, 0, []string{src}, []int{0},
		[]DataSeg{{Base: 40, Words: make([]uint16, 8)}})
	img.Entries = append(img.Entries, img.Entries[0])
	img.Entries = append(img.Entries, img.Entries[0])
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if v, _ := p.PeekData(0, uint16(40+c)); v != uint16(77+c) {
			t.Errorf("core %d read back %d, want %d", c, v, 77+c)
		}
	}
}

func TestPrivSegmentLoading(t *testing.T) {
	src := `
.equ PRIVADDR, 0x3000
.equ OUT, 40
.code work
    li r4, 0x7F00
    lw r10, 0(r4)
    li r2, PRIVADDR
    lw r5, 0(r2)
    li r6, OUT
    add r6, r6, r10
    sw r5, 0(r6)
    halt
`
	img := buildImage(t, 0x2000, 0, []string{src}, []int{0},
		[]DataSeg{{Base: 40, Words: make([]uint16, 4)}})
	img.Entries = append(img.Entries, img.Entries[0])
	img.Priv = []PrivSeg{
		{Core: 0, Base: 0x3000, Words: []uint16{111}},
		{Core: 1, Base: 0x3000, Words: []uint16{222}},
	}
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	v0, _ := p.PeekData(0, 40)
	v1, _ := p.PeekData(0, 41)
	if v0 != 111 || v1 != 222 {
		t.Errorf("private loads: got %d, %d; want 111, 222", v0, v1)
	}
}

func TestFetchFromPoweredOffBankFaults(t *testing.T) {
	src := ".code main\n j far\nfar:\n halt\n"
	code, _, _, err := asm.AssembleSnippet(src, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := &Image{
		Code:    []CodeSeg{{Base: 0, Words: code[:1]}}, // jump only; target bank never loaded
		Entries: []int{0},
	}
	// Point the jump far outside the loaded bank.
	img.Code[0].Words = []isa.Word{isa.MustEncode(isa.Instr{Op: isa.OpJAL, Rd: 0, Imm: 8000})}
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(10)
	if err == nil || !strings.Contains(err.Error(), "powered-off") {
		t.Errorf("want powered-off fetch fault, got %v", err)
	}
}

func TestDataAccessToPoweredOffBankFaults(t *testing.T) {
	// SC linear mapping: only the bank holding address 100 is on; address
	// 0x4000 lives in an unpowered bank.
	src := ".code main\n li r4, 0x4000\n lw r1, 0(r4)\n halt\n"
	img := buildImage(t, 0, 0, []string{src}, []int{0}, []DataSeg{{Base: 100, Words: []uint16{1}}})
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(10)
	if err == nil || !strings.Contains(err.Error(), "powered-off") {
		t.Errorf("want powered-off data fault, got %v", err)
	}
}

func TestDebugAndErrPorts(t *testing.T) {
	src := `
.code main
    li   r4, 0x7F10
    li   r1, 42
    sw   r1, 0(r4)
    li   r4, 0x7F11
    li   r1, 7
    sw   r1, 0(r4)
    halt
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(p.Debug()) != 1 || p.Debug()[0].Value != 42 {
		t.Errorf("debug = %v", p.Debug())
	}
	if len(p.ErrCodes()) != 1 || p.ErrCodes()[0].Value != 7 {
		t.Errorf("errs = %v", p.ErrCodes())
	}
}

func TestBranchBubbleAccounting(t *testing.T) {
	// A tight taken-branch loop: every iteration is 1 execute + 1 bubble.
	src := `
.code main
    li r1, 0
    li r2, 10
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	c := p.Counters()
	if c.BranchBubbles != 9 { // 9 taken, final fall-through
		t.Errorf("BranchBubbles = %d, want 9", c.BranchBubbles)
	}
	// Stall cycles include the burned bubbles.
	if c.CoreStall < 9 {
		t.Errorf("CoreStall = %d, want >= 9", c.CoreStall)
	}
}

func TestPowerReportFromRun(t *testing.T) {
	img := producerConsumerImage(t)
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	r, err := p.PowerReport(power.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalUW <= 0 {
		t.Error("power must be positive")
	}
	if r.ComponentUW(power.CompSync) <= 0 {
		t.Error("MC run must show synchronizer power")
	}
}

func TestConfigValidation(t *testing.T) {
	img := &Image{Entries: []int{0, 0}}
	if _, err := New(scCfg(), img); err == nil {
		t.Error("SC with 2 cores must fail")
	}
	img2 := &Image{Entries: []int{0}}
	cfg := scCfg()
	cfg.ClockHz = 0
	if _, err := New(cfg, img2); err == nil {
		t.Error("zero clock must fail")
	}
	if _, err := New(scCfg(), &Image{}); err == nil {
		t.Error("no entries must fail")
	}
}

func TestCodeOverheadPct(t *testing.T) {
	img := &Image{StaticInstrs: 200, StaticSyncInstrs: 5}
	if got := img.CodeOverheadPct(); got != 2.5 {
		t.Errorf("CodeOverheadPct = %v, want 2.5", got)
	}
	if (&Image{}).CodeOverheadPct() != 0 {
		t.Error("empty image overhead must be 0")
	}
}

func TestMCDataSegmentOutsideMMIO(t *testing.T) {
	img := &Image{
		Entries: []int{0},
		Code:    []CodeSeg{{Base: 0, Words: []isa.Word{isa.MustEncode(isa.Instr{Op: isa.OpHALT})}}},
		Shared:  []DataSeg{{Base: isa.MMIOBase - 1, Words: []uint16{1, 2}}},
	}
	if _, err := New(mcCfg(), img); err == nil {
		t.Error("data reaching MMIO must fail to load")
	}
}
