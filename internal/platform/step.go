package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interco"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Step simulates one platform clock cycle. It returns an error on an
// architectural fault (fetch from a powered-off bank, invalid opcode,
// data access to a powered-off bank).
func (p *Platform) Step() error {
	if p.fault != nil {
		return p.fault
	}
	p.cycle++
	cyc := p.cycle

	// Peripherals first: samples published at cycle T are visible to
	// instructions executing at T, and their interrupts wake cores for T+2.
	if p.adc != nil {
		p.adc.Tick(cyc)
	}

	// Phase 1: classify cores and collect fetch requests.
	p.imReqs = p.imReqs[:0]
	p.imWho = p.imWho[:0]
	for c := 0; c < p.ncore; c++ {
		cr := p.cores[c]
		switch {
		case p.sync.State(c) == core.StateHalted:
			p.status[c] = stHalted
		case !p.sync.Runnable(c, cyc):
			p.status[c] = stIdle
		case cr.Bubble > 0:
			cr.Bubble--
			p.status[c] = stBubble
		case cr.Fetched:
			// Held instruction from a previous DM stall: no fetch.
			p.status[c] = stExec
		default:
			p.status[c] = stExec // provisional; may become stIMStall
			pc := cr.PC
			p.imReqs = append(p.imReqs, interco.Request{
				Core: c, Bank: isa.IMBankOf(pc), Offset: pc,
			})
			p.imWho = append(p.imWho, c)
		}
	}

	// Phase 2: instruction fetch through the IM network.
	if len(p.imReqs) > 0 {
		res := p.imx.Arbitrate(p.imReqs)
		p.ctr.IMReqs += uint64(len(p.imReqs))
		p.ctr.IMAccesses += uint64(res.Accesses)
		p.ctr.IMConflict += uint64(res.Stalled)
		p.ctr.XbarReqs += uint64(len(p.imReqs))
		for i := range p.imReqs {
			c := p.imWho[i]
			if !p.imReqs[i].Granted {
				p.status[c] = stIMStall
				continue
			}
			cr := p.cores[c]
			ins, ok := p.imem.Fetch(cr.PC)
			if !ok {
				p.fault = fmt.Errorf("platform: cycle %d: core %d fetch from %#x (powered-off bank or out of range)", cyc, c, cr.PC)
				return p.fault
			}
			cr.IR = ins
			cr.Fetched = true
		}
	}

	// Phase 3: data requests for cores still on track to execute.
	p.dmReqs = p.dmReqs[:0]
	p.dmWho = p.dmWho[:0]
	for c := 0; c < p.ncore; c++ {
		if p.status[c] != stExec {
			continue
		}
		cr := p.cores[c]
		mop := cr.MemRequest(cr.IR)
		p.memOps[c] = mop
		if !mop.Valid {
			continue
		}
		if p.spin.tracking {
			// Spin-detector bookkeeping: writes (banked or MMIO) disqualify
			// the window, reads join the observed-address set. Stall retries
			// re-note the same read; the set deduplicates.
			if mop.Write {
				p.spin.track[c].NoteSideEffect()
			} else {
				p.spin.track[c].NoteRead(mop.Addr)
			}
		}
		if isa.IsMMIO(mop.Addr) {
			// MMIO has a dedicated register file: no arbitration.
			if mop.Write {
				p.mmioWrite(c, mop.Addr, mop.Data)
				p.ctr.MMIOWrites++
			} else {
				p.loadVal[c] = p.mmioRead(c, mop.Addr)
				p.ctr.MMIOReads++
			}
			continue
		}
		b, o := p.mapper.Map(c, mop.Addr)
		p.dmReqs = append(p.dmReqs, interco.Request{
			Core: c, Bank: b, Offset: o, Write: mop.Write,
		})
		p.dmWho = append(p.dmWho, c)
	}

	// Phase 4: data-memory arbitration and access.
	if len(p.dmReqs) > 0 {
		res := p.dmx.Arbitrate(p.dmReqs)
		p.ctr.DMReqs += uint64(len(p.dmReqs))
		p.ctr.DMConflict += uint64(res.Stalled)
		p.ctr.XbarReqs += uint64(len(p.dmReqs))
		for i := range p.dmReqs {
			c := p.dmWho[i]
			r := &p.dmReqs[i]
			if !r.Granted {
				p.status[c] = stDMStall
				continue
			}
			if r.Write {
				if !r.Merged {
					p.ctr.DMWrites++
				}
				if !p.dmem.Write(r.Bank, r.Offset, p.memOps[c].Data) {
					p.fault = fmt.Errorf("platform: cycle %d: core %d write to powered-off bank %d", cyc, c, r.Bank)
					return p.fault
				}
			} else {
				if !r.Merged {
					p.ctr.DMReads++
				}
				v, ok := p.dmem.Read(r.Bank, r.Offset)
				if !ok {
					p.fault = fmt.Errorf("platform: cycle %d: core %d read from powered-off bank %d", cyc, c, r.Bank)
					return p.fault
				}
				p.loadVal[c] = v
			}
		}
	}

	// Phase 5: execute.
	for c := 0; c < p.ncore; c++ {
		if p.status[c] != stExec {
			continue
		}
		cr := p.cores[c]
		ins := cr.IR
		pc := cr.PC
		eff := cr.Execute(ins, p.loadVal[c], p)
		if eff.Fault != nil {
			p.fault = eff.Fault
			return p.fault
		}
		p.ctr.Instrs++
		if ins.Op.IsSyncExtension() {
			p.ctr.SyncInstrs++
		}
		if eff.Taken {
			p.ctr.BranchBubbles++
		}
		if eff.Halted && p.tracer != nil {
			p.tracer.Record(cyc, c, trace.KindHalt, 0, 0)
		}
		if p.spin.tracking {
			t := &p.spin.track[c]
			t.NoteExec(pc)
			if ins.Op.IsSyncExtension() || ins.Op == isa.OpHALT {
				// Synchronization operations, SLEEP and HALT are side
				// effects a spin loop must not contain.
				t.NoteSideEffect()
			}
		}
	}

	// Phase 6: commit merged synchronization operations and wakes.
	p.sync.Commit(cyc)

	// Phase 7: cycle accounting. idle tracks whether this cycle performed
	// any work at all; a fully idle cycle arms the fast-forward engine
	// (fastforward.go), which may leap over the identical cycles to come.
	idle := true
	tracing := p.tracer != nil
	statusChanged := false
	for c := 0; c < p.ncore; c++ {
		st := p.status[c]
		switch st {
		case stExec:
			idle = false
			p.ctr.CoreActive++
			p.ctr.UngatedCoreCycles++
			p.perCoreBusy[c]++
			p.windowBusy[c]++
		case stIMStall, stDMStall:
			idle = false
			p.ctr.CoreStall++
			p.ctr.UngatedCoreCycles++
			p.perCoreBusy[c]++
			p.windowBusy[c]++
		case stBubble:
			idle = false
			p.ctr.CoreStall++
			p.ctr.UngatedCoreCycles++
			p.perCoreBusy[c]++
			p.windowBusy[c]++
		case stIdle:
			p.ctr.CoreGated++
		case stHalted:
			p.ctr.CoreHalted++
		}
		if tracing && st != p.lastStatus[c] {
			statusChanged = true
		}
	}
	// Per-sample-window worst-case tracking.
	if p.adc != nil {
		if n := p.adc.SamplesPublished(); n != p.lastSample {
			p.lastSample = n
			if p.tracer != nil {
				p.tracer.Record(cyc, -1, trace.KindSample, int32(n), 0)
			}
			for c := 0; c < p.ncore; c++ {
				if uint64(p.windowBusy[c]) > p.maxSampleBusy {
					p.maxSampleBusy = uint64(p.windowBusy[c])
				}
				p.windowBusy[c] = 0
			}
		}
	}

	// Optional event tracing: state transitions only, detected during the
	// accounting loop above, so both untraced runs and steady-state traced
	// stretches skip this walk entirely.
	if tracing && statusChanged {
		for c := 0; c < p.ncore; c++ {
			st := p.status[c]
			if st == p.lastStatus[c] {
				continue
			}
			switch st {
			case stExec:
				if p.lastStatus[c] == stIdle {
					p.tracer.Record(cyc, c, trace.KindWake, 0, 0)
				}
				p.tracer.Record(cyc, c, trace.KindState, trace.StateExec, 0)
			case stIMStall, stDMStall:
				p.tracer.Record(cyc, c, trace.KindState, trace.StateStall, 0)
			case stBubble:
				p.tracer.Record(cyc, c, trace.KindState, trace.StateBubble, 0)
			case stIdle:
				p.tracer.Record(cyc, c, trace.KindState, trace.StateIdle, 0)
			case stHalted:
				// Recorded at execute time (the run may end before the
				// last core's state transition is observed).
			}
			p.lastStatus[c] = st
		}
	}
	p.ctr.Cycles++
	p.imx.Advance()
	p.dmx.Advance()
	p.lastCycleIdle = idle
	return nil
}

// PostSync implements cpu.Env.
func (p *Platform) PostSync(coreID int, kind isa.Opcode, point int) {
	if p.tracer != nil {
		p.tracer.Record(p.cycle, coreID, trace.KindSync, int32(kind), int32(point))
	}
	p.sync.Post(coreID, kind, point)
}

// RequestSleep implements cpu.Env.
func (p *Platform) RequestSleep(coreID int) bool {
	gated := p.sync.RequestSleep(coreID)
	if p.tracer != nil {
		arg := int32(0)
		if gated {
			arg = 1
		}
		p.tracer.Record(p.cycle, coreID, trace.KindSleep, arg, 0)
	}
	if gated {
		p.obs.Instant(obs.KindSleep, obs.TrackCore, int32(coreID), p.cycle, 0, 0)
	}
	return gated
}

// Halt implements cpu.Env.
func (p *Platform) Halt(coreID int) {
	p.obs.Instant(obs.KindHalt, obs.TrackCore, int32(coreID), p.cycle, 0, 0)
	p.sync.Halt(coreID)
}

func (p *Platform) mmioRead(c int, addr uint16) uint16 {
	switch addr {
	case isa.RegCoreID:
		return uint16(c)
	case isa.RegCycleLo:
		return uint16(p.cycle)
	case isa.RegCycleHi:
		return uint16(p.cycle >> 16)
	case isa.RegIRQSub:
		return p.sync.Subscription(c)
	case isa.RegIRQPend:
		return p.sync.Pending(c)
	case isa.RegADCData0, isa.RegADCData1, isa.RegADCData2:
		if p.adc == nil {
			return 0
		}
		return p.adc.ReadData(int(addr - isa.RegADCData0))
	case isa.RegADCStatus:
		if p.adc == nil {
			return 0
		}
		return p.adc.Status()
	case isa.RegADCOverrun:
		if p.adc == nil {
			return 0
		}
		return uint16(p.adc.Overruns())
	case isa.RegHostFlag:
		return p.hostFlag
	}
	return 0
}

func (p *Platform) mmioWrite(c int, addr, v uint16) {
	switch addr {
	case isa.RegIRQSub:
		p.sync.SetSubscription(c, v)
	case isa.RegIRQPend:
		p.sync.ClearPending(c, v)
	case isa.RegDebugOut:
		if len(p.debug) < p.cfg.MaxDebug {
			p.debug = append(p.debug, DebugEntry{Core: uint8(c), Cycle: p.cycle, Value: v})
		}
	case isa.RegDebugErr:
		if len(p.errCodes) < p.cfg.MaxDebug {
			p.errCodes = append(p.errCodes, DebugEntry{Core: uint8(c), Cycle: p.cycle, Value: v})
		}
	case isa.RegHostFlag:
		p.hostFlag = v
	}
}
