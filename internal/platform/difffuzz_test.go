// Randomized cross-engine differential fuzzer.
//
// Every fast-path engine in this package (idle fast-forward, spin
// fast-forward, single-core block runs, multi-core lock-step strides) claims
// bit-identity with the cycle-accurate Step loop. The hand-written
// differential suites pin the cases we thought of; this fuzzer generates the
// ones we didn't. Each case assembles a small random program from the real
// ISA encoder — arithmetic, loads/stores through shared and private windows,
// MMIO probes, forward and backward branches, jumps, sync ISE forms, SLEEP
// and HALT — lays it out across 1–4 cores in one of three placements
// (lock-step shared code, same-IM-bank private copies, distinct-bank private
// copies), runs it through an exact platform and a fast one (optionally
// chunked across two Run calls), and asserts that every observable —
// counters, registers, the entire data memory and its write generation, the
// synchronizer state, debug and violation streams, fault messages — is
// bit-identical.
//
// The generator is seeded deterministically per (core count, case index), so
// any failure reproduces in isolation:
//
//	go test ./internal/platform -run 'TestDiffFuzz/c2/case017' -args -difffuzz.seed=1
//
// CI runs the fuzzer with -difffuzz.cases=500 (see .github/workflows/ci.yml);
// the default stays small enough for the ordinary test suite.
package platform

import (
	"flag"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
)

var (
	fuzzCases = flag.Int("difffuzz.cases", 40, "differential fuzzer: cases per core count")
	fuzzSeed  = flag.Int64("difffuzz.seed", 1, "differential fuzzer: base seed")
)

// fuzzProg generates one random program: a register prologue, a weighted
// random body, and a tail that stores live registers and either halts or
// loops back over the body forever (the budget bounds looping programs).
func fuzzProg(rng *rand.Rand, nsync int) []isa.Word {
	aluR := []isa.Opcode{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpMUL, isa.OpMULH,
		isa.OpSLT, isa.OpSLTU, isa.OpMIN, isa.OpMAX, isa.OpMINU, isa.OpMAXU,
	}
	aluI := []isa.Opcode{
		isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI,
	}
	branches := []isa.Opcode{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	syncs := []isa.Opcode{isa.OpSINC, isa.OpSDEC, isa.OpSNOP}

	// Registers the generator writes freely; r4 (shared base) and r9
	// (private base) stay stable so most memory traffic lands in powered,
	// initialized windows.
	work := []uint8{1, 2, 3, 5, 6, 7, 8, 10, 11, 12}
	wr := func() uint8 { return work[rng.Intn(len(work))] }

	w := []isa.Word{
		enc(isa.OpADDI, 4, 0, 0, 256),                 // r4 = shared data base
		enc(isa.OpLUI, 9, 0, 0, 17),                   // r9 = 1088: private window
		enc(isa.OpADDI, 1, 0, 0, int32(rng.Intn(64))), // two live operands
		enc(isa.OpADDI, 2, 0, 0, int32(rng.Intn(64))-32),
	}
	bodyStart := int32(len(w))

	n := 10 + rng.Intn(25)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(100); {
		case k < 38: // R-type ALU
			w = append(w, enc(aluR[rng.Intn(len(aluR))], wr(), wr(), wr(), 0))
		case k < 58: // I-type ALU
			op := aluI[rng.Intn(len(aluI))]
			imm := int32(rng.Intn(1024)) - 512
			if op == isa.OpSLLI || op == isa.OpSRLI || op == isa.OpSRAI {
				imm = int32(rng.Intn(16))
			}
			w = append(w, enc(op, wr(), wr(), 0, imm))
		case k < 74: // load/store through a valid window
			base := uint8(4)
			if rng.Intn(2) == 0 {
				base = 9
			}
			off := int32(rng.Intn(48))
			if rng.Intn(2) == 0 {
				w = append(w, enc(isa.OpLW, wr(), base, 0, off))
			} else {
				w = append(w, enc(isa.OpSW, 0, base, wr(), off))
			}
		case k < 77: // MMIO probe: core ID read or debug-port write
			w = append(w, enc(isa.OpLUI, 13, 0, 0, 508)) // r13 = 0x7F00
			if rng.Intn(2) == 0 {
				w = append(w, enc(isa.OpLW, wr(), 13, 0, 0)) // RegCoreID
			} else {
				w = append(w, enc(isa.OpSW, 0, 13, wr(), 16)) // RegDebugOut
			}
		case k < 79: // wild pointer: exercises fault/violation equality
			w = append(w, enc(isa.OpLW, wr(), wr(), 0, int32(rng.Intn(1024))-512))
		case k < 89: // conditional branch, mostly forward, sometimes a loop
			imm := int32(1 + rng.Intn(3))
			if rng.Intn(5) == 0 && int32(len(w)) > bodyStart+4 {
				imm = -int32(1 + rng.Intn(4))
			}
			w = append(w, enc(branches[rng.Intn(len(branches))], 0, wr(), wr(), imm))
		case k < 92: // forward jump
			w = append(w, enc(isa.OpJAL, 3, 0, 0, int32(1+rng.Intn(3))))
		case k < 93: // dynamic jump to a small PC (r5-relative)
			w = append(w, enc(isa.OpADDI, 5, 0, 0, int32(rng.Intn(4))))
			w = append(w, enc(isa.OpJALR, 3, 5, 0, int32(bodyStart)))
		case k < 97 && nsync > 0: // sync ISE, including group-tagged forms
			op := syncs[rng.Intn(len(syncs))]
			pt := rng.Intn(nsync)
			w = append(w, enc(op, 0, 0, 0, int32(isa.SyncImm(rng.Intn(2)*2, pt))))
		case k < 98 && nsync > 0: // SEVS rendezvous (may gate until wake/budget)
			set := uint8(1 + rng.Intn(3))
			wait := uint8(rng.Intn(4))
			w = append(w, enc(isa.OpSEVS, 0, 0, 0, int32(isa.SevsImm(0, set, wait))))
		case k < 99: // SLEEP: gates until a sync event or forever
			w = append(w, enc(isa.OpSLEEP, 0, 0, 0, 0))
		default:
			w = append(w, enc(isa.OpNOP, 0, 0, 0, 0))
		}
	}

	// Tail: publish live registers, then halt or loop forever.
	w = append(w,
		enc(isa.OpSW, 0, 4, 1, 60),
		enc(isa.OpSW, 0, 4, 2, 61),
		enc(isa.OpSW, 0, 4, 3, 62),
	)
	if rng.Intn(10) < 7 {
		w = append(w, enc(isa.OpHALT, 0, 0, 0, 0))
	} else {
		w = append(w, enc(isa.OpJAL, 0, 0, 0, bodyStart-int32(len(w))-1))
	}
	return w
}

// fuzzImage lays out per-core programs in one of three placements and backs
// them with a shared data window, a private-window power domain and a
// sync-point mirror.
func fuzzImage(rng *rand.Rand, ncore, layout, nsync int) *Image {
	data := make([]uint16, 64)
	for i := range data {
		data[i] = uint16(rng.Intn(1 << 16))
	}
	img := &Image{
		SharedLimit:   1024,
		NumSyncPoints: nsync,
		Shared: []DataSeg{
			{Base: 0, Words: make([]uint16, 8)}, // sync mirror + SC bank-0 power
			{Base: 256, Words: data},
		},
	}
	switch layout {
	case 0: // lock-step: every core enters the same shared code
		words := fuzzProg(rng, nsync)
		img.Code = []CodeSeg{{Base: 0, Words: words}}
		for c := 0; c < ncore; c++ {
			img.Entries = append(img.Entries, 0)
		}
	case 1: // private copies packed into one IM bank: fetch conflicts
		for c := 0; c < ncore; c++ {
			base := c * 96
			img.Code = append(img.Code, CodeSeg{Base: base, Words: fuzzProg(rng, nsync)})
			img.Entries = append(img.Entries, base)
		}
	default: // private copies in distinct IM banks: divergent-PC strides
		for c := 0; c < ncore; c++ {
			base := c * isa.IMBankWords
			img.Code = append(img.Code, CodeSeg{Base: base, Words: fuzzProg(rng, nsync)})
			img.Entries = append(img.Entries, base)
		}
	}
	return img
}

// fuzzRun builds one platform and runs the budget, optionally split across
// two Run calls (fast-path engagement decisions depend on chunk boundaries;
// the observable result must not). The same split is applied to both
// platforms of a pair: every Run call steps at least one cycle even on a
// fully-halted platform, so chunking is itself observable — identically so
// in both modes.
func fuzzRun(t *testing.T, img *Image, cfg Config, budget uint64, split uint64) (*Platform, error) {
	t.Helper()
	p, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if split > 0 && split < budget {
		if err := p.Run(split); err != nil {
			return p, err
		}
		return p, p.Run(budget - split)
	}
	return p, p.Run(budget)
}

// assertFuzzIdentical is the full differential contract for one case.
func assertFuzzIdentical(t *testing.T, exact, fast *Platform, exactErr, fastErr error) {
	t.Helper()
	if (exactErr == nil) != (fastErr == nil) {
		t.Errorf("run outcomes diverge: exact err %v, fast err %v", exactErr, fastErr)
		return
	}
	if exactErr != nil && exactErr.Error() != fastErr.Error() {
		t.Errorf("fault messages diverge:\nexact: %v\nfast:  %v", exactErr, fastErr)
	}
	assertIdenticalNoTrace(t, exact, fast)
	if !reflect.DeepEqual(exact.Debug(), fast.Debug()) {
		t.Error("debug streams diverge")
	}
	if !reflect.DeepEqual(exact.ErrCodes(), fast.ErrCodes()) {
		t.Error("error-code streams diverge")
	}
	ev, fv := exact.Violations(), fast.Violations()
	if !reflect.DeepEqual(ev, fv) {
		t.Errorf("violations diverge:\nexact: %v\nfast:  %v", ev, fv)
	}
	if exact.dmem.Gen() != fast.dmem.Gen() {
		t.Errorf("DM write generation diverges: exact %d, fast %d", exact.dmem.Gen(), fast.dmem.Gen())
	}
	es, fs := exact.dmem.Snapshot(), fast.dmem.Snapshot()
	if !reflect.DeepEqual(es.Words, fs.Words) {
		for i := range es.Words {
			if es.Words[i] != fs.Words[i] {
				t.Errorf("DM[%d] diverges: exact %#04x, fast %#04x", i, es.Words[i], fs.Words[i])
			}
		}
	}
	if !reflect.DeepEqual(exact.sync.Snapshot(), fast.sync.Snapshot()) {
		t.Errorf("synchronizer state diverges:\nexact: %+v\nfast:  %+v", exact.sync.Snapshot(), fast.sync.Snapshot())
	}
	if exact.BlockCycles() != 0 || exact.BlockMCCycles() != 0 {
		t.Errorf("exact platform used the block engine (%d/%d cycles), want 0",
			exact.BlockCycles(), exact.BlockMCCycles())
	}
}

// TestDiffFuzz is the randomized cross-engine differential fuzzer. Failures
// dump the full program listing and the exact command that replays the one
// failing case.
func TestDiffFuzz(t *testing.T) {
	for ncore := 1; ncore <= 4; ncore++ {
		ncore := ncore
		t.Run(fmt.Sprintf("c%d", ncore), func(t *testing.T) {
			var blockCycles, mcCycles uint64
			for ci := 0; ci < *fuzzCases; ci++ {
				ci := ci
				t.Run(fmt.Sprintf("case%03d", ci), func(t *testing.T) {
					rng := rand.New(rand.NewSource(*fuzzSeed<<24 ^ int64(ncore)<<16 ^ int64(ci)))
					layout := rng.Intn(3)
					if ncore == 1 {
						layout = 0
					}
					const nsync = 4
					img := fuzzImage(rng, ncore, layout, nsync)

					cfg := mcCfg()
					if ncore == 1 && rng.Intn(2) == 0 {
						cfg = scCfg()
						img.SharedLimit = 0
					}
					budget := uint64(2000 + rng.Intn(4000))
					var split uint64
					if rng.Intn(2) == 0 {
						split = 1 + uint64(rng.Int63n(int64(budget-1)))
					}

					ecfg := cfg
					ecfg.Exact = true
					exact, exactErr := fuzzRun(t, img, ecfg, budget, split)
					fast, fastErr := fuzzRun(t, img, cfg, budget, split)
					assertFuzzIdentical(t, exact, fast, exactErr, fastErr)
					blockCycles += fast.BlockCycles()
					mcCycles += fast.BlockMCCycles()

					if t.Failed() {
						t.Logf("arch %v, layout %d, budget %d, split %d", cfg.Arch, layout, budget, split)
						for _, seg := range img.Code {
							t.Logf("code @%d:\n%s", seg.Base, isa.Listing(seg.Base, seg.Words))
						}
						t.Logf("reproduce: go test ./internal/platform -run 'TestDiffFuzz/c%d/case%03d' -args -difffuzz.seed=%d",
							ncore, ci, *fuzzSeed)
					}
				})
			}
			// The fuzzer must actually exercise the engines it is meant to
			// pin. With a non-trivial case budget, single-core runs must hit
			// block runs and multi-core runs must hit lock-step strides.
			if *fuzzCases >= 20 {
				if blockCycles == 0 {
					t.Errorf("no case engaged the block engine (%d cases)", *fuzzCases)
				}
				if ncore >= 2 && mcCycles == 0 {
					t.Errorf("no case engaged multi-core strides (%d cases)", *fuzzCases)
				}
			}
		})
	}
}
