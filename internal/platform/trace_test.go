package platform

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// TestTracerCapturesSyncProtocol attaches a recorder to the producer-consumer
// program and checks that the recorded event stream tells the paper's story:
// SNOP registration, gated SLEEP, the producer's SINC/SDEC pair, and a wake.
func TestTracerCapturesSyncProtocol(t *testing.T) {
	p, err := New(mcCfg(), producerConsumerImage(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(4096)
	p.SetTracer(rec)
	if err := p.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("program did not finish")
	}
	counts := map[trace.Kind]int{}
	sawGatedSleep := false
	sawSINC, sawSDEC, sawSNOP := false, false, false
	for _, e := range rec.Events() {
		counts[e.Kind]++
		switch e.Kind {
		case trace.KindSleep:
			if e.Arg1 == 1 {
				sawGatedSleep = true
			}
		case trace.KindSync:
			switch isa.Opcode(e.Arg1) {
			case isa.OpSINC:
				sawSINC = true
			case isa.OpSDEC:
				sawSDEC = true
			case isa.OpSNOP:
				sawSNOP = true
			}
		}
	}
	if !sawSINC || !sawSDEC || !sawSNOP {
		t.Errorf("sync ops seen: SINC=%v SDEC=%v SNOP=%v", sawSINC, sawSDEC, sawSNOP)
	}
	if !sawGatedSleep {
		t.Error("no gated SLEEP recorded")
	}
	if counts[trace.KindWake] == 0 {
		t.Error("no wake transitions recorded")
	}
	if counts[trace.KindHalt] != 2 {
		t.Errorf("halt events = %d, want 2", counts[trace.KindHalt])
	}
	// Wake events must follow a sync or state event chronology-wise: the
	// stream is ordered by cycle.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

// TestTracerDoesNotAlterExecution runs the same program with and without a
// recorder and compares the final architectural outcome.
func TestTracerDoesNotAlterExecution(t *testing.T) {
	run := func(withTracer bool) (uint16, uint64) {
		p, err := New(mcCfg(), producerConsumerImage(t))
		if err != nil {
			t.Fatal(err)
		}
		if withTracer {
			p.SetTracer(trace.NewRecorder(0))
		}
		if err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
		sum, _ := p.PeekData(0, 30)
		return sum, p.Cycle()
	}
	s1, c1 := run(false)
	s2, c2 := run(true)
	if s1 != s2 || c1 != c2 {
		t.Errorf("tracing changed execution: sum %d/%d, cycles %d/%d", s1, s2, c1, c2)
	}
}
