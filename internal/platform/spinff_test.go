package platform

import (
	"testing"

	"repro/internal/power"
)

// producerSrc is the MC-nosync producer idiom: sleep on the ADC interrupt,
// publish a shared counter per sample, halt after six.
const spinProducerSrc = `
.code main
    li   r4, 0x7F03     ; RegIRQSub
    li   r1, 1          ; IRQADC0
    sw   r1, 0(r4)
    li   r2, 0          ; produced count
    li   r6, 6
    li   r7, 200        ; shared counter address
prod:
    sleep
    li   r4, 0x7F0B     ; RegADCStatus
    lw   r1, 0(r4)
    andi r1, r1, 1
    beqz r1, prod
    li   r4, 0x7F04     ; RegIRQPend: acknowledge
    li   r1, 1
    sw   r1, 0(r4)
    addi r2, r2, 1
    sw   r2, 0(r7)      ; publish
    blt  r2, r6, prod
    halt
`

// consumerSrc is the busy-wait consumer: poll the shared counter, accumulate
// each published value, halt after six.
const spinConsumerSrc = `
.code consumer
    li   r2, 0          ; consumed count
    li   r6, 6
    li   r7, 200        ; shared counter address
    li   r5, 300        ; shared sum address
wait:
    lw   r1, 0(r7)
    beq  r1, r2, wait   ; spin while nothing new
    addi r2, r2, 1
    lw   r3, 0(r5)
    add  r3, r3, r1
    sw   r3, 0(r5)
    blt  r2, r6, wait
    halt
`

// nosyncCfg is a no-sync multi-core configuration with a 250 Hz ADC: at
// 1 MHz the consumer spins for thousands of cycles between samples.
func nosyncCfg() Config {
	return Config{
		Arch: power.MCNoSync, ClockHz: 1e6, VoltageV: 0.5,
		SampleRateHz: 250,
		Traces:       [3][]int16{0: {3, 1, 4, 1, 5, 9, 2, 6}},
	}
}

// busyWaitImage builds the producer/consumer pair with the given consumer.
func busyWaitImage(t *testing.T, consumer string) *Image {
	t.Helper()
	return buildImage(t, 0x2000, 0, []string{spinProducerSrc, consumer}, []int{0, 64},
		[]DataSeg{{Base: 200, Words: []uint16{0}}, {Base: 300, Words: []uint16{0}}})
}

// runModesUntraced runs the configuration in exact and fast mode with no
// tracer attached — the regime in which the spin-loop engine is allowed to
// leap.
func runModesUntraced(t *testing.T, cfg Config, mkImg func(t *testing.T) *Image, n uint64) (exact, fast *Platform) {
	t.Helper()
	build := func(exactMode bool) *Platform {
		c := cfg
		c.Exact = exactMode
		p, err := New(c, mkImg(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(n); err != nil {
			t.Fatal(err)
		}
		return p
	}
	exact, fast = build(true), build(false)
	if exact.SpinSkippedCycles() != 0 {
		t.Errorf("exact mode spin-skipped %d cycles, want 0", exact.SpinSkippedCycles())
	}
	return exact, fast
}

// assertIdenticalNoTrace checks every observable output except the event
// trace (none is attached) for bit-identity between the two runs.
func assertIdenticalNoTrace(t *testing.T, exact, fast *Platform) {
	t.Helper()
	if *exact.Counters() != *fast.Counters() {
		t.Errorf("counters diverge:\nexact: %+v\nfast:  %+v", *exact.Counters(), *fast.Counters())
	}
	if e, f := exact.Cycle(), fast.Cycle(); e != f {
		t.Errorf("cycle diverges: exact %d, fast %d", e, f)
	}
	for c := 0; c < exact.ncore; c++ {
		if e, f := exact.CoreBusy(c), fast.CoreBusy(c); e != f {
			t.Errorf("core %d busy diverges: exact %d, fast %d", c, e, f)
		}
		if e, f := exact.CoreState(c), fast.CoreState(c); e != f {
			t.Errorf("core %d state diverges: exact %v, fast %v", c, e, f)
		}
		if e, f := exact.CoreRegs(c), fast.CoreRegs(c); e != f {
			t.Errorf("core %d registers diverge:\nexact: %v\nfast:  %v", c, e, f)
		}
	}
	if e, f := exact.MaxSampleBusy(), fast.MaxSampleBusy(); e != f {
		t.Errorf("max sample busy diverges: exact %d, fast %d", e, f)
	}
	if e, f := exact.Overruns(), fast.Overruns(); e != f {
		t.Errorf("overruns diverge: exact %d, fast %d", e, f)
	}
	if e, f := len(exact.Debug()), len(fast.Debug()); e != f {
		t.Errorf("debug streams diverge: exact %d entries, fast %d", e, f)
	}
	if e, f := len(exact.ErrCodes()), len(fast.ErrCodes()); e != f {
		t.Errorf("error streams diverge: exact %d entries, fast %d", e, f)
	}
}

// TestSpinFastForwardBusyWait is the engine's canonical positive case: the
// MC-nosync producer/consumer pair, where the consumer's poll loop used to
// defeat quiescence detection. The spin engine must leap most of the run
// while staying bit-identical to the exact path.
func TestSpinFastForwardBusyWait(t *testing.T) {
	mk := func(t *testing.T) *Image { return busyWaitImage(t, spinConsumerSrc) }
	exact, fast := runModesUntraced(t, nosyncCfg(), mk, 40_000)
	assertIdenticalNoTrace(t, exact, fast)
	if !fast.AllHalted() {
		t.Fatal("busy-wait pair did not complete")
	}
	if sum, _ := fast.PeekData(0, 300); sum != 1+2+3+4+5+6 {
		t.Errorf("consumer sum = %d, want 21", sum)
	}
	if fast.SpinSkippedCycles() == 0 {
		t.Fatal("spin fast-forward never engaged on a busy-wait run")
	}
	if skipped := fast.SpinSkippedCycles(); skipped < fast.Cycle()/2 {
		t.Errorf("spin engine skipped only %d of %d cycles; want spin domination", skipped, fast.Cycle())
	}
}

// TestSpinFastForwardDeadlockedSpin covers a spin with no wake source at
// all (single core polling the host flag, no ADC): the engine must leap
// straight to the cycle budget, the spin analogue of the all-gated deadlock
// leap.
func TestSpinFastForwardDeadlockedSpin(t *testing.T) {
	src := `
.code main
    li   r7, 0x7F12     ; RegHostFlag
spin:
    lw   r1, 0(r7)
    beqz r1, spin
    halt
`
	mk := func(t *testing.T) *Image {
		return buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	}
	exact, fast := runModesUntraced(t, scCfg(), mk, 50_000)
	assertIdenticalNoTrace(t, exact, fast)
	if fast.Cycle() != 50_000 {
		t.Errorf("fast run stopped at cycle %d, want the full 50000 budget", fast.Cycle())
	}
	if fast.SpinSkippedCycles() < 45_000 {
		t.Errorf("spin engine skipped %d cycles, want nearly all of the deadlocked spin", fast.SpinSkippedCycles())
	}
}

// TestSpinFastForwardRejectsStores: a poll loop that also stores every
// iteration has a non-empty write set; the detector must never nominate it
// and the run must fall back to cycle-accurate stepping — still
// bit-identical.
func TestSpinFastForwardRejectsStores(t *testing.T) {
	storingConsumer := `
.code consumer
    li   r2, 0
    li   r6, 6
    li   r7, 200
    li   r5, 300
wait:
    lw   r1, 0(r7)
    sw   r2, 0(r5)      ; heartbeat store: disqualifies the window
    beq  r1, r2, wait
    addi r2, r2, 1
    blt  r2, r6, wait
    halt
`
	mk := func(t *testing.T) *Image { return busyWaitImage(t, storingConsumer) }
	exact, fast := runModesUntraced(t, nosyncCfg(), mk, 40_000)
	assertIdenticalNoTrace(t, exact, fast)
	if fast.SpinLeaps() != 0 {
		t.Errorf("spin engine leapt %d times over a storing loop, want 0", fast.SpinLeaps())
	}
}

// TestSpinFastForwardRejectsMarchingRegisters: a poll loop with an
// iteration counter is PC-periodic (the tracker nominates it) but its
// register state never recurs, so the platform's periodicity proof must
// fail and no leap may happen.
func TestSpinFastForwardRejectsMarchingRegisters(t *testing.T) {
	countingConsumer := `
.code consumer
    li   r2, 0
    li   r6, 6
    li   r7, 200
    li   r3, 0
wait:
    addi r3, r3, 1      ; iteration counter: state never recurs
    lw   r1, 0(r7)
    beq  r1, r2, wait
    addi r2, r2, 1
    blt  r2, r6, wait
    halt
`
	mk := func(t *testing.T) *Image { return busyWaitImage(t, countingConsumer) }
	exact, fast := runModesUntraced(t, nosyncCfg(), mk, 40_000)
	assertIdenticalNoTrace(t, exact, fast)
	if fast.SpinLeaps() != 0 {
		t.Errorf("spin engine leapt %d times despite marching registers, want 0", fast.SpinLeaps())
	}
}

// TestSpinFastForwardRejectsUnstableMMIO: polling the cycle counter reads a
// different value every iteration. The observed value lands in a register,
// so the recurrence proof fails by construction and the loop must step.
func TestSpinFastForwardRejectsUnstableMMIO(t *testing.T) {
	src := `
.code main
    li   r7, 0x7F01     ; RegCycleLo
    li   r6, 20000
spin:
    lw   r1, 0(r7)
    bltu r1, r6, spin
    halt
`
	mk := func(t *testing.T) *Image {
		return buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	}
	exact, fast := runModesUntraced(t, scCfg(), mk, 30_000)
	assertIdenticalNoTrace(t, exact, fast)
	if !fast.AllHalted() {
		t.Fatal("cycle-poll loop did not terminate")
	}
	if fast.SpinLeaps() != 0 {
		t.Errorf("spin engine leapt %d times over an unstable MMIO poll, want 0", fast.SpinLeaps())
	}
}

// TestSpinFastForwardRejectsLongLoop: a loop body longer than the signature
// window's largest period must never be nominated.
func TestSpinFastForwardRejectsLongLoop(t *testing.T) {
	longConsumer := `
.code consumer
    li   r2, 0
    li   r6, 6
    li   r7, 200
wait:
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    lw   r1, 0(r7)
    beq  r1, r2, wait
    addi r2, r2, 1
    blt  r2, r6, wait
    halt
`
	mk := func(t *testing.T) *Image { return busyWaitImage(t, longConsumer) }
	exact, fast := runModesUntraced(t, nosyncCfg(), mk, 40_000)
	assertIdenticalNoTrace(t, exact, fast)
	if fast.SpinLeaps() != 0 {
		t.Errorf("spin engine leapt %d times over a %d-instruction loop, want 0", fast.SpinLeaps(), 28)
	}
}

// TestSpinFastForwardTracerInhibits: a spin stretch is not trace-silent (the
// spinning core's status flips between exec/stall/bubble), so an attached
// recorder must keep the engine off — and the traced fast run therefore
// stays bit-identical to the traced exact run, full event stream included.
func TestSpinFastForwardTracerInhibits(t *testing.T) {
	mk := func(t *testing.T) *Image { return busyWaitImage(t, spinConsumerSrc) }
	exact, fast := runModes(t, nosyncCfg(), mk, 40_000)
	assertIdentical(t, exact, fast)
	if fast.SpinLeaps() != 0 {
		t.Errorf("spin engine leapt %d times with a tracer attached, want 0", fast.SpinLeaps())
	}
}

// TestSpinFastForwardStatistics pins the statistics contract: exact mode
// reports zeros, fast mode reports the leap work, and Restore resets the
// diagnostics without touching architectural state.
func TestSpinFastForwardStatistics(t *testing.T) {
	mk := func(t *testing.T) *Image { return busyWaitImage(t, spinConsumerSrc) }
	cfg := nosyncCfg()
	cfg.Exact = false
	p, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(12_000); err != nil {
		t.Fatal(err)
	}
	if p.SpinLeaps() == 0 || p.SpinSkippedCycles() == 0 {
		t.Fatalf("expected spin leaps mid-run, got %d leaps / %d cycles", p.SpinLeaps(), p.SpinSkippedCycles())
	}
	snap := p.Snapshot()
	q, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if q.SpinLeaps() != 0 || q.SpinSkippedCycles() != 0 {
		t.Errorf("restored platform reports %d leaps / %d skipped, want fresh diagnostics", q.SpinLeaps(), q.SpinSkippedCycles())
	}
	// Continuing the restored platform must still match a straight run.
	if err := p.Run(28_000); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(28_000); err != nil {
		t.Fatal(err)
	}
	assertIdenticalNoTrace(t, p, q)
}
