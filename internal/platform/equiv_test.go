package platform_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/ecg"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
)

// goldenDuration is the simulated time of each equivalence run, seconds.
const goldenDuration = 0.3

// goldenClockHz keeps the runs idle-dominated (sample period 8000 cycles)
// while staying cheap enough for the test suite.
const goldenClockHz = 2e6

func runGolden(t *testing.T, app string, arch power.Arch, exact bool) (*apps.Variant, *platform.Platform) {
	t.Helper()
	v, err := apps.Build(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ecg.DefaultConfig()
	cfg.Seed = 1
	if app == apps.RPClass {
		cfg.PathologicalFrac = 0.2
	}
	sig, err := ecg.Synthesize(cfg, goldenDuration+1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(sig, goldenClockHz, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.SetExact(exact)
	p.SetTracer(trace.NewRecorder(1 << 16))
	if err := p.RunSeconds(goldenDuration); err != nil {
		t.Fatal(err)
	}
	return v, p
}

// TestGoldenEquivalence asserts that the idle fast-forward engine is
// semantically invisible on every benchmark application and architecture:
// counters (hence Table I / Figures 6-7 inputs), per-core state, debug and
// error streams, and the full event trace are bit-identical to the exact
// cycle-by-cycle simulation.
func TestGoldenEquivalence(t *testing.T) {
	archs := []power.Arch{power.SC, power.MC}
	for _, app := range apps.Names {
		for _, arch := range archs {
			app, arch := app, arch
			t.Run(fmt.Sprintf("%s/%v", app, arch), func(t *testing.T) {
				v, exact := runGolden(t, app, arch, true)
				_, fast := runGolden(t, app, arch, false)

				if *exact.Counters() != *fast.Counters() {
					t.Errorf("counters diverge:\nexact: %+v\nfast:  %+v", *exact.Counters(), *fast.Counters())
				}
				if e, f := exact.Cycle(), fast.Cycle(); e != f {
					t.Errorf("cycle diverges: exact %d, fast %d", e, f)
				}
				for c := 0; c < v.Cores; c++ {
					if e, f := exact.CoreBusy(c), fast.CoreBusy(c); e != f {
						t.Errorf("core %d busy diverges: exact %d, fast %d", c, e, f)
					}
					if e, f := exact.CoreRegs(c), fast.CoreRegs(c); e != f {
						t.Errorf("core %d registers diverge", c)
					}
					if e, f := exact.CoreState(c), fast.CoreState(c); e != f {
						t.Errorf("core %d state diverges: exact %v, fast %v", c, e, f)
					}
				}
				if e, f := exact.MaxSampleBusy(), fast.MaxSampleBusy(); e != f {
					t.Errorf("max sample busy diverges: exact %d, fast %d", e, f)
				}
				if e, f := exact.Overruns(), fast.Overruns(); e != f {
					t.Errorf("overruns diverge: exact %d, fast %d", e, f)
				}
				if !reflect.DeepEqual(exact.Debug(), fast.Debug()) {
					t.Errorf("debug streams diverge: exact %d entries, fast %d",
						len(exact.Debug()), len(fast.Debug()))
				}
				if !reflect.DeepEqual(exact.ErrCodes(), fast.ErrCodes()) {
					t.Errorf("error streams diverge: exact %d entries, fast %d",
						len(exact.ErrCodes()), len(fast.ErrCodes()))
				}
				ev, fv := exact.Tracer().Events(), fast.Tracer().Events()
				if len(ev) != len(fv) {
					t.Errorf("trace lengths diverge: exact %d events, fast %d", len(ev), len(fv))
				}
				for i := 0; i < len(ev) && i < len(fv); i++ {
					if ev[i] != fv[i] {
						t.Errorf("trace diverges at event %d:\nexact: %s\nfast:  %s",
							i, ev[i].String(), fv[i].String())
						break
					}
				}

				if exact.FFSkippedCycles() != 0 {
					t.Errorf("exact mode skipped %d cycles, want 0", exact.FFSkippedCycles())
				}
				if fast.FFSkippedCycles() == 0 {
					t.Error("fast-forward never engaged")
				}
				if arch == power.MC && fast.FFSkippedCycles() < fast.Cycle()/2 {
					t.Errorf("MC run skipped only %d of %d cycles; want idle domination",
						fast.FFSkippedCycles(), fast.Cycle())
				}
			})
		}
	}
}
