package platform_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/ecg"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/signal"
	"repro/internal/trace"
)

// goldenDuration is the simulated time of each equivalence run, seconds.
const goldenDuration = 0.3

// goldenClockHz keeps the runs idle-dominated (sample period 8000 cycles)
// while staying cheap enough for the test suite.
const goldenClockHz = 2e6

func runGolden(t *testing.T, app string, arch power.Arch, exact bool) (*apps.Variant, *platform.Platform) {
	t.Helper()
	cfg := ecg.DefaultConfig()
	cfg.Seed = 1
	if app == apps.RPClass {
		cfg.PathologicalFrac = 0.2
	}
	sig, err := ecg.Synthesize(cfg, goldenDuration+1)
	if err != nil {
		t.Fatal(err)
	}
	return runGoldenSource(t, app, arch, signal.FromECG(sig), exact)
}

func runGoldenSource(t *testing.T, app string, arch power.Arch, src *signal.Source, exact bool) (*apps.Variant, *platform.Platform) {
	t.Helper()
	v, err := apps.Build(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(src, goldenClockHz, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p.SetExact(exact)
	p.SetTracer(trace.NewRecorder(1 << 16))
	if err := p.RunSeconds(goldenDuration); err != nil {
		t.Fatal(err)
	}
	return v, p
}

// assertEquivalent asserts that the exact and fast-forwarded runs of one
// configuration are observably bit-identical: counters, per-core state,
// debug and error streams, and the full event trace.
func assertEquivalent(t *testing.T, v *apps.Variant, exact, fast *platform.Platform) {
	t.Helper()
	if *exact.Counters() != *fast.Counters() {
		t.Errorf("counters diverge:\nexact: %+v\nfast:  %+v", *exact.Counters(), *fast.Counters())
	}
	if e, f := exact.Cycle(), fast.Cycle(); e != f {
		t.Errorf("cycle diverges: exact %d, fast %d", e, f)
	}
	for c := 0; c < v.Cores; c++ {
		if e, f := exact.CoreBusy(c), fast.CoreBusy(c); e != f {
			t.Errorf("core %d busy diverges: exact %d, fast %d", c, e, f)
		}
		if e, f := exact.CoreRegs(c), fast.CoreRegs(c); e != f {
			t.Errorf("core %d registers diverge", c)
		}
		if e, f := exact.CoreState(c), fast.CoreState(c); e != f {
			t.Errorf("core %d state diverges: exact %v, fast %v", c, e, f)
		}
	}
	if e, f := exact.MaxSampleBusy(), fast.MaxSampleBusy(); e != f {
		t.Errorf("max sample busy diverges: exact %d, fast %d", e, f)
	}
	if e, f := exact.Overruns(), fast.Overruns(); e != f {
		t.Errorf("overruns diverge: exact %d, fast %d", e, f)
	}
	if !reflect.DeepEqual(exact.Debug(), fast.Debug()) {
		t.Errorf("debug streams diverge: exact %d entries, fast %d",
			len(exact.Debug()), len(fast.Debug()))
	}
	if !reflect.DeepEqual(exact.ErrCodes(), fast.ErrCodes()) {
		t.Errorf("error streams diverge: exact %d entries, fast %d",
			len(exact.ErrCodes()), len(fast.ErrCodes()))
	}
	ev, fv := exact.Tracer().Events(), fast.Tracer().Events()
	if len(ev) != len(fv) {
		t.Errorf("trace lengths diverge: exact %d events, fast %d", len(ev), len(fv))
	}
	for i := 0; i < len(ev) && i < len(fv); i++ {
		if ev[i] != fv[i] {
			t.Errorf("trace diverges at event %d:\nexact: %s\nfast:  %s",
				i, ev[i].String(), fv[i].String())
			break
		}
	}
	if exact.FFSkippedCycles() != 0 {
		t.Errorf("exact mode skipped %d cycles, want 0", exact.FFSkippedCycles())
	}
	if fast.FFSkippedCycles() == 0 {
		t.Error("fast-forward never engaged")
	}
}

// TestGoldenEquivalence asserts that the idle fast-forward engine is
// semantically invisible on every benchmark application and architecture:
// counters (hence Table I / Figures 6-7 inputs), per-core state, debug and
// error streams, and the full event trace are bit-identical to the exact
// cycle-by-cycle simulation.
func TestGoldenEquivalence(t *testing.T) {
	archs := []power.Arch{power.SC, power.MC}
	for _, app := range apps.Names {
		for _, arch := range archs {
			app, arch := app, arch
			t.Run(fmt.Sprintf("%s/%v", app, arch), func(t *testing.T) {
				v, exact := runGolden(t, app, arch, true)
				_, fast := runGolden(t, app, arch, false)
				assertEquivalent(t, v, exact, fast)
				if arch == power.MC && fast.FFSkippedCycles() < fast.Cycle()/2 {
					t.Errorf("MC run skipped only %d of %d cycles; want idle domination",
						fast.FFSkippedCycles(), fast.Cycle())
				}
			})
		}
	}
}

// TestGoldenEquivalenceMultiRate extends the golden suite to a multi-rate
// scenario: with per-channel rate divisors the ADC advertises the minimum
// across three independent sampling grids, and the fast-forward engine must
// stay bit-identical to the exact cycle-by-cycle simulation leaping between
// them. Covers both the sequential baseline and the replicated multi-core
// mapping, whose cores consume their own (differently-clocked) channels.
func TestGoldenEquivalenceMultiRate(t *testing.T) {
	cfg := signal.DefaultConfig(signal.KindECG)
	cfg.Seed = 1
	cfg.RateDiv = [signal.MaxChannels]int{1, 2, 4}
	src, err := signal.Synthesize(cfg, goldenDuration+1)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []power.Arch{power.SC, power.MC} {
		arch := arch
		t.Run(fmt.Sprintf("%s/%v", apps.MF3L, arch), func(t *testing.T) {
			v, exact := runGoldenSource(t, apps.MF3L, arch, src, true)
			_, fast := runGoldenSource(t, apps.MF3L, arch, src, false)
			assertEquivalent(t, v, exact, fast)
			if n := fast.Overruns(); n != 0 {
				t.Errorf("multi-rate run overran %d samples", n)
			}
			if viol := fast.Violations(); len(viol) > 0 {
				t.Errorf("multi-rate run recorded sync violations: %v", viol)
			}
		})
	}
}
