// Checkpointable platform sessions.
//
// A Snapshot deep-copies everything a run mutates — core pipelines and
// register files, data-memory banks, the synchronizer, crossbar arbitration
// phases, ADC sampling grids, power counters, fast-forward bookkeeping and
// the debug/trace cursors — so a simulation can be rewound (Restore), resumed
// in a later process (the versioned SnapshotFile encoding), or rehydrated
// under a different operating point (Fork). Restoring and continuing is
// bit-identical to having simulated straight through: Run(a) followed by
// Run(b) steps exactly the cycles Run(a+b) would, and a snapshot taken
// between them captures every bit of observable state (enforced by
// snapshot_test.go's golden tests).
//
// Fork is the primitive the experiment layer's operating-point search is
// built on: candidate frequencies are probed by forking one pristine platform
// per configuration instead of re-assembling, re-linking and re-loading the
// application for every candidate, and a verified probe run is forked into
// the measurement run so the shared warm-up window is simulated once.
package platform

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/power"
)

// Snapshot is the deep-copied mutable state of a Platform at a cycle
// boundary. Fields are exported for the versioned gob encoding; treat the
// contents as opaque. The instruction memory is deliberately absent: its
// words are immutable after load and its bank power is a pure function of
// the image, so rehydration recovers it from the (deterministically rebuilt)
// image instead of storing 96 KB per checkpoint.
type Snapshot struct {
	// Identity of the configuration the snapshot was captured under, checked
	// (and, for Fork, rebased) on restore.
	Arch    power.Arch
	ClockHz float64
	NCore   int

	Cycle         uint64
	LastCycleIdle bool
	FFLeaps       uint64
	FFSkipped     uint64

	Cores []cpu.Core
	DM    mem.DMemState
	Sync  core.SyncState
	ADC   *periph.ADCState

	IMXPhase int
	DMXPhase int

	Counters      power.Counters
	PerCoreBusy   []uint64
	LastSample    int
	WindowBusy    []uint32
	MaxSampleBusy uint64

	Debug      []DebugEntry
	ErrCodes   []DebugEntry
	HostFlag   uint16
	LastStatus []uint8

	FaultMsg string
}

// Snapshot deep-copies the platform's mutable state. It is a pure read: the
// platform is left untouched, and snapshotting an idle platform from several
// goroutines (as the experiment session does with its pristine templates) is
// safe. Must be called at a cycle boundary — any point outside Step/Run,
// which is the only place callers can observe the platform anyway.
func (p *Platform) Snapshot() *Snapshot {
	s := &Snapshot{
		Arch:          p.cfg.Arch,
		ClockHz:       p.cfg.ClockHz,
		NCore:         p.ncore,
		Cycle:         p.cycle,
		LastCycleIdle: p.lastCycleIdle,
		FFLeaps:       p.ffLeaps,
		FFSkipped:     p.ffSkipped,
		Cores:         make([]cpu.Core, p.ncore),
		DM:            p.dmem.Snapshot(),
		Sync:          p.sync.Snapshot(),
		IMXPhase:      p.imx.Phase(),
		DMXPhase:      p.dmx.Phase(),
		Counters:      p.ctr,
		PerCoreBusy:   append([]uint64(nil), p.perCoreBusy...),
		LastSample:    p.lastSample,
		WindowBusy:    append([]uint32(nil), p.windowBusy...),
		MaxSampleBusy: p.maxSampleBusy,
		HostFlag:      p.hostFlag,
	}
	for i, c := range p.cores {
		s.Cores[i] = *c
	}
	if p.adc != nil {
		st := p.adc.Snapshot()
		s.ADC = &st
	}
	if len(p.debug) > 0 {
		s.Debug = append([]DebugEntry(nil), p.debug...)
	}
	if len(p.errCodes) > 0 {
		s.ErrCodes = append([]DebugEntry(nil), p.errCodes...)
	}
	if p.lastStatus != nil {
		s.LastStatus = make([]uint8, len(p.lastStatus))
		for i, st := range p.lastStatus {
			s.LastStatus[i] = uint8(st)
		}
	}
	if p.fault != nil {
		s.FaultMsg = p.fault.Error()
	}
	return s
}

// Restore reinstates a snapshot onto this platform. The platform must have
// been built from the same configuration (architecture, core count, clock)
// and — uncheckable here, so the caller's responsibility — the same program
// image and input traces the snapshot was captured under; checkpoint files
// carry metadata for exactly that validation. Continuing a restored platform
// is bit-identical to never having stopped. To rehydrate under a different
// clock, use Fork.
func (p *Platform) Restore(s *Snapshot) error {
	if s.Arch != p.cfg.Arch {
		return fmt.Errorf("platform: restoring a %v snapshot onto a %v platform", s.Arch, p.cfg.Arch)
	}
	if s.ClockHz != p.cfg.ClockHz {
		return fmt.Errorf("platform: restoring a %.0f Hz snapshot onto a %.0f Hz platform (use Fork to rebase the clock)", s.ClockHz, p.cfg.ClockHz)
	}
	return p.adopt(s)
}

// adopt overwrites the platform's mutable state with the snapshot's,
// assuming identity checks (or Fork's rebase) already happened.
func (p *Platform) adopt(s *Snapshot) error {
	if s.NCore != p.ncore {
		return fmt.Errorf("platform: snapshot has %d cores, platform %d", s.NCore, p.ncore)
	}
	if len(s.Cores) != p.ncore || len(s.PerCoreBusy) != p.ncore || len(s.WindowBusy) != p.ncore {
		return fmt.Errorf("platform: malformed snapshot (per-core arrays sized %d/%d/%d, want %d)",
			len(s.Cores), len(s.PerCoreBusy), len(s.WindowBusy), p.ncore)
	}
	if (s.ADC == nil) != (p.adc == nil) {
		return fmt.Errorf("platform: snapshot and platform disagree on ADC presence")
	}
	if err := p.sync.Restore(s.Sync); err != nil {
		return err
	}
	if err := p.dmem.Restore(s.DM); err != nil {
		return err
	}
	if p.adc != nil {
		if err := p.adc.Restore(*s.ADC); err != nil {
			return err
		}
	}
	for i := range p.cores {
		*p.cores[i] = s.Cores[i]
	}
	p.imx.SetPhase(s.IMXPhase)
	p.dmx.SetPhase(s.DMXPhase)
	p.cycle = s.Cycle
	p.lastCycleIdle = s.LastCycleIdle
	p.ffLeaps = s.FFLeaps
	p.ffSkipped = s.FFSkipped
	p.ctr = s.Counters
	copy(p.perCoreBusy, s.PerCoreBusy)
	p.lastSample = s.LastSample
	copy(p.windowBusy, s.WindowBusy)
	p.maxSampleBusy = s.MaxSampleBusy
	p.debug = append(p.debug[:0], s.Debug...)
	p.errCodes = append(p.errCodes[:0], s.ErrCodes...)
	p.hostFlag = s.HostFlag
	if p.lastStatus != nil {
		if len(s.LastStatus) == len(p.lastStatus) {
			for i, st := range s.LastStatus {
				p.lastStatus[i] = coreStatus(st)
			}
		} else {
			// The snapshot was captured without a tracer: force a first
			// transition record, as SetTracer does.
			for i := range p.lastStatus {
				p.lastStatus[i] = stHalted + 1
			}
		}
	}
	p.fault = nil
	if s.FaultMsg != "" {
		p.fault = errors.New(s.FaultMsg)
	}
	// Spin-detector state (PC histories, armed probes, leap statistics) is
	// simulation-process state, not simulated state: it only influences
	// *when* the spin engine leaps, never what any leap produces, so
	// snapshots deliberately omit it and restoring simply re-detects. This
	// keeps Restore/Fork bit-identical to never having stopped while
	// letting leap placement differ — exactly like Run-call chunking does.
	// The block engine's yield spans, stride back-off and engagement
	// statistics are process state for the same reason: a restored
	// platform re-engages from its block tables wherever the
	// preconditions hold, on one core or many.
	p.spinReset()
	p.blockReset()
	// Observability stamps (barrier-arrival cycles, per-channel sample
	// counts) are process state for the same reason: they describe this
	// process's observation window, never simulated state, and snapshots
	// deliberately omit them (docs/FORMATS.md).
	p.obsReset()
	return nil
}

// Fork rehydrates the platform's current state into a new platform built
// from cfg, which may select a different clock frequency and supply voltage.
// The program image is shared (it is immutable); cfg is validated exactly as
// New validates it, so frequency-dependent state is re-derived rather than
// carried over: ADC sampling grids are recomputed from the per-channel
// sample indices on the new clock (rejecting rates the new clock cannot
// sustain), pending wake latencies keep their remaining cycle counts (wake
// latency is a cycle-denominated hardware constant), and subsequent
// RunSeconds cycle budgets use the new clock.
//
// Forking a pristine (never-run) platform is bit-identical to building a
// fresh one with New — that degenerate fork is what the operating-point
// search uses to probe candidate frequencies without re-running the
// application build. Forking mid-run rebases the cycle position
// proportionally (preserving the simulated wall-clock instant), which keeps
// real-time behaviour — sampling cadence, overruns, deadline checks — exact;
// the accumulated activity counters are carried over verbatim, so a
// cross-frequency fork's power report spans both clock epochs and is meant
// for feasibility probing, not for calibrated power measurement.
func (p *Platform) Fork(cfg Config) (*Platform, error) {
	if cfg.Arch != p.cfg.Arch {
		return nil, fmt.Errorf("platform: cannot fork a %v platform as %v: the program image is architecture-specific", p.cfg.Arch, cfg.Arch)
	}
	p2, err := New(cfg, p.img)
	if err != nil {
		return nil, err
	}
	s := p.Snapshot()
	if cfg.ClockHz != s.ClockHz {
		ratio := cfg.ClockHz / s.ClockHz
		newCycle := uint64(float64(s.Cycle)*ratio + 0.5)
		for c := range s.Sync.WakeAt {
			if s.Sync.WakeAt[c] > s.Cycle {
				s.Sync.WakeAt[c] = newCycle + (s.Sync.WakeAt[c] - s.Cycle)
			} else {
				s.Sync.WakeAt[c] = 0
			}
		}
		// Armed sync-timeout deadlines are cycle-denominated like wake
		// latencies: the remaining wait budget carries over onto the new
		// clock's cycle grid.
		for c := range s.Sync.TimeoutAt {
			if s.Sync.TimeoutAt[c] > s.Cycle {
				s.Sync.TimeoutAt[c] = newCycle + (s.Sync.TimeoutAt[c] - s.Cycle)
			} else {
				s.Sync.TimeoutAt[c] = 0
			}
		}
		s.Cycle = newCycle
		s.Sync.Cycle = newCycle
		s.ClockHz = cfg.ClockHz
	}
	if err := p2.adopt(s); err != nil {
		return nil, err
	}
	return p2, nil
}

// Config returns a copy of the platform's configuration: the natural
// starting point for a Fork at a different operating point (adjust ClockHz
// and VoltageV, keep the traces).
func (p *Platform) Config() Config { return p.cfg }

// CyclesFor converts a simulated duration to this platform's whole-cycle
// budget, with RunSeconds' round-to-nearest semantics. Callers slicing a run
// into checkpointed chunks use it to hit the exact same total cycle count a
// single RunSeconds call would.
func (p *Platform) CyclesFor(s float64) uint64 {
	return secondsToCycles(s, p.cfg.ClockHz)
}
