package platform

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// enc builds one encoded instruction word for hand-assembled programs.
func enc(op isa.Opcode, rd, rs1, rs2 uint8, imm int32) isa.Word {
	return isa.MustEncode(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// diffPrologue sets up the register file every differential program starts
// from: two data-dependent operands, a data-segment base and a small shift
// count — enough straight-line work for the block engine to engage before
// the instruction under test.
func diffPrologue() []isa.Word {
	return []isa.Word{
		enc(isa.OpADDI, 1, 0, 0, 423), // r1 = 0x01A7
		enc(isa.OpADDI, 2, 0, 0, -29), // r2 = 0xFFE3
		enc(isa.OpADDI, 4, 0, 0, 256), // r4 = data base
		enc(isa.OpADDI, 5, 0, 0, 3),   // r5 = shift count
	}
}

// diffProgram wraps a body with the shared prologue, two marker stores for
// control-flow visibility (branch/jump targets land between them) and an
// epilogue that writes results to memory before halting.
func diffProgram(body ...isa.Word) []isa.Word {
	w := diffPrologue()
	w = append(w, body...)
	w = append(w,
		enc(isa.OpADDI, 6, 0, 0, 111), // marker: skipped by taken +1 branches
		enc(isa.OpADDI, 7, 0, 0, 222), // marker: branch/jump land here
		enc(isa.OpSW, 0, 4, 3, 0),     // mem[256] = r3
		enc(isa.OpSW, 0, 4, 6, 1),     // mem[257] = r6
		enc(isa.OpSW, 0, 4, 7, 2),     // mem[258] = r7
		enc(isa.OpHALT, 0, 0, 0, 0),
	)
	return w
}

// diffImage builds a single-core image around the given code.
func diffImage(words []isa.Word, nsync int) *Image {
	img := &Image{
		Code:          []CodeSeg{{Base: 0, Words: words}},
		Entries:       []int{0},
		NumSyncPoints: nsync,
		Shared: []DataSeg{
			{Base: 256, Words: []uint16{0xB00F, 0x1234, 0xBEEF, 0, 0, 0, 0, 0}},
		},
	}
	if nsync > 0 {
		// Back the sync-point mirror with powered shared memory.
		img.Shared = append(img.Shared, DataSeg{Base: 0, Words: make([]uint16, 4)})
	}
	return img
}

// runDiffPair runs one image through both engines (no tracer: the regime in
// which the block engine engages) and returns the platforms and Run errors.
func runDiffPair(t *testing.T, img *Image, budget uint64) (exact, fast *Platform, exactErr, fastErr error) {
	t.Helper()
	build := func(exactMode bool) (*Platform, error) {
		cfg := scCfg()
		cfg.Exact = exactMode
		p, err := New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		return p, p.Run(budget)
	}
	exact, exactErr = build(true)
	fast, fastErr = build(false)
	return exact, fast, exactErr, fastErr
}

// assertDiffIdentical is the differential contract: identical Run outcome,
// counters, architectural state, memory and violations — and the fast run
// must actually have used the block engine while the exact run must not.
func assertDiffIdentical(t *testing.T, exact, fast *Platform, exactErr, fastErr error) {
	t.Helper()
	if (exactErr == nil) != (fastErr == nil) {
		t.Fatalf("run outcomes diverge: exact err %v, fast err %v", exactErr, fastErr)
	}
	if exactErr != nil && exactErr.Error() != fastErr.Error() {
		t.Errorf("fault messages diverge:\nexact: %v\nfast:  %v", exactErr, fastErr)
	}
	assertIdenticalNoTrace(t, exact, fast)
	ev, fv := exact.Violations(), fast.Violations()
	if len(ev) != len(fv) {
		t.Errorf("violations diverge: exact %v, fast %v", ev, fv)
	}
	for addr := uint16(256); addr < 264; addr++ {
		e, eok := exact.PeekData(0, addr)
		f, fok := fast.PeekData(0, addr)
		if e != f || eok != fok {
			t.Errorf("mem[%d] diverges: exact %d(%v), fast %d(%v)", addr, e, eok, f, fok)
		}
	}
	if exact.BlockCycles() != 0 {
		t.Errorf("exact mode executed %d block-engine cycles, want 0", exact.BlockCycles())
	}
	if fast.BlockCycles() == 0 {
		t.Error("block engine never engaged on the fast run")
	}
}

// TestBlockEngineOpcodeDifferential drives every opcode of every format
// through both engines on single-core programs — including both directions
// of every conditional branch, the dynamic-target JALR, the sync ISE (which
// the block engine must yield around), and an invalid encoding (which must
// fault identically).
func TestBlockEngineOpcodeDifferential(t *testing.T) {
	type prog struct {
		name  string
		words []isa.Word
		nsync int
	}
	var progs []prog
	add := func(name string, nsync int, body ...isa.Word) {
		progs = append(progs, prog{name, diffProgram(body...), nsync})
	}

	for op := isa.Opcode(0); op.Valid(); op++ {
		switch {
		case op.Fmt() == isa.FmtR:
			add(op.String(), 0, enc(op, 3, 1, 2, 0))
			add(op.String()+"/shift", 0, enc(op, 3, 1, 5, 0))
		case op == isa.OpLW:
			add("lw", 0, enc(op, 3, 4, 0, 2))
		case op == isa.OpSW:
			add("sw", 0, enc(op, 0, 4, 1, 3))
		case op.IsBranch():
			// +1 skips the first marker when taken. (r1,r2) and (r1,r1)
			// operand pairs exercise both outcomes for every predicate.
			add(op.String()+"/mixed", 0, enc(op, 0, 1, 2, 1))
			add(op.String()+"/equal", 0, enc(op, 0, 1, 1, 1))
		case op == isa.OpJAL:
			add("jal", 0, enc(op, 3, 0, 0, 1))
		case op == isa.OpJALR:
			// r5 = 3, so imm 2 targets PC 5: the instruction after the
			// prologue and this jump.
			add("jalr", 0, enc(op, 3, 5, 0, 2))
		case op.IsSync():
			// SDEC on a zero point also records a protocol violation; both
			// engines must agree on it.
			add(op.String(), 1, enc(op, 0, 0, 0, 0))
		case op == isa.OpSLEEP:
			// No ADC, no wake source: the core gates forever and the rest
			// of the budget is idle in both modes.
			add("sleep", 0, enc(op, 0, 0, 0, 0))
		case op == isa.OpHALT:
			add("halt", 0, enc(op, 0, 0, 0, 0))
		default: // NOP
			add(op.String(), 0, enc(op, 0, 0, 0, 0))
		}
	}
	// An invalid encoding must fault identically from both paths.
	progs = append(progs, prog{"invalid", diffProgram(isa.Word(63) << 18), 0})

	for _, pr := range progs {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			exact, fast, exactErr, fastErr := runDiffPair(t, diffImage(pr.words, pr.nsync), 2000)
			assertDiffIdentical(t, exact, fast, exactErr, fastErr)
		})
	}
}

// blockKernelWords is a fast-forward-resistant compute kernel: a long
// unrolled ALU body with a store per iteration (side effects defeat the spin
// detector; its backward jump is far longer than any spin signature) and no
// sleep or ADC dependence (nothing for the idle engine). Every cycle is
// compute-bound, so the block engine carries essentially the whole run.
func blockKernelWords() []isa.Word {
	w := []isa.Word{
		enc(isa.OpADDI, 4, 0, 0, 256), // data pointer
		enc(isa.OpADDI, 1, 0, 0, 1),
	}
	loop := int32(len(w))
	for i := 0; i < 10; i++ {
		w = append(w,
			enc(isa.OpADD, 2, 1, 1, 0),
			enc(isa.OpXOR, 3, 2, 1, 0),
			enc(isa.OpADDI, 1, 1, 0, 1),
			enc(isa.OpSRLI, 2, 3, 0, 1),
		)
	}
	w = append(w, enc(isa.OpSW, 0, 4, 3, 0))
	w = append(w, enc(isa.OpJAL, 0, 0, 0, loop-int32(len(w))-1))
	return w
}

func blockKernelImage() *Image {
	return &Image{
		Code:    []CodeSeg{{Base: 0, Words: blockKernelWords()}},
		Entries: []int{0},
		Shared:  []DataSeg{{Base: 256, Words: make([]uint16, 4)}},
	}
}

// blockKernelMCWords is the multi-core variant of the compute kernel: the
// same unrolled ALU body on every core, but the per-iteration store goes
// through the private window (the ATU spreads the cores across distinct DM
// banks), so four lock-step cores stay conflict-free and the multi-core
// stride engine carries essentially the whole run.
func blockKernelMCWords() []isa.Word {
	w := []isa.Word{
		enc(isa.OpLUI, 4, 0, 0, 19), // r4 = 1216: private data pointer
		enc(isa.OpADDI, 1, 0, 0, 1),
	}
	loop := int32(len(w))
	for i := 0; i < 10; i++ {
		w = append(w,
			enc(isa.OpADD, 2, 1, 1, 0),
			enc(isa.OpXOR, 3, 2, 1, 0),
			enc(isa.OpADDI, 1, 1, 0, 1),
			enc(isa.OpSRLI, 2, 3, 0, 1),
		)
	}
	w = append(w, enc(isa.OpSW, 0, 4, 3, 0))
	w = append(w, enc(isa.OpJAL, 0, 0, 0, loop-int32(len(w))-1))
	return w
}

func blockKernelMCImage() *Image {
	return &Image{
		Code:        []CodeSeg{{Base: 0, Words: blockKernelMCWords()}},
		Entries:     []int{0, 0, 0, 0},
		SharedLimit: 1024,
		Shared:      []DataSeg{{Base: 256, Words: make([]uint16, 4)}},
	}
}

// TestBlockEngineSnapshotMidStrideMC is the multi-core mirror of
// TestBlockEngineSnapshotMidBlock: the snapshot boundary falls inside a
// four-core lock-step stride, and restore/fork/continue must all stay
// bit-identical to an exact straight-through run. Stride back-off state and
// engagement statistics are process state, so the restored platform reports
// fresh diagnostics and re-engages on its own.
func TestBlockEngineSnapshotMidStrideMC(t *testing.T) {
	const total, first = 50_000, 12_345
	cfg := mcCfg()

	cfg.Exact = true
	exact, err := New(cfg, blockKernelMCImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Run(total); err != nil {
		t.Fatal(err)
	}

	cfg.Exact = false
	fast, err := New(cfg, blockKernelMCImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Run(first); err != nil {
		t.Fatal(err)
	}
	if fast.BlockMCStrides() == 0 {
		t.Fatal("multi-core stride engine never engaged on the lock-step kernel")
	}
	snap := fast.Snapshot()

	restored, err := New(cfg, blockKernelMCImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.BlockMCStrides() != 0 || restored.BlockMCCycles() != 0 {
		t.Errorf("restored platform reports %d strides / %d cycles, want fresh diagnostics",
			restored.BlockMCStrides(), restored.BlockMCCycles())
	}

	fork, err := fast.Fork(fast.Config())
	if err != nil {
		t.Fatal(err)
	}

	for name, p := range map[string]*Platform{"original": fast, "restored": restored, "forked": fork} {
		if err := p.Run(total - first); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertIdenticalNoTrace(t, exact, p)
		if p.BlockMCStrides() == 0 {
			t.Errorf("%s: multi-core strides never re-engaged after the boundary", name)
		}
		for c := 0; c < 4; c++ {
			v, _ := exact.PeekData(c, 1216)
			if w, _ := p.PeekData(c, 1216); w != v {
				t.Errorf("%s: core %d kernel output diverges", name, c)
			}
		}
	}
}

// TestBlockEngineSnapshotMidBlock pins the process-state contract: a
// snapshot taken while the block engine is mid-stride (the budget boundary
// falls inside a basic block) restores onto a fresh platform, forks onto a
// new one, and both — like the original continuing — stay bit-identical to
// an exact straight-through run.
func TestBlockEngineSnapshotMidBlock(t *testing.T) {
	const total, first = 50_000, 12_345
	cfg := scCfg()

	cfg.Exact = true
	exact, err := New(cfg, blockKernelImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Run(total); err != nil {
		t.Fatal(err)
	}

	cfg.Exact = false
	fast, err := New(cfg, blockKernelImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Run(first); err != nil {
		t.Fatal(err)
	}
	if fast.BlockCycles() == 0 {
		t.Fatal("block engine never engaged on the compute kernel")
	}
	snap := fast.Snapshot()

	restored, err := New(cfg, blockKernelImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.BlockRuns() != 0 || restored.BlockCycles() != 0 {
		t.Errorf("restored platform reports %d runs / %d cycles, want fresh diagnostics",
			restored.BlockRuns(), restored.BlockCycles())
	}

	fork, err := fast.Fork(fast.Config())
	if err != nil {
		t.Fatal(err)
	}

	for name, p := range map[string]*Platform{"original": fast, "restored": restored, "forked": fork} {
		if err := p.Run(total - first); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertIdenticalNoTrace(t, exact, p)
		if v, _ := exact.PeekData(0, 256); func() uint16 { w, _ := p.PeekData(0, 256); return w }() != v {
			t.Errorf("%s: kernel output diverges", name)
		}
	}
}

// TestBlockEngineTracerInhibits: with an event recorder attached the block
// engine must stay off (block stretches are not trace-silent in general),
// and the traced fast run stays bit-identical to the traced exact run.
func TestBlockEngineTracerInhibits(t *testing.T) {
	build := func(exactMode bool) *Platform {
		cfg := scCfg()
		cfg.Exact = exactMode
		p, err := New(cfg, blockKernelImage())
		if err != nil {
			t.Fatal(err)
		}
		p.SetTracer(trace.NewRecorder(1 << 16))
		if err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return p
	}
	exact, fast := build(true), build(false)
	assertIdentical(t, exact, fast)
	if fast.BlockCycles() != 0 {
		t.Errorf("block engine executed %d cycles with a tracer attached, want 0", fast.BlockCycles())
	}
}

// TestBlockEngineYieldsSpinLoops: a tight single-core poll loop on a banked
// address is the one busy regime the block engine must not keep — executing
// it beats Step but loses to the spin engine's O(1) leap. The engine must
// yield after the first taken backward branch and the spin engine must then
// carry the run, bit-identically.
func TestBlockEngineYieldsSpinLoops(t *testing.T) {
	words := []isa.Word{
		enc(isa.OpADDI, 7, 0, 0, 200),
		enc(isa.OpADDI, 2, 0, 0, 0),
		enc(isa.OpLW, 1, 7, 0, 0),   // wait: r1 = mem[200] (always 0)
		enc(isa.OpBEQ, 0, 1, 2, -2), // spin forever
	}
	img := func() *Image {
		return &Image{
			Code:    []CodeSeg{{Base: 0, Words: words}},
			Entries: []int{0},
			Shared:  []DataSeg{{Base: 200, Words: []uint16{0}}},
		}
	}
	const budget = 30_000
	cfg := scCfg()
	cfg.Exact = true
	exact, err := New(cfg, img())
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Run(budget); err != nil {
		t.Fatal(err)
	}
	cfg.Exact = false
	fast, err := New(cfg, img())
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Run(budget); err != nil {
		t.Fatal(err)
	}
	assertIdenticalNoTrace(t, exact, fast)
	if fast.SpinSkippedCycles() < budget/2 {
		t.Errorf("spin engine skipped only %d of %d cycles; the block engine must yield spin loops",
			fast.SpinSkippedCycles(), budget)
	}
	if fast.BlockCycles() > 64 {
		t.Errorf("block engine executed %d cycles of a spin loop, want only the pre-yield prefix", fast.BlockCycles())
	}
}
