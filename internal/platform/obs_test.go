package platform

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
)

// newObsSink builds a full observability sink (timeline + registry), the
// configuration the -timeline-out/-metrics-out flags produce.
func newObsSink() *obs.Sink {
	return obs.NewSink(obs.NewTimeline(obs.DefaultTimelineCap), obs.NewRegistry())
}

// countKind tallies the timeline events of one kind.
func countKind(events []obs.Event, kind obs.Kind) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestObserverSpinLeapParity: attaching the sink must not change a single
// observable output of the busy-wait run — and, unlike the tracer, must not
// disengage the spin engine. Every leap lands on the timeline as one span
// whose duration is exactly period x iterations, and the skipped-cycle sum
// reconciles with the engine's own statistics.
func TestObserverSpinLeapParity(t *testing.T) {
	mk := func(t *testing.T) *Image { return busyWaitImage(t, spinConsumerSrc) }
	cfg := nosyncCfg()
	cfg.Exact = false
	plain, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(40_000); err != nil {
		t.Fatal(err)
	}
	observed, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	sink := newObsSink()
	observed.SetObserver(sink)
	if err := observed.Run(40_000); err != nil {
		t.Fatal(err)
	}
	assertIdenticalNoTrace(t, plain, observed)
	if e, f := plain.SpinSkippedCycles(), observed.SpinSkippedCycles(); e != f || f == 0 {
		t.Fatalf("spin engagement diverges under observation: plain %d, observed %d", e, f)
	}
	var spanSum uint64
	for _, e := range sink.Events() {
		if e.Kind != obs.KindSpinLeap {
			continue
		}
		if e.Dur != uint64(e.Arg1)*uint64(e.Arg2) {
			t.Errorf("spin-leap span at cycle %d: dur %d != period %d x iterations %d",
				e.Cycle, e.Dur, e.Arg1, e.Arg2)
		}
		spanSum += e.Dur
	}
	if spanSum != observed.SpinSkippedCycles() {
		t.Errorf("spin-leap spans sum to %d cycles, engine skipped %d", spanSum, observed.SpinSkippedCycles())
	}
	if n := countKind(sink.Events(), obs.KindADCSample); n == 0 {
		t.Error("no ADC sample events on a run that consumed samples")
	}
	if h, ok := sink.Registry().Histogram("engine.spin_leap_cycles"); !ok || h.Sum != observed.SpinSkippedCycles() {
		t.Error("spin-leap histogram does not reconcile with the engine's skipped-cycle count")
	}
}

// barrier pair: the consumer registers on point 0 and sleeps; the producer
// raises the counter, works, and the closing SDEC releases the consumer.
const barrierProducerSrc = `
.equ PT, 0
.code producer
    sinc #PT
    nop
    nop
    nop
    nop
    sdec #PT
    halt
`

const barrierConsumerSrc = `
.equ PT, 0
.code consumer
    snop #PT
    sleep
    halt
`

// TestObserverBarrierEvents walks one complete barrier through the sink: the
// arrivals (SINC and SNOP both set identification flags), the releasing
// SDEC with the consumer in the released mask, the wake, and the per-group
// registration-to-release wait-time histogram.
func TestObserverBarrierEvents(t *testing.T) {
	img := buildImage(t, 0x2000, 1,
		[]string{barrierProducerSrc, barrierConsumerSrc},
		[]int{0, isa.IMBankWords}, nil)
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	sink := newObsSink()
	p.SetObserver(sink)
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("barrier pair did not complete")
	}
	events := sink.Events()
	if n := countKind(events, obs.KindBarrierArrive); n < 2 {
		t.Errorf("barrier-arrive events = %d, want the producer's and the consumer's", n)
	}
	releases := 0
	for _, e := range events {
		if e.Kind != obs.KindBarrierRelease {
			continue
		}
		releases++
		if e.Arg2&(1<<1) == 0 {
			t.Errorf("release mask %#x does not include the sleeping consumer", e.Arg2)
		}
	}
	if releases != 1 {
		t.Errorf("barrier-release events = %d, want 1", releases)
	}
	if n := countKind(events, obs.KindWake); n == 0 {
		t.Error("no wake event for the released consumer")
	}
	if n := countKind(events, obs.KindHalt); n != 2 {
		t.Errorf("halt events = %d, want one per core", n)
	}
	if h, ok := sink.Registry().Histogram("sync.barrier_wait_cycles.g0"); !ok || h.Count == 0 {
		t.Error("barrier wait-time histogram is empty after a completed barrier")
	}
}

// TestObserverTimeoutEvents: a stalled wait recovered by the sync timeout
// must surface as a sync-timeout instant on the waiting core plus its wake,
// and tick the timeouts-fired counter.
func TestObserverTimeoutEvents(t *testing.T) {
	p, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	sink := newObsSink()
	p.SetObserver(sink)
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("timeout recovery did not let the consumer finish")
	}
	events := sink.Events()
	timeouts := 0
	for _, e := range events {
		if e.Kind != obs.KindTimeout {
			continue
		}
		timeouts++
		if e.ID != 1 {
			t.Errorf("timeout fired on core %d, want the stalled consumer (1)", e.ID)
		}
	}
	if timeouts != 1 {
		t.Errorf("sync-timeout events = %d, want 1", timeouts)
	}
	if n := countKind(events, obs.KindWake); n == 0 {
		t.Error("no wake event after the timeout recovery")
	}
	if got := sink.Registry().Counter("sync.timeouts_fired"); got != 1 {
		t.Errorf("sync.timeouts_fired = %d, want 1", got)
	}
}

// TestObserverDisabledZeroAlloc pins the disabled path's cost at the
// platform's own emit sites: with no observer attached, the nil *obs.Sink
// methods the hot loops call must not allocate.
func TestObserverDisabledZeroAlloc(t *testing.T) {
	p, err := New(scCfg(), buildImage(t, 0, 0, []string{"\n.code main\n    halt\n"}, []int{0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if p.Observer() != nil {
		t.Fatal("fresh platform has an observer attached")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.obs.Instant(obs.KindWake, obs.TrackCore, 0, 123, 0, 0)
		p.obs.Span(obs.KindIdleLeap, obs.TrackEngine, 0, 123, 64, 0, 0)
		p.obs.Observe("engine.idle_leap_cycles", 64)
		p.obs.Add("sync.timeouts_fired", 1)
	})
	if allocs != 0 {
		t.Errorf("disabled observer path allocates %.1f times per emit round, want 0", allocs)
	}
}

// TestObserverAdoptResets: observability stamps are process state, not
// simulated state — Restore must clear them (docs/FORMATS.md), never carry
// them across from the snapshotted platform or leave the adopter's own
// stale stamps behind.
func TestObserverAdoptResets(t *testing.T) {
	mk := func(t *testing.T) *Image { return busyWaitImage(t, spinConsumerSrc) }
	cfg := nosyncCfg()
	cfg.Exact = false
	p, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	p.SetObserver(newObsSink())
	if err := p.Run(12_000); err != nil {
		t.Fatal(err)
	}
	if p.obsADC[0] == 0 {
		t.Fatal("observed run consumed no ADC samples; the reset check would be vacuous")
	}
	snap := p.Snapshot()

	q, err := New(cfg, mk(t))
	if err != nil {
		t.Fatal(err)
	}
	q.SetObserver(newObsSink())
	if err := q.Run(12_000); err != nil {
		t.Fatal(err)
	}
	if err := q.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for ch, n := range q.obsADC {
		if n != 0 {
			t.Errorf("channel %d ADC stamp = %d after Restore, want 0", ch, n)
		}
	}
	for c, w := range q.obsWait {
		if w != 0 {
			t.Errorf("core %d barrier stamp = %d after Restore, want 0", c, w)
		}
	}
	// The restored platform must still continue bit-identically to the
	// uninterrupted one, observer attached on both sides.
	if err := p.Run(28_000); err != nil {
		t.Fatal(err)
	}
	if err := q.Run(28_000); err != nil {
		t.Fatal(err)
	}
	assertIdenticalNoTrace(t, p, q)
}
