// Spin-loop fast-forward engine.
//
// The idle engine (fastforward.go) only leaps when *every* core is halted,
// gated or inside its wake latency. The busy-wait baseline (MC-nosync)
// breaks that precondition by design: consumers poll shared counters in
// tight load/compare/branch loops, so the platform is never quiescent
// between samples and the no-sync column used to simulate cycle-by-cycle.
// This engine extends fast-forward to those partially-idle stretches.
//
// It works in three stages:
//
//  1. Nominate. Each core's SpinTracker (internal/core/spin.go) watches the
//     executed-PC stream for a small, side-effect-free loop signature with a
//     bounded observed-address set. When every running core is nominated
//     (gated/halted cores contribute nothing), the engine arms a probe.
//
//  2. Prove. The probe captures the platform's evolution-relevant state —
//     core pipelines and registers, synchronizer points/states/tokens/IRQs,
//     crossbar phases, the data memory's write generation (read-set
//     stability: internal/mem), debug/error stream lengths, host flag — and
//     keeps stepping normally. If the exact same state recurs P cycles
//     later with no DM write, no ADC event and no pending wake in between,
//     the stretch is periodic with period P: the next P cycles must repeat
//     the last P exactly. Arbitration phase matters only when the window
//     saw a bank conflict; a conflict-free window grants every request at
//     every rotating-priority phase (interco.PhasePeriod), so its
//     recurrence is accepted phase-free and short periods stay short.
//
//  3. Leap. The counter, busy-cycle and sample-window deltas of the proven
//     period are replayed arithmetically for as many whole periods as fit
//     before the next absolute-time event (ADC sampling instant, cycle
//     budget): power.Counters.AddScaled, per-core busy/window accumulators,
//     Crossbar.AdvanceN, Synchronizer.FastForward. Because the leap starts
//     and ends in the same proven state, it is bit-identical to stepping —
//     enforced against -exact by the golden tests here (spinff_test.go) and
//     across every bundled scenario (internal/scenario).
//
// A failed nomination or probe costs nothing but the bookkeeping: the
// probed cycles were ordinary steps, and retries back off exponentially.
// Event tracing inhibits this engine (unlike idle stretches, a spin loop
// emits state-transition trace records every few cycles, which a leap
// cannot reproduce without stepping); a platform with a tracer attached
// simply keeps the cycle-accurate path and stays bit-identical by
// construction.

package platform

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/power"
)

// Spin-engine tuning. All three only trade wall-clock for wall-clock; none
// affect simulation results.
const (
	// spinProbeMax bounds one recurrence probe. It must cover
	// lcm(loop period, interco.PhasePeriod) for conflicting loops up to
	// MaxSpinPeriod instructions plus their stalls and bubbles.
	spinProbeMax = 8192
	// spinRecheck is the fixed interval between nomination attempts while
	// cores are doing real work. Rejections there are O(1) — stores reset
	// the trackers' clean windows — so polling often costs next to nothing
	// and catches the start of a spin stretch promptly.
	spinRecheck = 16
	// spinBackoffMin/Max bound the exponential retry backoff after a
	// *failed probe*: the expensive case, where the trackers nominated a
	// loop but the recurrence proof fell through.
	spinBackoffMin = 64
	spinBackoffMax = 4096
)

// spinFF is the engine state embedded in Platform.
type spinFF struct {
	// tracking mirrors "!exact && no tracer" for the current Run; the
	// per-instruction hooks in Step are gated on it.
	tracking bool
	track    []core.SpinTracker

	// Detection throttle.
	nextCheck  uint64
	backoff    uint64
	sampleSeen int

	// Armed probe: the state captured at arm time, to be matched.
	armed              bool
	start              uint64
	deadline           uint64
	gen                uint64
	anchor             int // index of the running core used as cheap filter
	cores              []cpu.Core
	sync               core.SyncState
	imxPhase, dmxPhase int
	ctr                power.Counters
	busy               []uint64
	window             []uint32
	debugLen, errLen   int
	hostFlag           uint16
	lastSample         int

	// Wall-clock diagnostics (process state, not snapshotted: a probe
	// re-runs after restore, so leap placement depends on Run chunking).
	leaps   uint64
	skipped uint64
}

// SpinLeaps returns how many bulk spin-loop leaps the fast-forward engine
// took. Like FFLeaps it is a wall-clock diagnostic: identical simulations
// chunked differently may leap differently while producing bit-identical
// results. Restore and Fork reset it.
func (p *Platform) SpinLeaps() uint64 { return p.spin.leaps }

// SpinSkippedCycles returns how many cycles were accounted arithmetically by
// the spin-loop engine instead of being individually stepped. A diagnostic,
// like SpinLeaps.
func (p *Platform) SpinSkippedCycles() uint64 { return p.spin.skipped }

// spinSetTracking enables or disables spin detection for the current Run,
// resetting all detector and probe state on every transition (history
// gathered under the other mode would be stale).
func (p *Platform) spinSetTracking(on bool) {
	if p.spin.tracking == on {
		return
	}
	p.spin.tracking = on
	p.spinReset()
}

// spinReset clears detector and probe state: mode switches, Restore, Fork.
// The leap statistics reset too — they describe this engine instance's
// work, not the simulated run.
func (p *Platform) spinReset() {
	s := &p.spin
	s.armed = false
	s.nextCheck = 0
	s.backoff = spinBackoffMin
	s.sampleSeen = p.lastSample
	s.leaps = 0
	s.skipped = 0
	for c := range s.track {
		s.track[c].Reset()
	}
}

// spinRetryLater disarms/postpones detection with exponential backoff.
func (p *Platform) spinRetryLater() {
	s := &p.spin
	s.armed = false
	s.nextCheck = p.cycle + s.backoff
	if s.backoff < spinBackoffMax {
		s.backoff *= 2
	}
}

// spinObserve is called by Run after every completed Step while tracking is
// on. It advances whichever stage the engine is in: probing for a
// recurrence, or deciding whether to arm one.
func (p *Platform) spinObserve(limit uint64) {
	s := &p.spin
	if p.lastSample != s.sampleSeen {
		// A publication event ended the previous spin regime; probe the
		// next inter-sample stretch promptly.
		s.sampleSeen = p.lastSample
		s.armed = false
		s.backoff = spinBackoffMin
		s.nextCheck = p.cycle
	}
	if s.armed {
		p.spinTryLeap(limit)
		return
	}
	if p.lastCycleIdle || p.cycle < s.nextCheck {
		return
	}
	if !p.spinArm() {
		// Not a spin stretch (yet): cores are mid-work. Cheap fixed-interval
		// recheck; the exponential backoff is reserved for failed probes.
		s.nextCheck = p.cycle + spinRecheck
	}
}

// spinArm nominates the current stretch: every running core must be inside
// a recognized spin loop and no wake latency may be pending. On success the
// evolution-relevant platform state is captured for the recurrence proof.
func (p *Platform) spinArm() bool {
	s := &p.spin
	anchor := -1
	for c := 0; c < p.ncore; c++ {
		if p.sync.State(c) != core.StateRunning {
			continue
		}
		if _, ok := s.track[c].Candidate(); !ok {
			return false
		}
		if anchor < 0 {
			anchor = c
		}
	}
	if anchor < 0 {
		// Fully idle: the quiescence engine's territory.
		return false
	}
	if _, ok := p.sync.NextWake(p.cycle); ok {
		// An imminent wake is a state change the proof cannot straddle.
		return false
	}
	s.armed = true
	s.start = p.cycle
	s.deadline = p.cycle + spinProbeMax
	if p.adc != nil {
		if e := p.adc.NextEventCycle(); e < s.deadline {
			s.deadline = e
		}
	}
	s.gen = p.dmem.Gen()
	s.anchor = anchor
	if cap(s.cores) < p.ncore {
		s.cores = make([]cpu.Core, p.ncore)
	}
	s.cores = s.cores[:p.ncore]
	for c := range p.cores {
		s.cores[c] = *p.cores[c]
	}
	s.sync = p.sync.Snapshot()
	s.imxPhase, s.dmxPhase = p.imx.Phase(), p.dmx.Phase()
	s.ctr = p.ctr
	s.busy = append(s.busy[:0], p.perCoreBusy...)
	s.window = append(s.window[:0], p.windowBusy...)
	s.debugLen, s.errLen = len(p.debug), len(p.errCodes)
	s.hostFlag = p.hostFlag
	s.lastSample = p.lastSample
	return true
}

// spinTryLeap checks the armed probe against the current state and leaps
// when the recurrence is proven.
func (p *Platform) spinTryLeap(limit uint64) {
	s := &p.spin
	if p.dmem.Gen() != s.gen || len(p.debug) != s.debugLen || len(p.errCodes) != s.errLen {
		// A write landed or a debug/error value was posted: the stretch was
		// not settled yet when the probe armed. Nothing needs undoing — the
		// probed cycles were ordinary steps — and the next quiet moment
		// deserves a prompt retry, so no backoff.
		s.armed = false
		s.nextCheck = p.cycle + spinRecheck
		return
	}
	if p.cycle >= s.deadline {
		// The window expired without recurring: the nominated loops are not
		// actually periodic at platform level (marching registers, drifting
		// alignment). Retrying immediately would fail the same way — back
		// off exponentially.
		p.spinRetryLater()
		return
	}
	// Cheap anchor: the full comparison only runs when the anchor core is
	// back at its captured PC.
	if p.cores[s.anchor].PC != s.cores[s.anchor].PC {
		return
	}
	for c := 0; c < p.ncore; c++ {
		if *p.cores[c] != s.cores[c] {
			return
		}
	}
	if p.hostFlag != s.hostFlag || !p.sync.StableEqual(&s.sync) {
		return
	}
	if _, ok := p.sync.NextWake(p.cycle); ok {
		return
	}
	period := p.cycle - s.start
	delta := p.ctr.Diff(&s.ctr)
	if (p.imx.Phase() != s.imxPhase || p.dmx.Phase() != s.dmxPhase) &&
		(delta.IMConflict != 0 || delta.DMConflict != 0) {
		// The window saw arbitration conflicts, whose grant pattern depends
		// on the rotating priority: only a phase-aligned recurrence (period
		// a multiple of interco.PhasePeriod) replays exactly. Keep probing
		// — the aligned recurrence lies ahead.
		return
	}

	// The next P cycles provably repeat the last P. Replay as many whole
	// periods as fit before anything absolute-time can intervene: the next
	// ADC sampling instant or the caller's cycle budget (no wake latency is
	// pending, and gated cores only resume on those ADC events).
	horizon := limit
	if p.adc != nil {
		if e := p.adc.NextEventCycle(); e-1 < horizon {
			horizon = e - 1
		}
	}
	if horizon <= p.cycle {
		s.armed = false
		s.nextCheck = horizon + 1 // nothing can leap before the event
		return
	}
	n := (horizon - p.cycle) / period
	if n == 0 {
		// Less than one whole period of room: step the remainder.
		s.armed = false
		s.nextCheck = horizon + 1
		return
	}
	p.ctr.AddScaled(&delta, n)
	for c := 0; c < p.ncore; c++ {
		db := p.perCoreBusy[c] - s.busy[c]
		p.perCoreBusy[c] += n * db
		dw := p.windowBusy[c] - s.window[c]
		p.windowBusy[c] += uint32(n) * dw
	}
	k := n * period
	// One span for the whole replayed stretch: spin windows are proven
	// side-effect-free (no sync ops, sleeps or MMIO), so no boundary event
	// is skipped and the leap is lossless for the observer.
	p.obs.Span(obs.KindSpinLeap, obs.TrackEngine, 0, p.cycle, k, int64(period), int64(n))
	p.obs.Observe("engine.spin_leap_cycles", k)
	p.cycle += k
	p.sync.FastForward(p.cycle)
	p.imx.AdvanceN(k)
	p.dmx.AdvanceN(k)
	s.leaps++
	s.skipped += k
	// The platform now sits in the proven state with less than one period
	// of room to the horizon; the remainder is stepped. The detector stays
	// warm for the next stretch.
	s.armed = false
	s.backoff = spinBackoffMin
	s.nextCheck = p.cycle
}
