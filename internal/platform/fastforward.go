// Idle fast-forward engine.
//
// The paper's workloads are idle-dominated: ECG arrives at a few hundred
// hertz while the platform clocks at megahertz, so on well over 99 % of
// simulated cycles every core is clock-gated waiting for the next sample.
// The cycle-accurate Step still costs a full Go iteration for each of those
// cycles. This engine detects quiescent stretches and leaps over them in
// O(1): when the previous stepped cycle did no work and no core can fetch,
// the platform can only change state at the next internally scheduled wake
// (a pending wake latency) or the next ADC sampling instant, so every cycle
// before that event is accounted in bulk and never simulated.
//
// The leap is semantically invisible by construction — each skipped cycle
// would have executed nothing, posted nothing, and recorded nothing:
//
//   - counters: Cycles plus CoreGated/CoreHalted per core are the only
//     counters an idle cycle touches (power.Counters.AddIdleCycles);
//   - crossbars: the rotating arbitration priority advances once per cycle
//     even when idle (Crossbar.AdvanceN keeps it in phase);
//   - synchronizer: Commit updates its cycle stamp every cycle, which wake
//     latencies are computed from (Synchronizer.FastForward);
//   - traces and debug output: transitions only fire at stepped cycles, and
//     a leap is gated on the previous cycle already being idle, so the
//     classification is constant across the skipped range;
//   - ADC: the leap never crosses NextEventCycle, where Tick is a no-op.
//
// The golden-equivalence suite (equiv_test.go) enforces bit-identical
// counters, traces, debug streams and architectural state between this path
// and the exact one across all three benchmark applications.
package platform

import (
	"math"

	"repro/internal/core"
	"repro/internal/obs"
)

// Run simulates up to n further cycles, stopping early when every core has
// halted or a fault occurs. Unless the platform is in exact mode, quiescent
// stretches are leapt over in bulk, and — when no event tracer is attached —
// proven-periodic spin-loop stretches too (spinff.go), while compute-bound
// stretches — one core in straight-line code, or N ≥ 2 running cores in
// conflict-free lock-step — execute on the basic-block fast path
// (blockengine.go); the observable behaviour is identical either way.
func (p *Platform) Run(n uint64) error {
	p.spinSetTracking(!p.exact && p.tracer == nil)
	limit := p.cycle + n
	for p.cycle < limit {
		if !p.exact && p.lastCycleIdle {
			p.fastForward(limit)
			if p.cycle >= limit {
				return nil
			}
		}
		if p.spin.tracking {
			// The block engine shares the spin engine's gate: no tracer, not
			// exact. It only ever executes cycles Step would have executed
			// identically, so it may run right up to the budget.
			p.blockRun(limit)
			if p.cycle >= limit {
				return nil
			}
		}
		if err := p.Step(); err != nil {
			return err
		}
		if p.AllHalted() {
			return nil
		}
		if p.spin.tracking {
			p.spinObserve(limit)
		}
	}
	return nil
}

// RunSeconds simulates the given wall-clock duration at the configured
// platform frequency.
func (p *Platform) RunSeconds(s float64) error {
	return p.Run(secondsToCycles(s, p.cfg.ClockHz))
}

// secondsToCycles converts a simulated duration to a whole-cycle budget,
// rounding to the nearest cycle. Truncation would undercount budgets whose
// product is not exactly representable — 0.3 s at 1 MHz is
// 299999.99999999994 in float64 and must still be 300000 cycles.
func secondsToCycles(s, clockHz float64) uint64 {
	return uint64(math.Round(s * clockHz))
}

// fastForward leaps from the current cycle to just before the next cycle at
// which anything can happen, clamped to limit (the exclusive step budget),
// accounting the skipped cycles in bulk. Callers must have observed a fully
// idle stepped cycle (p.lastCycleIdle), which guarantees the skipped range
// is classification-stable and therefore trace-silent.
func (p *Platform) fastForward(limit uint64) {
	// Run's exact semantics stop one step after full halt; never leap past
	// that point.
	if p.AllHalted() {
		return
	}
	// A core that can fetch on the very next cycle ends the quiescent
	// stretch immediately.
	if !p.sync.Quiescent(p.cycle + 1) {
		return
	}
	// The platform's only spontaneous events are wake-latency expiries and
	// ADC sampling instants; everything else is caused by executing cores.
	target := limit
	if w, ok := p.sync.NextWake(p.cycle); ok && w-1 < target {
		target = w - 1
	}
	if p.adc != nil {
		if s := p.adc.NextEventCycle(); s-1 < target {
			target = s - 1
		}
	}
	if target <= p.cycle {
		return
	}
	p.leap(target - p.cycle)
}

// leap bulk-accounts k quiescent cycles exactly as k idle Steps would.
func (p *Platform) leap(k uint64) {
	var gated, halted uint64
	for c := 0; c < p.ncore; c++ {
		if p.sync.State(c) == core.StateHalted {
			halted++
		} else {
			gated++
		}
	}
	p.ctr.AddIdleCycles(k, gated, halted)
	// One span event for the whole leap: no boundary event can occur inside
	// a quiescent stretch, so this is lossless, and emitting per-cycle
	// events would defeat the engine the observer exists to preserve.
	p.obs.Span(obs.KindIdleLeap, obs.TrackEngine, 0, p.cycle, k, 0, 0)
	p.obs.Observe("engine.idle_leap_cycles", k)
	p.cycle += k
	p.sync.FastForward(p.cycle)
	p.imx.AdvanceN(k)
	p.dmx.AdvanceN(k)
	p.ffLeaps++
	p.ffSkipped += k
	// An idle leap crossed cycles an armed spin probe assumed contiguous.
	p.spin.armed = false
}
