package platform

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
)

// stallImage builds a two-core image whose consumer registers on point 0 and
// sleeps while the producer halts without ever releasing it: a permanently
// stalled wait. The consumer stores its pending-IRQ word on resume, so the
// tests can observe whether the sync-timeout IRQ recovered it.
const silentProducerSrc = `
.code producer
    halt
`

const stalledConsumerSrc = `
.equ PT, 0
.code consumer
    snop #PT
    sleep
    li   r4, 0x7F04    ; RegIRQPend
    lw   r1, 0(r4)
    li   r6, 40
    sw   r1, 0(r6)
    halt
`

func stallImage(t *testing.T) *Image {
	return buildImage(t, 0x2000, 1,
		[]string{silentProducerSrc, stalledConsumerSrc},
		[]int{0, isa.IMBankWords},
		[]DataSeg{{Base: 40, Words: []uint16{0}}})
}

func timeoutCfg() Config {
	return Config{
		Arch:    power.Arch{Multi: true, TimeoutCycles: 600},
		ClockHz: 1e6, VoltageV: 0.5,
	}
}

// TestSyncTimeoutRecoversStalledWait: under a descriptor with a timeout, the
// stalled consumer is recovered — woken with the sync-timeout IRQ latched,
// its registration withdrawn — and the run completes cleanly.
func TestSyncTimeoutRecoversStalledWait(t *testing.T) {
	p, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if !p.AllHalted() {
		t.Fatal("timeout recovery did not let the consumer finish")
	}
	pend, _ := p.PeekData(0, 40)
	if pend&isa.IRQSyncTimeout == 0 {
		t.Errorf("pending word = %#x, want the sync-timeout IRQ visible to the woken core", pend)
	}
	if got := p.Counters().SyncTimeouts; got != 1 {
		t.Errorf("SyncTimeouts = %d, want 1", got)
	}
	if v := p.Violations(); len(v) != 0 {
		t.Errorf("recoverable timeout recorded violations: %v", v)
	}
	if d := p.DeadlockDiagnosis(); d != "" {
		t.Errorf("halted platform diagnosed as deadlocked: %s", d)
	}
}

// TestMidTimeoutSnapshotRestore: a snapshot captured while a timeout
// deadline is armed restores and continues bit-identically to an
// uninterrupted run — the deadline fires at the same absolute cycle.
func TestMidTimeoutSnapshotRestore(t *testing.T) {
	straight, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := straight.Run(5_000); err != nil {
		t.Fatal(err)
	}

	first, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Run(100); err != nil {
		t.Fatal(err)
	}
	snap := first.Snapshot()
	if snap.Sync.TimeoutAt[1] == 0 {
		t.Fatal("snapshot was not taken mid-timeout (no armed deadline)")
	}
	resumed, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(5_000 - resumed.Cycle()); err != nil {
		t.Fatal(err)
	}
	ws, gs := straight.Snapshot(), resumed.Snapshot()
	ws.FFLeaps, gs.FFLeaps = 0, 0 // leap placement is chunking-dependent
	if !reflect.DeepEqual(ws, gs) {
		t.Error("mid-timeout restore diverged from the uninterrupted run")
	}
	if resumed.Counters().SyncTimeouts != 1 {
		t.Errorf("SyncTimeouts = %d after resume, want 1", resumed.Counters().SyncTimeouts)
	}
}

// TestMidTimeoutForkRebasesDeadline: forking to a different clock while a
// deadline is armed preserves the remaining cycle-denominated wait budget,
// and the forked run still recovers through the timeout.
func TestMidTimeoutForkRebasesDeadline(t *testing.T) {
	p, err := New(timeoutCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	remaining := p.sync.TimeoutDeadline(1) - p.Cycle()
	if remaining == 0 || remaining > 600 {
		t.Fatalf("test setup: remaining wait = %d, want an armed deadline", remaining)
	}
	cfg := p.Config()
	cfg.ClockHz = 2e6
	forked, err := p.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := forked.sync.TimeoutDeadline(1) - forked.Cycle(); got != remaining {
		t.Errorf("forked remaining wait = %d cycles, want %d carried over", got, remaining)
	}
	if err := forked.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if !forked.AllHalted() || forked.Counters().SyncTimeouts != 1 {
		t.Errorf("forked run: halted=%v SyncTimeouts=%d, want recovery through the timeout",
			forked.AllHalted(), forked.Counters().SyncTimeouts)
	}
}

// TestDeadlockDiagnosis: the same stalled wait under a descriptor with no
// timeout never recovers; the platform must diagnose the wedge (gated cores,
// no wake source) and name the waiting core.
func TestDeadlockDiagnosis(t *testing.T) {
	p, err := New(mcCfg(), stallImage(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if p.AllHalted() {
		t.Fatal("test setup: the stalled wait should never complete without a timeout")
	}
	d := p.DeadlockDiagnosis()
	if d == "" {
		t.Fatal("wedged platform not diagnosed")
	}
	if !strings.Contains(d, "core 1") {
		t.Errorf("diagnosis %q does not name the waiting core", d)
	}
	if got := p.Counters().SyncTimeouts; got != 0 {
		t.Errorf("SyncTimeouts = %d without a timeout descriptor", got)
	}
}
