// Package platform assembles the full WBSN system simulator: computing
// cores, multi-banked instruction and data memories, interconnect
// (crossbars with broadcasting in the multi-core, simple decoders in the
// single-core baseline), the synchronizer unit, the ADC peripheral, and the
// single-threaded deterministic cycle loop tying them together (paper §IV).
//
// Three architecture variants are supported: SC (single-core baseline), MC
// (multi-core with the proposed synchronization) and MC-nosync (multi-core
// with busy-waiting instead of the sync ISE, Figure 6's middle bar).
//
// # Simulation engine
//
// Run is a multi-mode engine over one cycle-accurate core: Step (step.go)
// simulates a single platform cycle in seven phases, two fast-forward
// paths leap over stretches Step would simulate without anything
// observable happening — fully quiescent stretches (fastforward.go: every
// core halted, gated or inside its wake latency) and proven-periodic
// spin-loop stretches (spinff.go: every running core busy-waiting in a
// side-effect-free loop, the MC-nosync idiom) — and a basic-block engine
// (blockengine.go) executes single-core compute-bound stretches from
// per-image predecoded block tables with bulk accounting, removing Step's
// per-cycle dispatch overhead without skipping any work. All three are
// bit-identical to stepping; Config.Exact / SetExact force the
// cycle-by-cycle path as an escape hatch and as the reference the
// golden-equivalence tests compare against.
//
// # Snapshots
//
// Snapshot/Restore/Fork (snapshot.go) deep-copy, rewind and rehydrate the
// platform's mutable state. The invariants callers rely on: continuing a
// restored platform is bit-identical to never having stopped; forking a
// pristine platform equals building a fresh one; a fork onto a new clock
// re-derives frequency-dependent state (ADC sampling grids) and preserves
// cycle-denominated state (remaining wake latencies). Fast-forward
// bookkeeping is wall-clock diagnostics, not simulated state: leap
// placement may differ across Run chunkings and restores while every
// architectural observable stays identical.
//
// See docs/ARCHITECTURE.md for the package's place in the whole system and
// docs/FORMATS.md for the on-disk snapshot format.
package platform

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/interco"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/periph"
	"repro/internal/power"
	"repro/internal/trace"
)

// CodeSeg is one placed code segment of a program image.
type CodeSeg struct {
	Base  int // IM word address
	Words []isa.Word
}

// DataSeg is one placed shared-data segment (logical shared addresses).
type DataSeg struct {
	Base  uint16 // logical DM word address (< SharedLimit for MC)
	Words []uint16
}

// PrivSeg is a per-core private-data segment (multi-core only).
type PrivSeg struct {
	Core  int
	Base  uint16 // logical DM word address (>= SharedLimit)
	Words []uint16
}

// Image is a fully linked program ready to load, produced by internal/link.
type Image struct {
	Code          []CodeSeg
	Shared        []DataSeg
	Priv          []PrivSeg
	Entries       []int // entry PC per core; len(Entries) == number of used cores
	SharedLimit   uint16
	NumSyncPoints int

	// Static footprint for Table I's code-overhead row.
	StaticInstrs     int
	StaticSyncInstrs int
}

// CodeOverheadPct returns the sync-ISE share of the static code footprint.
func (img *Image) CodeOverheadPct() float64 {
	if img.StaticInstrs == 0 {
		return 0
	}
	return 100 * float64(img.StaticSyncInstrs) / float64(img.StaticInstrs)
}

// Config selects the simulated hardware configuration.
type Config struct {
	Arch     power.Arch
	ClockHz  float64
	VoltageV float64 // recorded for power reporting; does not alter timing

	// SampleRateHz is the base ADC sampling rate; 0 disables the ADC.
	SampleRateHz float64
	// ChannelRateHz optionally overrides the sampling rate per channel
	// (multi-rate scenarios); zero entries fall back to SampleRateHz.
	ChannelRateHz [periph.NumADCChannels]float64
	Traces        [periph.NumADCChannels][]int16

	// MaxDebug caps the debug/error traces (0 means a generous default).
	MaxDebug int

	// Exact disables the idle fast-forward engine, forcing the cycle-by-
	// cycle path for every simulated cycle. Both modes produce bit-identical
	// counters, traces and debug output (enforced by the golden-equivalence
	// tests); Exact exists as an escape hatch and as the reference for those
	// tests.
	Exact bool
}

// Platform is one instantiated system ready to run.
type Platform struct {
	cfg   Config
	img   *Image
	ncore int

	cores  []*cpu.Core
	imem   *mem.IMem
	dmem   *mem.DMem
	imx    *interco.Crossbar
	dmx    *interco.Crossbar
	sync   *core.Synchronizer
	adc    *periph.ADC
	mapper mem.Mapper

	ctr   power.Counters
	cycle uint64

	// Idle fast-forward engine state (see fastforward.go).
	exact         bool
	lastCycleIdle bool   // previous stepped cycle had every core idle/halted
	ffLeaps       uint64 // bulk leaps taken
	ffSkipped     uint64 // cycles accounted in bulk instead of stepped

	// Spin-loop fast-forward engine state (see spinff.go).
	spin spinFF

	// Basic-block execution engine state (see blockengine.go).
	block blockEngine

	perCoreBusy []uint64 // executed+stalled+bubble cycles per core

	// Worst-case busy cycles of any single core within one ADC sample
	// period, for dimensioning bursty sequential workloads.
	lastSample    int
	windowBusy    []uint32
	maxSampleBusy uint64

	// scratch buffers reused every cycle
	imReqs  []interco.Request
	imWho   []int
	dmReqs  []interco.Request
	dmWho   []int
	status  []coreStatus
	loadVal []uint16
	memOps  []cpu.MemOp // per-core data request decoded in phase 3

	debug    []DebugEntry
	errCodes []DebugEntry
	hostFlag uint16

	tracer     *trace.Recorder
	lastStatus []coreStatus

	// Observability sink state (see internal/obs). Unlike the tracer the
	// sink records only boundary events, so attaching one leaves all
	// three fast-path engines engaged and the simulated results
	// bit-identical. obsWait and obsADC are process state like the
	// spin/block diagnostics: reset on adopt(), never snapshotted.
	obs     *obs.Sink
	obsWait []uint64                      // per-core barrier-arrival cycle stamp (0 = none)
	obsADC  [periph.NumADCChannels]uint64 // per-channel published-sample count

	fault error
}

// SetTracer attaches an event recorder (nil detaches). Tracing records core
// state transitions, sync operations, sleeps, wakes, interrupts and ADC
// samples; it does not alter timing.
func (p *Platform) SetTracer(r *trace.Recorder) {
	p.tracer = r
	p.lastStatus = make([]coreStatus, p.ncore)
	for i := range p.lastStatus {
		p.lastStatus[i] = stHalted + 1 // force a first transition record
	}
}

// Tracer returns the attached recorder, if any.
func (p *Platform) Tracer() *trace.Recorder { return p.tracer }

// SetObserver attaches an observability sink (nil detaches). The sink
// receives boundary events — core wake/sleep/halt, barrier traffic,
// sync timeouts, ADC sample publications, and one span per fast-path
// leap or stride — stamped with exact simulated cycles. Attaching a sink
// never changes simulated results and keeps all fast-path engines
// engaged; with no sink attached the instrumentation sites cost a nil
// check and zero allocations.
func (p *Platform) SetObserver(s *obs.Sink) {
	p.obs = s
	if s != nil {
		p.sync.Obs = p
	} else {
		p.sync.Obs = nil
	}
	p.obsReset()
}

// Observer returns the attached sink, if any.
func (p *Platform) Observer() *obs.Sink { return p.obs }

// obsReset clears the sink-derived per-platform stamps. Called when the
// observer changes and when a snapshot is adopted: the stamps describe
// this process's observation window, not architectural state.
func (p *Platform) obsReset() {
	for i := range p.obsWait {
		p.obsWait[i] = 0
	}
	for i := range p.obsADC {
		p.obsADC[i] = 0
	}
}

// barrierWaitName indexes the per-group barrier wait-time histograms so
// the enabled emission path never formats strings.
var barrierWaitName = [power.MaxSyncGroups]string{
	"sync.barrier_wait_cycles.g0",
	"sync.barrier_wait_cycles.g1",
	"sync.barrier_wait_cycles.g2",
	"sync.barrier_wait_cycles.g3",
}

// SyncArrive implements core.SyncObserver: a core registered its flag at
// a sync point. The first arrival since the last release stamps the
// barrier wait start for the wait-time histogram.
func (p *Platform) SyncArrive(cycle uint64, g, pt, c int) {
	if p.obsWait[c] == 0 {
		p.obsWait[c] = cycle
	}
	p.obs.Instant(obs.KindBarrierArrive, obs.TrackSync, int32(g), cycle, int64(pt), int64(c))
}

// SyncRelease implements core.SyncObserver: an SDEC opened a sync point.
// Released cores' registration-to-release spans feed the per-group
// barrier wait-time histogram.
func (p *Platform) SyncRelease(cycle uint64, g, pt int, released uint8) {
	p.obs.Instant(obs.KindBarrierRelease, obs.TrackSync, int32(g), cycle, int64(pt), int64(released))
	for c := 0; c < p.ncore; c++ {
		if released&(1<<uint(c)) != 0 && p.obsWait[c] != 0 {
			p.obs.Observe(barrierWaitName[g], cycle-p.obsWait[c])
			p.obsWait[c] = 0
		}
	}
}

// SyncTimeout implements core.SyncObserver: a gated-wait deadline fired.
func (p *Platform) SyncTimeout(cycle uint64, c, withdrawn int) {
	p.obs.Instant(obs.KindTimeout, obs.TrackCore, int32(c), cycle, int64(withdrawn), 0)
	p.obs.Add("sync.timeouts_fired", 1)
	p.obsWait[c] = 0
}

// SyncWake implements core.SyncObserver: a core left the gated state.
func (p *Platform) SyncWake(cycle uint64, c int) {
	p.obs.Instant(obs.KindWake, obs.TrackCore, int32(c), cycle, 0, 0)
}

// DebugEntry is one value written to the debug or error MMIO ports.
type DebugEntry struct {
	Core  uint8
	Cycle uint64
	Value uint16
}

type coreStatus uint8

const (
	stIdle coreStatus = iota // gated or waking
	stExec
	stIMStall
	stDMStall
	stBubble
	stHalted
)

// New builds a platform from a configuration and a linked image.
func New(cfg Config, img *Image) (*Platform, error) {
	n := len(img.Entries)
	if n == 0 || n > isa.MaxCores {
		return nil, fmt.Errorf("platform: image uses %d cores, want 1..%d", n, isa.MaxCores)
	}
	if !cfg.Arch.IsMulti() && n != 1 {
		return nil, fmt.Errorf("platform: single-core architecture cannot run a %d-core image", n)
	}
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	for g := 0; g < cfg.Arch.NumGroups(); g++ {
		if m := cfg.Arch.GroupMask(g); m != 0xFF && m&^uint8(1<<uint(n)-1) != 0 {
			return nil, fmt.Errorf("platform: sync group %d mask %#02x names cores outside the %d-core image", g, m, n)
		}
	}
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("platform: non-positive clock %v", cfg.ClockHz)
	}
	if cfg.MaxDebug == 0 {
		cfg.MaxDebug = 1 << 20
	}

	p := &Platform{
		cfg:         cfg,
		img:         img,
		ncore:       n,
		imem:        mem.NewIMem(),
		dmem:        mem.NewDMem(),
		perCoreBusy: make([]uint64, n),
		windowBusy:  make([]uint32, n),
		imReqs:      make([]interco.Request, 0, n),
		imWho:       make([]int, 0, n),
		dmReqs:      make([]interco.Request, 0, n),
		dmWho:       make([]int, 0, n),
		status:      make([]coreStatus, n),
		loadVal:     make([]uint16, n),
		memOps:      make([]cpu.MemOp, n),
		obsWait:     make([]uint64, n),
		exact:       cfg.Exact,
	}
	p.sync = core.NewSynchronizer(n, img.NumSyncPoints, cfg.Arch, &p.ctr)
	p.spin.track = make([]core.SpinTracker, n)
	p.spinReset()

	// Memory fabric: the multi-core uses crossbars and the ATU's
	// interleaving; the baseline simple decoders and linear mapping.
	if cfg.Arch.IsMulti() {
		p.imx = interco.NewCrossbar(isa.IMBanks)
		p.dmx = interco.NewCrossbar(isa.DMBanks)
		priv := (isa.DMWords - int(img.SharedLimit)) / isa.MaxCores
		// An odd private stride makes core*priv take eight distinct
		// values modulo the bank count, so lock-step cores accessing
		// the same private offset land in different banks instead of
		// conflicting every cycle.
		if priv%2 == 0 {
			priv--
		}
		p.mapper = mem.ATU{SharedLimit: img.SharedLimit, PrivWords: priv}
		// The ATU interleaves both sections over all banks, so every
		// bank must stay powered (paper §V-A).
		for b := 0; b < isa.DMBanks; b++ {
			p.dmem.SetBankPower(b, true)
		}
	} else {
		// Single core: same arbitration semantics, but one requester
		// means every access is granted; model it with 1-bank-free
		// crossbars for uniform code, and linear address mapping so
		// unused banks stay off.
		p.imx = interco.NewCrossbar(isa.IMBanks)
		p.dmx = interco.NewCrossbar(isa.DMBanks)
		p.mapper = mem.LinearMap{}
		for _, seg := range img.Shared {
			lo, _ := p.mapper.Map(0, seg.Base)
			hi, _ := p.mapper.Map(0, seg.Base+uint16(len(seg.Words))-1)
			for b := lo; b <= hi; b++ {
				p.dmem.SetBankPower(b, true)
			}
		}
	}

	// Load code (powers the covered IM banks) and derive the basic-block
	// tables the block execution engine runs from. Code is immutable after
	// load, so one analysis pass per platform suffices.
	for _, seg := range img.Code {
		if err := p.imem.Load(seg.Base, seg.Words); err != nil {
			return nil, err
		}
	}
	p.block.set = mem.AnalyzeBlocks(p.imem)
	p.block.blockInit(n)
	// Load data through the address mapping.
	load := func(coreID int, base uint16, words []uint16) error {
		for i, w := range words {
			addr := base + uint16(i)
			if isa.IsMMIO(addr) {
				return fmt.Errorf("platform: data segment reaches MMIO at %#x", addr)
			}
			b, o := p.mapper.Map(coreID, addr)
			if !p.dmem.Write(b, o, w) {
				return fmt.Errorf("platform: data load at %#x hits powered-off bank %d", addr, b)
			}
		}
		return nil
	}
	for _, seg := range img.Shared {
		if err := load(0, seg.Base, seg.Words); err != nil {
			return nil, err
		}
	}
	for _, seg := range img.Priv {
		if seg.Core < 0 || seg.Core >= n {
			return nil, fmt.Errorf("platform: private segment for core %d outside image", seg.Core)
		}
		if err := load(seg.Core, seg.Base, seg.Words); err != nil {
			return nil, err
		}
	}

	// Synchronization points mirror into the first shared-DM words.
	if img.NumSyncPoints > 0 {
		p.sync.Mirror = func(pt int, v uint16) {
			b, o := p.mapper.Map(0, uint16(pt))
			p.dmem.Write(b, o, v)
		}
	}

	// Cores.
	p.cores = make([]*cpu.Core, n)
	for i, entry := range img.Entries {
		p.cores[i] = cpu.New(i, entry)
	}

	// ADC wired to the synchronizer's interrupt lines (traced when a
	// recorder is attached).
	if cfg.SampleRateHz > 0 {
		raise := func(mask uint16) {
			if p.tracer != nil {
				p.tracer.Record(p.cycle, -1, trace.KindIRQ, int32(mask), 0)
			}
			if p.obs != nil {
				for ch := 0; ch < periph.NumADCChannels; ch++ {
					if mask&(uint16(isa.IRQADC0)<<uint(ch)) != 0 {
						p.obsADC[ch]++
						p.obs.Instant(obs.KindADCSample, obs.TrackADC, int32(ch), p.cycle, int64(p.obsADC[ch]), 0)
					}
				}
			}
			p.sync.RaiseIRQ(mask)
		}
		var chans [periph.NumADCChannels]periph.Channel
		for ch := range chans {
			rate := cfg.ChannelRateHz[ch]
			if rate == 0 {
				rate = cfg.SampleRateHz
			}
			chans[ch] = periph.Channel{Trace: cfg.Traces[ch], RateHz: rate}
		}
		adc, err := periph.NewMultiRateADC(chans, cfg.ClockHz, raise, &p.ctr)
		if err != nil {
			return nil, err
		}
		p.adc = adc
	}
	return p, nil
}

// Counters exposes the accumulated activity counters.
func (p *Platform) Counters() *power.Counters { return &p.ctr }

// SetExact forces (true) or re-enables skipping via (false) both
// fast-forward engines — the quiescence leap and the spin-loop leap — for
// subsequent Run calls. Mode switches are safe at any cycle boundary: all
// paths maintain identical architectural state.
func (p *Platform) SetExact(exact bool) { p.exact = exact }

// Exact reports whether the fast-forward engines are disabled.
func (p *Platform) Exact() bool { return p.exact }

// FFLeaps returns how many bulk idle leaps the fast-forward engine took.
func (p *Platform) FFLeaps() uint64 { return p.ffLeaps }

// FFSkippedCycles returns how many cycles were accounted in bulk by the
// fast-forward engine instead of being individually stepped.
func (p *Platform) FFSkippedCycles() uint64 { return p.ffSkipped }

// Cycle returns the current cycle number.
func (p *Platform) Cycle() uint64 { return p.cycle }

// CoreBusy returns the busy (executed+stalled+bubble) cycles of core c.
func (p *Platform) CoreBusy(c int) uint64 { return p.perCoreBusy[c] }

// MaxSampleBusy returns the worst-case busy cycles any core spent within a
// single ADC sample period, the binding constraint for sequential workloads
// with bursty on-demand processing.
func (p *Platform) MaxSampleBusy() uint64 { return p.maxSampleBusy }

// PublishMetrics publishes the platform's run diagnostics into reg: the
// full activity counter set, the fast-path engine odometers, the
// per-core busy breakdown and the worst-case per-sample busy window.
// This is the uniform stats surface the CLIs print on stderr (replacing
// the former ad-hoc stdout stats lines); histograms (leap lengths,
// barrier waits) additionally populate live when a sink built over the
// same registry is attached.
func (p *Platform) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.ctr.Publish(reg)
	reg.Add("engine.ff.leaps", p.ffLeaps)
	reg.Add("engine.ff.skipped_cycles", p.ffSkipped)
	reg.Add("engine.spin.leaps", p.spin.leaps)
	reg.Add("engine.spin.skipped_cycles", p.spin.skipped)
	reg.Add("engine.block.runs", p.block.runs)
	reg.Add("engine.block.cycles", p.block.cycles)
	reg.Add("engine.block.mc_strides", p.block.mcRuns)
	reg.Add("engine.block.mc_cycles", p.block.mcCycles)
	reg.Add("sim.cycles", p.cycle)
	reg.Add("sim.max_sample_busy_cycles", p.maxSampleBusy)
	for c := 0; c < p.ncore; c++ {
		reg.Add(coreBusyName[c], p.perCoreBusy[c])
	}
}

var coreBusyName = [isa.MaxCores]string{
	"core.busy_cycles.c0", "core.busy_cycles.c1",
	"core.busy_cycles.c2", "core.busy_cycles.c3",
	"core.busy_cycles.c4", "core.busy_cycles.c5",
	"core.busy_cycles.c6", "core.busy_cycles.c7",
}

// CoreState returns the synchronizer's view of core c.
func (p *Platform) CoreState(c int) core.CoreState { return p.sync.State(c) }

// CoreRegs returns a snapshot of core c's registers (for tests).
func (p *Platform) CoreRegs(c int) [isa.NumRegs]uint16 { return p.cores[c].Regs }

// Overruns returns the ADC overrun count (0 when no ADC is configured).
func (p *Platform) Overruns() uint64 {
	if p.adc == nil {
		return 0
	}
	return p.adc.Overruns()
}

// Debug returns values written to RegDebugOut.
func (p *Platform) Debug() []DebugEntry { return p.debug }

// ErrCodes returns values written to RegDebugErr (application-level errors).
func (p *Platform) ErrCodes() []DebugEntry { return p.errCodes }

// Violations returns synchronizer protocol violations.
func (p *Platform) Violations() []string { return p.sync.Violations() }

// ActiveIMBanks returns the number of powered instruction banks.
func (p *Platform) ActiveIMBanks() int { return p.imem.ActiveBanks() }

// ActiveDMBanks returns the number of powered data banks.
func (p *Platform) ActiveDMBanks() int { return p.dmem.ActiveBanks() }

// PeekData reads logical address addr as seen by the given core, bypassing
// timing (for tests and result extraction).
func (p *Platform) PeekData(coreID int, addr uint16) (uint16, bool) {
	if isa.IsMMIO(addr) {
		return 0, false
	}
	b, o := p.mapper.Map(coreID, addr)
	return p.dmem.Read(b, o)
}

// PokeData writes logical address addr as seen by the given core, bypassing
// timing (for tests).
func (p *Platform) PokeData(coreID int, addr uint16, v uint16) bool {
	if isa.IsMMIO(addr) {
		return false
	}
	b, o := p.mapper.Map(coreID, addr)
	return p.dmem.Write(b, o, v)
}

// AllHalted reports whether every core has executed HALT.
func (p *Platform) AllHalted() bool {
	for c := 0; c < p.ncore; c++ {
		if p.sync.State(c) != core.StateHalted {
			return false
		}
	}
	return true
}

// DeadlockDiagnosis inspects the platform at a cycle boundary and reports a
// human-readable description when no core can ever make progress again: at
// least one core is still live, every live core is clock-gated, and nothing
// can wake any of them — no pending wake latency, no armed sync timeout, and
// no interrupt subscription a future ADC sample could fire. The empty string
// means the run can still progress (or has fully halted, which is normal
// termination). A sync-unit descriptor with TimeoutCycles set never reaches
// this state through sync flags alone: the timeout IRQ withdraws them first.
func (p *Platform) DeadlockDiagnosis() string {
	gated := 0
	for c := 0; c < p.ncore; c++ {
		switch p.sync.State(c) {
		case core.StateHalted:
			continue
		case core.StateRunning:
			return ""
		case core.StateGated:
			if p.sync.Subscription(c) != 0 && p.adc != nil {
				return "" // a future ADC sample delivers an IRQ wake
			}
			gated++
		}
	}
	if gated == 0 {
		return "" // fully halted: normal termination
	}
	if _, ok := p.sync.NextWake(p.cycle); ok {
		return "" // a wake latency or armed sync timeout is still pending
	}
	var waiting []string
	for c := 0; c < p.ncore; c++ {
		if p.sync.State(c) == core.StateGated {
			waiting = append(waiting, fmt.Sprintf("core %d", c))
		}
	}
	return fmt.Sprintf("deadlock: %s clock-gated with no wake source (no pending sync release, timeout or IRQ subscription)",
		strings.Join(waiting, ", "))
}

// PowerConfig assembles the power.SystemConfig describing this platform at
// its operating point.
func (p *Platform) PowerConfig() power.SystemConfig {
	return power.SystemConfig{
		Arch:          p.cfg.Arch,
		NumCores:      p.ncore,
		ActiveIMBanks: p.imem.ActiveBanks(),
		ActiveDMBanks: p.dmem.ActiveBanks(),
		VoltageV:      p.cfg.VoltageV,
		FreqHz:        p.cfg.ClockHz,
	}
}

// PowerReport computes the power decomposition of the run so far.
func (p *Platform) PowerReport(params *power.Params) (*power.Report, error) {
	return power.Compute(p.PowerConfig(), &p.ctr, params)
}
