package platform

import (
	"encoding/gob"
	"fmt"
	"io"
)

// SnapshotVersion is the on-disk snapshot format version. Bump it whenever
// Snapshot (or any state struct it embeds) changes incompatibly; decoding
// rejects mismatched versions instead of silently misinterpreting state.
//
// Version history:
//
//	1 — initial format (PR 4)
//	2 — power.Arch became a sync-architecture descriptor struct and
//	    core.SyncState gained group/event/timeout state, changing the gob
//	    shape of both
const SnapshotVersion = 2

// snapshotMagic guards against feeding an arbitrary gob stream (or an exp
// session checkpoint) into the platform decoder.
const snapshotMagic = "wbsn-platform-snapshot"

// SnapshotFile couples a snapshot with caller-owned metadata for on-disk
// checkpoints. The platform cannot verify that a snapshot matches the image
// and input traces it is restored under; Meta is where callers record that
// identity (application, architecture, signal configuration, seed, ...) and
// check it before Restore.
type SnapshotFile struct {
	Meta map[string]string
	Snap *Snapshot
}

// snapshotEnvelope is the versioned on-disk frame.
type snapshotEnvelope struct {
	Magic   string
	Version int
	File    SnapshotFile
}

// WriteSnapshotFile encodes the snapshot and its metadata to w in the
// versioned gob format.
func WriteSnapshotFile(w io.Writer, f *SnapshotFile) error {
	if f == nil || f.Snap == nil {
		return fmt.Errorf("platform: nil snapshot")
	}
	return gob.NewEncoder(w).Encode(snapshotEnvelope{
		Magic:   snapshotMagic,
		Version: SnapshotVersion,
		File:    *f,
	})
}

// ReadSnapshotFile decodes a snapshot written by WriteSnapshotFile,
// rejecting foreign streams and incompatible format versions.
func ReadSnapshotFile(r io.Reader) (*SnapshotFile, error) {
	var env snapshotEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("platform: decoding snapshot: %w", err)
	}
	if env.Magic != snapshotMagic {
		return nil, fmt.Errorf("platform: not a platform snapshot file")
	}
	if env.Version != SnapshotVersion {
		return nil, fmt.Errorf("platform: snapshot format version %d, this build reads %d", env.Version, SnapshotVersion)
	}
	if env.File.Snap == nil {
		return nil, fmt.Errorf("platform: snapshot file carries no state")
	}
	return &env.File, nil
}
