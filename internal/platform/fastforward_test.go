package platform

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// runModes builds two platforms from the same image — one exact, one with
// the idle fast-forward engine — runs both for n cycles with tracers
// attached, and returns them for comparison.
func runModes(t *testing.T, cfg Config, mkImg func(t *testing.T) *Image, n uint64) (exact, fast *Platform) {
	t.Helper()
	build := func(exactMode bool) *Platform {
		c := cfg
		c.Exact = exactMode
		p, err := New(c, mkImg(t))
		if err != nil {
			t.Fatal(err)
		}
		p.SetTracer(trace.NewRecorder(1 << 16))
		if err := p.Run(n); err != nil {
			t.Fatal(err)
		}
		return p
	}
	return build(true), build(false)
}

// assertIdentical checks every observable output of the two runs for
// bit-identity: counters, cycle position, architectural core state, debug
// and error streams, sample-window statistics and the full event trace.
func assertIdentical(t *testing.T, exact, fast *Platform) {
	t.Helper()
	if *exact.Counters() != *fast.Counters() {
		t.Errorf("counters diverge:\nexact: %+v\nfast:  %+v", *exact.Counters(), *fast.Counters())
	}
	if e, f := exact.Cycle(), fast.Cycle(); e != f {
		t.Errorf("cycle diverges: exact %d, fast %d", e, f)
	}
	for c := 0; c < exact.ncore; c++ {
		if e, f := exact.CoreBusy(c), fast.CoreBusy(c); e != f {
			t.Errorf("core %d busy diverges: exact %d, fast %d", c, e, f)
		}
		if e, f := exact.CoreState(c), fast.CoreState(c); e != f {
			t.Errorf("core %d state diverges: exact %v, fast %v", c, e, f)
		}
		if e, f := exact.CoreRegs(c), fast.CoreRegs(c); e != f {
			t.Errorf("core %d registers diverge:\nexact: %v\nfast:  %v", c, e, f)
		}
	}
	if e, f := exact.MaxSampleBusy(), fast.MaxSampleBusy(); e != f {
		t.Errorf("max sample busy diverges: exact %d, fast %d", e, f)
	}
	if e, f := exact.Overruns(), fast.Overruns(); e != f {
		t.Errorf("overruns diverge: exact %d, fast %d", e, f)
	}
	if !reflect.DeepEqual(exact.Debug(), fast.Debug()) {
		t.Errorf("debug streams diverge: exact %d entries, fast %d", len(exact.Debug()), len(fast.Debug()))
	}
	if !reflect.DeepEqual(exact.ErrCodes(), fast.ErrCodes()) {
		t.Errorf("error streams diverge: exact %d entries, fast %d", len(exact.ErrCodes()), len(fast.ErrCodes()))
	}
	if !reflect.DeepEqual(exact.Violations(), fast.Violations()) {
		t.Errorf("violations diverge: exact %v, fast %v", exact.Violations(), fast.Violations())
	}
	ev, fv := exact.Tracer().Events(), fast.Tracer().Events()
	if len(ev) != len(fv) {
		t.Errorf("trace lengths diverge: exact %d events, fast %d", len(ev), len(fv))
	}
	for i := 0; i < len(ev) && i < len(fv); i++ {
		if ev[i] != fv[i] {
			t.Errorf("trace diverges at event %d: exact %q, fast %q", i, ev[i].String(), fv[i].String())
			break
		}
	}
}

// TestFastForwardADCSleepLoop pits both modes on the interrupt-driven
// sample-collection loop, the paper's canonical duty cycle: long gated
// waits punctuated by ADC wakes.
func TestFastForwardADCSleepLoop(t *testing.T) {
	src := `
.code main
    li   r4, 0x7F03     ; RegIRQSub
    li   r1, 1          ; IRQADC0
    sw   r1, 0(r4)
    li   r2, 300        ; buffer
    li   r3, 0          ; count
    li   r6, 8
loop:
    sleep
    li   r4, 0x7F0B     ; RegADCStatus
    lw   r1, 0(r4)
    andi r1, r1, 1
    beqz r1, loop
    li   r4, 0x7F04     ; RegIRQPend: acknowledge
    li   r1, 1
    sw   r1, 0(r4)
    li   r4, 0x7F08     ; RegADCData0
    lw   r1, 0(r4)
    li   r4, 0x7F06     ; RegDebugOut: report each sample
    sw   r1, 0(r4)
    add  r5, r2, r3
    sw   r1, 0(r5)
    addi r3, r3, 1
    blt  r3, r6, loop
    halt
`
	mk := func(t *testing.T) *Image {
		return buildImage(t, 0, 0, []string{src}, []int{0}, []DataSeg{{Base: 300, Words: make([]uint16, 8)}})
	}
	cfg := scCfg()
	cfg.SampleRateHz = 250
	cfg.Traces[0] = []int16{11, 22, 33, 44, 55, 66, 77}
	exact, fast := runModes(t, cfg, mk, 60_000)
	assertIdentical(t, exact, fast)
	if !fast.AllHalted() {
		t.Fatal("fast run did not complete the sample loop")
	}
	if fast.FFSkippedCycles() == 0 {
		t.Error("fast-forward engine never engaged on an idle-dominated run")
	}
	if skipped := fast.FFSkippedCycles(); skipped < fast.Cycle()/2 {
		t.Errorf("only %d of %d cycles skipped; want idle domination", skipped, fast.Cycle())
	}
	if exact.FFSkippedCycles() != 0 {
		t.Errorf("exact mode skipped %d cycles, want 0", exact.FFSkippedCycles())
	}
}

// TestFastForwardProducerConsumer checks equivalence when wakes come from
// the synchronizer (SDEC release + wake latency) rather than the ADC.
func TestFastForwardProducerConsumer(t *testing.T) {
	exact, fast := runModes(t, mcCfg(), producerConsumerImage, 10_000)
	assertIdentical(t, exact, fast)
	if !fast.AllHalted() {
		t.Fatal("producer/consumer did not halt")
	}
	if sum, _ := fast.PeekData(0, 30); sum != 15 {
		t.Errorf("consumer sum = %d, want 15", sum)
	}
}

// TestFastForwardDeadlockLeap covers the pathological all-gated case with
// no wake source at all: exact mode burns every budgeted cycle idle; the
// fast path must leap straight to the budget with identical accounting.
func TestFastForwardDeadlockLeap(t *testing.T) {
	src := `
.code main
    sleep
    halt
`
	mk := func(t *testing.T) *Image {
		return buildImage(t, 0x2000, 1, []string{src, src}, []int{0, 64}, nil)
	}
	exact, fast := runModes(t, mcCfg(), mk, 50_000)
	assertIdentical(t, exact, fast)
	if fast.Cycle() != 50_000 {
		t.Errorf("fast run stopped at cycle %d, want the full 50000 budget", fast.Cycle())
	}
	if fast.FFSkippedCycles() < 49_000 {
		t.Errorf("skipped %d cycles, want nearly all of the deadlocked run", fast.FFSkippedCycles())
	}
}

// TestFastForwardHaltedStops verifies Run's early-stop semantics survive
// the refactor: an already-halted platform steps exactly once per Run call
// in both modes.
func TestFastForwardHaltedStops(t *testing.T) {
	src := `
.code main
    halt
`
	for _, exactMode := range []bool{true, false} {
		cfg := scCfg()
		cfg.Exact = exactMode
		p, err := New(cfg, buildImage(t, 0, 0, []string{src}, []int{0}, nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
		halted := p.Cycle()
		if err := p.Run(10_000); err != nil {
			t.Fatal(err)
		}
		if p.Cycle() != halted+1 {
			t.Errorf("exact=%v: re-running a halted platform moved cycle %d -> %d, want one step",
				exactMode, halted, p.Cycle())
		}
	}
}

// TestSecondsToCyclesRounds is the cycle-budget regression test: fractional
// durations at non-integer-MHz clocks must round to the nearest cycle, not
// truncate one away.
func TestSecondsToCyclesRounds(t *testing.T) {
	cases := []struct {
		s, clockHz float64
		want       uint64
	}{
		{1, 1e6, 1000000},
		// 0.3 * 1e6 = 299999.99999999994 in float64: truncation loses a
		// cycle of the budget.
		{0.3, 1e6, 300000},
		{2.5, 3.3e6, 8250000},
		{0.1, 3.3e6, 330000},
		{60, 1e6, 60000000},
	}
	for _, c := range cases {
		if got := secondsToCycles(c.s, c.clockHz); got != c.want {
			t.Errorf("secondsToCycles(%v, %v) = %d, want %d", c.s, c.clockHz, got, c.want)
		}
	}
}
