package platform

import (
	"testing"

	"repro/internal/power"
)

// TestMaxSampleBusyTracksBursts verifies the per-sample worst-case busy
// tracking that dimensions bursty sequential workloads: a program that works
// hard on every fourth sample must report the burst, not the average.
func TestMaxSampleBusyTracksBursts(t *testing.T) {
	src := `
.code main
    li   r4, 0x7F03     ; subscribe channel 0
    li   r1, 1
    sw   r1, 0(r4)
    li   r6, 0          ; sample counter
loop:
    sleep
    li   r4, 0x7F0B
    lw   r1, 0(r4)
    andi r1, r1, 1
    beqz r1, loop
    li   r4, 0x7F04
    li   r1, 1
    sw   r1, 0(r4)
    li   r4, 0x7F08     ; consume the sample
    lw   r1, 0(r4)
    ; every 4th sample: burn ~3000 extra cycles
    andi r2, r6, 3
    bnez r2, next
    li   r3, 1000
burn:
    addi r3, r3, -1
    bnez r3, burn
next:
    addi r6, r6, 1
    j    loop
`
	img := buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	cfg := scCfg()
	cfg.ClockHz = 4e6
	cfg.SampleRateHz = 250
	cfg.Traces[0] = make([]int16, 16)
	p, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunSeconds(0.2); err != nil {
		t.Fatal(err)
	}
	// The burn loop costs ~3000 cycles (1000 iterations x (addi+bnez+bubble));
	// base per-sample work is ~20 cycles. The tracked max must reflect the
	// burst, and clearly exceed the mean busy per sample window.
	meanPerSample := p.CoreBusy(0) / p.Counters().ADCSamples
	if p.MaxSampleBusy() < 2000 {
		t.Errorf("MaxSampleBusy = %d, want >= 2000 (the burst)", p.MaxSampleBusy())
	}
	if p.MaxSampleBusy() <= meanPerSample+500 {
		t.Errorf("MaxSampleBusy = %d does not stand out from mean %d", p.MaxSampleBusy(), meanPerSample)
	}
}

// TestMaxSampleBusyZeroWithoutADC checks the tracker stays inert when no
// peripheral drives sample windows.
func TestMaxSampleBusyZeroWithoutADC(t *testing.T) {
	src := ".code main\n li r1, 100\nl: addi r1, r1, -1\n bnez r1, l\n halt\n"
	img := buildImage(t, 0, 0, []string{src}, []int{0}, nil)
	p, err := New(scCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(2000); err != nil {
		t.Fatal(err)
	}
	if p.MaxSampleBusy() != 0 {
		t.Errorf("MaxSampleBusy = %d without an ADC", p.MaxSampleBusy())
	}
}

// TestPowerConfigReflectsPlatform checks the power-report plumbing fields.
func TestPowerConfigReflectsPlatform(t *testing.T) {
	img := producerConsumerImage(t)
	p, err := New(mcCfg(), img)
	if err != nil {
		t.Fatal(err)
	}
	pc := p.PowerConfig()
	if pc.Arch != power.MC || pc.NumCores != 2 || pc.ActiveDMBanks != 16 {
		t.Errorf("PowerConfig = %+v", pc)
	}
	if pc.FreqHz != 1e6 || pc.VoltageV != 0.5 {
		t.Errorf("operating point = %v Hz / %v V", pc.FreqHz, pc.VoltageV)
	}
}
