package platform_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/signal"
)

// snapSource synthesizes a short deterministic ECG record shared by the
// snapshot tests.
func snapSource(t *testing.T, app string) *signal.Source {
	t.Helper()
	cfg := signal.Config{Kind: signal.KindECG, Seed: 1, PathologicalFrac: 0.2}
	src, err := signal.Synthesize(apps.SourceConfig(app, cfg), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func newSnapPlatform(t *testing.T, app string, arch power.Arch, src *signal.Source, clockHz float64) (*apps.Variant, *platform.Platform) {
	t.Helper()
	v, err := apps.Build(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.NewPlatform(src, clockHz, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return v, p
}

// assertSameState compares every observable surface of two platforms.
func assertSameState(t *testing.T, v *apps.Variant, want, got *platform.Platform) {
	t.Helper()
	if *want.Counters() != *got.Counters() {
		t.Errorf("counters diverge:\nwant: %+v\ngot:  %+v", *want.Counters(), *got.Counters())
	}
	if w, g := want.Cycle(), got.Cycle(); w != g {
		t.Errorf("cycle diverges: want %d, got %d", w, g)
	}
	for c := 0; c < v.Cores; c++ {
		if w, g := want.CoreRegs(c), got.CoreRegs(c); w != g {
			t.Errorf("core %d registers diverge", c)
		}
		if w, g := want.CoreState(c), got.CoreState(c); w != g {
			t.Errorf("core %d state diverges: want %v, got %v", c, w, g)
		}
		if w, g := want.CoreBusy(c), got.CoreBusy(c); w != g {
			t.Errorf("core %d busy diverges: want %d, got %d", c, w, g)
		}
	}
	if w, g := want.MaxSampleBusy(), got.MaxSampleBusy(); w != g {
		t.Errorf("max sample busy diverges: want %d, got %d", w, g)
	}
	if w, g := want.Overruns(), got.Overruns(); w != g {
		t.Errorf("overruns diverge: want %d, got %d", w, g)
	}
	if !reflect.DeepEqual(want.Debug(), got.Debug()) {
		t.Errorf("debug streams diverge: want %d entries, got %d", len(want.Debug()), len(got.Debug()))
	}
	if !reflect.DeepEqual(want.ErrCodes(), got.ErrCodes()) {
		t.Errorf("error streams diverge: want %d entries, got %d", len(want.ErrCodes()), len(got.ErrCodes()))
	}
	ws, gs := want.Snapshot(), got.Snapshot()
	// FFLeaps is a wall-clock diagnostic, not architectural state: a leap
	// clamped at a Run-budget boundary is resumed as a second leap, so the
	// count depends on how the budget was sliced. The skipped-cycle total
	// and every architectural field must still match exactly.
	ws.FFLeaps, gs.FFLeaps = 0, 0
	if !reflect.DeepEqual(ws, gs) {
		t.Error("full snapshots diverge")
	}
}

// TestSnapshotRestoreRewind pins the rewind/replay contract: restoring a
// mid-run snapshot and re-simulating reproduces the exact final state.
func TestSnapshotRestoreRewind(t *testing.T) {
	src := snapSource(t, apps.MF3L)
	v, p := newSnapPlatform(t, apps.MF3L, power.MC, src, 2e6)
	if err := p.RunSeconds(0.3); err != nil {
		t.Fatal(err)
	}
	mid := p.Snapshot()
	if err := p.RunSeconds(0.3); err != nil {
		t.Fatal(err)
	}
	final := p.Snapshot()

	if err := p.Restore(mid); err != nil {
		t.Fatal(err)
	}
	if err := p.RunSeconds(0.3); err != nil {
		t.Fatal(err)
	}
	replayed := p.Snapshot()
	if !reflect.DeepEqual(final, replayed) {
		t.Errorf("replay from mid-run snapshot diverges from the original run:\nwant %+v\ngot  %+v", final, replayed)
	}
	_ = v
}

// TestSnapshotContinuationMatchesStraightRun pins the amortized-warm-up
// contract: a second platform restored from a mid-run snapshot and run to
// completion is bit-identical to one platform simulating straight through —
// for every benchmark on both the single- and multi-core fabrics.
func TestSnapshotContinuationMatchesStraightRun(t *testing.T) {
	for _, app := range apps.Names {
		for _, arch := range []power.Arch{power.SC, power.MC} {
			app, arch := app, arch
			t.Run(fmt.Sprintf("%s/%v", app, arch), func(t *testing.T) {
				src := snapSource(t, app)
				v, straight := newSnapPlatform(t, app, arch, src, 2e6)
				if err := straight.RunSeconds(0.6); err != nil {
					t.Fatal(err)
				}

				_, first := newSnapPlatform(t, app, arch, src, 2e6)
				if err := first.RunSeconds(0.25); err != nil {
					t.Fatal(err)
				}
				snap := first.Snapshot()
				_, resumed := newSnapPlatform(t, app, arch, src, 2e6)
				if err := resumed.Restore(snap); err != nil {
					t.Fatal(err)
				}
				// Exact remaining budget: total minus the cycles already
				// simulated, so the chunked run lands on the same cycle.
				total := resumed.CyclesFor(0.6)
				if err := resumed.Run(total - resumed.Cycle()); err != nil {
					t.Fatal(err)
				}
				assertSameState(t, v, straight, resumed)
			})
		}
	}
}

// TestRunChunkingIsInvisible pins that slicing one budget into many Run
// calls (as the session's early-abort verification loop does) steps exactly
// the same cycles as a single call.
func TestRunChunkingIsInvisible(t *testing.T) {
	src := snapSource(t, apps.MMD3L)
	v, whole := newSnapPlatform(t, apps.MMD3L, power.MC, src, 2e6)
	if err := whole.RunSeconds(0.5); err != nil {
		t.Fatal(err)
	}
	_, chunked := newSnapPlatform(t, apps.MMD3L, power.MC, src, 2e6)
	total := chunked.CyclesFor(0.5)
	for chunked.Cycle() < total {
		n := uint64(7001)
		if rem := total - chunked.Cycle(); rem < n {
			n = rem
		}
		if err := chunked.Run(n); err != nil {
			t.Fatal(err)
		}
	}
	assertSameState(t, v, whole, chunked)
}

// TestForkPristineEqualsNew pins the degenerate fork the operating-point
// search relies on: forking a never-run platform at a different clock is
// bit-identical to building a fresh platform at that clock.
func TestForkPristineEqualsNew(t *testing.T) {
	for _, arch := range []power.Arch{power.SC, power.MC, power.MCNoSync} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			src := snapSource(t, apps.MF3L)
			v, tmpl := newSnapPlatform(t, apps.MF3L, arch, src, 8e6)
			cfg := tmpl.Config()
			cfg.ClockHz = 2.6e6
			cfg.VoltageV = 0.6
			forked, err := tmpl.Fork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, fresh := newSnapPlatform(t, apps.MF3L, arch, src, 2.6e6)
			if err := forked.RunSeconds(0.25); err != nil {
				t.Fatal(err)
			}
			if err := fresh.RunSeconds(0.25); err != nil {
				t.Fatal(err)
			}
			assertSameState(t, v, fresh, forked)
			// The template itself must be untouched by the fork.
			if tmpl.Cycle() != 0 || tmpl.Counters().Cycles != 0 {
				t.Errorf("fork mutated the template: cycle %d", tmpl.Cycle())
			}
		})
	}
}

// TestForkCrossClockContinues exercises a warm fork to a different
// frequency: the rehydrated platform keeps sampling seamlessly (indices and
// data registers carry over, the grid is re-derived on the new clock) and
// still meets real time at an adequate clock.
func TestForkCrossClockContinues(t *testing.T) {
	src := snapSource(t, apps.MF3L)
	_, p := newSnapPlatform(t, apps.MF3L, power.MC, src, 2e6)
	if err := p.RunSeconds(0.4); err != nil {
		t.Fatal(err)
	}
	samplesBefore := p.Counters().ADCSamples
	if p.Overruns() != 0 {
		t.Fatalf("warm-up overran %d samples", p.Overruns())
	}
	cfg := p.Config()
	cfg.ClockHz = 4e6
	forked, err := p.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The cycle position is rebased proportionally: same simulated instant.
	if want := uint64(float64(p.Cycle())*2 + 0.5); forked.Cycle() != want {
		t.Errorf("rebased cycle = %d, want %d", forked.Cycle(), want)
	}
	if err := forked.RunSeconds(0.4); err != nil {
		t.Fatal(err)
	}
	if forked.Overruns() != 0 {
		t.Errorf("cross-clock continuation overran %d samples", forked.Overruns())
	}
	if v := forked.Violations(); len(v) > 0 {
		t.Errorf("cross-clock continuation recorded sync violations: %v", v)
	}
	// 0.4 s more at 250 Hz is 100 more publication events, exact on the
	// index-derived grid.
	got := forked.Counters().ADCSamples - samplesBefore
	if got < 99 || got > 101 {
		t.Errorf("continuation published %d samples, want ~100", got)
	}
}

// TestForkValidatesConfig pins the revalidation promises: a fork cannot
// change architecture, cannot select a clock the ADC rates exceed, and a
// plain Restore refuses a clock mismatch.
func TestForkValidatesConfig(t *testing.T) {
	src := snapSource(t, apps.MF3L)
	_, p := newSnapPlatform(t, apps.MF3L, power.MC, src, 2e6)

	cfg := p.Config()
	cfg.Arch = power.SC
	if _, err := p.Fork(cfg); err == nil {
		t.Error("fork to a different architecture must fail")
	}

	cfg = p.Config()
	cfg.ClockHz = 100 // below the 250 Hz sampling rate
	if _, err := p.Fork(cfg); err == nil {
		t.Error("fork to a clock below the ADC rate must fail")
	}

	cfg = p.Config()
	cfg.ClockHz = 0
	if _, err := p.Fork(cfg); err == nil {
		t.Error("fork to a non-positive clock must fail")
	}

	snap := p.Snapshot()
	_, other := newSnapPlatform(t, apps.MF3L, power.MC, src, 4e6)
	if err := other.Restore(snap); err == nil {
		t.Error("restore must reject a clock mismatch")
	}
	_, sc := newSnapPlatform(t, apps.MF3L, power.SC, src, 2e6)
	if err := sc.Restore(snap); err == nil {
		t.Error("restore must reject an architecture mismatch")
	}
}

// TestSnapshotFileRoundTrip pins the on-disk format: encode/decode is
// lossless, foreign streams are rejected, and a version bump is refused
// instead of misread.
func TestSnapshotFileRoundTrip(t *testing.T) {
	src := snapSource(t, apps.MF3L)
	_, p := newSnapPlatform(t, apps.MF3L, power.MC, src, 2e6)
	if err := p.RunSeconds(0.2); err != nil {
		t.Fatal(err)
	}
	file := &platform.SnapshotFile{
		Meta: map[string]string{"app": apps.MF3L, "arch": "MC"},
		Snap: p.Snapshot(),
	}
	var buf bytes.Buffer
	if err := platform.WriteSnapshotFile(&buf, file); err != nil {
		t.Fatal(err)
	}
	got, err := platform.ReadSnapshotFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(file, got) {
		t.Error("snapshot file round-trip is lossy")
	}
	// The decoded snapshot restores and continues.
	_, resumed := newSnapPlatform(t, apps.MF3L, power.MC, src, 2e6)
	if err := resumed.Restore(got.Snap); err != nil {
		t.Fatal(err)
	}

	if _, err := platform.ReadSnapshotFile(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input must be rejected")
	}

	// A future format version must be refused. gob decodes by field name,
	// so a structurally identical envelope stands in for one written by a
	// newer build.
	type envelope struct {
		Magic   string
		Version int
		File    platform.SnapshotFile
	}
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(envelope{
		Magic:   "wbsn-platform-snapshot",
		Version: platform.SnapshotVersion + 1,
		File:    *file,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := platform.ReadSnapshotFile(bytes.NewReader(vbuf.Bytes())); err == nil {
		t.Error("version mismatch must be rejected")
	}
}
