// Command checkdocs enforces the repository's documentation conventions in
// CI. It performs two checks and exits non-zero listing every finding:
//
//  1. Markdown links resolve: every relative link target in the tracked
//     *.md files (repository root and docs/) must exist on disk. External
//     schemes (http, https, mailto) and pure in-page anchors are skipped;
//     a fragment on a relative link is stripped before the existence
//     check.
//  2. Package doc comments exist: every package under internal/, cmd/ and
//     tools/ must carry a package-level doc comment, so `go doc` output is
//     self-explanatory for each.
//
// The tool uses only the standard library and walks the working tree, so
// it runs identically in CI and locally: go run ./tools/checkdocs
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links and captures the target. Reference
// definitions ([x]: url) are rare here and intentionally out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// skipDirs are never descended into.
var skipDirs = map[string]bool{".git": true}

// skipFiles are excluded from the link check: research-material dumps
// captured verbatim from external sources (their links point into the
// documents they were extracted from), not navigable repo documentation.
var skipFiles = map[string]bool{"PAPER.md": true, "PAPERS.md": true, "SNIPPETS.md": true}

func main() {
	var problems []string
	problem := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Check 1: markdown links.
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") && !skipFiles[filepath.Base(path)] {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			problem("%s: %v", md, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problem("%s: broken link %q (%s does not exist)", md, m[1], resolved)
			}
		}
	}

	// Check 2: package doc comments.
	var pkgDirs []string
	for _, root := range []string{"internal", "cmd", "tools"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			hasGo, err := filepath.Glob(filepath.Join(path, "*.go"))
			if err != nil {
				return err
			}
			if len(hasGo) > 0 {
				pkgDirs = append(pkgDirs, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			problem("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				problem("%s: package %s has no package-level doc comment", dir, name)
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "checkdocs: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("checkdocs: %d markdown files and %d packages clean\n", len(mdFiles), len(pkgDirs))
}
