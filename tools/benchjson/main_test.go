package main

import (
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkBlockEngine/exact-8    14    75368640 ns/op    26536322 cycles/s")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	want := Result{
		Name:       "BenchmarkBlockEngine/exact",
		Iterations: 14,
		NsPerOp:    75368640,
		Metrics:    map[string]float64{"cycles/s": 26536322},
	}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("parseLine = %+v, want %+v", r, want)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	repro	7.010s",
		"BenchmarkBroken notanumber 5 ns/op",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted non-result line %q", line)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo-bar":      "BenchmarkFoo-bar",
		"BenchmarkFoo-":         "BenchmarkFoo-",
		"BenchmarkFoo/jobs=4-8": "BenchmarkFoo/jobs=4",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMatches(t *testing.T) {
	if !matches("BenchmarkFoo/sub", nil) {
		t.Error("no filters must select everything")
	}
	filters := []string{"BenchmarkFoo"}
	for name, want := range map[string]bool{
		"BenchmarkFoo":     true,
		"BenchmarkFoo/sub": true,
		"BenchmarkFooBar":  false,
		"BenchmarkBar":     false,
	} {
		if got := matches(name, filters); got != want {
			t.Errorf("matches(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestMergeDedupesNameCommit is the regression test for the duplicate-series
// bug: appending the same benchmark for the same commit twice must replace
// the data point, not accumulate it, while distinct commits (including the
// unstamped pre-commit era) keep their own entries.
func TestMergeDedupesNameCommit(t *testing.T) {
	old := Result{Name: "BenchmarkX/exact", Iterations: 1, NsPerOp: 100}
	oldDup := Result{Name: "BenchmarkX/exact", Iterations: 2, NsPerOp: 110}
	a1 := Result{Name: "BenchmarkX/exact", Commit: "abc", Iterations: 3, NsPerOp: 90}
	prior := []Result{old, oldDup, a1}

	// Re-generating commit "abc" replaces its entry; the unstamped era
	// collapses to its newest entry; a new commit accumulates.
	a2 := Result{Name: "BenchmarkX/exact", Commit: "abc", Iterations: 4, NsPerOp: 85}
	b1 := Result{Name: "BenchmarkX/exact", Commit: "def", Iterations: 5, NsPerOp: 80}
	got := merge(prior, []Result{a2, b1})
	want := []Result{oldDup, a2, b1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %+v\nwant %+v", got, want)
	}

	// Same name under a different commit never touches other commits'
	// entries; different names never collide at all.
	c := Result{Name: "BenchmarkY", Commit: "def", Iterations: 1}
	got = merge(want, []Result{c})
	if !reflect.DeepEqual(got, append(append([]Result(nil), want...), c)) {
		t.Errorf("cross-name merge disturbed the series: %+v", got)
	}

	// An empty prior (first generation) passes incoming through.
	if got := merge(nil, []Result{a1}); !reflect.DeepEqual(got, []Result{a1}) {
		t.Errorf("merge(nil, x) = %+v", got)
	}
}
