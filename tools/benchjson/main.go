// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line. It exists so
// performance trajectories can be committed as data files (BENCH_engine.json)
// and diffed across commits without parsing the free-form bench text again.
//
// Usage:
//
//	go test -run '^$' -bench BlockEngine -benchtime 1x | go run ./tools/benchjson
//
// A benchmark line has the shape
//
//	BenchmarkBlockEngine/exact-8    1    52431875 ns/op    2000000 cycles/s
//
// name, iteration count, then value/unit pairs. The "ns/op" value lands in
// its own field; every other pair (including testing.B.ReportMetric custom
// metrics such as "cycles/s" or "uW") goes into the metrics map keyed by
// unit. Non-benchmark lines (goos/goarch headers, PASS, ok, log output) are
// ignored, so the whole `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. Units with characters JSON keys
// tolerate but Go identifiers do not (percent signs, slashes) stay verbatim
// in Metrics.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine decodes one benchmark result line, reporting ok=false for
// anything that is not one.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
	os.Stdout.Write([]byte("\n"))
}
