// Command benchjson converts `go test -bench` output on stdin into a JSON
// array, one object per benchmark result line. It exists so performance
// trajectories can be committed as data files (BENCH_engine.json) and diffed
// across commits without parsing the free-form bench text again.
//
// Usage:
//
//	go test -run '^$' -bench BlockEngine -benchtime 1x | go run ./tools/benchjson
//	go test -run '^$' -bench 'FastForward' | go run ./tools/benchjson -out BENCH_engine.json -append BenchmarkIdleFastForward BenchmarkSpinFastForward
//
// Positional arguments are benchmark name filters: when present, only
// results whose name matches one of them (exactly, or as a parent of a
// sub-benchmark, with any -N GOMAXPROCS suffix ignored) are kept, so one
// `go test -bench` sweep can feed several data files. -out writes the array
// to a file instead of stdout; with -append the new results are merged onto
// the file's existing array, which is how BENCH_engine.json accumulates
// series for several engines across regeneration runs. -commit stamps the
// incoming results with a commit identity, and the merge deduplicates on the
// (name, commit) pair — re-running the generation command for one commit
// replaces that commit's data points instead of duplicating them.
//
// A benchmark line has the shape
//
//	BenchmarkBlockEngine/exact-8    1    52431875 ns/op    2000000 cycles/s
//
// name, iteration count, then value/unit pairs. The "ns/op" value lands in
// its own field; every other pair (including testing.B.ReportMetric custom
// metrics such as "cycles/s" or "uW") goes into the metrics map keyed by
// unit. Non-benchmark lines (goos/goarch headers, PASS, ok, log output) are
// ignored, so the whole `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. Units with characters JSON keys
// tolerate but Go identifiers do not (percent signs, slashes) stay verbatim
// in Metrics. Commit is the -commit identity stamp: the dedup key -append
// merges on, so re-generating a data point for the same commit replaces it
// instead of accumulating duplicates. Entries from the pre-stamp era have no
// commit and form their own identity.
type Result struct {
	Name       string             `json:"name"`
	Commit     string             `json:"commit,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine decodes one benchmark result line, reporting ok=false for
// anything that is not one. The -N GOMAXPROCS suffix Go appends when running
// with more than one proc is stripped, so committed data files read the same
// regardless of the generating machine's core count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}

// trimProcSuffix drops a trailing "-N" where N is all digits — the
// GOMAXPROCS marker, not part of the benchmark's name.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// matches reports whether a (already proc-suffix-trimmed) result name is
// selected by the positional filters. No filters selects everything; a
// filter selects its exact benchmark and all of its sub-benchmarks.
func matches(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if name == f || strings.HasPrefix(name, f+"/") {
			return true
		}
	}
	return false
}

// merge appends incoming results onto a prior series, deduplicating on the
// (name, commit) identity: of all entries sharing one identity only the
// newest survives — later prior entries supersede earlier ones (repairing
// files that accumulated duplicates before the stamp existed), and incoming
// entries supersede prior ones (re-generating a commit's data point replaces
// it). Entries from different commits always coexist; the series across
// commits is the point of the file.
func merge(prior, incoming []Result) []Result {
	all := make([]Result, 0, len(prior)+len(incoming))
	all = append(all, prior...)
	all = append(all, incoming...)
	type key struct{ name, commit string }
	last := make(map[key]int, len(all))
	for i, r := range all {
		last[key{r.Name, r.Commit}] = i
	}
	out := make([]Result, 0, len(last))
	for i, r := range all {
		if last[key{r.Name, r.Commit}] == i {
			out = append(out, r)
		}
	}
	return out
}

func main() {
	outPath := flag.String("out", "", "write the JSON array to this file instead of stdout")
	appendOut := flag.Bool("append", false, "with -out, merge new results onto the file's existing array")
	commit := flag.String("commit", "", "stamp parsed results with this commit identity (the -append dedup key)")
	flag.Parse()
	if *appendOut && *outPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -append requires -out")
		os.Exit(1)
	}

	var prior []Result
	if *appendOut {
		var err error
		prior, err = readResults(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	var incoming []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok || !matches(r.Name, flag.Args()) {
			continue
		}
		r.Commit = *commit
		incoming = append(incoming, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(incoming) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no matching benchmark lines on stdin")
		os.Exit(1)
	}
	results := merge(prior, incoming)
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// readResults loads an existing data file for -append. A missing file is an
// empty series, so first runs and regeneration runs use the same command.
func readResults(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var prior []Result
	if err := json.Unmarshal(data, &prior); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return prior, nil
}
